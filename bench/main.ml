(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md section 4 for the index), runs
   Bechamel micro-benchmarks of the computational kernels, and drives
   the perf regression gate.

   Usage:
     dune exec bench/main.exe                 -- all figures, quick profile
     dune exec bench/main.exe -- --fig 11     -- a single figure
     dune exec bench/main.exe -- --full       -- all 20 topologies (slow)
     dune exec bench/main.exe -- --micro      -- Bechamel kernels only
     dune exec bench/main.exe -- --jobs 4     -- domain-parallel sweeps
     dune exec bench/main.exe -- --json out.json  -- machine-readable timings
     dune exec bench/main.exe -- --chrome out.json -- Chrome/Perfetto trace
     dune exec bench/main.exe -- --gate --repeat 5 --baseline BENCH_PR3.json
     dune exec bench/main.exe -- --check BENCH_PR3.json --tolerance 25 *)

open Flexile_core
module Parallel = Flexile_util.Parallel
module Trace = Flexile_util.Trace
module Trace_export = Flexile_util.Trace_export
module Bench_gate = Flexile_util.Bench_gate

(* Bechamel kernels; returns [(name, ms_per_run)] for the JSON dump. *)
let micro_benchmarks ~jobs () =
  print_endline "\n==================== micro-benchmarks (Bechamel) ====================";
  let open Bechamel in
  let inst = Builder.of_name ~options:{ Builder.default_options with Builder.max_scenarios = 40 } "Sprint" in
  let scenbest_scenario =
    Test.make ~name:"scenbest-scenario-lp" (Staged.stage (fun () ->
        ignore
          (Flexile_te.Scen_lp.maxmin_losses inst ~sid:1 ~class_order:[ 0 ]
             ~merge_classes:true ())))
  in
  let subproblem_sweep =
    Test.make ~name:"flexile-offline-sprint" (Staged.stage (fun () ->
        ignore
          (Flexile_te.Flexile_offline.solve
             ~config:
               {
                 Flexile_te.Flexile_offline.default_config with
                 Flexile_te.Flexile_offline.max_iterations = 1;
                 jobs;
               }
             inst)))
  in
  (* parallel-sweep scaling: the same ScenBest sweep at 1 and 4 worker
     domains (a smaller instance so both fit the time quota) *)
  let sweep_inst =
    Builder.of_name
      ~options:
        {
          Builder.default_options with
          Builder.max_scenarios = 24;
          max_pairs = 60;
        }
      "Sprint"
  in
  let sweep_at n =
    Test.make
      ~name:(Printf.sprintf "scenbest-sweep-j%d" n)
      (Staged.stage (fun () -> ignore (Flexile_te.Scenbest.run ~jobs:n sweep_inst)))
  in
  let simplex_kernel =
    let model = Flexile_lp.Lp_model.create () in
    let vars =
      Array.init 60 (fun i ->
          Flexile_lp.Lp_model.add_var model ~ub:10. ~obj:(-.float_of_int (1 + (i mod 7))) ())
    in
    for r = 0 to 39 do
      let coeffs =
        Array.to_list
          (Array.mapi (fun j v -> (v, float_of_int (1 + ((r + j) mod 5)))) vars)
      in
      ignore (Flexile_lp.Lp_model.add_row model Flexile_lp.Lp_model.Le 50. coeffs)
    done;
    Test.make ~name:"simplex-60x40" (Staged.stage (fun () ->
        ignore (Flexile_lp.Simplex.solve model)))
  in
  let open Bechamel.Toolkit in
  let tests =
    Test.make_grouped ~name:"flexile"
      [
        simplex_kernel; scenbest_scenario; subproblem_sweep; sweep_at 1;
        sweep_at 4;
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 2.) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.filter_map
    (fun (name, stats) ->
      match Analyze.OLS.estimates stats with
      | Some [ est ] ->
          let ms = est /. 1e6 in
          Printf.printf "  %-36s %12.3f ms/run\n" name ms;
          Some (name, ms)
      | _ ->
          Printf.printf "  %-36s (no estimate)\n" name;
          None)
    (List.sort compare rows)

(* ---- regression-gate phases (--gate / --baseline / --check) ----

   A fixed, deterministic, small workload exercising the whole solver
   stack, repeated --repeat times; the gate compares per-phase medians
   against a committed baseline (BENCH_PR3.json).  Two phases are
   carved out of the offline solve through the Trace timers, so a
   regression localized to the subproblem sweep or the master MIP is
   attributed, not just smeared over the parent phase. *)

let gate_phase_order =
  [
    "instance-build"; "offline-solve"; "offline-sweep"; "offline-master";
    "online-alloc"; "explain"; "scenbest-sweep"; "swan-maxmin"; "scenario-mix";
    "simplex-60x40"; "continental-mlu"; "continental-factor"; "doctor";
  ]

(* ---- continental-scale phase ----

   A 1100-node WAN min-MLU LP (~600 variables, ~2000 rows), far beyond
   what the dense reference simplex can handle in CI time; it exists to
   gate the sparse LU core at scale.  Tunnel selection dominates
   instance construction, so the network half is built once and shared
   across gate repetitions: only the LP build + solve is timed. *)

let continental_pairs = 200

let continental_instance =
  lazy
    (let g = Flexile_net.Catalog.continental () in
     let seed = Flexile_util.Prng.of_string "flexile-bench-continental" in
     let pairs = Flexile_net.Graph.pairs g in
     Flexile_util.Prng.shuffle seed pairs;
     let pairs = Array.sub pairs 0 continental_pairs in
     Array.sort compare pairs;
     let tunnels =
       Array.map
         (fun pair ->
           Array.of_list
             (Flexile_net.Tunnels.select_single_class g ~pair ~count:3))
         pairs
     in
     let demands = Flexile_traffic.Gravity.matrix ~seed ~graph:g ~pairs in
     (g, tunnels, demands))

(* Solve the continental min-MLU LP once; returns (mu, sparse-core
   deltas) where the deltas cover exactly this solve.  [Mlu.min_mlu]
   raises unless the LP reaches optimality, so a non-converging sparse
   core fails the gate loudly instead of recording a fast garbage
   timing. *)
let continental_solve () =
  let g, tunnels, demands = Lazy.force continental_instance in
  let it0 = Trace.value_by_name "simplex.iterations" in
  let f0 = Trace.timer_seconds_by_name "simplex.factor" in
  let eta0 = Trace.value_by_name "simplex.eta_updates" in
  let ref0 = Trace.value_by_name "simplex.refactorizations" in
  let t0 = Unix.gettimeofday () in
  let mu = Flexile_te.Mlu.min_mlu ~graph:g ~tunnels ~demands in
  let seconds = Unix.gettimeofday () -. t0 in
  ( mu,
    seconds,
    Trace.timer_seconds_by_name "simplex.factor" -. f0,
    Trace.value_by_name "simplex.iterations" - it0,
    Trace.value_by_name "simplex.eta_updates" - eta0,
    Trace.value_by_name "simplex.refactorizations" - ref0 )

(* The sparse-core summary emitted under "sparse_core" in the gate
   JSON: absolute pivot throughput and eta-file growth of the last
   continental solve, plus the eta-length-at-refactorization quantiles
   accumulated over the whole run. *)
let sparse_core_json ~seconds ~factor_seconds ~iterations ~eta_updates
    ~refactorizations =
  let eta_q q =
    try
      Trace.hist_quantile_of
        (Trace.hist_snapshot_by_name "simplex.eta_len_at_refactor")
        q
    with Not_found -> 0.
  in
  Printf.sprintf
    "{\"solve_seconds\":%.6f,\"factor_seconds\":%.6f,\"iterations\":%d,\
     \"pivots_per_sec\":%.1f,\"eta_updates\":%d,\"refactorizations\":%d,\
     \"eta_len_at_refactor_p50\":%.1f,\"eta_len_at_refactor_p95\":%.1f}"
    seconds factor_seconds iterations
    (if seconds > 0. then float_of_int iterations /. seconds else 0.)
    eta_updates refactorizations (eta_q 0.5) (eta_q 0.95)

let simplex_gate_model () =
  let model = Flexile_lp.Lp_model.create () in
  let vars =
    Array.init 60 (fun i ->
        Flexile_lp.Lp_model.add_var model ~ub:10.
          ~obj:(-.float_of_int (1 + (i mod 7)))
          ())
  in
  for r = 0 to 39 do
    let coeffs =
      Array.to_list
        (Array.mapi (fun j v -> (v, float_of_int (1 + ((r + j) mod 5)))) vars)
    in
    ignore (Flexile_lp.Lp_model.add_row model Flexile_lp.Lp_model.Le 50. coeffs)
  done;
  model

let run_gate ~jobs ~repeat =
  let samples : (string, float list ref) Hashtbl.t = Hashtbl.create 16 in
  let sparse_core = ref "{}" in
  let record name s =
    let l =
      match Hashtbl.find_opt samples name with
      | Some l -> l
      | None ->
          let l = ref [] in
          Hashtbl.add samples name l;
          l
    in
    l := s :: !l
  in
  let options =
    {
      Builder.default_options with
      Builder.max_scenarios = 24;
      max_pairs = 60;
      jobs;
    }
  in
  for rep = 1 to repeat do
    Printf.printf "gate repetition %d/%d\n%!" rep repeat;
    let timed name f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      record name (Unix.gettimeofday () -. t0);
      r
    in
    let sweep0 = Trace.timer_seconds_by_name "flexile.subproblem_sweep" in
    let master0 = Trace.timer_seconds_by_name "flexile.master" in
    let inst =
      timed "instance-build" (fun () -> Builder.of_name ~options "IBM")
    in
    let offline =
      timed "offline-solve" (fun () ->
          Flexile_te.Flexile_offline.solve
            ~config:
              {
                Flexile_te.Flexile_offline.default_config with
                Flexile_te.Flexile_offline.max_iterations = 2;
                jobs;
              }
            inst)
    in
    record "offline-sweep"
      (Trace.timer_seconds_by_name "flexile.subproblem_sweep" -. sweep0);
    record "offline-master"
      (Trace.timer_seconds_by_name "flexile.master" -. master0);
    ignore
      (timed "online-alloc" (fun () ->
           Flexile_te.Flexile_online.run ~jobs inst ~offline));
    (* miss attribution end-to-end: online re-run with dual capture,
       one clairvoyant LP per (class, scenario) for the regret
       baseline, then the per-class decomposition + report rendering *)
    ignore
      (timed "explain" (fun () ->
           let promised =
             Array.init
               (Array.length inst.Flexile_te.Instance.classes)
               (fun k ->
                 Flexile_te.Metrics.perc_loss inst
                   offline.Flexile_te.Flexile_offline.best
                     .Flexile_te.Flexile_offline.losses ~cls:k ())
           in
           let inp =
             Flexile_obs.Attribution.prepare ~jobs inst ~offline ~promised ()
           in
           let rep =
             Flexile_obs.Attribution.analyze ~top:5 inp
               ~losses:(Flexile_obs.Attribution.online_losses inp)
           in
           ignore (Flexile_obs.Attribution.report_json rep)));
    ignore (timed "scenbest-sweep" (fun () -> Flexile_te.Scenbest.run ~jobs inst));
    ignore (timed "swan-maxmin" (fun () -> Flexile_te.Swan.run_maxmin ~jobs inst));
    (* mixed-regime end-to-end: SRLG + partial degradation + demand
       drift composed through Scenario_gen, then two schemes swept on
       the resulting set — gates the generator subsystem and the
       per-scenario demand-factor plumbing *)
    ignore
      (timed "scenario-mix" (fun () ->
           let mixed =
             Builder.of_name
               ~options:
                 { options with Builder.scenario_mix = "srlg,partial,drift" }
               "IBM"
           in
           ignore (Flexile_te.Scenbest.run ~jobs mixed);
           ignore (Flexile_te.Swan.run_maxmin ~jobs mixed)));
    ignore
      (timed "simplex-60x40" (fun () ->
           (* FLEXILE_GATE_HANDICAP_MS: deliberately slow this phase so
              the regression gate's failure path can be exercised
              end-to-end (see DESIGN.md §8) *)
           (match Sys.getenv_opt "FLEXILE_GATE_HANDICAP_MS" with
           | Some v -> (
               match int_of_string_opt (String.trim v) with
               | Some ms when ms > 0 -> Unix.sleepf (float_of_int ms /. 1000.)
               | _ -> ())
           | None -> ());
           let model = simplex_gate_model () in
           for _ = 1 to 20 do
             ignore (Flexile_lp.Simplex.solve model)
           done));
    (* solver-health diagnosis end-to-end: both seeded fixtures through
       solve_doctor (capture timeline + dense-oracle parity) and report
       rendering — gates the observatory's replay path (schema v3) *)
    ignore
      (timed "doctor" (fun () ->
           List.iter
             (fun name ->
               match Flexile_lp.Doctor.run_fixture name with
               | Ok r -> ignore r.Flexile_lp.Doctor.r_report
               | Error e -> failwith ("doctor fixture " ^ name ^ ": " ^ e))
             Flexile_lp.Doctor.fixture_names));
    let mu, seconds, factor_seconds, iterations, eta_updates, refactorizations
        =
      continental_solve ()
    in
    if not (Float.is_finite mu) then failwith "continental: non-finite MLU";
    record "continental-mlu" seconds;
    record "continental-factor" factor_seconds;
    sparse_core :=
      sparse_core_json ~seconds ~factor_seconds ~iterations ~eta_updates
        ~refactorizations
  done;
  ( List.map
      (fun name ->
        let l =
          match Hashtbl.find_opt samples name with Some l -> !l | None -> []
        in
        (name, Bench_gate.median l))
      gate_phase_order,
    !sparse_core )

(* ---- machine-readable dump (--json FILE) ---- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json path ~profile_name ~jobs ~figures ~micro =
  let oc = open_out path in
  let item fmt = Printf.ksprintf (fun s -> output_string oc s) fmt in
  let entries f xs =
    List.iteri (fun i x -> if i > 0 then item ","; f x) xs
  in
  item "{\"profile\":\"%s\",\"jobs\":%d,\"figures\":[" (json_escape profile_name)
    jobs;
  entries
    (fun (name, seconds) ->
      item "{\"name\":\"%s\",\"seconds\":%.6f}" (json_escape name) seconds)
    figures;
  item "],\"micro\":[";
  entries
    (fun (name, ms) ->
      item "{\"name\":\"%s\",\"ms_per_run\":%.6f}" (json_escape name) ms)
    micro;
  (* the trace section is the full registry — every module's counters,
     gauges, timers and span totals, plus the hierarchical span tree —
     not just the offline solver's derived summary; histograms adds
     the per-name quantile summaries with raw bucket lists (schema v2,
     see Bench_gate) *)
  item "],\"trace\":%s,\"histograms\":%s}\n"
    (Flexile_te.Flexile_offline.trace_json ())
    (Flexile_obs.Metrics_export.histograms_json ());
  close_out oc;
  Printf.printf "\nwrote timings to %s\n" path

let () =
  let fig = ref "all" in
  let full = ref false in
  let micro = ref false in
  let jobs = ref 0 in
  let json = ref "" in
  let gate = ref false in
  let repeat = ref 0 in
  let baseline_out = ref "" in
  let check_file = ref "" in
  let tolerance = ref 25. in
  let chrome = ref "" in
  let args =
    [
      ( "--fig",
        Arg.Set_string fig,
        "figure id: all|motivation|table2|5|6|9|10|11|12|13|14|15|18|scenloss|ablation"
      );
      ("--full", Arg.Set full, "use all 20 topologies (slow)");
      ("--micro", Arg.Set micro, "run only the Bechamel micro-benchmarks");
      ( "--jobs",
        Arg.Set_int jobs,
        "worker domains for scenario sweeps (0 = auto/FLEXILE_JOBS)" );
      ("--json", Arg.Set_string json, "dump figure + micro timings to FILE");
      ( "--gate",
        Arg.Set gate,
        "run the fixed regression-gate phases instead of the figures" );
      ( "--repeat",
        Arg.Set_int repeat,
        "repetitions for the gate phases (medians; default 3)" );
      ( "--baseline",
        Arg.Set_string baseline_out,
        "write the gate medians as a baseline FILE (implies --gate)" );
      ( "--check",
        Arg.Set_string check_file,
        "compare the gate medians against a baseline FILE and exit \
         non-zero on regression (implies --gate)" );
      ( "--tolerance",
        Arg.Set_float tolerance,
        "allowed regression over the baseline, percent (default 25)" );
      ( "--chrome",
        Arg.Set_string chrome,
        "write a Chrome trace-event JSON FILE of the run (Perfetto)" );
    ]
  in
  Arg.parse args (fun _ -> ()) "flexile benchmark harness";
  if !baseline_out <> "" || !check_file <> "" then gate := true;
  (* tracing is on by default under the bench harness so --json can
     report solver counters; FLEXILE_TRACE=0 vetoes it, which is how
     the no-overhead path is itself benchmarked *)
  if not (Trace.env_disabled ()) then Trace.set_enabled true;
  let profile = if !full then Figures.full else Figures.quick in
  (* environment overrides for constrained machines / CI *)
  let getenv_int name current =
    match Sys.getenv_opt name with
    | Some v -> ( match int_of_string_opt v with Some i -> i | None -> current)
    | None -> current
  in
  let jobs = if !jobs <> 0 then !jobs else getenv_int "FLEXILE_JOBS" 0 in
  let profile =
    {
      profile with
      Figures.max_scenarios =
        getenv_int "FLEXILE_BENCH_SCENARIOS" profile.Figures.max_scenarios;
      max_pairs = getenv_int "FLEXILE_BENCH_PAIRS" profile.Figures.max_pairs;
      emu_runs = getenv_int "FLEXILE_BENCH_EMU_RUNS" profile.Figures.emu_runs;
      cvar_scenarios =
        getenv_int "FLEXILE_BENCH_CVAR_SCENARIOS" profile.Figures.cvar_scenarios;
      jobs;
    }
  in
  let profile_name = if !full then "full" else "quick" in
  let effective_jobs = Parallel.resolve_jobs (Some jobs) in
  Printf.printf "flexile bench: profile=%s jobs=%d (effective %d)\n"
    (if !gate then "gate" else profile_name)
    jobs effective_jobs;
  if !gate then begin
    let repeat = if !repeat > 0 then !repeat else 3 in
    let phases, sparse_core = run_gate ~jobs ~repeat in
    Printf.printf "\ngate medians over %d repetitions (jobs=%d):\n" repeat
      effective_jobs;
    List.iter
      (fun (name, s) -> Printf.printf "  %-24s %10.4f s\n" name s)
      phases;
    let measured =
      {
        Bench_gate.profile = "gate";
        jobs = effective_jobs;
        repetitions = repeat;
        phases =
          List.map
            (fun (n, s) -> { Bench_gate.pname = n; median_seconds = s })
            phases;
      }
    in
    if !baseline_out <> "" then begin
      Bench_gate.save !baseline_out measured;
      Printf.printf "wrote baseline to %s\n" !baseline_out
    end;
    if !json <> "" then begin
      let oc = open_out !json in
      output_string oc
        (Bench_gate.to_json
           ~extra:
             [
               ("trace", Flexile_te.Flexile_offline.trace_json ());
               ("histograms", Flexile_obs.Metrics_export.histograms_json ());
               ("sparse_core", sparse_core);
               ("solver_health", Trace_export.solver_health_json ());
             ]
           measured);
      close_out oc;
      Printf.printf "wrote gate measurements to %s\n" !json
    end;
    if !chrome <> "" then begin
      Trace_export.write_file !chrome (Trace_export.chrome_json ());
      Printf.printf "wrote Chrome trace to %s\n" !chrome
    end;
    if !check_file <> "" then begin
      match Bench_gate.load !check_file with
      | Error e ->
          Printf.eprintf "cannot load baseline: %s\n" e;
          exit 2
      | Ok baseline ->
          if baseline.Bench_gate.jobs <> effective_jobs then
            Printf.printf
              "warning: baseline was recorded with jobs=%d, this run uses \
               jobs=%d\n"
              baseline.Bench_gate.jobs effective_jobs;
          let verdicts =
            Bench_gate.check ~baseline ~current:phases
              ~tolerance_pct:!tolerance ()
          in
          Bench_gate.print_verdicts ~tolerance_pct:!tolerance verdicts;
          if not (Bench_gate.passed verdicts) then exit 1
    end;
    exit 0
  end;
  let fig_timings = ref [] in
  let timed name f =
    let t0 = Unix.gettimeofday () in
    f ();
    fig_timings := (name, Unix.gettimeofday () -. t0) :: !fig_timings
  in
  let micro_rows = ref [] in
  let run_micro () = micro_rows := micro_benchmarks ~jobs () in
  let figure_table =
    [
      ("motivation", fun _p -> Figures.motivation ());
      ("table2", fun _p -> Figures.table2 ());
      ("5", Figures.fig5);
      ("6", Figures.fig6);
      ("9", Figures.fig9);
      ("10", Figures.fig10);
      ("11", Figures.fig11);
      ("12", Figures.fig12);
      ("13", Figures.fig13);
      ("14", Figures.fig14);
      ("15", Figures.fig15);
      ("18", Figures.fig18);
      ("scenloss", Figures.scenloss);
      ("ablation", Figures.ablation);
    ]
  in
  if !micro then run_micro ()
  else begin
    (match !fig with
    | "all" ->
        List.iter (fun (name, f) -> timed name (fun () -> f profile)) figure_table
    | other -> (
        match List.assoc_opt other figure_table with
        | Some f -> timed other (fun () -> f profile)
        | None -> Printf.printf "unknown figure: %s\n" other));
    if !fig = "all" then run_micro ()
  end;
  if !json <> "" then
    write_json !json ~profile_name ~jobs ~figures:(List.rev !fig_timings)
      ~micro:!micro_rows;
  if !chrome <> "" then begin
    Trace_export.write_file !chrome (Trace_export.chrome_json ());
    Printf.printf "wrote Chrome trace to %s\n" !chrome
  end
