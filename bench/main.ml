(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md section 4 for the index) and runs
   Bechamel micro-benchmarks of the computational kernels.

   Usage:
     dune exec bench/main.exe                 -- all figures, quick profile
     dune exec bench/main.exe -- --fig 11     -- a single figure
     dune exec bench/main.exe -- --full       -- all 20 topologies (slow)
     dune exec bench/main.exe -- --micro      -- Bechamel kernels only
     dune exec bench/main.exe -- --jobs 4     -- domain-parallel sweeps
     dune exec bench/main.exe -- --json out.json  -- machine-readable timings *)

open Flexile_core
module Parallel = Flexile_util.Parallel
module Trace = Flexile_util.Trace

(* Bechamel kernels; returns [(name, ms_per_run)] for the JSON dump. *)
let micro_benchmarks ~jobs () =
  print_endline "\n==================== micro-benchmarks (Bechamel) ====================";
  let open Bechamel in
  let inst = Builder.of_name ~options:{ Builder.default_options with Builder.max_scenarios = 40 } "Sprint" in
  let scenbest_scenario =
    Test.make ~name:"scenbest-scenario-lp" (Staged.stage (fun () ->
        ignore
          (Flexile_te.Scen_lp.maxmin_losses inst ~sid:1 ~class_order:[ 0 ]
             ~merge_classes:true ())))
  in
  let subproblem_sweep =
    Test.make ~name:"flexile-offline-sprint" (Staged.stage (fun () ->
        ignore
          (Flexile_te.Flexile_offline.solve
             ~config:
               {
                 Flexile_te.Flexile_offline.default_config with
                 Flexile_te.Flexile_offline.max_iterations = 1;
                 jobs;
               }
             inst)))
  in
  (* parallel-sweep scaling: the same ScenBest sweep at 1 and 4 worker
     domains (a smaller instance so both fit the time quota) *)
  let sweep_inst =
    Builder.of_name
      ~options:
        {
          Builder.default_options with
          Builder.max_scenarios = 24;
          max_pairs = 60;
        }
      "Sprint"
  in
  let sweep_at n =
    Test.make
      ~name:(Printf.sprintf "scenbest-sweep-j%d" n)
      (Staged.stage (fun () -> ignore (Flexile_te.Scenbest.run ~jobs:n sweep_inst)))
  in
  let simplex_kernel =
    let model = Flexile_lp.Lp_model.create () in
    let vars =
      Array.init 60 (fun i ->
          Flexile_lp.Lp_model.add_var model ~ub:10. ~obj:(-.float_of_int (1 + (i mod 7))) ())
    in
    for r = 0 to 39 do
      let coeffs =
        Array.to_list
          (Array.mapi (fun j v -> (v, float_of_int (1 + ((r + j) mod 5)))) vars)
      in
      ignore (Flexile_lp.Lp_model.add_row model Flexile_lp.Lp_model.Le 50. coeffs)
    done;
    Test.make ~name:"simplex-60x40" (Staged.stage (fun () ->
        ignore (Flexile_lp.Simplex.solve model)))
  in
  let open Bechamel.Toolkit in
  let tests =
    Test.make_grouped ~name:"flexile"
      [
        simplex_kernel; scenbest_scenario; subproblem_sweep; sweep_at 1;
        sweep_at 4;
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 2.) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.filter_map
    (fun (name, stats) ->
      match Analyze.OLS.estimates stats with
      | Some [ est ] ->
          let ms = est /. 1e6 in
          Printf.printf "  %-36s %12.3f ms/run\n" name ms;
          Some (name, ms)
      | _ ->
          Printf.printf "  %-36s (no estimate)\n" name;
          None)
    (List.sort compare rows)

(* ---- machine-readable dump (--json FILE) ---- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json path ~profile_name ~jobs ~figures ~micro =
  let oc = open_out path in
  let item fmt = Printf.ksprintf (fun s -> output_string oc s) fmt in
  let entries f xs =
    List.iteri (fun i x -> if i > 0 then item ","; f x) xs
  in
  item "{\"profile\":\"%s\",\"jobs\":%d,\"figures\":[" (json_escape profile_name)
    jobs;
  entries
    (fun (name, seconds) ->
      item "{\"name\":\"%s\",\"seconds\":%.6f}" (json_escape name) seconds)
    figures;
  item "],\"micro\":[";
  entries
    (fun (name, ms) ->
      item "{\"name\":\"%s\",\"ms_per_run\":%.6f}" (json_escape name) ms)
    micro;
  item "],\"trace\":%s}\n" (Flexile_te.Flexile_offline.trace_json ());
  close_out oc;
  Printf.printf "\nwrote timings to %s\n" path

let () =
  let fig = ref "all" in
  let full = ref false in
  let micro = ref false in
  let jobs = ref 0 in
  let json = ref "" in
  let args =
    [
      ( "--fig",
        Arg.Set_string fig,
        "figure id: all|motivation|table2|5|6|9|10|11|12|13|14|15|18|scenloss|ablation"
      );
      ("--full", Arg.Set full, "use all 20 topologies (slow)");
      ("--micro", Arg.Set micro, "run only the Bechamel micro-benchmarks");
      ( "--jobs",
        Arg.Set_int jobs,
        "worker domains for scenario sweeps (0 = auto/FLEXILE_JOBS)" );
      ("--json", Arg.Set_string json, "dump figure + micro timings to FILE");
    ]
  in
  Arg.parse args (fun _ -> ()) "flexile benchmark harness";
  (* tracing is on by default under the bench harness so --json can
     report solver counters; FLEXILE_TRACE=0 vetoes it, which is how
     the no-overhead path is itself benchmarked *)
  if not (Trace.env_disabled ()) then Trace.set_enabled true;
  let profile = if !full then Figures.full else Figures.quick in
  (* environment overrides for constrained machines / CI *)
  let getenv_int name current =
    match Sys.getenv_opt name with
    | Some v -> ( match int_of_string_opt v with Some i -> i | None -> current)
    | None -> current
  in
  let jobs = if !jobs <> 0 then !jobs else getenv_int "FLEXILE_JOBS" 0 in
  let profile =
    {
      profile with
      Figures.max_scenarios =
        getenv_int "FLEXILE_BENCH_SCENARIOS" profile.Figures.max_scenarios;
      max_pairs = getenv_int "FLEXILE_BENCH_PAIRS" profile.Figures.max_pairs;
      emu_runs = getenv_int "FLEXILE_BENCH_EMU_RUNS" profile.Figures.emu_runs;
      cvar_scenarios =
        getenv_int "FLEXILE_BENCH_CVAR_SCENARIOS" profile.Figures.cvar_scenarios;
      jobs;
    }
  in
  let profile_name = if !full then "full" else "quick" in
  Printf.printf "flexile bench: profile=%s jobs=%d (effective %d)\n" profile_name
    jobs
    (Parallel.resolve_jobs (Some jobs));
  let fig_timings = ref [] in
  let timed name f =
    let t0 = Unix.gettimeofday () in
    f ();
    fig_timings := (name, Unix.gettimeofday () -. t0) :: !fig_timings
  in
  let micro_rows = ref [] in
  let run_micro () = micro_rows := micro_benchmarks ~jobs () in
  let figure_table =
    [
      ("motivation", fun _p -> Figures.motivation ());
      ("table2", fun _p -> Figures.table2 ());
      ("5", Figures.fig5);
      ("6", Figures.fig6);
      ("9", Figures.fig9);
      ("10", Figures.fig10);
      ("11", Figures.fig11);
      ("12", Figures.fig12);
      ("13", Figures.fig13);
      ("14", Figures.fig14);
      ("15", Figures.fig15);
      ("18", Figures.fig18);
      ("scenloss", Figures.scenloss);
      ("ablation", Figures.ablation);
    ]
  in
  if !micro then run_micro ()
  else begin
    (match !fig with
    | "all" ->
        List.iter (fun (name, f) -> timed name (fun () -> f profile)) figure_table
    | other -> (
        match List.assoc_opt other figure_table with
        | Some f -> timed other (fun () -> f profile)
        | None -> Printf.printf "unknown figure: %s\n" other));
    if !fig = "all" then run_micro ()
  end;
  if !json <> "" then
    write_json !json ~profile_name ~jobs ~figures:(List.rev !fig_timings)
      ~micro:!micro_rows
