.PHONY: all build test bench lint lint-deep monitor-smoke explain-smoke doctor-smoke verify baseline clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Scratch directory for smoke/lint artifacts so they can never end up
# as untracked clutter (or worse, commits) in the repo root.
SMOKE_DIR := smoke

$(SMOKE_DIR):
	mkdir -p $(SMOKE_DIR)

# flexile-lint, fast syntactic stage: AST-level determinism/
# concurrency/hygiene invariants (DESIGN.md section 9).  Writes the
# machine-readable v2 summary to smoke/lint-summary.json (uploaded as
# a CI artifact on failure) and exits non-zero on any unsuppressed
# finding.  Runs pre-build by design: it parses sources directly.
lint: | $(SMOKE_DIR)
	dune build tools/lint/lint_main.exe
	dune exec --no-build tools/lint/lint_main.exe -- \
	  --json $(SMOKE_DIR)/lint-summary.json lib bin bench test

# flexile-lint, deep typedtree stage (DESIGN.md section 14): needs the
# .cmt artifacts a full build leaves behind, then adds interprocedural
# taint (i1), shard-capture race (i2) and noalloc-kernel (i3) analysis
# on top of the syntactic rules, with stale suppressions made fatal —
# this is the authoritative lint verdict CI enforces.
lint-deep: | $(SMOKE_DIR)
	dune build
	dune exec --no-build tools/lint/lint_main.exe -- \
	  --deep --strict-suppressions \
	  --json $(SMOKE_DIR)/lint-summary.json lib bin bench test

# SLO monitor smoke (DESIGN.md section 10): replay a short seeded
# failure stream twice and assert the Prometheus page and the JSONL
# snapshot series are byte-identical — the deterministic-export
# contract the monitor's artifacts rely on.
monitor-smoke: | $(SMOKE_DIR)
	dune build bin/flexile_cli.exe
	dune exec --no-build bin/flexile_cli.exe -- monitor IBM --seed 7 \
	  --draws 48 --scenarios 24 --max-pairs 40 --iterations 1 --jobs 2 \
	  --snapshot-every 12 --prom $(SMOKE_DIR)/monitor-a.prom \
	  --jsonl $(SMOKE_DIR)/monitor-a.jsonl
	dune exec --no-build bin/flexile_cli.exe -- monitor IBM --seed 7 \
	  --draws 48 --scenarios 24 --max-pairs 40 --iterations 1 --jobs 2 \
	  --snapshot-every 12 --prom $(SMOKE_DIR)/monitor-b.prom \
	  --jsonl $(SMOKE_DIR)/monitor-b.jsonl
	cmp $(SMOKE_DIR)/monitor-a.prom $(SMOKE_DIR)/monitor-b.prom
	cmp $(SMOKE_DIR)/monitor-a.jsonl $(SMOKE_DIR)/monitor-b.jsonl

# Miss-attribution smoke (DESIGN.md section 13): the explain report and
# the regime-conditioned attainment table must be byte-identical across
# job counts (cold per-scenario solves); the Prometheus page must be
# byte-identical across repeated runs at a fixed job count (trace
# counters such as warm-start iteration totals legitimately differ
# across job counts, so the page is only repeat-stable).
explain-smoke: | $(SMOKE_DIR)
	dune build bin/flexile_cli.exe
	dune exec --no-build bin/flexile_cli.exe -- explain IBM --two-class \
	  --scenarios srlg,partial,drift --max-pairs 60 --iterations 1 --jobs 1 \
	  --out $(SMOKE_DIR)/explain-a.json \
	  --regimes $(SMOKE_DIR)/explain-a-regimes.json
	dune exec --no-build bin/flexile_cli.exe -- explain IBM --two-class \
	  --scenarios srlg,partial,drift --max-pairs 60 --iterations 1 --jobs 4 \
	  --out $(SMOKE_DIR)/explain-b.json \
	  --regimes $(SMOKE_DIR)/explain-b-regimes.json \
	  --prom $(SMOKE_DIR)/explain-b.prom
	dune exec --no-build bin/flexile_cli.exe -- explain IBM --two-class \
	  --scenarios srlg,partial,drift --max-pairs 60 --iterations 1 --jobs 4 \
	  --prom $(SMOKE_DIR)/explain-c.prom
	cmp $(SMOKE_DIR)/explain-a.json $(SMOKE_DIR)/explain-b.json
	cmp $(SMOKE_DIR)/explain-a-regimes.json $(SMOKE_DIR)/explain-b-regimes.json
	cmp $(SMOKE_DIR)/explain-b.prom $(SMOKE_DIR)/explain-c.prom

# Solver-health doctor smoke (DESIGN.md section 15): the doctor report
# over the seeded near-singular fixture must be byte-identical across
# job counts (the replay is single-domain and carries no wall-clock
# values), both live — which also exercises the threshold-trip
# auto-dump — and replayed from that dump via --from-dump.
doctor-smoke: | $(SMOKE_DIR)
	dune build bin/flexile_cli.exe
	FLEXILE_HEALTH_DUMP=$(SMOKE_DIR) dune exec --no-build bin/flexile_cli.exe -- \
	  doctor --fixture near-singular --jobs 1 --out $(SMOKE_DIR)/doctor-a.json
	FLEXILE_HEALTH_DUMP=$(SMOKE_DIR) dune exec --no-build bin/flexile_cli.exe -- \
	  doctor --fixture near-singular --jobs 4 --out $(SMOKE_DIR)/doctor-b.json
	cmp $(SMOKE_DIR)/doctor-a.json $(SMOKE_DIR)/doctor-b.json
	dune exec --no-build bin/flexile_cli.exe -- doctor \
	  --from-dump $(SMOKE_DIR)/health-dump-near-singular-fixture.json \
	  --jobs 1 --out $(SMOKE_DIR)/doctor-c.json
	dune exec --no-build bin/flexile_cli.exe -- doctor \
	  --from-dump $(SMOKE_DIR)/health-dump-near-singular-fixture.json \
	  --jobs 4 --out $(SMOKE_DIR)/doctor-d.json
	cmp $(SMOKE_DIR)/doctor-c.json $(SMOKE_DIR)/doctor-d.json

# Relative headroom for the benchmark regression gate.  50% absorbs
# ordinary same-machine jitter; CI overrides this upward because the
# committed baseline was recorded on a different machine.
BENCH_TOLERANCE ?= 50

# Tier-1 verification: full build, both lint stages (syntactic
# pre-build signal, then the deep typedtree stage over the fresh cmts),
# the test suite, the monitor/explain/doctor determinism smokes, a
# smoke run of the micro-benchmarks (exercises the parallel sweep at
# jobs 1 and 4), and the regression gate against the committed
# baseline.
verify:
	$(MAKE) lint
	dune build
	$(MAKE) lint-deep
	dune runtest
	$(MAKE) monitor-smoke
	$(MAKE) explain-smoke
	$(MAKE) doctor-smoke
	dune exec bench/main.exe -- --micro
	dune exec bench/main.exe -- --gate --repeat 3 --jobs 2 \
	  --check BENCH_PR8.json --tolerance $(BENCH_TOLERANCE)

# Re-record the committed gate baseline (run on an idle machine).
baseline:
	dune exec bench/main.exe -- --gate --repeat 5 --jobs 2 \
	  --baseline BENCH_PR8.json

clean:
	dune clean
	rm -rf $(SMOKE_DIR)
