.PHONY: all build test bench lint monitor-smoke verify baseline clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# flexile-lint: AST-level determinism/concurrency/hygiene invariants
# (DESIGN.md section 9).  Writes a machine-readable summary to
# lint-summary.json (uploaded as a CI artifact on failure) and exits
# non-zero on any unsuppressed finding.
lint:
	dune build tools/lint/lint_main.exe
	dune exec --no-build tools/lint/lint_main.exe -- \
	  --json lint-summary.json lib bin bench test

# SLO monitor smoke (DESIGN.md section 10): replay a short seeded
# failure stream twice and assert the Prometheus page and the JSONL
# snapshot series are byte-identical — the deterministic-export
# contract the monitor's artifacts rely on.
monitor-smoke:
	dune build bin/flexile_cli.exe
	dune exec --no-build bin/flexile_cli.exe -- monitor IBM --seed 7 \
	  --draws 48 --scenarios 24 --max-pairs 40 --iterations 1 --jobs 2 \
	  --snapshot-every 12 --prom monitor-a.prom --jsonl monitor-a.jsonl
	dune exec --no-build bin/flexile_cli.exe -- monitor IBM --seed 7 \
	  --draws 48 --scenarios 24 --max-pairs 40 --iterations 1 --jobs 2 \
	  --snapshot-every 12 --prom monitor-b.prom --jsonl monitor-b.jsonl
	cmp monitor-a.prom monitor-b.prom
	cmp monitor-a.jsonl monitor-b.jsonl

# Relative headroom for the benchmark regression gate.  50% absorbs
# ordinary same-machine jitter; CI overrides this upward because the
# committed baseline was recorded on a different machine.
BENCH_TOLERANCE ?= 50

# Tier-1 verification: full build, the linter, the test suite, the
# monitor determinism smoke, a smoke run of the micro-benchmarks
# (exercises the parallel sweep at jobs 1 and 4), and the regression
# gate against the committed baseline.
verify:
	dune build
	$(MAKE) lint
	dune runtest
	$(MAKE) monitor-smoke
	dune exec bench/main.exe -- --micro
	dune exec bench/main.exe -- --gate --repeat 3 --jobs 2 \
	  --check BENCH_PR7.json --tolerance $(BENCH_TOLERANCE)

# Re-record the committed gate baseline (run on an idle machine).
baseline:
	dune exec bench/main.exe -- --gate --repeat 5 --jobs 2 \
	  --baseline BENCH_PR7.json

clean:
	dune clean
