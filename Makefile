.PHONY: all build test bench lint monitor-smoke explain-smoke verify baseline clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# flexile-lint: AST-level determinism/concurrency/hygiene invariants
# (DESIGN.md section 9).  Writes a machine-readable summary to
# lint-summary.json (uploaded as a CI artifact on failure) and exits
# non-zero on any unsuppressed finding.
lint:
	dune build tools/lint/lint_main.exe
	dune exec --no-build tools/lint/lint_main.exe -- \
	  --json lint-summary.json lib bin bench test

# SLO monitor smoke (DESIGN.md section 10): replay a short seeded
# failure stream twice and assert the Prometheus page and the JSONL
# snapshot series are byte-identical — the deterministic-export
# contract the monitor's artifacts rely on.
monitor-smoke:
	dune build bin/flexile_cli.exe
	dune exec --no-build bin/flexile_cli.exe -- monitor IBM --seed 7 \
	  --draws 48 --scenarios 24 --max-pairs 40 --iterations 1 --jobs 2 \
	  --snapshot-every 12 --prom monitor-a.prom --jsonl monitor-a.jsonl
	dune exec --no-build bin/flexile_cli.exe -- monitor IBM --seed 7 \
	  --draws 48 --scenarios 24 --max-pairs 40 --iterations 1 --jobs 2 \
	  --snapshot-every 12 --prom monitor-b.prom --jsonl monitor-b.jsonl
	cmp monitor-a.prom monitor-b.prom
	cmp monitor-a.jsonl monitor-b.jsonl

# Miss-attribution smoke (DESIGN.md section 13): the explain report and
# the regime-conditioned attainment table must be byte-identical across
# job counts (cold per-scenario solves); the Prometheus page must be
# byte-identical across repeated runs at a fixed job count (trace
# counters such as warm-start iteration totals legitimately differ
# across job counts, so the page is only repeat-stable).
explain-smoke:
	dune build bin/flexile_cli.exe
	dune exec --no-build bin/flexile_cli.exe -- explain IBM --two-class \
	  --scenarios srlg,partial,drift --max-pairs 60 --iterations 1 --jobs 1 \
	  --out explain-a.json --regimes explain-a-regimes.json
	dune exec --no-build bin/flexile_cli.exe -- explain IBM --two-class \
	  --scenarios srlg,partial,drift --max-pairs 60 --iterations 1 --jobs 4 \
	  --out explain-b.json --regimes explain-b-regimes.json \
	  --prom explain-b.prom
	dune exec --no-build bin/flexile_cli.exe -- explain IBM --two-class \
	  --scenarios srlg,partial,drift --max-pairs 60 --iterations 1 --jobs 4 \
	  --prom explain-c.prom
	cmp explain-a.json explain-b.json
	cmp explain-a-regimes.json explain-b-regimes.json
	cmp explain-b.prom explain-c.prom

# Relative headroom for the benchmark regression gate.  50% absorbs
# ordinary same-machine jitter; CI overrides this upward because the
# committed baseline was recorded on a different machine.
BENCH_TOLERANCE ?= 50

# Tier-1 verification: full build, the linter, the test suite, the
# monitor and explain determinism smokes, a smoke run of the
# micro-benchmarks (exercises the parallel sweep at jobs 1 and 4), and
# the regression gate against the committed baseline.
verify:
	dune build
	$(MAKE) lint
	dune runtest
	$(MAKE) monitor-smoke
	$(MAKE) explain-smoke
	dune exec bench/main.exe -- --micro
	dune exec bench/main.exe -- --gate --repeat 3 --jobs 2 \
	  --check BENCH_PR8.json --tolerance $(BENCH_TOLERANCE)

# Re-record the committed gate baseline (run on an idle machine).
baseline:
	dune exec bench/main.exe -- --gate --repeat 5 --jobs 2 \
	  --baseline BENCH_PR8.json

clean:
	dune clean
