.PHONY: all build test bench verify clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Tier-1 verification: full build, the test suite, and a smoke run of
# the micro-benchmarks (exercises the parallel sweep at jobs 1 and 4).
verify:
	dune build
	dune runtest
	dune exec bench/main.exe -- --micro

clean:
	dune clean
