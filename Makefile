.PHONY: all build test bench verify baseline clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Relative headroom for the benchmark regression gate.  50% absorbs
# ordinary same-machine jitter; CI overrides this upward because the
# committed baseline was recorded on a different machine.
BENCH_TOLERANCE ?= 50

# Tier-1 verification: full build, the test suite, a smoke run of the
# micro-benchmarks (exercises the parallel sweep at jobs 1 and 4), and
# the regression gate against the committed baseline.
verify:
	dune build
	dune runtest
	dune exec bench/main.exe -- --micro
	dune exec bench/main.exe -- --gate --repeat 3 --jobs 2 \
	  --check BENCH_PR3.json --tolerance $(BENCH_TOLERANCE)

# Re-record the committed gate baseline (run on an idle machine).
baseline:
	dune exec bench/main.exe -- --gate --repeat 5 --jobs 2 \
	  --baseline BENCH_PR3.json

clean:
	dune clean
