(* Command-line driver: solve a topology with any scheme, compare
   schemes, inspect the catalog, search the max sustainable scale, or
   run the discretization emulator. *)

open Cmdliner
module Instance = Flexile_te.Instance
module Metrics = Flexile_te.Metrics
module Trace = Flexile_util.Trace

(* --trace OUT.json: enable the observability layer for this run and
   dump the merged report when the command finishes *)
let trace_arg =
  let doc =
    "Enable solver tracing and write the structured JSON report (the \
     full metric registry — every module's counters, gauges and \
     timers — plus the hierarchical span tree) to $(docv) when the \
     command completes.  Tracing can also be forced on for any command \
     with FLEXILE_TRACE=1."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

(* --trace-chrome OUT.json: same instrumentation, exported as Chrome
   trace events for Perfetto / chrome://tracing *)
let chrome_arg =
  let doc =
    "Enable solver tracing and write a Chrome trace-event JSON file to \
     $(docv) (load it in Perfetto or chrome://tracing: one track per \
     domain, nested spans for the offline iterations, per-scenario \
     subproblems and master solves, plus counter samples)."
  in
  Arg.(
    value & opt (some string) None & info [ "trace-chrome" ] ~docv:"FILE" ~doc)

let with_trace out chrome f =
  if out <> None || chrome <> None then Trace.set_enabled true;
  f ();
  Option.iter
    (fun path ->
      Flexile_util.Trace_export.write_file path
        (Flexile_te.Flexile_offline.trace_json ());
      Printf.printf "wrote trace to %s\n" path)
    out;
  Option.iter
    (fun path ->
      Flexile_util.Trace_export.write_file path
        (Flexile_util.Trace_export.chrome_json ());
      Printf.printf "wrote Chrome trace to %s (load in Perfetto)\n" path)
    chrome

let verbose_term =
  let doc = "Enable informational logging." in
  let flag = Arg.(value & flag & info [ "v"; "verbose" ] ~doc) in
  let setup v =
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (if v then Some Logs.Info else Some Logs.Warning)
  in
  Term.(const setup $ flag)

let topology_arg =
  let doc = "Topology name from Table 2 (e.g. IBM, Sprint, B4)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TOPOLOGY" ~doc)

let two_class_arg =
  let doc = "Use the two-traffic-class setup (high + low priority)." in
  Arg.(value & flag & info [ "two-class" ] ~doc)

let scenarios_arg =
  let doc =
    "Maximum number of failure scenarios to enumerate ($(docv) = count), or \
     a comma-separated scenario mix (e.g. srlg,partial,drift) enumerated \
     with the default cap.  Regimes: independent, srlg, partial, drift, \
     diurnal, maintenance."
  in
  Arg.(value & opt string "150" & info [ "scenarios" ] ~docv:"N|MIX" ~doc)

let mix_arg =
  let doc =
    "Scenario regime mix to compose, e.g. srlg,partial,drift (default: \
     independent Weibull link failures).  Equivalent to passing the mix \
     directly to --scenarios, but keeps the count configurable."
  in
  Arg.(value & opt (some string) None & info [ "mix" ] ~docv:"MIX" ~doc)

let pairs_arg =
  let doc = "Maximum number of site pairs (sampled deterministically)." in
  Arg.(value & opt int 240 & info [ "max-pairs" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the per-scenario sweeps (0 = auto: FLEXILE_JOBS or \
     one per core).  Results are identical for every value."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

(* --scenarios accepts either an enumeration cap or a mix spec; an
   explicit --mix wins over a mix passed via --scenarios. *)
let parse_scenarios_arg spec =
  match int_of_string_opt (String.trim spec) with
  | Some n ->
      if n <= 0 then failwith "--scenarios: count must be positive";
      (n, None)
  | None -> (150, Some spec)

let build_instance ?(two = false) ?(scenarios = "150") ?mix
    ?(cap_scenarios = max_int) ?(max_pairs = 240) name =
  let count, spec_mix = parse_scenarios_arg scenarios in
  let scenario_mix =
    match mix with
    | Some m -> m
    | None -> Option.value spec_mix ~default:"independent"
  in
  (* validate early for a friendly CLI error *)
  ignore (Flexile_core.Builder.parse_mix scenario_mix);
  let options =
    {
      Flexile_core.Builder.default_options with
      Flexile_core.Builder.max_scenarios = min count cap_scenarios;
      max_pairs;
      scenario_mix;
    }
  in
  Flexile_core.Builder.of_name ~options ~two_classes:two name

let print_instance inst =
  Printf.printf "topology %s: %d nodes, %d links, %d pairs, %d flows, %d scenarios (%.5f%% mass)\n"
    inst.Instance.graph.Flexile_net.Graph.name
    inst.Instance.graph.Flexile_net.Graph.n
    (Flexile_net.Graph.nedges inst.Instance.graph)
    (Array.length inst.Instance.pairs)
    (Instance.nflows inst) (Instance.nscenarios inst)
    (100. *. Flexile_failure.Failure_model.coverage inst.Instance.scenarios);
  Array.iteri
    (fun k (c : Instance.cls) ->
      Printf.printf "  class %d (%s): beta=%.6f weight=%g\n" k c.Instance.cname
        c.Instance.beta c.Instance.weight)
    inst.Instance.classes

let report inst name losses =
  Array.iteri
    (fun k (c : Instance.cls) ->
      Printf.printf "%-16s class %-5s PercLoss(beta=%.4f) = %6.2f%%\n" name
        c.Instance.cname c.Instance.beta
        (100. *. Metrics.perc_loss inst losses ~cls:k ()))
    inst.Instance.classes

(* ---- solve ---- *)

let solve_cmd =
  let iterations =
    Arg.(value & opt int 5 & info [ "iterations" ] ~doc:"Offline decomposition iterations.")
  in
  let gamma =
    Arg.(value & opt (some float) None & info [ "gamma" ]
           ~doc:"Bound non-critical flows' loss to gamma + per-scenario optimum (section 4.4).")
  in
  let run () name two scenarios mix max_pairs iterations gamma jobs trace
      chrome =
    with_trace trace chrome @@ fun () ->
    let inst = build_instance ~two ~scenarios ?mix ~max_pairs name in
    print_instance inst;
    let config =
      {
        Flexile_te.Flexile_offline.default_config with
        Flexile_te.Flexile_offline.max_iterations = iterations;
        gamma;
        jobs;
      }
    in
    let r = Flexile_te.Flexile_scheme.run ~config inst in
    report inst "Flexile" r.Flexile_te.Flexile_scheme.losses;
    let off = r.Flexile_te.Flexile_scheme.offline in
    Printf.printf
      "offline: %d iterations, %d subproblem solves, %.2fs wall, best penalty %.4f\n"
      (List.length off.Flexile_te.Flexile_offline.iterates)
      off.Flexile_te.Flexile_offline.subproblems_solved
      off.Flexile_te.Flexile_offline.wall_time
      off.Flexile_te.Flexile_offline.best.Flexile_te.Flexile_offline.penalty
  in
  let term =
    Term.(const run $ verbose_term $ topology_arg $ two_class_arg
          $ scenarios_arg $ mix_arg $ pairs_arg $ iterations $ gamma
          $ jobs_arg $ trace_arg $ chrome_arg)
  in
  Cmd.v (Cmd.info "solve" ~doc:"Run Flexile (offline + online) on a topology.") term

(* ---- compare ---- *)

let compare_cmd =
  let schemes_arg =
    let doc = "Comma-separated schemes (default: Flexile,SMORE,SWAN-Maxmin)." in
    Arg.(value & opt string "Flexile,SMORE,SWAN-Maxmin" & info [ "schemes" ] ~doc)
  in
  let run () name two scenarios mix max_pairs schemes jobs trace chrome =
    with_trace trace chrome @@ fun () ->
    let inst = build_instance ~two ~scenarios ?mix ~max_pairs name in
    print_instance inst;
    String.split_on_char ',' schemes
    |> List.iter (fun s ->
           match Flexile_core.Schemes.of_string (String.trim s) with
           | None -> Printf.printf "unknown scheme: %s\n" s
           | Some scheme -> (
               try
                 let losses = Flexile_core.Schemes.run ~jobs scheme inst in
                 report inst (Flexile_core.Schemes.name scheme) losses
               with Flexile_core.Schemes.Timeout _ ->
                 Printf.printf "%-16s TLE (size guard)\n"
                   (Flexile_core.Schemes.name scheme)))
  in
  let term =
    Term.(const run $ verbose_term $ topology_arg $ two_class_arg
          $ scenarios_arg $ mix_arg $ pairs_arg $ schemes_arg $ jobs_arg
          $ trace_arg $ chrome_arg)
  in
  Cmd.v (Cmd.info "compare" ~doc:"Compare TE schemes on a topology.") term

(* ---- topologies ---- *)

let topo_cmd =
  let run () =
    Printf.printf "%-16s %6s %6s %8s\n" "name" "nodes" "edges" "bridges?";
    List.iter
      (fun (name, n, m) ->
        let g = Flexile_net.Catalog.by_name name in
        let bridged =
          Array.exists
            (fun (e : Flexile_net.Graph.edge) ->
              not
                (Flexile_net.Graph.connected g
                   ~alive:(fun id -> id <> e.Flexile_net.Graph.id)
                   e.Flexile_net.Graph.u e.Flexile_net.Graph.v))
            g.Flexile_net.Graph.edges
        in
        Printf.printf "%-16s %6d %6d %8s\n" name n m (if bridged then "yes" else "no"))
      Flexile_net.Catalog.table2
  in
  let term = Term.(const run $ verbose_term) in
  Cmd.v (Cmd.info "topologies" ~doc:"List the Table-2 topology catalog.") term

(* ---- scale ---- *)

let scale_cmd =
  let scheme_arg =
    Arg.(value & opt string "Flexile" & info [ "scheme" ] ~doc:"Scheme to search.")
  in
  let run () name scheme jobs =
    match Flexile_core.Schemes.of_string scheme with
    | None -> Printf.printf "unknown scheme: %s\n" scheme
    | Some scheme ->
        let graph = Flexile_net.Catalog.by_name name in
        let options =
          { Flexile_core.Builder.default_options with Flexile_core.Builder.jobs }
        in
        let s = Flexile_core.Max_scale.search ~options ~scheme ~graph () in
        Printf.printf "%s on %s: max low-priority scale with zero 99%%ile loss = %.2f\n"
          (Flexile_core.Schemes.name scheme) name s
  in
  let term = Term.(const run $ verbose_term $ topology_arg $ scheme_arg $ jobs_arg) in
  Cmd.v
    (Cmd.info "scale" ~doc:"Fig 18: max sustainable low-priority traffic scale.")
    term

(* ---- emulate ---- *)

let emulate_cmd =
  let scheme_arg =
    Arg.(value & opt string "Flexile" & info [ "scheme" ] ~doc:"Scheme to emulate.")
  in
  let runs_arg =
    Arg.(value & opt int 5 & info [ "runs" ] ~doc:"Independent emulation runs.")
  in
  let run () name two scenarios mix max_pairs scheme runs jobs =
    match Flexile_core.Schemes.of_string scheme with
    | None -> Printf.printf "unknown scheme: %s\n" scheme
    | Some scheme ->
        let inst = build_instance ~two ~scenarios ?mix ~max_pairs name in
        print_instance inst;
        let model = Flexile_core.Schemes.run ~jobs scheme inst in
        report inst (Flexile_core.Schemes.name scheme ^ " (model)") model;
        for i = 1 to runs do
          let seed = Flexile_util.Prng.of_string (Printf.sprintf "emu-%d" i) in
          let r = Flexile_emu.Emulator.emulate ~seed inst ~model_losses:model in
          Printf.printf "run %d: PCC=%.6f max|diff|=%.4f%%" i
            r.Flexile_emu.Emulator.pcc
            (100. *. r.Flexile_emu.Emulator.max_abs_diff);
          Array.iteri
            (fun k (_ : Instance.cls) ->
              Printf.printf "  PercLoss[%d]=%.2f%%" k
                (100.
                *. Metrics.perc_loss inst r.Flexile_emu.Emulator.emulated ~cls:k
                     ()))
            inst.Instance.classes;
          print_newline ()
        done
  in
  let term =
    Term.(const run $ verbose_term $ topology_arg $ two_class_arg
          $ scenarios_arg $ mix_arg $ pairs_arg $ scheme_arg $ runs_arg
          $ jobs_arg)
  in
  Cmd.v
    (Cmd.info "emulate" ~doc:"Emulate a scheme's allocation with discretization.")
    term

(* ---- monitor ---- *)

(* Replay a seeded stream of failure draws through the online
   allocator (optionally through the emulator) and watch the SLO: the
   offline solve's per-class PercLoss is the promise, Flexile_obs.Slo
   tracks observed attainment and burn rate, and metrics snapshots go
   out as JSONL plus a final Prometheus page.  Artifacts are
   byte-identical across invocations for a fixed seed and job count:
   the exporters run with [~deterministic:true], which restricts them
   to metrics that are pure functions of the seeded work. *)
let monitor_cmd =
  let iterations =
    Arg.(value & opt int 5
         & info [ "iterations" ] ~doc:"Offline decomposition iterations.")
  in
  let seed_arg =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"N"
             ~doc:"Seed of the failure-draw sequence (fully determines the \
                   replay).")
  in
  let draws_arg =
    Arg.(value & opt int 200
         & info [ "draws" ] ~docv:"N" ~doc:"Number of failure draws to replay.")
  in
  let snapshot_arg =
    Arg.(value & opt int 50
         & info [ "snapshot-every" ] ~docv:"N"
             ~doc:"Emit one JSONL metrics+SLO snapshot every $(docv) draws \
                   (and a final one).")
  in
  let window_arg =
    Arg.(value & opt int 100
         & info [ "window" ] ~docv:"N"
             ~doc:"Sliding window (in draws) of the burn-rate computation.")
  in
  let prom_arg =
    Arg.(value & opt (some string) None
         & info [ "prom" ] ~docv:"FILE"
             ~doc:"Write the final metric registry as Prometheus text \
                   exposition format to $(docv).")
  in
  let jsonl_arg =
    Arg.(value & opt (some string) None
         & info [ "jsonl" ] ~docv:"FILE"
             ~doc:"Write the snapshot time series (one JSON object per line) \
                   to $(docv).")
  in
  let emulate_arg =
    Arg.(value & flag
         & info [ "emulate" ]
             ~doc:"Push each drawn scenario's allocation through the \
                   packet-level discretization emulator and observe the \
                   emulated losses instead of the fluid ones.")
  in
  let explain_arg =
    Arg.(value & opt (some string) None
         & info [ "explain" ] ~docv:"FILE"
             ~doc:"Attribute each class's SLO state (miss mass, regimes, \
                   bottlenecks, regret) against the observed losses: every \
                   JSONL snapshot gains an $(b,attribution) field and the \
                   final full report is written to $(docv).  Adds one \
                   clairvoyant LP per (class, scenario) up front, so the \
                   deterministic metric exports differ from a run without \
                   this flag.")
  in
  let run () name two scenarios mix max_pairs iterations jobs seed draws
      snapshot_every window prom jsonl emulate explain =
    (* histograms and counters drive the report; enable unconditionally *)
    Trace.set_enabled true;
    let inst = build_instance ~two ~scenarios ?mix ~max_pairs name in
    print_instance inst;
    let config =
      {
        Flexile_te.Flexile_offline.default_config with
        Flexile_te.Flexile_offline.max_iterations = iterations;
        jobs;
      }
    in
    let off = Flexile_te.Flexile_offline.solve ~config inst in
    let best = off.Flexile_te.Flexile_offline.best in
    let promised =
      Array.init (Array.length inst.Instance.classes) (fun k ->
          Metrics.perc_loss inst best.Flexile_te.Flexile_offline.losses ~cls:k
            ())
    in
    Array.iteri
      (fun k p ->
        Printf.printf "promise class %d (%s): PercLoss <= %.4f%%\n" k
          inst.Instance.classes.(k).Instance.cname (100. *. p))
      promised;
    let slo = Flexile_obs.Slo.create ~window ~promised inst in
    (* gather the attribution inputs once, before the draw loop: the
       online duals and regret baseline depend only on the instance *)
    let attribution =
      Option.map
        (fun _ -> Flexile_obs.Attribution.prepare ~jobs inst ~offline:off ~promised ())
        explain
    in
    let nscen = Instance.nscenarios inst in
    let cum = Array.make nscen 0. in
    let acc = ref 0. in
    Array.iteri
      (fun i (s : Flexile_failure.Failure_model.scenario) ->
        acc := !acc +. s.Flexile_failure.Failure_model.prob;
        cum.(i) <- !acc)
      inst.Instance.scenarios;
    let coverage =
      Flexile_failure.Failure_model.coverage inst.Instance.scenarios
    in
    (* the emulator reads one column of a model matrix; fill lazily *)
    let model = if emulate then Some (Instance.alloc_losses inst) else None in
    let cache = Array.make nscen None in
    let losses_for sid =
      match cache.(sid) with
      | Some a -> a
      | None ->
          let arr = Array.make (Instance.nflows inst) 0. in
          List.iter
            (fun (fid, l) -> arr.(fid) <- l)
            (Flexile_te.Flexile_online.allocate inst ~sid
               ~critical:(fun fid ->
                 best.Flexile_te.Flexile_offline.z.(fid).(sid))
               ~offline_loss:(fun fid ->
                 best.Flexile_te.Flexile_offline.losses.(fid).(sid)));
          let arr =
            match model with
            | None -> arr
            | Some m ->
                Array.iteri (fun fid l -> m.(fid).(sid) <- l) arr;
                (* per-scenario seed: the cache makes each scenario's
                   emulation independent of draw order *)
                let eseed =
                  Flexile_util.Prng.of_string
                    (Printf.sprintf "monitor-emu-%d-%d" seed sid)
                in
                Flexile_emu.Emulator.emulate_scenario ~seed:eseed inst ~sid
                  ~model_losses:m
          in
          cache.(sid) <- Some arr;
          arr
    in
    let rng =
      Flexile_util.Prng.of_string (Printf.sprintf "monitor-%d" seed)
    in
    let jsonl_buf = Buffer.create 4096 in
    for i = 1 to draws do
      let u = Flexile_util.Prng.float rng in
      if u >= coverage then Flexile_obs.Slo.observe_unenumerated slo
      else begin
        let sid = ref 0 in
        while cum.(!sid) <= u do incr sid done;
        Flexile_obs.Slo.observe slo ~sid:!sid ~losses:(losses_for !sid)
      end;
      if i mod snapshot_every = 0 || i = draws then begin
        let attr_field =
          match attribution with
          | None -> ""
          | Some inp ->
              let rep =
                Flexile_obs.Attribution.analyze inp
                  ~losses:(Flexile_obs.Slo.observed_losses slo)
              in
              Printf.sprintf "\"attribution\":%s,"
                (Flexile_obs.Attribution.snapshot_json rep)
        in
        Printf.bprintf jsonl_buf "{\"draw\":%d,\"slo\":%s,%s\"metrics\":%s}\n" i
          (Flexile_obs.Slo.report_json slo) attr_field
          (Flexile_obs.Metrics_export.snapshot_json ~deterministic:true ())
      end
    done;
    Option.iter
      (fun path ->
        match attribution with
        | None -> ()
        | Some inp ->
            let rep =
              Flexile_obs.Attribution.analyze inp
                ~losses:(Flexile_obs.Slo.observed_losses slo)
            in
            let oc = open_out path in
            output_string oc (Flexile_obs.Attribution.report_json rep);
            output_char oc '\n';
            close_out oc;
            Printf.printf "wrote attribution report to %s\n" path)
      explain;
    Option.iter
      (fun path ->
        let oc = open_out path in
        Buffer.output_buffer oc jsonl_buf;
        close_out oc;
        Printf.printf "wrote snapshots to %s\n" path)
      jsonl;
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc
          (Flexile_obs.Metrics_export.prometheus ~deterministic:true ());
        close_out oc;
        Printf.printf "wrote Prometheus metrics to %s\n" path)
      prom;
    Printf.printf
      "monitor: %d draws (%d outside the enumerated set), %d/%d scenarios seen\n"
      (Flexile_obs.Slo.draws slo)
      (Flexile_obs.Slo.unenumerated_draws slo)
      (Flexile_obs.Slo.scenarios_seen slo)
      nscen;
    List.iter
      (fun (r : Flexile_obs.Slo.class_report) ->
        Printf.printf
          "class %d (%s): promised %.4f%% observed %.4f%% %s  bad draws \
           %d/%d  burn rate %.3f (window %d)\n"
          r.Flexile_obs.Slo.rcls r.Flexile_obs.Slo.rname
          (100. *. r.Flexile_obs.Slo.rpromised)
          (100. *. r.Flexile_obs.Slo.robserved)
          (if r.Flexile_obs.Slo.rattained then "ATTAINED" else "MISSED")
          r.Flexile_obs.Slo.rbad_draws
          (Flexile_obs.Slo.draws slo)
          r.Flexile_obs.Slo.rburn_rate r.Flexile_obs.Slo.rwindow_len)
      (Flexile_obs.Slo.report slo)
  in
  let term =
    Term.(const run $ verbose_term $ topology_arg $ two_class_arg
          $ scenarios_arg $ mix_arg $ pairs_arg $ iterations $ jobs_arg
          $ seed_arg $ draws_arg $ snapshot_arg $ window_arg $ prom_arg
          $ jsonl_arg $ emulate_arg $ explain_arg)
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:"Replay a seeded failure stream and report SLO attainment.")
    term

(* ---- explain ---- *)

(* Solve the instance, then attribute every class's percentile
   objective: which scenarios carry the tail mass beyond beta (tagged
   with their failure regime), which capacity edges bind in them (LP
   duals the online allocation already computed), and how much the
   online allocator regrets versus a clairvoyant per-class optimum.
   All artifacts are byte-identical for a fixed instance across runs
   and across --jobs values. *)
let explain_cmd =
  let iterations =
    Arg.(value & opt int 5
         & info [ "iterations" ] ~doc:"Offline decomposition iterations.")
  in
  let tol_arg =
    Arg.(value & opt float 1e-6
         & info [ "tol" ] ~docv:"EPS"
             ~doc:"Slack added to every promise comparison.")
  in
  let top_arg =
    Arg.(value & opt int 5
         & info [ "top" ] ~docv:"N"
             ~doc:"Attributed scenarios listed per class; the rest folds \
                   into the report's other_mass (the reconciliation still \
                   covers it).")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the full attribution report as one-line JSON to \
                   $(docv).")
  in
  let prom_arg =
    Arg.(value & opt (some string) None
         & info [ "prom" ] ~docv:"FILE"
             ~doc:"Write the deterministic metric registry plus the labeled \
                   attribution families (flexile_slo_miss_mass, \
                   flexile_slo_budget_burn, flexile_slo_attainment, \
                   flexile_regret) to $(docv).")
  in
  let regimes_arg =
    Arg.(value & opt (some string) None
         & info [ "regimes" ] ~docv:"FILE"
             ~doc:"Write the regime-conditioned attainment table (per class, \
                   per failure regime) as JSON to $(docv).")
  in
  let run () name two scenarios mix max_pairs iterations jobs tol top out
      prom regimes =
    (* the regret histogram and attribution families need the registry on *)
    Trace.set_enabled true;
    let inst = build_instance ~two ~scenarios ?mix ~max_pairs name in
    print_instance inst;
    let config =
      {
        Flexile_te.Flexile_offline.default_config with
        Flexile_te.Flexile_offline.max_iterations = iterations;
        jobs;
      }
    in
    let off = Flexile_te.Flexile_offline.solve ~config inst in
    let best = off.Flexile_te.Flexile_offline.best in
    let promised =
      Array.init (Array.length inst.Instance.classes) (fun k ->
          Metrics.perc_loss inst best.Flexile_te.Flexile_offline.losses ~cls:k
            ())
    in
    let inp =
      Flexile_obs.Attribution.prepare ~jobs ~tol inst ~offline:off ~promised ()
    in
    let rep =
      Flexile_obs.Attribution.analyze ~top inp
        ~losses:(Flexile_obs.Attribution.online_losses inp)
    in
    let open Flexile_obs.Attribution in
    let edge_name bn = Printf.sprintf "%d (%d-%d)" bn.bedge bn.bu bn.bv in
    List.iter
      (fun a ->
        Printf.printf
          "class %d (%s): %s  promised %.4f%% observed %.4f%% gap %.4f%%\n"
          a.acls a.aname
          (if a.aattained then "ATTAINED" else "MISSED")
          (100. *. a.apromised) (100. *. a.aobserved)
          (100. *. a.apromise_gap);
        Printf.printf
          "  miss mass %.6f = attributed %.6f + beyond-top %.6f + \
           unenumerated %.6f  (budget burn %.3f)\n"
          a.amiss_mass
          (attributed_total a -. a.aother_mass -. a.aunenumerated)
          a.aother_mass a.aunenumerated a.aburn;
        List.iteri
          (fun i s ->
            Printf.printf
              "  #%d scenario %d [%s] p=%.6f loss=%.2f%% attributed=%.6f \
               regret=%.2f%%\n"
              (i + 1) s.ssid s.sregime s.sprob (100. *. s.sloss) s.sattr
              (100. *. s.sregret);
            if s.sbottlenecks <> [] then
              Printf.printf "      binding edges: %s\n"
                (String.concat ", "
                   (List.map
                      (fun bn ->
                        Printf.sprintf "%s dual %.3f" (edge_name bn) bn.bdual)
                      s.sbottlenecks)))
          a.ascenarios;
        List.iter
          (fun g ->
            Printf.printf
              "  regime %-12s mass %.6f attributed %.6f attainment %.4f%% %s \
               regret %.4f%%\n"
              g.gregime g.gmass g.gattr
              (100. *. g.gattainment)
              (if g.gattained then "ATTAINED" else "MISSED")
              (100. *. g.gregret))
          a.aregimes;
        if a.ablame <> [] then
          Printf.printf "  blame: %s\n"
            (String.concat "; "
               (List.map
                  (fun bn ->
                    Printf.sprintf "edge %s %.6f" (edge_name bn) bn.bdual)
                  a.ablame));
        Printf.printf "  regret: expected %.4f%% max %.4f%%\n"
          (100. *. a.aregret_expected)
          (100. *. a.aregret_max))
      rep.classes;
    let write path contents what =
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      Printf.printf "wrote %s to %s\n" what path
    in
    Option.iter
      (fun path -> write path (report_json rep ^ "\n") "attribution report")
      out;
    Option.iter
      (fun path ->
        write path
          (Flexile_obs.Metrics_export.prometheus ~deterministic:true ()
          ^ prometheus_families rep)
          "Prometheus metrics")
      prom;
    Option.iter
      (fun path ->
        write path (regimes_json rep ^ "\n") "regime-conditioned attainment")
      regimes
  in
  let term =
    Term.(const run $ verbose_term $ topology_arg $ two_class_arg
          $ scenarios_arg $ mix_arg $ pairs_arg $ iterations $ jobs_arg
          $ tol_arg $ top_arg $ out_arg $ prom_arg $ regimes_arg)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Attribute SLO misses: scenarios, regimes, bottleneck edges and \
             regret per class.")
    term

(* ---- doctor ---- *)

(* Replay a solve with elevated instrumentation and emit the numerical
   diagnosis (DESIGN.md section 15).  Three sources: a seeded
   pathological fixture (--fixture), a snapshot auto-dumped by a
   health-threshold trip (--from-dump), or a topology, whose full
   offline pipeline is replayed with tracing on and summarized through
   the solver_health projection.  Fixture and dump reports are
   byte-identical for any --jobs value (the flag is accepted for
   interface uniformity and forwarded only to the topology replay). *)
let doctor_cmd =
  let topo_arg =
    let doc =
      "Topology to replay through the offline pipeline (omit when using \
       --fixture or --from-dump)."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"TOPOLOGY" ~doc)
  in
  let fixture_arg =
    let doc =
      "Diagnose a seeded pathological fixture: $(b,near-singular) (an \
       ill-conditioned optimal basis plus a degenerate chain) or \
       $(b,degenerate) (the chain alone)."
    in
    Arg.(value & opt (some string) None & info [ "fixture" ] ~docv:"NAME" ~doc)
  in
  let dump_arg =
    let doc =
      "Diagnose a health snapshot written on a threshold trip (see \
       FLEXILE_HEALTH_DUMP): measures the dumped basis as captured, then \
       replays the dumped model under the recorded eta limit."
    in
    Arg.(
      value & opt (some string) None & info [ "from-dump" ] ~docv:"FILE" ~doc)
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the diagnosis JSON to $(docv) instead of stdout.")
  in
  let no_oracle_arg =
    Arg.(
      value & flag
      & info [ "no-oracle" ]
          ~doc:
            "Skip the dense-reference parity check (fixture/dump modes \
             solve the LP a second time with the frozen dense simplex by \
             default).")
  in
  let iterations =
    Arg.(
      value & opt int 5
      & info [ "iterations" ]
          ~doc:"Offline decomposition iterations (topology mode).")
  in
  let run () topo fixture dump two scenarios mix max_pairs iterations jobs out
      chrome no_oracle =
    let oracle = not no_oracle in
    let deliver what contents =
      match out with
      | None -> print_string contents
      | Some path ->
          Flexile_util.Trace_export.write_file path
            (* write_file appends the newline *)
            (String.sub contents 0
               (let n = String.length contents in
                if n > 0 && contents.[n - 1] = '\n' then n - 1 else n));
          Printf.printf "wrote %s to %s\n" what path
    in
    let write_chrome () =
      Option.iter
        (fun path ->
          Flexile_util.Trace_export.write_file path
            (Flexile_util.Trace_export.chrome_json ());
          Printf.printf "wrote Chrome trace to %s (load in Perfetto)\n" path)
        chrome
    in
    let finish (r : Flexile_lp.Doctor.result) =
      deliver "diagnosis" r.Flexile_lp.Doctor.r_report;
      write_chrome ()
    in
    (* the per-iteration probe/event timeline only exists while the
       registry is on; the in-memory capture works either way *)
    if chrome <> None then Trace.set_enabled true;
    match (fixture, dump, topo) with
    | Some name, None, None -> (
        match Flexile_lp.Doctor.run_fixture ~oracle name with
        | Error e ->
            prerr_endline ("doctor: " ^ e);
            exit 1
        | Ok r -> finish r)
    | None, Some path, None -> (
        match Flexile_lp.Doctor.run_dump ~oracle path with
        | Error e ->
            prerr_endline ("doctor: " ^ e);
            exit 1
        | Ok r -> finish r)
    | None, None, Some name ->
        (* full-pipeline replay: health telemetry accumulates in the
           registry; the report is its solver_health projection *)
        Trace.set_enabled true;
        let inst = build_instance ~two ~scenarios ?mix ~max_pairs name in
        print_instance inst;
        let config =
          {
            Flexile_te.Flexile_offline.default_config with
            Flexile_te.Flexile_offline.max_iterations = iterations;
            jobs;
          }
        in
        let off = Flexile_te.Flexile_offline.solve ~config inst in
        Printf.printf
          "offline: %d iterations, %d subproblem solves, %.2fs wall\n"
          (List.length off.Flexile_te.Flexile_offline.iterates)
          off.Flexile_te.Flexile_offline.subproblems_solved
          off.Flexile_te.Flexile_offline.wall_time;
        let get n = Trace.value_by_name n in
        Printf.printf
          "health: %d samples, %d threshold trips, %d stalls, %d dual-guard \
           trips, %d dumps\n"
          (get "health.samples")
          (get "health.threshold_trips")
          (get "health.stalls")
          (get "health.dual_guard_trips")
          (get "health.dumps");
        let b = Buffer.create 512 in
        Printf.bprintf b
          "{\"schema\":\"flexile-doctor\",\"version\":1,\"source\":{\"kind\":\"topology\",\"name\":\"%s\"},\"solver_health\":%s}\n"
          (String.concat ""
             (List.map
                (fun c -> if c = '"' || c = '\\' then "_" else String.make 1 c)
                (List.init (String.length name) (String.get name))))
          (Flexile_util.Trace_export.solver_health_json ());
        deliver "solver health" (Buffer.contents b);
        write_chrome ()
    | _ ->
        prerr_endline
          "doctor: pass exactly one of --fixture NAME, --from-dump FILE or a \
           TOPOLOGY";
        exit 1
  in
  let term =
    Term.(const run $ verbose_term $ topo_arg $ fixture_arg $ dump_arg
          $ two_class_arg $ scenarios_arg $ mix_arg $ pairs_arg $ iterations
          $ jobs_arg $ out_arg $ chrome_arg $ no_oracle_arg)
  in
  Cmd.v
    (Cmd.info "doctor"
       ~doc:"Diagnose solver numerical health: stalls, ill-conditioning, \
             residual drift.")
    term

(* ---- augment ---- *)

let augment_cmd =
  let limit_arg =
    Arg.(value & opt float 0.0 & info [ "loss-limit" ]
           ~doc:"Allowed PercLoss per class after augmentation.")
  in
  let mode_arg =
    let doc = "Planning mode: flexile (per-flow critical scenarios) or common (scenario-centric)." in
    Arg.(value & opt string "flexile" & info [ "mode" ] ~doc)
  in
  let run () name two scenarios mix max_pairs limit mode =
    let inst = build_instance ~two ~scenarios ?mix ~cap_scenarios:30
        ~max_pairs:(min max_pairs 40) name in
    print_instance inst;
    let mode =
      if String.lowercase_ascii mode = "common" then `Common else `Per_flow
    in
    let perc_limit =
      Array.map (fun (_ : Instance.cls) -> limit) inst.Instance.classes
    in
    let r = Flexile_te.Augment.min_cost ~mode ~perc_limit inst in
    if r.Flexile_te.Augment.cost = infinity then
      print_endline "augmentation infeasible"
    else begin
      Printf.printf "minimum augmentation cost: %.3f%s\n"
        r.Flexile_te.Augment.cost
        (if r.Flexile_te.Augment.optimal then "" else " (not proven optimal)");
      Array.iteri
        (fun e add ->
          if add > 1e-6 then
            let edge = inst.Instance.graph.Flexile_net.Graph.edges.(e) in
            Printf.printf "  link %d-%d: +%.3f\n" edge.Flexile_net.Graph.u
              edge.Flexile_net.Graph.v add)
        r.Flexile_te.Augment.added
    end
  in
  let term =
    Term.(const run $ verbose_term $ topology_arg $ two_class_arg
          $ scenarios_arg $ mix_arg $ pairs_arg $ limit_arg $ mode_arg)
  in
  Cmd.v
    (Cmd.info "augment"
       ~doc:"Minimum-cost capacity augmentation to meet percentile targets.")
    term

let () =
  let info = Cmd.info "flexile" ~doc:"Percentile-aware traffic engineering (CoNEXT'22 reproduction)." in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            solve_cmd; compare_cmd; topo_cmd; scale_cmd; emulate_cmd;
            monitor_cmd; explain_cmd; doctor_cmd; augment_cmd;
          ]))
