(* Per-file suppressions for flexile-lint.

   Each entry allows one rule in the files whose normalised path ends
   with one of the listed suffixes, with a one-line justification that
   is echoed into the JSON summary.  Site-level exceptions should
   prefer a [@lint.allow "rule-id"] attribute next to the offending
   expression; this table is for files whose *purpose* is to be the
   exception (the PRNG is allowed to be random, the domain pool is
   allowed to spawn domains, the figure renderer is allowed to print). *)

type entry = {
  rule : string;
  files : string list;  (* path suffixes, '/'-separated *)
  why : string;
}

let entries =
  [
    {
      rule = "d1-nondet";
      files = [ "lib/util/prng.ml"; "lib/util/trace.ml" ];
      why =
        "the sanctioned nondeterminism sources: the seeded PRNG and the \
         trace monotonic clock";
    };
    {
      rule = "c1-concurrency";
      files = [ "lib/util/parallel.ml"; "lib/util/trace.ml" ];
      why =
        "the domain pool and the per-domain trace state are the only \
         modules allowed to own concurrency primitives (DESIGN.md \
         sections 6-7)";
    };
    {
      rule = "c2-global-mut";
      files = [ "lib/util/parallel.ml"; "lib/util/trace.ml" ];
      why =
        "mutex-guarded process-global pool and metric registry; shared by \
         design and touched only at handle creation / aggregation time";
    };
    {
      rule = "c2-global-mut";
      files = [ "lib/lp/sparse.ml" ];
      why =
        "the sparse simplex kernels deliberately reuse mutable \
         scatter/gather workspaces and amortized-doubling arenas so the \
         pivot loop allocates nothing; all state is owned by the Svec / \
         Basis values, and any module-level scratch added here shares \
         that single-owner discipline (DESIGN.md section 11)";
    };
    {
      rule = "h1-io";
      files = [ "lib/core/figures.ml"; "lib/util/bench_gate.ml" ];
      why =
        "human-readable report renderers whose whole job is terminal \
         output, invoked only from the CLI / bench driver";
    };
  ]

let norm file =
  String.map (fun c -> if c = '\\' then '/' else c) file

let suffix_matches ~file suffix =
  let file = norm file in
  let lf = String.length file and ls = String.length suffix in
  lf >= ls
  && String.sub file (lf - ls) ls = suffix
  && (lf = ls || file.[lf - ls - 1] = '/')

let find ~rule ~file =
  List.find_opt
    (fun e -> e.rule = rule && List.exists (suffix_matches ~file) e.files)
    entries

let allowed ~rule ~file = find ~rule ~file <> None
