(* Per-file suppressions for flexile-lint.

   Each entry allows one rule in the files whose normalised path ends
   with one of the listed suffixes, with a one-line justification that
   is echoed into the JSON summary.  Site-level exceptions should
   prefer a [@lint.allow "rule-id"] attribute next to the offending
   expression; this table is for files whose *purpose* is to be the
   exception (the domain pool is allowed to spawn domains, the figure
   renderer is allowed to print).

   Entries are themselves checked: `flexile-lint --strict-suppressions`
   fails when an (entry, file) pair no longer matches any finding, so
   allowances cannot outlive the code they were written for.  (A d1
   entry for prng.ml/trace.ml and a speculative c2 entry for sparse.ml
   used to live here; both had rotted — the PRNG is a pure seeded
   splitmix and sparse.ml keeps all of its mutable state inside Svec /
   Basis values — and were removed when the staleness check landed.) *)

type entry = {
  rule : string;
  files : string list;  (* path suffixes, '/'-separated *)
  why : string;
}

let entries =
  [
    {
      rule = "c1-concurrency";
      files = [ "lib/util/parallel.ml"; "lib/util/trace.ml" ];
      why =
        "the domain pool and the per-domain trace state are the only \
         modules allowed to own concurrency primitives (DESIGN.md \
         sections 6-7)";
    };
    {
      rule = "c2-global-mut";
      files = [ "lib/util/parallel.ml"; "lib/util/trace.ml" ];
      why =
        "mutex-guarded process-global pool and metric registry; shared by \
         design and touched only at handle creation / aggregation time";
    };
    {
      rule = "h1-io";
      files = [ "lib/core/figures.ml"; "lib/util/bench_gate.ml" ];
      why =
        "human-readable report renderers whose whole job is terminal \
         output, invoked only from the CLI / bench driver";
    };
  ]

let norm file =
  String.map (fun c -> if c = '\\' then '/' else c) file

let suffix_matches ~file suffix =
  let file = norm file in
  let lf = String.length file and ls = String.length suffix in
  lf >= ls
  && String.sub file (lf - ls) ls = suffix
  && (lf = ls || file.[lf - ls - 1] = '/')

let find ~rule ~file =
  List.find_opt
    (fun e -> e.rule = rule && List.exists (suffix_matches ~file) e.files)
    entries

(* Like {!find} but also returns the file suffix that matched, so the
   caller can record which (rule, suffix) pair actually earned its
   keep — the unit the staleness check operates on. *)
let find_with_suffix ~rule ~file =
  List.find_map
    (fun e ->
      if e.rule <> rule then None
      else
        match List.find_opt (suffix_matches ~file) e.files with
        | Some suffix -> Some (e, suffix)
        | None -> None)
    entries

let allowed ~rule ~file = find ~rule ~file <> None

(* Every (rule, file-suffix) pair declared above, for staleness
   accounting in the driver. *)
let declared_pairs =
  List.concat_map (fun e -> List.map (fun f -> (e.rule, f)) e.files) entries
