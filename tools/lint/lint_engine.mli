(** AST-level invariant checker for the Flexile repository.

    Parses [.ml] / [.mli] sources into the compiler's Parsetree and
    walks them with an [Ast_iterator], enforcing the repo-specific
    determinism / concurrency / hygiene rules documented in DESIGN.md
    section 9.  Findings can be suppressed per-site with a
    [[\@lint.allow "rule-id"]] attribute (ids separated by spaces or
    commas) or per-file via {!Lint_config}.

    This module also owns the finding/report vocabulary shared with the
    typedtree-based deep stage ({!Deep_engine}, DESIGN.md section 14),
    plus the stale-suppression pass run by the driver over the merged
    report. *)

type chain_elt = { c_fn : string; c_file : string; c_line : int }
(** One hop of an interprocedural call-chain witness. *)

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
  chain : chain_elt list;  (** [] for syntactic findings *)
}

type allow_site = { a_file : string; a_line : int; a_id : string }
(** One rule id declared by a [[\@lint.allow]] / [[\@lint.alloc_ok]]
    attribute at a specific source position. *)

type report = {
  files_checked : int;
  findings : finding list;  (** source order within a file *)
  suppressed : int;  (** silenced by a [\@lint.allow] attribute *)
  config_suppressed : int;  (** silenced by a {!Lint_config} entry *)
  declared_allows : allow_site list;  (** every suppression site seen *)
  used_allows : allow_site list;  (** sites that silenced >= 1 finding *)
  used_config : (string * string) list;
      (** (rule, file suffix) config pairs that silenced >= 1 finding *)
}

val empty_report : report

val rules : (string * string) list
(** [(rule-id, one-line description)] for every enforced rule, both
    stages plus the driver's staleness rule. *)

val syntactic_rules : (string * string) list
(** The subset enforced by this module. *)

val deep_rules : (string * string) list
(** The subset enforced by {!Deep_engine} (i1/i2/i3). *)

type zone = Lib | Bin | Bench | Test | Other

val zone_of_file : string -> zone
val rule_active : string -> zone -> bool

val allow_ids_of_attrs : Parsetree.attributes -> string list
(** Rule ids named by [[\@lint.allow]] attributes (plus the pseudo-id
    ["alloc-ok"] for [[\@lint.alloc_ok]]). *)

val allow_sites_of_attrs : Parsetree.attributes -> (string * int) list
(** Like {!allow_ids_of_attrs} but each id is paired with the line of
    the attribute that declared it, for used-suppression accounting. *)

val check_source : file:string -> string -> report
(** Lint one compilation unit given as a string.  [file] decides both
    the parser ([.mli] -> interface) and which rules apply (zone:
    [lib/], [bin/], [bench/], [test/]). *)

val check_file : string -> report
(** [check_source] over the contents of [path]. *)

val merge : report list -> report

(** {1 Stale suppressions} *)

type stale = {
  st_kind : string;  (** ["allow-attribute"] or ["config-entry"] *)
  st_file : string;  (** file, or config suffix *)
  st_line : int;  (** 0 for config entries *)
  st_id : string;
  st_detail : string;
}

val stale_suppressions : deep:bool -> report -> stale list
(** Declared-but-unused suppressions in [report].  Full adjudication
    requires [deep:true] (both stages ran, so an unused suppression is
    really unused); a syntactic-only run cannot tell whether the deep
    stage still needs an attribute and therefore only reports unknown
    rule ids (typo catcher).  Attributes in zones where their rule is
    inactive are exempt either way. *)

val finding_of_stale : stale -> finding
(** Render a stale suppression as an [s1-stale-suppress] finding, for
    [--strict-suppressions] mode. *)

val render_finding : finding -> string
(** ["file:line: [rule-id] message"], plus indented call-chain lines
    for deep findings. *)

val json_summary : ?stale:stale list -> report -> string
(** Machine-readable summary, schema [flexile-lint-summary] version 2:
    per-rule counts over the full vocabulary, findings with optional
    ["chain"] witnesses, suppression totals, and the
    ["stale_suppressions"] array. *)
