(** AST-level invariant checker for the Flexile repository.

    Parses [.ml] / [.mli] sources into the compiler's Parsetree and
    walks them with an [Ast_iterator], enforcing the repo-specific
    determinism / concurrency / hygiene rules documented in DESIGN.md
    section 9.  Findings can be suppressed per-site with a
    [[\@lint.allow "rule-id"]] attribute (ids separated by spaces or
    commas) or per-file via {!Lint_config}. *)

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

type report = {
  files_checked : int;
  findings : finding list;  (** source order within a file *)
  suppressed : int;  (** silenced by a [\@lint.allow] attribute *)
  config_suppressed : int;  (** silenced by a {!Lint_config} entry *)
}

val rules : (string * string) list
(** [(rule-id, one-line description)] for every enforced rule. *)

val check_source : file:string -> string -> report
(** Lint one compilation unit given as a string.  [file] decides both
    the parser ([.mli] -> interface) and which rules apply (zone:
    [lib/], [bin/], [bench/], [test/]). *)

val check_file : string -> report
(** [check_source] over the contents of [path]. *)

val merge : report list -> report

val render_finding : finding -> string
(** ["file:line: [rule-id] message"]. *)

val json_summary : report -> string
(** Machine-readable summary: schema version, files checked, per-rule
    counts, the findings array, and suppression totals. *)
