(* AST-level invariant checker: parse with the compiler's own parser,
   walk the Parsetree with an Ast_iterator, report rule hits.  The
   rules encode invariants introduced by earlier PRs (deterministic
   parallel sweeps, DLS-based tracing, tolerance-based numerics); see
   DESIGN.md section 9 for the rationale behind each id.

   This module owns the finding/report vocabulary for BOTH analysis
   stages: the fast syntactic stage implemented here, and the
   typedtree-based deep stage ({!Deep_engine}) which reuses the same
   record types so the driver can merge the two into one summary. *)

open Parsetree

(* One hop of an interprocedural witness: function key, file, line of
   the call (or of the offending site for the last element). *)
type chain_elt = { c_fn : string; c_file : string; c_line : int }

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
  chain : chain_elt list;
      (* call-chain witness for deep findings; [] for syntactic ones *)
}

(* A [@lint.allow]/[@lint.alloc_ok] site, identified by the attribute's
   own source position plus one rule id it names.  Declared sites that
   are never [used] by either stage are stale suppressions. *)
type allow_site = { a_file : string; a_line : int; a_id : string }

type report = {
  files_checked : int;
  findings : finding list;
  suppressed : int;
  config_suppressed : int;
  declared_allows : allow_site list;
  used_allows : allow_site list;
  used_config : (string * string) list;  (* (rule, matched file suffix) *)
}

let empty_report =
  {
    files_checked = 0;
    findings = [];
    suppressed = 0;
    config_suppressed = 0;
    declared_allows = [];
    used_allows = [];
    used_config = [];
  }

(* The full rule vocabulary.  d/c/h rules are enforced by the syntactic
   stage below; i-rules by the typedtree deep stage; s1 is produced by
   the driver's staleness pass. *)
let syntactic_rules =
  [
    ( "d1-nondet",
      "no Random.*, Sys.time, Unix.gettimeofday or hash-randomised tables \
       in lib/; only Flexile_util.Prng and the Trace clock may source \
       nondeterminism" );
    ( "d2-float-eq",
      "no polymorphic =/<>/compare on float operands in lib/; use \
       Flexile_util.Float_cmp helpers" );
    ( "d3-tbl-order",
      "no Hashtbl.iter/Hashtbl.fold in lib/; use Flexile_util.Tbl sorted \
       traversals so bucket order cannot leak into solver output" );
    ( "c1-concurrency",
      "no Domain.spawn, Mutex, Atomic or Condition outside \
       lib/util/parallel.ml and lib/util/trace.ml" );
    ( "c2-global-mut",
      "no module-level mutable ref/Hashtbl globals in lib/ outside the \
       allowlist" );
    ( "h1-io",
      "no Obj.magic, exit or direct printing in lib/; output flows \
       through Trace or the CLI layer" );
  ]

let deep_rules =
  [
    ( "i1-trans-nondet",
      "no function transitively reachable from the Scenario_engine / \
       Parallel entry points (or from a closure handed to a shard API) \
       may touch a nondeterministic primitive, however many calls deep" );
    ( "i2-shard-capture",
      "a closure passed into a Parallel / Scenario_engine shard API must \
       not write captured or module-level mutable state (ref, array, \
       bytes, Hashtbl, mutable record fields); per-worker state comes \
       from the init callback or Domain.DLS" );
    ( "i3-noalloc",
      "the body of a [@lint.noalloc] kernel, and every lib/ function it \
       transitively calls, must not heap-allocate outside the \
       [@lint.alloc_ok] whitelist (amortized arena growth, error paths)" );
  ]

let driver_rules =
  [
    ( "s1-stale-suppress",
      "every Lint_config entry and [@lint.allow]/[@lint.alloc_ok] \
       attribute must still match at least one finding; stale \
       suppressions are reported and fatal under --strict-suppressions" );
  ]

let rules = syntactic_rules @ deep_rules @ driver_rules

(* ------------------------------------------------------------------ *)
(* Zones                                                               *)
(* ------------------------------------------------------------------ *)

type zone = Lib | Bin | Bench | Test | Other

let zone_of_file file =
  let segs = String.split_on_char '/' (Lint_config.norm file) in
  let rec first = function
    | [] -> Other
    | "lib" :: _ -> Lib
    | "bin" :: _ -> Bin
    | "bench" :: _ -> Bench
    | "test" :: _ -> Test
    | _ :: tl -> first tl
  in
  first segs

let rule_active rule zone =
  match rule with
  | "c1-concurrency" -> zone = Lib || zone = Bin || zone = Bench
  | _ -> zone = Lib

(* ------------------------------------------------------------------ *)
(* Identifier classification                                           *)
(* ------------------------------------------------------------------ *)

let flat lid = String.concat "." (Longident.flatten lid)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let d1_ident n =
  if has_prefix ~prefix:"Random." n then
    Some (n ^ " draws from the global RNG; use Flexile_util.Prng")
  else
    match n with
    | "Sys.time" | "Unix.gettimeofday" | "Unix.time" ->
        Some (n ^ " reads the system clock; use Flexile_util.Trace.now_s")
    | "Hashtbl.hash" | "Hashtbl.seeded_hash" | "Hashtbl.randomize" ->
        Some (n ^ " invites hash-order dependence; key tables explicitly")
    | _ -> None

let c1_ident n =
  match n with
  | "Domain.spawn" | "Domain.join" -> true
  | _ ->
      has_prefix ~prefix:"Mutex." n
      || has_prefix ~prefix:"Atomic." n
      || has_prefix ~prefix:"Condition." n

let print_idents =
  [
    "Printf.printf"; "Printf.eprintf"; "Format.printf"; "Format.eprintf";
    "print_string"; "print_endline"; "print_newline"; "print_char";
    "print_int"; "print_float"; "print_bytes"; "prerr_string";
    "prerr_endline"; "prerr_newline"; "prerr_char"; "prerr_int";
    "prerr_float"; "prerr_bytes";
  ]

let h1_ident n =
  if n = "Obj.magic" then Some "Obj.magic defeats the type system"
  else if n = "exit" then
    Some "exit in lib/ kills the host process; return errors to the caller"
  else if List.mem n print_idents then
    Some (n ^ " prints directly; output must flow through Trace or the CLI")
  else None

(* Float.* functions that do NOT return float: calling one of these is
   not evidence that the surrounding comparison is float-typed. *)
let float_mod_non_float =
  [
    "Float.is_nan"; "Float.is_finite"; "Float.is_integer"; "Float.sign_bit";
    "Float.equal"; "Float.compare"; "Float.to_int"; "Float.to_string";
  ]

let float_ops =
  [
    "+."; "-."; "*."; "/."; "**"; "~-."; "~+."; "abs_float"; "sqrt"; "exp";
    "log"; "log10"; "cos"; "sin"; "tan"; "atan"; "atan2"; "ceil"; "floor";
    "mod_float"; "float_of_int"; "float_of_string"; "float";
  ]

let float_consts =
  [ "infinity"; "neg_infinity"; "nan"; "epsilon_float"; "max_float";
    "min_float" ]

let rec is_float_type t =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt = Longident.Lident "float"; _ }, []) -> true
  | Ptyp_constr ({ txt = Longident.Ldot (Longident.Lident "Float", "t"); _ }, [])
    -> true
  | Ptyp_poly (_, t') -> is_float_type t'
  | _ -> false

(* Conservative syntactic evidence that an expression is float-typed:
   literals, float arithmetic, Float.* calls, known float constants and
   explicit (e : float) ascriptions.  Anything else is assumed non-float
   so the rule stays low-noise. *)
let rec is_floatish e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint (inner, t) -> is_float_type t || is_floatish inner
  | Pexp_ident { txt; _ } -> List.mem (flat txt) float_consts
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      let n = flat txt in
      List.mem n float_ops
      || (has_prefix ~prefix:"Float." n && not (List.mem n float_mod_non_float))
  | _ -> false

let eq_ops = [ "="; "<>"; "=="; "!=" ]

(* ------------------------------------------------------------------ *)
(* Suppression attributes                                              *)
(* ------------------------------------------------------------------ *)

let split_ids s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char ',')
  |> List.filter (fun x -> x <> "")

let string_payload = function
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

(* [(id, line-of-attribute)] for every id named by a [@lint.allow]
   attribute in [attrs]; a [@lint.alloc_ok] attribute declares the
   pseudo-id "alloc-ok" (it is consumed by the deep stage's noalloc
   checker, but declared here so staleness covers it too). *)
let allow_sites_of_attrs attrs =
  List.concat_map
    (fun a ->
      let line = a.attr_loc.Location.loc_start.Lexing.pos_lnum in
      if a.attr_name.txt = "lint.allow" then
        match string_payload a.attr_payload with
        | Some s -> List.map (fun id -> (id, line)) (split_ids s)
        | None -> []
      else if a.attr_name.txt = "lint.alloc_ok" then [ ("alloc-ok", line) ]
      else [])
    attrs

let allow_ids_of_attrs attrs = List.map fst (allow_sites_of_attrs attrs)

(* ------------------------------------------------------------------ *)
(* The checker                                                         *)
(* ------------------------------------------------------------------ *)

type stack_entry = { se_id : string; se_line : int; mutable se_used : bool }

type ctx = {
  cfile : string;
  zone : zone;
  mutable out : finding list;
  mutable n_suppressed : int;
  mutable n_config : int;
  mutable allow_stack : stack_entry list;
  mutable expr_depth : int;
  mutable declared : allow_site list;
  mutable used : allow_site list;
  mutable cfg_used : (string * string) list;
}

let declare_site ctx (id, line) =
  let s = { a_file = ctx.cfile; a_line = line; a_id = id } in
  if not (List.mem s ctx.declared) then ctx.declared <- s :: ctx.declared

let mark_used ctx se =
  if not se.se_used then begin
    se.se_used <- true;
    let s = { a_file = ctx.cfile; a_line = se.se_line; a_id = se.se_id } in
    if not (List.mem s ctx.used) then ctx.used <- s :: ctx.used
  end

let hit ctx rule (loc : Location.t) message =
  if rule_active rule ctx.zone then
    match List.find_opt (fun se -> se.se_id = rule) ctx.allow_stack with
    | Some se ->
        mark_used ctx se;
        ctx.n_suppressed <- ctx.n_suppressed + 1
    | None -> (
        match Lint_config.find_with_suffix ~rule ~file:ctx.cfile with
        | Some (_, suffix) ->
            if not (List.mem (rule, suffix) ctx.cfg_used) then
              ctx.cfg_used <- (rule, suffix) :: ctx.cfg_used;
            ctx.n_config <- ctx.n_config + 1
        | None ->
            let p = loc.loc_start in
            ctx.out <-
              {
                file = ctx.cfile;
                line = p.pos_lnum;
                col = p.pos_cnum - p.pos_bol;
                rule;
                message;
                chain = [];
              }
              :: ctx.out)

let with_allow ctx sites f =
  List.iter (declare_site ctx) sites;
  if sites = [] then f ()
  else begin
    let saved = ctx.allow_stack in
    ctx.allow_stack <-
      List.map
        (fun (id, line) -> { se_id = id; se_line = line; se_used = false })
        sites
      @ saved;
    Fun.protect ~finally:(fun () -> ctx.allow_stack <- saved) f
  end

let check_ident ctx loc n =
  (match d1_ident n with Some m -> hit ctx "d1-nondet" loc m | None -> ());
  if n = "Hashtbl.iter" || n = "Hashtbl.fold" then
    hit ctx "d3-tbl-order" loc
      (n
     ^ " visits bindings in bucket order; use Flexile_util.Tbl.sorted_iter/\
        sorted_fold so the order cannot leak into results");
  if c1_ident n then
    hit ctx "c1-concurrency" loc
      (n
     ^ " outside lib/util/{parallel,trace}.ml; route concurrency through \
        Flexile_util.Parallel");
  match h1_ident n with Some m -> hit ctx "h1-io" loc m | None -> ()

let is_false_lit e =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Longident.Lident "false"; _ }, None) -> true
  | _ -> false

let check_apply ctx e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
      let n = flat txt in
      let positional =
        List.filter_map
          (fun (l, a) -> if l = Asttypes.Nolabel then Some a else None)
          args
      in
      (* d2: =/<>/compare with a float-looking operand *)
      (if
         (List.mem n eq_ops || n = "compare" || n = "Stdlib.compare")
         && List.length positional >= 2
         && List.exists is_floatish positional
       then
         hit ctx "d2-float-eq" e.pexp_loc
           ("polymorphic " ^ n
          ^ " on a float operand; use Flexile_util.Float_cmp (eq/zero for \
             tolerance, exactly_* when exact IEEE equality is intended)"));
      (* d1: Hashtbl.create ~random:true (or non-literal) *)
      match n with
      | "Hashtbl.create" ->
          List.iter
            (fun (l, a) ->
              match l with
              | Asttypes.Labelled "random" when not (is_false_lit a) ->
                  hit ctx "d1-nondet" e.pexp_loc
                    "Hashtbl.create ~random makes iteration order depend on \
                     a per-process seed"
              | _ -> ())
            args
      | _ -> ())
  | _ -> ()

(* Module-level mutable state: [let x = ref ...] or
   [let x = Hashtbl.create ...] directly under a structure. *)
let rec global_mut_kind e =
  match e.pexp_desc with
  | Pexp_constraint (inner, _) -> global_mut_kind inner
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match flat txt with
      | "ref" -> Some "ref"
      | "Hashtbl.create" -> Some "Hashtbl"
      | _ -> None)
  | _ -> None

let binding_name vb =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt; _ } -> txt
  | _ -> "_"

let check_global_binding ctx vb =
  match global_mut_kind vb.pvb_expr with
  | None -> ()
  | Some kind ->
      let sites =
        allow_sites_of_attrs (vb.pvb_attributes @ vb.pvb_expr.pexp_attributes)
      in
      with_allow ctx sites (fun () ->
          hit ctx "c2-global-mut" vb.pvb_loc
            ("module-level mutable state (" ^ kind ^ " '" ^ binding_name vb
           ^ "'); pass state explicitly, or annotate with [@lint.allow \
              \"c2-global-mut\"] / add a Lint_config entry with a \
              justification"))

let make_iterator ctx =
  let default = Ast_iterator.default_iterator in
  let expr self e =
    let sites = allow_sites_of_attrs e.pexp_attributes in
    with_allow ctx sites (fun () ->
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } -> check_ident ctx e.pexp_loc (flat txt)
        | Pexp_apply _ -> check_apply ctx e
        | _ -> ());
        ctx.expr_depth <- ctx.expr_depth + 1;
        Fun.protect
          ~finally:(fun () -> ctx.expr_depth <- ctx.expr_depth - 1)
          (fun () -> default.expr self e))
  in
  let structure_item self item =
    let item_sites =
      match item.pstr_desc with
      | Pstr_eval (_, attrs) -> allow_sites_of_attrs attrs
      | _ -> []
    in
    with_allow ctx item_sites (fun () ->
        (match item.pstr_desc with
        | Pstr_value (_, vbs) when ctx.expr_depth = 0 ->
            List.iter (check_global_binding ctx) vbs
        | _ -> ());
        default.structure_item self item)
  in
  let value_binding self vb =
    let sites = allow_sites_of_attrs vb.pvb_attributes in
    with_allow ctx sites (fun () -> default.value_binding self vb)
  in
  { default with expr; structure_item; value_binding }

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let is_intf file =
  String.length file >= 4 && String.sub file (String.length file - 4) 4 = ".mli"

let check_source ~file src =
  let ctx =
    {
      cfile = Lint_config.norm file;
      zone = zone_of_file file;
      out = [];
      n_suppressed = 0;
      n_config = 0;
      allow_stack = [];
      expr_depth = 0;
      declared = [];
      used = [];
      cfg_used = [];
    }
  in
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf file;
  (try
     let it = make_iterator ctx in
     if is_intf file then it.signature it (Parse.interface lexbuf)
     else it.structure it (Parse.implementation lexbuf)
   with exn ->
     let line, col =
       match exn with
       | Syntaxerr.Error e ->
           let loc = Syntaxerr.location_of_error e in
           (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
       | _ -> (lexbuf.lex_curr_p.pos_lnum, 0)
     in
     ctx.out <-
       {
         file = ctx.cfile;
         line;
         col;
         rule = "parse-error";
         message = "source failed to parse: " ^ Printexc.to_string exn;
         chain = [];
       }
       :: ctx.out);
  {
    files_checked = 1;
    findings = List.rev ctx.out;
    suppressed = ctx.n_suppressed;
    config_suppressed = ctx.n_config;
    declared_allows = List.rev ctx.declared;
    used_allows = List.rev ctx.used;
    used_config = List.rev ctx.cfg_used;
  }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_file path = check_source ~file:path (read_file path)

let union a b = a @ List.filter (fun x -> not (List.mem x a)) b

let merge reports =
  List.fold_left
    (fun acc r ->
      {
        files_checked = acc.files_checked + r.files_checked;
        findings = acc.findings @ r.findings;
        suppressed = acc.suppressed + r.suppressed;
        config_suppressed = acc.config_suppressed + r.config_suppressed;
        declared_allows = union acc.declared_allows r.declared_allows;
        used_allows = union acc.used_allows r.used_allows;
        used_config = union acc.used_config r.used_config;
      })
    empty_report reports

(* ------------------------------------------------------------------ *)
(* Staleness                                                           *)
(* ------------------------------------------------------------------ *)

(* A suppression kind is only judged by a run that actually enforces
   the rules it can silence: a syntactic-only run must not call the
   deep-stage attributes stale. *)
type stale = {
  st_kind : string;  (* "allow-attribute" | "config-entry" *)
  st_file : string;
  st_line : int;  (* 0 for config entries *)
  st_id : string;  (* rule id, or "alloc-ok" *)
  st_detail : string;
}

let known_ids = "alloc-ok" :: List.map fst rules

(* A syntactic-only run cannot tell whether the deep stage still needs
   a suppression (the sanctioned wrappers in Float_cmp / Tbl silence
   i1 seeds via their d2/d3 attributes), so it only reports unknown
   rule ids; full adjudication happens when [deep] runs both stages. *)
let stale_suppressions ~deep report =
  let checked id =
    deep
    && (List.mem_assoc id syntactic_rules
       || List.mem_assoc id deep_rules
       || id = "alloc-ok")
  in
  let attr_stales =
    List.filter_map
      (fun s ->
        if List.mem s report.used_allows then None
        else if not (List.mem s.a_id known_ids) then
          Some
            {
              st_kind = "allow-attribute";
              st_file = s.a_file;
              st_line = s.a_line;
              st_id = s.a_id;
              st_detail = "names an unknown rule id (typo?)";
            }
        else if
          checked s.a_id
          && rule_active
               (if s.a_id = "alloc-ok" then "i3-noalloc" else s.a_id)
               (zone_of_file s.a_file)
          (* deep-rule attributes only count where the deep stage looks *)
          && ((not (List.mem_assoc s.a_id deep_rules)) && s.a_id <> "alloc-ok"
             || zone_of_file s.a_file = Lib)
        then
          Some
            {
              st_kind = "allow-attribute";
              st_file = s.a_file;
              st_line = s.a_line;
              st_id = s.a_id;
              st_detail = "no longer matches any finding; delete it";
            }
        else None)
      report.declared_allows
  in
  let config_stales =
    List.filter_map
      (fun (rule, suffix) ->
        if List.mem (rule, suffix) report.used_config then None
        else if not (checked rule) then None
        else
          Some
            {
              st_kind = "config-entry";
              st_file = suffix;
              st_line = 0;
              st_id = rule;
              st_detail =
                "Lint_config entry no longer matches any finding in this \
                 file; remove the suffix (or the whole entry)";
            })
      Lint_config.declared_pairs
  in
  attr_stales @ config_stales

let finding_of_stale s =
  {
    file = s.st_file;
    line = s.st_line;
    col = 0;
    rule = "s1-stale-suppress";
    message =
      Printf.sprintf "stale %s for '%s': %s" s.st_kind s.st_id s.st_detail;
    chain = [];
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render_chain chain =
  match chain with
  | [] -> ""
  | _ ->
      "\n    via "
      ^ String.concat "\n     -> "
          (List.map
             (fun c -> Printf.sprintf "%s (%s:%d)" c.c_fn c.c_file c.c_line)
             chain)

let render_finding f =
  Printf.sprintf "%s:%d: [%s] %s%s" f.file f.line f.rule f.message
    (render_chain f.chain)

(* JSON emission mirrors the conventions of Flexile_util.Trace_export:
   hand-rolled Buffer writer, escaped strings, stable field order. *)
let esc b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let json_summary ?(stale = []) r =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"schema\": \"flexile-lint-summary\",\n";
  Buffer.add_string b "  \"version\": 2,\n";
  Buffer.add_string b
    (Printf.sprintf "  \"files_checked\": %d,\n" r.files_checked);
  Buffer.add_string b
    (Printf.sprintf "  \"total_findings\": %d,\n" (List.length r.findings));
  Buffer.add_string b (Printf.sprintf "  \"suppressed\": %d,\n" r.suppressed);
  Buffer.add_string b
    (Printf.sprintf "  \"config_suppressed\": %d,\n" r.config_suppressed);
  Buffer.add_string b "  \"counts\": {";
  List.iteri
    (fun i (id, _) ->
      if i > 0 then Buffer.add_string b ", ";
      let n =
        List.length (List.filter (fun f -> f.rule = id) r.findings)
      in
      esc b id;
      Buffer.add_string b (Printf.sprintf ": %d" n))
    rules;
  Buffer.add_string b "},\n  \"findings\": [";
  List.iteri
    (fun i f ->
      Buffer.add_string b (if i = 0 then "\n" else ",\n");
      Buffer.add_string b "    {\"file\": ";
      esc b f.file;
      Buffer.add_string b (Printf.sprintf ", \"line\": %d, \"col\": %d, " f.line f.col);
      Buffer.add_string b "\"rule\": ";
      esc b f.rule;
      Buffer.add_string b ", \"message\": ";
      esc b f.message;
      (match f.chain with
      | [] -> ()
      | chain ->
          Buffer.add_string b ", \"chain\": [";
          List.iteri
            (fun j c ->
              if j > 0 then Buffer.add_string b ", ";
              Buffer.add_string b "{\"fn\": ";
              esc b c.c_fn;
              Buffer.add_string b ", \"file\": ";
              esc b c.c_file;
              Buffer.add_string b (Printf.sprintf ", \"line\": %d}" c.c_line))
            chain;
          Buffer.add_string b "]");
      Buffer.add_string b "}")
    r.findings;
  if r.findings <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "],\n  \"stale_suppressions\": [";
  List.iteri
    (fun i s ->
      Buffer.add_string b (if i = 0 then "\n" else ",\n");
      Buffer.add_string b "    {\"kind\": ";
      esc b s.st_kind;
      Buffer.add_string b ", \"file\": ";
      esc b s.st_file;
      Buffer.add_string b (Printf.sprintf ", \"line\": %d, \"id\": " s.st_line);
      esc b s.st_id;
      Buffer.add_string b ", \"detail\": ";
      esc b s.st_detail;
      Buffer.add_string b "}")
    stale;
  if stale <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "]\n}\n";
  Buffer.contents b
