(* flexile-lint CLI: walk the given directories (default: lib bin bench
   test), lint every .ml/.mli, print one diagnostic per finding and
   optionally a JSON summary, exit non-zero on any unsuppressed hit. *)

module Lint_engine = Flexile_lint.Lint_engine

let usage = "flexile-lint [--json FILE] [--quiet] [DIR|FILE]..."

let has_suffix s suf =
  let ls = String.length s and lu = String.length suf in
  ls >= lu && String.sub s (ls - lu) lu = suf

let rec collect acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left
         (fun acc entry ->
           if entry = "_build" || entry = ".git" then acc
           else collect acc (Filename.concat path entry))
         acc
  else if has_suffix path ".ml" || has_suffix path ".mli" then path :: acc
  else acc

let () =
  let json_out = ref None in
  let quiet = ref false in
  let roots = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--json" :: f :: rest ->
        json_out := Some f;
        parse_args rest
    | "--quiet" :: rest ->
        quiet := true;
        parse_args rest
    | ("--help" | "-h") :: _ ->
        print_endline usage;
        exit 0
    | a :: rest ->
        roots := a :: !roots;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let roots =
    match List.rev !roots with
    | [] -> [ "lib"; "bin"; "bench"; "test" ]
    | rs -> rs
  in
  let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
  List.iter (Printf.eprintf "flexile-lint: no such path: %s\n") missing;
  let files =
    List.filter (fun r -> Sys.file_exists r) roots
    |> List.fold_left collect []
    |> List.sort compare
  in
  let report =
    Lint_engine.merge (List.map Lint_engine.check_file files)
  in
  if not !quiet then
    List.iter
      (fun f -> print_endline (Lint_engine.render_finding f))
      report.Lint_engine.findings;
  (match !json_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Lint_engine.json_summary report);
      close_out oc);
  let n = List.length report.Lint_engine.findings in
  if not !quiet then
    Printf.printf "flexile-lint: %d file(s), %d finding(s), %d suppressed, %d config-allowed\n"
      report.Lint_engine.files_checked n report.Lint_engine.suppressed
      report.Lint_engine.config_suppressed;
  if n > 0 || missing <> [] then exit 1
