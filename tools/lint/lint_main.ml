(* flexile-lint CLI: walk the given directories (default: lib bin bench
   test), lint every .ml/.mli with the syntactic stage, print one
   diagnostic per finding and optionally a JSON summary (schema v2),
   exit non-zero on any unsuppressed hit.

   --deep additionally runs the typedtree stage over the .cmt artifacts
   dune left under _build/default for every lib/-zone root (so run it
   after `dune build`); --strict-suppressions turns stale allowlist
   entries and [@lint.allow] attributes into s1 findings. *)

module Lint_engine = Flexile_lint.Lint_engine
module Deep_engine = Flexile_lint.Deep_engine

let usage =
  "flexile-lint [--deep] [--strict-suppressions] [--json FILE] [--quiet]\n\
  \             [--deep-root Module.Path]... [DIR|FILE]..."

let has_suffix s suf =
  let ls = String.length s and lu = String.length suf in
  ls >= lu && String.sub s (ls - lu) lu = suf

let rec collect ~suffixes acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left
         (fun acc entry ->
           if entry = "_build" || entry = ".git" then acc
           else collect ~suffixes acc (Filename.concat path entry))
         acc
  else if List.exists (has_suffix path) suffixes then path :: acc
  else acc

(* cmts for root "lib" live under _build/default/lib/**/.<lib>.objs/byte/ *)
let cmts_for_root root =
  let dir = Filename.concat "_build/default" root in
  if Sys.file_exists dir then
    collect ~suffixes:[ ".cmt" ] [] dir |> List.sort compare
  else []

let () =
  let json_out = ref None in
  let quiet = ref false in
  let deep = ref false in
  let strict = ref false in
  let deep_roots = ref [] in
  let roots = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--json" :: f :: rest ->
        json_out := Some f;
        parse_args rest
    | "--quiet" :: rest ->
        quiet := true;
        parse_args rest
    | "--deep" :: rest ->
        deep := true;
        parse_args rest
    | "--strict-suppressions" :: rest ->
        strict := true;
        parse_args rest
    | "--deep-root" :: m :: rest ->
        deep_roots := m :: !deep_roots;
        parse_args rest
    | ("--help" | "-h") :: _ ->
        print_endline usage;
        exit 0
    | a :: rest ->
        roots := a :: !roots;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let roots =
    match List.rev !roots with
    | [] -> [ "lib"; "bin"; "bench"; "test" ]
    | rs -> rs
  in
  let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
  List.iter (Printf.eprintf "flexile-lint: no such path: %s\n") missing;
  let files =
    List.filter (fun r -> Sys.file_exists r) roots
    |> List.fold_left (collect ~suffixes:[ ".ml"; ".mli" ]) []
    |> List.sort compare
  in
  let syntactic =
    Lint_engine.merge (List.map Lint_engine.check_file files)
  in
  let deep_report =
    if not !deep then None
    else begin
      (* the deep stage only reasons about lib/ invariants; other zones
         hold fixtures and drivers whose cmts would add noise *)
      let lib_roots =
        List.filter
          (fun r -> Lint_engine.zone_of_file (r ^ "/x.ml") = Lint_engine.Lib)
          roots
      in
      let cmts = List.concat_map cmts_for_root lib_roots in
      if cmts = [] then
        Printf.eprintf
          "flexile-lint: --deep found no .cmt artifacts under \
           _build/default (run `dune build` first)\n";
      let dr =
        match List.rev !deep_roots with
        | [] -> Deep_engine.default_roots
        | rs -> rs
      in
      Some (Deep_engine.analyze ~roots:dr cmts)
    end
  in
  let report =
    match deep_report with
    | None -> syntactic
    | Some d -> Lint_engine.merge [ syntactic; d ]
  in
  let stale = Lint_engine.stale_suppressions ~deep:!deep report in
  let report =
    if !strict then
      {
        report with
        Lint_engine.findings =
          report.Lint_engine.findings
          @ List.map Lint_engine.finding_of_stale stale;
      }
    else report
  in
  if not !quiet then begin
    List.iter
      (fun f -> print_endline (Lint_engine.render_finding f))
      report.Lint_engine.findings;
    if not !strict then
      List.iter
        (fun s ->
          Printf.printf "warning: %s\n"
            (Lint_engine.render_finding (Lint_engine.finding_of_stale s)))
        stale
  end;
  (match !json_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Lint_engine.json_summary ~stale report);
      close_out oc);
  let n = List.length report.Lint_engine.findings in
  if not !quiet then
    Printf.printf
      "flexile-lint: %d file(s)%s, %d finding(s), %d suppressed, \
       %d config-allowed, %d stale suppression(s)%s\n"
      report.Lint_engine.files_checked
      (if !deep then " (deep)" else "")
      n report.Lint_engine.suppressed report.Lint_engine.config_suppressed
      (List.length stale)
      (if stale <> [] && not !strict then " [warning]" else "");
  if n > 0 || missing <> [] then exit 1
