(* Typedtree-based deep analysis stage: read .cmt artifacts, summarise
   every top-level function (calls, nondeterministic primitive uses,
   allocation sites, shard-closure captures, lint attributes), then run
   the three interprocedural analyses over the summaries:

     i1-trans-nondet  taint reachability from sweep entry points
     i2-shard-capture mutable captures written inside shard closures
     i3-noalloc       transitive allocation freedom of pivot kernels

   Soundness boundaries (documented in DESIGN.md section 14): i2 flags
   direct writes to captured state only (aliasing a captured ref into a
   callee escapes the analysis); i3 ignores float boxing (the dynamic
   span GC-delta check remains the evidence there) and sanctions local
   refs whose every use is a deref/assign; calls through parameters are
   unfollowable and are therefore rejected inside noalloc contexts and
   ignored elsewhere. *)

open Typedtree
module L = Lint_engine

let default_roots = [ "Flexile_te.Scenario_engine"; "Flexile_util.Parallel" ]

let shard_apis =
  [
    "Flexile_util.Parallel.map";
    "Flexile_util.Parallel.map_reduce";
    "Flexile_te.Scenario_engine.sweep";
    "Flexile_te.Scenario_engine.sweep_some";
    "Flexile_te.Scenario_engine.sweep_losses";
  ]

(* ------------------------------------------------------------------ *)
(* Canonical names                                                     *)
(* ------------------------------------------------------------------ *)

(* Dune wraps libraries, so cross-module references surface as
   "Flexile_util__Parallel.map"; canonical form replaces the mangling
   with a dot and drops the "Stdlib." prefix stdlib references carry. *)
let split_on_string ~sep s =
  let ls = String.length sep and n = String.length s in
  let rec go start i acc =
    if i + ls > n then List.rev (String.sub s start (n - start) :: acc)
    else if String.sub s i ls = sep then
      go (i + ls) (i + ls) (String.sub s start (i - start) :: acc)
    else go start (i + 1) acc
  in
  go 0 0 []

let canon_component c = String.concat "." (split_on_string ~sep:"__" c)

let strip_stdlib n =
  if String.length n > 7 && String.sub n 0 7 = "Stdlib." then
    String.sub n 7 (String.length n - 7)
  else n

let canon_name aliases raw =
  let n =
    String.split_on_char '.' raw
    |> List.map canon_component
    |> String.concat "." |> strip_stdlib
  in
  (* a local [module P = Flexile_util.Parallel] alias makes references
     surface as "P.map"; rewrite the head through the per-cmt map *)
  match String.index_opt n '.' with
  | None -> n
  | Some i -> (
      let head = String.sub n 0 i in
      match Hashtbl.find_opt aliases head with
      | Some target -> target ^ String.sub n i (String.length n - i)
      | None -> n)

(* ------------------------------------------------------------------ *)
(* Primitive / whitelist tables                                        *)
(* ------------------------------------------------------------------ *)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Raw nondeterminism seeds for i1, each tagged with the syntactic
   rule it descends from so a [@lint.allow "d3-tbl-order"] on the
   sanctioned wrapper also silences the seed.  The sanctioned sources
   (Flexile_util.Prng, Trace.now_s) are deliberately absent: taint
   starts at the primitives the sanctioned wrappers exist to replace. *)
let nondet_prim n =
  if has_prefix ~prefix:"Random." n then
    Some (n ^ " (global RNG)", "d1-nondet")
  else
    match n with
    | "Sys.time" | "Unix.gettimeofday" | "Unix.time" ->
        Some (n ^ " (wall clock)", "d1-nondet")
    | "Hashtbl.hash" | "Hashtbl.seeded_hash" | "Hashtbl.randomize" ->
        Some (n ^ " (hash randomisation)", "d1-nondet")
    | "Hashtbl.iter" | "Hashtbl.fold" ->
        Some (n ^ " (unordered table traversal)", "d3-tbl-order")
    | _ -> None

let eq_prims = [ "="; "<>"; "=="; "!="; "compare" ]

(* (canonical mutator, index of the positional argument it mutates) *)
let mutators =
  [
    (":=", 0); ("incr", 0); ("decr", 0);
    ("Array.set", 0); ("Array.unsafe_set", 0); ("Array.fill", 0);
    ("Array.blit", 2);
    ("Bytes.set", 0); ("Bytes.unsafe_set", 0); ("Bytes.fill", 0);
    ("Bytes.blit", 2); ("Bytes.blit_string", 2);
    ("Hashtbl.add", 0); ("Hashtbl.replace", 0); ("Hashtbl.remove", 0);
    ("Hashtbl.reset", 0); ("Hashtbl.clear", 0);
    ("Buffer.add_string", 0); ("Buffer.add_char", 0); ("Buffer.add_buffer", 0);
    ("Buffer.clear", 0); ("Buffer.reset", 0);
    ("Queue.push", 1); ("Queue.add", 1); ("Queue.pop", 0); ("Queue.take", 0);
    ("Queue.clear", 0);
    ("Stack.push", 1); ("Stack.pop", 0); ("Stack.clear", 0);
    ("Atomic.set", 0); ("Atomic.exchange", 0); ("Atomic.incr", 0);
    ("Atomic.decr", 0); ("Atomic.fetch_and_add", 0);
  ]

(* Stdlib calls known to return a fresh heap block. *)
let allocators =
  [
    "ref"; "Array.make"; "Array.create_float"; "Array.init"; "Array.copy";
    "Array.append"; "Array.sub"; "Array.of_list"; "Array.to_list";
    "Array.map"; "Array.mapi"; "Array.make_matrix";
    "Bytes.create"; "Bytes.make"; "Bytes.copy"; "Bytes.sub";
    "Bytes.to_string"; "Bytes.of_string";
    "String.make"; "String.init"; "String.sub"; "String.concat";
    "String.map"; "^"; "@";
    "Hashtbl.create"; "Buffer.create"; "Buffer.contents"; "Queue.create";
    "Stack.create"; "Printf.sprintf"; "Format.asprintf";
    "List.map"; "List.mapi"; "List.rev"; "List.append"; "List.concat";
    "List.filter"; "List.filter_map"; "List.init"; "List.sort";
    "List.rev_map"; "List.concat_map";
  ]

(* Calls a [@lint.noalloc] body may make freely: arithmetic, in-place
   array/bytes access, comparisons, glue.  Everything else must resolve
   to an analysed function or be [@lint.alloc_ok]. *)
let noalloc_whitelist =
  [
    "+"; "-"; "*"; "/"; "mod"; "land"; "lor"; "lxor"; "lsl"; "lsr"; "asr";
    "+."; "-."; "*."; "/."; "**"; "~-"; "~-."; "~+"; "~+."; "abs";
    "abs_float"; "sqrt"; "exp"; "log"; "log10"; "floor"; "ceil";
    "float_of_int"; "int_of_float"; "truncate"; "succ"; "pred";
    "="; "<>"; "<"; ">"; "<="; ">="; "=="; "!="; "compare"; "min"; "max";
    "&&"; "||"; "not"; "ignore"; "fst"; "snd"; "@@"; "|>";
    "!"; ":="; "incr"; "decr";
    "Array.get"; "Array.set"; "Array.unsafe_get"; "Array.unsafe_set";
    "Array.length"; "Array.fill"; "Array.blit";
    "Bytes.get"; "Bytes.set"; "Bytes.unsafe_get"; "Bytes.unsafe_set";
    "Bytes.length"; "Bytes.fill"; "Bytes.blit";
    "String.length"; "String.get"; "String.unsafe_get";
    "Float.abs"; "Float.min"; "Float.max"; "Float.compare"; "Float.equal";
    "Float.of_int"; "Float.to_int"; "Float.is_nan";
    "Int.abs"; "Int.min"; "Int.max"; "Int.compare"; "Int.equal";
  ]

(* Error paths are exempt from i3: allocation feeding a raise is fine. *)
let raise_family =
  [ "raise"; "raise_notrace"; "failwith"; "invalid_arg"; "exit" ]

(* ------------------------------------------------------------------ *)
(* Per-function summaries                                              *)
(* ------------------------------------------------------------------ *)

type fn_info = {
  key : string;  (* canonical dotted name, e.g. Flexile_lp.Sparse.Svec.add *)
  fi_file : string;
  fi_line : int;
  mutable calls : (string * int) list;  (* canonical callee, call line *)
  mutable param_calls : (string * int) list;  (* unfollowable callees *)
  mutable prims : (string * int) list;  (* nondet primitive, line *)
  mutable allocs : (string * int) list;  (* what allocates, line *)
  mutable shard_caller : bool;
  noalloc : bool;
  alloc_ok : bool;
  allows : (string * int) list;  (* allow id, attribute line *)
}

type global = {
  fns : (string, fn_info) Hashtbl.t;
  mutable fn_order : string list;  (* reverse definition order *)
  ident_keys : (string, string) Hashtbl.t;  (* Ident.unique_name -> key *)
  mutable findings : L.finding list;
  mutable n_suppressed : int;
  mutable n_config : int;
  mutable used_allows : L.allow_site list;
  mutable used_config : (string * string) list;
}

let has_attr name attrs =
  List.exists (fun a -> a.Parsetree.attr_name.txt = name) attrs

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

(* Suppression for a deep finding attributed to [fn]: a matching
   [@lint.allow] on the function's binding, else a Lint_config entry
   for the function's file. *)
let emit g fn rule ~line ~chain message =
  match List.find_opt (fun (id, _) -> id = rule) fn.allows with
  | Some (id, aline) ->
      g.n_suppressed <- g.n_suppressed + 1;
      let s = { L.a_file = fn.fi_file; a_line = aline; a_id = id } in
      if not (List.mem s g.used_allows) then
        g.used_allows <- s :: g.used_allows
  | None -> (
      match Lint_config.find_with_suffix ~rule ~file:fn.fi_file with
      | Some (_, suffix) ->
          g.n_config <- g.n_config + 1;
          if not (List.mem (rule, suffix) g.used_config) then
            g.used_config <- (rule, suffix) :: g.used_config
      | None ->
          g.findings <-
            { L.file = fn.fi_file; line; col = 0; rule; message; chain }
            :: g.findings)

let mark_alloc_ok_used g fn =
  match List.find_opt (fun (id, _) -> id = "alloc-ok") fn.allows with
  | Some (_, aline) ->
      let s = { L.a_file = fn.fi_file; a_line = aline; a_id = "alloc-ok" } in
      if not (List.mem s g.used_allows) then
        g.used_allows <- s :: g.used_allows
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Expression walk (one top-level binding at a time)                   *)
(* ------------------------------------------------------------------ *)

type walk_state = {
  g : global;
  fn : fn_info;
  aliases : (string, string) Hashtbl.t;
  locals : (string, [ `Walked | `Param ]) Hashtbl.t;
  mutable err_depth : int;  (* > 0 inside raise/assert arguments *)
  mutable allow_scope : (string * int) list;
      (* expression-level [@lint.allow] sites currently in scope *)
}

(* A seed primitive is silenced by an in-scope or binding-level allow
   naming either the taint rule or the syntactic rule it descends
   from; that keeps the sanctioned wrappers (Tbl, Float_cmp) out of
   the taint graph without a second annotation vocabulary. *)
let record_prim st (what, seed_rule) line =
  let sites = st.allow_scope @ st.fn.allows in
  match
    List.find_opt
      (fun (id, _) -> id = seed_rule || id = "i1-trans-nondet")
      sites
  with
  | Some (id, aline) ->
      st.g.n_suppressed <- st.g.n_suppressed + 1;
      let s = { L.a_file = st.fn.fi_file; a_line = aline; a_id = id } in
      if not (List.mem s st.g.used_allows) then
        st.g.used_allows <- s :: st.g.used_allows
  | None -> st.fn.prims <- (what, line) :: st.fn.prims

let is_float_ty ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Path.same p Predef.path_float
  | _ -> false

let rec is_arrow_ty ty =
  match Types.get_desc ty with
  | Types.Tarrow _ -> true
  | Types.Tpoly (t, _) -> is_arrow_ty t
  | _ -> false

(* Resolve a value reference to one of: an unfollowable local (`Param),
   an already-walked local binding (`Walked), or a canonical name. *)
let resolve st path =
  match path with
  | Path.Pident id when not (Ident.global id) -> (
      let uid = Ident.unique_name id in
      match Hashtbl.find_opt st.g.ident_keys uid with
      | Some key -> `Name key
      | None -> (
          match Hashtbl.find_opt st.locals uid with
          | Some `Walked -> `Local
          | Some `Param -> `Param (Ident.name id)
          | None -> `Param (Ident.name id)))
  | _ -> `Name (canon_name st.aliases (Path.name path))

let record_alloc st what line =
  if st.err_depth = 0 then st.fn.allocs <- (what, line) :: st.fn.allocs

(* A bare identifier only matters when it denotes a function value (it
   may be handed onward and executed); plain data uses of parameters
   and toplevel constants are not call edges. *)
let record_ref st path e =
  if is_arrow_ty e.exp_type then
    let loc = e.exp_loc in
    match resolve st path with
    | `Local -> ()
    | `Param p -> st.fn.param_calls <- (p, line_of loc) :: st.fn.param_calls
    | `Name n -> (
        (match nondet_prim n with
        | Some prim -> record_prim st prim (line_of loc)
        | None -> ());
        if List.mem n allocators then
          record_alloc st ("call to " ^ n) (line_of loc);
        (* keep an edge to every analysed function referenced, applied
           or not: a function value handed onward still executes *)
        if String.contains n '.' || Hashtbl.mem st.g.fns n then
          st.fn.calls <- (n, line_of loc) :: st.fn.calls)

let positional args =
  List.filter_map
    (fun (l, a) -> match (l, a) with Asttypes.Nolabel, Some e -> Some e | _ -> None)
    args

let rec base_ident e =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some p
  | Texp_field (e', _, _) -> base_ident e'
  | _ -> None

(* ---- capture analysis for i2 ------------------------------------- *)

let bound_idents_of closure =
  let tbl = Hashtbl.create 16 in
  let default = Tast_iterator.default_iterator in
  let pat : type k. Tast_iterator.iterator -> k general_pattern -> unit =
   fun self p ->
    (match classify_pattern p with
    | Value ->
        List.iter
          (fun id -> Hashtbl.replace tbl (Ident.unique_name id) ())
          (pat_bound_idents p)
    | Computation -> ());
    default.pat self p
  in
  let it = { default with pat } in
  it.expr it closure;
  (* the closure's own parameters count as bound *)
  let rec params e =
    match e.exp_desc with
    | Texp_function { param; cases; _ } ->
        Hashtbl.replace tbl (Ident.unique_name param) ();
        List.iter (fun c -> params c.c_rhs) cases
    | _ -> ()
  in
  params closure;
  tbl

(* Writes inside [closure] whose target is not locally bound: the
   captured-mutable-state race class.  DLS accesses are exempt (that is
   the sanctioned per-worker channel). *)
let closure_capture_writes st closure =
  let bound = bound_idents_of closure in
  let out = ref [] in
  let captured p =
    match p with
    | Path.Pident id when not (Ident.global id) ->
        not (Hashtbl.mem bound (Ident.unique_name id))
    | _ -> true (* module-level state is never per-worker *)
  in
  let describe p = canon_name st.aliases (Path.name p) in
  let default = Tast_iterator.default_iterator in
  let expr self e =
    (match e.exp_desc with
    | Texp_setfield (tgt, _, _, _) -> (
        match base_ident tgt with
        | Some p when captured p ->
            out := ("mutable field of '" ^ describe p ^ "'", line_of e.exp_loc) :: !out
        | _ -> ())
    | Texp_apply ({ exp_desc = Texp_ident (fp, _, _); _ }, args) -> (
        let n = canon_name st.aliases (Path.name fp) in
        if not (has_prefix ~prefix:"Domain.DLS." n) then
          match List.assoc_opt n mutators with
          | Some idx -> (
              match List.nth_opt (positional args) idx with
              | Some tgt -> (
                  match base_ident tgt with
                  | Some p when captured p ->
                      out :=
                        (Printf.sprintf "'%s' via %s" (describe p) n,
                         line_of e.exp_loc)
                        :: !out
                  | _ -> ())
              | None -> ())
          | None -> ())
    | _ -> ());
    default.expr self e
  in
  let it = { default with expr } in
  it.expr it closure;
  List.rev !out

(* ---- sanctioned local refs for i3 -------------------------------- *)

let ref_ops = [ "!"; ":="; "incr"; "decr" ]

(* true when every occurrence of [uid] in [body] is as the first
   positional argument of a deref/assign primitive *)
let ref_stays_local st uid body =
  let escaped = ref false in
  let default = Tast_iterator.default_iterator in
  let rec expr self e =
    match e.exp_desc with
    | Texp_apply
        (({ exp_desc = Texp_ident (fp, _, _); _ } as f),
         ((Asttypes.Nolabel, Some { exp_desc = Texp_ident (Path.Pident id, _, _); _ })
          :: rest))
      when Ident.unique_name id = uid
           && List.mem (canon_name st.aliases (Path.name fp)) ref_ops ->
        expr self f;
        List.iter (function _, Some a -> expr self a | _, None -> ()) rest
    | Texp_ident (Path.Pident id, _, _) when Ident.unique_name id = uid ->
        escaped := true
    | _ -> default.expr self e
  in
  let it = { default with expr } in
  it.expr it body;
  not !escaped

(* ---- the main per-binding walk ----------------------------------- *)

let rec walk_expr st e =
  match L.allow_sites_of_attrs e.exp_attributes with
  | [] -> walk_expr_desc st e
  | sites ->
      let saved = st.allow_scope in
      st.allow_scope <- sites @ saved;
      Fun.protect
        ~finally:(fun () -> st.allow_scope <- saved)
        (fun () -> walk_expr_desc st e)

and walk_expr_desc st e =
  let default = Tast_iterator.default_iterator in
  let self =
    { default with expr = (fun _ e -> walk_expr st e) }
  in
  match e.exp_desc with
  | Texp_ident (p, _, _) -> record_ref st p e
  | Texp_function { param; cases; _ } ->
      (* a closure materialising mid-body is an allocation; the leading
         curried spine of a binding is peeled before walk_expr is ever
         called, so anything reaching here really allocates *)
      record_alloc st "closure" (line_of e.exp_loc);
      Hashtbl.replace st.locals (Ident.unique_name param) `Param;
      List.iter
        (fun c ->
          List.iter
            (fun id -> Hashtbl.replace st.locals (Ident.unique_name id) `Param)
            (pat_bound_idents c.c_lhs);
          Option.iter (walk_expr st) c.c_guard;
          walk_expr st c.c_rhs)
        cases
  | Texp_let
      ( Nonrecursive,
        [
          {
            vb_pat = { pat_desc = Tpat_var (id, _); _ };
            vb_expr =
              {
                exp_desc =
                  Texp_apply
                    ( { exp_desc = Texp_ident (rp, _, _); _ },
                      [ (Asttypes.Nolabel, Some init) ] );
                _;
              };
            _;
          };
        ],
        body )
    when canon_name st.aliases (Path.name rp) = "ref"
         && ref_stays_local st (Ident.unique_name id) body ->
      (* non-escaping scratch ref: sanctioned, see DESIGN.md section 14 *)
      walk_expr st init;
      Hashtbl.replace st.locals (Ident.unique_name id) `Walked;
      walk_expr st body
  | Texp_let (_, vbs, body) ->
      List.iter
        (fun vb ->
          List.iter
            (fun id -> Hashtbl.replace st.locals (Ident.unique_name id) `Walked)
            (pat_bound_idents vb.vb_pat);
          walk_expr st vb.vb_expr)
        vbs;
      walk_expr st body
  | Texp_apply (f, args) ->
      (match f.exp_desc with
      | Texp_ident (fp, _, _) -> (
          match resolve st fp with
          | `Local -> ()
          | `Param p ->
              st.fn.param_calls <- (p, line_of e.exp_loc) :: st.fn.param_calls
          | `Name n ->
              (match nondet_prim n with
              | Some prim -> record_prim st prim (line_of e.exp_loc)
              | None -> ());
              (if List.mem n eq_prims then
                 let pos = positional args in
                 if List.length pos >= 2 && List.exists (fun a -> is_float_ty a.exp_type) pos
                 then
                   record_prim st
                     ("polymorphic " ^ n ^ " on float", "d2-float-eq")
                     (line_of e.exp_loc));
              if List.mem n allocators then
                record_alloc st ("call to " ^ n) (line_of e.exp_loc);
              if String.contains n '.' || Hashtbl.mem st.g.fns n then
                st.fn.calls <- (n, line_of e.exp_loc) :: st.fn.calls;
              if List.mem n raise_family then st.err_depth <- st.err_depth + 1;
              if List.mem n shard_apis then begin
                st.fn.shard_caller <- true;
                List.iter
                  (fun (l, a) ->
                    match (l, a) with
                    | Asttypes.Labelled ("init" | "f"), Some
                        ({ exp_desc = Texp_function _; _ } as closure) ->
                        List.iter
                          (fun (what, wline) ->
                            emit st.g st.fn "i2-shard-capture" ~line:wline
                              ~chain:
                                [
                                  {
                                    L.c_fn = st.fn.key;
                                    c_file = st.fn.fi_file;
                                    c_line = line_of e.exp_loc;
                                  };
                                  {
                                    L.c_fn = n ^ " ~" ^
                                      (match l with
                                      | Asttypes.Labelled s -> s
                                      | _ -> "?");
                                    c_file = st.fn.fi_file;
                                    c_line = wline;
                                  };
                                ]
                              (Printf.sprintf
                                 "shard closure writes captured mutable state \
                                  (%s); pass per-worker state through ~init \
                                  or Domain.DLS, or reduce in the ordered \
                                  merge"
                                 what))
                          (closure_capture_writes st closure)
                    | _ -> ())
                  args
              end)
      | _ -> walk_expr st f);
      List.iter (function _, Some a -> walk_expr st a | _, None -> ()) args;
      (match f.exp_desc with
      | Texp_ident (fp, _, _) -> (
          match resolve st fp with
          | `Name n when List.mem n raise_family ->
              st.err_depth <- st.err_depth - 1
          | _ -> ())
      | _ -> ())
  | Texp_assert (inner, _) ->
      st.err_depth <- st.err_depth + 1;
      walk_expr st inner;
      st.err_depth <- st.err_depth - 1
  | Texp_tuple _ ->
      record_alloc st "tuple" (line_of e.exp_loc);
      default.expr self e
  | Texp_record _ ->
      record_alloc st "record" (line_of e.exp_loc);
      default.expr self e
  | Texp_array [] -> ()
  | Texp_array _ ->
      record_alloc st "array literal" (line_of e.exp_loc);
      default.expr self e
  | Texp_construct (_, cd, args) ->
      if args <> [] then
        record_alloc st
          ("constructor " ^ cd.Types.cstr_name)
          (line_of e.exp_loc);
      default.expr self e
  | Texp_lazy _ ->
      record_alloc st "lazy" (line_of e.exp_loc);
      default.expr self e
  | Texp_match (scrut, cases, _) ->
      walk_expr st scrut;
      List.iter
        (fun c ->
          List.iter
            (fun id -> Hashtbl.replace st.locals (Ident.unique_name id) `Walked)
            (pat_bound_idents c.c_lhs);
          Option.iter (walk_expr st) c.c_guard;
          walk_expr st c.c_rhs)
        cases
  | Texp_try (body, cases) ->
      walk_expr st body;
      List.iter
        (fun c ->
          List.iter
            (fun id -> Hashtbl.replace st.locals (Ident.unique_name id) `Walked)
            (pat_bound_idents c.c_lhs);
          Option.iter (walk_expr st) c.c_guard;
          walk_expr st c.c_rhs)
        cases
  | _ -> default.expr self e

(* Peel the curried [fun a b ->] spine of a top-level binding: the
   spine itself is the function being defined, not an allocation. *)
let rec walk_binding_body st e =
  match e.exp_desc with
  | Texp_function { param; cases = [ c ]; _ } ->
      Hashtbl.replace st.locals (Ident.unique_name param) `Param;
      List.iter
        (fun id -> Hashtbl.replace st.locals (Ident.unique_name id) `Param)
        (pat_bound_idents c.c_lhs);
      walk_binding_body st c.c_rhs
  | Texp_function { param; cases; _ } ->
      Hashtbl.replace st.locals (Ident.unique_name param) `Param;
      List.iter
        (fun c ->
          List.iter
            (fun id -> Hashtbl.replace st.locals (Ident.unique_name id) `Param)
            (pat_bound_idents c.c_lhs);
          Option.iter (walk_expr st) c.c_guard;
          walk_expr st c.c_rhs)
        cases
  | _ -> walk_expr st e

(* ------------------------------------------------------------------ *)
(* Structure walk                                                      *)
(* ------------------------------------------------------------------ *)

let rec module_alias_target me =
  match me.mod_desc with
  | Tmod_ident (p, _) -> Some (Path.name p)
  | Tmod_constraint (me', _, _, _) -> module_alias_target me'
  | _ -> None

let rec walk_structure g aliases ~file ~modpath str =
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match vb.vb_pat.pat_desc with
              | Tpat_var (id, _) ->
                  let name = Ident.name id in
                  let key = modpath ^ "." ^ name in
                  let attrs = vb.vb_attributes in
                  let fn =
                    {
                      key;
                      fi_file = file;
                      fi_line = line_of vb.vb_loc;
                      calls = [];
                      param_calls = [];
                      prims = [];
                      allocs = [];
                      shard_caller = false;
                      noalloc = has_attr "lint.noalloc" attrs;
                      alloc_ok = has_attr "lint.alloc_ok" attrs;
                      allows = L.allow_sites_of_attrs attrs;
                    }
                  in
                  Hashtbl.replace g.fns key fn;
                  g.fn_order <- key :: g.fn_order;
                  Hashtbl.replace g.ident_keys (Ident.unique_name id) key;
                  let st =
                    {
                      g;
                      fn;
                      aliases;
                      locals = Hashtbl.create 32;
                      err_depth = 0;
                      allow_scope = [];
                    }
                  in
                  walk_binding_body st vb.vb_expr
              | _ -> ())
            vbs
      | Tstr_module mb -> walk_module g aliases ~file ~modpath mb
      | Tstr_recmodule mbs ->
          List.iter (walk_module g aliases ~file ~modpath) mbs
      | _ -> ())
    str.str_items

and walk_module g aliases ~file ~modpath mb =
  let name =
    match mb.mb_name.txt with Some n -> n | None -> "_"
  in
  match module_alias_target mb.mb_expr with
  | Some target ->
      Hashtbl.replace aliases name (canon_name aliases (canon_component target))
  | None -> (
      let rec submod me =
        match me.mod_desc with
        | Tmod_structure str ->
            walk_structure g aliases ~file ~modpath:(modpath ^ "." ^ name) str
        | Tmod_constraint (me', _, _, _) -> submod me'
        | _ -> ()
      in
      submod mb.mb_expr)

let canon_mod modname = canon_component modname

let load_cmt g path =
  try
    let cmt = Cmt_format.read_cmt path in
    (match cmt.Cmt_format.cmt_annots with
    | Cmt_format.Implementation str ->
        let file =
          match cmt.Cmt_format.cmt_sourcefile with Some f -> f | None -> path
        in
        let aliases = Hashtbl.create 8 in
        walk_structure g aliases ~file
          ~modpath:(canon_mod cmt.Cmt_format.cmt_modname)
          str
    | _ -> ());
    true
  with exn ->
    g.findings <-
      {
        L.file = path;
        line = 0;
        col = 0;
        rule = "cmt-error";
        message = "failed to read cmt: " ^ Printexc.to_string exn;
        chain = [];
      }
      :: g.findings;
    true

(* ------------------------------------------------------------------ *)
(* i1: transitive nondeterminism from sweep roots                      *)
(* ------------------------------------------------------------------ *)

let is_root roots fn =
  fn.shard_caller
  || List.exists
       (fun r -> fn.key = r || has_prefix ~prefix:(r ^ ".") fn.key)
       roots

(* Breadth-first from all roots at once; [parent] gives the shortest
   witness path back to some root.  One finding per primitive site in
   each reachable function. *)
let run_taint g roots =
  let parent : (string, (string * int) option) Hashtbl.t = Hashtbl.create 64 in
  let q = Queue.create () in
  let defined = List.rev g.fn_order in
  List.iter
    (fun key ->
      let fn = Hashtbl.find g.fns key in
      if is_root roots fn && not (Hashtbl.mem parent key) then begin
        Hashtbl.replace parent key None;
        Queue.push key q
      end)
    defined;
  while not (Queue.is_empty q) do
    let key = Queue.pop q in
    let fn = Hashtbl.find g.fns key in
    List.iter
      (fun (callee, line) ->
        if Hashtbl.mem g.fns callee && not (Hashtbl.mem parent callee) then begin
          Hashtbl.replace parent callee (Some (key, line));
          Queue.push callee q
        end)
      (List.rev fn.calls)
  done;
  let rec witness key acc =
    match Hashtbl.find parent key with
    | None -> key :: acc
    | Some (pkey, _) -> witness pkey (key :: acc)
  in
  List.iter
    (fun key ->
      if Hashtbl.mem parent key then
        let fn = Hashtbl.find g.fns key in
        List.iter
          (fun (what, line) ->
            let chain =
              List.map
                (fun k ->
                  let f = Hashtbl.find g.fns k in
                  {
                    L.c_fn = f.key;
                    c_file = f.fi_file;
                    c_line = (if k = key then line else f.fi_line);
                  })
                (witness key [])
            in
            emit g fn "i1-trans-nondet" ~line ~chain
              (Printf.sprintf
                 "%s is reachable from a sweep entry point and uses %s; \
                  route through Flexile_util.Prng / Trace.now_s / \
                  Flexile_util.Tbl instead"
                 fn.key what))
          (List.rev fn.prims))
    defined

(* ------------------------------------------------------------------ *)
(* i3: transitive allocation freedom                                   *)
(* ------------------------------------------------------------------ *)

let run_noalloc g =
  let check_kernel root =
    let visited = Hashtbl.create 16 in
    let rec visit chain key =
      if not (Hashtbl.mem visited key) then begin
        Hashtbl.replace visited key ();
        let fn = Hashtbl.find g.fns key in
        if fn.alloc_ok && key <> root.key then
          (* trusted to allocate for a documented reason *)
          mark_alloc_ok_used g fn
        else begin
          let chain_here =
            chain @ [ { L.c_fn = fn.key; c_file = fn.fi_file; c_line = fn.fi_line } ]
          in
          List.iter
            (fun (what, line) ->
              emit g fn "i3-noalloc" ~line
                ~chain:chain_here
                (Printf.sprintf
                   "allocation (%s) inside [@lint.noalloc] kernel %s; hoist \
                    it to setup, or justify with [@lint.alloc_ok \"why\"]"
                   what root.key))
            (List.rev fn.allocs);
          List.iter
            (fun (p, line) ->
              emit g fn "i3-noalloc" ~line ~chain:chain_here
                (Printf.sprintf
                   "call through parameter '%s' inside [@lint.noalloc] \
                    kernel %s cannot be proven allocation-free"
                   p root.key))
            (List.rev fn.param_calls);
          List.iter
            (fun (callee, line) ->
              if Hashtbl.mem g.fns callee then visit chain_here callee
              else if
                List.mem callee noalloc_whitelist
                || List.mem callee raise_family
                || List.mem callee allocators (* already reported as alloc *)
              then ()
              else
                emit g fn "i3-noalloc" ~line ~chain:chain_here
                  (Printf.sprintf
                     "call to %s inside [@lint.noalloc] kernel %s is neither \
                      analysed nor on the allocation-free whitelist"
                     callee root.key))
            (List.rev fn.calls)
        end
      end
    in
    visit [] root.key
  in
  List.iter
    (fun key ->
      let fn = Hashtbl.find g.fns key in
      if fn.noalloc then check_kernel fn)
    (List.rev g.fn_order)

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let analyze ?(roots = default_roots) cmt_paths =
  let g =
    {
      fns = Hashtbl.create 256;
      fn_order = [];
      ident_keys = Hashtbl.create 256;
      findings = [];
      n_suppressed = 0;
      n_config = 0;
      used_allows = [];
      used_config = [];
    }
  in
  let n = List.fold_left (fun n p -> if load_cmt g p then n + 1 else n) 0 cmt_paths in
  (* i2 findings were emitted during the walk *)
  run_taint g roots;
  run_noalloc g;
  let by_pos a b =
    match compare a.L.file b.L.file with
    | 0 -> compare a.L.line b.L.line
    | c -> c
  in
  {
    L.files_checked = n;
    findings = List.sort by_pos (List.rev g.findings);
    suppressed = g.n_suppressed;
    config_suppressed = g.n_config;
    declared_allows = [];
    used_allows = List.rev g.used_allows;
    used_config = List.rev g.used_config;
  }
