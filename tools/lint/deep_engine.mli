(** Typedtree-level interprocedural analysis stage for flexile-lint
    (DESIGN.md section 14).

    Consumes the [.cmt] artifacts dune produces and enforces three rule
    families the syntactic stage cannot see:

    - [i1-trans-nondet]: forward taint from the [Scenario_engine] /
      [Parallel] entry points (and from every function that hands a
      closure to a shard API) over the call graph; any reachable use of
      a raw nondeterministic primitive is reported with a call-chain
      witness.
    - [i2-shard-capture]: closures passed as [~init] / [~f] into the
      shard APIs must not write captured or module-level mutable state.
    - [i3-noalloc]: the body of a [[\@lint.noalloc]] function and its
      transitive callees must not heap-allocate outside the
      [[\@lint.alloc_ok]] whitelist.

    The engine does not zone-gate: it analyses exactly the cmts it is
    given (the driver feeds it [lib/] only; the fixture tests feed it
    seeded-violation modules under [test/]). *)

val default_roots : string list
(** Module prefixes whose top-level functions seed the i1 taint walk:
    [Flexile_te.Scenario_engine] and [Flexile_util.Parallel]. *)

val shard_apis : string list
(** Canonical names of the shard entry points whose [~init] / [~f]
    closures are subject to [i2-shard-capture]. *)

val analyze : ?roots:string list -> string list -> Lint_engine.report
(** [analyze cmt_paths] reads each [.cmt], extracts a per-function
    summary (calls, primitive uses, allocation sites, attributes),
    builds the cross-module call graph and runs the three analyses.
    [roots] overrides {!default_roots}.  Unreadable cmts yield a
    [cmt-error] finding rather than an exception.  [files_checked]
    counts cmts; [used_allows] / [used_config] feed the driver's
    staleness pass (declaration of suppression sites is the syntactic
    stage's job, since it parses the sources). *)
