(* Tests of the Flexile_obs layer: exact reconciliation of the SLO
   tracker with the offline percentile analysis, burn-rate window
   semantics, and the shape of the Prometheus / JSON exports. *)

module Trace = Flexile_util.Trace
module Json = Flexile_util.Json
module Export = Flexile_obs.Metrics_export
module Slo = Flexile_obs.Slo
module Instance = Flexile_te.Instance
module Metrics = Flexile_te.Metrics
module Offline = Flexile_te.Flexile_offline
module Online = Flexile_te.Flexile_online

let with_tracing enabled f =
  let was = Trace.enabled () in
  Trace.set_enabled enabled;
  Fun.protect ~finally:(fun () -> Trace.set_enabled was) f

let promises inst losses =
  Array.init (Array.length inst.Instance.classes) (fun k ->
      Metrics.perc_loss inst losses ~cls:k ())

(* ---- Slo reconciles exactly with Metrics.perc_loss ---- *)

let test_slo_reconciles () =
  let inst = Flexile_core.Builder.fig1 () in
  let off = Offline.solve inst in
  let online = Online.run inst ~offline:off in
  let promised = promises inst off.Offline.best.Offline.losses in
  let slo = Slo.create ~promised inst in
  for sid = 0 to Instance.nscenarios inst - 1 do
    let losses =
      Array.init (Instance.nflows inst) (fun fid -> online.(fid).(sid))
    in
    Slo.observe slo ~sid ~losses
  done;
  Alcotest.(check int)
    "every scenario seen"
    (Instance.nscenarios inst)
    (Slo.scenarios_seen slo);
  Array.iteri
    (fun k _ ->
      let direct = Metrics.perc_loss inst online ~cls:k () in
      let tracked = Slo.observed_attainment slo ~cls:k in
      if Float.abs (direct -. tracked) > 1e-9 then
        Alcotest.failf "class %d: Slo %.12f vs Metrics %.12f" k tracked direct)
    inst.Instance.classes

(* partial coverage must be conservative: unobserved scenarios stay at
   the matrix's initial loss of 1.0 *)
let test_slo_partial_is_conservative () =
  let inst = Flexile_core.Builder.fig1 () in
  let off = Offline.solve inst in
  let online = Online.run inst ~offline:off in
  let promised = promises inst off.Offline.best.Offline.losses in
  let slo = Slo.create ~promised inst in
  Slo.observe slo ~sid:0
    ~losses:(Array.init (Instance.nflows inst) (fun fid -> online.(fid).(0)));
  Array.iteri
    (fun k _ ->
      let direct = Metrics.perc_loss inst online ~cls:k () in
      if Slo.observed_attainment slo ~cls:k < direct -. 1e-12 then
        Alcotest.failf "class %d: partial coverage under-reported" k)
    inst.Instance.classes

(* ---- burn-rate window ---- *)

let test_burn_rate_window () =
  let inst = Flexile_core.Builder.fig1 () in
  let nk = Array.length inst.Instance.classes in
  let zeros = Array.make (Instance.nflows inst) 0. in
  (* impossible promise: every draw violates *)
  let slo = Slo.create ~window:4 ~promised:(Array.make nk (-1.)) inst in
  for _ = 1 to 6 do
    Slo.observe slo ~sid:0 ~losses:zeros
  done;
  let r = Slo.class_report slo ~cls:0 in
  Alcotest.(check int) "window saturates" 4 r.Slo.rwindow_len;
  Alcotest.(check int) "all window draws bad" 4 r.Slo.rwindow_bad;
  Alcotest.(check int) "all draws bad" 6 r.Slo.rbad_draws;
  let beta = inst.Instance.classes.(0).Instance.beta in
  Alcotest.(check (float 1e-9))
    "burn = bad fraction over error budget"
    (1. /. (1. -. beta))
    r.Slo.rburn_rate;
  (* generous promise: no violations, burn 0 *)
  let ok = Slo.create ~window:4 ~promised:(Array.make nk 1.) inst in
  for _ = 1 to 3 do
    Slo.observe ok ~sid:0 ~losses:zeros
  done;
  Alcotest.(check (float 0.)) "no violations, no burn" 0.
    (Slo.class_report ok ~cls:0).Slo.rburn_rate;
  (* a draw outside the enumerated set burns every class *)
  Slo.observe_unenumerated ok;
  let r = Slo.class_report ok ~cls:0 in
  Alcotest.(check int) "unenumerated draw counted" 4 r.Slo.rwindow_len;
  Alcotest.(check int) "unenumerated draw is bad" 1 r.Slo.rwindow_bad;
  Alcotest.(check int) "tracked separately" 1 (Slo.unenumerated_draws ok)

let test_slo_report_json_parses () =
  let inst = Flexile_core.Builder.fig1 () in
  let nk = Array.length inst.Instance.classes in
  let slo = Slo.create ~promised:(Array.make nk 0.5) inst in
  Slo.observe slo ~sid:0 ~losses:(Array.make (Instance.nflows inst) 0.);
  match Json.parse (Slo.report_json slo) with
  | Error e -> Alcotest.failf "report_json does not parse: %s" e
  | Ok j ->
      Alcotest.(check (option int))
        "draws field" (Some 1)
        (Option.bind (Json.member "draws" j) Json.to_int);
      let classes =
        Option.bind (Json.member "classes" j) Json.to_list
        |> Option.value ~default:[]
      in
      Alcotest.(check int) "one entry per class" nk (List.length classes)

(* ---- Prometheus exposition ---- *)

let is_prom_name s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       s

let test_prometheus_shape () =
  with_tracing true @@ fun () ->
  let c = Trace.counter "test.obs_counter" in
  let h = Trace.hist "test.obs_hist" in
  Trace.incr c;
  List.iter (Trace.observe h) [ 0.1; 0.5; 1.0; 2.0; 100.; 0. ];
  let page = Export.prometheus () in
  let lines =
    String.split_on_char '\n' page |> List.filter (fun l -> l <> "")
  in
  if lines = [] then Alcotest.fail "empty exposition";
  List.iter
    (fun line ->
      if not (String.starts_with ~prefix:"# TYPE " line) then begin
        (* sample line: <name>[{le="..."}] <value> *)
        let name =
          match String.index_opt line '{' with
          | Some i -> String.sub line 0 i
          | None -> (
              match String.index_opt line ' ' with
              | Some i -> String.sub line 0 i
              | None -> line)
        in
        if not (is_prom_name name) then
          Alcotest.failf "invalid metric name in %S" line;
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "no value in %S" line
        | Some i -> (
            let v = String.sub line (i + 1) (String.length line - i - 1) in
            match float_of_string_opt v with
            | Some _ -> ()
            | None ->
                if v <> "NaN" && v <> "+Inf" && v <> "-Inf" then
                  Alcotest.failf "unparseable value %S in %S" v line)
      end)
    lines;
  (* histogram family invariants: cumulative buckets, +Inf == count *)
  let fam = "flexile_test_obs_hist" in
  let samples =
    List.filter (String.starts_with ~prefix:(fam ^ "_")) lines
  in
  let value line =
    let i = String.rindex line ' ' in
    float_of_string (String.sub line (i + 1) (String.length line - i - 1))
  in
  let buckets =
    List.filter (String.starts_with ~prefix:(fam ^ "_bucket{")) samples
  in
  if List.length buckets < 2 then Alcotest.fail "expected bucket lines";
  let counts = List.map value buckets in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
    | _ -> true
  in
  if not (nondecreasing counts) then Alcotest.fail "buckets not cumulative";
  let count_line =
    List.find (String.starts_with ~prefix:(fam ^ "_count ")) samples
  in
  let inf_line =
    List.find
      (String.starts_with ~prefix:(fam ^ "_bucket{le=\"+Inf\"}"))
      samples
  in
  Alcotest.(check (float 0.))
    "+Inf bucket equals count" (value count_line) (value inf_line);
  Alcotest.(check (float 0.)) "count is 6" 6. (value count_line)

let test_prom_name () =
  Alcotest.(check string)
    "dots map to underscores" "flexile_simplex_iterations_per_solve"
    (Export.prom_name "simplex.iterations_per_solve")

(* ---- deterministic filter ---- *)

let test_deterministic_filter () =
  let keep = Export.deterministic_metric in
  if not (keep ("simplex.iterations", Trace.Counter)) then
    Alcotest.fail "plain counters are deterministic";
  if keep ("gc.minor_words", Trace.Counter) then
    Alcotest.fail "gc counters are not deterministic";
  if not (keep ("engine.flow_loss", Trace.Hist)) then
    Alcotest.fail "value histograms are deterministic";
  if keep ("online.scenario_seconds", Trace.Hist) then
    Alcotest.fail "duration histograms are wall-clock";
  if keep ("health.samples", Trace.Counter) || keep ("health.cond1_log10", Trace.Hist)
  then
    Alcotest.fail
      "health metrics are stride-sampled per domain, not deterministic";
  List.iter
    (fun k ->
      if keep ("anything", k) then
        Alcotest.fail "gauges/timers/spans/probes are wall-clock")
    [ Trace.Gauge; Trace.Timer; Trace.Span; Trace.Probe ];
  with_tracing true @@ fun () ->
  let _ = Trace.hist "test.filter_seconds" in
  let page = Export.prometheus ~deterministic:true () in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let found = ref false in
    for i = 0 to h - n do
      if String.sub hay i n = needle then found := true
    done;
    !found
  in
  String.split_on_char '\n' page
  |> List.iter (fun l ->
         if String.starts_with ~prefix:"flexile_gc_" l then
           Alcotest.failf "gc line survived the filter: %S" l);
  if contains "test_filter_seconds" page then
    Alcotest.fail "duration histogram survived the filter"

(* the drop counters must survive the deterministic filter: a scrape
   that silently lost events is exactly what the family is there to
   reveal *)
let test_trace_drops_family () =
  with_tracing true @@ fun () ->
  List.iter
    (fun deterministic ->
      let page = Export.prometheus ~deterministic () in
      let lines = String.split_on_char '\n' page in
      List.iter
        (fun ring ->
          let prefix =
            Printf.sprintf "flexile_trace_drops_total{ring=%S} " ring
          in
          if not (List.exists (String.starts_with ~prefix) lines) then
            Alcotest.failf "missing %s (deterministic=%b)" prefix deterministic)
        [ "events"; "spans" ];
      if
        not
          (List.exists
             (String.equal "# TYPE flexile_trace_drops_total counter")
             lines)
      then Alcotest.fail "missing TYPE line for flexile_trace_drops_total")
    [ true; false ]

(* ---- JSON snapshot ---- *)

let test_snapshot_json_parses () =
  with_tracing true @@ fun () ->
  let h = Trace.hist "test.obs_snapshot_hist" in
  List.iter (Trace.observe h) [ 1.; 2.; 3. ];
  match Json.parse (Export.snapshot_json ()) with
  | Error e -> Alcotest.failf "snapshot_json does not parse: %s" e
  | Ok j ->
      List.iter
        (fun section ->
          match Json.member section j with
          | Some (Json.Object _) -> ()
          | _ -> Alcotest.failf "missing section %s" section)
        [ "counters"; "gauges"; "timers"; "histograms" ];
      let entry =
        Option.bind (Json.member "histograms" j) (fun hs ->
            Json.member "test.obs_snapshot_hist" hs)
      in
      (match entry with
      | None -> Alcotest.fail "histogram entry missing"
      | Some e ->
          Alcotest.(check (option int))
            "count" (Some 3)
            (Option.bind (Json.member "count" e) Json.to_int);
          List.iter
            (fun f ->
              if Option.is_none (Json.member f e) then
                Alcotest.failf "missing field %s" f)
            [ "sum"; "min"; "max"; "p50"; "p90"; "p95"; "p99" ]);
      (* histograms_json additionally carries raw bucket lists *)
      (match Json.parse (Export.histograms_json ()) with
      | Error e -> Alcotest.failf "histograms_json does not parse: %s" e
      | Ok hj -> (
          match
            Option.bind (Json.member "test.obs_snapshot_hist" hj) (fun e ->
                Json.member "buckets" e)
          with
          | Some (Json.Array (_ :: _)) -> ()
          | _ -> Alcotest.fail "bucket list missing"))

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "flexile_obs"
    [
      ( "slo",
        [
          quick "reconciles with Metrics.perc_loss" test_slo_reconciles;
          quick "partial coverage conservative" test_slo_partial_is_conservative;
          quick "burn-rate window" test_burn_rate_window;
          quick "report_json parses" test_slo_report_json_parses;
        ] );
      ( "prometheus",
        [
          quick "exposition shape" test_prometheus_shape;
          quick "name sanitization" test_prom_name;
          quick "deterministic filter" test_deterministic_filter;
          quick "trace drops family always exported" test_trace_drops_family;
        ] );
      ( "json",
        [ quick "snapshot parses with histograms" test_snapshot_json_parses ] );
    ]
