(* Tests of the hierarchical span profiler and the benchmark
   regression gate: span-nesting invariants (balanced begin/end, child
   intervals contained in the parent, deterministic cross-domain
   merge), Chrome trace-event JSON well-formedness checked by parsing
   it back, and the gate's pass/fail logic on synthetic baselines. *)

module Trace = Flexile_util.Trace
module Trace_export = Flexile_util.Trace_export
module Parallel = Flexile_util.Parallel
module Json = Flexile_util.Json
module Gate = Flexile_util.Bench_gate

let with_tracing enabled f =
  let was = Trace.enabled () in
  Trace.set_enabled enabled;
  Fun.protect ~finally:(fun () -> Trace.set_enabled was) f

let my_spans prefix =
  Trace.span_records ()
  |> List.filter (fun r ->
         String.length r.Trace.span_name >= String.length prefix
         && String.sub r.Trace.span_name 0 (String.length prefix) = prefix)

(* ---- nesting invariants ---- *)

let test_balanced_nesting () =
  with_tracing true @@ fun () ->
  Trace.reset ();
  let sp_a = Trace.span "prof.a" and sp_b = Trace.span "prof.b" in
  let r =
    Trace.in_span ~arg:7 sp_a (fun () ->
        Trace.in_span sp_b (fun () -> ());
        Trace.in_span ~arg:2 sp_b (fun () -> ());
        42)
  in
  Alcotest.(check int) "value passes through" 42 r;
  Alcotest.(check int) "stack balanced" 0 (Trace.spans_open ());
  let recs = my_spans "prof." in
  Alcotest.(check int) "three records" 3 (List.length recs);
  let a = List.find (fun r -> r.Trace.span_name = "prof.a") recs in
  let bs = List.filter (fun r -> r.Trace.span_name = "prof.b") recs in
  Alcotest.(check int) "a is a root" (-1) a.Trace.span_parent;
  Alcotest.(check int) "a carries its tag" 7 a.Trace.span_arg;
  List.iter
    (fun b ->
      Alcotest.(check int) "b's parent is a" a.Trace.span_seq
        b.Trace.span_parent;
      Alcotest.(check int) "b's depth" (a.Trace.span_depth + 1)
        b.Trace.span_depth;
      if not (b.Trace.span_t0_ns >= a.Trace.span_t0_ns) then
        Alcotest.fail "child begins before parent";
      if not (b.Trace.span_t1_ns <= a.Trace.span_t1_ns) then
        Alcotest.fail "child ends after parent";
      if Int64.compare b.Trace.span_t1_ns b.Trace.span_t0_ns < 0 then
        Alcotest.fail "negative span duration")
    bs;
  (* siblings ordered by begin sequence, non-overlapping *)
  match bs with
  | [ b1; b2 ] ->
      if b1.Trace.span_seq >= b2.Trace.span_seq then
        Alcotest.fail "sibling seq not increasing";
      if Int64.compare b2.Trace.span_t0_ns b1.Trace.span_t1_ns < 0 then
        Alcotest.fail "siblings overlap"
  | _ -> Alcotest.fail "expected two b spans"

let test_exception_safety () =
  with_tracing true @@ fun () ->
  Trace.reset ();
  let sp = Trace.span "prof.raises" in
  (try Trace.in_span sp (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "stack balanced after raise" 0 (Trace.spans_open ());
  Alcotest.(check int) "span still recorded" 1
    (List.length (my_spans "prof.raises"))

let test_gc_delta_recorded () =
  with_tracing true @@ fun () ->
  Trace.reset ();
  let sp = Trace.span "prof.alloc" in
  let sink = ref [] in
  Trace.in_span sp (fun () ->
      for i = 0 to 999 do
        sink := (i, float_of_int i) :: !sink
      done);
  ignore (Sys.opaque_identity !sink);
  match my_spans "prof.alloc" with
  | [ r ] ->
      (* 1000 boxed pairs: well over 4000 words in the minor heap *)
      if r.Trace.span_minor_words < 1000. then
        Alcotest.failf "minor allocation delta too small: %f"
          r.Trace.span_minor_words
  | l -> Alcotest.failf "expected one record, got %d" (List.length l)

(* ---- cross-domain merge ---- *)

let run_parallel_spans () =
  let sp = Trace.span "prof.par" in
  let _ =
    Parallel.map ~jobs:2 ~n:10
      ~init:(fun _ -> ())
      ~f:(fun () i ->
        Trace.in_span ~arg:i sp (fun () -> ());
        i)
      ()
  in
  my_spans "prof."
  |> List.map (fun r ->
         (r.Trace.span_name, r.Trace.span_arg, r.Trace.span_dom))

let test_merge_deterministic () =
  with_tracing true @@ fun () ->
  Trace.reset ();
  let first = run_parallel_spans () in
  Trace.reset ();
  let second = run_parallel_spans () in
  if first <> second then Alcotest.fail "merge order differs between runs";
  (* ordered by (dom, seq): domains non-decreasing, 10 records, and the
     static-cyclic sharding pins even args to the caller's shard *)
  Alcotest.(check int) "ten records" 10 (List.length first);
  let doms = List.map (fun (_, _, d) -> d) first in
  if List.sort compare doms <> doms then
    Alcotest.fail "records not sorted by domain";
  let args_by_dom = Hashtbl.create 4 in
  List.iter
    (fun (_, a, d) ->
      Hashtbl.replace args_by_dom d
        (a :: (try Hashtbl.find args_by_dom d with Not_found -> [])))
    first;
  Hashtbl.iter
    (fun _ args ->
      let args = List.rev args in
      if List.sort compare args <> args then
        Alcotest.fail "per-domain records not in begin order";
      match List.sort_uniq compare (List.map (fun a -> a mod 2) args) with
      | [ _ ] -> ()  (* one parity per shard: static cyclic assignment *)
      | _ -> Alcotest.fail "shard mixed parities")
    args_by_dom

let test_span_tree_shape () =
  with_tracing true @@ fun () ->
  Trace.reset ();
  let sp_root = Trace.span "prof.root" and sp_kid = Trace.span "prof.kid" in
  Trace.in_span sp_root (fun () ->
      Trace.in_span ~arg:1 sp_kid (fun () ->
          Trace.in_span ~arg:2 sp_kid (fun () -> ()));
      Trace.in_span ~arg:3 sp_kid (fun () -> ()));
  let trees =
    Trace.span_trees ()
    |> List.filter (fun t -> t.Trace.node_name = "prof.root")
  in
  match trees with
  | [ root ] -> (
      Alcotest.(check int) "root has two children" 2
        (List.length root.Trace.node_children);
      match root.Trace.node_children with
      | [ k1; k3 ] ->
          Alcotest.(check int) "children in begin order" 1 k1.Trace.node_arg;
          Alcotest.(check int) "second child tag" 3 k3.Trace.node_arg;
          Alcotest.(check int) "grandchild" 1
            (List.length k1.Trace.node_children);
          Alcotest.(check int) "grandchild tag" 2
            (List.hd k1.Trace.node_children).Trace.node_arg
      | _ -> Alcotest.fail "wrong child list")
  | l -> Alcotest.failf "expected one root, got %d" (List.length l)

(* ---- Chrome trace export: parse it back and validate ---- *)

let test_chrome_well_formed () =
  with_tracing true @@ fun () ->
  Trace.reset ();
  let sp = Trace.span "prof.chrome" in
  Trace.in_span ~arg:5 sp (fun () -> Trace.in_span sp (fun () -> ()));
  Trace.event (Trace.probe "prof.chrome_event") 9;
  Trace.incr (Trace.counter "prof.chrome_counter");
  let doc = Trace_export.chrome_json () in
  match Json.parse doc with
  | Error e -> Alcotest.failf "chrome trace does not parse: %s" e
  | Ok j -> (
      match Option.bind (Json.member "traceEvents" j) Json.to_list with
      | None -> Alcotest.fail "no traceEvents array"
      | Some events ->
          if events = [] then Alcotest.fail "empty traceEvents";
          let phases = ref [] in
          List.iter
            (fun e ->
              let str k = Option.bind (Json.member k e) Json.to_string in
              let num k = Option.bind (Json.member k e) Json.to_float in
              let ph =
                match str "ph" with
                | Some p -> p
                | None -> Alcotest.fail "event without ph"
              in
              phases := ph :: !phases;
              if str "name" = None then Alcotest.fail "event without name";
              if num "pid" = None then Alcotest.fail "event without pid";
              match ph with
              | "X" ->
                  let ts = Option.get (num "ts") and d = Option.get (num "dur") in
                  if ts < 0. || d < 0. then Alcotest.fail "negative ts/dur";
                  if num "tid" = None then Alcotest.fail "X without tid"
              | "C" ->
                  if Json.member "args" e = None then
                    Alcotest.fail "C without args"
              | "i" | "M" -> ()
              | p -> Alcotest.failf "unexpected phase %s" p)
            events;
          List.iter
            (fun p ->
              if not (List.mem p !phases) then
                Alcotest.failf "no %s events emitted" p)
            [ "X"; "M"; "i"; "C" ])

let test_report_has_full_registry () =
  with_tracing true @@ fun () ->
  Trace.reset ();
  (* touch metrics from several modules, then check they all appear *)
  let inst = Flexile_core.Builder.fig1 () in
  ignore (Flexile_core.Schemes.run ~jobs:2 Flexile_core.Schemes.Flexile inst);
  let doc = Flexile_te.Flexile_offline.trace_json () in
  match Json.parse doc with
  | Error e -> Alcotest.failf "report does not parse: %s" e
  | Ok j ->
      let report =
        match Json.member "report" j with
        | Some r -> r
        | None -> Alcotest.fail "no report section"
      in
      let counters =
        match Option.bind (Json.member "counters" report) Json.to_obj with
        | Some c -> c
        | None -> Alcotest.fail "no counters object"
      in
      List.iter
        (fun name ->
          match List.assoc_opt name counters with
          | Some (Json.Number v) when v > 0. -> ()
          | Some _ -> Alcotest.failf "counter %s is zero in the dump" name
          | None -> Alcotest.failf "counter %s missing from the dump" name)
        [
          "simplex.cold_solves"; "engine.sweeps"; "parallel.maps";
          "flexile.subproblems_solved"; "gc.minor_words";
        ];
      (match Json.member "span_tree" j with
      | Some (Json.Array (_ :: _)) -> ()
      | _ -> Alcotest.fail "span_tree missing or empty");
      if Trace.spans_open () <> 0 then
        Alcotest.fail "solver left spans open at the quiescent point"

(* ---- the regression gate on synthetic baselines ---- *)

let baseline phases =
  {
    Gate.profile = "test";
    jobs = 1;
    repetitions = 3;
    phases =
      List.map (fun (n, m) -> { Gate.pname = n; median_seconds = m }) phases;
  }

let test_gate_logic () =
  let b = baseline [ ("solve", 1.0); ("sweep", 0.5) ] in
  let ok v = Gate.passed v and bad v = not (Gate.passed v) in
  let chk current tol = Gate.check ~baseline:b ~current ~tolerance_pct:tol () in
  if not (ok (chk [ ("solve", 1.1); ("sweep", 0.55) ] 25.)) then
    Alcotest.fail "within tolerance should pass";
  if not (ok (chk [ ("solve", 0.4); ("sweep", 0.2) ] 25.)) then
    Alcotest.fail "improvements should pass";
  if not (bad (chk [ ("solve", 1.4); ("sweep", 0.5) ] 25.)) then
    Alcotest.fail "26%+ regression should fail";
  if not (bad (chk [ ("solve", 1.0) ] 25.)) then
    Alcotest.fail "missing tracked phase should fail";
  if not (ok (chk [ ("solve", 1.0); ("sweep", 0.5); ("extra", 9.) ] 25.)) then
    Alcotest.fail "untracked extra phases are ignored";
  (* the absolute floor damps jitter on sub-hundredth phases *)
  let tiny = baseline [ ("blink", 0.001) ] in
  if
    not
      (ok (Gate.check ~baseline:tiny ~current:[ ("blink", 0.01) ]
             ~tolerance_pct:25. ()))
  then Alcotest.fail "sub-floor absolute delta should pass";
  if
    not
      (bad (Gate.check ~baseline:tiny ~current:[ ("blink", 0.5) ]
              ~tolerance_pct:25. ()))
  then Alcotest.fail "large delta on a tiny phase should fail";
  match chk [ ("solve", 2.0); ("sweep", 0.5) ] 25. with
  | [ v; _ ] ->
      Alcotest.(check (float 1e-9)) "ratio" 2.0 v.Gate.ratio;
      if not v.Gate.regressed then Alcotest.fail "2x must regress"
  | _ -> Alcotest.fail "one verdict per tracked phase"

let test_gate_roundtrip () =
  let b =
    baseline [ ("a-phase", 0.123456); ("b phase \"quoted\"", 2.5) ]
  in
  let path = Filename.temp_file "flexile-baseline" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Gate.save path b;
  match Gate.load path with
  | Error e -> Alcotest.failf "roundtrip load failed: %s" e
  | Ok b' ->
      Alcotest.(check int) "phase count" 2 (List.length b'.Gate.phases);
      List.iter2
        (fun p p' ->
          Alcotest.(check string) "name" p.Gate.pname p'.Gate.pname;
          Alcotest.(check (float 1e-6))
            "median" p.Gate.median_seconds p'.Gate.median_seconds)
        b.Gate.phases b'.Gate.phases;
      Alcotest.(check int) "repetitions" 3 b'.Gate.repetitions

let test_gate_rejects_garbage () =
  (match Gate.of_json (Json.Object [ ("schema", Json.String "nope") ]) with
  | Ok _ -> Alcotest.fail "wrong schema accepted"
  | Error _ -> ());
  match Json.parse "{not json" with
  | Ok _ -> Alcotest.fail "garbage parsed"
  | Error _ -> ()

let test_median () =
  Alcotest.(check (float 1e-9)) "odd" 2. (Gate.median [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "even" 1.5 (Gate.median [ 2.; 1. ]);
  Alcotest.(check (float 1e-9)) "empty" 0. (Gate.median [])

(* ---- the Json reader itself ---- *)

let test_json_parser () =
  let ok s = match Json.parse s with Ok v -> v | Error e -> Alcotest.failf "%S: %s" s e in
  (match ok {|{"a": [1, 2.5, -3e2], "b": "x\n\"yA", "c": true, "d": null}|} with
  | Json.Object fields ->
      (match List.assoc "a" fields with
      | Json.Array [ Json.Number 1.; Json.Number 2.5; Json.Number -300. ] -> ()
      | _ -> Alcotest.fail "array mismatch");
      (match List.assoc "b" fields with
      | Json.String "x\n\"yA" -> ()
      | Json.String s -> Alcotest.failf "string mismatch: %S" s
      | _ -> Alcotest.fail "not a string");
      if List.assoc "c" fields <> Json.Bool true then Alcotest.fail "bool";
      if List.assoc "d" fields <> Json.Null then Alcotest.fail "null"
  | _ -> Alcotest.fail "not an object");
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "" ]

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "flexile_profiler"
    [
      ( "nesting",
        [
          quick "balanced begin/end and containment" test_balanced_nesting;
          quick "exception safety" test_exception_safety;
          quick "GC allocation deltas" test_gc_delta_recorded;
        ] );
      ( "merge",
        [
          quick "cross-domain determinism" test_merge_deterministic;
          quick "span tree shape" test_span_tree_shape;
        ] );
      ( "export",
        [
          quick "chrome trace well-formed" test_chrome_well_formed;
          quick "report carries the full registry" test_report_has_full_registry;
        ] );
      ( "gate",
        [
          quick "pass/fail logic" test_gate_logic;
          quick "baseline roundtrip" test_gate_roundtrip;
          quick "rejects bad input" test_gate_rejects_garbage;
          quick "median" test_median;
        ] );
      ("json", [ quick "reader" test_json_parser ]);
    ]
