(* Tests for the domain pool (Flexile_util.Parallel) and the scenario
   sweep engine built on it: ordered determinism under adversarial
   scheduling, exception propagation, the sequential fallback, and the
   parallel-equals-sequential contract on real solver sweeps. *)

open Flexile_te
module Parallel = Flexile_util.Parallel

let quick name f = Alcotest.test_case name `Quick f

(* Early indices sleep longest, so with any real parallelism the
   completion order inverts the index order; the result array must be
   in index order regardless. *)
let test_ordered_under_delays () =
  let n = 24 in
  let out =
    Parallel.map ~jobs:4 ~n
      ~init:(fun _ -> ())
      ~f:(fun () i ->
        Unix.sleepf (0.002 *. float_of_int (n - i));
        i * i)
      ()
  in
  Alcotest.(check (array int))
    "squares in index order"
    (Array.init n (fun i -> i * i))
    out

let test_jobs1_fallback_equivalence () =
  let f () i = (7 * i) + (i mod 3) in
  let seq = Parallel.map ~jobs:1 ~n:50 ~init:(fun _ -> ()) ~f () in
  let par = Parallel.map ~jobs:4 ~n:50 ~init:(fun _ -> ()) ~f () in
  Alcotest.(check (array int)) "jobs=1 equals jobs=4" seq par

(* Static cyclic sharding: worker [w] owns exactly the indices
   [i mod jobs = w], so per-worker state is a deterministic function of
   the index. *)
let test_static_sharding_contract () =
  let jobs = 4 in
  let out =
    Parallel.map ~jobs ~n:23 ~init:(fun w -> w) ~f:(fun w _ -> w) ()
  in
  Array.iteri
    (fun i w -> Alcotest.(check int) (Printf.sprintf "slot of %d" i) (i mod jobs) w)
    out;
  (* each worker visits its shard in ascending order *)
  let seen = Array.make jobs (-1) in
  let out =
    Parallel.map ~jobs ~n:23
      ~init:(fun w -> w)
      ~f:(fun w i ->
        let prev = seen.(w) in
        seen.(w) <- i;
        prev)
      ()
  in
  Array.iteri
    (fun i prev ->
      let expect = if i < jobs then -1 else i - jobs in
      Alcotest.(check int) (Printf.sprintf "predecessor of %d" i) expect prev)
    out

exception Boom of int

let test_exception_propagation () =
  (* index 13 lands on worker slot 13 mod 4 = 1, a spawned domain *)
  Alcotest.check_raises "worker exception reaches the caller" (Boom 13)
    (fun () ->
      ignore
        (Parallel.map ~jobs:4 ~n:20
           ~init:(fun _ -> ())
           ~f:(fun () i -> if i = 13 then raise (Boom i) else i)
           ()));
  (* and from the sequential fallback too *)
  Alcotest.check_raises "sequential exception" (Boom 3) (fun () ->
      ignore
        (Parallel.map ~jobs:1 ~n:5
           ~init:(fun _ -> ())
           ~f:(fun () i -> if i = 3 then raise (Boom i) else i)
           ()))

let test_map_reduce_order () =
  let reduce jobs =
    Parallel.map_reduce ~jobs ~n:17
      ~init:(fun _ -> ())
      ~f:(fun () i -> i)
      ~fold:(fun acc i -> (2 * acc) + i)
      0
  in
  Alcotest.(check int) "fold order is index order" (reduce 1) (reduce 4)

let test_explicit_pool () =
  let pool = Parallel.create ~jobs:3 in
  Alcotest.(check int) "pool size" 3 (Parallel.jobs pool);
  (* a pool is reusable across calls *)
  for round = 1 to 3 do
    let out =
      Parallel.map ~pool ~n:10 ~init:(fun _ -> round) ~f:(fun r i -> r * i) ()
    in
    Alcotest.(check (array int))
      (Printf.sprintf "round %d" round)
      (Array.init 10 (fun i -> round * i))
      out
  done;
  Parallel.shutdown pool;
  Parallel.shutdown pool (* idempotent *)

let test_resolve_jobs () =
  Alcotest.(check int) "explicit" 5 (Parallel.resolve_jobs (Some 5));
  Alcotest.(check int) "clamped" 64 (Parallel.resolve_jobs (Some 1000));
  Alcotest.(check bool) "auto is positive" true (Parallel.resolve_jobs None >= 1);
  Alcotest.(check int) "zero means auto"
    (Parallel.resolve_jobs None)
    (Parallel.resolve_jobs (Some 0))

(* ---- the engine on real instances ---- *)

let losses_testable =
  Alcotest.(array (array (float 0.)))

let test_selfcheck_parallel () =
  let inst = Flexile_core.Builder.fig1 () in
  List.iter
    (fun jobs ->
      Alcotest.(check (list (triple int (float 1e-9) (float 1e-9))))
        (Printf.sprintf "selfcheck clean at jobs=%d" jobs)
        []
        (Flexile_offline.selfcheck_subproblems ~jobs inst))
    [ 1; 2; 4 ]

let test_scenbest_bit_identical () =
  let inst = Flexile_core.Builder.fig1 () in
  let seq = Scenbest.run ~jobs:1 inst in
  let par = Scenbest.run ~jobs:3 inst in
  Alcotest.check losses_testable "ScenBest parallel == sequential" seq par

let test_offline_bit_identical () =
  let inst = Flexile_core.Builder.fig1 () in
  let solve jobs =
    let config =
      { Flexile_offline.default_config with Flexile_offline.jobs }
    in
    let r = Flexile_offline.solve ~config inst in
    ( r.Flexile_offline.best.Flexile_offline.penalty,
      r.Flexile_offline.subproblems_solved,
      r.Flexile_offline.best.Flexile_offline.losses )
  in
  let p1, n1, l1 = solve 1 in
  let p4, n4, l4 = solve 4 in
  Alcotest.(check (float 0.)) "penalty identical" p1 p4;
  Alcotest.(check int) "same subproblem count" n1 n4;
  Alcotest.check losses_testable "offline losses identical" l1 l4

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          quick "ordered-under-delays" test_ordered_under_delays;
          quick "jobs1-fallback" test_jobs1_fallback_equivalence;
          quick "static-sharding" test_static_sharding_contract;
          quick "exception-propagation" test_exception_propagation;
          quick "map-reduce-order" test_map_reduce_order;
          quick "explicit-pool" test_explicit_pool;
          quick "resolve-jobs" test_resolve_jobs;
        ] );
      ( "engine",
        [
          quick "selfcheck-jobs-124" test_selfcheck_parallel;
          quick "scenbest-bit-identical" test_scenbest_bit_identical;
          quick "offline-bit-identical" test_offline_bit_identical;
        ] );
    ]
