(* Properties of the miss-attribution engine (DESIGN.md section 13):

   - reconciliation: per class, attributed scenario mass + beyond-top
     mass + unenumerated mass telescopes back to the miss mass to
     within 1e-9, across scenario-regime mixes and promise tightness
     levels (as-solved, halved, impossible);
   - regret: online class max loss minus the clairvoyant class optimum
     is nonnegative up to LP tolerance for every (class, scenario);
   - determinism: the full report JSON is byte-identical across job
     counts;
   - regime tags: scenario 0 is nominal, every tag comes from the
     known regime vocabulary, and a composed mix carries at least two
     distinct non-nominal regimes. *)

module Trace = Flexile_util.Trace
module Instance = Flexile_te.Instance
module Metrics = Flexile_te.Metrics
module Offline = Flexile_te.Flexile_offline
module Attribution = Flexile_obs.Attribution
module Export = Flexile_obs.Metrics_export

let build mix =
  let options =
    {
      Flexile_core.Builder.default_options with
      Flexile_core.Builder.max_scenarios = 16;
      max_pairs = 30;
      scenario_mix = mix;
    }
  in
  Flexile_core.Builder.of_name ~options ~two_classes:true "IBM"

let solve inst =
  Offline.solve
    ~config:
      { Offline.default_config with Offline.max_iterations = 1; jobs = 2 }
    inst

let promises inst losses =
  Array.init (Array.length inst.Instance.classes) (fun k ->
      Metrics.perc_loss inst losses ~cls:k ())

(* one (instance, offline) pair per mix, shared across tests *)
let setup =
  let cache = Hashtbl.create 4 in
  fun mix ->
    match Hashtbl.find_opt cache mix with
    | Some v -> v
    | None ->
        let inst = build mix in
        let off = solve inst in
        let v = (inst, off) in
        Hashtbl.add cache mix v;
        v

let mixes = [ "srlg,partial,drift"; "independent" ]

(* ---- reconciliation: attributed mass == miss mass to 1e-9 ---- *)

let test_reconciliation () =
  List.iter
    (fun mix ->
      let inst, off = setup mix in
      let solved = promises inst off.Offline.best.Offline.losses in
      List.iter
        (fun (label, scale) ->
          let promised = Array.map (fun p -> p *. scale) solved in
          let inp = Attribution.prepare ~jobs:2 inst ~offline:off ~promised () in
          (* top:2 forces mass into other_mass as well *)
          let rep =
            Attribution.analyze ~top:2 inp
              ~losses:(Attribution.online_losses inp)
          in
          List.iter
            (fun (a : Attribution.class_attr) ->
              let total = Attribution.attributed_total a in
              if Float.abs (total -. a.Attribution.amiss_mass) > 1e-9 then
                Alcotest.failf
                  "%s/%s class %d: attributed %.15f vs miss mass %.15f" mix
                  label a.Attribution.acls total a.Attribution.amiss_mass;
              (* attributed mass is also bounded by each scenario's
                 probability and nonnegative *)
              List.iter
                (fun (s : Attribution.scen_attr) ->
                  if s.Attribution.sattr < 0. then
                    Alcotest.failf "%s/%s: negative attributed mass" mix label;
                  if s.Attribution.sattr > s.Attribution.sprob +. 1e-12 then
                    Alcotest.failf "%s/%s: attributed beyond scenario mass"
                      mix label)
                a.Attribution.ascenarios)
            rep.Attribution.classes)
        [ ("as-solved", 1.); ("halved", 0.5); ("impossible", 0.) ])
    mixes

(* a missed promise must actually surface positive miss mass *)
let test_impossible_promise_misses () =
  let inst, off = setup "srlg,partial,drift" in
  let nk = Array.length inst.Instance.classes in
  let promised = Array.make nk (-1.) in
  let inp = Attribution.prepare ~jobs:2 inst ~offline:off ~promised () in
  let rep = Attribution.analyze inp ~losses:(Attribution.online_losses inp) in
  List.iter
    (fun (a : Attribution.class_attr) ->
      if a.Attribution.aattained then
        Alcotest.failf "class %d attained an impossible promise"
          a.Attribution.acls;
      if a.Attribution.amiss_mass <= 0. then
        Alcotest.failf "class %d: impossible promise but zero miss mass"
          a.Attribution.acls)
    rep.Attribution.classes

(* ---- regret nonnegativity ---- *)

let test_regret_nonnegative () =
  List.iter
    (fun mix ->
      let inst, off = setup mix in
      let promised = promises inst off.Offline.best.Offline.losses in
      let inp = Attribution.prepare ~jobs:2 inst ~offline:off ~promised () in
      let regret = Attribution.regret inp in
      Array.iteri
        (fun k row ->
          Array.iteri
            (fun sid r ->
              if r < -1e-6 then
                Alcotest.failf "%s: negative regret %.9f at class %d sid %d"
                  mix r k sid)
            row)
        regret)
    mixes

(* ---- determinism across job counts ---- *)

let test_jobs_determinism () =
  let inst, off = setup "srlg,partial,drift" in
  let promised = promises inst off.Offline.best.Offline.losses in
  let report jobs =
    let inp = Attribution.prepare ~jobs inst ~offline:off ~promised () in
    Attribution.report_json
      (Attribution.analyze ~top:3 inp ~losses:(Attribution.online_losses inp))
  in
  Alcotest.(check string) "report jobs 1 vs 4" (report 1) (report 4)

(* ---- regime tags ---- *)

let known_regimes =
  [
    "nominal"; "independent"; "srlg"; "partial"; "drift"; "diurnal";
    "maintenance"; "mixed";
  ]

let test_regime_tags () =
  let inst, _ = setup "srlg,partial,drift" in
  Alcotest.(check string)
    "scenario 0 is nominal" "nominal"
    (Instance.regime inst ~sid:0);
  let names = Instance.regime_names inst in
  List.iter
    (fun r ->
      if not (List.mem r known_regimes) then
        Alcotest.failf "unknown regime tag %S" r)
    names;
  let non_nominal =
    List.filter (fun r -> not (String.equal r "nominal")) names
  in
  if List.length non_nominal < 2 then
    Alcotest.failf "mixed set carries %d non-nominal regimes"
      (List.length non_nominal)

(* the legacy independent path carries no regime array but still tags
   scenarios through the fallback *)
let test_regime_fallback () =
  let inst, _ = setup "independent" in
  Alcotest.(check string)
    "scenario 0 is nominal" "nominal"
    (Instance.regime inst ~sid:0);
  let tagged =
    List.for_all
      (fun r -> String.equal r "nominal" || String.equal r "independent")
      (Instance.regime_names inst)
  in
  Alcotest.(check bool) "fallback tags" true tagged

(* ---- Prometheus label escaping (satellite) ---- *)

let test_label_escape () =
  Alcotest.(check string) "backslash" "a\\\\b" (Export.label_escape "a\\b");
  Alcotest.(check string) "quote" "a\\\"b" (Export.label_escape "a\"b");
  Alcotest.(check string) "newline" "a\\nb" (Export.label_escape "a\nb");
  Alcotest.(check string) "plain" "high-priority"
    (Export.label_escape "high-priority");
  let page =
    Export.labeled_gauge ~name:"slo.test"
      [ ([ ("class", "we\"ird\\cls\n") ], 1.5) ]
  in
  Alcotest.(check string) "labeled gauge escapes"
    "# TYPE flexile_slo_test gauge\n\
     flexile_slo_test{class=\"we\\\"ird\\\\cls\\n\"} 1.5\n"
    page

let () =
  (* the regret histogram is registered lazily; keep tracing off so
     test output stays independent of registry state *)
  Trace.set_enabled false;
  Alcotest.run "flexile_attribution"
    [
      ( "attribution",
        [
          Alcotest.test_case "reconciliation to 1e-9" `Quick
            test_reconciliation;
          Alcotest.test_case "impossible promise misses" `Quick
            test_impossible_promise_misses;
          Alcotest.test_case "regret nonnegative" `Quick
            test_regret_nonnegative;
          Alcotest.test_case "report jobs 1 vs 4" `Quick test_jobs_determinism;
        ] );
      ( "regimes",
        [
          Alcotest.test_case "mixed-set tags" `Quick test_regime_tags;
          Alcotest.test_case "independent fallback" `Quick
            test_regime_fallback;
        ] );
      ( "prometheus",
        [ Alcotest.test_case "label escaping" `Quick test_label_escape ] );
    ]
