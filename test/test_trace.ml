(* Tests of the Trace observability layer: cross-domain counter
   aggregation, exactness of the solver counters against the solver's
   own result fields, the disabled-by-default contract, and the JSON
   report shape. *)

module Trace = Flexile_util.Trace
module Parallel = Flexile_util.Parallel
module Offline = Flexile_te.Flexile_offline

let with_tracing enabled f =
  let was = Trace.enabled () in
  Trace.set_enabled enabled;
  Fun.protect ~finally:(fun () -> Trace.set_enabled was) f

(* ---- counters sum across domains ---- *)

let test_counter_sums_across_domains () =
  with_tracing true @@ fun () ->
  let c = Trace.counter "test.cross_domain" in
  let base = Trace.value c in
  let n = 103 in
  let _ =
    Parallel.map ~jobs:4 ~n
      ~init:(fun _ -> ())
      ~f:(fun () i ->
        Trace.incr c;
        i)
      ()
  in
  Alcotest.(check int) "n increments over 4 domains" (base + n) (Trace.value c)

let test_timer_and_gauge_merge () =
  with_tracing true @@ fun () ->
  let t = Trace.timer "test.span" in
  let g = Trace.gauge "test.gauge" in
  let n0 = Trace.timer_count t in
  let _ =
    Parallel.map ~jobs:2 ~n:8
      ~init:(fun _ -> ())
      ~f:(fun () i ->
        Trace.with_span t (fun () -> Trace.gauge_max g i);
        i)
      ()
  in
  Alcotest.(check int) "span count sums" (n0 + 8) (Trace.timer_count t);
  Alcotest.(check int) "gauge keeps the max" 7 (Trace.gauge_value g);
  if Trace.timer_seconds t < 0. then Alcotest.fail "negative span time"

let test_events_ordered () =
  with_tracing true @@ fun () ->
  let p = Trace.probe "test.event" in
  Trace.event p 1;
  Trace.event p 2;
  Trace.event p 3;
  let mine =
    Trace.events () |> List.filter (fun e -> e.Trace.name = "test.event")
  in
  Alcotest.(check (list int))
    "args in emission order" [ 1; 2; 3 ]
    (List.map (fun e -> e.Trace.arg) mine);
  let seqs = List.map (fun e -> e.Trace.seq) mine in
  if List.sort compare seqs <> seqs then Alcotest.fail "seq not monotone"

(* ---- disabled tracing records nothing ---- *)

let test_disabled_records_nothing () =
  with_tracing false @@ fun () ->
  let c = Trace.counter "test.disabled_counter" in
  let t = Trace.timer "test.disabled_timer" in
  let p = Trace.probe "test.disabled_event" in
  let c0 = Trace.value c
  and n0 = Trace.timer_count t
  and e0 = Trace.events_logged () in
  Trace.incr c;
  Trace.add c 41;
  Trace.with_span t (fun () -> ());
  Trace.event p 7;
  Alcotest.(check int) "counter untouched" c0 (Trace.value c);
  Alcotest.(check int) "timer untouched" n0 (Trace.timer_count t);
  Alcotest.(check int) "no events logged" e0 (Trace.events_logged ())

(* ---- solver counters are exact ---- *)

let test_flexile_counters_exact () =
  with_tracing true @@ fun () ->
  Trace.reset ();
  let inst = Flexile_core.Builder.fig1 () in
  let r = Offline.solve inst in
  Alcotest.(check int)
    "subproblems counter = result field" r.Offline.subproblems_solved
    (Trace.value_by_name "flexile.subproblems_solved");
  Alcotest.(check int)
    "iteration counter = iterate count"
    (List.length r.Offline.iterates)
    (Trace.value_by_name "flexile.iterations");
  let summary = Offline.trace_summary () in
  let get k = List.assoc k summary in
  if get "subproblems_solved" <> float_of_int r.Offline.subproblems_solved then
    Alcotest.fail "trace_summary disagrees with counter";
  if get "subproblem_sweep_seconds" <= 0. then
    Alcotest.fail "sweep timer did not accumulate"

let test_flexile_disabled_counts_zero () =
  Trace.reset ();
  with_tracing false @@ fun () ->
  let inst = Flexile_core.Builder.fig1 () in
  let r = Offline.solve inst in
  if r.Offline.subproblems_solved <= 0 then
    Alcotest.fail "toy instance should solve subproblems";
  Alcotest.(check int) "disabled: counter stays zero" 0
    (Trace.value_by_name "flexile.subproblems_solved");
  Alcotest.(check int) "disabled: no events" 0 (Trace.events_logged ())

(* ---- JSON report ---- *)

let test_json_shape () =
  with_tracing true @@ fun () ->
  Trace.incr (Trace.counter "test.json_counter");
  let j = Trace.to_json () in
  let must s =
    if not (String.length j >= String.length s) then
      Alcotest.failf "report too short for %s" s;
    let found = ref false in
    for i = 0 to String.length j - String.length s do
      if String.sub j i (String.length s) = s then found := true
    done;
    if not !found then Alcotest.failf "report lacks %s: %s" s j
  in
  must "\"enabled\":true";
  must "\"counters\"";
  must "\"test.json_counter\"";
  must "\"timers\"";
  must "\"events\"";
  let oj = Offline.trace_json () in
  List.iter
    (fun s ->
      if
        not
          (let n = String.length s in
           let found = ref false in
           for i = 0 to String.length oj - n do
             if String.sub oj i n = s then found := true
           done;
           !found)
      then Alcotest.failf "offline trace lacks %s" s)
    [ "\"derived\""; "\"warm_start_hit_rate\""; "\"report\"" ]

(* ---- histograms ---- *)

let test_hist_edge_cases () =
  with_tracing true @@ fun () ->
  let h = Trace.hist "test.hist_edges" in
  Trace.observe h 0.;
  Trace.observe h (-3.);
  Trace.observe h Float.nan;
  Trace.observe h 1.0;
  let s = Trace.hist_snapshot h in
  Alcotest.(check int) "count includes nan" 4 s.Trace.hist_count;
  (match s.Trace.hist_buckets with
  | (ub0, c0) :: _ ->
      Alcotest.(check (float 0.)) "nonpositive slot reports bound 0" 0. ub0;
      Alcotest.(check int) "zero, negative and nan land in slot 0" 3 c0
  | [] -> Alcotest.fail "no buckets");
  Alcotest.(check (float 1e-12)) "sum excludes nan" (-2.) s.Trace.hist_sum;
  Alcotest.(check (float 0.)) "min exact" (-3.) s.Trace.hist_min;
  Alcotest.(check (float 0.)) "max exact" 1.0 s.Trace.hist_max

let test_hist_bucket_bounds () =
  with_tracing true @@ fun () ->
  (* every in-range positive value lands in a bucket whose (exclusive)
     upper bound is above it by at most the 1/16-octave width *)
  List.iteri
    (fun i v ->
      let h = Trace.hist (Printf.sprintf "test.hist_bound_%d" i) in
      Trace.observe h v;
      match (Trace.hist_snapshot h).Trace.hist_buckets with
      | [ (ub, 1) ] ->
          if not (v < ub) then
            Alcotest.failf "%g not below its bucket bound %g" v ub;
          if ub > v *. 1.07 then
            Alcotest.failf "bucket bound %g too loose for %g" ub v
      | bs -> Alcotest.failf "expected one bucket, got %d" (List.length bs))
    [ 0.75; 1.0; 1.0000001; 2.0; 1e9; 0.1; 3.14159 ];
  (* below-range values clamp into the lowest positive bucket *)
  let h = Trace.hist "test.hist_below" in
  Trace.observe h (Float.ldexp 1. (-40));
  (match (Trace.hist_snapshot h).Trace.hist_buckets with
  | [ (ub, 1) ] -> if not (ub > 0.) then Alcotest.fail "clamped-low bound"
  | _ -> Alcotest.fail "clamped-low bucket count");
  (* above-range values clamp into the top bucket; the exact maximum
     still comes back through the quantile clamp *)
  let h = Trace.hist "test.hist_above" in
  Trace.observe h 1e12;
  Alcotest.(check (float 0.)) "q=1 reads the exact max" 1e12
    (Trace.hist_quantile h 1.0)

let test_hist_merge_deterministic () =
  with_tracing true @@ fun () ->
  let hp = Trace.hist "test.hist_par" in
  let hs = Trace.hist "test.hist_seq" in
  let n = 400 in
  let value i = Float.of_int ((i * 7919 mod 1000) - 50) /. 37. in
  let _ =
    Parallel.map ~jobs:4 ~n
      ~init:(fun _ -> ())
      ~f:(fun () i ->
        Trace.observe hp (value i);
        i)
      ()
  in
  for i = 0 to n - 1 do
    Trace.observe hs (value i)
  done;
  let sp = Trace.hist_snapshot hp and ss = Trace.hist_snapshot hs in
  Alcotest.(check int) "counts agree" ss.Trace.hist_count sp.Trace.hist_count;
  Alcotest.(check (float 1e-9)) "sums agree" ss.Trace.hist_sum
    sp.Trace.hist_sum;
  Alcotest.(check (float 0.)) "min agrees" ss.Trace.hist_min sp.Trace.hist_min;
  Alcotest.(check (float 0.)) "max agrees" ss.Trace.hist_max sp.Trace.hist_max;
  if
    not
      (List.length sp.Trace.hist_buckets = List.length ss.Trace.hist_buckets
      && List.for_all2
           (fun (u1, c1) (u2, c2) -> Float.compare u1 u2 = 0 && c1 = c2)
           sp.Trace.hist_buckets ss.Trace.hist_buckets)
  then Alcotest.fail "parallel merge differs from sequential";
  List.iter
    (fun q ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "q=%g agrees" q)
        (Trace.hist_quantile_of ss q)
        (Trace.hist_quantile_of sp q))
    [ 0.; 0.5; 0.9; 0.95; 0.99; 1. ]

let test_hist_quantile_monotone () =
  with_tracing true @@ fun () ->
  let h = Trace.hist "test.hist_quantiles" in
  for i = 1 to 1000 do
    Trace.observe h (Float.of_int (i * i) /. 1e4)
  done;
  let s = Trace.hist_snapshot h in
  let prev = ref Float.neg_infinity in
  for i = 0 to 100 do
    let q = Float.of_int i /. 100. in
    let v = Trace.hist_quantile_of s q in
    if v < !prev then Alcotest.failf "quantile not monotone at q=%g" q;
    prev := v
  done;
  if Trace.hist_quantile_of s 1.0 > s.Trace.hist_max +. 1e-12 then
    Alcotest.fail "quantile exceeds the tracked max";
  (* empty histograms read as nan *)
  let e = Trace.hist "test.hist_empty" in
  if not (Float.is_nan (Trace.hist_quantile e 0.5)) then
    Alcotest.fail "empty quantile should be nan"

let test_hist_disabled () =
  with_tracing false @@ fun () ->
  let h = Trace.hist "test.hist_disabled" in
  Trace.observe h 1.0;
  let r = Trace.observe_duration h (fun () -> 41 + 1) in
  Alcotest.(check int) "thunk result passes through" 42 r;
  Alcotest.(check int) "disabled records nothing" 0 (Trace.hist_count h)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "flexile_trace"
    [
      ( "aggregation",
        [
          quick "counters sum across domains" test_counter_sums_across_domains;
          quick "timers and gauges merge" test_timer_and_gauge_merge;
          quick "events keep order" test_events_ordered;
        ] );
      ( "disabled",
        [
          quick "no-op when disabled" test_disabled_records_nothing;
          quick "solver counters stay zero" test_flexile_disabled_counts_zero;
        ] );
      ( "solver",
        [ quick "offline counters exact" test_flexile_counters_exact ] );
      ("json", [ quick "report shape" test_json_shape ]);
      ( "histograms",
        [
          quick "zero/negative/nan edge cases" test_hist_edge_cases;
          quick "bucket bounds tight and half-open" test_hist_bucket_bounds;
          quick "parallel merge == sequential" test_hist_merge_deterministic;
          quick "quantiles monotone, clamped to max" test_hist_quantile_monotone;
          quick "disabled is a no-op" test_hist_disabled;
        ] );
    ]
