(* Tests of the Trace observability layer: cross-domain counter
   aggregation, exactness of the solver counters against the solver's
   own result fields, the disabled-by-default contract, and the JSON
   report shape. *)

module Trace = Flexile_util.Trace
module Parallel = Flexile_util.Parallel
module Offline = Flexile_te.Flexile_offline

let with_tracing enabled f =
  let was = Trace.enabled () in
  Trace.set_enabled enabled;
  Fun.protect ~finally:(fun () -> Trace.set_enabled was) f

(* ---- counters sum across domains ---- *)

let test_counter_sums_across_domains () =
  with_tracing true @@ fun () ->
  let c = Trace.counter "test.cross_domain" in
  let base = Trace.value c in
  let n = 103 in
  let _ =
    Parallel.map ~jobs:4 ~n
      ~init:(fun _ -> ())
      ~f:(fun () i ->
        Trace.incr c;
        i)
      ()
  in
  Alcotest.(check int) "n increments over 4 domains" (base + n) (Trace.value c)

let test_timer_and_gauge_merge () =
  with_tracing true @@ fun () ->
  let t = Trace.timer "test.span" in
  let g = Trace.gauge "test.gauge" in
  let n0 = Trace.timer_count t in
  let _ =
    Parallel.map ~jobs:2 ~n:8
      ~init:(fun _ -> ())
      ~f:(fun () i ->
        Trace.with_span t (fun () -> Trace.gauge_max g i);
        i)
      ()
  in
  Alcotest.(check int) "span count sums" (n0 + 8) (Trace.timer_count t);
  Alcotest.(check int) "gauge keeps the max" 7 (Trace.gauge_value g);
  if Trace.timer_seconds t < 0. then Alcotest.fail "negative span time"

let test_events_ordered () =
  with_tracing true @@ fun () ->
  let p = Trace.probe "test.event" in
  Trace.event p 1;
  Trace.event p 2;
  Trace.event p 3;
  let mine =
    Trace.events () |> List.filter (fun e -> e.Trace.name = "test.event")
  in
  Alcotest.(check (list int))
    "args in emission order" [ 1; 2; 3 ]
    (List.map (fun e -> e.Trace.arg) mine);
  let seqs = List.map (fun e -> e.Trace.seq) mine in
  if List.sort compare seqs <> seqs then Alcotest.fail "seq not monotone"

(* ---- disabled tracing records nothing ---- *)

let test_disabled_records_nothing () =
  with_tracing false @@ fun () ->
  let c = Trace.counter "test.disabled_counter" in
  let t = Trace.timer "test.disabled_timer" in
  let p = Trace.probe "test.disabled_event" in
  let c0 = Trace.value c
  and n0 = Trace.timer_count t
  and e0 = Trace.events_logged () in
  Trace.incr c;
  Trace.add c 41;
  Trace.with_span t (fun () -> ());
  Trace.event p 7;
  Alcotest.(check int) "counter untouched" c0 (Trace.value c);
  Alcotest.(check int) "timer untouched" n0 (Trace.timer_count t);
  Alcotest.(check int) "no events logged" e0 (Trace.events_logged ())

(* ---- solver counters are exact ---- *)

let test_flexile_counters_exact () =
  with_tracing true @@ fun () ->
  Trace.reset ();
  let inst = Flexile_core.Builder.fig1 () in
  let r = Offline.solve inst in
  Alcotest.(check int)
    "subproblems counter = result field" r.Offline.subproblems_solved
    (Trace.value_by_name "flexile.subproblems_solved");
  Alcotest.(check int)
    "iteration counter = iterate count"
    (List.length r.Offline.iterates)
    (Trace.value_by_name "flexile.iterations");
  let summary = Offline.trace_summary () in
  let get k = List.assoc k summary in
  if get "subproblems_solved" <> float_of_int r.Offline.subproblems_solved then
    Alcotest.fail "trace_summary disagrees with counter";
  if get "subproblem_sweep_seconds" <= 0. then
    Alcotest.fail "sweep timer did not accumulate"

let test_flexile_disabled_counts_zero () =
  Trace.reset ();
  with_tracing false @@ fun () ->
  let inst = Flexile_core.Builder.fig1 () in
  let r = Offline.solve inst in
  if r.Offline.subproblems_solved <= 0 then
    Alcotest.fail "toy instance should solve subproblems";
  Alcotest.(check int) "disabled: counter stays zero" 0
    (Trace.value_by_name "flexile.subproblems_solved");
  Alcotest.(check int) "disabled: no events" 0 (Trace.events_logged ())

(* ---- JSON report ---- *)

let test_json_shape () =
  with_tracing true @@ fun () ->
  Trace.incr (Trace.counter "test.json_counter");
  let j = Trace.to_json () in
  let must s =
    if not (String.length j >= String.length s) then
      Alcotest.failf "report too short for %s" s;
    let found = ref false in
    for i = 0 to String.length j - String.length s do
      if String.sub j i (String.length s) = s then found := true
    done;
    if not !found then Alcotest.failf "report lacks %s: %s" s j
  in
  must "\"enabled\":true";
  must "\"counters\"";
  must "\"test.json_counter\"";
  must "\"timers\"";
  must "\"events\"";
  let oj = Offline.trace_json () in
  List.iter
    (fun s ->
      if
        not
          (let n = String.length s in
           let found = ref false in
           for i = 0 to String.length oj - n do
             if String.sub oj i n = s then found := true
           done;
           !found)
      then Alcotest.failf "offline trace lacks %s" s)
    [ "\"derived\""; "\"warm_start_hit_rate\""; "\"report\"" ]

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "flexile_trace"
    [
      ( "aggregation",
        [
          quick "counters sum across domains" test_counter_sums_across_domains;
          quick "timers and gauges merge" test_timer_and_gauge_merge;
          quick "events keep order" test_events_ordered;
        ] );
      ( "disabled",
        [
          quick "no-op when disabled" test_disabled_records_nothing;
          quick "solver counters stay zero" test_flexile_disabled_counts_zero;
        ] );
      ( "solver",
        [ quick "offline counters exact" test_flexile_counters_exact ] );
      ("json", [ quick "report shape" test_json_shape ]);
    ]
