(* Unit tests for the post-analysis metrics (Definitions 2.1, 4.1, 4.2)
   against hand-computed values on a crafted instance. *)

open Flexile_te
module FM = Flexile_failure.Failure_model

let quick name f = Alcotest.test_case name `Quick f

let check_float ~msg expected actual =
  if Float.abs (expected -. actual) > 1e-9 then
    Alcotest.failf "%s: expected %.6f, got %.6f" msg expected actual

(* Triangle with two flows and up to 8 exhaustively-enumerated
   scenarios (p_link = 0.1 so every subset has significant mass).
   Scenario masses: all-alive 0.729, each single failure 0.081, each
   double failure 0.009, total blackout 0.001; [max_scenarios] keeps
   the heaviest ones, so 1 covers mass 0.729 and 2 covers 0.81. *)
let make_inst ?(max_scenarios = 8) () =
  let graph = Flexile_net.Catalog.triangle () in
  let mk pair edges = Flexile_net.Tunnels.make graph ~pair (Array.of_list edges) in
  let fm = FM.of_probs ~nedges:3 [| 0.1; 0.1; 0.1 |] in
  let scenarios = FM.enumerate ~cutoff:0. ~max_scenarios fm in
  let inst =
    Instance.make ~graph
      ~classes:
        [|
          { Instance.cname = "hi"; beta = 0.9; weight = 10. };
          { Instance.cname = "lo"; beta = 0.8; weight = 1. };
        |]
      ~pairs:[| (0, 1); (0, 2) |]
      ~tunnels:
        [|
          [| [| mk (0, 1) [ 0 ] |]; [| mk (0, 2) [ 1 ] |] |];
          [| [| mk (0, 1) [ 0 ] |]; [| mk (0, 2) [ 1 ] |] |];
        |]
      ~demands:[| [| 1.; 1. |]; [| 1.; 0. |] |]
      ~scenarios ()
  in
  inst

let test_flow_var () =
  let inst = make_inst () in
  let losses = Instance.alloc_losses inst in
  (* flow 0 (class hi, pair 0): loss 0 except 0.4 whenever edge 0 is
     down (mass 0.1) *)
  let f0 = inst.Instance.flows.(0) in
  Array.iter
    (fun (s : FM.scenario) ->
      losses.(0).(s.FM.sid) <- (if s.FM.edge_alive.(0) then 0. else 0.4))
    inst.Instance.scenarios;
  check_float ~msg:"VaR at 0.9 skips the 0.1 tail" 0.
    (Metrics.flow_loss_var inst losses f0 ~beta:0.9);
  check_float ~msg:"VaR at 0.95 catches it" 0.4
    (Metrics.flow_loss_var inst losses f0 ~beta:0.95);
  (* CVaR at 0.9: the worst 0.1 mass all at 0.4 *)
  check_float ~msg:"CVaR at 0.9" 0.4 (Metrics.flow_cvar inst losses f0 ~beta:0.9)

let test_perc_loss_max_over_flows () =
  let inst = make_inst () in
  let losses = Instance.alloc_losses inst in
  Array.iter (fun row -> Array.fill row 0 (Instance.nscenarios inst) 0.) losses;
  (* class hi flows: 0 and 1; give flow 1 a constant 0.2 loss *)
  Array.fill losses.(1) 0 (Instance.nscenarios inst) 0.2;
  check_float ~msg:"PercLoss hi = max over flows" 0.2
    (Metrics.perc_loss inst losses ~cls:0 ());
  (* zero-demand flow 3 (class lo, pair 1) must be ignored *)
  Array.fill losses.(3) 0 (Instance.nscenarios inst) 0.9;
  check_float ~msg:"zero-demand flow ignored" 0.
    (Metrics.perc_loss inst losses ~cls:1 ())

let test_scen_loss () =
  let inst = make_inst () in
  let losses = Instance.alloc_losses inst in
  Array.iter (fun row -> Array.fill row 0 (Instance.nscenarios inst) 0.) losses;
  losses.(0).(0) <- 0.3;
  losses.(1).(0) <- 0.5;
  check_float ~msg:"worst flow in scenario" 0.5
    (Metrics.scen_loss inst losses ~sid:0 ());
  (* disconnected flows excluded by default: find a scenario where
     edge 0 is dead -> flow 0 disconnected there *)
  let sid =
    let found = ref (-1) in
    Array.iter
      (fun (s : FM.scenario) ->
        if !found < 0 && not s.FM.edge_alive.(0) && s.FM.edge_alive.(1) then
          found := s.FM.sid)
      inst.Instance.scenarios;
    !found
  in
  losses.(0).(sid) <- 1.0;
  losses.(1).(sid) <- 0.1;
  check_float ~msg:"disconnected excluded" 0.1
    (Metrics.scen_loss inst losses ~sid ());
  check_float ~msg:"disconnected included" 1.0
    (Metrics.scen_loss inst losses ~sid ~connected_only:false ())

let test_weighted_penalty () =
  let inst = make_inst () in
  let losses = Instance.alloc_losses inst in
  Array.iter (fun row -> Array.fill row 0 (Instance.nscenarios inst) 0.) losses;
  Array.fill losses.(0) 0 (Instance.nscenarios inst) 0.1;
  (* hi class PercLoss 0.1 with weight 10; lo class 0 *)
  check_float ~msg:"sum of weighted PercLoss" 1.0
    (Metrics.total_weighted_penalty inst losses)

let test_flow_var_cdf () =
  let inst = make_inst () in
  let losses = Instance.alloc_losses inst in
  Array.iter (fun row -> Array.fill row 0 (Instance.nscenarios inst) 0.) losses;
  Array.fill losses.(1) 0 (Instance.nscenarios inst) 0.25;
  let cdf = Metrics.flow_var_cdf inst losses ~cls:0 ~beta:0.9 in
  (* two flows: one at 0, one at 0.25 *)
  Alcotest.(check int) "two points" 2 (List.length cdf);
  (match cdf with
  | [ (v1, c1); (v2, c2) ] ->
      check_float ~msg:"first value" 0. v1;
      check_float ~msg:"first cum" 0.5 c1;
      check_float ~msg:"second value" 0.25 v2;
      check_float ~msg:"second cum" 1.0 c2
  | _ -> Alcotest.fail "unexpected cdf shape")

let test_demand_in () =
  let inst = make_inst () in
  let f0 = inst.Instance.flows.(0) in
  check_float ~msg:"no factors" 1. (Instance.demand_in inst f0 3);
  let factors =
    Array.make_matrix (Instance.nscenarios inst) (Instance.nflows inst) 1.
  in
  factors.(3).(0) <- 0.5;
  let graph = inst.Instance.graph in
  let inst2 =
    Instance.make ~graph ~classes:inst.Instance.classes
      ~pairs:inst.Instance.pairs ~tunnels:inst.Instance.tunnels
      ~demands:[| [| 1.; 1. |]; [| 1.; 0. |] |]
      ~demand_factors:factors ~scenarios:inst.Instance.scenarios ()
  in
  check_float ~msg:"factor applied" 0.5
    (Instance.demand_in inst2 inst2.Instance.flows.(0) 3);
  check_float ~msg:"other scenario unaffected" 1.
    (Instance.demand_in inst2 inst2.Instance.flows.(0) 2)

(* ---- edge cases: partial enumeration, degenerate betas ---- *)

let test_unenumerated_mass_is_worst_loss () =
  (* only the 2 heaviest scenarios: enumerated mass 0.81.  The hi class
     (beta 0.9) cannot reach its percentile inside the observed mass,
     so its VaR is the worst loss 1.0 even though every observed loss
     is zero; the lo class (beta 0.8 <= 0.81) still sees 0. *)
  let inst = make_inst ~max_scenarios:2 () in
  Alcotest.(check int) "two scenarios" 2 (Instance.nscenarios inst);
  let losses = Instance.alloc_losses inst in
  Array.iter (fun row -> Array.fill row 0 (Instance.nscenarios inst) 0.) losses;
  let f0 = inst.Instance.flows.(0) in
  check_float ~msg:"beta 0.9 above observed mass -> 1.0" 1.0
    (Metrics.flow_loss_var inst losses f0 ~beta:0.9);
  check_float ~msg:"beta 0.8 within observed mass -> 0" 0.
    (Metrics.flow_loss_var inst losses f0 ~beta:0.8);
  check_float ~msg:"PercLoss hi saturates" 1.0
    (Metrics.perc_loss inst losses ~cls:0 ());
  check_float ~msg:"PercLoss lo unaffected" 0.
    (Metrics.perc_loss inst losses ~cls:1 ());
  (* zero-demand flow 3 (class lo, pair 1) stays ignored even under
     partial enumeration *)
  Array.fill losses.(3) 0 (Instance.nscenarios inst) 0.9;
  check_float ~msg:"zero-demand flow ignored" 0.
    (Metrics.perc_loss inst losses ~cls:1 ())

let test_beta_one_full_enumeration () =
  (* beta = 1.0 over the full (mass-1) enumeration: the VaR is the
     worst observed loss, not the conservative 1.0 *)
  let inst = make_inst () in
  let losses = Instance.alloc_losses inst in
  Array.iter (fun row -> Array.fill row 0 (Instance.nscenarios inst) 0.) losses;
  let f0 = inst.Instance.flows.(0) in
  Array.iter
    (fun (s : FM.scenario) ->
      losses.(0).(s.FM.sid) <- (if s.FM.edge_alive.(0) then 0. else 0.4))
    inst.Instance.scenarios;
  check_float ~msg:"beta 1.0 = max observed loss" 0.4
    (Metrics.flow_loss_var inst losses f0 ~beta:1.0);
  check_float ~msg:"PercLoss at explicit beta 1.0" 0.4
    (Metrics.perc_loss inst losses ~cls:0 ~beta:1.0 ())

let test_single_scenario_degenerate () =
  (* one scenario (all-alive, mass 0.729): the percentile either falls
     entirely inside that scenario or entirely outside the observed
     mass, with the boundary beta = 0.729 counting as inside *)
  let inst = make_inst ~max_scenarios:1 () in
  Alcotest.(check int) "one scenario" 1 (Instance.nscenarios inst);
  let losses = Instance.alloc_losses inst in
  Array.iter (fun row -> Array.fill row 0 1 0.) losses;
  losses.(0).(0) <- 0.25;
  let f0 = inst.Instance.flows.(0) in
  check_float ~msg:"beta below mass -> scenario loss" 0.25
    (Metrics.flow_loss_var inst losses f0 ~beta:0.7);
  check_float ~msg:"boundary beta = mass -> scenario loss" 0.25
    (Metrics.flow_loss_var inst losses f0 ~beta:0.729);
  check_float ~msg:"beta above mass -> 1.0" 1.0
    (Metrics.flow_loss_var inst losses f0 ~beta:0.8)

let test_scen_loss_fully_disconnected () =
  (* in the scenario where both tunnel edges are dead every flow is
     disconnected: the connected-only ScenLoss (the paper's default)
     is an empty max = 0, while including disconnected flows reports
     their full loss *)
  let inst = make_inst () in
  let losses = Instance.alloc_losses inst in
  Array.iter (fun row -> Array.fill row 0 (Instance.nscenarios inst) 0.) losses;
  let sid =
    let found = ref (-1) in
    Array.iter
      (fun (s : FM.scenario) ->
        if !found < 0 && (not s.FM.edge_alive.(0)) && not s.FM.edge_alive.(1)
        then found := s.FM.sid)
      inst.Instance.scenarios;
    !found
  in
  if sid < 0 then Alcotest.fail "no double-failure scenario enumerated";
  Array.iter
    (fun (f : Instance.flow) ->
      if Instance.flow_connected inst f sid then
        Alcotest.failf "flow %d unexpectedly connected in scenario %d"
          f.Instance.fid sid)
    inst.Instance.flows;
  losses.(0).(sid) <- 1.0;
  losses.(1).(sid) <- 1.0;
  check_float ~msg:"connected-only over no flows" 0.
    (Metrics.scen_loss inst losses ~sid ());
  check_float ~msg:"including disconnected" 1.0
    (Metrics.scen_loss inst losses ~sid ~connected_only:false ())

let () =
  Alcotest.run "flexile_metrics"
    [
      ( "metrics",
        [
          quick "flow VaR / CVaR" test_flow_var;
          quick "PercLoss over flows" test_perc_loss_max_over_flows;
          quick "ScenLoss" test_scen_loss;
          quick "weighted penalty" test_weighted_penalty;
          quick "flow VaR CDF" test_flow_var_cdf;
          quick "demand_in" test_demand_in;
        ] );
      ( "edge-cases",
        [
          quick "unenumerated mass is worst loss"
            test_unenumerated_mass_is_worst_loss;
          quick "beta = 1.0" test_beta_one_full_enumeration;
          quick "single-scenario percentiles" test_single_scenario_degenerate;
          quick "ScenLoss fully disconnected" test_scen_loss_fully_disconnected;
        ] );
    ]
