(* flexile-lint engine tests: one positive (flagged) and one negative
   (clean) fixture per rule id, suppression via [@lint.allow], config
   allowlisting, zone gating, and the JSON summary shape. *)

module E = Flexile_lint.Lint_engine
module Json = Flexile_util.Json

(* Lint an inline fixture as if it lived at [file]. *)
let lint ?(file = "lib/fixture.ml") src = E.check_source ~file src

let rules_hit r = List.map (fun f -> f.E.rule) r.E.findings

let check_rules name expected r =
  Alcotest.(check (list string)) name expected (rules_hit r)

(* ------------------------------------------------------------------ *)
(* d1-nondet                                                           *)
(* ------------------------------------------------------------------ *)

let d1_positive () =
  check_rules "Random" [ "d1-nondet" ] (lint {|let f () = Random.int 5|});
  check_rules "gettimeofday" [ "d1-nondet" ]
    (lint {|let f () = Unix.gettimeofday ()|});
  check_rules "Sys.time" [ "d1-nondet" ] (lint {|let f () = Sys.time ()|});
  check_rules "Hashtbl.hash" [ "d1-nondet" ]
    (lint {|let f x = Hashtbl.hash x|});
  check_rules "random table" [ "d1-nondet" ]
    (lint {|let f () = Hashtbl.create ~random:true 16|})

let d1_negative () =
  check_rules "Prng is fine" []
    (lint {|let f rng = Flexile_util.Prng.int rng 5|});
  check_rules "trace clock is fine" []
    (lint {|let f () = Flexile_util.Trace.now_s ()|});
  check_rules "~random:false is fine" []
    (lint {|let f () = Hashtbl.create ~random:false 16|})

let d1_config_allow () =
  (* lib/util/prng.ml is the sanctioned randomness source *)
  let r = lint ~file:"lib/util/prng.ml" {|let f () = Random.int 5|} in
  check_rules "allowlisted file" [] r;
  Alcotest.(check int) "counted as config-allowed" 1 r.E.config_suppressed

let d1_zone_gate () =
  (* d1 only applies to lib/: the bench driver may read the wall clock *)
  check_rules "bench exempt" []
    (lint ~file:"bench/main.ml" {|let f () = Unix.gettimeofday ()|})

(* ------------------------------------------------------------------ *)
(* d2-float-eq                                                         *)
(* ------------------------------------------------------------------ *)

let d2_positive () =
  check_rules "float literal =" [ "d2-float-eq" ] (lint {|let f x = x = 0.|});
  check_rules "float arith <>" [ "d2-float-eq" ]
    (lint {|let f a b = a <> b *. 2.|});
  check_rules "compare on floats" [ "d2-float-eq" ]
    (lint {|let f a b = compare (a +. 1.) b|});
  check_rules "constraint operand" [ "d2-float-eq" ]
    (lint {|let f x y = (x : float) = y|});
  check_rules "infinity" [ "d2-float-eq" ] (lint {|let f x = x = infinity|})

let d2_negative () =
  check_rules "int = is fine" [] (lint {|let f x = x = 0|});
  check_rules "string = is fine" [] (lint {|let f s = s = "x"|});
  check_rules "Float_cmp is the fix" []
    (lint {|let f x = Flexile_util.Float_cmp.eq x 0.|});
  check_rules "Float.is_nan result is not a float" []
    (lint {|let f x y = Float.is_nan x = Float.is_nan y|})

(* ------------------------------------------------------------------ *)
(* d3-tbl-order                                                        *)
(* ------------------------------------------------------------------ *)

let d3_positive () =
  check_rules "fold" [ "d3-tbl-order" ]
    (lint {|let f h = Hashtbl.fold (fun k _ acc -> k :: acc) h []|});
  check_rules "iter" [ "d3-tbl-order" ]
    (lint {|let f g h = Hashtbl.iter g h|})

let d3_negative () =
  check_rules "sorted traversal is the fix" []
    (lint {|let f h = Flexile_util.Tbl.sorted_fold (fun k _ acc -> k :: acc) h []|});
  check_rules "find/replace are order-free" []
    (lint {|let f h = Hashtbl.replace h 1 2; Hashtbl.find_opt h 1|})

(* ------------------------------------------------------------------ *)
(* c1-concurrency                                                      *)
(* ------------------------------------------------------------------ *)

let c1_positive () =
  check_rules "spawn" [ "c1-concurrency" ]
    (lint {|let f () = Domain.spawn (fun () -> ())|});
  check_rules "mutex" [ "c1-concurrency" ]
    (lint {|let f () = Mutex.create ()|});
  check_rules "atomic" [ "c1-concurrency" ]
    (lint {|let f () = Atomic.make 0|});
  (* active beyond lib/: the bench driver must use Parallel too *)
  check_rules "bench also banned" [ "c1-concurrency" ]
    (lint ~file:"bench/main.ml" {|let f () = Domain.spawn (fun () -> ())|})

let c1_negative () =
  check_rules "Parallel API is the fix" []
    (lint {|let f xs = Flexile_util.Parallel.map ~jobs:4 xs|});
  (* the pool implementation itself is allowlisted in Lint_config *)
  let r =
    lint ~file:"lib/util/parallel.ml" {|let f () = Mutex.create ()|}
  in
  check_rules "pool module exempt" [] r;
  Alcotest.(check int) "via config" 1 r.E.config_suppressed

(* ------------------------------------------------------------------ *)
(* c2-global-mut                                                       *)
(* ------------------------------------------------------------------ *)

let c2_positive () =
  check_rules "toplevel ref" [ "c2-global-mut" ] (lint {|let n = ref 0|});
  check_rules "toplevel table" [ "c2-global-mut" ]
    (lint {|let cache = Hashtbl.create 16|});
  check_rules "nested module counts" [ "c2-global-mut" ]
    (lint {|module M = struct let state = ref [] end|})

let c2_negative () =
  check_rules "local ref is fine" []
    (lint {|let f () = let r = ref 0 in incr r; !r|});
  check_rules "immutable toplevel is fine" [] (lint {|let n = 42|})

(* ------------------------------------------------------------------ *)
(* h1-io                                                               *)
(* ------------------------------------------------------------------ *)

let h1_positive () =
  check_rules "printf" [ "h1-io" ] (lint {|let f () = Printf.printf "hi"|});
  check_rules "print_endline" [ "h1-io" ]
    (lint {|let f () = print_endline "hi"|});
  check_rules "exit" [ "h1-io" ] (lint {|let f () = exit 1|});
  check_rules "Obj.magic" [ "h1-io" ] (lint {|let f x = Obj.magic x|})

let h1_negative () =
  check_rules "sprintf is fine" []
    (lint {|let f n = Printf.sprintf "%d" n|});
  check_rules "bin may print" []
    (lint ~file:"bin/flexile_cli.ml" {|let f () = print_endline "usage"|})

(* ------------------------------------------------------------------ *)
(* Suppression                                                         *)
(* ------------------------------------------------------------------ *)

let suppress_site () =
  let r = lint {|let f x = (x = 0.) [@lint.allow "d2-float-eq"]|} in
  check_rules "suppressed" [] r;
  Alcotest.(check int) "counted" 1 r.E.suppressed

let suppress_binding () =
  (* [@@...] after a toplevel let lands on the value binding *)
  let r = lint {|let f x = x = 0. [@@lint.allow "d2-float-eq"]|} in
  check_rules "binding-level suppression" [] r;
  Alcotest.(check int) "counted" 1 r.E.suppressed

let suppress_wrong_id () =
  let r = lint {|let f x = (x = 0.) [@lint.allow "d3-tbl-order"]|} in
  check_rules "wrong id does not silence" [ "d2-float-eq" ] r;
  Alcotest.(check int) "nothing suppressed" 0 r.E.suppressed

let suppress_multi () =
  let r =
    lint
      {|let f x = (Printf.printf "%f" x; x = 0.) [@lint.allow "d2-float-eq, h1-io"]|}
  in
  check_rules "comma list silences both" [] r;
  Alcotest.(check int) "both counted" 2 r.E.suppressed

(* ------------------------------------------------------------------ *)
(* Interfaces, parse errors, merge                                     *)
(* ------------------------------------------------------------------ *)

let intf_parses () =
  let r = lint ~file:"lib/fixture.mli" {|val f : float -> bool|} in
  check_rules "mli clean" [] r;
  Alcotest.(check int) "counted as a file" 1 r.E.files_checked

let parse_error_reported () =
  let r = lint {|let f = (|} in
  Alcotest.(check (list string)) "parse error" [ "parse-error" ] (rules_hit r)

let merge_reports () =
  let a = lint {|let f x = x = 0.|} and b = lint {|let n = ref 0|} in
  let m = E.merge [ a; b ] in
  Alcotest.(check int) "files" 2 m.E.files_checked;
  Alcotest.(check int) "findings" 2 (List.length m.E.findings)

(* ------------------------------------------------------------------ *)
(* JSON summary shape                                                  *)
(* ------------------------------------------------------------------ *)

let json_shape () =
  let r =
    E.merge [ lint {|let f x = x = 0.|}; lint {|let g () = Random.bool ()|} ]
  in
  let j =
    match Json.parse (E.json_summary r) with
    | Ok j -> j
    | Error e -> Alcotest.failf "summary does not parse: %s" e
  in
  let str_member k =
    match Option.bind (Json.member k j) Json.to_string with
    | Some s -> s
    | None -> Alcotest.failf "missing string member %s" k
  in
  let int_member k =
    match Option.bind (Json.member k j) Json.to_int with
    | Some n -> n
    | None -> Alcotest.failf "missing int member %s" k
  in
  Alcotest.(check string) "schema" "flexile-lint-summary" (str_member "schema");
  Alcotest.(check int) "version" 1 (int_member "version");
  Alcotest.(check int) "files" 2 (int_member "files_checked");
  Alcotest.(check int) "total" 2 (int_member "total_findings");
  (* per-rule counts cover every rule id *)
  let counts =
    match Option.bind (Json.member "counts" j) Json.to_obj with
    | Some o -> o
    | None -> Alcotest.fail "counts is not an object"
  in
  List.iter
    (fun (id, _) ->
      if not (List.mem_assoc id counts) then
        Alcotest.failf "counts missing rule %s" id)
    E.rules;
  Alcotest.(check (option (float 0.)))
    "d2 count" (Some 1.)
    (Option.bind (List.assoc_opt "d2-float-eq" counts) Json.to_float);
  (* findings carry file/line/rule/message *)
  let fs =
    match Option.bind (Json.member "findings" j) Json.to_list with
    | Some l -> l
    | None -> Alcotest.fail "findings is not a list"
  in
  Alcotest.(check int) "findings array" 2 (List.length fs);
  List.iter
    (fun f ->
      List.iter
        (fun k ->
          if Json.member k f = None then Alcotest.failf "finding missing %s" k)
        [ "file"; "line"; "col"; "rule"; "message" ])
    fs

let rules_documented () =
  Alcotest.(check int) "six rules" 6 (List.length E.rules);
  List.iter
    (fun id ->
      if not (List.mem_assoc id E.rules) then Alcotest.failf "missing %s" id)
    [
      "d1-nondet"; "d2-float-eq"; "d3-tbl-order"; "c1-concurrency";
      "c2-global-mut"; "h1-io";
    ]

let render () =
  let r = lint {|let f x = x = 0.|} in
  match r.E.findings with
  | [ f ] ->
      let s = E.render_finding f in
      Alcotest.(check bool) "file:line: [rule]" true
        (String.length s > 0
        && String.sub s 0 (String.length "lib/fixture.ml:1: [d2-float-eq]")
           = "lib/fixture.ml:1: [d2-float-eq]")
  | fs -> Alcotest.failf "expected 1 finding, got %d" (List.length fs)

let () =
  Alcotest.run "flexile_lint"
    [
      ( "d1-nondet",
        [
          Alcotest.test_case "positive" `Quick d1_positive;
          Alcotest.test_case "negative" `Quick d1_negative;
          Alcotest.test_case "config allowlist" `Quick d1_config_allow;
          Alcotest.test_case "zone gating" `Quick d1_zone_gate;
        ] );
      ( "d2-float-eq",
        [
          Alcotest.test_case "positive" `Quick d2_positive;
          Alcotest.test_case "negative" `Quick d2_negative;
        ] );
      ( "d3-tbl-order",
        [
          Alcotest.test_case "positive" `Quick d3_positive;
          Alcotest.test_case "negative" `Quick d3_negative;
        ] );
      ( "c1-concurrency",
        [
          Alcotest.test_case "positive" `Quick c1_positive;
          Alcotest.test_case "negative" `Quick c1_negative;
        ] );
      ( "c2-global-mut",
        [
          Alcotest.test_case "positive" `Quick c2_positive;
          Alcotest.test_case "negative" `Quick c2_negative;
        ] );
      ( "h1-io",
        [
          Alcotest.test_case "positive" `Quick h1_positive;
          Alcotest.test_case "negative" `Quick h1_negative;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "site attribute" `Quick suppress_site;
          Alcotest.test_case "binding attribute" `Quick suppress_binding;
          Alcotest.test_case "wrong id" `Quick suppress_wrong_id;
          Alcotest.test_case "multiple ids" `Quick suppress_multi;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "mli parses" `Quick intf_parses;
          Alcotest.test_case "parse error" `Quick parse_error_reported;
          Alcotest.test_case "merge" `Quick merge_reports;
          Alcotest.test_case "json summary" `Quick json_shape;
          Alcotest.test_case "rule table" `Quick rules_documented;
          Alcotest.test_case "rendering" `Quick render;
        ] );
    ]
