(* flexile-lint engine tests: one positive (flagged) and one negative
   (clean) fixture per rule id, suppression via [@lint.allow], config
   allowlisting, zone gating, and the JSON summary shape. *)

module E = Flexile_lint.Lint_engine
module Json = Flexile_util.Json

(* Lint an inline fixture as if it lived at [file]. *)
let lint ?(file = "lib/fixture.ml") src = E.check_source ~file src

let rules_hit r = List.map (fun f -> f.E.rule) r.E.findings

let check_rules name expected r =
  Alcotest.(check (list string)) name expected (rules_hit r)

(* ------------------------------------------------------------------ *)
(* d1-nondet                                                           *)
(* ------------------------------------------------------------------ *)

let d1_positive () =
  check_rules "Random" [ "d1-nondet" ] (lint {|let f () = Random.int 5|});
  check_rules "gettimeofday" [ "d1-nondet" ]
    (lint {|let f () = Unix.gettimeofday ()|});
  check_rules "Sys.time" [ "d1-nondet" ] (lint {|let f () = Sys.time ()|});
  check_rules "Hashtbl.hash" [ "d1-nondet" ]
    (lint {|let f x = Hashtbl.hash x|});
  check_rules "random table" [ "d1-nondet" ]
    (lint {|let f () = Hashtbl.create ~random:true 16|})

let d1_negative () =
  check_rules "Prng is fine" []
    (lint {|let f rng = Flexile_util.Prng.int rng 5|});
  check_rules "trace clock is fine" []
    (lint {|let f () = Flexile_util.Trace.now_s ()|});
  check_rules "~random:false is fine" []
    (lint {|let f () = Hashtbl.create ~random:false 16|})

let d1_config_allow () =
  (* the stale d1 entry for prng.ml was removed when staleness checking
     landed: a raw Random use there is a finding again... *)
  let r = lint ~file:"lib/util/prng.ml" {|let f () = Random.int 5|} in
  check_rules "prng.ml no longer allowlisted" [ "d1-nondet" ] r;
  (* ...while the live h1 entry for the figure renderer still counts *)
  let r =
    lint ~file:"lib/core/figures.ml" {|let f x = Printf.printf "%d" x|}
  in
  check_rules "figures.ml allowlisted for h1" [] r;
  Alcotest.(check int) "counted as config-allowed" 1 r.E.config_suppressed

let d1_zone_gate () =
  (* d1 only applies to lib/: the bench driver may read the wall clock *)
  check_rules "bench exempt" []
    (lint ~file:"bench/main.ml" {|let f () = Unix.gettimeofday ()|})

(* ------------------------------------------------------------------ *)
(* d2-float-eq                                                         *)
(* ------------------------------------------------------------------ *)

let d2_positive () =
  check_rules "float literal =" [ "d2-float-eq" ] (lint {|let f x = x = 0.|});
  check_rules "float arith <>" [ "d2-float-eq" ]
    (lint {|let f a b = a <> b *. 2.|});
  check_rules "compare on floats" [ "d2-float-eq" ]
    (lint {|let f a b = compare (a +. 1.) b|});
  check_rules "constraint operand" [ "d2-float-eq" ]
    (lint {|let f x y = (x : float) = y|});
  check_rules "infinity" [ "d2-float-eq" ] (lint {|let f x = x = infinity|})

let d2_negative () =
  check_rules "int = is fine" [] (lint {|let f x = x = 0|});
  check_rules "string = is fine" [] (lint {|let f s = s = "x"|});
  check_rules "Float_cmp is the fix" []
    (lint {|let f x = Flexile_util.Float_cmp.eq x 0.|});
  check_rules "Float.is_nan result is not a float" []
    (lint {|let f x y = Float.is_nan x = Float.is_nan y|})

(* ------------------------------------------------------------------ *)
(* d3-tbl-order                                                        *)
(* ------------------------------------------------------------------ *)

let d3_positive () =
  check_rules "fold" [ "d3-tbl-order" ]
    (lint {|let f h = Hashtbl.fold (fun k _ acc -> k :: acc) h []|});
  check_rules "iter" [ "d3-tbl-order" ]
    (lint {|let f g h = Hashtbl.iter g h|})

let d3_negative () =
  check_rules "sorted traversal is the fix" []
    (lint {|let f h = Flexile_util.Tbl.sorted_fold (fun k _ acc -> k :: acc) h []|});
  check_rules "find/replace are order-free" []
    (lint {|let f h = Hashtbl.replace h 1 2; Hashtbl.find_opt h 1|})

(* ------------------------------------------------------------------ *)
(* c1-concurrency                                                      *)
(* ------------------------------------------------------------------ *)

let c1_positive () =
  check_rules "spawn" [ "c1-concurrency" ]
    (lint {|let f () = Domain.spawn (fun () -> ())|});
  check_rules "mutex" [ "c1-concurrency" ]
    (lint {|let f () = Mutex.create ()|});
  check_rules "atomic" [ "c1-concurrency" ]
    (lint {|let f () = Atomic.make 0|});
  (* active beyond lib/: the bench driver must use Parallel too *)
  check_rules "bench also banned" [ "c1-concurrency" ]
    (lint ~file:"bench/main.ml" {|let f () = Domain.spawn (fun () -> ())|})

let c1_negative () =
  check_rules "Parallel API is the fix" []
    (lint {|let f xs = Flexile_util.Parallel.map ~jobs:4 xs|});
  (* the pool implementation itself is allowlisted in Lint_config *)
  let r =
    lint ~file:"lib/util/parallel.ml" {|let f () = Mutex.create ()|}
  in
  check_rules "pool module exempt" [] r;
  Alcotest.(check int) "via config" 1 r.E.config_suppressed

(* ------------------------------------------------------------------ *)
(* c2-global-mut                                                       *)
(* ------------------------------------------------------------------ *)

let c2_positive () =
  check_rules "toplevel ref" [ "c2-global-mut" ] (lint {|let n = ref 0|});
  check_rules "toplevel table" [ "c2-global-mut" ]
    (lint {|let cache = Hashtbl.create 16|});
  check_rules "nested module counts" [ "c2-global-mut" ]
    (lint {|module M = struct let state = ref [] end|})

let c2_negative () =
  check_rules "local ref is fine" []
    (lint {|let f () = let r = ref 0 in incr r; !r|});
  check_rules "immutable toplevel is fine" [] (lint {|let n = 42|})

(* ------------------------------------------------------------------ *)
(* h1-io                                                               *)
(* ------------------------------------------------------------------ *)

let h1_positive () =
  check_rules "printf" [ "h1-io" ] (lint {|let f () = Printf.printf "hi"|});
  check_rules "print_endline" [ "h1-io" ]
    (lint {|let f () = print_endline "hi"|});
  check_rules "exit" [ "h1-io" ] (lint {|let f () = exit 1|});
  check_rules "Obj.magic" [ "h1-io" ] (lint {|let f x = Obj.magic x|})

let h1_negative () =
  check_rules "sprintf is fine" []
    (lint {|let f n = Printf.sprintf "%d" n|});
  check_rules "bin may print" []
    (lint ~file:"bin/flexile_cli.ml" {|let f () = print_endline "usage"|})

(* ------------------------------------------------------------------ *)
(* Suppression                                                         *)
(* ------------------------------------------------------------------ *)

let suppress_site () =
  let r = lint {|let f x = (x = 0.) [@lint.allow "d2-float-eq"]|} in
  check_rules "suppressed" [] r;
  Alcotest.(check int) "counted" 1 r.E.suppressed

let suppress_binding () =
  (* [@@...] after a toplevel let lands on the value binding *)
  let r = lint {|let f x = x = 0. [@@lint.allow "d2-float-eq"]|} in
  check_rules "binding-level suppression" [] r;
  Alcotest.(check int) "counted" 1 r.E.suppressed

let suppress_wrong_id () =
  let r = lint {|let f x = (x = 0.) [@lint.allow "d3-tbl-order"]|} in
  check_rules "wrong id does not silence" [ "d2-float-eq" ] r;
  Alcotest.(check int) "nothing suppressed" 0 r.E.suppressed

let suppress_multi () =
  let r =
    lint
      {|let f x = (Printf.printf "%f" x; x = 0.) [@lint.allow "d2-float-eq, h1-io"]|}
  in
  check_rules "comma list silences both" [] r;
  Alcotest.(check int) "both counted" 2 r.E.suppressed

(* ------------------------------------------------------------------ *)
(* Interfaces, parse errors, merge                                     *)
(* ------------------------------------------------------------------ *)

let intf_parses () =
  let r = lint ~file:"lib/fixture.mli" {|val f : float -> bool|} in
  check_rules "mli clean" [] r;
  Alcotest.(check int) "counted as a file" 1 r.E.files_checked

let parse_error_reported () =
  let r = lint {|let f = (|} in
  Alcotest.(check (list string)) "parse error" [ "parse-error" ] (rules_hit r)

let merge_reports () =
  let a = lint {|let f x = x = 0.|} and b = lint {|let n = ref 0|} in
  let m = E.merge [ a; b ] in
  Alcotest.(check int) "files" 2 m.E.files_checked;
  Alcotest.(check int) "findings" 2 (List.length m.E.findings)

(* ------------------------------------------------------------------ *)
(* JSON summary shape                                                  *)
(* ------------------------------------------------------------------ *)

let json_shape () =
  let r =
    E.merge [ lint {|let f x = x = 0.|}; lint {|let g () = Random.bool ()|} ]
  in
  let j =
    match Json.parse (E.json_summary r) with
    | Ok j -> j
    | Error e -> Alcotest.failf "summary does not parse: %s" e
  in
  let str_member k =
    match Option.bind (Json.member k j) Json.to_string with
    | Some s -> s
    | None -> Alcotest.failf "missing string member %s" k
  in
  let int_member k =
    match Option.bind (Json.member k j) Json.to_int with
    | Some n -> n
    | None -> Alcotest.failf "missing int member %s" k
  in
  Alcotest.(check string) "schema" "flexile-lint-summary" (str_member "schema");
  Alcotest.(check int) "version" 2 (int_member "version");
  Alcotest.(check int) "files" 2 (int_member "files_checked");
  Alcotest.(check int) "total" 2 (int_member "total_findings");
  (* per-rule counts cover every rule id *)
  let counts =
    match Option.bind (Json.member "counts" j) Json.to_obj with
    | Some o -> o
    | None -> Alcotest.fail "counts is not an object"
  in
  List.iter
    (fun (id, _) ->
      if not (List.mem_assoc id counts) then
        Alcotest.failf "counts missing rule %s" id)
    E.rules;
  Alcotest.(check (option (float 0.)))
    "d2 count" (Some 1.)
    (Option.bind (List.assoc_opt "d2-float-eq" counts) Json.to_float);
  (* findings carry file/line/rule/message *)
  let fs =
    match Option.bind (Json.member "findings" j) Json.to_list with
    | Some l -> l
    | None -> Alcotest.fail "findings is not a list"
  in
  Alcotest.(check int) "findings array" 2 (List.length fs);
  List.iter
    (fun f ->
      List.iter
        (fun k ->
          if Json.member k f = None then Alcotest.failf "finding missing %s" k)
        [ "file"; "line"; "col"; "rule"; "message" ])
    fs

let rules_documented () =
  Alcotest.(check int) "ten rules" 10 (List.length E.rules);
  List.iter
    (fun id ->
      if not (List.mem_assoc id E.rules) then Alcotest.failf "missing %s" id)
    [
      "d1-nondet"; "d2-float-eq"; "d3-tbl-order"; "c1-concurrency";
      "c2-global-mut"; "h1-io"; "i1-trans-nondet"; "i2-shard-capture";
      "i3-noalloc"; "s1-stale-suppress";
    ]

let render () =
  let r = lint {|let f x = x = 0.|} in
  match r.E.findings with
  | [ f ] ->
      let s = E.render_finding f in
      Alcotest.(check bool) "file:line: [rule]" true
        (String.length s > 0
        && String.sub s 0 (String.length "lib/fixture.ml:1: [d2-float-eq]")
           = "lib/fixture.ml:1: [d2-float-eq]")
  | fs -> Alcotest.failf "expected 1 finding, got %d" (List.length fs)


(* ------------------------------------------------------------------ *)
(* s1 stale suppressions                                               *)
(* ------------------------------------------------------------------ *)

let stale_unknown_id () =
  (* a typo'd rule id is reported even by a syntactic-only run *)
  let r = lint {|let f () = () [@lint.allow "d1-nondte"]|} in
  let st = E.stale_suppressions ~deep:false r in
  Alcotest.(check int) "one stale" 1 (List.length st);
  match st with
  | [ s ] ->
      Alcotest.(check string) "id" "d1-nondte" s.E.st_id;
      Alcotest.(check string) "kind" "allow-attribute" s.E.st_kind
  | _ -> Alcotest.fail "unreachable"

let attr_stales ~deep r =
  List.filter
    (fun s -> s.E.st_kind = "allow-attribute")
    (E.stale_suppressions ~deep r)

let stale_unused_attr () =
  let r = lint {|let f () = () [@lint.allow "d1-nondet"]|} in
  (* syntactic-only runs do not adjudicate: the deep stage might still
     need the attribute as a taint-seed waiver *)
  Alcotest.(check int) "not judged shallow" 0
    (List.length (attr_stales ~deep:false r));
  (* a full run knows both stages ran, so unused means stale *)
  match attr_stales ~deep:true r with
  | [ st ] ->
      let f = E.finding_of_stale st in
      Alcotest.(check string) "as finding" "s1-stale-suppress" f.E.rule
  | st -> Alcotest.failf "expected 1 stale attr, got %d" (List.length st)

let stale_used_attr_clean () =
  let r = lint {|let f () = Random.int 5 [@lint.allow "d1-nondet"]|} in
  Alcotest.(check int) "suppressed" 1 r.E.suppressed;
  Alcotest.(check int) "not stale" 0 (List.length (attr_stales ~deep:true r))

let stale_zone_exempt () =
  (* the rule is inactive in test/, so the attribute cannot match and
     must not be called stale *)
  let r = lint ~file:"test/fixture.ml" {|let f () = () [@lint.allow "d1-nondet"]|} in
  Alcotest.(check int) "exempt" 0 (List.length (attr_stales ~deep:true r))

let stale_config_entries () =
  (* only the h1/figures pair earns its keep in this report; the other
     Lint_config pairs show up as stale *)
  let r =
    lint ~file:"lib/core/figures.ml" {|let f x = Printf.printf "%d" x|}
  in
  let st = E.stale_suppressions ~deep:true r in
  let stale_pairs =
    List.filter_map
      (fun s ->
        if s.E.st_kind = "config-entry" then Some (s.E.st_id, s.E.st_file)
        else None)
      st
  in
  Alcotest.(check bool) "used pair not stale" false
    (List.mem ("h1-io", "lib/core/figures.ml") stale_pairs);
  Alcotest.(check bool) "unused pair stale" true
    (List.mem ("c1-concurrency", "lib/util/parallel.ml") stale_pairs)

let () =
  Alcotest.run "flexile_lint"
    [
      ( "d1-nondet",
        [
          Alcotest.test_case "positive" `Quick d1_positive;
          Alcotest.test_case "negative" `Quick d1_negative;
          Alcotest.test_case "config allowlist" `Quick d1_config_allow;
          Alcotest.test_case "zone gating" `Quick d1_zone_gate;
        ] );
      ( "d2-float-eq",
        [
          Alcotest.test_case "positive" `Quick d2_positive;
          Alcotest.test_case "negative" `Quick d2_negative;
        ] );
      ( "d3-tbl-order",
        [
          Alcotest.test_case "positive" `Quick d3_positive;
          Alcotest.test_case "negative" `Quick d3_negative;
        ] );
      ( "c1-concurrency",
        [
          Alcotest.test_case "positive" `Quick c1_positive;
          Alcotest.test_case "negative" `Quick c1_negative;
        ] );
      ( "c2-global-mut",
        [
          Alcotest.test_case "positive" `Quick c2_positive;
          Alcotest.test_case "negative" `Quick c2_negative;
        ] );
      ( "h1-io",
        [
          Alcotest.test_case "positive" `Quick h1_positive;
          Alcotest.test_case "negative" `Quick h1_negative;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "site attribute" `Quick suppress_site;
          Alcotest.test_case "binding attribute" `Quick suppress_binding;
          Alcotest.test_case "wrong id" `Quick suppress_wrong_id;
          Alcotest.test_case "multiple ids" `Quick suppress_multi;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "mli parses" `Quick intf_parses;
          Alcotest.test_case "parse error" `Quick parse_error_reported;
          Alcotest.test_case "merge" `Quick merge_reports;
          Alcotest.test_case "json summary" `Quick json_shape;
          Alcotest.test_case "rule table" `Quick rules_documented;
          Alcotest.test_case "stale unknown id" `Quick stale_unknown_id;
          Alcotest.test_case "stale unused attr" `Quick stale_unused_attr;
          Alcotest.test_case "stale used attr clean" `Quick
            stale_used_attr_clean;
          Alcotest.test_case "stale zone exempt" `Quick stale_zone_exempt;
          Alcotest.test_case "stale config entries" `Quick
            stale_config_entries;
          Alcotest.test_case "rendering" `Quick render;
        ] );
    ]
