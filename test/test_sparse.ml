(* Differential tests of the sparse revised simplex core.

   The sparse LU path (Simplex) is checked against the frozen dense
   reference implementation (Simplex_dense) on random LPs and on
   min-MLU models over catalog topologies: statuses must be identical
   and objectives must agree to 1e-9 relative.  The eta-update path is
   checked against the refactorize-every-pivot path (FLEXILE_ETA_LIMIT=1),
   and the Sparse kernel itself is checked against a dense Gaussian
   elimination. *)

open Flexile_lp
module Sp = Sparse
module Prng = Flexile_util.Prng
module Graph = Flexile_net.Graph
module Tunnels = Flexile_net.Tunnels

(* ---- Svec: sparse accumulator semantics ---- *)

let test_svec () =
  let v = Sp.Svec.create 10 in
  Sp.Svec.add v 3 1.5;
  Sp.Svec.add v 7 2.;
  Sp.Svec.add v 3 0.5;
  Alcotest.(check int) "nnz counts patterns, not adds" 2 (Sp.Svec.nnz v);
  Alcotest.(check (float 0.)) "accumulated" 2. (Sp.Svec.get v 3);
  Alcotest.(check (float 0.)) "untouched reads zero" 0. (Sp.Svec.get v 5);
  Alcotest.(check bool) "mem on pattern" true (Sp.Svec.mem v 7);
  Alcotest.(check bool) "mem off pattern" false (Sp.Svec.mem v 5);
  let seen = ref [] in
  Sp.Svec.iter v (fun i x -> seen := (i, x) :: !seen);
  Alcotest.(check (list (pair int (float 0.))))
    "insertion order" [ (3, 2.); (7, 2.) ] (List.rev !seen);
  Sp.Svec.clear v;
  Alcotest.(check int) "clear resets" 0 (Sp.Svec.nnz v);
  Alcotest.(check (float 0.)) "cleared entry" 0. (Sp.Svec.get v 3)

(* ---- Basis kernel vs dense Gaussian elimination ---- *)

let dense_solve a b =
  let m = Array.length b in
  let a = Array.map Array.copy a and b = Array.copy b in
  for c = 0 to m - 1 do
    let p = ref c in
    for r = c + 1 to m - 1 do
      if Float.abs a.(r).(c) > Float.abs a.(!p).(c) then p := r
    done;
    let tmp = a.(c) in
    a.(c) <- a.(!p);
    a.(!p) <- tmp;
    let tb = b.(c) in
    b.(c) <- b.(!p);
    b.(!p) <- tb;
    let piv = a.(c).(c) in
    for r = 0 to m - 1 do
      if r <> c && Float.abs a.(r).(c) > 0. then begin
        let f = a.(r).(c) /. piv in
        for k = c to m - 1 do
          a.(r).(k) <- a.(r).(k) -. (f *. a.(c).(k))
        done;
        b.(r) <- b.(r) -. (f *. b.(c))
      end
    done
  done;
  Array.init m (fun i -> b.(i) /. a.(i).(i))

(* random sparse columns: a strong diagonal plus a few off-diagonal
   entries, so the matrix is invertible and the dense reference is
   numerically trustworthy *)
let random_cols prng m =
  Array.init m (fun j ->
      let l = ref [ (j, 1. +. Prng.uniform prng 0. 3.) ] in
      for _ = 1 to 3 do
        let i = Prng.int prng m in
        if i <> j then l := (i, Prng.uniform prng (-2.) 2.) :: !l
      done;
      !l)

let cols_to_dense m cols =
  let d = Array.init m (fun _ -> Array.make m 0.) in
  Array.iteri
    (fun j l -> List.iter (fun (i, v) -> d.(i).(j) <- d.(i).(j) +. v) l)
    cols;
  d

let test_kernel_vs_dense () =
  let prng = Prng.of_string "sparse-kernel-vs-dense" in
  for trial = 1 to 40 do
    let m = 5 + Prng.int prng 50 in
    let cols = random_cols prng m in
    let dense = cols_to_dense m cols in
    let basis = Sp.Basis.create m in
    let patched =
      Sp.Basis.factor basis ~col:(fun pos f ->
          List.iter (fun (i, v) -> f i v) cols.(pos))
    in
    Alcotest.(check int)
      (Printf.sprintf "trial %d: invertible matrix needs no patch" trial)
      0 (List.length patched);
    let b = Array.init m (fun _ -> Prng.uniform prng (-5.) 5.) in
    let x_ref = dense_solve dense b in
    let x = Array.copy b in
    Sp.Basis.ftran basis x;
    for i = 0 to m - 1 do
      if Float.abs (x.(i) -. x_ref.(i)) > 1e-7 then
        Alcotest.failf "trial %d (m=%d): ftran row %d: %.12g vs %.12g" trial m
          i x.(i) x_ref.(i)
    done;
    let c = Array.init m (fun _ -> Prng.uniform prng (-5.) 5.) in
    let dense_t = Array.init m (fun i -> Array.init m (fun j -> dense.(j).(i))) in
    let y_ref = dense_solve dense_t c in
    let y = Array.copy c in
    Sp.Basis.btran basis y;
    for i = 0 to m - 1 do
      if Float.abs (y.(i) -. y_ref.(i)) > 1e-7 then
        Alcotest.failf "trial %d (m=%d): btran row %d: %.12g vs %.12g" trial m
          i y.(i) y_ref.(i)
    done
  done

(* singular input: [factor] must patch the dependent positions with
   unit columns of unpivoted rows, and the resulting factorization must
   solve exactly the patched matrix *)
let test_singular_factor_patches () =
  let prng = Prng.of_string "sparse-singular-patch" in
  for trial = 1 to 25 do
    let m = 6 + Prng.int prng 30 in
    let cols = random_cols prng m in
    (* make 1-3 columns exact duplicates of other columns: rank drops *)
    let ndup = 1 + Prng.int prng 3 in
    let dups = ref [] in
    for _ = 1 to ndup do
      let src = Prng.int prng m and dst = Prng.int prng m in
      if src <> dst && not (List.mem_assoc dst !dups) then begin
        cols.(dst) <- cols.(src);
        dups := (dst, src) :: !dups
      end
    done;
    let basis = Sp.Basis.create m in
    let patched =
      Sp.Basis.factor basis ~col:(fun pos f ->
          List.iter (fun (i, v) -> f i v) cols.(pos))
    in
    if !dups <> [] then
      Alcotest.(check bool)
        (Printf.sprintf "trial %d: rank-deficient input is patched" trial)
        true
        (List.length patched >= 1);
    (* apply the patch contract: the factored matrix has the column at
       each patched position replaced by the unit column of its row *)
    let cols' = Array.copy cols in
    List.iter (fun (pos, row) -> cols'.(pos) <- [ (row, 1.) ]) patched;
    let dense = cols_to_dense m cols' in
    let b = Array.init m (fun _ -> Prng.uniform prng (-5.) 5.) in
    let x_ref = dense_solve dense b in
    let x = Array.copy b in
    Sp.Basis.ftran basis x;
    for i = 0 to m - 1 do
      if Float.abs (x.(i) -. x_ref.(i)) > 1e-6 then
        Alcotest.failf "trial %d (m=%d): patched ftran row %d: %.12g vs %.12g"
          trial m i x.(i) x_ref.(i)
    done
  done

(* eta update equivalence: B' = B with one replaced column, applied via
   [update], must solve like a fresh factorization of B' *)
let test_eta_vs_fresh_factor () =
  let prng = Prng.of_string "sparse-eta-vs-fresh" in
  for trial = 1 to 25 do
    let m = 5 + Prng.int prng 40 in
    let cols = random_cols prng m in
    let basis = Sp.Basis.create m in
    let patched =
      Sp.Basis.factor basis ~col:(fun pos f ->
          List.iter (fun (i, v) -> f i v) cols.(pos))
    in
    Alcotest.(check int) "no patch" 0 (List.length patched);
    (* replace column r by a fresh random column with w_r bounded away
       from zero, through the eta file *)
    let r = Prng.int prng m in
    let newcol = (r, 2. +. Prng.uniform prng 0. 2.) :: List.tl cols.(r) in
    let w = Array.make m 0. in
    List.iter (fun (i, v) -> w.(i) <- w.(i) +. v) newcol;
    Sp.Basis.ftran basis w;
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: eta pivot accepted" trial)
      true
      (Sp.Basis.update basis ~r ~w);
    let cols' = Array.copy cols in
    cols'.(r) <- newcol;
    let fresh = Sp.Basis.create m in
    let patched' =
      Sp.Basis.factor fresh ~col:(fun pos f ->
          List.iter (fun (i, v) -> f i v) cols'.(pos))
    in
    Alcotest.(check int) "no patch after replacement" 0 (List.length patched');
    let b = Array.init m (fun _ -> Prng.uniform prng (-5.) 5.) in
    let x_eta = Array.copy b and x_fresh = Array.copy b in
    Sp.Basis.ftran basis x_eta;
    Sp.Basis.ftran fresh x_fresh;
    for i = 0 to m - 1 do
      if Float.abs (x_eta.(i) -. x_fresh.(i)) > 1e-7 then
        Alcotest.failf "trial %d (m=%d): eta ftran row %d: %.12g vs %.12g"
          trial m i x_eta.(i) x_fresh.(i)
    done;
    let c = Array.init m (fun _ -> Prng.uniform prng (-5.) 5.) in
    let y_eta = Array.copy c and y_fresh = Array.copy c in
    Sp.Basis.btran basis y_eta;
    Sp.Basis.btran fresh y_fresh;
    for i = 0 to m - 1 do
      if Float.abs (y_eta.(i) -. y_fresh.(i)) > 1e-7 then
        Alcotest.failf "trial %d (m=%d): eta btran row %d: %.12g vs %.12g"
          trial m i y_eta.(i) y_fresh.(i)
    done
  done

(* ---- sparse vs dense simplex: random LPs ---- *)

let dense_status = function
  | Simplex_dense.Optimal -> "optimal"
  | Simplex_dense.Infeasible -> "infeasible"
  | Simplex_dense.Unbounded -> "unbounded"
  | Simplex_dense.Iteration_limit -> "iter-limit"

let sparse_status = function
  | Simplex.Optimal -> "optimal"
  | Simplex.Infeasible -> "infeasible"
  | Simplex.Unbounded -> "unbounded"
  | Simplex.Iteration_limit -> "iter-limit"

let check_differential name m =
  let sp = Simplex.solve m in
  let dn = Simplex_dense.solve m in
  Alcotest.(check string)
    (name ^ ": status")
    (dense_status dn.Simplex_dense.status)
    (sparse_status sp.Simplex.status);
  if sp.Simplex.status = Simplex.Optimal then begin
    let tol = 1e-9 *. (1. +. Float.abs dn.Simplex_dense.obj) in
    if Float.abs (sp.Simplex.obj -. dn.Simplex_dense.obj) > tol then
      Alcotest.failf "%s: objective %.12g (sparse) vs %.12g (dense)" name
        sp.Simplex.obj dn.Simplex_dense.obj;
    if Lp_model.max_violation m sp.Simplex.x > 1e-7 then
      Alcotest.failf "%s: sparse solution infeasible (viol %.3g)" name
        (Lp_model.max_violation m sp.Simplex.x)
  end

let random_lp prng ~nv ~nr =
  let m = Lp_model.create () in
  let vars =
    Array.init nv (fun _ ->
        Lp_model.add_var m ~ub:4. ~obj:(Prng.uniform prng (-2.) 2.) ())
  in
  for _ = 1 to nr do
    (* sparse rows: ~40% fill *)
    let coeffs =
      List.filter_map
        (fun v ->
          if Prng.bool prng 0.4 then
            Some (v, float_of_int (Prng.int prng 7 - 3))
          else None)
        (Array.to_list vars)
    in
    if coeffs <> [] then begin
      let sense =
        match Prng.int prng 3 with
        | 0 -> Lp_model.Ge
        | 1 -> Lp_model.Eq
        | _ -> Lp_model.Le
      in
      ignore (Lp_model.add_row m sense (Prng.uniform prng (-2.) 6.) coeffs)
    end
  done;
  m

let test_random_differential () =
  for trial = 1 to 120 do
    let prng = Prng.of_string (Printf.sprintf "sparse-diff-%d" trial) in
    let nv = 2 + Prng.int prng 14 and nr = 1 + Prng.int prng 12 in
    let m = random_lp prng ~nv ~nr in
    check_differential (Printf.sprintf "random %d (%dx%d)" trial nv nr) m
  done

(* ---- sparse vs dense simplex: min-MLU over catalog topologies ---- *)

let mlu_model name npairs =
  let g = Flexile_net.Catalog.by_name name in
  let seed = Prng.of_string ("sparse-diff-" ^ name) in
  let pairs = Graph.pairs g in
  Prng.shuffle seed pairs;
  let pairs = Array.sub pairs 0 (min npairs (Array.length pairs)) in
  Array.sort compare pairs;
  let demands = Flexile_traffic.Gravity.matrix ~seed ~graph:g ~pairs in
  let model = Lp_model.create ~name:("mlu-" ^ name) () in
  let mu = Lp_model.add_var model ~obj:1. () in
  let per_edge = Array.make (Graph.nedges g) [] in
  Array.iteri
    (fun i pair ->
      if demands.(i) > 0. then begin
        let ts = Array.of_list (Tunnels.select_single_class g ~pair ~count:3) in
        let vars =
          Array.map
            (fun (t : Tunnels.t) ->
              let v = Lp_model.add_var model () in
              Array.iter
                (fun e -> per_edge.(e) <- (v, 1.) :: per_edge.(e))
                t.Tunnels.path;
              v)
            ts
        in
        ignore
          (Lp_model.add_row model Lp_model.Eq demands.(i)
             (Array.to_list (Array.map (fun v -> (v, 1.)) vars)))
      end)
    pairs;
  Array.iteri
    (fun e coeffs ->
      if coeffs <> [] then
        let cap = g.Graph.edges.(e).Graph.capacity in
        ignore (Lp_model.add_row model Lp_model.Le 0. ((mu, -.cap) :: coeffs)))
    per_edge;
  model

let test_topology_differential () =
  List.iter
    (fun (name, npairs) ->
      check_differential ("mlu " ^ name) (mlu_model name npairs))
    [ ("Sprint", 30); ("IBM", 40); ("GEANT", 40); ("Tinet", 60) ]

(* ---- eta updates vs refactorize-every-pivot, through the solver ----

   The same warm RHS walk, once with the default eta limit and once
   with FLEXILE_ETA_LIMIT=1 (every pivot triggers a fresh LU).  Both
   runs must report identical statuses and objectives to 1e-9: the
   product-form updates may not change results, only speed. *)

let walk_objs m nsteps =
  let st = Simplex.make m in
  let prng = Prng.of_string "sparse-eta-walk" in
  let first = Simplex.solve_warm st in
  let objs = ref [ (sparse_status first.Simplex.status, first.Simplex.obj) ] in
  for _ = 1 to nsteps do
    let rhs =
      Array.init (Lp_model.nrows m) (fun _ -> Prng.uniform prng (-2.) 8.)
    in
    let sol = Simplex.resolve_rhs st rhs in
    objs := (sparse_status sol.Simplex.status, sol.Simplex.obj) :: !objs
  done;
  List.rev !objs

let test_eta_vs_refactor_walk () =
  let model () =
    let prng = Prng.of_string "sparse-eta-model" in
    random_lp prng ~nv:12 ~nr:10
  in
  let with_eta = walk_objs (model ()) 8 in
  Unix.putenv "FLEXILE_ETA_LIMIT" "1";
  let without_eta =
    Fun.protect
      ~finally:(fun () -> Unix.putenv "FLEXILE_ETA_LIMIT" "")
      (fun () -> walk_objs (model ()) 8)
  in
  List.iteri
    (fun i ((s1, o1), (s2, o2)) ->
      Alcotest.(check string) (Printf.sprintf "step %d status" i) s2 s1;
      if s1 = "optimal" && Float.abs (o1 -. o2) > 1e-9 *. (1. +. Float.abs o2)
      then
        Alcotest.failf "step %d: obj %.12g (eta) vs %.12g (refactor)" i o1 o2)
    (List.combine with_eta without_eta)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "flexile_sparse"
    [
      ("svec", [ quick "accumulator semantics" test_svec ]);
      ( "kernel",
        [
          quick "factor/ftran/btran vs dense elimination" test_kernel_vs_dense;
          quick "singular factor patches dependent columns"
            test_singular_factor_patches;
          quick "eta update vs fresh factorization" test_eta_vs_fresh_factor;
        ] );
      ( "differential",
        [
          quick "random LPs: sparse = dense" test_random_differential;
          quick "catalog min-MLU: sparse = dense" test_topology_differential;
        ] );
      ( "eta-file",
        [ quick "warm walk: eta = refactor-every-pivot" test_eta_vs_refactor_walk ]
      );
    ]
