(* Deep lint stage over the seeded-violation fixtures in test/lintfx:
   every rule family must fire with the right call-chain witness, and
   the negative twins must stay clean. *)

module L = Flexile_lint.Lint_engine
module D = Flexile_lint.Deep_engine

let has_suffix s suf =
  let ls = String.length s and lu = String.length suf in
  ls >= lu && String.sub s (ls - lu) lu = suf

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let rec collect acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left (fun acc e -> collect acc (Filename.concat path e)) acc
  else if has_suffix path ".cmt" then path :: acc
  else acc

(* Tests run inside _build/default/test; the fixture cmts sit in the
   lintfx library's .objs directory next to us.  Probe a few layouts so
   a dune-version bump does not silently empty the suite. *)
let fixture_cmts () =
  let candidates =
    [
      "lintfx/.flexile_lintfx.objs/byte";
      "test/lintfx/.flexile_lintfx.objs/byte";
      "_build/default/test/lintfx/.flexile_lintfx.objs/byte";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some dir -> List.sort compare (collect [] dir)
  | None -> Alcotest.fail "fixture cmts not found; was flexile_lintfx built?"

let report =
  lazy (D.analyze ~roots:[ "Flexile_lintfx.Fx_entry" ] (fixture_cmts ()))

let findings rule =
  List.filter (fun f -> f.L.rule = rule) (Lazy.force report).L.findings

let chain_fns f = List.map (fun c -> c.L.c_fn) f.L.chain

let find_with_chain rule fns =
  List.find_opt (fun f -> chain_fns f = fns) (findings rule)

(* ---- i1 ---- *)

let i1_two_hop_chain () =
  let expected =
    [
      "Flexile_lintfx.Fx_entry.drive";
      "Flexile_lintfx.Fx_mid.pick";
      "Flexile_lintfx.Fx_leaf.noise";
    ]
  in
  match find_with_chain "i1-trans-nondet" expected with
  | None ->
      Alcotest.failf "no i1 finding with chain %s"
        (String.concat " -> " expected)
  | Some f ->
      Alcotest.(check bool) "points at fx_leaf.ml" true
        (has_suffix f.L.file "lintfx/fx_leaf.ml");
      Alcotest.(check bool) "names the RNG" true
        (contains f.L.message "Random")

let i1_one_hop_tbl () =
  let expected =
    [ "Flexile_lintfx.Fx_entry.scan_shared"; "Flexile_lintfx.Fx_mid.tbl_scan" ]
  in
  match find_with_chain "i1-trans-nondet" expected with
  | None ->
      Alcotest.failf "no i1 finding with chain %s"
        (String.concat " -> " expected)
  | Some f ->
      Alcotest.(check bool) "points at fx_mid.ml" true
        (has_suffix f.L.file "lintfx/fx_mid.ml")

let i1_exact_set () =
  (* exactly the two seeded chains: the deterministic path
     (drive/steady/calm/pure) and the unreachable clock stay clean *)
  Alcotest.(check int) "i1 count" 2 (List.length (findings "i1-trans-nondet"));
  List.iter
    (fun f ->
      List.iter
        (fun fn ->
          Alcotest.(check bool) ("chain avoids " ^ fn) false
            (List.exists
               (fun c ->
                 c.L.c_fn = "Flexile_lintfx.Fx_leaf." ^ fn
                 || c.L.c_fn = "Flexile_lintfx.Fx_mid." ^ fn
                 || c.L.c_fn = "Flexile_lintfx.Fx_entry." ^ fn)
               f.L.chain))
        [ "clock"; "steady"; "calm"; "pure" ])
    (findings "i1-trans-nondet")

(* ---- i2 ---- *)

let caller_of f =
  match f.L.chain with c :: _ -> c.L.c_fn | [] -> "?"

let i2_positives () =
  let fs = findings "i2-shard-capture" in
  Alcotest.(check int) "i2 count" 3 (List.length fs);
  List.iter
    (fun caller ->
      Alcotest.(check bool) ("flags " ^ caller) true
        (List.exists
           (fun f -> caller_of f = "Flexile_lintfx.Fx_shard." ^ caller)
           fs))
    [ "total_races"; "tally_races"; "per_slot_writes" ];
  (* each witness names the captured state that is written *)
  List.iter
    (fun (caller, var) ->
      let f =
        List.find
          (fun f -> caller_of f = "Flexile_lintfx.Fx_shard." ^ caller)
          fs
      in
      Alcotest.(check bool)
        (caller ^ " names '" ^ var ^ "'")
        true
        (contains f.L.message ("'" ^ var ^ "'")))
    [ ("total_races", "total"); ("tally_races", "seen");
      ("per_slot_writes", "out") ]

let i2_negatives () =
  List.iter
    (fun caller ->
      Alcotest.(check bool) (caller ^ " stays clean") false
        (List.exists
           (fun f -> caller_of f = "Flexile_lintfx.Fx_shard." ^ caller)
           (findings "i2-shard-capture")))
    [ "readonly_ok"; "dls_ok"; "suppressed_races" ]

let i2_suppression_used () =
  let r = Lazy.force report in
  Alcotest.(check bool) "suppressed > 0" true (r.L.suppressed > 0);
  Alcotest.(check bool) "allow site recorded used" true
    (List.exists
       (fun s ->
         s.L.a_id = "i2-shard-capture" && has_suffix s.L.a_file "fx_shard.ml")
       r.L.used_allows)

(* ---- i3 ---- *)

let i3_direct_tuple () =
  match
    find_with_chain "i3-noalloc" [ "Flexile_lintfx.Fx_kernel.bad_pair" ]
  with
  | None -> Alcotest.fail "no i3 finding inside bad_pair"
  | Some f ->
      Alcotest.(check bool) "message names the tuple" true
        (contains f.L.message "tuple")

let i3_transitive_chain () =
  let expected =
    [ "Flexile_lintfx.Fx_kernel.bad_transitive"; "Flexile_lintfx.Fx_kernel.leaky" ]
  in
  match find_with_chain "i3-noalloc" expected with
  | None ->
      Alcotest.failf "no i3 finding with chain %s"
        (String.concat " -> " expected)
  | Some f ->
      Alcotest.(check bool) "blames Array.make" true
        (contains f.L.message "Array.make")

let i3_closure () =
  Alcotest.(check bool) "bad_closure flagged" true
    (List.exists
       (fun f ->
         chain_fns f = [ "Flexile_lintfx.Fx_kernel.bad_closure" ]
         && f.L.rule = "i3-noalloc")
       (findings "i3-noalloc"))

let i3_negatives () =
  List.iter
    (fun fn ->
      Alcotest.(check bool) (fn ^ " stays clean") false
        (List.exists
           (fun f ->
             List.mem ("Flexile_lintfx.Fx_kernel." ^ fn) (chain_fns f))
           (findings "i3-noalloc")))
    [ "saxpy"; "ok_growth"; "ok_local_ref" ]

let i3_alloc_ok_used () =
  let r = Lazy.force report in
  Alcotest.(check bool) "grow's alloc_ok recorded used" true
    (List.exists
       (fun s -> s.L.a_id = "alloc-ok" && has_suffix s.L.a_file "fx_kernel.ml")
       r.L.used_allows)

(* ---- plumbing ---- *)

let total_findings () =
  Alcotest.(check int) "exactly the seeded findings" 8
    (List.length (Lazy.force report).L.findings)

let cmt_error () =
  let r = D.analyze [ "no-such-file.cmt" ] in
  Alcotest.(check bool) "cmt-error finding" true
    (List.exists (fun f -> f.L.rule = "cmt-error") r.L.findings)

let () =
  Alcotest.run "lint-deep"
    [
      ( "i1",
        [
          Alcotest.test_case "two-hop chain" `Quick i1_two_hop_chain;
          Alcotest.test_case "tbl chain" `Quick i1_one_hop_tbl;
          Alcotest.test_case "exact set" `Quick i1_exact_set;
        ] );
      ( "i2",
        [
          Alcotest.test_case "positives" `Quick i2_positives;
          Alcotest.test_case "negatives" `Quick i2_negatives;
          Alcotest.test_case "suppression used" `Quick i2_suppression_used;
        ] );
      ( "i3",
        [
          Alcotest.test_case "direct tuple" `Quick i3_direct_tuple;
          Alcotest.test_case "transitive chain" `Quick i3_transitive_chain;
          Alcotest.test_case "closure" `Quick i3_closure;
          Alcotest.test_case "negatives" `Quick i3_negatives;
          Alcotest.test_case "alloc_ok used" `Quick i3_alloc_ok_used;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "total findings" `Quick total_findings;
          Alcotest.test_case "cmt error" `Quick cmt_error;
        ] );
    ]
