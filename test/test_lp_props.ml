(* Property tests of the simplex duality certificates and of the warm
   restart path, plus exactness checks of the trace counters on the
   warm/cold decision (the observability layer must agree with what the
   solver actually did). *)

open Flexile_lp
module Prng = Flexile_util.Prng
module Trace = Flexile_util.Trace

let solve_status = function
  | Simplex.Optimal -> "optimal"
  | Simplex.Infeasible -> "infeasible"
  | Simplex.Unbounded -> "unbounded"
  | Simplex.Iteration_limit -> "iter-limit"

(* Random bounded LP: every variable lives in [0, 4], so the problem is
   never unbounded and weak duality questions are always well-posed. *)
let random_lp prng ~nv ~nr =
  let m = Lp_model.create () in
  let vars =
    Array.init nv (fun _ ->
        Lp_model.add_var m ~ub:4. ~obj:(Prng.uniform prng (-2.) 2.) ())
  in
  for _ = 1 to nr do
    let coeffs =
      Array.to_list
        (Array.map (fun v -> (v, float_of_int (Prng.int prng 7 - 3))) vars)
    in
    let sense = if Prng.bool prng 0.7 then Lp_model.Le else Lp_model.Ge in
    ignore (Lp_model.add_row m sense (Prng.uniform prng (-2.) 6.) coeffs)
  done;
  m

let cold_with_rhs m rhs =
  Array.iteri (fun r v -> Lp_model.set_rhs m r v) rhs;
  Simplex.solve m

(* ---- weak duality of Simplex.dual_bound ---- *)

let qcheck_weak_duality =
  let gen = QCheck.Gen.(pair (int_range 2 7) (int_range 1 6)) in
  QCheck.Test.make ~name:"dual_bound: exact at original rhs, weak elsewhere"
    ~count:150 (QCheck.make gen) (fun (nv, nr) ->
      let prng = Prng.of_string (Printf.sprintf "qc-wd-%d-%d" nv nr) in
      let m = random_lp prng ~nv ~nr in
      let rhs0 = Array.init (Lp_model.nrows m) (Lp_model.rhs m) in
      let sol = Simplex.solve m in
      match sol.Simplex.status with
      | Simplex.Optimal ->
          (* strong duality: the parametric bound reproduces the
             optimum at the rhs it was computed for *)
          Float.abs (Simplex.dual_bound sol ~rhs:rhs0 -. sol.Simplex.obj)
          <= 1e-6 *. (1. +. Float.abs sol.Simplex.obj)
          && (* weak duality on random perturbations: never above the
                cold re-solve's optimum (vacuous when perturbed rhs is
                infeasible, i.e. optimum = +inf) *)
          List.for_all
            (fun _ ->
              let rhs =
                Array.map (fun v -> v +. Prng.uniform prng (-2.) 2.) rhs0
              in
              let bound = Simplex.dual_bound sol ~rhs in
              let cold = cold_with_rhs m rhs in
              match cold.Simplex.status with
              | Simplex.Optimal ->
                  bound
                  <= cold.Simplex.obj
                     +. (1e-6 *. (1. +. Float.abs cold.Simplex.obj))
              | Simplex.Infeasible -> true
              | _ -> false)
            [ (); (); () ]
      | Simplex.Infeasible -> true
      | _ -> false)

(* ---- differential: warm rhs walk vs cold re-solves ---- *)

let qcheck_warm_walk_differential =
  (* a walk of large rhs jumps: many steps flip row activity enough to
     invalidate the basis, exercising both the dual-simplex success
     path and the cold-fallback path; every step must agree with a
     cold solve on status, objective (1e-6 relative) and feasibility *)
  let gen = QCheck.Gen.(pair (int_range 2 7) (int_range 1 6)) in
  QCheck.Test.make ~name:"warm rhs walk matches cold solves to 1e-6"
    ~count:100 (QCheck.make gen) (fun (nv, nr) ->
      let prng = Prng.of_string (Printf.sprintf "qc-walk-%d-%d" nv nr) in
      let m = random_lp prng ~nv ~nr in
      let st = Simplex.make m in
      let _ = Simplex.solve_warm st in
      let ok = ref true in
      for _ = 1 to 6 do
        if !ok then begin
          let rhs =
            Array.init (Lp_model.nrows m) (fun _ -> Prng.uniform prng (-3.) 8.)
          in
          let warm = Simplex.resolve_rhs st rhs in
          let cold = cold_with_rhs m rhs in
          ok :=
            (match (warm.Simplex.status, cold.Simplex.status) with
            | Simplex.Optimal, Simplex.Optimal ->
                Float.abs (warm.Simplex.obj -. cold.Simplex.obj)
                <= 1e-6 *. (1. +. Float.abs cold.Simplex.obj)
                && Lp_model.max_violation m warm.Simplex.x <= 1e-6
            | a, b -> a = b)
        end
      done;
      !ok)

(* The same walk under FLEXILE_ETA_LIMIT=2: every second pivot rebuilds
   the LU factorization, so the walk repeatedly crosses the
   refactorization path (including mid-dual-simplex rebuilds) instead
   of riding the eta file.  Results must still match cold solves. *)
let qcheck_warm_walk_tight_refactor =
  let gen = QCheck.Gen.(pair (int_range 2 7) (int_range 1 6)) in
  QCheck.Test.make ~name:"warm rhs walk under eta limit 2 matches cold"
    ~count:60 (QCheck.make gen) (fun (nv, nr) ->
      Unix.putenv "FLEXILE_ETA_LIMIT" "2";
      Fun.protect
        ~finally:(fun () -> Unix.putenv "FLEXILE_ETA_LIMIT" "")
        (fun () ->
          let prng = Prng.of_string (Printf.sprintf "qc-refac-%d-%d" nv nr) in
          let m = random_lp prng ~nv ~nr in
          let st = Simplex.make m in
          let _ = Simplex.solve_warm st in
          let ok = ref true in
          for _ = 1 to 6 do
            if !ok then begin
              let rhs =
                Array.init (Lp_model.nrows m) (fun _ ->
                    Prng.uniform prng (-3.) 8.)
              in
              let warm = Simplex.resolve_rhs st rhs in
              let cold = cold_with_rhs m rhs in
              ok :=
                (match (warm.Simplex.status, cold.Simplex.status) with
                | Simplex.Optimal, Simplex.Optimal ->
                    Float.abs (warm.Simplex.obj -. cold.Simplex.obj)
                    <= 1e-6 *. (1. +. Float.abs cold.Simplex.obj)
                    && Lp_model.max_violation m warm.Simplex.x <= 1e-6
                | a, b -> a = b)
            end
          done;
          !ok))

(* ---- degenerate-basis recovery: duplicated constraint rows ----

   Exact duplicates of binding rows create massively degenerate
   (primal-tied, dual-dependent) bases — the regime where the sparse
   LU core relies on its patch/repair path and on Bland's rule.  The
   warm walk moves the duplicated RHS values together (keeping the
   model consistent) and apart (making it infeasible); every step must
   agree with a cold solve. *)
let test_duplicate_rows_recovery () =
  let m = Lp_model.create () in
  let x = Lp_model.add_var m ~ub:10. ~obj:(-1.) () in
  let y = Lp_model.add_var m ~ub:10. ~obj:(-2.) () in
  let z = Lp_model.add_var m ~ub:10. ~obj:(-1.) () in
  (* the same facet three times plus a coupling row *)
  let r1 = Lp_model.add_row m Lp_model.Le 8. [ (x, 1.); (y, 1.) ] in
  let r2 = Lp_model.add_row m Lp_model.Le 8. [ (x, 1.); (y, 1.) ] in
  let r3 = Lp_model.add_row m Lp_model.Le 8. [ (x, 1.); (y, 1.) ] in
  let r4 = Lp_model.add_row m Lp_model.Eq 5. [ (y, 1.); (z, 1.) ] in
  ignore (r1, r2, r3, r4);
  let st = Simplex.make m in
  let first = Simplex.solve_warm st in
  Alcotest.(check string)
    "duplicate rows: cold solve" "optimal"
    (solve_status first.Simplex.status);
  let steps =
    [
      ([| 6.; 6.; 6.; 5. |], "optimal");
      (* the duplicates disagree: rows force x+y <= 2 effectively *)
      ([| 2.; 6.; 6.; 5. |], "optimal");
      ([| 2.; 2.; 2.; 14. |], "infeasible");
      ([| 8.; 8.; 8.; 5. |], "optimal");
    ]
  in
  List.iteri
    (fun i (rhs, expected) ->
      let warm = Simplex.resolve_rhs st rhs in
      let cold = cold_with_rhs m rhs in
      Alcotest.(check string)
        (Printf.sprintf "step %d cold status" i)
        expected
        (solve_status cold.Simplex.status);
      Alcotest.(check string)
        (Printf.sprintf "step %d warm = cold status" i)
        (solve_status cold.Simplex.status)
        (solve_status warm.Simplex.status);
      if cold.Simplex.status = Simplex.Optimal then begin
        if
          Float.abs (warm.Simplex.obj -. cold.Simplex.obj)
          > 1e-6 *. (1. +. Float.abs cold.Simplex.obj)
        then
          Alcotest.failf "step %d: warm obj %.12g vs cold %.12g" i
            warm.Simplex.obj cold.Simplex.obj;
        if Lp_model.max_violation m warm.Simplex.x > 1e-6 then
          Alcotest.failf "step %d: warm solution infeasible" i
      end)
    steps

(* ---- the warm/cold decision is visible in the trace counters ---- *)

let expect_status name expected sol =
  Alcotest.(check string) name expected (solve_status sol.Simplex.status)

let test_warm_fallback_counters () =
  let was = Trace.enabled () in
  Trace.set_enabled true;
  Fun.protect ~finally:(fun () -> Trace.set_enabled was) @@ fun () ->
  let v name = Trace.value_by_name name in
  (* min x, x in [0,5], x >= rhs: rhs 7 makes the warm basis prove
     infeasibility (confirmed cold), rhs 3 then re-solves cold because
     the state is no longer optimal — both legs of the fallback path *)
  let m = Lp_model.create () in
  let x = Lp_model.add_var m ~ub:5. ~obj:1. () in
  let _ = Lp_model.add_row m Lp_model.Ge 2. [ (x, 1.) ] in
  let st = Simplex.make m in
  let c0 = v "simplex.cold_solves" in
  let sol1 = Simplex.solve_warm st in
  expect_status "first solve" "optimal" sol1;
  Alcotest.(check int) "first solve is cold" (c0 + 1) (v "simplex.cold_solves");
  let a0 = v "simplex.warm_attempts" and c1 = v "simplex.cold_solves" in
  let sol2 = Simplex.resolve_rhs st [| 7. |] in
  expect_status "rhs 7" "infeasible" sol2;
  Alcotest.(check int) "warm attempt counted" (a0 + 1)
    (v "simplex.warm_attempts");
  Alcotest.(check int) "infeasibility confirmed by a cold solve" (c1 + 1)
    (v "simplex.cold_solves");
  let c2 = v "simplex.cold_solves" in
  let sol3 = Simplex.resolve_rhs st [| 3. |] in
  expect_status "rhs 3" "optimal" sol3;
  if Float.abs (sol3.Simplex.obj -. 3.) > 1e-9 then
    Alcotest.failf "rhs 3: expected obj 3, got %.9g" sol3.Simplex.obj;
  Alcotest.(check int) "invalidated basis falls back to cold" (c2 + 1)
    (v "simplex.cold_solves")

let test_warm_hit_counted () =
  let was = Trace.enabled () in
  Trace.set_enabled true;
  Fun.protect ~finally:(fun () -> Trace.set_enabled was) @@ fun () ->
  let v name = Trace.value_by_name name in
  let m = Lp_model.create () in
  let x = Lp_model.add_var m ~obj:(-2.) () in
  let y = Lp_model.add_var m ~obj:(-3.) () in
  let _ = Lp_model.add_row m Lp_model.Le 10. [ (x, 1.); (y, 2.) ] in
  let _ = Lp_model.add_row m Lp_model.Le 15. [ (x, 3.); (y, 1.) ] in
  let st = Simplex.make m in
  let sol1 = Simplex.solve_warm st in
  expect_status "initial" "optimal" sol1;
  let h0 = v "simplex.warm_hits" in
  let sol2 = Simplex.resolve_rhs st [| 8.; 12. |] in
  expect_status "warm resolve" "optimal" sol2;
  Alcotest.(check int) "warm hit counted" (h0 + 1) (v "simplex.warm_hits")

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "flexile_lp_props"
    [
      ( "duality",
        List.map QCheck_alcotest.to_alcotest [ qcheck_weak_duality ] );
      ( "warm-vs-cold",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_warm_walk_differential; qcheck_warm_walk_tight_refactor ]
        @ [ quick "duplicate rows recovery" test_duplicate_rows_recovery ] );
      ( "trace-counters",
        [
          quick "fallback legs counted" test_warm_fallback_counters;
          quick "warm hit counted" test_warm_hit_counted;
        ] );
    ]
