(* Tests of the solver health observatory (Flexile_lp.Health /
   Doctor): pathological-numerics fixtures must trip the condition and
   stall detectors, a healthy workload must stay silent, dumps must
   round-trip byte-exactly, and doctor reports must be deterministic. *)

open Flexile_lp
module Prng = Flexile_util.Prng
module Trace = Flexile_util.Trace

let prod_thresholds () = Health.default_thresholds ()

(* Random bounded LP (never unbounded): the healthy workload. *)
let random_lp prng ~nv ~nr =
  let m = Lp_model.create () in
  let vars =
    Array.init nv (fun _ ->
        Lp_model.add_var m ~ub:4. ~obj:(Prng.uniform prng (-2.) 2.) ())
  in
  for _ = 1 to nr do
    let coeffs =
      Array.to_list
        (Array.map (fun v -> (v, float_of_int (Prng.int prng 7 - 3))) vars)
    in
    let sense = if Prng.bool prng 0.7 then Lp_model.Le else Lp_model.Ge in
    ignore (Lp_model.add_row m sense (Prng.uniform prng (-2.) 6.) coeffs)
  done;
  m

(* ---- FLEXILE_ETA_LIMIT=1 walk: a sample per pivot epoch ---- *)

(* With the eta file capped at one update, every pivot forces a
   refactorization, so the capture timeline densely samples the solve;
   on a healthy LP every sample must be clean. *)
let test_eta_limit_walk () =
  let prng = Prng.of_string "health-eta-walk" in
  for trial = 1 to 10 do
    let m = random_lp prng ~nv:12 ~nr:10 in
    let sol, h =
      Simplex.solve_doctor ~eta_limit:1 ~thresholds:(prod_thresholds ()) m
    in
    let samples = Health.samples h in
    (match sol.Simplex.status with
    | Simplex.Optimal when sol.Simplex.iterations > 2 ->
        Alcotest.(check bool)
          (Printf.sprintf "trial %d: one sample per refactorization" trial)
          true
          (List.length samples >= sol.Simplex.iterations / 2)
    | _ -> ());
    List.iter
      (fun (s : Health.sample) ->
        if s.Health.s_primal_res > 1e-6 || s.Health.s_dual_res > 1e-6 then
          Alcotest.failf "trial %d: residual drift (%.3g, %.3g)" trial
            s.Health.s_primal_res s.Health.s_dual_res;
        (* Hager estimates a lower bound on ||B^-1||_1, so the product
           can dip a hair under the true kappa >= 1 *)
        if not (Float.is_finite s.Health.s_cond1) || s.Health.s_cond1 <= 0.
        then
          Alcotest.failf "trial %d: bad condition estimate %.3g" trial
            s.Health.s_cond1;
        Alcotest.(check (list string))
          (Printf.sprintf "trial %d: no trips" trial)
          [] s.Health.s_tripped)
      samples;
    Alcotest.(check int)
      (Printf.sprintf "trial %d: no stalls" trial)
      0
      (List.length (Health.stalls h))
  done

(* ---- production sampling stride ---- *)

(* capture mode samples every opportunity; production passes a
   per-domain stride of 16 (exactly one hit per 16 consecutive
   opportunities, wherever in the cycle the counter currently is) *)
let test_sampling_stride () =
  let cap = Health.make ~capture:true 4 in
  for _ = 1 to 40 do
    Alcotest.(check bool) "capture always due" true (Health.sample_due cap)
  done;
  let prod = Health.make 4 in
  let hits = ref 0 in
  for _ = 1 to 16 do
    if Health.sample_due prod then incr hits
  done;
  Alcotest.(check int) "one hit per 16 production opportunities" 1 !hits;
  let hits2 = ref 0 in
  for _ = 1 to 64 do
    if Health.sample_due prod then incr hits2
  done;
  Alcotest.(check int) "four hits per 64" 4 !hits2

(* ---- the crafted near-singular fixture fires every detector ---- *)

let test_near_singular_fixture () =
  match Doctor.run_fixture "near-singular" with
  | Error e -> Alcotest.failf "fixture: %s" e
  | Ok r ->
      Alcotest.(check bool) "diagnosed unhealthy" false r.Doctor.r_healthy;
      Alcotest.(check string)
        "solves to the interior optimum" "optimal"
        (match r.Doctor.r_solution.Simplex.status with
        | Simplex.Optimal -> "optimal"
        | _ -> "other");
      Alcotest.(check bool)
        "objective -0.5 (x1 basic at 0.5)" true
        (Float.abs (r.Doctor.r_solution.Simplex.obj +. 0.5) < 1e-6);
      let samples = Health.samples r.Doctor.r_health in
      Alcotest.(check bool)
        "condition estimate trips the 1e10 threshold" true
        (List.exists
           (fun (s : Health.sample) -> List.mem "cond" s.Health.s_tripped)
           samples);
      Alcotest.(check bool)
        "condition estimate sees ~4e10" true
        (List.exists
           (fun (s : Health.sample) -> s.Health.s_cond1 > 1e10)
           samples);
      Alcotest.(check bool)
        "near-singular row detected" true
        (List.exists
           (fun (s : Health.sample) ->
             List.exists (fun (row, _) -> row = 1) s.Health.s_near_singular)
           samples);
      Alcotest.(check bool)
        "stall detector fires" true
        (Health.stalls r.Doctor.r_health <> []);
      (* the rendered diagnosis names the phase and the rows *)
      let mem needle =
        let h = r.Doctor.r_report in
        let n = String.length needle and l = String.length h in
        let rec go i =
          i + n <= l && (String.equal (String.sub h i n) needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool)
        "report names the stalling phase" true
        (mem "\"stalling_phase\":\"phase2\"");
      Alcotest.(check bool) "report names the row" true (mem "\"ns_r1\"");
      Alcotest.(check bool)
        "report lists the cond trip" true
        (mem "\"thresholds_tripped\":[\"cond\"]")

(* the degenerate chain stalls under the doctor's lowered limit but is
   numerically sound: no trips, no near-singular rows *)
let test_degenerate_fixture () =
  match Doctor.run_fixture "degenerate" with
  | Error e -> Alcotest.failf "fixture: %s" e
  | Ok r ->
      Alcotest.(check bool)
        "stalls" true
        (Health.stalls r.Doctor.r_health <> []);
      List.iter
        (fun (s : Health.sample) ->
          Alcotest.(check (list string)) "no trips" [] s.Health.s_tripped;
          Alcotest.(check int) "no near-singular rows" 0
            (List.length s.Health.s_near_singular))
        (Health.samples r.Doctor.r_health)

(* ---- healthy suite stays silent under production thresholds ---- *)

let test_healthy_suite_silent () =
  let prng = Prng.of_string "health-silent" in
  for trial = 1 to 25 do
    let m = random_lp prng ~nv:(4 + Prng.int prng 10) ~nr:(3 + Prng.int prng 8) in
    let _, h = Simplex.solve_doctor ~thresholds:(prod_thresholds ()) m in
    List.iter
      (fun (s : Health.sample) ->
        if s.Health.s_tripped <> [] then
          Alcotest.failf "trial %d: unexpected trip %s" trial
            (String.concat "," s.Health.s_tripped))
      (Health.samples h);
    Alcotest.(check int)
      (Printf.sprintf "trial %d: no stalls" trial)
      0
      (List.length (Health.stalls h))
  done

(* ---- dump round trip: bit-exact floats, byte-stable serialization ---- *)

let test_hex_float_round_trip () =
  let bits = Int64.bits_of_float in
  List.iter
    (fun v ->
      match Health.float_of_hex (Health.hex_of_float v) with
      | None -> Alcotest.failf "no parse for %h" v
      | Some v' ->
          if Float.is_nan v then
            Alcotest.(check bool) "nan round trip" true (Float.is_nan v')
          else
            Alcotest.(check int64)
              (Printf.sprintf "bits of %h" v)
              (bits v) (bits v'))
    [
      0.; -0.; 1.; -1.5; 0.1; 1. /. 3.; 1e-300; -1.7e308; 4.5e-320;
      (* subnormal *) infinity; neg_infinity; Float.nan; 1. +. 1e-10;
    ]

let test_dump_round_trip () =
  let model = Doctor.near_singular_fixture () in
  let n = 2 + Lp_model.nrows model + Lp_model.nvars model in
  let dump =
    {
      Health.d_reasons = [ "cond"; "lu_growth" ];
      d_phase = 2;
      d_iteration = 17;
      d_eta_limit = Some 3;
      d_model = model;
      d_basis = Array.init (Lp_model.nrows model) (fun i -> i);
      d_vstat = Array.make n 0;
    }
  in
  let s = Health.dump_to_string dump in
  let path = Filename.temp_file "flexile-health" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc s;
      close_out oc;
      match Health.read_dump path with
      | Error e -> Alcotest.failf "read_dump: %s" e
      | Ok d ->
          Alcotest.(check (list string))
            "reasons" dump.Health.d_reasons d.Health.d_reasons;
          Alcotest.(check int) "phase" 2 d.Health.d_phase;
          Alcotest.(check int) "iteration" 17 d.Health.d_iteration;
          Alcotest.(check (option int)) "eta limit" (Some 3) d.Health.d_eta_limit;
          Alcotest.(check (array int))
            "basis" dump.Health.d_basis d.Health.d_basis;
          Alcotest.(check (array int))
            "vstat" dump.Health.d_vstat d.Health.d_vstat;
          (* the model re-serializes to the identical bytes: every
             float survives through the hex literals *)
          Alcotest.(check string)
            "model json byte-identical"
            (Health.model_to_json_string model)
            (Health.model_to_json_string d.Health.d_model);
          Alcotest.(check string)
            "dump re-serializes byte-identically" s (Health.dump_to_string d))

(* ---- threshold trip writes a dump; diagnose-basis measures it ---- *)

let with_dump_dir f =
  let dir = Filename.temp_file "flexile-dumps" "" in
  Sys.remove dir;
  Unix.putenv "FLEXILE_HEALTH_DUMP" dir;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "FLEXILE_HEALTH_DUMP" "";
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_auto_dump_and_patch_path () =
  with_dump_dir @@ fun dir ->
  (match Doctor.run_fixture "near-singular" with
  | Error e -> Alcotest.failf "fixture: %s" e
  | Ok _ -> ());
  let path =
    Filename.concat dir "health-dump-near-singular-fixture.json"
  in
  Alcotest.(check bool) "trip wrote the snapshot" true (Sys.file_exists path);
  match Health.read_dump path with
  | Error e -> Alcotest.failf "read_dump: %s" e
  | Ok d ->
      Alcotest.(check bool)
        "dump records the cond trip" true
        (List.mem "cond" d.Health.d_reasons);
      (* measuring the captured basis in isolation sees the same
         near-singular row, and nothing is patched *)
      let h =
        Simplex.diagnose_basis ?eta_limit:d.Health.d_eta_limit
          ~phase:d.Health.d_phase ~iteration:d.Health.d_iteration
          d.Health.d_model ~bas:d.Health.d_basis ~vstat:d.Health.d_vstat
      in
      (match Health.samples h with
      | [ s ] ->
          Alcotest.(check (list (pair int int))) "no patches" []
            s.Health.s_patched;
          Alcotest.(check bool)
            "near-singular row in dumped basis" true
            (List.exists (fun (row, _) -> row = 1) s.Health.s_near_singular)
      | l -> Alcotest.failf "expected one sample, got %d" (List.length l));
      (* corrupt the basis with a duplicate column: the factorization
         must take the singular-patch path and the sample must say so *)
      let bas = Array.copy d.Health.d_basis in
      bas.(0) <- bas.(1);
      let h2 =
        Simplex.diagnose_basis d.Health.d_model ~bas ~vstat:d.Health.d_vstat
      in
      (match Health.samples h2 with
      | [ s ] ->
          Alcotest.(check bool)
            "duplicate column is patched" true
            (s.Health.s_patched <> [])
      | l -> Alcotest.failf "expected one sample, got %d" (List.length l))

(* ---- doctor reports are deterministic ---- *)

let test_doctor_deterministic () =
  let report name =
    match Doctor.run_fixture name with
    | Error e -> Alcotest.failf "fixture: %s" e
    | Ok r -> r.Doctor.r_report
  in
  List.iter
    (fun name ->
      Alcotest.(check string)
        (name ^ " report byte-stable")
        (report name) (report name))
    Doctor.fixture_names;
  with_dump_dir @@ fun dir ->
  ignore (report "near-singular");
  let path = Filename.concat dir "health-dump-near-singular-fixture.json" in
  let from_dump () =
    match Doctor.run_dump path with
    | Error e -> Alcotest.failf "run_dump: %s" e
    | Ok r -> r.Doctor.r_report
  in
  Alcotest.(check string) "dump replay byte-stable" (from_dump ()) (from_dump ())

(* ---- solver_health projection ---- *)

let test_solver_health_json () =
  Trace.set_enabled true;
  Trace.reset ();
  (* generate some health traffic *)
  (match Doctor.run_fixture "near-singular" with
  | Error e -> Alcotest.failf "fixture: %s" e
  | Ok _ -> ());
  let s = Flexile_util.Trace_export.solver_health_json () in
  match Flexile_util.Json.parse s with
  | Error e -> Alcotest.failf "solver_health not JSON: %s" e
  | Ok j ->
      let module Json = Flexile_util.Json in
      Alcotest.(check (option string))
        "schema" (Some "flexile-solver-health")
        (Option.bind (Json.member "schema" j) Json.to_string);
      let counters = Json.member "counters" j in
      let counter name =
        Option.bind counters (fun c ->
            Option.bind (Json.member name c) Json.to_int)
      in
      (match counter "health.samples" with
      | Some n when n > 0 -> ()
      | v ->
          Alcotest.failf "health.samples missing or zero (%s)"
            (match v with Some n -> string_of_int n | None -> "absent"));
      (match counter "health.threshold_trips" with
      | Some n when n > 0 -> ()
      | _ -> Alcotest.failf "health.threshold_trips missing or zero");
      match
        Option.bind (Json.member "histograms" j) (Json.member "health.cond1_log10")
      with
      | Some _ -> ()
      | None -> Alcotest.fail "health.cond1_log10 histogram absent"

let () =
  Alcotest.run "flexile_health"
    [
      ( "observatory",
        [
          Alcotest.test_case "eta-limit-1 walk samples every epoch" `Quick
            test_eta_limit_walk;
          Alcotest.test_case "production sampling stride" `Quick
            test_sampling_stride;
          Alcotest.test_case "near-singular fixture fires cond+stall+rows"
            `Quick test_near_singular_fixture;
          Alcotest.test_case "degenerate fixture stalls without trips" `Quick
            test_degenerate_fixture;
          Alcotest.test_case "healthy suite is silent" `Quick
            test_healthy_suite_silent;
        ] );
      ( "dumps",
        [
          Alcotest.test_case "hex float round trip" `Quick
            test_hex_float_round_trip;
          Alcotest.test_case "dump serialization round trip" `Quick
            test_dump_round_trip;
          Alcotest.test_case "trip auto-dumps; patch path reported" `Quick
            test_auto_dump_and_patch_path;
        ] );
      ( "doctor",
        [
          Alcotest.test_case "reports deterministic" `Quick
            test_doctor_deterministic;
          Alcotest.test_case "solver_health projection" `Quick
            test_solver_health_json;
        ] );
    ]
