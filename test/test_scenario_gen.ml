(* Tests for the scenario-generator subsystem: per-family property
   tests (mass accounting, capacity bounds, SRLG atomicity,
   maintenance determinism), statistical tests against analytic
   probabilities (3-sigma binomial bounds on a large seeded sample),
   differential tests (singleton-SRLG vs the legacy independent model,
   bit-for-bit; mixed-regime sweeps at --jobs 1 vs 4), and the
   regression pinning the multi-state mass-accounting fix. *)

module FM = Flexile_failure.Failure_model
module SG = Flexile_failure.Scenario_gen
module Prng = Flexile_util.Prng
module Fc = Flexile_util.Float_cmp
module Instance = Flexile_te.Instance

let quick name f = Alcotest.test_case name `Quick f

let ibm () = Flexile_net.Catalog.by_name "IBM"

(* exhaustive enumeration: no cutoff, cap far above any test model *)
let exhaustive gen = SG.enumerate ~cutoff:0. ~max_scenarios:100_000 gen

(* ---------- property tests ---------- *)

(* Probability mass of the full enumeration sums to 1 for every
   generator family and for their composition. *)
let test_mass_sums_to_one () =
  let graph = Flexile_net.Catalog.triangle () in
  let seed name = Prng.of_string ("sg-mass-" ^ name) in
  let gens =
    [
      ("independent", SG.independent_links ~graph ~seed:(seed "ind") ());
      ( "srlg",
        SG.srlg ~nedges:3
          ~groups:[| [| 0; 1 |]; [| 2 |] |]
          ~seed:(seed "srlg") () );
      ("partial", SG.partial ~graph ~seed:(seed "partial") ());
      ( "maintenance",
        SG.maintenance ~nedges:3 ~horizon:100.
          [
            { SG.wname = "a"; wedges = [| 0 |]; wstart = 0.; wduration = 5. };
            { SG.wname = "b"; wedges = [| 1; 2 |]; wstart = 10.; wduration = 3. };
          ] );
      ("diurnal", SG.diurnal ~nedges:3 ());
    ]
  in
  List.iter
    (fun (name, gen) ->
      let set = SG.enumerate ~cutoff:0. ~max_scenarios:100_000 ~npairs:2 gen in
      let mass = FM.coverage set.SG.scenarios in
      if not (Fc.eq mass 1.) then
        Alcotest.failf "%s: total mass %.12f, expected 1" name mass)
    gens;
  (* composition of all capacity families *)
  let composed =
    SG.compose (List.map snd (List.filteri (fun i _ -> i < 4) gens))
  in
  let set = exhaustive composed in
  let mass = FM.coverage set.SG.scenarios in
  if not (Fc.eq mass 1.) then
    Alcotest.failf "composed: total mass %.12f, expected 1" mass

(* A truncated enumeration plus its unenumerated tail is a probability
   distribution: coverage never exceeds 1 and decreases monotonically
   with a tighter cap. *)
let test_truncated_coverage () =
  let graph = ibm () in
  let gen =
    SG.compose
      [
        SG.partial ~graph ~seed:(Prng.of_string "sg-cov") ();
        SG.srlg
          ~nedges:(Flexile_net.Graph.nedges graph)
          ~groups:(Flexile_net.Catalog.srlgs graph)
          ~seed:(Prng.of_string "sg-cov-srlg") ();
      ]
  in
  let c40 =
    FM.coverage (SG.enumerate ~max_scenarios:40 gen).SG.scenarios
  in
  let c150 =
    FM.coverage (SG.enumerate ~max_scenarios:150 gen).SG.scenarios
  in
  if c40 > 1. +. 1e-9 || c150 > 1. +. 1e-9 then
    Alcotest.fail "coverage exceeds 1";
  if c40 > c150 +. 1e-12 then
    Alcotest.fail "coverage not monotone in the enumeration cap"

(* Every enumerated cap_frac is in [0, 1], and for the partial family
   it is a member of the configured level set (or nominal 1). *)
let test_partial_fraction_bounds () =
  let graph = ibm () in
  let levels = [| (0., 0.4); (0.25, 0.4); (0.6, 0.2) |] in
  let gen = SG.partial ~levels ~graph ~seed:(Prng.of_string "sg-frac") () in
  let set = SG.enumerate ~max_scenarios:200 gen in
  let allowed = 1. :: Array.to_list (Array.map fst levels) in
  Array.iter
    (fun (s : FM.scenario) ->
      Array.iter
        (fun f ->
          if f < 0. || f > 1. then Alcotest.failf "cap_frac %f out of [0,1]" f;
          if not (List.exists (fun a -> Fc.eq ~eps:1e-12 a f) allowed) then
            Alcotest.failf "cap_frac %f not in the configured level set" f)
        s.FM.cap_frac;
      (* alive mask must be derived from the fraction *)
      Array.iteri
        (fun e alive ->
          if alive <> (s.FM.cap_frac.(e) > 0.) then
            Alcotest.fail "edge_alive inconsistent with cap_frac")
        s.FM.edge_alive)
    set.SG.scenarios

(* Effective capacities stay within [0, nominal] through the Instance
   layer. *)
let test_effective_capacity_bounds () =
  let options =
    {
      Flexile_core.Builder.default_options with
      Flexile_core.Builder.scenario_mix = "srlg,partial";
      max_scenarios = 40;
      max_pairs = 30;
    }
  in
  let inst = Flexile_core.Builder.of_name ~options "Sprint" in
  let g = inst.Instance.graph in
  for sid = 0 to Instance.nscenarios inst - 1 do
    Array.iteri
      (fun e (edge : Flexile_net.Graph.edge) ->
        let c = Instance.edge_capacity inst ~sid e in
        if c < 0. || c > edge.Flexile_net.Graph.capacity +. 1e-12 then
          Alcotest.failf "effective capacity %f outside [0, %f]" c
            edge.Flexile_net.Graph.capacity)
      g.Flexile_net.Graph.edges
  done

(* SRLG members fail atomically: in every enumerated scenario of a
   pure SRLG generator, each group is either fully dead or fully
   alive. *)
let test_srlg_atomicity () =
  let graph = ibm () in
  let groups = Flexile_net.Catalog.srlgs graph in
  let gen =
    SG.srlg
      ~nedges:(Flexile_net.Graph.nedges graph)
      ~groups ~seed:(Prng.of_string "sg-atomic") ()
  in
  let set = SG.enumerate ~max_scenarios:300 gen in
  Array.iter
    (fun (s : FM.scenario) ->
      Array.iter
        (fun group ->
          let dead =
            Array.fold_left
              (fun acc e -> acc + (if s.FM.edge_alive.(e) then 0 else 1))
              0 group
          in
          if dead <> 0 && dead <> Array.length group then
            Alcotest.failf "scenario %d: group partially failed (%d/%d)"
              s.FM.sid dead (Array.length group))
        groups)
    set.SG.scenarios;
  (* every edge is covered by exactly one group *)
  let ne = Flexile_net.Graph.nedges graph in
  let count = Array.make ne 0 in
  Array.iter (Array.iter (fun e -> count.(e) <- count.(e) + 1)) groups;
  Array.iteri
    (fun e c ->
      if c <> 1 then Alcotest.failf "edge %d in %d groups, expected 1" e c)
    count

(* Maintenance: wall-clock-free determinism, exclusive windows, and
   schedule validation. *)
let test_maintenance () =
  let windows =
    [
      { SG.wname = "w0"; wedges = [| 0 |]; wstart = 0.; wduration = 10. };
      { SG.wname = "w1"; wedges = [| 1; 2 |]; wstart = 20.; wduration = 5. };
    ]
  in
  let gen () = SG.maintenance ~nedges:4 ~horizon:168. windows in
  let s1 = (exhaustive (gen ())).SG.scenarios in
  let s2 = (exhaustive (gen ())).SG.scenarios in
  (* same schedule -> identical sets, bit for bit, on repeated calls
     (nothing reads a clock or a global RNG) *)
  Alcotest.(check int) "same count" (Array.length s1) (Array.length s2);
  Array.iteri
    (fun i (a : FM.scenario) ->
      let b = s2.(i) in
      if not (Fc.exactly_equal a.FM.prob b.FM.prob) then
        Alcotest.fail "maintenance probabilities differ across calls";
      if a.FM.edge_alive <> b.FM.edge_alive then
        Alcotest.fail "maintenance alive masks differ across calls")
    s1;
  (* nominal + one scenario per window: windows are mutually exclusive
     states of one unit, never jointly active *)
  Alcotest.(check int) "nominal + 2 windows" 3 (Array.length s1);
  let w0 = 10. /. 168. and w1 = 5. /. 168. in
  Alcotest.(check (float 1e-12)) "nominal mass" (1. -. w0 -. w1) s1.(0).FM.prob;
  (* each window removes exactly its own edges *)
  Array.iter
    (fun (s : FM.scenario) ->
      if Array.length s.FM.failed_units > 0 then begin
        let dead =
          Array.to_list
            (Array.of_seq
               (Seq.filter
                  (fun e -> not s.FM.edge_alive.(e))
                  (Seq.init 4 Fun.id)))
        in
        let expected =
          if Fc.eq ~eps:1e-12 s.FM.prob w0 then [ 0 ] else [ 1; 2 ]
        in
        Alcotest.(check (list int)) "window edge set" expected dead
      end)
    s1;
  (* overlapping windows are rejected *)
  (try
     ignore
       (SG.maintenance ~nedges:4 ~horizon:168.
          [
            { SG.wname = "a"; wedges = [| 0 |]; wstart = 0.; wduration = 10. };
            { SG.wname = "b"; wedges = [| 1 |]; wstart = 5.; wduration = 10. };
          ]);
     Alcotest.fail "overlap not rejected"
   with Invalid_argument _ -> ());
  (* windows outside the horizon are rejected *)
  try
    ignore
      (SG.maintenance ~nedges:4 ~horizon:24.
         [ { SG.wname = "a"; wedges = [| 0 |]; wstart = 20.; wduration = 10. } ]);
    Alcotest.fail "out-of-horizon window not rejected"
  with Invalid_argument _ -> ()

(* Same seed -> identical generator output; different seed -> the
   Weibull draws differ. *)
let test_seed_determinism () =
  let graph = ibm () in
  let build s = SG.partial ~graph ~seed:(Prng.of_string s) () in
  let a = (SG.enumerate ~max_scenarios:80 (build "seed-A")).SG.scenarios in
  let b = (SG.enumerate ~max_scenarios:80 (build "seed-A")).SG.scenarios in
  let c = (SG.enumerate ~max_scenarios:80 (build "seed-B")).SG.scenarios in
  Array.iteri
    (fun i (s : FM.scenario) ->
      if not (Fc.exactly_equal s.FM.prob b.(i).FM.prob) then
        Alcotest.fail "same seed produced different scenario probabilities")
    a;
  let differs = ref (Array.length a <> Array.length c) in
  if not !differs then
    Array.iteri
      (fun i (x : FM.scenario) ->
        if not (Fc.exactly_equal x.FM.prob c.(i).FM.prob) then differs := true)
      a;
  if not !differs then Alcotest.fail "different seeds produced identical sets"

(* Demand effects: per-scenario pair factors fold multiplicatively
   over the failed units' states. *)
let test_demand_factors () =
  let drift =
    SG.demand_states ~nedges:2 ~name:"drift"
      [| (0.1, SG.Per_pair [| 2.; 0.5 |]) |]
  in
  let diurnal = SG.diurnal ~nedges:2 ~levels:[| (1.5, 0.2) |] () in
  let set = exhaustive (SG.compose [ drift; diurnal ]) in
  (match set.SG.pair_factors with
  | None -> Alcotest.fail "expected pair factors"
  | Some pf ->
      Alcotest.(check int) "4 scenarios" 4 (Array.length pf);
      Array.iteri
        (fun sid (s : FM.scenario) ->
          let expected = Array.make 2 1. in
          Array.iter
            (fun u ->
              if u = 0 then begin
                expected.(0) <- expected.(0) *. 2.;
                expected.(1) <- expected.(1) *. 0.5
              end
              else begin
                expected.(0) <- expected.(0) *. 1.5;
                expected.(1) <- expected.(1) *. 1.5
              end)
            s.FM.failed_units;
          Array.iteri
            (fun p f ->
              if not (Fc.eq ~eps:1e-12 f expected.(p)) then
                Alcotest.failf "scenario %d pair %d factor %f /= %f" sid p f
                  expected.(p))
            pf.(sid))
        set.SG.scenarios);
  (* a capacity-only generator attaches no factors *)
  let cap_only =
    exhaustive (SG.srlg ~nedges:2 ~groups:[| [| 0 |] |] ~seed:(Prng.of_string "x") ())
  in
  if cap_only.SG.pair_factors <> None then
    Alcotest.fail "capacity-only generator produced demand factors"

(* ---------- statistical tests ---------- *)

(* Empirical state frequencies over a large seeded sample match the
   analytic probabilities within a 3-sigma binomial bound.  The seed
   is fixed: this either always passes or always fails. *)
let test_sampling_statistics () =
  let n = 20000 in
  let graph = ibm () in
  let groups = Flexile_net.Catalog.srlgs graph in
  let gen =
    SG.compose
      [
        SG.srlg
          ~nedges:(Flexile_net.Graph.nedges graph)
          ~groups ~seed:(Prng.of_string "sg-stat-groups") ();
      ]
  in
  let nunits = SG.nunits gen in
  let hits = Array.make nunits 0 in
  let rng = Prng.of_string "sg-stat-draws" in
  for _ = 1 to n do
    let states = SG.sample gen rng in
    Array.iteri (fun u s -> if s >= 0 then hits.(u) <- hits.(u) + 1) states
  done;
  Array.iteri
    (fun u hit ->
      let p = gen.SG.units.(u).SG.states.(0).SG.prob in
      let freq = float_of_int hit /. float_of_int n in
      let sigma = sqrt (p *. (1. -. p) /. float_of_int n) in
      (* 3 sigma, plus a tiny absolute floor for very small p where
         the normal approximation is loose at this sample size *)
      let bound = (3. *. sigma) +. (1.5 /. float_of_int n) in
      if Float.abs (freq -. p) > bound then
        Alcotest.failf "unit %d (%s): freq %.5f vs p %.5f (bound %.5f)" u
          gen.SG.units.(u).SG.uname freq p bound)
    hits

(* Per-edge hard-down frequency matches the analytic edge_down_prob
   for a mixed generator (srlg + partial share edges). *)
let test_edge_down_statistics () =
  let n = 20000 in
  let graph = Flexile_net.Catalog.triangle () in
  let gen =
    SG.compose
      [
        SG.srlg ~nedges:3
          ~groups:[| [| 0; 1 |] |]
          ~seed:(Prng.of_string "sg-stat2-srlg") ();
        SG.partial ~graph ~seed:(Prng.of_string "sg-stat2-partial") ();
      ]
  in
  let down = Array.make 3 0 in
  let rng = Prng.of_string "sg-stat2-draws" in
  for _ = 1 to n do
    let states = SG.sample gen rng in
    let frac = Array.make 3 1. in
    Array.iteri
      (fun u s ->
        if s >= 0 then begin
          let unit = gen.SG.units.(u) in
          let st = unit.SG.states.(s) in
          let edges =
            match st.SG.sedges with Some e -> e | None -> unit.SG.edges
          in
          Array.iter (fun e -> frac.(e) <- frac.(e) *. st.SG.frac) edges
        end)
      states;
    for e = 0 to 2 do
      if not (frac.(e) > 0.) then down.(e) <- down.(e) + 1
    done
  done;
  for e = 0 to 2 do
    let p = SG.edge_down_prob gen e in
    let freq = float_of_int down.(e) /. float_of_int n in
    let sigma = sqrt (p *. (1. -. p) /. float_of_int n) in
    let bound = (3. *. sigma) +. (1.5 /. float_of_int n) in
    if Float.abs (freq -. p) > bound then
      Alcotest.failf "edge %d: down freq %.5f vs analytic %.5f (bound %.5f)" e
        freq p bound
  done

(* ---------- differential tests ---------- *)

let check_scenarios_bit_identical name (a : FM.scenario array)
    (b : FM.scenario array) =
  if Array.length a <> Array.length b then
    Alcotest.failf "%s: %d vs %d scenarios" name (Array.length a)
      (Array.length b);
  Array.iteri
    (fun i (x : FM.scenario) ->
      let y = b.(i) in
      if
        not
          (Int64.equal
             (Int64.bits_of_float x.FM.prob)
             (Int64.bits_of_float y.FM.prob))
      then
        Alcotest.failf "%s: scenario %d prob bits differ (%.17g vs %.17g)" name
          i x.FM.prob y.FM.prob;
      if x.FM.failed_units <> y.FM.failed_units then
        Alcotest.failf "%s: scenario %d failed sets differ" name i;
      if x.FM.edge_alive <> y.FM.edge_alive then
        Alcotest.failf "%s: scenario %d alive masks differ" name i;
      Array.iteri
        (fun e f ->
          if
            not
              (Int64.equal (Int64.bits_of_float f)
                 (Int64.bits_of_float y.FM.cap_frac.(e)))
          then Alcotest.failf "%s: scenario %d cap_frac bits differ" name i)
        x.FM.cap_frac)
    a

(* The singleton-group binary SRLG generator reproduces the legacy
   independent model bit-identically: same Weibull draws, same
   enumeration, same floats. *)
let test_differential_singleton_srlg () =
  let graph = ibm () in
  let ne = Flexile_net.Graph.nedges graph in
  let legacy =
    FM.enumerate ~max_scenarios:150
      (FM.independent_links ~graph ~seed:(Prng.of_string "sg-diff") ())
  in
  let singles = Array.init ne (fun e -> [| e |]) in
  let via_srlg =
    (SG.enumerate ~max_scenarios:150
       (SG.srlg ~nedges:ne ~groups:singles ~seed:(Prng.of_string "sg-diff") ()))
      .SG.scenarios
  in
  check_scenarios_bit_identical "srlg-singleton" legacy via_srlg;
  (* and the wrapper delegation path *)
  let via_wrapper =
    (SG.enumerate ~max_scenarios:150
       (SG.independent_links ~graph ~seed:(Prng.of_string "sg-diff") ()))
      .SG.scenarios
  in
  check_scenarios_bit_identical "wrapper" legacy via_wrapper

(* The Builder's default mix is the legacy path: byte-identical
   scenario sets and no demand factors. *)
let test_differential_builder_default () =
  let inst =
    Flexile_core.Builder.of_name
      ~options:
        {
          Flexile_core.Builder.default_options with
          Flexile_core.Builder.max_pairs = 30;
        }
      "Sprint"
  in
  let inst2 =
    Flexile_core.Builder.of_name
      ~options:
        {
          Flexile_core.Builder.default_options with
          Flexile_core.Builder.max_pairs = 30;
          scenario_mix = "independent";
        }
      "Sprint"
  in
  if inst.Instance.demand_factors <> None then
    Alcotest.fail "default mix attached demand factors";
  check_scenarios_bit_identical "builder-default" inst.Instance.scenarios
    inst2.Instance.scenarios

(* A mixed-regime sweep is identical at --jobs 1 and --jobs 4. *)
let test_differential_jobs () =
  let options =
    {
      Flexile_core.Builder.default_options with
      Flexile_core.Builder.scenario_mix = "srlg,partial,drift";
      max_scenarios = 24;
      max_pairs = 24;
    }
  in
  let inst = Flexile_core.Builder.of_name ~options "Sprint" in
  if inst.Instance.demand_factors = None then
    Alcotest.fail "drift mix should attach demand factors";
  let l1 = Flexile_core.Schemes.run ~jobs:1 Flexile_core.Schemes.Swan_maxmin inst in
  let l4 = Flexile_core.Schemes.run ~jobs:4 Flexile_core.Schemes.Swan_maxmin inst in
  Array.iteri
    (fun fid row ->
      Array.iteri
        (fun sid v ->
          if not (Fc.exactly_equal v l4.(fid).(sid)) then
            Alcotest.failf "loss (%d,%d) differs between jobs 1 and 4" fid sid)
        row)
    l1

(* ---------- regression: multi-state mass accounting ---------- *)

(* Binary models keep the historical accounting: nominal probability
   is the product of per-unit complements.  Pinned so the corrected
   multi-state accounting cannot drift the binary path. *)
let test_regression_binary_accounting () =
  let m = FM.of_probs ~nedges:3 [| 0.1; 0.2; 0.3 |] in
  let s = FM.no_failure m in
  Alcotest.(check (float 0.)) "binary nominal = product of complements"
    (0.9 *. 0.8 *. 0.7) s.FM.prob;
  let all = FM.enumerate ~cutoff:0. ~max_scenarios:100 m in
  Alcotest.(check int) "8 binary subsets" 8 (Array.length all);
  Alcotest.(check (float 1e-12)) "binary mass" 1.0 (FM.coverage all)

(* The fix itself: states of one unit are disjoint events, so the
   nominal mass is 1 - sum(states) — NOT the product of complements
   the old binary up/down assumption would give.  With a hard-down
   state (p=0.1) and a partial state (p=0.2, 30% capacity) on one
   link: correct nominal 0.7; the naive accounting would say
   0.9 * 0.8 = 0.72 and the enumeration would overcount to 1.02. *)
let test_regression_multistate_accounting () =
  let m =
    FM.multi_state ~nedges:1 [| ([| 0 |], [| (0.1, 0.); (0.2, 0.3) |]) |]
  in
  let all = FM.enumerate ~cutoff:0. ~max_scenarios:100 m in
  Alcotest.(check int) "nominal + 2 states" 3 (Array.length all);
  Alcotest.(check (float 1e-12)) "nominal is 1 - sum, not product" 0.7
    all.(0).FM.prob;
  (* best-first order: the likelier partial state enumerates before
     the hard cut *)
  Alcotest.(check (float 1e-12)) "partial mass" 0.2 all.(1).FM.prob;
  Alcotest.(check (float 1e-12)) "hard-down mass" 0.1 all.(2).FM.prob;
  Alcotest.(check (float 1e-12)) "total mass exactly 1" 1.0 (FM.coverage all);
  (* the partial state carries its fraction into the scenario *)
  let partial =
    Array.to_list all
    |> List.find (fun (s : FM.scenario) ->
           Array.length s.FM.failed_units > 0 && s.FM.edge_alive.(0))
  in
  Alcotest.(check (float 0.)) "partial cap_frac" 0.3 partial.FM.cap_frac.(0);
  (* unit mass >= 1 is rejected *)
  try
    ignore (FM.multi_state ~nedges:1 [| ([| 0 |], [| (0.6, 0.); (0.5, 0.5) |]) |]);
    Alcotest.fail "unit mass >= 1 not rejected"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "flexile_scenario_gen"
    [
      ( "properties",
        [
          quick "mass sums to 1" test_mass_sums_to_one;
          quick "truncated coverage" test_truncated_coverage;
          quick "partial fraction bounds" test_partial_fraction_bounds;
          quick "effective capacity bounds" test_effective_capacity_bounds;
          quick "srlg atomicity" test_srlg_atomicity;
          quick "maintenance schedule" test_maintenance;
          quick "seed determinism" test_seed_determinism;
          quick "demand factors" test_demand_factors;
        ] );
      ( "statistics",
        [
          quick "state frequencies (3 sigma)" test_sampling_statistics;
          quick "edge-down frequencies (3 sigma)" test_edge_down_statistics;
        ] );
      ( "differential",
        [
          quick "singleton srlg vs legacy" test_differential_singleton_srlg;
          quick "builder default is legacy" test_differential_builder_default;
          quick "mixed sweep jobs 1 vs 4" test_differential_jobs;
        ] );
      ( "regression",
        [
          quick "binary accounting pinned" test_regression_binary_accounting;
          quick "multi-state accounting fix" test_regression_multistate_accounting;
        ] );
    ]
