(* Leaf layer of the seeded i1 violations: raw primitives, two hops
   below the entry points in Fx_entry. *)

(* i1 positive seed: global RNG *)
let noise n = Random.int n

(* negative: deterministic arithmetic, reachable from an entry point *)
let pure x = (x * 7) + 3

(* i1 seed that must NOT be reported: nothing reachable from the
   analysis roots ever calls this *)
let clock () = Unix.gettimeofday ()
