(* Seeded i2 violations: closures handed to the Parallel shard APIs
   that write state captured from the enclosing scope, plus negative
   twins (read-only capture, DLS, ~init-provided per-worker state). *)

module Parallel = Flexile_util.Parallel

(* positive: the classic lost-update race, a captured ref written from
   every worker *)
let total_races items =
  let total = ref 0 in
  let _ =
    Parallel.map ~jobs:2 ~n:(Array.length items)
      ~init:(fun _ -> ())
      ~f:(fun () i ->
        total := !total + items.(i);
        items.(i))
      ()
  in
  !total

(* positive: captured Hashtbl mutated from workers *)
let tally_races items =
  let seen = Hashtbl.create 16 in
  Parallel.map ~jobs:2 ~n:(Array.length items)
    ~init:(fun _ -> ())
    ~f:(fun () i ->
      Hashtbl.replace seen items.(i) i;
      items.(i))
    ()

(* positive: write-through into a captured array (an Array.set on the
   shard index still races with resizing/aliasing by the caller) *)
let per_slot_writes out items =
  Parallel.map ~jobs:2 ~n:(Array.length items)
    ~init:(fun _ -> ())
    ~f:(fun () i ->
      out.(i) <- items.(i) * 2;
      out.(i))
    ()

(* negative: read-only capture is the supported pattern *)
let readonly_ok items =
  Parallel.map ~jobs:2 ~n:(Array.length items)
    ~init:(fun _ -> ())
    ~f:(fun () i -> items.(i) * 2)
    ()

(* negative: per-worker accumulation through Domain.DLS *)
let dls_key = Domain.DLS.new_key (fun () -> 0)

let dls_ok items =
  Parallel.map ~jobs:2 ~n:(Array.length items)
    ~init:(fun _ -> ())
    ~f:(fun () i ->
      Domain.DLS.set dls_key (Domain.DLS.get dls_key + items.(i));
      items.(i))
    ()

(* negative: same shape as total_races but explicitly waived *)
let[@lint.allow "i2-shard-capture"] suppressed_races items =
  let total = ref 0 in
  let _ =
    Parallel.map ~jobs:2 ~n:(Array.length items)
      ~init:(fun _ -> ())
      ~f:(fun () i ->
        total := !total + items.(i);
        items.(i))
      ()
  in
  !total
