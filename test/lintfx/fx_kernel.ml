(* Seeded i3 violations: [@lint.noalloc] kernels that allocate
   directly, transitively, or via a closure, plus negative twins that
   stay inside the whitelist. *)

(* positive: a tuple materialises on every call *)
let[@lint.noalloc] bad_pair a i = (a.(i), i)

(* helper that allocates; not annotated itself *)
let leaky n = Array.make n 0.

(* positive: the allocation is one call away, witness chain
   bad_transitive -> leaky *)
let[@lint.noalloc] bad_transitive n =
  let a = leaky n in
  a.(0)

(* positive: a closure materialises in the body on every call *)
let[@lint.noalloc] bad_closure a =
  let f = fun i -> Array.get a i in
  f 0

(* negative: pure in-place arithmetic over caller-owned arrays *)
let[@lint.noalloc] saxpy alpha x y =
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (alpha *. x.(i))
  done

(* amortized growth, trusted by annotation like Sparse.grow_f *)
let[@lint.alloc_ok "amortized-doubling arena growth"] grow a needed =
  if Array.length a >= needed then a
  else begin
    let b = Array.make (max needed (2 * Array.length a)) 0. in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

(* negative: calls only whitelisted primitives and an alloc_ok callee *)
let[@lint.noalloc] ok_growth a needed v =
  let a = grow a needed in
  a.(needed - 1) <- v;
  a

(* negative: a scratch ref whose every use is a deref/assign is
   sanctioned (see DESIGN.md section 14) *)
let[@lint.noalloc] ok_local_ref x =
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. x.(i)
  done;
  !acc
