(* Middle layer: forwards to Fx_leaf so taint must cross two call
   hops before reaching the primitive. *)

let pick n = Fx_leaf.noise n + 1
let calm x = Fx_leaf.pure x

(* i1 positive seed: unordered table traversal, one hop from entry *)
let tbl_scan tbl = Hashtbl.fold (fun _ v acc -> v + acc) tbl 0
