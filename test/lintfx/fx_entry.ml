(* Entry layer: these are the roots the fixture test seeds the taint
   walk with (roots = ["Flexile_lintfx.Fx_entry"]). *)

(* i1 positive: drive -> pick -> noise is a two-hop chain to the RNG *)
let drive n = Fx_mid.pick n

(* negative: transitively deterministic *)
let steady x = Fx_mid.calm x

(* i1 positive: scan_shared -> tbl_scan reaches Hashtbl.fold *)
let scan_shared tbl = Fx_mid.tbl_scan tbl
