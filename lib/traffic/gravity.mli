(** Gravity-model traffic matrices (§6 of the paper): each site gets a
    random mass, and the demand between two sites is proportional to
    the product of their masses.  The matrix is later scaled so the
    no-failure maximum link utilization lands in the paper's [0.5,0.7]
    window (see {!scale_to_mlu}). *)

val node_masses : seed:Flexile_util.Prng.t -> n:int -> float array
(** Exponentially distributed masses, mean 1 (heavy-tailed enough to
    make some pairs much hotter than others). *)

val matrix :
  seed:Flexile_util.Prng.t ->
  graph:Flexile_net.Graph.t ->
  pairs:(int * int) array ->
  float array
(** Demand per pair, gravity-weighted, normalized to mean 1. *)

val scale_to_mlu :
  mlu:(float array -> float) ->
  target:float ->
  float array ->
  float array
(** [scale_to_mlu ~mlu ~target demands]: multiply [demands] by
    [target /. mlu demands].  [mlu] must be positively homogeneous (an
    optimal-routing MLU is).  Raises [Invalid_argument] if the MLU of
    the input is not positive. *)

val perturb :
  seed:Flexile_util.Prng.t -> sigma:float -> float array -> float array
(** Multiplicative drift: each pair's demand times
    [exp (sigma * z)] with [z] approximately standard normal
    (Irwin-Hall sum of 12 uniforms; exactly 12 draws per pair, so the
    PRNG stream position is a pure function of the pair count).
    [sigma = 0] is the identity. *)

val drift_states :
  seed:Flexile_util.Prng.t ->
  npairs:int ->
  ?sigma:float ->
  ?nstates:int ->
  ?total_prob:float ->
  unit ->
  (float * float array) array
(** Demand-drift states for a scenario generator: [nstates] (default
    2) perturbation vectors of per-pair factors around 1 (sigma
    default 0.1), each carrying probability [total_prob / nstates]
    (total default 0.2, must stay below the 0.5 enumeration bound).
    Feed to [Scenario_gen.demand_states] via the builder. *)

val diurnal_levels : ?amplitude:float -> unit -> (float * float) array
(** Diurnal scaling levels [(scale, probability)] for
    [Scenario_gen.diurnal]: peak [1 + amplitude] and trough
    [1 - amplitude] (default amplitude 0.25) at probability 0.2
    each. *)

val split_two_class :
  seed:Flexile_util.Prng.t ->
  low_scale:float ->
  float array ->
  float array * float array
(** Random split of each pair's demand into (high, low) priority, with
    the low-priority part scaled by [low_scale] (the paper uses 2.0
    because the network can run closer to saturation with low-priority
    traffic). *)
