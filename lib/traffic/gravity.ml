let node_masses ~seed ~n =
  Array.init n (fun _ -> Flexile_util.Prng.exponential seed ~rate:1.)

let matrix ~seed ~graph ~pairs =
  let masses = node_masses ~seed ~n:graph.Flexile_net.Graph.n in
  let raw =
    Array.map (fun (u, v) -> masses.(u) *. masses.(v)) pairs
  in
  let total = Array.fold_left ( +. ) 0. raw in
  if total <= 0. then invalid_arg "Gravity.matrix: degenerate masses";
  let mean = total /. float_of_int (Array.length pairs) in
  Array.map (fun d -> d /. mean) raw

let scale_to_mlu ~mlu ~target demands =
  let m = mlu demands in
  if not (m > 0.) then invalid_arg "Gravity.scale_to_mlu: MLU not positive";
  let f = target /. m in
  Array.map (fun d -> d *. f) demands

(* Multiplicative log-normal-ish perturbation of a traffic matrix:
   exp(sigma * z) per pair with z ~ N(0,1) via a Box-Muller-free sum
   of uniforms would bias the tails, so use the PRNG's gaussian if
   available; Prng exposes uniform, so approximate N(0,1) with the
   sum of 12 uniforms minus 6 (Irwin-Hall), which is standard for
   drift factors and keeps the draw count fixed at 12 per pair. *)
let perturb ~seed ~sigma demands =
  if sigma < 0. then invalid_arg "Gravity.perturb: negative sigma";
  Array.map
    (fun d ->
      let z = ref 0. in
      for _ = 1 to 12 do
        z := !z +. Flexile_util.Prng.uniform seed 0. 1.
      done;
      d *. Float.exp (sigma *. (!z -. 6.)))
    demands

let drift_states ~seed ~npairs ?(sigma = 0.1) ?(nstates = 2)
    ?(total_prob = 0.2) () =
  if nstates <= 0 then invalid_arg "Gravity.drift_states: nstates <= 0";
  if total_prob <= 0. || total_prob >= 0.5 then
    invalid_arg "Gravity.drift_states: total probability out of (0,0.5)";
  let p = total_prob /. float_of_int nstates in
  let ones = Array.make npairs 1. in
  Array.init nstates (fun _ -> (p, perturb ~seed ~sigma ones))

let diurnal_levels ?(amplitude = 0.25) () =
  if amplitude <= 0. || amplitude >= 1. then
    invalid_arg "Gravity.diurnal_levels: amplitude out of (0,1)";
  [| (1. +. amplitude, 0.2); (1. -. amplitude, 0.2) |]

let split_two_class ~seed ~low_scale demands =
  let high = Array.make (Array.length demands) 0. in
  let low = Array.make (Array.length demands) 0. in
  Array.iteri
    (fun i d ->
      let frac = Flexile_util.Prng.uniform seed 0.2 0.8 in
      high.(i) <- d *. frac;
      low.(i) <- d *. (1. -. frac) *. low_scale)
    demands;
  (high, low)
