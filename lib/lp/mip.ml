module Trace = Flexile_util.Trace

type status = Optimal | Feasible | Infeasible | Limit

type result = {
  status : status;
  obj : float;
  x : float array;
  bound : float;
  nodes : int;
  gap : float;
}

type options = {
  node_limit : int;
  time_limit : float;
  gap_tol : float;
  int_tol : float;
}

let default_options =
  { node_limit = 5000; time_limit = 60.; gap_tol = 1e-6; int_tol = 1e-6 }

(* A node is the list of (binary variable, fixed value) decisions on the
   path from the root, plus the parent's LP bound for pruning. *)
type node = { fixings : (Lp_model.var * float) list; parent_bound : float }

let is_integral ~int_tol x binaries =
  Array.for_all
    (fun j ->
      let v = x.(j) in
      Float.abs (v -. Float.round v) <= int_tol)
    binaries

let most_fractional ~int_tol x binaries =
  let best = ref (-1) and best_frac = ref int_tol in
  Array.iter
    (fun j ->
      let v = x.(j) in
      let frac = Float.abs (v -. Float.round v) in
      if frac > !best_frac then begin
        best := j;
        best_frac := frac
      end)
    binaries;
  !best

let solve ?(options = default_options) ?heuristic ~binaries model =
  let nv = Lp_model.nvars model in
  let saved_bounds =
    Array.map (fun j -> (j, Lp_model.lb model j, Lp_model.ub model j)) binaries
  in
  Array.iter (fun j -> Lp_model.set_bounds model j ~lb:0. ~ub:1.) binaries;
  let restore () =
    Array.iter
      (fun (j, lb, ub) -> Lp_model.set_bounds model j ~lb ~ub)
      saved_bounds
  in
  let t0 = Trace.now_s () in
  let incumbent = ref None in
  let incumbent_obj = ref infinity in
  let nodes = ref 0 in
  let stack = ref [ { fixings = []; parent_bound = neg_infinity } ] in
  let hit_limit = ref false in
  let frontier_bound () =
    List.fold_left
      (fun acc nd -> Float.min acc nd.parent_bound)
      infinity !stack
  in
  let try_incumbent x obj =
    if obj < !incumbent_obj -. 1e-12 then begin
      incumbent := Some (Array.copy x);
      incumbent_obj := obj
    end
  in
  let check_heuristic lp_x =
    match heuristic with
    | None -> ()
    | Some h -> (
        match h lp_x with
        | None -> ()
        | Some cand ->
            if
              Array.length cand = nv
              && is_integral ~int_tol:options.int_tol cand binaries
              && Lp_model.max_violation model cand <= 1e-6
            then try_incumbent cand (Lp_model.objective_value model cand))
  in
  let best_proven = ref neg_infinity in
  (try
     while !stack <> [] do
       (match !stack with
       | [] -> ()
       | nd :: rest ->
           stack := rest;
           if !nodes >= options.node_limit then begin
             hit_limit := true;
             (* keep the node's bound contributing to the frontier bound *)
             stack := nd :: !stack;
             raise Exit
           end;
           if Trace.now_s () -. t0 > options.time_limit then begin
             hit_limit := true;
             stack := nd :: !stack;
             raise Exit
           end;
           if nd.parent_bound < !incumbent_obj -. options.gap_tol then begin
             incr nodes;
             List.iter
               (fun (j, v) -> Lp_model.set_bounds model j ~lb:v ~ub:v)
               nd.fixings;
             let lp = Simplex.solve model in
             List.iter
               (fun (j, _) -> Lp_model.set_bounds model j ~lb:0. ~ub:1.)
               nd.fixings;
             match lp.Simplex.status with
             | Simplex.Infeasible -> ()
             | Simplex.Unbounded ->
                 (* with binary fixings and a bounded relaxation this
                    signals numerical trouble; drop the node *)
                 ()
             | Simplex.Iteration_limit -> hit_limit := true
             | Simplex.Optimal ->
                 if lp.Simplex.obj < !incumbent_obj -. options.gap_tol then begin
                   if List.length nd.fixings = 0 then
                     best_proven := lp.Simplex.obj;
                   if is_integral ~int_tol:options.int_tol lp.Simplex.x binaries
                   then begin
                     (* snap and accept *)
                     let xi = Array.copy lp.Simplex.x in
                     Array.iter
                       (fun j -> xi.(j) <- Float.round xi.(j))
                       binaries;
                     try_incumbent xi lp.Simplex.obj
                   end
                   else begin
                     check_heuristic lp.Simplex.x;
                     let j =
                       most_fractional ~int_tol:options.int_tol lp.Simplex.x
                         binaries
                     in
                     if j >= 0 then begin
                       let v = lp.Simplex.x.(j) in
                       let first = if v >= 0.5 then 1. else 0. in
                       let mk fv =
                         {
                           fixings = (j, fv) :: nd.fixings;
                           parent_bound = lp.Simplex.obj;
                         }
                       in
                       (* DFS: explore the rounded side first *)
                       stack := mk first :: mk (1. -. first) :: !stack
                     end
                   end
                 end
           end)
     done
   with Exit -> ());
  let frontier = frontier_bound () in
  restore ();
  let bound =
    if !stack = [] then
      (* search exhausted: the incumbent (if any) is optimal *)
      if !incumbent = None then infinity else !incumbent_obj
    else Float.max !best_proven (Float.min frontier !incumbent_obj)
  in
  match !incumbent with
  | Some x ->
      let gap = Float.max 0. (!incumbent_obj -. bound) in
      let status =
        if (not !hit_limit) || gap <= options.gap_tol then Optimal
        else Feasible
      in
      { status; obj = !incumbent_obj; x; bound; nodes = !nodes; gap }
  | None ->
      let status = if !hit_limit then Limit else Infeasible in
      {
        status;
        obj = infinity;
        x = Array.make nv 0.;
        bound;
        nodes = !nodes;
        gap = infinity;
      }
