(* Numerical health observatory for the sparse revised simplex
   (DESIGN.md section 15).

   The solver samples this module once per refactorization and once at
   solution extraction — never per pivot, so the noalloc pivot kernels
   ([Sparse.Basis.ftran]/[btran]/[update], [Simplex.scatter_alpha])
   stay untouched.  A sample costs a handful of FTRAN/BTRAN solves plus
   O(nnz) column scans, which is a vanishing fraction of the
   factorization it rides on.

   What is measured per sample:
   - relative primal residual  max_i |(B x_B - b~)_i| / max(1, ||b~||_inf)
   - relative dual residual    max_j |(B^T y - c_B)_j| / max(1, ||c_B||_inf)
   - a Hager-style 1-norm condition estimate kappa_1(B) ~ ||B||_1 ||B^-1||_1,
     where ||B^-1||_1 comes from at most three FTRAN/BTRAN power steps
     on the gradient of x |-> ||B^-1 x||_1 (Hager 1984; the LAPACK
     xLACON estimator).  The estimate is a lower bound, exact on the
     fixtures we assert against, and never costs a dense inverse.
   - LU element growth, tiny-pivot rows, and the eta-file epoch stats
     ([Sparse.Basis] accessors) of the factorization just replaced.

   Degeneracy stalls (consecutive zero-step ratio tests) and Bland
   dwell are reported by the simplex loops through [note_stall] /
   [note_loop_end]; they cost one integer compare per iteration there.

   Everything flows into [Trace] counters/histograms under the
   [health.] prefix, and — when a state is created with [capture] — into
   an in-memory timeline that [Doctor] renders.  When a threshold trips
   the owner's [on_trip] hook runs, which the solver uses to dump a
   reproducible LP snapshot ([write_dump] / [read_dump], gated on the
   FLEXILE_HEALTH_DUMP directory). *)

module Trace = Flexile_util.Trace
module Float_cmp = Flexile_util.Float_cmp
module Json = Flexile_util.Json

(* ------------------------------------------------------------------ *)
(* Thresholds                                                          *)
(* ------------------------------------------------------------------ *)

type thresholds = {
  cond_limit : float;
  residual_limit : float;
  growth_limit : float;
  stall_limit : int;
  near_singular_rtol : float;
}

let getenv_pos_float name default =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some s -> ( match float_of_string_opt s with
      | Some v when v > 0. -> v
      | _ -> default)

let getenv_pos_int name default =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some s -> ( match int_of_string_opt s with
      | Some v when v > 0 -> v
      | _ -> default)

(* Defaults, with env overrides for tests and incident debugging.
   Rationale (DESIGN.md section 15): cond_limit 1e10 leaves ~6 digits
   of the double mantissa trustworthy; residual_limit 1e-6 sits two
   decades above the solver's 1e-7 feasibility tolerance so a trip
   means the *factorization* is lying, not the ratio test; growth_limit
   1e8 is far beyond what threshold-0.01 partial pivoting produces on
   healthy bases; stall_limit matches the simplex Bland fallback
   threshold so a "stall" is exactly the event that forced the
   anti-cycling pivot rule. *)
let default_thresholds () =
  {
    cond_limit = getenv_pos_float "FLEXILE_HEALTH_COND" 1e10;
    residual_limit = getenv_pos_float "FLEXILE_HEALTH_RESIDUAL" 1e-6;
    growth_limit = getenv_pos_float "FLEXILE_HEALTH_GROWTH" 1e8;
    stall_limit = getenv_pos_int "FLEXILE_HEALTH_STALL" 120;
    near_singular_rtol = getenv_pos_float "FLEXILE_HEALTH_RTOL" 1e-7;
  }

(* ------------------------------------------------------------------ *)
(* Trace metrics (registered once at module initialization)            *)
(* ------------------------------------------------------------------ *)

let c_samples = Trace.counter "health.samples"
let c_trips = Trace.counter "health.threshold_trips"
let c_stalls = Trace.counter "health.stalls"
let c_bland = Trace.counter "health.bland_pivots"
let c_near_singular = Trace.counter "health.near_singular_rows"
let c_eta_rejections = Trace.counter "health.eta_rejections"
let c_dumps = Trace.counter "health.dumps"
let c_dual_guard = Trace.counter "health.dual_guard_trips"
let h_primal_res = Trace.hist "health.primal_residual"
let h_dual_res = Trace.hist "health.dual_residual"
let h_cond = Trace.hist "health.cond1_log10"
let h_growth = Trace.hist "health.lu_growth"
let h_eta_growth = Trace.hist "health.eta_growth"
let h_degen = Trace.hist "health.degen_run"
let p_sample = Trace.probe "health.sample"
let p_stall = Trace.probe "health.stall"
let p_trip = Trace.probe "health.trip"

let note_dual_guard_trip () = Trace.incr c_dual_guard

(* ------------------------------------------------------------------ *)
(* Samples and state                                                   *)
(* ------------------------------------------------------------------ *)

type kind = Refactor | Final

(* Eta-file statistics of the epoch a refactorization just closed,
   read by the solver *before* [Sparse.Basis.factor] resets them. *)
type eta_epoch = {
  ee_len : int;
  ee_nnz : int;
  ee_rejections : int;
  ee_growth : float;
  ee_min_diag : float;
}

let empty_epoch =
  { ee_len = 0; ee_nnz = 0; ee_rejections = 0; ee_growth = 0.; ee_min_diag = infinity }

type sample = {
  s_kind : kind;
  s_phase : int;
  s_iteration : int;
  s_primal_res : float;
  s_dual_res : float;
  s_cond1 : float;
  s_growth : float;
  s_udiag_min : float;
  s_udiag_max : float;
  s_eta : eta_epoch;
  s_near_singular : (int * float) list;
  s_patched : (int * int) list;
  s_tripped : string list;
}

type stall = { st_phase : int; st_iteration : int; st_run : int }

type loop_note = {
  ln_phase : int;
  ln_iterations : int;
  ln_max_run : int;
  ln_bland : int;
}

type state = {
  m : int;
  thresholds : thresholds;
  mutable capture : bool;
  hy : float array; (* scratch, length m *)
  hz : float array; (* scratch, length m *)
  mutable samples : sample list; (* newest first *)
  mutable stalls : stall list;
  mutable loops : loop_note list;
  mutable on_trip : string list -> unit;
}

let make ?(capture = false) ?thresholds m =
  let thresholds =
    match thresholds with Some t -> t | None -> default_thresholds ()
  in
  {
    m;
    thresholds;
    capture;
    hy = Array.make (max 1 m) 0.;
    hz = Array.make (max 1 m) 0.;
    samples = [];
    stalls = [];
    loops = [];
    on_trip = (fun _ -> ());
  }

let thresholds state = state.thresholds
let set_capture state b = state.capture <- b
let capture state = state.capture
let set_on_trip state f = state.on_trip <- f
let samples state = List.rev state.samples
let stalls state = List.rev state.stalls
let loop_notes state = List.rev state.loops

let clear state =
  state.samples <- [];
  state.stalls <- [];
  state.loops <- []

(* ------------------------------------------------------------------ *)
(* Production sampling stride                                          *)
(* ------------------------------------------------------------------ *)

(* A full numerical sample costs a dozen basis solves (the residual
   pair plus two-start Hager); taken at every cold extraction and
   every refactorization it blows the <=2% overhead budget on
   solve-heavy workloads (hundreds of small scenario LPs, or one
   continental-scale LP whose extraction-time eta file is long).  In
   production (non-capture) mode only every [sample_stride]-th
   opportunity is measured.  The counter is per-domain, so which
   solves get measured depends on how the scheduler spread work
   across domains — production health aggregates are statistical,
   and Metrics_export excludes the health.* families from its
   deterministic Prometheus subset accordingly.  The deterministic
   health story is capture (doctor) mode, which bypasses the stride
   and samples everything; FLEXILE_HEALTH_STRIDE=1 restores
   exhaustive sampling in production too. *)
let sample_stride = getenv_pos_int "FLEXILE_HEALTH_STRIDE" 16

(* per-domain counter with no cross-domain communication: DLS is the
   sanctioned per-worker-state pattern (lint i2 exempts it) *)
let stride_key = Domain.DLS.new_key (fun () -> ref 0)

let sample_due state =
  state.capture
  ||
  let c = Domain.DLS.get stride_key in
  let n = !c in
  c := n + 1;
  n mod sample_stride = 0

(* ------------------------------------------------------------------ *)
(* Estimators                                                          *)
(* ------------------------------------------------------------------ *)

(* max_i |(B x_B - b~)_i| / max(1, ||b~||_inf).  [col pos f] enumerates
   the basis column at [pos]; [btilde] is the row-space right-hand side
   b - N x_N the solver already maintains. *)
let primal_residual state ~col ~btilde ~xb =
  let m = state.m in
  let r = state.hy in
  let bnorm = ref 1. in
  for i = 0 to m - 1 do
    r.(i) <- -.btilde.(i);
    let a = Float.abs btilde.(i) in
    if a > !bnorm then bnorm := a
  done;
  for pos = 0 to m - 1 do
    let x = xb.(pos) in
    if Float_cmp.nonzero x then
      col pos (fun row v -> r.(row) <- r.(row) +. (v *. x))
  done;
  let worst = ref 0. in
  for i = 0 to m - 1 do
    let a = Float.abs r.(i) in
    if a > !worst then worst := a
  done;
  !worst /. !bnorm

(* max_j |(B^T y - c_B)_j| / max(1, ||c_B||_inf) with y = B^-T c_B —
   how far the duals the pricing loop trusts drift from the basic
   costs under the current factorization. *)
let dual_residual state ~basis ~col ~cb =
  let m = state.m in
  let y = state.hy in
  let cmax = ref 1. in
  for pos = 0 to m - 1 do
    let c = cb pos in
    y.(pos) <- c;
    let a = Float.abs c in
    if a > !cmax then cmax := a
  done;
  Sparse.Basis.btran basis y;
  let worst = ref 0. in
  for pos = 0 to m - 1 do
    let s = ref (-.(cb pos)) in
    col pos (fun row v -> s := !s +. (v *. y.(row)));
    let a = Float.abs !s in
    if a > !worst then worst := a
  done;
  !worst /. !cmax

(* Hager's 1-norm estimator: power iteration on the subgradient of
   x |-> ||B^-1 x||_1, at most three FTRAN/BTRAN pairs per start.  The
   start vectors and the e_j refinements are known analytically, so no
   third scratch array is needed: z^T x is the (signed) mean of z
   (dense starts) or z_j (unit refinement).

   Two starts are probed and the larger estimate kept: the uniform
   x = e/m, and an alternating (+/-)e/m.  A single uniform start
   systematically misses near-dependent row pairs — for a basis block
   [[1,1],[1,1+eps]] the inverse's row sums cancel exactly, so the
   uniform probe (and its sign vector) never sees the 1/eps direction,
   while the alternating probe hits it head-on.  This is the classic
   LINPACK-style sign heuristic grafted onto Hager's iteration. *)
let hager_pass state ~basis ~alt =
  let m = state.m in
  let y = state.hy and z = state.hz in
  let est = ref 0. in
  let xj = ref (-1) in
  (try
     for _it = 1 to 3 do
       (if !xj < 0 then begin
          let h = 1. /. float_of_int m in
          for i = 0 to m - 1 do
            y.(i) <- (if alt && i land 1 = 1 then -.h else h)
          done
        end
        else begin
          Array.fill y 0 m 0.;
          y.(!xj) <- 1.
        end);
       Sparse.Basis.ftran basis y;
       let y1 = ref 0. in
       for i = 0 to m - 1 do
         y1 := !y1 +. Float.abs y.(i)
       done;
       est := !y1;
       for i = 0 to m - 1 do
         z.(i) <- (if y.(i) >= 0. then 1. else -1.)
       done;
       Sparse.Basis.btran basis z;
       let zmax = ref 0. and jmax = ref 0 in
       for i = 0 to m - 1 do
         let a = Float.abs z.(i) in
         if a > !zmax then begin
           zmax := a;
           jmax := i
         end
       done;
       let zx =
         if !xj >= 0 then z.(!xj)
         else begin
           let s = ref 0. in
           for i = 0 to m - 1 do
             s := !s +. (if alt && i land 1 = 1 then -.z.(i) else z.(i))
           done;
           !s /. float_of_int m
         end
       in
       if !zmax <= zx then raise Exit;
       xj := !jmax
     done
   with Exit -> ());
  !est

let cond1_estimate state ~basis =
  if state.m = 0 then 1.
  else
    let eu = hager_pass state ~basis ~alt:false in
    let ea = hager_pass state ~basis ~alt:true in
    Sparse.Basis.norm1 basis *. Float.max eu ea

(* ------------------------------------------------------------------ *)
(* Sampling                                                            *)
(* ------------------------------------------------------------------ *)

let sample state ~basis ~kind ~phase ~iteration ~col ~cb ~btilde ~xb ~eta
    ~patched =
  Trace.incr c_samples;
  Trace.event p_sample iteration;
  let pr = primal_residual state ~col ~btilde ~xb in
  let dr = dual_residual state ~basis ~col ~cb in
  let cond = cond1_estimate state ~basis in
  let growth = Sparse.Basis.lu_growth basis in
  let t = state.thresholds in
  let near = Sparse.Basis.near_singular_rows basis ~rtol:t.near_singular_rtol in
  Trace.observe h_primal_res pr;
  Trace.observe h_dual_res dr;
  Trace.observe h_cond (Float.max 0. (Float.log10 cond));
  Trace.observe h_growth growth;
  if eta.ee_len > 0 then Trace.observe h_eta_growth eta.ee_growth;
  if eta.ee_rejections > 0 then Trace.add c_eta_rejections eta.ee_rejections;
  if near <> [] then Trace.add c_near_singular (List.length near);
  let tripped =
    List.filter_map
      (fun (name, hit) -> if hit then Some name else None)
      [
        ("cond", cond > t.cond_limit || Float.is_nan cond);
        ("primal_residual", pr > t.residual_limit || Float.is_nan pr);
        ("dual_residual", dr > t.residual_limit || Float.is_nan dr);
        ("lu_growth", growth > t.growth_limit);
      ]
  in
  if tripped <> [] then begin
    Trace.incr c_trips;
    Trace.event p_trip iteration
  end;
  if state.capture then
    state.samples <-
      {
        s_kind = kind;
        s_phase = phase;
        s_iteration = iteration;
        s_primal_res = pr;
        s_dual_res = dr;
        s_cond1 = cond;
        s_growth = growth;
        s_udiag_min = Sparse.Basis.u_diag_min basis;
        s_udiag_max = Sparse.Basis.u_diag_max basis;
        s_eta = eta;
        s_near_singular = near;
        s_patched = patched;
        s_tripped = tripped;
      }
      :: state.samples;
  if tripped <> [] then state.on_trip tripped

let note_stall state ~phase ~iteration ~run =
  Trace.incr c_stalls;
  Trace.event p_stall iteration;
  state.stalls <-
    { st_phase = phase; st_iteration = iteration; st_run = run } :: state.stalls

let note_loop_end state ~phase ~iterations ~max_run ~bland =
  if max_run > 0 then Trace.observe h_degen (float_of_int max_run);
  if bland > 0 then Trace.add c_bland bland;
  if state.capture && iterations > 0 then
    state.loops <-
      { ln_phase = phase; ln_iterations = iterations; ln_max_run = max_run;
        ln_bland = bland }
      :: state.loops

(* ------------------------------------------------------------------ *)
(* Reproducible LP dumps                                               *)
(* ------------------------------------------------------------------ *)

(* Floats round-trip through the hexadecimal literal form ("%h", read
   back by [float_of_string]) so a dump replays the exact bit pattern
   that tripped the threshold — stored as JSON strings because JSON
   numbers cannot carry hex literals. *)
let hex_of_float x =
  match classify_float x with
  | FP_nan -> "nan"
  | FP_infinite -> if x > 0. then "inf" else "-inf"
  | _ -> Printf.sprintf "%h" x

let float_of_hex s = float_of_string_opt s

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_str b s =
  Buffer.add_char b '"';
  json_escape b s;
  Buffer.add_char b '"'

let add_hex b x = add_str b (hex_of_float x)

let sense_to_string = function
  | Lp_model.Le -> "le"
  | Lp_model.Ge -> "ge"
  | Lp_model.Eq -> "eq"

let sense_of_string = function
  | "le" -> Some Lp_model.Le
  | "ge" -> Some Lp_model.Ge
  | "eq" -> Some Lp_model.Eq
  | _ -> None

let model_to_buf b model =
  Buffer.add_string b "{\"name\":";
  add_str b (Lp_model.name model);
  Buffer.add_string b ",\"vars\":[";
  for j = 0 to Lp_model.nvars model - 1 do
    if j > 0 then Buffer.add_char b ',';
    Buffer.add_string b "{\"name\":";
    add_str b (Lp_model.var_name model j);
    Buffer.add_string b ",\"lb\":";
    add_hex b (Lp_model.lb model j);
    Buffer.add_string b ",\"ub\":";
    add_hex b (Lp_model.ub model j);
    Buffer.add_string b ",\"obj\":";
    add_hex b (Lp_model.obj_coef model j);
    Buffer.add_char b '}'
  done;
  Buffer.add_string b "],\"rows\":[";
  for i = 0 to Lp_model.nrows model - 1 do
    if i > 0 then Buffer.add_char b ',';
    Buffer.add_string b "{\"name\":";
    add_str b (Lp_model.row_name model i);
    Buffer.add_string b ",\"sense\":";
    add_str b (sense_to_string (Lp_model.row_sense model i));
    Buffer.add_string b ",\"rhs\":";
    add_hex b (Lp_model.rhs model i);
    Buffer.add_string b ",\"coeffs\":[";
    List.iteri
      (fun k (j, v) ->
        if k > 0 then Buffer.add_char b ',';
        Buffer.add_string b "[";
        Buffer.add_string b (string_of_int j);
        Buffer.add_char b ',';
        add_hex b v;
        Buffer.add_char b ']')
      (Lp_model.row_coeffs model i);
    Buffer.add_string b "]}"
  done;
  Buffer.add_string b "]}"

let model_to_json_string model =
  let b = Buffer.create 1024 in
  model_to_buf b model;
  Buffer.contents b

let ( let* ) o f = match o with Some v -> f v | None -> None

let json_hex j = let* s = Json.to_string j in float_of_hex s

let model_of_json j =
  let fail msg = Error ("health dump: bad model: " ^ msg) in
  match
    let* name = let* n = Json.member "name" j in Json.to_string n in
    let* vars = let* v = Json.member "vars" j in Json.to_list v in
    let* rows = let* r = Json.member "rows" j in Json.to_list r in
    let model = Lp_model.create ~name () in
    let* () =
      List.fold_left
        (fun acc v ->
          let* () = acc in
          let* name = let* n = Json.member "name" v in Json.to_string n in
          let* lb = let* x = Json.member "lb" v in json_hex x in
          let* ub = let* x = Json.member "ub" v in json_hex x in
          let* obj = let* x = Json.member "obj" v in json_hex x in
          let (_ : int) = Lp_model.add_var model ~name ~lb ~ub ~obj () in
          Some ())
        (Some ()) vars
    in
    let* () =
      List.fold_left
        (fun acc r ->
          let* () = acc in
          let* name = let* n = Json.member "name" r in Json.to_string n in
          let* sense =
            let* s = Json.member "sense" r in
            let* s = Json.to_string s in
            sense_of_string s
          in
          let* rhs = let* x = Json.member "rhs" r in json_hex x in
          let* coeffs = let* c = Json.member "coeffs" r in Json.to_list c in
          let* coeffs =
            List.fold_left
              (fun acc c ->
                let* acc = acc in
                match Json.to_list c with
                | Some [ jv; xv ] ->
                    let* j = Json.to_int jv in
                    let* x = json_hex xv in
                    Some ((j, x) :: acc)
                | _ -> None)
              (Some []) coeffs
          in
          let (_ : int) =
            Lp_model.add_row model ~name sense rhs (List.rev coeffs)
          in
          Some ())
        (Some ()) rows
    in
    Some model
  with
  | Some model -> Ok model
  | None -> fail "missing or ill-typed field"
  | exception Invalid_argument msg -> fail msg

let dump_schema = "flexile-health-dump"
let dump_version = 1

let dump_dir () =
  match Sys.getenv_opt "FLEXILE_HEALTH_DUMP" with
  | Some d when String.length d > 0 -> Some d
  | _ -> None

let sanitize_name s =
  let b = Bytes.of_string (if s = "" then "lp" else s) in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> ()
      | _ -> Bytes.set b i '-')
    b;
  Bytes.to_string b

let dump_path ~dir ~model =
  Filename.concat dir
    ("health-dump-" ^ sanitize_name (Lp_model.name model) ^ ".json")

type dump = {
  d_reasons : string list;
  d_phase : int;
  d_iteration : int;
  d_eta_limit : int option;
  d_model : Lp_model.t;
  d_basis : int array;
  d_vstat : int array;
}

let dump_to_string d =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"schema\":";
  add_str b dump_schema;
  Buffer.add_string b (",\"version\":" ^ string_of_int dump_version);
  Buffer.add_string b ",\"reasons\":[";
  List.iteri
    (fun k r ->
      if k > 0 then Buffer.add_char b ',';
      add_str b r)
    d.d_reasons;
  Buffer.add_string b ("],\"phase\":" ^ string_of_int d.d_phase);
  Buffer.add_string b (",\"iteration\":" ^ string_of_int d.d_iteration);
  Buffer.add_string b ",\"eta_limit\":";
  (match d.d_eta_limit with
  | None -> Buffer.add_string b "null"
  | Some l -> Buffer.add_string b (string_of_int l));
  Buffer.add_string b ",\"model\":";
  model_to_buf b d.d_model;
  let ints name a =
    Buffer.add_string b (",\"" ^ name ^ "\":[");
    Array.iteri
      (fun k v ->
        if k > 0 then Buffer.add_char b ',';
        Buffer.add_string b (string_of_int v))
      a;
    Buffer.add_char b ']'
  in
  ints "basis" d.d_basis;
  ints "vstat" d.d_vstat;
  Buffer.add_string b "}\n";
  Buffer.contents b

(* Writes (or deterministically overwrites) the snapshot for [d]'s
   model in the FLEXILE_HEALTH_DUMP directory.  No-op returning [None]
   when the variable is unset — sampling must never create files unless
   explicitly pointed at a scratch directory. *)
let write_dump d =
  match dump_dir () with
  | None -> None
  | Some dir ->
      (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
       with Sys_error _ -> ());
      let path = dump_path ~dir ~model:d.d_model in
      let oc = open_out path in
      output_string oc (dump_to_string d);
      close_out oc;
      Trace.incr c_dumps;
      Some path

let read_dump path =
  match Json.parse_file path with
  | Error e -> Error ("health dump: " ^ e)
  | Ok j -> (
      match
        let* schema =
          let* s = Json.member "schema" j in
          Json.to_string s
        in
        if schema <> dump_schema then None
        else
          let* version =
            let* v = Json.member "version" j in
            Json.to_int v
          in
          if version > dump_version then None
          else
            let* reasons =
              let* r = Json.member "reasons" j in
              let* l = Json.to_list r in
              List.fold_left
                (fun acc r ->
                  let* acc = acc in
                  let* s = Json.to_string r in
                  Some (s :: acc))
                (Some []) l
            in
            let* phase = let* p = Json.member "phase" j in Json.to_int p in
            let* iteration =
              let* i = Json.member "iteration" j in
              Json.to_int i
            in
            let eta_limit =
              match Json.member "eta_limit" j with
              | Some (Json.Number _ as n) -> Json.to_int n
              | _ -> None
            in
            let* model_j = Json.member "model" j in
            let* model =
              match model_of_json model_j with
              | Ok m -> Some m
              | Error _ -> None
            in
            let ints name =
              let* a = Json.member name j in
              let* l = Json.to_list a in
              let* l =
                List.fold_left
                  (fun acc v ->
                    let* acc = acc in
                    let* i = Json.to_int v in
                    Some (i :: acc))
                  (Some []) l
              in
              Some (Array.of_list (List.rev l))
            in
            let* basis = ints "basis" in
            let* vstat = ints "vstat" in
            Some
              {
                d_reasons = List.rev reasons;
                d_phase = phase;
                d_iteration = iteration;
                d_eta_limit = eta_limit;
                d_model = model;
                d_basis = basis;
                d_vstat = vstat;
              }
      with
      | Some d -> Ok d
      | None -> Error "health dump: missing field or schema mismatch"
      | exception Invalid_argument msg -> Error ("health dump: " ^ msg))
