(** Sparse kernels for the revised simplex core.

    [Svec] is a reusable scatter/gather sparse-vector workspace; [Basis]
    is an LU-factorized simplex basis with product-form (eta-file)
    updates.  Both are deterministic — pivot selection and traversal
    order depend only on the input, never on hashing or time — and both
    reuse internal buffers so that the simplex pivot loop allocates
    nothing per pivot (the eta arena grows by amortized doubling).

    See DESIGN.md section 11 for the data layouts and invariants. *)

module Svec : sig
  type t
  (** A sparse vector of fixed dimension backed by a dense value array,
      an explicit pattern (insertion order), and a membership mark. *)

  val create : int -> t
  (** [create dim] allocates a cleared workspace of dimension [dim]. *)

  val dim : t -> int
  val nnz : t -> int

  val clear : t -> unit
  (** O(nnz): resets only the touched entries. *)

  val add : t -> int -> float -> unit
  (** [add t i v] accumulates [v] into entry [i], extending the pattern
      if [i] was untouched (even when the sum is numerically zero). *)

  val get : t -> int -> float
  val mem : t -> int -> bool

  val iter : t -> (int -> float -> unit) -> unit
  (** Iterates the pattern in insertion order. *)

  val to_dense : t -> float array
end

module Basis : sig
  type t
  (** An [m]x[m] simplex basis held as [P B Q = L U] plus an eta file of
      product-form updates.  All solves are in place over caller-owned
      dense arrays of length [m]. *)

  val create : ?eta_limit:int -> int -> t
  (** [create m] allocates workspaces for an [m]-row basis.
      [eta_limit] caps the eta file before [needs_refactor] trips
      (default [max 64 (m/2)]). *)

  val dim : t -> int

  val factor : t -> col:(int -> ((int -> float -> unit) -> unit)) -> (int * int) list
  (** [factor t ~col] factorizes the basis whose column at position
      [pos] is enumerated by [col pos f] (calling [f row value]).
      Columns are ordered by a static Markowitz heuristic; rows by
      threshold partial pivoting with deterministic tie-breaks.

      Positions whose column admits no acceptable pivot (a singular or
      numerically dependent basis) are patched with unit columns of the
      remaining rows; the returned list gives the [(position, row)]
      pairs that were patched — the caller must replace the basic
      variable at [position] with the slack of [row] to make the
      recorded basis match the factorization.  Empty on success. *)

  val is_factored : t -> bool

  val ftran : t -> float array -> unit
  (** [ftran t v] solves [B x = v] in place.  Input is indexed by row,
      output by basis position. *)

  val btran : t -> float array -> unit
  (** [btran t v] solves [y^T B = v^T] in place.  Input is indexed by
      basis position, output by row. *)

  val btran_unit : t -> int -> float array -> unit
  (** [btran_unit t r v] fills [v] with row [r] of [B^-1] (the BTRAN of
      the [r]-th position unit vector).  Overwrites all of [v]. *)

  val update : t -> r:int -> w:float array -> bool
  (** [update t ~r ~w] appends a product-form eta replacing the basis
      column at position [r] with the column whose FTRAN image is [w]
      (dense, length [m]).  Returns [false] — leaving the factorization
      unchanged — when [|w.(r)|] is below the stability threshold, in
      which case the caller must refactorize. *)

  val eta_count : t -> int
  val eta_nnz : t -> int

  val lu_nnz : t -> int
  (** Nonzeros in [L] + [U] including the unit/diagonal entries. *)

  val needs_refactor : t -> bool
  (** True once the eta file is long ([eta_limit]) or has grown dense
      relative to the LU factors. *)

  (** {2 Numerical-health accessors}

      Factor-time statistics refresh on every [factor]; eta statistics
      accumulate across [update] calls since the last [factor].  All are
      O(1) reads of preallocated state (DESIGN.md section 15). *)

  val lu_growth : t -> float
  (** Element growth [max|U| / max|B|] of the last factorization; large
      values mean threshold pivoting admitted an unstable elimination. *)

  val u_diag_min : t -> float
  (** Smallest [|u_diag|] of the last factorization (0. for [m = 0]). *)

  val u_diag_max : t -> float
  (** Largest [|u_diag|] of the last factorization. *)

  val norm1 : t -> float
  (** [||B||_1] (max column abs-sum) of the last factorized basis. *)

  val eta_rejections : t -> int
  (** Updates refused for a tiny eta pivot since the last [factor]. *)

  val eta_min_diag : t -> float
  (** Smallest [|w.(r)|] accepted as an eta pivot since the last
      [factor]; [infinity] when the eta file is empty. *)

  val eta_growth : t -> float
  (** Largest [max_i |w.(i)| / |w.(r)|] over accepted etas since the
      last [factor] — pivot growth of the product-form updates. *)

  val near_singular_rows : t -> rtol:float -> (int * float) list
  (** Rows whose U pivot is below [rtol] times the largest [|u_diag|],
      as [(row, |u_diag|)] in ascending row order: the basis is within a
      relative [rtol] perturbation of singular along these rows. *)
end
