(* Two-phase bounded-variable revised primal simplex + dual simplex.

   Computational form: the model's rows are turned into equalities
   [A x + s = b] by adding one slack per row (coefficient +1) whose
   bounds encode the row sense:
     Le -> s in [0, +inf)    Ge -> s in (-inf, 0]    Eq -> s in [0, 0]
   One artificial column per row (also coefficient +1, so the basis
   matrix is unchanged when an artificial replaces its slack) supports
   the phase-1 start; artificials are fixed to [0,0] in phase 2.

   Variable layout: [0, n) structural, [n, n+m) slacks,
   [n+m, n+2m) artificials.

   The basis is held LU-factorized ([Sparse.Basis]: Markowitz-ordered
   factorization, threshold partial pivoting) and advanced by
   product-form eta updates per pivot; FTRAN/BTRAN run through the
   factors, and refactorization is triggered by the eta-file length or
   a too-small eta pivot.  Pricing is devex with partial pricing over
   static candidate sections, falling back to Bland's rule under
   degeneracy.  The frozen pre-sparse solver survives as
   [Simplex_dense]; setting FLEXILE_DENSE_SIMPLEX=1 routes this module
   through it (the differential tests compare the two paths). *)

let feas_tol = 1e-7
let opt_tol = 1e-7
let pivot_tol = 1e-9
let degen_threshold = 120
let src = Logs.Src.create "flexile.lp" ~doc:"LP solver"

module Log = (val Logs.src_log src : Logs.LOG)
module Trace = Flexile_util.Trace
module Float_cmp = Flexile_util.Float_cmp
module Basis = Sparse.Basis

(* Probes are per-solve or per-refactorization, never per-pivot: with
   tracing disabled each costs one branch, with it enabled one
   domain-local array write. *)
let c_cold_solves = Trace.counter "simplex.cold_solves"
let sp_solve = Trace.span "simplex.solve"
let sp_resolve = Trace.span "simplex.resolve_rhs"
let c_iterations = Trace.counter "simplex.iterations"
let c_refactorizations = Trace.counter "simplex.refactorizations"
let c_warm_attempts = Trace.counter "simplex.warm_attempts"
let c_warm_hits = Trace.counter "simplex.warm_hits"
let c_warm_fallbacks = Trace.counter "simplex.warm_fallbacks"
let h_iterations = Trace.hist "simplex.iterations_per_solve"
let t_factor = Trace.timer "simplex.factor"
let c_eta_updates = Trace.counter "simplex.eta_updates"
let c_basis_repairs = Trace.counter "simplex.basis_repairs"
let h_eta_at_refactor = Trace.hist "simplex.eta_len_at_refactor"

(* Phase tags reported to the health observatory (Health.sample.s_phase
   and the stall notes).  Integers, not a variant, because they cross
   the Health interface and land in JSON reports. *)
let phase_setup = 0
let phase_primal1 = 1
let phase_primal2 = 2
let phase_dual = 3

type status = Optimal | Infeasible | Unbounded | Iteration_limit

type solution = {
  status : status;
  obj : float;
  x : float array;
  row_duals : float array;
  reduced_costs : float array;
  bound_term : float;
  iterations : int;
}

let dual_bound sol ~rhs =
  let s = ref sol.bound_term in
  Array.iteri (fun i y -> s := !s +. (y *. rhs.(i))) sol.row_duals;
  !s

(* Nonbasic-at-lower / -at-upper / basic / nonbasic-free (value 0). *)
let at_lower = 0
let at_upper = 1
let basic = 2
let free = 3

type sp = {
  n : int;
  m : int;
  ntot : int;
  model : Lp_model.t; (* kept for health snapshots, never re-read *)
  csc : Lp_model.csc;
  lo : float array;
  up : float array;
  cost : float array; (* phase-2 costs over ntot *)
  b : float array; (* current rhs *)
  vstat : int array;
  bas : int array; (* length m *)
  basis : Basis.t;
  xb : float array;
  xn : float array; (* bound value of each nonbasic variable *)
  mutable last_status : status option;
  (* persistent workspaces: the pivot loops allocate nothing *)
  w : float array; (* FTRAN column, length m *)
  rho : float array; (* BTRAN row of B^-1, length m *)
  y : float array; (* row duals, length m *)
  bt : float array; (* recompute_xb scratch, length m *)
  (* CSR mirror of the structural columns, for pivot-row products *)
  row_start : int array; (* length m+1 *)
  row_col : int array;
  row_val : float array;
  asv : Sparse.Svec.t; (* alpha = A^T rho scatter, dimension ntot *)
  d : float array; (* reduced costs over ntot *)
  mutable d_valid : bool;
      (* [d] holds phase-2 reduced costs of the current basis, kept
         exact by the optimality confirmation and maintained by the
         dual pivots — lets a warm [resolve_rhs] skip the full rebuild *)
  gamma : float array; (* devex reference weights over ntot *)
  sec_size : int; (* partial-pricing section length *)
  nsec : int;
  mutable psec : int; (* cyclic pricing cursor *)
  (* numerical health observatory (DESIGN.md section 15) *)
  health : Health.state;
  mutable hphase : int; (* phase_setup/_primal1/_primal2/_dual *)
  mutable hiter : int; (* iteration count at the last loop step *)
}

let slack_bounds sense =
  match sense with
  | Lp_model.Le -> (0., infinity)
  | Lp_model.Ge -> (neg_infinity, 0.)
  | Lp_model.Eq -> (0., 0.)

let eta_limit_env () =
  match Sys.getenv_opt "FLEXILE_ETA_LIMIT" with
  | Some s -> int_of_string_opt s
  | None -> None

let make_sp ?eta_limit ?thresholds model =
  let n = Lp_model.nvars model and m = Lp_model.nrows model in
  let ntot = n + (2 * m) in
  let lo = Array.make ntot 0. and up = Array.make ntot 0. in
  let cost = Array.make ntot 0. in
  for j = 0 to n - 1 do
    lo.(j) <- Lp_model.lb model j;
    up.(j) <- Lp_model.ub model j;
    cost.(j) <- Lp_model.obj_coef model j
  done;
  let b = Array.make m 0. in
  for i = 0 to m - 1 do
    let slo, sup = slack_bounds (Lp_model.row_sense model i) in
    lo.(n + i) <- slo;
    up.(n + i) <- sup;
    (* artificial bounds adjusted during phase-1 setup *)
    lo.(n + m + i) <- 0.;
    up.(n + m + i) <- 0.;
    b.(i) <- Lp_model.rhs model i
  done;
  let sec_size = max 256 ((ntot + 7) / 8) in
  let nsec = max 1 ((ntot + sec_size - 1) / sec_size) in
  (* transpose the CSC structural columns into CSR once *)
  let csc = Lp_model.csc model in
  let nnz = csc.Lp_model.col_start.(n) in
  let row_start = Array.make (m + 1) 0 in
  let row_col = Array.make (max 1 nnz) 0 in
  let row_val = Array.make (max 1 nnz) 0. in
  for k = 0 to nnz - 1 do
    let i = csc.Lp_model.row_idx.(k) in
    row_start.(i + 1) <- row_start.(i + 1) + 1
  done;
  for i = 0 to m - 1 do
    row_start.(i + 1) <- row_start.(i + 1) + row_start.(i)
  done;
  let fill = Array.copy row_start in
  for j = 0 to n - 1 do
    for k = csc.Lp_model.col_start.(j) to csc.Lp_model.col_start.(j + 1) - 1 do
      let i = csc.Lp_model.row_idx.(k) in
      row_col.(fill.(i)) <- j;
      row_val.(fill.(i)) <- csc.Lp_model.values.(k);
      fill.(i) <- fill.(i) + 1
    done
  done;
  let eta_limit =
    match eta_limit with Some _ as l -> l | None -> eta_limit_env ()
  in
  {
    n;
    m;
    ntot;
    model;
    csc = Lp_model.csc model;
    lo;
    up;
    cost;
    b;
    vstat = Array.make ntot at_lower;
    bas = Array.make m 0;
    basis = Basis.create ?eta_limit m;
    xb = Array.make m 0.;
    xn = Array.make ntot 0.;
    last_status = None;
    w = Array.make m 0.;
    rho = Array.make m 0.;
    y = Array.make m 0.;
    bt = Array.make m 0.;
    row_start;
    row_col;
    row_val;
    asv = Sparse.Svec.create ntot;
    d = Array.make ntot 0.;
    d_valid = false;
    gamma = Array.make ntot 1.;
    sec_size;
    nsec;
    psec = 0;
    health = Health.make ?thresholds m;
    hphase = phase_setup;
    hiter = 0;
  }

(* Threshold trip -> reproducible snapshot (model + basis + variable
   statuses + trip metadata), so the failing LP can be replayed by
   [flexile doctor --from-dump].  Gated on FLEXILE_HEALTH_DUMP inside
   [Health.write_dump]; the copies happen only on a trip. *)
let dump_on_trip st reasons =
  match Health.dump_dir () with
  | None -> ()
  | Some _ ->
      ignore
        (Health.write_dump
           {
             Health.d_reasons = reasons;
             d_phase = st.hphase;
             d_iteration = st.hiter;
             d_eta_limit = eta_limit_env ();
             d_model = st.model;
             d_basis = Array.copy st.bas;
             d_vstat = Array.copy st.vstat;
           })

let make_sp ?eta_limit ?thresholds model =
  let st = make_sp ?eta_limit ?thresholds model in
  Health.set_on_trip st.health (dump_on_trip st);
  st

(* Iterate over the (row, coefficient) entries of column [j]. *)
let col_iter st j f =
  if j < st.n then begin
    let c = st.csc in
    for k = c.Lp_model.col_start.(j) to c.Lp_model.col_start.(j + 1) - 1 do
      f c.Lp_model.row_idx.(k) c.Lp_model.values.(k)
    done
  end
  else begin
    let i = if j < st.n + st.m then j - st.n else j - st.n - st.m in
    f i 1.0
  end

(* Dot of a dense m-vector with column j. *)
let col_dot st y j =
  let s = ref 0. in
  col_iter st j (fun i a -> s := !s +. (y.(i) *. a));
  !s

(* w := B^-1 A_j (FTRAN through the factors + eta file). *)
let ftran st j w =
  Array.fill w 0 st.m 0.;
  col_iter st j (fun r a -> w.(r) <- w.(r) +. a);
  Basis.ftran st.basis w

(* y := costs_B B^-1 (BTRAN). *)
let[@lint.noalloc] btran st costs y =
  for k = 0 to st.m - 1 do
    y.(k) <- costs.(st.bas.(k))
  done;
  Basis.btran st.basis y

(* asv := A^T rho over every column (structural via the CSR mirror,
   slack and artificial unit columns directly), visiting only the rows
   where [rho] is nonzero.  This is the pivot-row product the pricing
   updates and the dual ratio test need; iterating its pattern instead
   of all [ntot] columns is what makes a pivot cost proportional to
   the pivot row's fill. *)
let[@lint.noalloc] scatter_alpha st rho =
  let sv = st.asv in
  Sparse.Svec.clear sv;
  for i = 0 to st.m - 1 do
    let ri = rho.(i) in
    if Float_cmp.nonzero ri then begin
      for c = st.row_start.(i) to st.row_start.(i + 1) - 1 do
        Sparse.Svec.add sv st.row_col.(c) (ri *. st.row_val.(c))
      done;
      Sparse.Svec.add sv (st.n + i) ri;
      Sparse.Svec.add sv (st.n + st.m + i) ri
    end
  done

(* Recompute basic values from scratch:
   xb = B^-1 (b - sum_{nonbasic j} A_j xn_j). *)
let recompute_xb st =
  Array.blit st.b 0 st.bt 0 st.m;
  for j = 0 to st.ntot - 1 do
    if st.vstat.(j) <> basic && Float_cmp.nonzero st.xn.(j) then
      col_iter st j (fun i a -> st.bt.(i) <- st.bt.(i) -. (a *. st.xn.(j)))
  done;
  Basis.ftran st.basis st.bt;
  Array.blit st.bt 0 st.xb 0 st.m

(* ------------------------------------------------------------------ *)
(* Health sampling (DESIGN.md section 15): per-refactorization plus    *)
(* one sample at extraction, so the pivot loops stay noalloc and the   *)
(* answer basis is always measured even when no refactorization fired  *)
(* mid-solve (small LPs rarely exhaust the eta limit).                 *)
(* ------------------------------------------------------------------ *)

let health_active st = Trace.enabled () || Health.capture st.health

(* Eta-file epoch stats, read *before* [Basis.factor] resets them. *)
let eta_epoch_of st =
  let b = st.basis in
  {
    Health.ee_len = Basis.eta_count b;
    ee_nnz = Basis.eta_nnz b;
    ee_rejections = Basis.eta_rejections b;
    ee_growth = Basis.eta_growth b;
    ee_min_diag = Basis.eta_min_diag b;
  }

let health_sample st ~kind ~eta ~patched =
  if Health.sample_due st.health then begin
  (* row-space b~ = b - N x_N into the scratch [bt] (recompute_xb uses
     the same accumulation but immediately FTRANs it away) *)
  Array.blit st.b 0 st.bt 0 st.m;
  for j = 0 to st.ntot - 1 do
    if st.vstat.(j) <> basic && Float_cmp.nonzero st.xn.(j) then
      col_iter st j (fun i a -> st.bt.(i) <- st.bt.(i) -. (a *. st.xn.(j)))
  done;
  Health.sample st.health ~basis:st.basis ~kind ~phase:st.hphase
    ~iteration:st.hiter
    ~col:(fun pos f -> col_iter st st.bas.(pos) f)
    ~cb:(fun pos -> st.cost.(st.bas.(pos)))
    ~btilde:st.bt ~xb:st.xb ~eta ~patched
  end

(* Rebuild the LU factorization of the recorded basis.  A singular or
   numerically dependent basis is not an error: [Basis.factor] patches
   the dependent positions with slack unit columns and we repair the
   recorded basis to match (the evicted variable goes to a bound), then
   let the simplex iterate onward from the repaired point. *)
let refactorize st =
  Trace.incr c_refactorizations;
  Trace.observe h_eta_at_refactor (float_of_int (Basis.eta_count st.basis));
  let active = health_active st in
  let eta = if active then eta_epoch_of st else Health.empty_epoch in
  let patched =
    Trace.with_span t_factor @@ fun () ->
    Basis.factor st.basis ~col:(fun pos f -> col_iter st st.bas.(pos) f)
  in
  List.iter
    (fun (pos, row) ->
      Trace.incr c_basis_repairs;
      let q = st.bas.(pos) in
      if st.lo.(q) > neg_infinity then begin
        st.vstat.(q) <- at_lower;
        st.xn.(q) <- st.lo.(q)
      end
      else if st.up.(q) < infinity then begin
        st.vstat.(q) <- at_upper;
        st.xn.(q) <- st.up.(q)
      end
      else begin
        st.vstat.(q) <- free;
        st.xn.(q) <- 0.
      end;
      (* row was unpivoted, so its slack cannot currently be basic *)
      let s = st.n + row in
      st.bas.(pos) <- s;
      st.vstat.(s) <- basic)
    patched;
  recompute_xb st;
  if patched <> [] then st.d_valid <- false;
  if active then health_sample st ~kind:Health.Refactor ~eta ~patched;
  patched <> []

(* Append the pivot (entering column image [w], leaving position [r])
   to the eta file; on a numerically hopeless eta pivot rebuild the
   factorization of the already-updated recorded basis instead.
   Returns true when the basis was repaired (duals must be rebuilt). *)
let update_basis st r =
  if Basis.update st.basis ~r ~w:st.w then begin
    Trace.incr c_eta_updates;
    if Basis.needs_refactor st.basis then refactorize st else false
  end
  else refactorize st

(* ------------------------------------------------------------------ *)
(* Primal simplex iterations with cost vector [costs].                 *)
(* ------------------------------------------------------------------ *)

type primal_result = P_optimal | P_unbounded | P_iter_limit

let primal_loop st costs ~iter_limit iter_count =
  let m = st.m in
  let y = st.y and w = st.w and rho = st.rho in
  (* reduced costs, maintained incrementally (O(nnz) per pivot instead
     of a BTRAN per iteration) and recomputed periodically; devex
     weights reset whenever the reduced costs are rebuilt exactly *)
  let d = st.d and gamma = st.gamma in
  let recompute_d () =
    btran st costs y;
    for j = 0 to st.ntot - 1 do
      if st.vstat.(j) <> basic then d.(j) <- costs.(j) -. col_dot st y j
      else d.(j) <- 0.;
      gamma.(j) <- 1.
    done
  in
  st.d_valid <- false;
  recompute_d ();
  let degen = ref 0 in
  (* stall detection: longest run of zero-step ratio tests and the
     Bland dwell, one integer compare per iteration (DESIGN.md s15) *)
  let stall_lim = (Health.thresholds st.health).Health.stall_limit in
  let iters0 = !iter_count in
  let max_run = ref 0 and bland_iters = ref 0 in
  let result = ref None in
  while !result = None do
    if !iter_count >= iter_limit then result := Some P_iter_limit
    else begin
      incr iter_count;
      st.hiter <- !iter_count;
      if !iter_count mod 4096 = 0 then begin
        recompute_xb st;
        recompute_d ()
      end;
      let bland = !degen > degen_threshold in
      if bland then incr bland_iters;
      (* --- pricing: choose entering variable --- *)
      let enter = ref (-1) and enter_dir = ref 1. and best = ref 0. in
      let consider j dj =
        let stt = st.vstat.(j) in
        if stt <> basic && st.lo.(j) < st.up.(j) then begin
          let try_dir dir score =
            if score > opt_tol then
              if bland then begin
                if !enter = -1 || j < !enter then begin
                  enter := j;
                  enter_dir := dir;
                  best := score
                end
              end
              else begin
                (* devex: steepest reduced cost in the reference frame *)
                let dscore = score *. score /. gamma.(j) in
                if dscore > !best then begin
                  enter := j;
                  enter_dir := dir;
                  best := dscore
                end
              end
          in
          if stt = at_lower then try_dir 1. (-.dj)
          else if stt = at_upper then try_dir (-1.) dj
          else begin
            (* free: move in the improving direction *)
            try_dir 1. (-.dj);
            try_dir (-1.) dj
          end
        end
      in
      if bland then
        for j = 0 to st.ntot - 1 do
          if st.vstat.(j) <> basic then consider j d.(j)
        done
      else begin
        (* partial pricing: cyclic scan of static sections, stopping at
           the first section that yields a candidate *)
        let scanned = ref 0 in
        while !enter = -1 && !scanned < st.nsec do
          let s0 = (st.psec + !scanned) mod st.nsec in
          let jhi = min st.ntot ((s0 + 1) * st.sec_size) - 1 in
          for j = s0 * st.sec_size to jhi do
            if st.vstat.(j) <> basic then consider j d.(j)
          done;
          (* advance the cursor past the section that produced the
             candidate: sticking to a section while it keeps yielding
             (degenerate) candidates starves the rest of the matrix and
             stalls phase 1 on massively degenerate vertices *)
          if !enter <> -1 then st.psec <- (s0 + 1) mod st.nsec;
          incr scanned
        done
      end;
      if !enter = -1 then begin
        (* confirm with exact reduced costs before declaring optimal *)
        recompute_d ();
        let confirm = ref (-1) in
        for j = 0 to st.ntot - 1 do
          if !confirm = -1 && st.vstat.(j) <> basic && st.lo.(j) < st.up.(j)
          then begin
            let stt = st.vstat.(j) in
            if
              (stt = at_lower && d.(j) < -.opt_tol)
              || (stt = at_upper && d.(j) > opt_tol)
              || (stt = free && Float.abs d.(j) > opt_tol)
            then confirm := j
          end
        done;
        if !confirm = -1 then result := Some P_optimal
      end
      else begin
        let j = !enter and s = !enter_dir in
        ftran st j w;
        (* --- ratio test --- *)
        (* Basic value i changes at rate (-. s *. w.(i)) per unit step.
           Ties are normally broken toward the largest pivot magnitude
           (stability); under the Bland fallback they must be broken by
           smallest leaving variable index instead — Bland's rule only
           guarantees termination when BOTH the entering and the leaving
           choice use the smallest-index rule. *)
        let tmax = ref infinity and leave = ref (-1) and leave_to_up = ref false in
        let better i ti =
          ti < !tmax -. 1e-12
          || ti < !tmax +. 1e-12
             && (!leave = -1
                ||
                if bland then st.bas.(i) < st.bas.(!leave)
                else Float.abs w.(i) > Float.abs w.(!leave))
        in
        for i = 0 to m - 1 do
          let rate = -.s *. w.(i) in
          if rate < -.pivot_tol then begin
            let lb = st.lo.(st.bas.(i)) in
            if lb > neg_infinity then begin
              let ti = (st.xb.(i) -. lb) /. -.rate in
              let ti = if ti < 0. then 0. else ti in
              if better i ti then begin
                tmax := ti;
                leave := i;
                leave_to_up := false
              end
            end
          end
          else if rate > pivot_tol then begin
            let ub = st.up.(st.bas.(i)) in
            if ub < infinity then begin
              let ti = (ub -. st.xb.(i)) /. rate in
              let ti = if ti < 0. then 0. else ti in
              if better i ti then begin
                tmax := ti;
                leave := i;
                leave_to_up := true
              end
            end
          end
        done;
        (* Bound-flip possibility for the entering variable itself. *)
        let range = st.up.(j) -. st.lo.(j) in
        if range < !tmax then begin
          (* flip: move to the opposite bound, no basis change *)
          let t = range in
          for i = 0 to m - 1 do
            st.xb.(i) <- st.xb.(i) -. (s *. w.(i) *. t)
          done;
          if s > 0. then begin
            st.vstat.(j) <- at_upper;
            st.xn.(j) <- st.up.(j)
          end
          else begin
            st.vstat.(j) <- at_lower;
            st.xn.(j) <- st.lo.(j)
          end;
          degen := 0
        end
        else if !leave = -1 then result := Some P_unbounded
        else begin
          let r = !leave and t = !tmax in
          if t <= 1e-10 then begin
            incr degen;
            if !degen > !max_run then max_run := !degen;
            if !degen = stall_lim then
              Health.note_stall st.health ~phase:st.hphase
                ~iteration:!iter_count ~run:!degen
          end
          else degen := 0;
          let entering_value = st.xn.(j) +. (s *. t) in
          for i = 0 to m - 1 do
            if i <> r then st.xb.(i) <- st.xb.(i) -. (s *. w.(i) *. t)
          done;
          let q = st.bas.(r) in
          st.vstat.(q) <- (if !leave_to_up then at_upper else at_lower);
          st.xn.(q) <- (if !leave_to_up then st.up.(q) else st.lo.(q));
          (* incremental dual/devex update with the pre-pivot row r of
             B^-1: d'_k = d_k - (d_j / w_r) (rho . A_k) and
             gamma'_k = max(gamma_k, (alpha_k / w_r)^2 gamma_j) *)
          Basis.btran_unit st.basis r rho;
          let alpha_j = w.(r) in
          let theta = d.(j) /. alpha_j in
          let gscale = gamma.(j) /. (alpha_j *. alpha_j) in
          st.bas.(r) <- j;
          st.vstat.(j) <- basic;
          st.xb.(r) <- entering_value;
          let repaired = update_basis st r in
          if repaired then begin
            recompute_xb st;
            recompute_d ()
          end
          else begin
            scatter_alpha st rho;
            Sparse.Svec.iter st.asv (fun k alpha_k ->
                if st.vstat.(k) <> basic && k <> q
                   && Float_cmp.nonzero alpha_k
                then begin
                  if Float_cmp.nonzero theta then
                    d.(k) <- d.(k) -. (theta *. alpha_k);
                  let cand = alpha_k *. alpha_k *. gscale in
                  if cand > gamma.(k) then gamma.(k) <- cand
                end);
            d.(q) <- -.theta;
            gamma.(q) <- Float.max gscale 1.;
            d.(j) <- 0.
          end
        end
      end
    end
  done;
  (* the optimal exit passed the exact confirmation, so for phase-2
     costs [d] is the exact reduced-cost vector of the final basis *)
  (match !result with
  | Some P_optimal when costs == st.cost -> st.d_valid <- true
  | _ -> ());
  Health.note_loop_end st.health ~phase:st.hphase
    ~iterations:(!iter_count - iters0) ~max_run:!max_run ~bland:!bland_iters;
  match !result with Some r -> r | None -> assert false

(* ------------------------------------------------------------------ *)
(* Cold start: phase 1 from the slack basis.                           *)
(* ------------------------------------------------------------------ *)

let setup_cold st =
  st.hphase <- phase_setup;
  st.hiter <- 0;
  let n = st.n and m = st.m in
  (* structural nonbasic at the bound closest to zero *)
  for j = 0 to n - 1 do
    if st.lo.(j) > neg_infinity then begin
      st.vstat.(j) <- at_lower;
      st.xn.(j) <- st.lo.(j)
    end
    else if st.up.(j) < infinity then begin
      st.vstat.(j) <- at_upper;
      st.xn.(j) <- st.up.(j)
    end
    else begin
      st.vstat.(j) <- free;
      st.xn.(j) <- 0.
    end
  done;
  (* slacks basic (identity basis, factored trivially with no
     patches); artificials fixed nonbasic *)
  for i = 0 to m - 1 do
    st.bas.(i) <- n + i;
    st.vstat.(n + i) <- basic;
    st.lo.(n + m + i) <- 0.;
    st.up.(n + m + i) <- 0.;
    st.vstat.(n + m + i) <- at_lower;
    st.xn.(n + m + i) <- 0.
  done;
  st.psec <- 0;
  ignore (refactorize st)

(* Phase 1: replace infeasible basic slacks by artificials; returns the
   phase-1 cost vector, or None if the start is already feasible.  The
   slack -> artificial swap keeps the basis matrix (and hence the LU
   factorization) unchanged: both are the unit column of their row. *)
let setup_phase1 st =
  let n = st.n and m = st.m in
  let costs = Array.make st.ntot 0. in
  let needed = ref false in
  for i = 0 to m - 1 do
    let sj = n + i in
    let v = st.xb.(i) in
    if v < st.lo.(sj) -. feas_tol || v > st.up.(sj) +. feas_tol then begin
      needed := true;
      let aj = n + m + i in
      (* slack leaves to its nearest bound; artificial absorbs residual *)
      let bound = if v > st.up.(sj) then st.up.(sj) else st.lo.(sj) in
      st.vstat.(sj) <- (if v > st.up.(sj) then at_upper else at_lower);
      st.xn.(sj) <- bound;
      let residual = v -. bound in
      if residual > 0. then begin
        st.lo.(aj) <- 0.;
        st.up.(aj) <- infinity;
        costs.(aj) <- 1.
      end
      else begin
        st.lo.(aj) <- neg_infinity;
        st.up.(aj) <- 0.;
        costs.(aj) <- -1.
      end;
      st.bas.(i) <- aj;
      st.vstat.(aj) <- basic;
      st.xb.(i) <- residual
    end
  done;
  if !needed then Some costs else None

let close_phase1 st =
  let n = st.n and m = st.m in
  for i = 0 to m - 1 do
    let aj = n + m + i in
    st.lo.(aj) <- 0.;
    st.up.(aj) <- 0.;
    if st.vstat.(aj) <> basic then begin
      st.vstat.(aj) <- at_lower;
      st.xn.(aj) <- 0.
    end
  done

let phase1_obj st costs =
  let s = ref 0. in
  for i = 0 to st.m - 1 do
    let c = costs.(st.bas.(i)) in
    if Float_cmp.nonzero c then s := !s +. (c *. st.xb.(i))
  done;
  !s

let extract_solution st ~status ~iterations =
  let n = st.n and m = st.m in
  let x = Array.make n 0. in
  for j = 0 to n - 1 do
    x.(j) <- st.xn.(j)
  done;
  for i = 0 to m - 1 do
    if st.bas.(i) < n then x.(st.bas.(i)) <- st.xb.(i)
  done;
  let y = Array.make m 0. in
  btran st st.cost y;
  let reduced = Array.make n 0. in
  let bound_term = ref 0. in
  for j = 0 to n - 1 do
    let d = st.cost.(j) -. col_dot st y j in
    reduced.(j) <- d;
    if st.vstat.(j) <> basic && Float_cmp.nonzero st.xn.(j) then
      bound_term := !bound_term +. (d *. st.xn.(j))
  done;
  let obj = ref 0. in
  for j = 0 to n - 1 do
    obj := !obj +. (st.cost.(j) *. x.(j))
  done;
  Trace.add c_iterations iterations;
  Trace.observe h_iterations (float_of_int iterations);
  st.last_status <- Some status;
  {
    status;
    obj = !obj;
    x;
    row_duals = y;
    reduced_costs = reduced;
    bound_term = !bound_term;
    iterations;
  }

(* Extraction with a final health sample: small LPs rarely exhaust the
   eta limit mid-solve, so without this the observatory would only ever
   see the trivial slack basis of [setup_cold].  The *answer* basis is
   the one whose residuals and conditioning decide whether the solution
   can be trusted. *)
let finish_solve st ~status ~iterations =
  if health_active st then
    health_sample st ~kind:Health.Final ~eta:(eta_epoch_of st) ~patched:[];
  extract_solution st ~status ~iterations

let default_iter_limit st = 50_000 + (50 * (st.n + st.m))

let cold_solve ?iter_limit st =
  Trace.incr c_cold_solves;
  let iter_limit =
    match iter_limit with Some l -> l | None -> default_iter_limit st
  in
  setup_cold st;
  let iters = ref 0 in
  let phase1_failed =
    match setup_phase1 st with
    | None -> false
    | Some p1costs -> (
        st.hphase <- phase_primal1;
        match primal_loop st p1costs ~iter_limit iters with
        | P_unbounded ->
            (* phase-1 objective is bounded below by 0; treat as numeric
               trouble and refactorize once *)
            ignore (refactorize st);
            phase1_obj st p1costs > feas_tol *. 10.
        | P_iter_limit -> true
        | P_optimal -> phase1_obj st p1costs > feas_tol *. 10.)
  in
  if phase1_failed then begin
    let status =
      if !iters >= iter_limit then Iteration_limit else Infeasible
    in
    finish_solve st ~status ~iterations:!iters
  end
  else begin
    close_phase1 st;
    recompute_xb st;
    st.hphase <- phase_primal2;
    match primal_loop st st.cost ~iter_limit iters with
    | P_optimal ->
        (* polish: guard against drift of the updated factors *)
        recompute_xb st;
        let bad = ref false in
        for i = 0 to st.m - 1 do
          let q = st.bas.(i) in
          if
            st.xb.(i) < st.lo.(q) -. (10. *. feas_tol)
            || st.xb.(i) > st.up.(q) +. (10. *. feas_tol)
          then bad := true
        done;
        if !bad then begin
          ignore (refactorize st);
          ignore (primal_loop st st.cost ~iter_limit iters)
        end;
        finish_solve st ~status:Optimal ~iterations:!iters
    | P_unbounded -> finish_solve st ~status:Unbounded ~iterations:!iters
    | P_iter_limit ->
        finish_solve st ~status:Iteration_limit ~iterations:!iters
  end

(* ------------------------------------------------------------------ *)
(* Dual simplex for RHS-only changes.                                  *)
(* ------------------------------------------------------------------ *)

type dual_result = D_optimal | D_infeasible | D_iter_limit

let dual_loop st ~iter_limit iters =
  let m = st.m in
  let rho = st.rho and w = st.w and y = st.y in
  let d = st.d in
  let recompute_duals () =
    btran st st.cost y;
    for j = 0 to st.ntot - 1 do
      if st.vstat.(j) <> basic then d.(j) <- st.cost.(j) -. col_dot st y j
    done;
    st.d_valid <- true
  in
  (* a warm restart from an optimal basis inherits its exact reduced
     costs; rebuild only when the basis has moved under us *)
  if not st.d_valid then recompute_duals ();
  let zero_steps = ref 0 in
  let stall_lim = (Health.thresholds st.health).Health.stall_limit in
  let iters0 = !iters in
  let max_run = ref 0 and bland_iters = ref 0 in
  let result = ref None in
  while !result = None do
    if !iters >= iter_limit then result := Some D_iter_limit
    else begin
      incr iters;
      st.hiter <- !iters;
      if !iters mod 4096 = 0 then begin
        recompute_xb st;
        recompute_duals ()
      end;
      (* --- leaving: most violated basic variable --- *)
      let r = ref (-1) and viol = ref feas_tol and above = ref false in
      for i = 0 to m - 1 do
        let q = st.bas.(i) in
        let below_v = st.lo.(q) -. st.xb.(i) in
        let above_v = st.xb.(i) -. st.up.(q) in
        if below_v > !viol then begin
          viol := below_v;
          r := i;
          above := false
        end;
        if above_v > !viol then begin
          viol := above_v;
          r := i;
          above := true
        end
      done;
      if !r = -1 then result := Some D_optimal
      else begin
        let r = !r in
        Basis.btran_unit st.basis r rho;
        (* pivot-row entries alpha_k = rho . A_k; only columns in the
           scatter pattern can pass the pivot tolerance, so the ratio
           test and the dual update below visit just the pattern *)
        scatter_alpha st rho;
        let bland = !zero_steps > degen_threshold in
        if bland then incr bland_iters;
        (* --- entering: dual ratio test --- *)
        let enter = ref (-1) and best_ratio = ref infinity and best_alpha = ref 0. in
        Sparse.Svec.iter st.asv (fun j alpha ->
            let stt = st.vstat.(j) in
            if stt <> basic && st.lo.(j) < st.up.(j)
               && Float.abs alpha > pivot_tol
            then begin
              let candidate =
                if !above then
                  (stt = at_lower && alpha > 0.)
                  || (stt = at_upper && alpha < 0.)
                  || stt = free
                else
                  (stt = at_lower && alpha < 0.)
                  || (stt = at_upper && alpha > 0.)
                  || stt = free
              in
              if candidate then begin
                let ratio = Float.abs d.(j) /. Float.abs alpha in
                (* Bland anti-cycling still honors the dual ratio test:
                   among (near-)minimal ratios take the smallest index,
                   otherwise dual feasibility would be destroyed. *)
                let better =
                  ratio < !best_ratio -. 1e-12
                  || ratio < !best_ratio +. 1e-12
                     &&
                     if bland then !enter = -1 || j < !enter
                     else Float.abs alpha > Float.abs !best_alpha
                in
                if better then begin
                  enter := j;
                  best_ratio := Float.min ratio !best_ratio;
                  best_alpha := alpha
                end
              end
            end);
        if !enter = -1 then result := Some D_infeasible
        else begin
          let j = !enter in
          if !best_ratio <= 1e-10 then begin
            incr zero_steps;
            if !zero_steps > !max_run then max_run := !zero_steps;
            if !zero_steps = stall_lim then
              Health.note_stall st.health ~phase:st.hphase ~iteration:!iters
                ~run:!zero_steps
          end
          else zero_steps := 0;
          let alpha_j = !best_alpha in
          let q = st.bas.(r) in
          let target = if !above then st.up.(q) else st.lo.(q) in
          let delta = (st.xb.(r) -. target) /. alpha_j in
          ftran st j w;
          for i = 0 to m - 1 do
            if i <> r then st.xb.(i) <- st.xb.(i) -. (w.(i) *. delta)
          done;
          st.vstat.(q) <- (if !above then at_upper else at_lower);
          st.xn.(q) <- target;
          st.bas.(r) <- j;
          st.vstat.(j) <- basic;
          st.xb.(r) <- st.xn.(j) +. delta;
          let theta = d.(j) /. alpha_j in
          let repaired = update_basis st r in
          if repaired then begin
            recompute_xb st;
            recompute_duals ()
          end
          else begin
            (* update duals: d'_k = d_k - (d_j/alpha_j) * alpha_k *)
            if Float_cmp.nonzero theta then
              Sparse.Svec.iter st.asv (fun k alpha_k ->
                  if st.vstat.(k) <> basic then
                    d.(k) <- d.(k) -. (theta *. alpha_k));
            d.(q) <- -.theta;
            d.(j) <- 0.
          end
        end
      end
    end
  done;
  Health.note_loop_end st.health ~phase:st.hphase
    ~iterations:(!iters - iters0) ~max_run:!max_run ~bland:!bland_iters;
  match !result with Some r -> r | None -> assert false

(* A posteriori optimality check for the dual simplex: the final basis
   must be dual feasible under exactly-recomputed reduced costs.  If
   drift broke it, fall back to a cold solve rather than return a
   primal-feasible but suboptimal point. *)
let dual_feasible st =
  let y = st.y in
  btran st st.cost y;
  let ok = ref true in
  for j = 0 to st.ntot - 1 do
    if !ok && st.vstat.(j) <> basic && st.lo.(j) < st.up.(j) then begin
      let d = st.cost.(j) -. col_dot st y j in
      if st.vstat.(j) = at_lower && d < -1e-6 then ok := false
      else if st.vstat.(j) = at_upper && d > 1e-6 then ok := false
      else if st.vstat.(j) = free && Float.abs d > 1e-6 then ok := false
    end
  done;
  !ok

let resolve_rhs_sp ?iter_limit st rhs =
  if Array.length rhs <> st.m then invalid_arg "Simplex.resolve_rhs";
  Array.blit rhs 0 st.b 0 st.m;
  let iter_limit =
    match iter_limit with Some l -> l | None -> default_iter_limit st
  in
  let cold () = cold_solve ~iter_limit st in
  match st.last_status with
  | Some Optimal -> (
      Trace.incr c_warm_attempts;
      recompute_xb st;
      st.hphase <- phase_dual;
      let iters = ref 0 in
      match dual_loop st ~iter_limit iters with
      | D_optimal ->
          if dual_feasible st then begin
            Trace.incr c_warm_hits;
            (* elevated instrumentation only: sampling every warm
               resolve would tax the sweep hot path for little signal *)
            if Health.capture st.health then
              health_sample st ~kind:Health.Final ~eta:(eta_epoch_of st)
                ~patched:[];
            extract_solution st ~status:Optimal ~iterations:!iters
          end
          else begin
            Trace.incr c_warm_fallbacks;
            Health.note_dual_guard_trip ();
            Log.debug (fun m ->
                m "dual simplex drifted out of dual feasibility; cold re-solve");
            cold ()
          end
      | D_infeasible ->
          (* confirm with a cold solve to guard against numerics *)
          let sol = cold () in
          if sol.status = Optimal then begin
            Trace.incr c_warm_fallbacks;
            sol
          end
          else begin
            (* the warm dual correctly proved infeasibility *)
            Trace.incr c_warm_hits;
            extract_solution st ~status:Infeasible ~iterations:!iters
          end
      | D_iter_limit ->
          Trace.incr c_warm_fallbacks;
          cold ())
  | _ -> cold ()

let solve_warm_sp ?iter_limit st =
  match st.last_status with
  | Some Optimal ->
      (* model RHS may have been mutated by the caller through the
         handle's captured copy; re-read is the caller's duty via
         [resolve_rhs].  Here just re-run from the current state. *)
      resolve_rhs_sp ?iter_limit st (Array.copy st.b)
  | _ -> cold_solve ?iter_limit st

let extend_sp st model =
  let st2 = make_sp model in
  if st2.n <> st.n || st2.m < st.m then
    invalid_arg "Simplex.extend: model must only gain rows";
  match st.last_status with
  | Some Optimal -> (
      let remap j =
        if j < st.n then j
        else if j < st.n + st.m then st2.n + (j - st.n)
        else st2.n + st2.m + (j - st.n - st.m)
      in
      for j = 0 to st.n - 1 do
        st2.vstat.(j) <- st.vstat.(j);
        st2.xn.(j) <- st.xn.(j)
      done;
      for i = 0 to st.m - 1 do
        let os = st.n + i and oa = st.n + st.m + i in
        st2.vstat.(remap os) <- st.vstat.(os);
        st2.xn.(remap os) <- st.xn.(os);
        st2.vstat.(remap oa) <- at_lower;
        st2.xn.(remap oa) <- 0.
      done;
      for i = 0 to st.m - 1 do
        let b = remap st.bas.(i) in
        st2.bas.(i) <- b;
        st2.vstat.(b) <- basic
      done;
      for i = st.m to st2.m - 1 do
        st2.bas.(i) <- st2.n + i;
        st2.vstat.(st2.n + i) <- basic
      done;
      (* With the new rows' slacks basic the basis is block
         triangular, [[B, 0], [C, I]]; a fresh sparse factorization is
         cheap (the appended unit columns pivot first) and replaces the
         dense block-inverse construction of the pre-sparse solver. *)
      ignore (refactorize st2);
      (* same costs, appended basic slacks: the old duals remain
         feasible, so flag the state warm for the dual simplex *)
      st2.last_status <- Some Optimal;
      st2)
  | _ -> st2

(* ------------------------------------------------------------------ *)
(* Public interface: sparse by default, the frozen dense reference     *)
(* when FLEXILE_DENSE_SIMPLEX=1 (differential-testing escape hatch).   *)
(* ------------------------------------------------------------------ *)

type t = Sp of sp | Dn of Simplex_dense.t

let dense_selected () =
  match Sys.getenv_opt "FLEXILE_DENSE_SIMPLEX" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let of_dense_status = function
  | Simplex_dense.Optimal -> Optimal
  | Simplex_dense.Infeasible -> Infeasible
  | Simplex_dense.Unbounded -> Unbounded
  | Simplex_dense.Iteration_limit -> Iteration_limit

let of_dense_solution (s : Simplex_dense.solution) =
  {
    status = of_dense_status s.Simplex_dense.status;
    obj = s.Simplex_dense.obj;
    x = s.Simplex_dense.x;
    row_duals = s.Simplex_dense.row_duals;
    reduced_costs = s.Simplex_dense.reduced_costs;
    bound_term = s.Simplex_dense.bound_term;
    iterations = s.Simplex_dense.iterations;
  }

let make model =
  if dense_selected () then Dn (Simplex_dense.make model)
  else Sp (make_sp model)

let solve_warm ?iter_limit t =
  match t with
  | Sp st -> solve_warm_sp ?iter_limit st
  | Dn d -> of_dense_solution (Simplex_dense.solve_warm ?iter_limit d)

let resolve_rhs ?iter_limit t rhs =
  Trace.in_span sp_resolve @@ fun () ->
  match t with
  | Sp st -> resolve_rhs_sp ?iter_limit st rhs
  | Dn d -> of_dense_solution (Simplex_dense.resolve_rhs ?iter_limit d rhs)

let extend t model =
  match t with
  | Sp st -> Sp (extend_sp st model)
  | Dn d -> Dn (Simplex_dense.extend d model)

let health = function Sp st -> Some st.health | Dn _ -> None

(* ------------------------------------------------------------------ *)
(* Elevated-instrumentation entry points for [Doctor].                 *)
(* ------------------------------------------------------------------ *)

let solve_doctor ?iter_limit ?eta_limit ?thresholds model =
  let st = make_sp ?eta_limit ?thresholds model in
  Health.set_capture st.health true;
  let sol = cold_solve ?iter_limit st in
  (sol, st.health)

let diagnose_basis ?eta_limit ?thresholds ?(phase = 0) ?(iteration = 0) model
    ~bas ~vstat =
  let st = make_sp ?eta_limit ?thresholds model in
  if Array.length bas <> st.m || Array.length vstat <> st.ntot then
    invalid_arg "Simplex.diagnose_basis: dimension mismatch";
  Health.set_capture st.health true;
  Array.blit bas 0 st.bas 0 st.m;
  Array.blit vstat 0 st.vstat 0 st.ntot;
  for j = 0 to st.ntot - 1 do
    let s = st.vstat.(j) in
    if s = at_lower then
      st.xn.(j) <- (if st.lo.(j) > neg_infinity then st.lo.(j) else 0.)
    else if s = at_upper then
      st.xn.(j) <- (if st.up.(j) < infinity then st.up.(j) else 0.)
    else if s = free then st.xn.(j) <- 0.
  done;
  st.hphase <- phase;
  st.hiter <- iteration;
  ignore (refactorize st);
  st.health

let solve ?iter_limit model =
  Trace.in_span sp_solve @@ fun () ->
  if dense_selected () then
    of_dense_solution (Simplex_dense.solve ?iter_limit model)
  else begin
    let st = make_sp model in
    let sol = cold_solve ?iter_limit st in
    (if sol.status = Optimal then
       let viol = Lp_model.max_violation model sol.x in
       if viol > 1e-5 then
         Log.warn (fun m ->
             m "solution of %s violates constraints by %g"
               (Lp_model.name model) viol));
    sol
  end
