(** Numerical health observatory for the sparse revised simplex.

    The solver feeds this module once per refactorization and once at
    solution extraction — never per pivot, so the noalloc pivot kernels
    stay untouched.  Each sample measures the relative primal/dual
    residuals of the current factorization, a Hager-style 1-norm
    condition estimate, LU element growth, near-singular pivot rows and
    the eta-file epoch statistics; the simplex loops additionally
    report degeneracy stalls and Bland-fallback dwell.  Everything
    flows into [Trace] metrics under the [health.] prefix; states
    created with [capture] also keep an in-memory timeline for
    [Doctor].  See DESIGN.md section 15. *)

(** {1 Thresholds} *)

type thresholds = {
  cond_limit : float;  (** condition estimate above this trips *)
  residual_limit : float;  (** relative primal/dual residual limit *)
  growth_limit : float;  (** LU element growth limit *)
  stall_limit : int;  (** consecutive zero-step pivots before a stall *)
  near_singular_rtol : float;  (** [Sparse.Basis.near_singular_rows] rtol *)
}

val default_thresholds : unit -> thresholds
(** Defaults (1e10, 1e-6, 1e8, 120, 1e-7), overridable via the
    [FLEXILE_HEALTH_COND] / [_RESIDUAL] / [_GROWTH] / [_STALL] /
    [_RTOL] environment variables.  See DESIGN.md section 15 for the
    rationale behind each default. *)

(** {1 Samples} *)

type kind = Refactor | Final

type eta_epoch = {
  ee_len : int;  (** etas accumulated when the epoch closed *)
  ee_nnz : int;
  ee_rejections : int;  (** updates refused for a tiny pivot *)
  ee_growth : float;  (** max pivot growth over the epoch's etas *)
  ee_min_diag : float;  (** smallest accepted eta pivot; [infinity] if none *)
}

val empty_epoch : eta_epoch

type sample = {
  s_kind : kind;
  s_phase : int;  (** 0 setup, 1 phase-1, 2 phase-2, 3 dual *)
  s_iteration : int;
  s_primal_res : float;  (** relative [||B x_B - b~||_inf] *)
  s_dual_res : float;  (** relative [||B^T y - c_B||_inf] *)
  s_cond1 : float;  (** Hager estimate of [kappa_1(B)] *)
  s_growth : float;  (** LU element growth [max|U|/max|B|] *)
  s_udiag_min : float;
  s_udiag_max : float;
  s_eta : eta_epoch;  (** stats of the epoch this sample closed *)
  s_near_singular : (int * float) list;  (** [(row, |u_diag|)], ascending *)
  s_patched : (int * int) list;  (** singular positions patched by factor *)
  s_tripped : string list;  (** threshold names exceeded, fixed order *)
}

type stall = { st_phase : int; st_iteration : int; st_run : int }

type loop_note = {
  ln_phase : int;
  ln_iterations : int;
  ln_max_run : int;  (** longest consecutive zero-step run *)
  ln_bland : int;  (** iterations spent under the Bland fallback *)
}

(** {1 State} *)

type state
(** Per-solver-instance health state: scratch vectors, thresholds, and
    the captured timeline.  Not shared across domains — each solver
    template owns one. *)

val make : ?capture:bool -> ?thresholds:thresholds -> int -> state
(** [make m] allocates scratch for an [m]-row basis.  [capture]
    (default false) records the sample/stall/loop timeline in memory —
    the elevated-instrumentation mode [flexile doctor] runs under. *)

val thresholds : state -> thresholds
val capture : state -> bool
val set_capture : state -> bool -> unit

val set_on_trip : state -> (string list -> unit) -> unit
(** Hook invoked (with the tripped threshold names) whenever a sample
    exceeds a threshold; the solver installs the snapshot dumper here. *)

val samples : state -> sample list
(** Captured samples, oldest first.  Empty unless [capture]. *)

val stalls : state -> stall list
val loop_notes : state -> loop_note list

val clear : state -> unit
(** Drops the captured timeline (thresholds and scratch stay). *)

(** {1 Sampling entry points (called by the solver)} *)

val sample_due : state -> bool
(** Sampling-policy gate the solver consults at each opportunity
    (refactorization or extraction).  Always true in capture (doctor)
    mode; in production, true once every [FLEXILE_HEALTH_STRIDE]
    (default 16) opportunities per domain — a full sample costs a
    dozen basis solves, and the stride is what keeps the observatory
    inside its 2% overhead budget (DESIGN.md section 15).  The
    per-domain counter makes the sampled subset schedule-dependent,
    which is why the health.* families sit outside the deterministic
    Prometheus subset.  Calling it advances the stride counter. *)

val sample :
  state ->
  basis:Sparse.Basis.t ->
  kind:kind ->
  phase:int ->
  iteration:int ->
  col:(int -> (int -> float -> unit) -> unit) ->
  cb:(int -> float) ->
  btilde:float array ->
  xb:float array ->
  eta:eta_epoch ->
  patched:(int * int) list ->
  unit
(** Measure the factorized basis: [col pos f] enumerates the basis
    column at [pos]; [cb pos] is the cost of the basic variable there;
    [btilde] is the row-space right-hand side [b - N x_N]; [xb] the
    basic values; [eta] the epoch statistics read before the
    factorization reset them.  Costs a handful of FTRAN/BTRAN solves
    plus O(nnz) scans; must be called at most once per refactorization
    or extraction. *)

val note_stall : state -> phase:int -> iteration:int -> run:int -> unit
(** The solver detected [run] consecutive zero-step ratio tests. *)

val note_loop_end :
  state -> phase:int -> iterations:int -> max_run:int -> bland:int -> unit
(** End-of-loop summary: longest zero-step run and Bland dwell. *)

val note_dual_guard_trip : unit -> unit
(** A warm-started dual solve failed the a-posteriori dual-feasibility
    guard and fell back to a cold solve. *)

(** {1 Reproducible LP dumps}

    When a threshold trips and the [FLEXILE_HEALTH_DUMP] environment
    variable names a directory, the solver writes a self-contained
    snapshot (model, basis, variable statuses, trip metadata) there.
    Floats round-trip through hexadecimal literals, so a replay sees
    the exact bit patterns.  File name is deterministic per model
    ([health-dump-<name>.json]), so repeated trips overwrite rather
    than accumulate. *)

type dump = {
  d_reasons : string list;
  d_phase : int;
  d_iteration : int;
  d_eta_limit : int option;
  d_model : Lp_model.t;
  d_basis : int array;  (** basic variable per position *)
  d_vstat : int array;  (** per-variable status codes *)
}

val dump_dir : unit -> string option
(** The [FLEXILE_HEALTH_DUMP] directory, if set and nonempty. *)

val dump_path : dir:string -> model:Lp_model.t -> string
(** The deterministic snapshot path for [model] under [dir]. *)

val write_dump : dump -> string option
(** Write (or overwrite) the snapshot; [None] when dumping is not
    enabled.  Creates the directory if missing. *)

val read_dump : string -> (dump, string) result

val dump_to_string : dump -> string
(** The serialized form [write_dump] writes, for tests. *)

val model_to_json_string : Lp_model.t -> string

val hex_of_float : float -> string
(** ["%h"] hexadecimal literal; ["inf"]/["-inf"]/["nan"] for the
    non-finite values.  [float_of_hex] inverts it exactly. *)

val float_of_hex : string -> float option
