module Tbl = Flexile_util.Tbl
module Float_cmp = Flexile_util.Float_cmp

type sense = Le | Ge | Eq

type var = int
type row = int

type csc = {
  col_start : int array;
  row_idx : int array;
  values : float array;
}

type t = {
  model_name : string;
  (* variables *)
  mutable nv : int;
  mutable lbs : float array;
  mutable ubs : float array;
  mutable objs : float array;
  mutable vnames : string array;
  (* rows *)
  mutable nr : int;
  mutable senses : sense array;
  mutable rhss : float array;
  mutable rnames : string array;
  (* row-wise sparse storage: per-row arrays of (var, coef) *)
  mutable row_cols : int array array;
  mutable row_vals : float array array;
  mutable nnz : int;
  (* lazily-built column view *)
  mutable csc_cache : csc option;
}

let create ?(name = "lp") () =
  {
    model_name = name;
    nv = 0;
    lbs = Array.make 16 0.;
    ubs = Array.make 16 0.;
    objs = Array.make 16 0.;
    vnames = Array.make 16 "";
    nr = 0;
    senses = Array.make 16 Le;
    rhss = Array.make 16 0.;
    rnames = Array.make 16 "";
    row_cols = Array.make 16 [||];
    row_vals = Array.make 16 [||];
    nnz = 0;
    csc_cache = None;
  }

let name t = t.model_name
let nvars t = t.nv
let nrows t = t.nr

let grow_floats a n default =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) default in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let grow_any a n default =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) default in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let check_bound what x =
  if Float.is_nan x then invalid_arg (Printf.sprintf "Lp_model: NaN %s" what)

let add_var t ?(name = "") ?(lb = 0.) ?(ub = infinity) ?(obj = 0.) () =
  check_bound "lower bound" lb;
  check_bound "upper bound" ub;
  if lb > ub then invalid_arg "Lp_model.add_var: lb > ub";
  let j = t.nv in
  t.lbs <- grow_floats t.lbs (j + 1) 0.;
  t.ubs <- grow_floats t.ubs (j + 1) infinity;
  t.objs <- grow_floats t.objs (j + 1) 0.;
  t.vnames <- grow_any t.vnames (j + 1) "";
  t.lbs.(j) <- lb;
  t.ubs.(j) <- ub;
  t.objs.(j) <- obj;
  t.vnames.(j) <- (if name = "" then "x" ^ string_of_int j else name);
  t.nv <- j + 1;
  t.csc_cache <- None;
  j

let add_vars t n ?(lb = 0.) ?(ub = infinity) ?(obj = 0.) () =
  Array.init n (fun _ -> add_var t ~lb ~ub ~obj ())

let add_row t ?(name = "") sense rhs coeffs =
  check_bound "rhs" rhs;
  let i = t.nr in
  (* Sum duplicates, drop exact zeros, validate indices. *)
  let tbl = Hashtbl.create (List.length coeffs) in
  List.iter
    (fun (v, c) ->
      if v < 0 || v >= t.nv then
        invalid_arg
          (Printf.sprintf "Lp_model.add_row: variable %d out of range" v);
      check_bound "coefficient" c;
      let prev = try Hashtbl.find tbl v with Not_found -> 0. in
      Hashtbl.replace tbl v (prev +. c))
    coeffs;
  let pairs =
    Tbl.sorted_bindings tbl
    |> List.filter (fun (_, c) -> Float_cmp.nonzero c)
  in
  let k = List.length pairs in
  let cols = Array.make k 0 and vals = Array.make k 0. in
  List.iteri
    (fun idx (v, c) ->
      cols.(idx) <- v;
      vals.(idx) <- c)
    pairs;
  t.senses <- grow_any t.senses (i + 1) Le;
  t.rhss <- grow_floats t.rhss (i + 1) 0.;
  t.rnames <- grow_any t.rnames (i + 1) "";
  t.row_cols <- grow_any t.row_cols (i + 1) [||];
  t.row_vals <- grow_any t.row_vals (i + 1) [||];
  t.senses.(i) <- sense;
  t.rhss.(i) <- rhs;
  t.rnames.(i) <- (if name = "" then "r" ^ string_of_int i else name);
  t.row_cols.(i) <- cols;
  t.row_vals.(i) <- vals;
  t.nnz <- t.nnz + k;
  t.nr <- i + 1;
  t.csc_cache <- None;
  i

let check_row t i =
  if i < 0 || i >= t.nr then invalid_arg "Lp_model: row out of range"

let check_var t j =
  if j < 0 || j >= t.nv then invalid_arg "Lp_model: variable out of range"

let set_rhs t i v =
  check_row t i;
  check_bound "rhs" v;
  t.rhss.(i) <- v

let rhs t i =
  check_row t i;
  t.rhss.(i)

let row_sense t i =
  check_row t i;
  t.senses.(i)

let set_obj t j v =
  check_var t j;
  check_bound "objective" v;
  t.objs.(j) <- v

let obj_coef t j =
  check_var t j;
  t.objs.(j)

let set_bounds t j ~lb ~ub =
  check_var t j;
  check_bound "lower bound" lb;
  check_bound "upper bound" ub;
  if lb > ub then invalid_arg "Lp_model.set_bounds: lb > ub";
  t.lbs.(j) <- lb;
  t.ubs.(j) <- ub

let lb t j =
  check_var t j;
  t.lbs.(j)

let ub t j =
  check_var t j;
  t.ubs.(j)

let var_name t j =
  check_var t j;
  t.vnames.(j)

let row_name t i =
  check_row t i;
  t.rnames.(i)

let row_coeffs t i =
  check_row t i;
  let cols = t.row_cols.(i) and vals = t.row_vals.(i) in
  Array.to_list (Array.init (Array.length cols) (fun k -> (cols.(k), vals.(k))))

let csc t =
  match t.csc_cache with
  | Some c -> c
  | None ->
      let counts = Array.make (t.nv + 1) 0 in
      for i = 0 to t.nr - 1 do
        Array.iter (fun j -> counts.(j + 1) <- counts.(j + 1) + 1) t.row_cols.(i)
      done;
      for j = 1 to t.nv do
        counts.(j) <- counts.(j) + counts.(j - 1)
      done;
      let col_start = Array.copy counts in
      let fill = Array.copy counts in
      let row_idx = Array.make t.nnz 0 in
      let values = Array.make t.nnz 0. in
      for i = 0 to t.nr - 1 do
        let cols = t.row_cols.(i) and vals = t.row_vals.(i) in
        for k = 0 to Array.length cols - 1 do
          let j = cols.(k) in
          let pos = fill.(j) in
          row_idx.(pos) <- i;
          values.(pos) <- vals.(k);
          fill.(j) <- pos + 1
        done
      done;
      let c = { col_start; row_idx; values } in
      t.csc_cache <- Some c;
      c

let objective_value t x =
  if Array.length x <> t.nv then invalid_arg "Lp_model.objective_value";
  let s = ref 0. in
  for j = 0 to t.nv - 1 do
    s := !s +. (t.objs.(j) *. x.(j))
  done;
  !s

let row_activity t i x =
  check_row t i;
  let cols = t.row_cols.(i) and vals = t.row_vals.(i) in
  let s = ref 0. in
  for k = 0 to Array.length cols - 1 do
    s := !s +. (vals.(k) *. x.(cols.(k)))
  done;
  !s

let max_violation t x =
  let worst = ref 0. in
  for j = 0 to t.nv - 1 do
    worst := Float.max !worst (t.lbs.(j) -. x.(j));
    worst := Float.max !worst (x.(j) -. t.ubs.(j))
  done;
  for i = 0 to t.nr - 1 do
    let a = row_activity t i x in
    (match t.senses.(i) with
    | Le -> worst := Float.max !worst (a -. t.rhss.(i))
    | Ge -> worst := Float.max !worst (t.rhss.(i) -. a)
    | Eq -> worst := Float.max !worst (Float.abs (a -. t.rhss.(i))));
    ()
  done;
  !worst

let pp_stats fmt t =
  Format.fprintf fmt "%s: %d vars, %d rows, %d nonzeros" t.model_name t.nv
    t.nr t.nnz
