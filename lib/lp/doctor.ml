(* `flexile doctor`: replay a solve with elevated instrumentation and
   emit a structured diagnosis (DESIGN.md section 15).

   The doctor runs [Simplex.solve_doctor] — the ordinary solver with
   the health timeline captured in memory — over one of three sources:
   a seeded pathological fixture, a snapshot dumped by a threshold trip
   ([Health.write_dump]), or a caller-provided model.  It then distills
   the timeline into a verdict: which phase stalled, which rows are
   near-singular, which thresholds tripped, and whether the frozen
   dense solver (the pre-sparse oracle) agrees on status and objective.

   Determinism contract: a fixture or dump diagnosis depends only on
   the LP bits — the solve runs on the calling domain, every float in
   the report is formatted with a fixed "%.9g", and no wall-clock or
   job-count value appears — so the report is byte-identical at any
   [--jobs], which `make doctor-smoke` asserts. *)

(* ------------------------------------------------------------------ *)
(* Seeded pathological fixtures                                        *)
(* ------------------------------------------------------------------ *)

(* A chain  y_0 <= 0,  y_i <= y_{i-1}  with objective -y_{k-1}: every
   constraint is tight at the (unique, all-zero) optimum, so the
   simplex performs ~k consecutive zero-step pivots walking the chain
   down — a guaranteed degeneracy stall of tunable length. *)
let add_degenerate_chain m k =
  let y =
    Array.init k (fun i ->
        Lp_model.add_var m
          ~name:("ch_y" ^ string_of_int i)
          ~lb:0. ~ub:10.
          ~obj:(if i = k - 1 then -1. else 0.)
          ())
  in
  ignore (Lp_model.add_row m ~name:"ch_r0" Lp_model.Le 0. [ (y.(0), 1.) ]);
  for i = 1 to k - 1 do
    ignore
      (Lp_model.add_row m
         ~name:("ch_r" ^ string_of_int i)
         Lp_model.Le 0.
         [ (y.(i), 1.); (y.(i - 1), -1.) ])
  done

(* Two equality rows that are parallel up to a relative eps = 1e-10,
   both scaled by 1e6.  The unique solution x0 = x1 = 0.5 has both
   structural variables strictly interior, so the optimal basis must
   contain the 2x2 block [[s,s],[s,s(1+eps)]]: condition ~4/eps = 4e10
   and a U pivot ratio of eps — tripping both the 1e10 condition
   threshold (and with it the snapshot dump) and the 1e-7 near-singular
   row detector, while the small pivot (s*eps = 1e-4) stays far above
   the 1e-11 absolute tolerance, so the basis factorizes rather than
   being patched.

   Two details keep the simplex honest.  The row scaling makes the
   constraints distinguishable: unscaled, conflating them costs only
   eps/2 = 5e-11 of infeasibility — below the 1e-7 tolerance, so the
   solver would simply never build the bad basis; scaled, any point
   with x1 off 0.5 by 0.1 violates some row by ~5e-6.  (Scaling only
   one row fails too: the solver satisfies the scaled row exactly and
   parks the sub-tolerance discrepancy on the unscaled one.)  And the
   objective pull on x1 (bound kept interior at 0.6) forces the pivot
   that brings x1 into the basis; with a zero objective the all-slack
   point is accepted as-is. *)
let near_singular_eps = 1e-10
let near_singular_scale = 1e6

let near_singular_fixture () =
  let m = Lp_model.create ~name:"near-singular-fixture" () in
  let eps = near_singular_eps and s = near_singular_scale in
  let x0 = Lp_model.add_var m ~name:"ns_x0" ~lb:0. ~ub:10. () in
  let x1 = Lp_model.add_var m ~name:"ns_x1" ~lb:0. ~ub:0.6 ~obj:(-1.) () in
  ignore
    (Lp_model.add_row m ~name:"ns_r0" Lp_model.Eq s [ (x0, s); (x1, s) ]);
  ignore
    (Lp_model.add_row m ~name:"ns_r1" Lp_model.Eq
       (s *. (1. +. (eps /. 2.)))
       [ (x0, s); (x1, s *. (1. +. eps)) ]);
  add_degenerate_chain m 16;
  m

let degenerate_fixture () =
  let m = Lp_model.create ~name:"degenerate-chain-fixture" () in
  add_degenerate_chain m 16;
  m

let fixture_names = [ "near-singular"; "degenerate" ]

let fixture = function
  | "near-singular" -> Some (near_singular_fixture ())
  | "degenerate" -> Some (degenerate_fixture ())
  | _ -> None

(* Elevated instrumentation: unless the operator pinned a stall limit
   through the environment, the doctor drops it from the production 120
   (the Bland threshold) to 8 so short degenerate episodes — invisible
   in normal operation by design — show up in a diagnosis run. *)
let doctor_stall_limit = 8

let doctor_thresholds () =
  let t = Health.default_thresholds () in
  match Sys.getenv_opt "FLEXILE_HEALTH_STALL" with
  | Some s when not (String.equal s "") -> t
  | _ -> { t with Health.stall_limit = doctor_stall_limit }

(* ------------------------------------------------------------------ *)
(* Report rendering                                                    *)
(* ------------------------------------------------------------------ *)

let phase_name = function
  | 0 -> "setup"
  | 1 -> "phase1"
  | 2 -> "phase2"
  | 3 -> "dual"
  | _ -> "unknown"

let status_name = function
  | Simplex.Optimal -> "optimal"
  | Simplex.Infeasible -> "infeasible"
  | Simplex.Unbounded -> "unbounded"
  | Simplex.Iteration_limit -> "iteration_limit"

let add_str b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Fixed-width decimal rendering: deterministic for identical bits, and
   every value in a diagnosis comes from the single-domain replay, so
   the whole report is byte-stable at any job count. *)
let add_num b v =
  match classify_float v with
  | FP_nan -> Buffer.add_string b "\"nan\""
  | FP_infinite -> Buffer.add_string b (if v > 0. then "\"inf\"" else "\"-inf\"")
  | _ -> Buffer.add_string b (Printf.sprintf "%.9g" v)

let add_list b xs f =
  Buffer.add_char b '[';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      f x)
    xs;
  Buffer.add_char b ']'

let add_sample b model (s : Health.sample) =
  Buffer.add_string b "{\"kind\":";
  add_str b (match s.Health.s_kind with Health.Refactor -> "refactor" | Health.Final -> "final");
  Buffer.add_string b ",\"phase\":";
  add_str b (phase_name s.Health.s_phase);
  Buffer.add_string b (",\"iteration\":" ^ string_of_int s.Health.s_iteration);
  Buffer.add_string b ",\"primal_residual\":";
  add_num b s.Health.s_primal_res;
  Buffer.add_string b ",\"dual_residual\":";
  add_num b s.Health.s_dual_res;
  Buffer.add_string b ",\"cond1\":";
  add_num b s.Health.s_cond1;
  Buffer.add_string b ",\"lu_growth\":";
  add_num b s.Health.s_growth;
  Buffer.add_string b ",\"udiag_min\":";
  add_num b s.Health.s_udiag_min;
  Buffer.add_string b ",\"udiag_max\":";
  add_num b s.Health.s_udiag_max;
  Buffer.add_string b
    (",\"eta_len\":" ^ string_of_int s.Health.s_eta.Health.ee_len);
  Buffer.add_string b
    (",\"eta_rejections\":" ^ string_of_int s.Health.s_eta.Health.ee_rejections);
  Buffer.add_string b ",\"eta_growth\":";
  add_num b s.Health.s_eta.Health.ee_growth;
  Buffer.add_string b ",\"near_singular\":";
  add_list b s.Health.s_near_singular (fun (row, udiag) ->
      Buffer.add_string b "{\"row\":";
      Buffer.add_string b (string_of_int row);
      Buffer.add_string b ",\"name\":";
      add_str b (if row < Lp_model.nrows model then Lp_model.row_name model row else "");
      Buffer.add_string b ",\"udiag\":";
      add_num b udiag;
      Buffer.add_char b '}');
  Buffer.add_string b ",\"patched\":";
  add_list b s.Health.s_patched (fun (pos, row) ->
      Buffer.add_string b
        ("[" ^ string_of_int pos ^ "," ^ string_of_int row ^ "]"));
  Buffer.add_string b ",\"tripped\":";
  add_list b s.Health.s_tripped (fun r -> add_str b r);
  Buffer.add_char b '}'

(* ------------------------------------------------------------------ *)
(* Diagnosis                                                           *)
(* ------------------------------------------------------------------ *)

type diagnosis = {
  dg_healthy : bool;
  dg_stalling_phase : string option;
  dg_near_singular : (int * string * float) list; (* row, name, min udiag *)
  dg_tripped : string list; (* union, first-seen order *)
  dg_max_cond : float;
  dg_max_primal_res : float;
  dg_max_dual_res : float;
  dg_max_growth : float;
  dg_verdicts : string list;
}

let diagnose ~model ~(samples : Health.sample list)
    ~(stalls : Health.stall list) ~(loops : Health.loop_note list)
    ~(oracle_verdict : string option) =
  let maxf f = List.fold_left (fun a s -> Float.max a (f s)) 0. samples in
  let max_cond = maxf (fun s -> s.Health.s_cond1) in
  let max_pr = maxf (fun s -> s.Health.s_primal_res) in
  let max_dr = maxf (fun s -> s.Health.s_dual_res) in
  let max_growth = maxf (fun s -> s.Health.s_growth) in
  (* union of near-singular rows, keeping the smallest |u_diag| seen *)
  let near =
    List.fold_left
      (fun acc s ->
        List.fold_left
          (fun acc (row, udiag) ->
            match List.assoc_opt row acc with
            | Some prev when prev <= udiag -> acc
            | _ -> (row, udiag) :: List.remove_assoc row acc)
          acc s.Health.s_near_singular)
      [] samples
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (row, udiag) ->
           ( row,
             (if row < Lp_model.nrows model then Lp_model.row_name model row
              else "slack-row-" ^ string_of_int row),
             udiag ))
  in
  let tripped =
    List.fold_left
      (fun acc s ->
        List.fold_left
          (fun acc r -> if List.mem r acc then acc else acc @ [ r ])
          acc s.Health.s_tripped)
      [] samples
  in
  (* stalling phase: the phase holding the longest zero-step run *)
  let stalling_phase =
    match
      List.fold_left
        (fun acc (st : Health.stall) ->
          match acc with
          | Some (_, run) when run >= st.Health.st_run -> acc
          | _ -> Some (st.Health.st_phase, st.Health.st_run))
        None stalls
    with
    | Some (phase, _) -> Some (phase_name phase)
    | None -> None
  in
  let verdicts = ref [] in
  let say s = verdicts := s :: !verdicts in
  (match stalling_phase with
  | Some p ->
      let worst =
        List.fold_left
          (fun a (st : Health.stall) -> max a st.Health.st_run)
          0 stalls
      in
      let bland =
        List.fold_left
          (fun a (l : Health.loop_note) -> a + l.Health.ln_bland)
          0 loops
      in
      say
        (Printf.sprintf
           "%s stalled: %d consecutive zero-step ratio tests (Bland dwell %d \
            iterations)"
           p worst bland)
  | None -> ());
  if near <> [] then
    say
      (Printf.sprintf "near-singular basis rows: %s (smallest |u_diag| %.9g)"
         (String.concat ", " (List.map (fun (_, n, _) -> n) near))
         (List.fold_left (fun a (_, _, u) -> Float.min a u) infinity near));
  List.iter
    (fun r ->
      let detail =
        match r with
        | "cond" -> Printf.sprintf "condition estimate %.9g" max_cond
        | "primal_residual" -> Printf.sprintf "primal residual %.9g" max_pr
        | "dual_residual" -> Printf.sprintf "dual residual %.9g" max_dr
        | "lu_growth" -> Printf.sprintf "LU element growth %.9g" max_growth
        | _ -> "see timeline"
      in
      say (Printf.sprintf "threshold tripped: %s (%s)" r detail))
    tripped;
  (match oracle_verdict with Some v -> say v | None -> ());
  let healthy = stalls = [] && near = [] && tripped = [] in
  if healthy && !verdicts = [] then
    say
      "no anomalies: residuals, conditioning and pivot behavior within \
       thresholds";
  {
    dg_healthy = healthy;
    dg_stalling_phase = stalling_phase;
    dg_near_singular = near;
    dg_tripped = tripped;
    dg_max_cond = max_cond;
    dg_max_primal_res = max_pr;
    dg_max_dual_res = max_dr;
    dg_max_growth = max_growth;
    dg_verdicts = List.rev !verdicts;
  }

(* ------------------------------------------------------------------ *)
(* Running a diagnosis                                                 *)
(* ------------------------------------------------------------------ *)

type source =
  | Src_fixture of string
  | Src_dump of string * Health.dump
  | Src_model

type result = {
  r_report : string; (* the diagnosis document, JSON *)
  r_solution : Simplex.solution;
  r_health : Health.state;
  r_healthy : bool;
}

let oracle_check model (sol : Simplex.solution) =
  let d = Simplex_dense.solve model in
  let dstatus =
    match d.Simplex_dense.status with
    | Simplex_dense.Optimal -> "optimal"
    | Simplex_dense.Infeasible -> "infeasible"
    | Simplex_dense.Unbounded -> "unbounded"
    | Simplex_dense.Iteration_limit -> "iteration_limit"
  in
  let delta = Float.abs (d.Simplex_dense.obj -. sol.Simplex.obj) in
  let scale = Float.max 1. (Float.abs sol.Simplex.obj) in
  let agrees =
    String.equal dstatus (status_name sol.Simplex.status)
    && delta /. scale < 1e-6
  in
  (dstatus, d.Simplex_dense.obj, delta, agrees)

let render ~source ~model ~(sol : Simplex.solution) ~health
    ~(dump_state : Health.state option) ~oracle =
  let samples =
    Health.samples health
    @ (match dump_state with Some h -> Health.samples h | None -> [])
  in
  let stalls = Health.stalls health in
  let loops = Health.loop_notes health in
  let oracle_verdict =
    match oracle with
    | Some (dstatus, _, delta, agrees) when not agrees ->
        Some
          (Printf.sprintf
             "dense-oracle disagreement: oracle %s, objective delta %.9g"
             dstatus delta)
    | _ -> None
  in
  let dg = diagnose ~model ~samples ~stalls ~loops ~oracle_verdict in
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\"schema\":\"flexile-doctor\",\"version\":1";
  Buffer.add_string b ",\"source\":";
  (match source with
  | Src_fixture name ->
      Buffer.add_string b "{\"kind\":\"fixture\",\"name\":";
      add_str b name;
      Buffer.add_char b '}'
  | Src_dump (path, d) ->
      Buffer.add_string b "{\"kind\":\"dump\",\"file\":";
      add_str b (Filename.basename path);
      Buffer.add_string b ",\"reasons\":";
      add_list b d.Health.d_reasons (fun r -> add_str b r);
      Buffer.add_string b ",\"phase\":";
      add_str b (phase_name d.Health.d_phase);
      Buffer.add_string b
        (",\"iteration\":" ^ string_of_int d.Health.d_iteration);
      Buffer.add_char b '}'
  | Src_model -> Buffer.add_string b "{\"kind\":\"model\"}");
  Buffer.add_string b ",\"model\":{\"name\":";
  add_str b (Lp_model.name model);
  Buffer.add_string b
    (",\"vars\":" ^ string_of_int (Lp_model.nvars model)
   ^ ",\"rows\":" ^ string_of_int (Lp_model.nrows model) ^ "}");
  Buffer.add_string b ",\"status\":";
  add_str b (status_name sol.Simplex.status);
  Buffer.add_string b ",\"objective\":";
  add_num b sol.Simplex.obj;
  Buffer.add_string b (",\"iterations\":" ^ string_of_int sol.Simplex.iterations);
  (* thresholds the run used *)
  let t = Health.thresholds health in
  Buffer.add_string b ",\"thresholds\":{\"cond_limit\":";
  add_num b t.Health.cond_limit;
  Buffer.add_string b ",\"residual_limit\":";
  add_num b t.Health.residual_limit;
  Buffer.add_string b ",\"growth_limit\":";
  add_num b t.Health.growth_limit;
  Buffer.add_string b
    (",\"stall_limit\":" ^ string_of_int t.Health.stall_limit);
  Buffer.add_string b ",\"near_singular_rtol\":";
  add_num b t.Health.near_singular_rtol;
  Buffer.add_char b '}';
  (* diagnosis *)
  Buffer.add_string b ",\"diagnosis\":{\"healthy\":";
  Buffer.add_string b (if dg.dg_healthy then "true" else "false");
  Buffer.add_string b ",\"stalling_phase\":";
  (match dg.dg_stalling_phase with
  | None -> Buffer.add_string b "null"
  | Some p -> add_str b p);
  Buffer.add_string b ",\"near_singular_rows\":";
  add_list b dg.dg_near_singular (fun (row, name, udiag) ->
      Buffer.add_string b ("{\"row\":" ^ string_of_int row ^ ",\"name\":");
      add_str b name;
      Buffer.add_string b ",\"udiag\":";
      add_num b udiag;
      Buffer.add_char b '}');
  Buffer.add_string b ",\"thresholds_tripped\":";
  add_list b dg.dg_tripped (fun r -> add_str b r);
  Buffer.add_string b ",\"max_cond1\":";
  add_num b dg.dg_max_cond;
  Buffer.add_string b ",\"max_primal_residual\":";
  add_num b dg.dg_max_primal_res;
  Buffer.add_string b ",\"max_dual_residual\":";
  add_num b dg.dg_max_dual_res;
  Buffer.add_string b ",\"max_lu_growth\":";
  add_num b dg.dg_max_growth;
  Buffer.add_string b ",\"verdicts\":";
  add_list b dg.dg_verdicts (fun v -> add_str b v);
  Buffer.add_char b '}';
  (* stalls and loop notes *)
  Buffer.add_string b ",\"stalls\":";
  add_list b stalls (fun (st : Health.stall) ->
      Buffer.add_string b "{\"phase\":";
      add_str b (phase_name st.Health.st_phase);
      Buffer.add_string b
        (",\"iteration\":" ^ string_of_int st.Health.st_iteration
       ^ ",\"run\":" ^ string_of_int st.Health.st_run ^ "}"));
  Buffer.add_string b ",\"loops\":";
  add_list b loops (fun (l : Health.loop_note) ->
      Buffer.add_string b "{\"phase\":";
      add_str b (phase_name l.Health.ln_phase);
      Buffer.add_string b
        (",\"iterations\":" ^ string_of_int l.Health.ln_iterations
       ^ ",\"max_zero_run\":" ^ string_of_int l.Health.ln_max_run
       ^ ",\"bland_iterations\":" ^ string_of_int l.Health.ln_bland ^ "}"));
  (* the dumped basis measured in isolation, when replaying a dump *)
  Buffer.add_string b ",\"dump_basis\":";
  (match dump_state with
  | None -> Buffer.add_string b "null"
  | Some h -> (
      match Health.samples h with
      | s :: _ -> add_sample b model s
      | [] -> Buffer.add_string b "null"));
  (* per-refactorization timeline of the replay *)
  Buffer.add_string b ",\"timeline\":";
  add_list b (Health.samples health) (fun s -> add_sample b model s);
  Buffer.add_string b ",\"oracle\":";
  (match oracle with
  | None -> Buffer.add_string b "null"
  | Some (dstatus, dobj, delta, agrees) ->
      Buffer.add_string b "{\"status\":";
      add_str b dstatus;
      Buffer.add_string b ",\"objective\":";
      add_num b dobj;
      Buffer.add_string b ",\"objective_delta\":";
      add_num b delta;
      Buffer.add_string b
        (",\"agrees\":" ^ if agrees then "true}" else "false}"));
  Buffer.add_string b "}\n";
  {
    r_report = Buffer.contents b;
    r_solution = sol;
    r_health = health;
    r_healthy = dg.dg_healthy;
  }

let run_lp ?(oracle = true) ?(source = Src_model) ?dump model =
  let thresholds = doctor_thresholds () in
  let eta_limit =
    match dump with
    | Some d -> d.Health.d_eta_limit
    | None -> None
  in
  let sol, health = Simplex.solve_doctor ?eta_limit ~thresholds model in
  let dump_state =
    match dump with
    | None -> None
    | Some d ->
        Some
          (Simplex.diagnose_basis ?eta_limit:d.Health.d_eta_limit ~thresholds
             ~phase:d.Health.d_phase ~iteration:d.Health.d_iteration model
             ~bas:d.Health.d_basis ~vstat:d.Health.d_vstat)
  in
  let oracle = if oracle then Some (oracle_check model sol) else None in
  render ~source ~model ~sol ~health ~dump_state ~oracle

let run_fixture ?oracle name =
  match fixture name with
  | None ->
      Error
        ("unknown fixture " ^ name ^ " (expected "
        ^ String.concat " or " fixture_names
        ^ ")")
  | Some model -> Ok (run_lp ?oracle ~source:(Src_fixture name) model)

let run_dump ?oracle path =
  match Health.read_dump path with
  | Error e -> Error e
  | Ok d ->
      Ok (run_lp ?oracle ~source:(Src_dump (path, d)) ~dump:d d.Health.d_model)
