(* Sparse linear-algebra kernels for the revised simplex: scatter/
   gather sparse-vector workspaces and an LU-factorized basis with a
   product-form (eta-file) update.  See DESIGN.md section 11.

   Everything here is deterministic: pivot choices break ties by index,
   traversals follow explicit array order, and no structure depends on
   hash-bucket order or wall time.  The workspaces are intentionally
   mutable and reused across calls so that the simplex pivot loop
   performs no per-pivot allocation (the eta arena grows by amortized
   doubling, which is the only allocation on the pivot path). *)

module Float_cmp = Flexile_util.Float_cmp

(* ------------------------------------------------------------------ *)
(* Sparse vector workspace                                             *)
(* ------------------------------------------------------------------ *)

module Svec = struct
  type t = {
    dim : int;
    vals : float array; (* dense values; exactly 0. outside the pattern *)
    idx : int array; (* first [nnz] entries: the pattern, insertion order *)
    mark : bool array; (* pattern membership *)
    mutable nnz : int;
  }

  let create dim =
    {
      dim;
      vals = Array.make dim 0.;
      idx = Array.make dim 0;
      mark = Array.make dim false;
      nnz = 0;
    }

  let dim t = t.dim
  let nnz t = t.nnz

  let[@lint.noalloc] clear t =
    for k = 0 to t.nnz - 1 do
      let i = t.idx.(k) in
      t.vals.(i) <- 0.;
      t.mark.(i) <- false
    done;
    t.nnz <- 0

  let[@lint.noalloc] add t i v =
    if not t.mark.(i) then begin
      t.mark.(i) <- true;
      t.idx.(t.nnz) <- i;
      t.nnz <- t.nnz + 1
    end;
    t.vals.(i) <- t.vals.(i) +. v

  let[@lint.noalloc] get t i = t.vals.(i)
  let[@lint.noalloc] mem t i = t.mark.(i)

  let iter t f =
    for k = 0 to t.nnz - 1 do
      let i = t.idx.(k) in
      f i t.vals.(i)
    done

  let to_dense t = Array.copy t.vals
end

(* ------------------------------------------------------------------ *)
(* Growable arenas (amortized doubling, reused across factorizations)  *)
(* ------------------------------------------------------------------ *)

let[@lint.alloc_ok "amortized-doubling arena growth"] grow_i a needed =
  if Array.length a >= needed then a
  else begin
    let b = Array.make (max needed (2 * Array.length a)) 0 in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let[@lint.alloc_ok "amortized-doubling arena growth"] grow_f a needed =
  if Array.length a >= needed then a
  else begin
    let b = Array.make (max needed (2 * Array.length a)) 0. in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

(* ------------------------------------------------------------------ *)
(* LU-factorized basis with eta-file updates                           *)
(* ------------------------------------------------------------------ *)

module Basis = struct
  (* Factorization: P B Q = L U with L unit lower triangular and U
     upper triangular in "step" space (step k pivots row [prow.(k)] on
     the basis column at position [qpos.(k)]).  Columns are processed
     in ascending-nonzero-count order (static Markowitz: unit slack
     columns pivot first and produce no fill), rows are chosen by
     threshold partial pivoting with a static row-degree (Markowitz)
     merit among the numerically acceptable candidates.

     Updates: after a simplex pivot replaces the basic variable at
     position r by a column whose FTRAN image is w, the new basis is
     B' = B E where E is the identity with column r replaced by w.
     E^-1 is applied after the LU solves in FTRAN and before them
     (transposed, in reverse order) in BTRAN; the (r, w) pairs are the
     eta file, stored sparsely in one arena. *)

  let threshold = 0.01 (* relative pivot-acceptance threshold *)
  let abs_pivot_tol = 1e-11 (* below this a column is deferred/patched *)
  let eta_pivot_tol = 1e-9 (* below this an update forces refactorization *)

  type t = {
    m : int;
    eta_limit : int;
    (* LU factors *)
    prow : int array; (* step -> pivot row *)
    qpos : int array; (* step -> basis position *)
    step_of_row : int array; (* row -> step (-1 while factoring) *)
    step_of_pos : int array; (* basis position -> step *)
    l_start : int array; (* length m+1 *)
    mutable l_idx : int array; (* row indices *)
    mutable l_val : float array;
    mutable l_len : int;
    u_start : int array; (* length m+1 *)
    mutable u_idx : int array; (* earlier-step indices *)
    mutable u_val : float array;
    mutable u_len : int;
    u_diag : float array;
    active : int array; (* steps with a nonempty L column, ascending *)
    mutable n_active : int;
    (* eta file *)
    mutable e_pos : int array;
    mutable e_diag : float array;
    mutable e_start : int array; (* length n_eta+1 *)
    mutable e_idx : int array;
    mutable e_val : float array;
    mutable n_eta : int;
    mutable e_len : int;
    (* factorization scratch *)
    ws : Svec.t;
    step_vec : float array; (* step-space solve workspace *)
    row_cnt : int array; (* static row degrees of the current basis *)
    order : int array; (* column processing order *)
    col_nnz : int array;
    c_start : int array; (* collected basis columns, length m+1 *)
    mutable c_idx : int array;
    mutable c_val : float array;
    deferred : int array; (* positions without an acceptable pivot *)
    mutable n_deferred : int;
    mutable factored : bool;
    (* numerical-health stats (DESIGN.md section 15).  A preallocated
       float array rather than mutable float fields: stores into a
       float-only array never box, so [update] stays noalloc-clean.
       Layout: 0 max|B|, 1 max|U| (incl diag), 2 min|u_diag|,
       3 max|u_diag|, 4 min|eta diag|, 5 max eta growth ratio,
       6 ||B||_1 (max column abs-sum). *)
    stat : float array;
    mutable stat_valid : bool; (* B/U entry stats computed for this LU *)
    mutable eta_rejections : int; (* updates refused for a tiny pivot *)
  }

  let create ?eta_limit m =
    let eta_limit =
      match eta_limit with
      | Some l -> max 1 l
      | None -> max 64 (m / 2)
    in
    {
      m;
      eta_limit;
      prow = Array.make (max 1 m) 0;
      qpos = Array.make (max 1 m) 0;
      step_of_row = Array.make (max 1 m) (-1);
      step_of_pos = Array.make (max 1 m) (-1);
      l_start = Array.make (m + 1) 0;
      l_idx = Array.make (max 16 m) 0;
      l_val = Array.make (max 16 m) 0.;
      l_len = 0;
      u_start = Array.make (m + 1) 0;
      u_idx = Array.make (max 16 m) 0;
      u_val = Array.make (max 16 m) 0.;
      u_len = 0;
      u_diag = Array.make (max 1 m) 0.;
      active = Array.make (max 1 m) 0;
      n_active = 0;
      e_pos = Array.make 16 0;
      e_diag = Array.make 16 0.;
      e_start = Array.make 17 0;
      e_idx = Array.make 64 0;
      e_val = Array.make 64 0.;
      n_eta = 0;
      e_len = 0;
      ws = Svec.create (max 1 m);
      step_vec = Array.make (max 1 m) 0.;
      row_cnt = Array.make (max 1 m) 0;
      order = Array.make (max 1 m) 0;
      col_nnz = Array.make (max 1 m) 0;
      c_start = Array.make (m + 1) 0;
      c_idx = Array.make (max 16 m) 0;
      c_val = Array.make (max 16 m) 0.;
      deferred = Array.make (max 1 m) 0;
      n_deferred = 0;
      factored = false;
      stat = Array.make 8 0.;
      stat_valid = false;
      eta_rejections = 0;
    }

  let dim t = t.m
  let is_factored t = t.factored
  let eta_count t = t.n_eta
  let eta_nnz t = t.e_len
  let lu_nnz t = t.l_len + t.u_len + t.m

  let needs_refactor t =
    t.n_eta >= t.eta_limit || t.e_len > 4 * (t.l_len + t.u_len + t.m)

  (* ---- factorization ---- *)

  let push_l t row v =
    t.l_idx <- grow_i t.l_idx (t.l_len + 1);
    t.l_val <- grow_f t.l_val (t.l_len + 1);
    t.l_idx.(t.l_len) <- row;
    t.l_val.(t.l_len) <- v;
    t.l_len <- t.l_len + 1

  let push_u t step v =
    t.u_idx <- grow_i t.u_idx (t.u_len + 1);
    t.u_val <- grow_f t.u_val (t.u_len + 1);
    t.u_idx.(t.u_len) <- step;
    t.u_val.(t.u_len) <- v;
    t.u_len <- t.u_len + 1

  (* Record step [k]: pivot [row] on basis position [pos] whose
     eliminated column is currently scattered in [t.ws] (empty for a
     patched unit column). *)
  let finish_step t k ~pos ~row ~diag =
    t.prow.(k) <- row;
    t.qpos.(k) <- pos;
    t.step_of_row.(row) <- k;
    t.step_of_pos.(pos) <- k;
    t.u_diag.(k) <- diag

  let factor t ~col =
    let m = t.m in
    t.l_len <- 0;
    t.u_len <- 0;
    t.n_active <- 0;
    t.n_eta <- 0;
    t.e_len <- 0;
    t.e_start.(0) <- 0;
    t.n_deferred <- 0;
    t.factored <- false;
    t.stat.(4) <- infinity;
    t.stat.(5) <- 0.;
    t.stat_valid <- false;
    t.eta_rejections <- 0;
    Array.fill t.step_of_row 0 m (-1);
    Array.fill t.step_of_pos 0 m (-1);
    Array.fill t.row_cnt 0 m 0;
    (* collect the basis columns once (closure calls only here) *)
    let len = ref 0 in
    for pos = 0 to m - 1 do
      t.c_start.(pos) <- !len;
      col pos (fun row v ->
          t.c_idx <- grow_i t.c_idx (!len + 1);
          t.c_val <- grow_f t.c_val (!len + 1);
          t.c_idx.(!len) <- row;
          t.c_val.(!len) <- v;
          incr len;
          t.row_cnt.(row) <- t.row_cnt.(row) + 1);
      t.col_nnz.(pos) <- !len - t.c_start.(pos)
    done;
    t.c_start.(m) <- !len;
    (* static Markowitz column order: ascending nonzero count, then
       position (unit columns first; deterministic) *)
    for pos = 0 to m - 1 do
      t.order.(pos) <- pos
    done;
    let cmp a b =
      let c = compare t.col_nnz.(a) t.col_nnz.(b) in
      if c <> 0 then c else compare a b
    in
    (let order = Array.sub t.order 0 m in
     Array.sort cmp order;
     Array.blit order 0 t.order 0 m);
    let step = ref 0 in
    for o = 0 to m - 1 do
      let pos = t.order.(o) in
      let ws = t.ws in
      (* scatter the column *)
      for c = t.c_start.(pos) to t.c_start.(pos + 1) - 1 do
        Svec.add ws t.c_idx.(c) t.c_val.(c)
      done;
      (* eliminate with the already-computed L columns, ascending step
         order (dependencies only point forward, so one pass is exact) *)
      for a = 0 to t.n_active - 1 do
        let s = t.active.(a) in
        let pr = t.prow.(s) in
        if Svec.mem ws pr then begin
          let x = Svec.get ws pr in
          if Float_cmp.nonzero x then
            for c = t.l_start.(s) to t.l_start.(s + 1) - 1 do
              Svec.add ws t.l_idx.(c) (-.t.l_val.(c) *. x)
            done
        end
      done;
      (* pivot selection: threshold partial pivoting with static
         row-degree merit, deterministic index tie-break *)
      let vmax = ref 0. in
      Svec.iter ws (fun row v ->
          if t.step_of_row.(row) < 0 then begin
            let a = Float.abs v in
            if a > !vmax then vmax := a
          end);
      if !vmax < abs_pivot_tol then begin
        (* numerically/structurally dependent column: defer, patch later *)
        t.deferred.(t.n_deferred) <- pos;
        t.n_deferred <- t.n_deferred + 1;
        Svec.clear ws
      end
      else begin
        let acceptable = threshold *. !vmax in
        let prow = ref (-1) and pmerit = ref max_int in
        Svec.iter ws (fun row v ->
            if t.step_of_row.(row) < 0 && Float.abs v >= acceptable then begin
              let merit = t.row_cnt.(row) in
              if
                merit < !pmerit || (merit = !pmerit && (!prow < 0 || row < !prow))
              then begin
                prow := row;
                pmerit := merit
              end
            end);
        let row = !prow in
        let k = !step in
        let piv = Svec.get ws row in
        t.l_start.(k) <- t.l_len;
        t.u_start.(k) <- t.u_len;
        Svec.iter ws (fun r v ->
            if Float_cmp.nonzero v then
              if t.step_of_row.(r) >= 0 then push_u t t.step_of_row.(r) v
              else if r <> row then push_l t r (v /. piv));
        t.l_start.(k + 1) <- t.l_len;
        t.u_start.(k + 1) <- t.u_len;
        finish_step t k ~pos ~row ~diag:piv;
        if t.l_start.(k + 1) > t.l_start.(k) then begin
          t.active.(t.n_active) <- k;
          t.n_active <- t.n_active + 1
        end;
        incr step;
        Svec.clear ws
      end
    done;
    (* patch deferred positions with unit columns of the unpivoted
       rows, pairing both in ascending order (deterministic) *)
    let patched = ref [] in
    if t.n_deferred > 0 then begin
      let defer = Array.sub t.deferred 0 t.n_deferred in
      Array.sort compare defer;
      let next_row = ref 0 in
      Array.iter
        (fun pos ->
          while t.step_of_row.(!next_row) >= 0 do
            incr next_row
          done;
          let row = !next_row in
          let k = !step in
          t.l_start.(k) <- t.l_len;
          t.u_start.(k) <- t.u_len;
          t.l_start.(k + 1) <- t.l_len;
          t.u_start.(k + 1) <- t.u_len;
          finish_step t k ~pos ~row ~diag:1.;
          incr step;
          patched := (pos, row) :: !patched)
        defer
    end;
    t.factored <- true;
    List.rev !patched

  (* Health stats of the current LU: entry magnitudes of B (and its
     1-norm) from the collected columns, of U from the finished
     factors.  Computed lazily on first accessor call after a factor —
     [factor] itself pays nothing, and unsampled refactorizations
     (the production stride skips most) never run this O(nnz) pass.
     The collected columns and U arrays persist until the next
     [factor], so the pass can run at any point of the epoch. *)
  let ensure_stats t =
    if not t.stat_valid then begin
      let m = t.m in
      t.stat.(0) <- 0.;
      t.stat.(1) <- 0.;
      t.stat.(2) <- (if m = 0 then 0. else infinity);
      t.stat.(3) <- 0.;
      t.stat.(6) <- 0.;
      for pos = 0 to m - 1 do
        let s = ref 0. in
        for c = t.c_start.(pos) to t.c_start.(pos + 1) - 1 do
          let a = Float.abs t.c_val.(c) in
          s := !s +. a;
          if a > t.stat.(0) then t.stat.(0) <- a
        done;
        if !s > t.stat.(6) then t.stat.(6) <- !s
      done;
      for c = 0 to t.u_len - 1 do
        let a = Float.abs t.u_val.(c) in
        if a > t.stat.(1) then t.stat.(1) <- a
      done;
      for k = 0 to m - 1 do
        let a = Float.abs t.u_diag.(k) in
        if a > t.stat.(1) then t.stat.(1) <- a;
        if a < t.stat.(2) then t.stat.(2) <- a;
        if a > t.stat.(3) then t.stat.(3) <- a
      done;
      t.stat_valid <- true
    end

  (* ---- solves ---- *)

  (* FTRAN: in place, input indexed by row, output indexed by basis
     position: v := E_k^-1 ... E_1^-1 Q U^-1 L^-1 P v. *)
  let[@lint.noalloc] ftran t v =
    if not t.factored then invalid_arg "Sparse.Basis.ftran: not factored";
    let m = t.m in
    (* L solve in row space, ascending steps *)
    for a = 0 to t.n_active - 1 do
      let s = t.active.(a) in
      let x = v.(t.prow.(s)) in
      if Float_cmp.nonzero x then
        for c = t.l_start.(s) to t.l_start.(s + 1) - 1 do
          v.(t.l_idx.(c)) <- v.(t.l_idx.(c)) -. (t.l_val.(c) *. x)
        done
    done;
    (* gather into step space *)
    let sv = t.step_vec in
    for k = 0 to m - 1 do
      sv.(k) <- v.(t.prow.(k))
    done;
    (* U back-substitution in step space *)
    for k = m - 1 downto 0 do
      let z = sv.(k) /. t.u_diag.(k) in
      sv.(k) <- z;
      if Float_cmp.nonzero z then
        for c = t.u_start.(k) to t.u_start.(k + 1) - 1 do
          sv.(t.u_idx.(c)) <- sv.(t.u_idx.(c)) -. (t.u_val.(c) *. z)
        done
    done;
    (* scatter to basis-position space *)
    for k = 0 to m - 1 do
      v.(t.qpos.(k)) <- sv.(k)
    done;
    (* eta file, oldest first: v_r := v_r / w_r; v_i -= w_i * v_r *)
    for e = 0 to t.n_eta - 1 do
      let r = t.e_pos.(e) in
      let vr = v.(r) /. t.e_diag.(e) in
      v.(r) <- vr;
      if Float_cmp.nonzero vr then
        for c = t.e_start.(e) to t.e_start.(e + 1) - 1 do
          v.(t.e_idx.(c)) <- v.(t.e_idx.(c)) -. (t.e_val.(c) *. vr)
        done
    done

  (* BTRAN: in place, input indexed by basis position, output indexed
     by row: y solves y^T B = c^T. *)
  let[@lint.noalloc] btran t v =
    if not t.factored then invalid_arg "Sparse.Basis.btran: not factored";
    let m = t.m in
    (* eta file, newest first: c_r := (c_r - sum w_i c_i) / w_r *)
    for e = t.n_eta - 1 downto 0 do
      let r = t.e_pos.(e) in
      let s = ref v.(r) in
      for c = t.e_start.(e) to t.e_start.(e + 1) - 1 do
        s := !s -. (t.e_val.(c) *. v.(t.e_idx.(c)))
      done;
      v.(r) <- !s /. t.e_diag.(e)
    done;
    (* gather into step space and solve U^T forward *)
    let sv = t.step_vec in
    for k = 0 to m - 1 do
      let s = ref v.(t.qpos.(k)) in
      for c = t.u_start.(k) to t.u_start.(k + 1) - 1 do
        s := !s -. (t.u_val.(c) *. sv.(t.u_idx.(c)))
      done;
      sv.(k) <- !s /. t.u_diag.(k)
    done;
    (* L^T backward, writing the row-space result in place *)
    Array.fill v 0 m 0.;
    for k = m - 1 downto 0 do
      let s = ref sv.(k) in
      for c = t.l_start.(k) to t.l_start.(k + 1) - 1 do
        s := !s -. (t.l_val.(c) *. v.(t.l_idx.(c)))
      done;
      v.(t.prow.(k)) <- !s
    done

  (* rho := row r of B^-1 (the BTRAN of a basis-position unit vector);
     fills the caller's dense workspace. *)
  let[@lint.noalloc] btran_unit t r v =
    Array.fill v 0 t.m 0.;
    v.(r) <- 1.;
    btran t v

  (* ---- product-form update ---- *)

  let[@lint.noalloc] update t ~r ~w =
    if not t.factored then invalid_arg "Sparse.Basis.update: not factored";
    if Float.abs w.(r) < eta_pivot_tol then begin
      t.eta_rejections <- t.eta_rejections + 1;
      false
    end
    else begin
      let e = t.n_eta in
      t.e_pos <- grow_i t.e_pos (e + 1);
      t.e_diag <- grow_f t.e_diag (e + 1);
      t.e_start <- grow_i t.e_start (e + 2);
      t.e_pos.(e) <- r;
      t.e_diag.(e) <- w.(r);
      let wr = Float.abs w.(r) in
      let wmax = ref wr in
      let len = ref t.e_len in
      for i = 0 to t.m - 1 do
        if i <> r && Float_cmp.nonzero w.(i) then begin
          let a = Float.abs w.(i) in
          if a > !wmax then wmax := a;
          t.e_idx <- grow_i t.e_idx (!len + 1);
          t.e_val <- grow_f t.e_val (!len + 1);
          t.e_idx.(!len) <- i;
          t.e_val.(!len) <- w.(i);
          incr len
        end
      done;
      if wr < t.stat.(4) then t.stat.(4) <- wr;
      let growth = !wmax /. wr in
      if growth > t.stat.(5) then t.stat.(5) <- growth;
      t.e_len <- !len;
      t.e_start.(e + 1) <- !len;
      t.n_eta <- e + 1;
      true
    end

  (* ---- numerical-health accessors (DESIGN.md section 15) ---- *)

  (* Element growth of the factorization: max|U| / max|B|.  Large
     values mean threshold pivoting admitted an unstable elimination. *)
  let lu_growth t =
    ensure_stats t;
    if t.stat.(0) > 0. then t.stat.(1) /. t.stat.(0) else 1.

  let u_diag_min t =
    ensure_stats t;
    if t.m = 0 then 0. else t.stat.(2)

  let u_diag_max t =
    ensure_stats t;
    t.stat.(3)

  let norm1 t =
    ensure_stats t;
    t.stat.(6)
  let eta_rejections t = t.eta_rejections
  let eta_min_diag t = if t.n_eta = 0 then infinity else t.stat.(4)
  let eta_growth t = t.stat.(5)

  (* Rows whose U pivot is tiny relative to the largest: the basis is
     within a relative [rtol] perturbation of singular along them.
     Ascending row order for deterministic reports. *)
  let near_singular_rows t ~rtol =
    if not t.factored then []
    else begin
      let dmax = u_diag_max t in
      let acc = ref [] in
      for k = t.m - 1 downto 0 do
        let a = Float.abs t.u_diag.(k) in
        if a < rtol *. dmax then acc := (t.prow.(k), a) :: !acc
      done;
      List.sort (fun (a, _) (b, _) -> compare a b) !acc
    end
end
