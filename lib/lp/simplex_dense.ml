(* Frozen dense reference implementation of the two-phase
   bounded-variable revised simplex (primal + dual for RHS restarts).

   This is the pre-sparse solver kept verbatim (minus trace probes) as
   the differential oracle for the LU/eta path in [Simplex]: set
   FLEXILE_DENSE_SIMPLEX=1 to route [Simplex] through this module, or
   call it directly from tests.  It maintains an explicit dense m*m
   basis inverse, updated in O(m^2) per pivot and rebuilt by
   Gauss-Jordan on numerical failure.  Do not extend it — new solver
   work belongs in [Simplex]/[Sparse].

   Computational form: rows become equalities [A x + s = b] with one
   slack per row (coefficient +1) whose bounds encode the sense:
     Le -> s in [0, +inf)    Ge -> s in (-inf, 0]    Eq -> s in [0, 0]
   One artificial column per row (also +1, so the basis matrix is
   unchanged when an artificial replaces its slack) supports the
   phase-1 start; artificials are fixed to [0,0] in phase 2.

   Variable layout: [0, n) structural, [n, n+m) slacks,
   [n+m, n+2m) artificials. *)

let feas_tol = 1e-7
let opt_tol = 1e-7
let pivot_tol = 1e-9
let degen_threshold = 120
let src = Logs.Src.create "flexile.lp.dense" ~doc:"LP solver (dense reference)"

module Log = (val Logs.src_log src : Logs.LOG)
module Float_cmp = Flexile_util.Float_cmp

type status = Optimal | Infeasible | Unbounded | Iteration_limit

type solution = {
  status : status;
  obj : float;
  x : float array;
  row_duals : float array;
  reduced_costs : float array;
  bound_term : float;
  iterations : int;
}

let dual_bound sol ~rhs =
  let s = ref sol.bound_term in
  Array.iteri (fun i y -> s := !s +. (y *. rhs.(i))) sol.row_duals;
  !s

(* Nonbasic-at-lower / -at-upper / basic / nonbasic-free (value 0). *)
let at_lower = 0
let at_upper = 1
let basic = 2
let free = 3

type t = {
  n : int;
  m : int;
  ntot : int;
  csc : Lp_model.csc;
  lo : float array;
  up : float array;
  cost : float array; (* phase-2 costs over ntot *)
  b : float array; (* current rhs *)
  vstat : int array;
  bas : int array; (* length m *)
  binv : float array array;
  xb : float array;
  xn : float array; (* bound value of each nonbasic variable *)
  mutable last_status : status option;
}

let slack_bounds sense =
  match sense with
  | Lp_model.Le -> (0., infinity)
  | Lp_model.Ge -> (neg_infinity, 0.)
  | Lp_model.Eq -> (0., 0.)

let make model =
  let n = Lp_model.nvars model and m = Lp_model.nrows model in
  let ntot = n + (2 * m) in
  let lo = Array.make ntot 0. and up = Array.make ntot 0. in
  let cost = Array.make ntot 0. in
  for j = 0 to n - 1 do
    lo.(j) <- Lp_model.lb model j;
    up.(j) <- Lp_model.ub model j;
    cost.(j) <- Lp_model.obj_coef model j
  done;
  let b = Array.make m 0. in
  for i = 0 to m - 1 do
    let slo, sup = slack_bounds (Lp_model.row_sense model i) in
    lo.(n + i) <- slo;
    up.(n + i) <- sup;
    (* artificial bounds adjusted during phase-1 setup *)
    lo.(n + m + i) <- 0.;
    up.(n + m + i) <- 0.;
    b.(i) <- Lp_model.rhs model i
  done;
  {
    n;
    m;
    ntot;
    csc = Lp_model.csc model;
    lo;
    up;
    cost;
    b;
    vstat = Array.make ntot at_lower;
    bas = Array.make m 0;
    binv = Array.init m (fun _ -> Array.make m 0.);
    xb = Array.make m 0.;
    xn = Array.make ntot 0.;
    last_status = None;
  }

(* Iterate over the (row, coefficient) entries of column [j]. *)
let col_iter st j f =
  if j < st.n then begin
    let c = st.csc in
    for k = c.Lp_model.col_start.(j) to c.Lp_model.col_start.(j + 1) - 1 do
      f c.Lp_model.row_idx.(k) c.Lp_model.values.(k)
    done
  end
  else begin
    let i = if j < st.n + st.m then j - st.n else j - st.n - st.m in
    f i 1.0
  end

(* Dot of a dense m-vector with column j. *)
let col_dot st y j =
  let s = ref 0. in
  col_iter st j (fun i a -> s := !s +. (y.(i) *. a));
  !s

(* w := Binv * A_j *)
let ftran st j w =
  Array.fill w 0 st.m 0.;
  col_iter st j (fun r a ->
      for i = 0 to st.m - 1 do
        w.(i) <- w.(i) +. (st.binv.(i).(r) *. a)
      done)

(* y := costs_B * Binv *)
let btran st costs y =
  Array.fill y 0 st.m 0.;
  for k = 0 to st.m - 1 do
    let c = costs.(st.bas.(k)) in
    if Float_cmp.nonzero c then begin
      let bk = st.binv.(k) in
      for i = 0 to st.m - 1 do
        y.(i) <- y.(i) +. (c *. bk.(i))
      done
    end
  done

(* Recompute basic values from scratch:
   xb = Binv * (b - sum_{nonbasic j} A_j * xn_j). *)
let recompute_xb st =
  let bt = Array.copy st.b in
  for j = 0 to st.ntot - 1 do
    if st.vstat.(j) <> basic && Float_cmp.nonzero st.xn.(j) then
      col_iter st j (fun i a -> bt.(i) <- bt.(i) -. (a *. st.xn.(j)))
  done;
  for i = 0 to st.m - 1 do
    let s = ref 0. and bi = st.binv.(i) in
    for k = 0 to st.m - 1 do
      s := !s +. (bi.(k) *. bt.(k))
    done;
    st.xb.(i) <- !s
  done

(* Rebuild Binv by Gauss-Jordan inversion of the basis matrix. *)
exception Singular_basis

let refactorize st =
  let m = st.m in
  let a = Array.init m (fun _ -> Array.make m 0.) in
  for k = 0 to m - 1 do
    col_iter st st.bas.(k) (fun i v -> a.(i).(k) <- v)
  done;
  let inv = Array.init m (fun i -> Array.init m (fun j -> if i = j then 1. else 0.)) in
  for c = 0 to m - 1 do
    (* partial pivoting *)
    let piv_row = ref c in
    for r = c + 1 to m - 1 do
      if Float.abs a.(r).(c) > Float.abs a.(!piv_row).(c) then piv_row := r
    done;
    if Float.abs a.(!piv_row).(c) < 1e-12 then raise Singular_basis;
    if !piv_row <> c then begin
      let tmp = a.(c) in
      a.(c) <- a.(!piv_row);
      a.(!piv_row) <- tmp;
      let tmp = inv.(c) in
      inv.(c) <- inv.(!piv_row);
      inv.(!piv_row) <- tmp
    end;
    let p = a.(c).(c) in
    let ac = a.(c) and ic = inv.(c) in
    for k = 0 to m - 1 do
      ac.(k) <- ac.(k) /. p;
      ic.(k) <- ic.(k) /. p
    done;
    for r = 0 to m - 1 do
      if r <> c && Float_cmp.nonzero a.(r).(c) then begin
        let f = a.(r).(c) in
        let ar = a.(r) and ir = inv.(r) in
        for k = 0 to m - 1 do
          ar.(k) <- ar.(k) -. (f *. ac.(k));
          ir.(k) <- ir.(k) -. (f *. ic.(k))
        done
      end
    done
  done;
  for i = 0 to m - 1 do
    Array.blit inv.(i) 0 st.binv.(i) 0 m
  done;
  recompute_xb st

(* Pivot: entering variable j (with ftran column w) replaces the basic
   variable in row position r.  Updates Binv in place. *)
let update_binv st r w =
  let m = st.m in
  let piv = w.(r) in
  let br = st.binv.(r) in
  for k = 0 to m - 1 do
    br.(k) <- br.(k) /. piv
  done;
  for i = 0 to m - 1 do
    if i <> r && Float_cmp.nonzero w.(i) then begin
      let f = w.(i) and bi = st.binv.(i) in
      for k = 0 to m - 1 do
        bi.(k) <- bi.(k) -. (f *. br.(k))
      done
    end
  done

(* ------------------------------------------------------------------ *)
(* Primal simplex iterations with cost vector [costs].                 *)
(* ------------------------------------------------------------------ *)

type primal_result = P_optimal | P_unbounded | P_iter_limit

let primal_loop st costs ~iter_limit iter_count =
  let m = st.m in
  let y = Array.make m 0. in
  let w = Array.make m 0. in
  let rho = Array.make m 0. in
  (* reduced costs, maintained incrementally (O(nnz) per pivot instead
     of an O(m^2) btran per iteration) and recomputed periodically *)
  let d = Array.make st.ntot 0. in
  let recompute_d () =
    btran st costs y;
    for j = 0 to st.ntot - 1 do
      if st.vstat.(j) <> basic then d.(j) <- costs.(j) -. col_dot st y j
      else d.(j) <- 0.
    done
  in
  recompute_d ();
  let degen = ref 0 in
  let result = ref None in
  while !result = None do
    if !iter_count >= iter_limit then result := Some P_iter_limit
    else begin
      incr iter_count;
      if !iter_count mod 4096 = 0 then begin
        recompute_xb st;
        recompute_d ()
      end;
      let bland = !degen > degen_threshold in
      (* --- pricing: choose entering variable --- *)
      let enter = ref (-1) and enter_dir = ref 1. and best = ref opt_tol in
      let consider j dj =
        let stt = st.vstat.(j) in
        if stt <> basic && st.lo.(j) < st.up.(j) then begin
          let try_dir dir score =
            if score > opt_tol then
              if bland then begin
                if !enter = -1 || j < !enter then begin
                  enter := j;
                  enter_dir := dir;
                  best := score
                end
              end
              else if score > !best then begin
                enter := j;
                enter_dir := dir;
                best := score
              end
          in
          if stt = at_lower then try_dir 1. (-.dj)
          else if stt = at_upper then try_dir (-1.) dj
          else begin
            (* free: move in the improving direction *)
            try_dir 1. (-.dj);
            try_dir (-1.) dj
          end
        end
      in
      for j = 0 to st.ntot - 1 do
        if st.vstat.(j) <> basic then consider j d.(j)
      done;
      if !enter = -1 then begin
        (* confirm with exact reduced costs before declaring optimal *)
        recompute_d ();
        let confirm = ref (-1) in
        for j = 0 to st.ntot - 1 do
          if !confirm = -1 && st.vstat.(j) <> basic && st.lo.(j) < st.up.(j)
          then begin
            let stt = st.vstat.(j) in
            if
              (stt = at_lower && d.(j) < -.opt_tol)
              || (stt = at_upper && d.(j) > opt_tol)
              || (stt = free && Float.abs d.(j) > opt_tol)
            then confirm := j
          end
        done;
        if !confirm = -1 then result := Some P_optimal
      end
      else begin
        let j = !enter and s = !enter_dir in
        ftran st j w;
        (* --- ratio test --- *)
        (* Basic value i changes at rate (-. s *. w.(i)) per unit step. *)
        let tmax = ref infinity and leave = ref (-1) and leave_to_up = ref false in
        for i = 0 to m - 1 do
          let rate = -.s *. w.(i) in
          if rate < -.pivot_tol then begin
            let lb = st.lo.(st.bas.(i)) in
            if lb > neg_infinity then begin
              let ti = (st.xb.(i) -. lb) /. -.rate in
              let ti = if ti < 0. then 0. else ti in
              if
                ti < !tmax -. 1e-12
                || (ti < !tmax +. 1e-12
                   && (!leave = -1 || Float.abs w.(i) > Float.abs w.(!leave)))
              then begin
                tmax := ti;
                leave := i;
                leave_to_up := false
              end
            end
          end
          else if rate > pivot_tol then begin
            let ub = st.up.(st.bas.(i)) in
            if ub < infinity then begin
              let ti = (ub -. st.xb.(i)) /. rate in
              let ti = if ti < 0. then 0. else ti in
              if
                ti < !tmax -. 1e-12
                || (ti < !tmax +. 1e-12
                   && (!leave = -1 || Float.abs w.(i) > Float.abs w.(!leave)))
              then begin
                tmax := ti;
                leave := i;
                leave_to_up := true
              end
            end
          end
        done;
        (* Bound-flip possibility for the entering variable itself. *)
        let range = st.up.(j) -. st.lo.(j) in
        if range < !tmax then begin
          (* flip: move to the opposite bound, no basis change *)
          let t = range in
          for i = 0 to m - 1 do
            st.xb.(i) <- st.xb.(i) -. (s *. w.(i) *. t)
          done;
          if s > 0. then begin
            st.vstat.(j) <- at_upper;
            st.xn.(j) <- st.up.(j)
          end
          else begin
            st.vstat.(j) <- at_lower;
            st.xn.(j) <- st.lo.(j)
          end;
          degen := 0
        end
        else if !leave = -1 then result := Some P_unbounded
        else begin
          let r = !leave and t = !tmax in
          if t <= 1e-10 then incr degen else degen := 0;
          let entering_value = st.xn.(j) +. (s *. t) in
          for i = 0 to m - 1 do
            if i <> r then st.xb.(i) <- st.xb.(i) -. (s *. w.(i) *. t)
          done;
          let q = st.bas.(r) in
          st.vstat.(q) <- (if !leave_to_up then at_upper else at_lower);
          st.xn.(q) <- (if !leave_to_up then st.up.(q) else st.lo.(q));
          (* incremental dual update with the pre-pivot row r of Binv:
             d'_k = d_k - (d_j / w_r) * (rho . A_k) *)
          Array.blit st.binv.(r) 0 rho 0 m;
          let theta = d.(j) /. w.(r) in
          (try update_binv st r w
           with Division_by_zero ->
             refactorize st);
          st.bas.(r) <- j;
          st.vstat.(j) <- basic;
          st.xb.(r) <- entering_value;
          if Float_cmp.nonzero theta then
            for k = 0 to st.ntot - 1 do
              if st.vstat.(k) <> basic && k <> q then
                d.(k) <- d.(k) -. (theta *. col_dot st rho k)
            done;
          d.(q) <- -.theta;
          d.(j) <- 0.
        end
      end
    end
  done;
  match !result with Some r -> r | None -> assert false

(* ------------------------------------------------------------------ *)
(* Cold start: phase 1 from the slack basis.                           *)
(* ------------------------------------------------------------------ *)

let setup_cold st =
  let n = st.n and m = st.m in
  (* structural nonbasic at the bound closest to zero *)
  for j = 0 to n - 1 do
    if st.lo.(j) > neg_infinity then begin
      st.vstat.(j) <- at_lower;
      st.xn.(j) <- st.lo.(j)
    end
    else if st.up.(j) < infinity then begin
      st.vstat.(j) <- at_upper;
      st.xn.(j) <- st.up.(j)
    end
    else begin
      st.vstat.(j) <- free;
      st.xn.(j) <- 0.
    end
  done;
  (* slacks basic, identity basis; artificials fixed nonbasic *)
  for i = 0 to m - 1 do
    st.bas.(i) <- n + i;
    st.vstat.(n + i) <- basic;
    st.lo.(n + m + i) <- 0.;
    st.up.(n + m + i) <- 0.;
    st.vstat.(n + m + i) <- at_lower;
    st.xn.(n + m + i) <- 0.;
    let bi = st.binv.(i) in
    Array.fill bi 0 m 0.;
    bi.(i) <- 1.
  done;
  recompute_xb st

(* Phase 1: replace infeasible basic slacks by artificials; returns the
   phase-1 cost vector, or None if the start is already feasible. *)
let setup_phase1 st =
  let n = st.n and m = st.m in
  let costs = Array.make st.ntot 0. in
  let needed = ref false in
  for i = 0 to m - 1 do
    let sj = n + i in
    let v = st.xb.(i) in
    if v < st.lo.(sj) -. feas_tol || v > st.up.(sj) +. feas_tol then begin
      needed := true;
      let aj = n + m + i in
      (* slack leaves to its nearest bound; artificial absorbs residual *)
      let bound = if v > st.up.(sj) then st.up.(sj) else st.lo.(sj) in
      st.vstat.(sj) <- (if v > st.up.(sj) then at_upper else at_lower);
      st.xn.(sj) <- bound;
      let residual = v -. bound in
      if residual > 0. then begin
        st.lo.(aj) <- 0.;
        st.up.(aj) <- infinity;
        costs.(aj) <- 1.
      end
      else begin
        st.lo.(aj) <- neg_infinity;
        st.up.(aj) <- 0.;
        costs.(aj) <- -1.
      end;
      st.bas.(i) <- aj;
      st.vstat.(aj) <- basic;
      st.xb.(i) <- residual
    end
  done;
  if !needed then Some costs else None

let close_phase1 st =
  let n = st.n and m = st.m in
  for i = 0 to m - 1 do
    let aj = n + m + i in
    st.lo.(aj) <- 0.;
    st.up.(aj) <- 0.;
    if st.vstat.(aj) <> basic then begin
      st.vstat.(aj) <- at_lower;
      st.xn.(aj) <- 0.
    end
  done

let phase1_obj st costs =
  let s = ref 0. in
  for i = 0 to st.m - 1 do
    let c = costs.(st.bas.(i)) in
    if Float_cmp.nonzero c then s := !s +. (c *. st.xb.(i))
  done;
  !s

let extract_solution st ~status ~iterations =
  let n = st.n and m = st.m in
  let x = Array.make n 0. in
  for j = 0 to n - 1 do
    x.(j) <- st.xn.(j)
  done;
  for i = 0 to m - 1 do
    if st.bas.(i) < n then x.(st.bas.(i)) <- st.xb.(i)
  done;
  let y = Array.make m 0. in
  btran st st.cost y;
  let reduced = Array.make n 0. in
  let bound_term = ref 0. in
  for j = 0 to n - 1 do
    let d = st.cost.(j) -. col_dot st y j in
    reduced.(j) <- d;
    if st.vstat.(j) <> basic && Float_cmp.nonzero st.xn.(j) then
      bound_term := !bound_term +. (d *. st.xn.(j))
  done;
  let obj = ref 0. in
  for j = 0 to n - 1 do
    obj := !obj +. (st.cost.(j) *. x.(j))
  done;
  st.last_status <- Some status;
  {
    status;
    obj = !obj;
    x;
    row_duals = y;
    reduced_costs = reduced;
    bound_term = !bound_term;
    iterations;
  }

let default_iter_limit st = 50_000 + (50 * (st.n + st.m))

let cold_solve ?iter_limit st =
  let iter_limit =
    match iter_limit with Some l -> l | None -> default_iter_limit st
  in
  setup_cold st;
  let iters = ref 0 in
  let phase1_failed =
    match setup_phase1 st with
    | None -> false
    | Some p1costs -> (
        match primal_loop st p1costs ~iter_limit iters with
        | P_unbounded ->
            (* phase-1 objective is bounded below by 0; treat as numeric
               trouble and refactorize once *)
            refactorize st;
            phase1_obj st p1costs > feas_tol *. 10.
        | P_iter_limit -> true
        | P_optimal -> phase1_obj st p1costs > feas_tol *. 10.)
  in
  if phase1_failed then begin
    let status =
      if !iters >= iter_limit then Iteration_limit else Infeasible
    in
    extract_solution st ~status ~iterations:!iters
  end
  else begin
    close_phase1 st;
    recompute_xb st;
    match primal_loop st st.cost ~iter_limit iters with
    | P_optimal ->
        (* polish: guard against drift of the updated inverse *)
        recompute_xb st;
        let bad = ref false in
        for i = 0 to st.m - 1 do
          let q = st.bas.(i) in
          if
            st.xb.(i) < st.lo.(q) -. (10. *. feas_tol)
            || st.xb.(i) > st.up.(q) +. (10. *. feas_tol)
          then bad := true
        done;
        if !bad then begin
          (try refactorize st with Singular_basis -> ());
          ignore (primal_loop st st.cost ~iter_limit iters)
        end;
        extract_solution st ~status:Optimal ~iterations:!iters
    | P_unbounded -> extract_solution st ~status:Unbounded ~iterations:!iters
    | P_iter_limit ->
        extract_solution st ~status:Iteration_limit ~iterations:!iters
  end

(* ------------------------------------------------------------------ *)
(* Dual simplex for RHS-only changes.                                  *)
(* ------------------------------------------------------------------ *)

type dual_result = D_optimal | D_infeasible | D_iter_limit

let dual_loop st ~iter_limit iters =
  let m = st.m in
  let rho = Array.make m 0. in
  let w = Array.make m 0. in
  let y = Array.make m 0. in
  let d = Array.make st.ntot 0. in
  let recompute_duals () =
    btran st st.cost y;
    for j = 0 to st.ntot - 1 do
      if st.vstat.(j) <> basic then d.(j) <- st.cost.(j) -. col_dot st y j
    done
  in
  recompute_duals ();
  let zero_steps = ref 0 in
  let result = ref None in
  while !result = None do
    if !iters >= iter_limit then result := Some D_iter_limit
    else begin
      incr iters;
      if !iters mod 4096 = 0 then begin
        recompute_xb st;
        recompute_duals ()
      end;
      (* --- leaving: most violated basic variable --- *)
      let r = ref (-1) and viol = ref feas_tol and above = ref false in
      for i = 0 to m - 1 do
        let q = st.bas.(i) in
        let below_v = st.lo.(q) -. st.xb.(i) in
        let above_v = st.xb.(i) -. st.up.(q) in
        if below_v > !viol then begin
          viol := below_v;
          r := i;
          above := false
        end;
        if above_v > !viol then begin
          viol := above_v;
          r := i;
          above := true
        end
      done;
      if !r = -1 then result := Some D_optimal
      else begin
        let r = !r in
        Array.blit st.binv.(r) 0 rho 0 m;
        let bland = !zero_steps > degen_threshold in
        (* --- entering: dual ratio test --- *)
        let enter = ref (-1) and best_ratio = ref infinity and best_alpha = ref 0. in
        for j = 0 to st.ntot - 1 do
          let stt = st.vstat.(j) in
          if stt <> basic && st.lo.(j) < st.up.(j) then begin
            let alpha = col_dot st rho j in
            if Float.abs alpha > pivot_tol then begin
              let candidate =
                if !above then
                  (stt = at_lower && alpha > 0.)
                  || (stt = at_upper && alpha < 0.)
                  || stt = free
                else
                  (stt = at_lower && alpha < 0.)
                  || (stt = at_upper && alpha > 0.)
                  || stt = free
              in
              if candidate then begin
                let ratio = Float.abs d.(j) /. Float.abs alpha in
                (* Bland anti-cycling still honors the dual ratio test:
                   among (near-)minimal ratios take the smallest index,
                   otherwise dual feasibility would be destroyed. *)
                let better =
                  ratio < !best_ratio -. 1e-12
                  || ratio < !best_ratio +. 1e-12
                     &&
                     if bland then !enter = -1 || j < !enter
                     else Float.abs alpha > Float.abs !best_alpha
                in
                if better then begin
                  enter := j;
                  best_ratio := Float.min ratio !best_ratio;
                  best_alpha := alpha
                end
              end
            end
          end
        done;
        if !enter = -1 then result := Some D_infeasible
        else begin
          let j = !enter in
          if !best_ratio <= 1e-10 then incr zero_steps else zero_steps := 0;
          let alpha_j = !best_alpha in
          let q = st.bas.(r) in
          let target = if !above then st.up.(q) else st.lo.(q) in
          let delta = (st.xb.(r) -. target) /. alpha_j in
          ftran st j w;
          for i = 0 to m - 1 do
            if i <> r then st.xb.(i) <- st.xb.(i) -. (w.(i) *. delta)
          done;
          st.vstat.(q) <- (if !above then at_upper else at_lower);
          st.xn.(q) <- target;
          update_binv st r w;
          st.bas.(r) <- j;
          st.vstat.(j) <- basic;
          st.xb.(r) <- st.xn.(j) +. delta;
          (* update duals: d'_k = d_k - (d_j/alpha_j) * alpha_k *)
          let theta = d.(j) /. alpha_j in
          if Float_cmp.nonzero theta then begin
            for k = 0 to st.ntot - 1 do
              if st.vstat.(k) <> basic then begin
                let alpha_k = col_dot st rho k in
                d.(k) <- d.(k) -. (theta *. alpha_k)
              end
            done
          end;
          d.(q) <- -.theta;
          d.(j) <- 0.
        end
      end
    end
  done;
  match !result with Some r -> r | None -> assert false

(* A posteriori optimality check for the dual simplex: the final basis
   must be dual feasible under exactly-recomputed reduced costs.  If
   drift broke it, fall back to a cold solve rather than return a
   primal-feasible but suboptimal point. *)
let dual_feasible st =
  let y = Array.make st.m 0. in
  btran st st.cost y;
  let ok = ref true in
  for j = 0 to st.ntot - 1 do
    if !ok && st.vstat.(j) <> basic && st.lo.(j) < st.up.(j) then begin
      let d = st.cost.(j) -. col_dot st y j in
      if st.vstat.(j) = at_lower && d < -1e-6 then ok := false
      else if st.vstat.(j) = at_upper && d > 1e-6 then ok := false
      else if st.vstat.(j) = free && Float.abs d > 1e-6 then ok := false
    end
  done;
  !ok

let resolve_rhs ?iter_limit st rhs =
  if Array.length rhs <> st.m then invalid_arg "Simplex.resolve_rhs";
  Array.blit rhs 0 st.b 0 st.m;
  let iter_limit =
    match iter_limit with Some l -> l | None -> default_iter_limit st
  in
  let cold () = cold_solve ~iter_limit st in
  match st.last_status with
  | Some Optimal -> (
      recompute_xb st;
      let iters = ref 0 in
      match dual_loop st ~iter_limit iters with
      | D_optimal ->
          if dual_feasible st then
            extract_solution st ~status:Optimal ~iterations:!iters
          else begin
            Log.debug (fun m ->
                m "dual simplex drifted out of dual feasibility; cold re-solve");
            cold ()
          end
      | D_infeasible ->
          (* confirm with a cold solve to guard against numerics *)
          let sol = cold () in
          if sol.status = Optimal then sol
          else
            (* the warm dual correctly proved infeasibility *)
            extract_solution st ~status:Infeasible ~iterations:!iters
      | D_iter_limit -> cold ())
  | _ -> cold ()

let solve_warm ?iter_limit st =
  match st.last_status with
  | Some Optimal ->
      (* model RHS may have been mutated by the caller through the
         handle's captured copy; re-read is the caller's duty via
         [resolve_rhs].  Here just re-run from the current state. *)
      resolve_rhs ?iter_limit st (Array.copy st.b)
  | _ -> cold_solve ?iter_limit st

let extend st model =
  let st2 = make model in
  if st2.n <> st.n || st2.m < st.m then
    invalid_arg "Simplex.extend: model must only gain rows";
  match st.last_status with
  | Some Optimal -> (
      let remap j =
        if j < st.n then j
        else if j < st.n + st.m then st2.n + (j - st.n)
        else st2.n + st2.m + (j - st.n - st.m)
      in
      for j = 0 to st.n - 1 do
        st2.vstat.(j) <- st.vstat.(j);
        st2.xn.(j) <- st.xn.(j)
      done;
      for i = 0 to st.m - 1 do
        let os = st.n + i and oa = st.n + st.m + i in
        st2.vstat.(remap os) <- st.vstat.(os);
        st2.xn.(remap os) <- st.xn.(os);
        st2.vstat.(remap oa) <- at_lower;
        st2.xn.(remap oa) <- 0.
      done;
      for i = 0 to st.m - 1 do
        let b = remap st.bas.(i) in
        st2.bas.(i) <- b;
        st2.vstat.(b) <- basic
      done;
      for i = st.m to st2.m - 1 do
        st2.bas.(i) <- st2.n + i;
        st2.vstat.(st2.n + i) <- basic
      done;
      (* Block inverse: with the new rows' slacks basic the basis is
         B' = [[B, 0], [C, I]], so B'^-1 = [[B^-1, 0], [-C B^-1, I]]
         where C is the new rows' coefficients on the old basic
         columns (all structural: old slacks never appear in new
         rows). *)
      let pos_of_var = Array.make st.n (-1) in
      for i = 0 to st.m - 1 do
        if st.bas.(i) < st.n then pos_of_var.(st.bas.(i)) <- i
      done;
      for i = 0 to st.m - 1 do
        let src = st.binv.(i) and dst = st2.binv.(i) in
        Array.fill dst 0 st2.m 0.;
        Array.blit src 0 dst 0 st.m
      done;
      for r = st.m to st2.m - 1 do
        let dst = st2.binv.(r) in
        Array.fill dst 0 st2.m 0.;
        List.iter
          (fun (j, a) ->
            if j < st.n && pos_of_var.(j) >= 0 then begin
              let bk = st.binv.(pos_of_var.(j)) in
              for t = 0 to st.m - 1 do
                dst.(t) <- dst.(t) -. (a *. bk.(t))
              done
            end)
          (Lp_model.row_coeffs model r);
        dst.(r) <- 1.
      done;
      recompute_xb st2;
      (* same costs, appended basic slacks: the old duals remain
         feasible, so flag the state warm for the dual simplex *)
      st2.last_status <- Some Optimal;
      st2)
  | _ -> st2

let solve ?iter_limit model =
  let st = make model in
  let sol = cold_solve ?iter_limit st in
  (if sol.status = Optimal then
     let viol = Lp_model.max_violation model sol.x in
     if viol > 1e-5 then
       Log.warn (fun m ->
           m "solution of %s violates constraints by %g"
             (Lp_model.name model) viol));
  sol
