(** Light LP presolve.

    Applies safe, order-independent reductions before a solve and maps
    the reduced solution back to the original variable space:

    - empty rows are checked for consistency and dropped;
    - singleton rows (one variable) become variable bounds;
    - fixed variables (lb = ub) are substituted into rows and the
      objective;
    - variables that appear in no row are moved to their best bound.

    The reductions matter most for the per-scenario models, where
    failed links fix whole groups of tunnel variables to zero. *)

type reduced

val reduce : Lp_model.t -> (reduced, [ `Infeasible ]) result
(** Build the reduced model, or report infeasibility detected purely by
    presolve (e.g. an empty row with a negative <= RHS, or bound
    crossing from a singleton row). *)

val model : reduced -> Lp_model.t
(** The reduced model (fresh; the input model is not mutated). *)

val stats : reduced -> string
(** Human-readable reduction summary. *)

type row_fate =
  | Kept of int  (** survived; the payload is its row index in the reduced model *)
  | Dropped  (** eliminated by presolve; its reported dual 0 is a placeholder *)

val row_fates : reduced -> row_fate array
(** Per original row: whether it survived into the reduced model.  A
    [Dropped] row's postsolved dual of 0 carries no sensitivity
    information — [Simplex.dual_bound] stays valid only for RHS changes
    on [Kept] rows. *)

val solve : ?iter_limit:int -> Lp_model.t -> Simplex.solution
(** [solve m] = presolve, solve the reduced model, postsolve: returns a
    solution in the original variable space.  Status and objective
    match an unreduced {!Simplex.solve}; duals of the reduced model are
    mapped back to surviving rows, and rows eliminated by presolve
    report dual 0.  Callers that vary the RHS of possibly-eliminated
    rows must use {!solve_mapped} to distinguish a true zero dual from
    elimination. *)

val solve_mapped :
  ?iter_limit:int -> Lp_model.t -> Simplex.solution * row_fate array
(** [solve] plus the per-row fate map.  When presolve itself proves
    infeasibility (no reduced model exists), every row reports
    [Dropped]: none of the placeholder duals is a certificate. *)
