(** [flexile doctor]: replay a solve with elevated instrumentation and
    emit a structured JSON diagnosis — which phase stalled, which basis
    rows are near-singular, which health thresholds tripped, whether
    the frozen dense oracle agrees.  See DESIGN.md section 15.

    Reports are deterministic: the replay runs on the calling domain,
    floats are rendered with a fixed format, and nothing wall-clock- or
    job-count-dependent is included, so a fixture or dump diagnosis is
    byte-identical at any [--jobs]. *)

(** {1 Seeded pathological fixtures} *)

val near_singular_fixture : unit -> Lp_model.t
(** An LP whose optimal basis contains the 2x2 block
    [[1,1],[1,1+eps]] with [eps = 1e-10] — condition [~4e10], tripping
    the default [cond_limit] — plus a 16-step degenerate chain that
    forces consecutive zero-step pivots.  Model name
    ["near-singular-fixture"]. *)

val degenerate_fixture : unit -> Lp_model.t
(** The degenerate chain alone (["degenerate-chain-fixture"]): stalls
    under the doctor's lowered stall limit but is numerically sound. *)

val fixture_names : string list
(** CLI names: [["near-singular"; "degenerate"]]. *)

val fixture : string -> Lp_model.t option

val doctor_thresholds : unit -> Health.thresholds
(** [Health.default_thresholds] with the stall limit lowered to 8
    (unless pinned via [FLEXILE_HEALTH_STALL]) — the doctor's elevated
    instrumentation. *)

(** {1 Running a diagnosis} *)

type source =
  | Src_fixture of string
  | Src_dump of string * Health.dump  (** path and parsed snapshot *)
  | Src_model

type result = {
  r_report : string;  (** the diagnosis document (JSON, trailing newline) *)
  r_solution : Simplex.solution;
  r_health : Health.state;  (** captured timeline of the replay *)
  r_healthy : bool;  (** no stalls, trips or near-singular rows *)
}

val run_lp :
  ?oracle:bool -> ?source:source -> ?dump:Health.dump -> Lp_model.t -> result
(** Replay [model] under [Simplex.solve_doctor] with
    [doctor_thresholds] and render the report.  [oracle] (default true)
    also solves with [Simplex_dense] and reports status/objective
    parity.  When [dump] is given, its basis is additionally measured
    in isolation ([Simplex.diagnose_basis]) and its recorded eta limit
    governs the replay's refactorization cadence. *)

val run_fixture : ?oracle:bool -> string -> (result, string) Stdlib.result

val run_dump : ?oracle:bool -> string -> (result, string) Stdlib.result
(** Read a [Health.write_dump] snapshot and diagnose it: the dumped
    basis measured as captured, plus a full replay of the dumped model. *)
