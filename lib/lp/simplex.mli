(** Two-phase bounded-variable revised primal simplex, with a dual
    simplex for warm restarts after right-hand-side changes.

    The basis is held LU-factorized ([Sparse.Basis]) and advanced by
    product-form eta updates; the frozen dense-inverse solver survives
    as [Simplex_dense] for differential testing.  It produces dual
    certificates: row duals, reduced costs, and a parametric lower
    bound usable as a Benders cut when only the RHS varies (the
    reformulation (17)–(18) of the paper).

    Numerical health: every refactorization and every extraction feeds
    the [Health] observatory (residuals, condition estimate, stall
    detection — DESIGN.md section 15); [solve_doctor] and
    [diagnose_basis] run the same machinery with the in-memory timeline
    captured for [flexile doctor]. *)

type status = Optimal | Infeasible | Unbounded | Iteration_limit

type solution = {
  status : status;
  obj : float;  (** objective value; meaningful when [status = Optimal] *)
  x : float array;  (** primal values of the structural variables *)
  row_duals : float array;
      (** y with [obj = y.b + bound_term] at optimality; the marginal
          change of the optimum per unit of RHS on each row *)
  reduced_costs : float array;  (** structural reduced costs *)
  bound_term : float;
      (** sum over nonbasic variables of (reduced cost * bound value);
          constant part of the dual objective *)
  iterations : int;
}

val dual_bound : solution -> rhs:float array -> float
(** [dual_bound sol ~rhs] is a valid lower bound on the optimal value of
    the same LP with its right-hand side replaced by [rhs] (weak duality:
    the recorded dual solution stays feasible when only the RHS moves).
    Exact when [rhs] is the original RHS. *)

(** {1 One-shot interface} *)

val solve : ?iter_limit:int -> Lp_model.t -> solution
(** Solve from a cold (slack) basis.  [iter_limit] defaults to
    [50_000 + 50 * (nvars + nrows)]. *)

(** {1 Warm-restart interface}

    A [t] captures the model structure (columns, bounds, costs) at
    creation time; [resolve_rhs] then re-optimizes for a new RHS with
    the dual simplex starting from the previous optimal basis.  This is
    the paper's "the dual solution space is common across the LPs for
    different scenarios" acceleration. *)

type t

val make : Lp_model.t -> t

val solve_warm : ?iter_limit:int -> t -> solution
(** First solve (cold).  Subsequent calls re-solve for the model's
    current RHS reusing the last basis. *)

val resolve_rhs : ?iter_limit:int -> t -> float array -> solution
(** [resolve_rhs t rhs] re-optimizes with row right-hand sides [rhs]
    (length [nrows]), starting the dual simplex from the last optimal
    basis.  Falls back to a cold primal solve if the basis is unusable. *)

val extend : t -> Lp_model.t -> t
(** [extend t model] builds a new solver state for [model], which must
    be the same model [t] was created from with extra rows appended
    (same variables).  The previous optimal basis is reused with the
    new rows' slacks basic — a dual-feasible starting point, so the
    next [solve_warm]/[resolve_rhs] continues with the dual simplex
    instead of solving from scratch (the classic cutting-plane warm
    start). *)

(** {1 Health observatory}

    Phase tags in health samples and stall notes: 0 setup, 1 phase-1
    primal, 2 phase-2 primal, 3 dual (warm restart). *)

val health : t -> Health.state option
(** The solver's health state; [None] on the dense fallback path. *)

val solve_doctor :
  ?iter_limit:int ->
  ?eta_limit:int ->
  ?thresholds:Health.thresholds ->
  Lp_model.t ->
  solution * Health.state
(** Cold-solve [model] with the health timeline captured in memory
    (every refactorization, stall and loop sampled) — the elevated
    instrumentation [flexile doctor] replays under.  [eta_limit]
    overrides the FLEXILE_ETA_LIMIT/default eta-file cap, letting a
    dump replay reproduce the original refactorization cadence. *)

val diagnose_basis :
  ?eta_limit:int ->
  ?thresholds:Health.thresholds ->
  ?phase:int ->
  ?iteration:int ->
  Lp_model.t ->
  bas:int array ->
  vstat:int array ->
  Health.state
(** Factorize and measure one recorded basis of [model] (as captured in
    a health dump: [bas] is the basic variable per position, [vstat]
    the per-variable status codes over structural+slack+artificial
    columns) without running any pivots.  The returned state holds one
    sample describing that basis. *)
