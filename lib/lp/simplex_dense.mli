(** Frozen dense reference simplex.

    The pre-sparse solver (explicit dense basis inverse, O(m^2) pivots)
    kept as a differential oracle for the LU/eta-file path in
    {!Simplex}.  [Simplex] routes through this module when
    [FLEXILE_DENSE_SIMPLEX=1] is set; the sparse differential tests also
    call it directly.  Mirrors the historical [Simplex] interface; new
    solver work belongs in {!Simplex} / {!Sparse}, not here. *)

type status = Optimal | Infeasible | Unbounded | Iteration_limit

type solution = {
  status : status;
  obj : float;
  x : float array;
  row_duals : float array;
  reduced_costs : float array;
  bound_term : float;
  iterations : int;
}

val dual_bound : solution -> rhs:float array -> float

val solve : ?iter_limit:int -> Lp_model.t -> solution

type t

val make : Lp_model.t -> t
val solve_warm : ?iter_limit:int -> t -> solution
val resolve_rhs : ?iter_limit:int -> t -> float array -> solution
val extend : t -> Lp_model.t -> t
