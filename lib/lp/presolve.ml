let tol = 1e-9

type reduced = {
  original : Lp_model.t;
  reduced_model : Lp_model.t;
  var_map : int array;  (** original var -> reduced var, or -1 if fixed *)
  fixed_value : float array;  (** meaningful where var_map = -1 *)
  row_map : int array;  (** original row -> reduced row, or -1 if dropped *)
  obj_constant : float;
  dropped_rows : int;
  fixed_vars : int;
  tightened : int;
}

let model r = r.reduced_model

let stats r =
  Printf.sprintf "%d rows dropped, %d variables fixed, %d bounds tightened"
    r.dropped_rows r.fixed_vars r.tightened

let reduce original =
  let nv = Lp_model.nvars original and nr = Lp_model.nrows original in
  let lb = Array.init nv (Lp_model.lb original) in
  let ub = Array.init nv (Lp_model.ub original) in
  let dropped = Array.make nr false in
  let infeasible = ref false in
  let tightened = ref 0 in
  let tighten_lb j v =
    if v > lb.(j) +. tol then begin
      lb.(j) <- v;
      incr tightened;
      if lb.(j) > ub.(j) +. 1e-7 then infeasible := true
    end
  in
  let tighten_ub j v =
    if v < ub.(j) -. tol then begin
      ub.(j) <- v;
      incr tightened;
      if lb.(j) > ub.(j) +. 1e-7 then infeasible := true
    end
  in
  let is_fixed j = ub.(j) -. lb.(j) <= tol in
  (* fixpoint over empty-row and singleton-row reductions *)
  let changed = ref true in
  let passes = ref 0 in
  while !changed && (not !infeasible) && !passes < 10 do
    changed := false;
    incr passes;
    for i = 0 to nr - 1 do
      if not dropped.(i) then begin
        let coeffs = Lp_model.row_coeffs original i in
        let live = List.filter (fun (j, _) -> not (is_fixed j)) coeffs in
        let fixed_sum =
          List.fold_left
            (fun acc (j, c) -> if is_fixed j then acc +. (c *. lb.(j)) else acc)
            0. coeffs
        in
        let rhs = Lp_model.rhs original i -. fixed_sum in
        match live with
        | [] ->
            (match Lp_model.row_sense original i with
            | Lp_model.Le -> if rhs < -1e-7 then infeasible := true
            | Lp_model.Ge -> if rhs > 1e-7 then infeasible := true
            | Lp_model.Eq -> if Float.abs rhs > 1e-7 then infeasible := true);
            dropped.(i) <- true;
            changed := true
        | [ (j, a) ] when Float.abs a > tol ->
            (match Lp_model.row_sense original i with
            | Lp_model.Le ->
                if a > 0. then tighten_ub j (rhs /. a) else tighten_lb j (rhs /. a)
            | Lp_model.Ge ->
                if a > 0. then tighten_lb j (rhs /. a) else tighten_ub j (rhs /. a)
            | Lp_model.Eq ->
                tighten_lb j (rhs /. a);
                tighten_ub j (rhs /. a));
            dropped.(i) <- true;
            changed := true
        | _ -> ()
      end
    done
  done;
  if !infeasible then Error `Infeasible
  else begin
    (* build the reduced model over non-fixed variables *)
    let reduced_model = Lp_model.create ~name:(Lp_model.name original ^ "-pre") () in
    let var_map = Array.make nv (-1) in
    let fixed_value = Array.make nv 0. in
    let fixed_vars = ref 0 in
    let obj_constant = ref 0. in
    for j = 0 to nv - 1 do
      if is_fixed j then begin
        incr fixed_vars;
        fixed_value.(j) <- lb.(j);
        obj_constant := !obj_constant +. (Lp_model.obj_coef original j *. lb.(j))
      end
      else
        var_map.(j) <-
          Lp_model.add_var reduced_model ~lb:lb.(j) ~ub:ub.(j)
            ~obj:(Lp_model.obj_coef original j)
            ()
    done;
    let row_map = Array.make nr (-1) in
    let dropped_rows = ref 0 in
    for i = 0 to nr - 1 do
      if dropped.(i) then incr dropped_rows
      else begin
        let coeffs = Lp_model.row_coeffs original i in
        let fixed_sum =
          List.fold_left
            (fun acc (j, c) ->
              if var_map.(j) < 0 then acc +. (c *. fixed_value.(j)) else acc)
            0. coeffs
        in
        let live =
          List.filter_map
            (fun (j, c) -> if var_map.(j) >= 0 then Some (var_map.(j), c) else None)
            coeffs
        in
        row_map.(i) <-
          Lp_model.add_row reduced_model
            (Lp_model.row_sense original i)
            (Lp_model.rhs original i -. fixed_sum)
            live
      end
    done;
    Ok
      {
        original;
        reduced_model;
        var_map;
        fixed_value;
        row_map;
        obj_constant = !obj_constant;
        dropped_rows = !dropped_rows;
        fixed_vars = !fixed_vars;
        tightened = !tightened;
      }
  end

let postsolve r (sol : Simplex.solution) =
  let nv = Lp_model.nvars r.original and nr = Lp_model.nrows r.original in
  let x = Array.make nv 0. in
  let reduced_costs = Array.make nv 0. in
  for j = 0 to nv - 1 do
    if r.var_map.(j) >= 0 then begin
      x.(j) <- sol.Simplex.x.(r.var_map.(j));
      reduced_costs.(j) <- sol.Simplex.reduced_costs.(r.var_map.(j))
    end
    else x.(j) <- r.fixed_value.(j)
  done;
  let row_duals = Array.make nr 0. in
  for i = 0 to nr - 1 do
    if r.row_map.(i) >= 0 then
      row_duals.(i) <- sol.Simplex.row_duals.(r.row_map.(i))
  done;
  let obj = sol.Simplex.obj +. r.obj_constant in
  (* keep [dual_bound] exact at the original RHS: obj = y.b + bound_term *)
  let ydotb = ref 0. in
  for i = 0 to nr - 1 do
    ydotb := !ydotb +. (row_duals.(i) *. Lp_model.rhs r.original i)
  done;
  {
    sol with
    Simplex.obj;
    x;
    row_duals;
    reduced_costs;
    bound_term = obj -. !ydotb;
  }

type row_fate = Kept of int | Dropped

let row_fates r =
  Array.map (fun ri -> if ri >= 0 then Kept ri else Dropped) r.row_map

let presolved_infeasible m =
  {
    Simplex.status = Simplex.Infeasible;
    obj = infinity;
    x = Array.make (Lp_model.nvars m) 0.;
    row_duals = Array.make (Lp_model.nrows m) 0.;
    reduced_costs = Array.make (Lp_model.nvars m) 0.;
    bound_term = 0.;
    iterations = 0;
  }

let solve_reduced ?iter_limit r =
  let sol = Simplex.solve ?iter_limit r.reduced_model in
  if sol.Simplex.status = Simplex.Optimal then postsolve r sol
  else
    {
      sol with
      Simplex.x = Array.make (Lp_model.nvars r.original) 0.;
      row_duals = Array.make (Lp_model.nrows r.original) 0.;
      reduced_costs = Array.make (Lp_model.nvars r.original) 0.;
    }

let solve ?iter_limit m =
  match reduce m with
  | Error `Infeasible -> presolved_infeasible m
  | Ok r -> solve_reduced ?iter_limit r

let solve_mapped ?iter_limit m =
  match reduce m with
  | Error `Infeasible ->
      (* nothing was solved: every reported dual is a placeholder, so
         every row is flagged as eliminated *)
      (presolved_infeasible m, Array.make (Lp_model.nrows m) Dropped)
  | Ok r -> (solve_reduced ?iter_limit r, row_fates r)
