(** Flow-level testbed emulator standing in for the paper's
    Mininet/Open vSwitch cluster (§6.1).

    The paper found that the only systematic gap between its
    optimization models and the emulation testbed is discretization:
    Open vSwitch select groups take integer weights, and traffic is
    packetized.  This emulator reproduces exactly those channels:

    - the model's tunnel allocation is converted to integer weights in
      [1, weight_scale];
    - each flow's admitted traffic (the token-bucket rate, i.e. its
      model-delivered volume) is quantized into packets that pick a
      tunnel at random with weight-proportional probability;
    - links drop excess traffic proportionally, hop by hop (computed
      as the fixed point of per-link pass factors).

    Comparing emulated to model losses reproduces Fig. 9c. *)

type run = {
  emulated : Flexile_te.Instance.losses;
  pcc : float;  (** Pearson correlation, emulated vs model, all cells *)
  max_abs_diff : float;
  diff_cdf : (float * float) list;
      (** CDF of (emulated - model) loss over flows x scenarios *)
}

val reconstruct_allocation :
  Flexile_te.Instance.t ->
  sid:int ->
  model_losses:Flexile_te.Instance.losses ->
  float array array array
(** Recover a concrete tunnel allocation (class -> pair -> tunnel)
    realizing the scheme's model losses in a scenario: the LP the
    controller would solve to install forwarding weights. *)

val emulate_scenario :
  ?packets_per_unit:int ->
  ?weight_scale:int ->
  seed:Flexile_util.Prng.t ->
  Flexile_te.Instance.t ->
  sid:int ->
  model_losses:Flexile_te.Instance.losses ->
  float array
(** Emulate a single scenario; returns the per-flow loss fractions
    (indexed by flow id).  Only column [sid] of [model_losses] is
    read, so a replay driver (the [flexile monitor] subcommand) can
    fill the matrix lazily as scenarios are drawn.  The PRNG state
    advances with each packet, so independent per-scenario seeds give
    draw-order-independent results. *)

val emulate :
  ?packets_per_unit:int ->
  ?weight_scale:int ->
  seed:Flexile_util.Prng.t ->
  Flexile_te.Instance.t ->
  model_losses:Flexile_te.Instance.losses ->
  run
(** Emulate every scenario once (via {!emulate_scenario}, one shared
    PRNG).  [packets_per_unit] (default 200) controls quantization
    granularity; [weight_scale] (default 100) is the Open vSwitch
    select-group weight range. *)
