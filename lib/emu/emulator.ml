module Lp_model = Flexile_lp.Lp_model
module Simplex = Flexile_lp.Simplex
module Graph = Flexile_net.Graph
module Instance = Flexile_te.Instance
module Prng = Flexile_util.Prng
module Stats = Flexile_util.Stats
module Trace = Flexile_util.Trace

(* per-scenario emulation latency, and the distribution of the
   discretization gap |emulated - model| over (flow, scenario) cells —
   the quantity Fig. 9c studies, live as a histogram *)
let h_scenario = Trace.hist "emu.scenario_seconds"
let h_abs_diff = Trace.hist "emu.flow_abs_diff"

type run = {
  emulated : Instance.losses;
  pcc : float;
  max_abs_diff : float;
  diff_cdf : (float * float) list;
}

let reconstruct_allocation inst ~sid ~model_losses =
  let g = inst.Instance.graph in
  let nk = Array.length inst.Instance.classes in
  let np = Array.length inst.Instance.pairs in
  let model = Lp_model.create ~name:(Printf.sprintf "reconstruct-%d" sid) () in
  let x =
    Array.init nk (fun k ->
        Array.init np (fun i ->
            let vars =
              Array.make (Array.length inst.Instance.tunnels.(k).(i)) (-1)
            in
            Array.iter
              (fun ti ->
                (* tiny cost keeps the allocation minimal and unique-ish *)
                vars.(ti) <- Lp_model.add_var model ~obj:1. ())
              inst.Instance.alive_tunnels.(sid).(k).(i);
            vars))
  in
  Array.iter
    (fun (f : Instance.flow) ->
      if f.Instance.demand > 0. && Instance.flow_connected inst f sid then begin
        let demand = Instance.demand_in inst f sid in
        let target = demand *. (1. -. model_losses.(f.Instance.fid).(sid)) in
        (* slack for LP tolerance in the scheme's own solve *)
        let target = Float.max 0. (target -. (1e-6 *. demand)) in
        let coeffs =
          Array.to_list inst.Instance.alive_tunnels.(sid).(f.Instance.cls).(f.Instance.pair)
          |> List.map (fun ti -> (x.(f.Instance.cls).(f.Instance.pair).(ti), 1.))
        in
        ignore (Lp_model.add_row model Lp_model.Ge target coeffs)
      end)
    inst.Instance.flows;
  let per_edge = Array.make (Graph.nedges g) [] in
  for k = 0 to nk - 1 do
    for i = 0 to np - 1 do
      Array.iteri
        (fun ti (t : Flexile_net.Tunnels.t) ->
          let v = x.(k).(i).(ti) in
          if v >= 0 then
            Array.iter
              (fun e -> per_edge.(e) <- (v, 1.) :: per_edge.(e))
              t.Flexile_net.Tunnels.path)
        inst.Instance.tunnels.(k).(i)
    done
  done;
  Array.iteri
    (fun e coeffs ->
      if coeffs <> [] then
        ignore
          (Lp_model.add_row model Lp_model.Le
             (Instance.edge_capacity inst ~sid e)
             coeffs))
    per_edge;
  let sol = Simplex.solve model in
  let value v = if v >= 0 && sol.Simplex.status = Simplex.Optimal then sol.Simplex.x.(v) else 0. in
  Array.map (Array.map (Array.map value)) x

(* Integer select-group weights from a fractional split. *)
let integer_weights ~weight_scale split =
  let total = Array.fold_left ( +. ) 0. split in
  if total <= 0. then Array.map (fun _ -> 0) split
  else
    Array.map
      (fun s ->
        if s <= 1e-9 then 0
        else max 1 (int_of_float (Float.round (float_of_int weight_scale *. s /. total))))
      split

(* Fixed point of per-link pass factors: traffic arriving at each hop
   is the tunnel's injected volume scaled by the upstream factors. *)
let link_pass_factors inst ~sid tunnel_traffic =
  let g = inst.Instance.graph in
  let ne = Graph.nedges g in
  let factors = Array.make ne 1. in
  let scen = inst.Instance.scenarios.(sid) in
  for _ = 1 to 25 do
    let load = Array.make ne 0. in
    List.iter
      (fun ((t : Flexile_net.Tunnels.t), volume) ->
        let carried = ref volume in
        Array.iter
          (fun e ->
            load.(e) <- load.(e) +. !carried;
            carried := !carried *. factors.(e))
          t.Flexile_net.Tunnels.path)
      tunnel_traffic;
    for e = 0 to ne - 1 do
      let cap =
        g.Graph.edges.(e).Graph.capacity
        *. scen.Flexile_failure.Failure_model.cap_frac.(e)
      in
      if cap <= 0. then factors.(e) <- 0.
      else if load.(e) > cap then factors.(e) <- cap /. load.(e)
      else factors.(e) <- 1.
    done
  done;
  factors

(* Reconstruction depends only on (instance, model losses, scenario),
   not on the emulation seed; cache it so repeated runs (the paper does
   5 per scheme) only pay for the LPs once. *)
(* c2-global-mut: single-domain memo list; reconstruction is a pure
   function of (instance, model losses), so a hit returns exactly what
   a recomputation would. *)
let alloc_cache :
    (Instance.losses * float array array array option array) list ref =
  (ref [] [@lint.allow "c2-global-mut"])

let cached_allocation inst ~sid ~model_losses =
  let slot =
    match
      List.find_opt (fun (key, _) -> key == model_losses) !alloc_cache
    with
    | Some (_, slots) -> slots
    | None ->
        let slots = Array.make (Instance.nscenarios inst) None in
        alloc_cache := (model_losses, slots) :: !alloc_cache;
        if List.length !alloc_cache > 16 then
          alloc_cache :=
            List.filteri (fun i _ -> i < 16) !alloc_cache;
        slots
  in
  match slot.(sid) with
  | Some a -> a
  | None ->
      let a = reconstruct_allocation inst ~sid ~model_losses in
      slot.(sid) <- Some a;
      a

let emulate_scenario ?(packets_per_unit = 200) ?(weight_scale = 100) ~seed inst
    ~sid ~model_losses =
  Trace.observe_duration h_scenario @@ fun () ->
  let out = Array.make (Instance.nflows inst) 1. in
  let alloc = cached_allocation inst ~sid ~model_losses in
  (* per-flow packetized tunnel volumes *)
  let tunnel_traffic = ref [] in
  let flow_sent = Array.make (Instance.nflows inst) 0. in
  Array.iter
    (fun (f : Instance.flow) ->
        let fid = f.Instance.fid in
        let demand = Instance.demand_in inst f sid in
        if demand <= 0. then out.(fid) <- 0.
        else if not (Instance.flow_connected inst f sid) then
          out.(fid) <- 1.
        else begin
          let split = alloc.(f.Instance.cls).(f.Instance.pair) in
          let weights = integer_weights ~weight_scale split in
          let wsum = Array.fold_left ( + ) 0 weights in
          let admitted = demand *. (1. -. model_losses.(fid).(sid)) in
          if wsum = 0 || admitted <= 0. then out.(fid) <- 1.
          else begin
            let npackets =
              max 1
                (int_of_float
                   (Float.round (admitted *. float_of_int packets_per_unit)))
            in
            let counts = Array.make (Array.length weights) 0 in
            for _ = 1 to npackets do
              (* weighted tunnel choice per packet *)
              let r = Prng.int seed wsum in
              let acc = ref 0 and chosen = ref 0 in
              (try
                 Array.iteri
                   (fun ti w ->
                     acc := !acc + w;
                     if r < !acc then begin
                       chosen := ti;
                       raise Exit
                     end)
                   weights
               with Exit -> ());
              counts.(!chosen) <- counts.(!chosen) + 1
            done;
            let unit = admitted /. float_of_int npackets in
            Array.iteri
              (fun ti c ->
                if c > 0 then
                  tunnel_traffic :=
                    ( inst.Instance.tunnels.(f.Instance.cls).(f.Instance.pair).(ti),
                      float_of_int c *. unit,
                      fid )
                    :: !tunnel_traffic)
              counts;
            flow_sent.(fid) <- admitted
          end
        end)
    inst.Instance.flows;
  let traffic_only = List.map (fun (t, v, _) -> (t, v)) !tunnel_traffic in
  let factors = link_pass_factors inst ~sid traffic_only in
  let delivered = Array.make (Instance.nflows inst) 0. in
  List.iter
    (fun ((t : Flexile_net.Tunnels.t), volume, fid) ->
      let carried = ref volume in
      Array.iter
        (fun e -> carried := !carried *. factors.(e))
        t.Flexile_net.Tunnels.path;
      delivered.(fid) <- delivered.(fid) +. !carried)
    !tunnel_traffic;
  Array.iter
    (fun (f : Instance.flow) ->
      let fid = f.Instance.fid in
      let demand = Instance.demand_in inst f sid in
      if
        demand > 0.
        && Instance.flow_connected inst f sid
        && flow_sent.(fid) > 0.
      then
        out.(fid) <-
          Float.max 0. (Float.min 1. (1. -. (delivered.(fid) /. demand))))
    inst.Instance.flows;
  out

let emulate ?(packets_per_unit = 200) ?(weight_scale = 100) ~seed inst
    ~model_losses =
  let nq = Instance.nscenarios inst in
  let emulated = Instance.alloc_losses inst in
  for sid = 0 to nq - 1 do
    let per_flow =
      emulate_scenario ~packets_per_unit ~weight_scale ~seed inst ~sid
        ~model_losses
    in
    Array.iteri (fun fid v -> emulated.(fid).(sid) <- v) per_flow
  done;
  (* compare against the model *)
  let em = ref [] and mo = ref [] and diffs = ref [] in
  Array.iter
    (fun (f : Instance.flow) ->
      if f.Instance.demand > 0. then
        for sid = 0 to nq - 1 do
          em := emulated.(f.Instance.fid).(sid) :: !em;
          mo := model_losses.(f.Instance.fid).(sid) :: !mo;
          let d =
            emulated.(f.Instance.fid).(sid)
            -. model_losses.(f.Instance.fid).(sid)
          in
          Trace.observe h_abs_diff (Float.abs d);
          diffs := d :: !diffs
        done)
    inst.Instance.flows;
  let em = Array.of_list !em and mo = Array.of_list !mo in
  let diffs = Array.of_list !diffs in
  let n = Array.length diffs in
  let diff_cdf =
    let sorted = Array.copy diffs in
    Array.sort Float.compare sorted;
    Array.to_list
      (Array.mapi
         (fun i v -> (v, float_of_int (i + 1) /. float_of_int n))
         sorted)
  in
  {
    emulated;
    pcc = Stats.pearson em mo;
    max_abs_diff = Array.fold_left (fun a d -> Float.max a (Float.abs d)) 0. diffs;
    diff_cdf;
  }
