(* Miss attribution: *why* does a class miss (or burn budget toward
   missing) its percentile-loss objective?

   Three decompositions, all computed from artifacts the solver
   already produced — no re-solving beyond one small clairvoyant LP
   per (class, scenario) for the regret baseline:

   - scenario attribution: the class's binding flow (the arg-max of
     FlowLoss at beta) has a weighted loss distribution over
     scenarios; scenarios whose loss respects the promise contribute
     "good" mass, and the shortfall [beta - good_mass] is charged to
     the cheapest violating scenarios in ascending loss order — the
     exact scenarios that would have to be fixed for the percentile to
     clear the promise.  Attributed mass telescopes back to the miss
     mass by construction (the 1e-9 reconciliation discipline), with
     any remainder charged to unenumerated mass at loss 1.0, mirroring
     the paper's conservative treatment.

   - bottleneck attribution: each scenario's binding capacity edges
     and LP dual values, captured from the simplex solution the online
     allocation already computed (Scen_lp's ?duals surface), are
     aggregated into per-edge blame = sum over attributed scenarios of
     attributed_mass * dual.

   - regret attribution: online_loss - clairvoyant class optimum per
     (class, scenario) — how much the online critical-set allocator
     left on the table versus a solver that saw the scenario coming
     and had the network to itself.  Nonnegative up to LP tolerance
     (the online allocation restricted to the class is feasible for
     the relaxed LP).  Exported as the slo.regret histogram and the
     flexile_regret Prometheus family.

   Every scenario carries its failure-regime tag (Instance.regime), so
   attainment, attributed mass and regret are also reported
   conditioned on regime. *)

module Trace = Flexile_util.Trace
module Stats = Flexile_util.Stats
module Instance = Flexile_te.Instance
module Metrics = Flexile_te.Metrics
module Scen_lp = Flexile_te.Scen_lp
module Scenario_engine = Flexile_te.Scenario_engine
module Flexile_online = Flexile_te.Flexile_online
module Failure_model = Flexile_failure.Failure_model
module Graph = Flexile_net.Graph

(* value-distribution histogram (no _seconds suffix): survives the
   deterministic export filter, so regret shows up in monitor
   artifacts *)
let h_regret = Trace.hist "slo.regret"

type inputs = {
  inst : Instance.t;
  promised : float array;
  tol : float;
  online : Instance.losses;
  regret : float array array;
  duals : (int * float) list array;
}

let online_losses t = t.online
let regret t = t.regret
let duals t = t.duals

let prepare ?jobs ?(tol = 1e-6) inst ~offline ~promised () =
  let nk = Array.length inst.Instance.classes in
  if Array.length promised <> nk then invalid_arg "Attribution.prepare: promised";
  let online, duals = Flexile_online.run_with_duals ?jobs inst ~offline in
  (* clairvoyant per-class optima: one fresh LP per (scenario, class),
     fanned out deterministically (cold solves, static sharding) *)
  let optima =
    Scenario_engine.sweep ?jobs inst
      ~init:(fun _ -> ())
      ~f:(fun () sid ->
        Array.init nk (fun k -> Scen_lp.class_optimum inst ~sid ~cls:k))
  in
  let ns = Instance.nscenarios inst in
  let class_max = Array.make_matrix nk ns 0. in
  Array.iter
    (fun (f : Instance.flow) ->
      if f.Instance.demand > 0. then
        for sid = 0 to ns - 1 do
          class_max.(f.Instance.cls).(sid) <-
            Float.max class_max.(f.Instance.cls).(sid)
              online.(f.Instance.fid).(sid)
        done)
    inst.Instance.flows;
  let regret =
    Array.init nk (fun k ->
        Array.init ns (fun sid -> class_max.(k).(sid) -. optima.(sid).(k)))
  in
  for k = 0 to nk - 1 do
    for sid = 0 to ns - 1 do
      Trace.observe h_regret (Float.max 0. regret.(k).(sid))
    done
  done;
  { inst; promised = Array.copy promised; tol; online; regret; duals }

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

type bottleneck = { bedge : int; bu : int; bv : int; bdual : float }

type scen_attr = {
  ssid : int;
  sregime : string;
  sprob : float;
  sloss : float;
  sattr : float;
  sregret : float;
  sbottlenecks : bottleneck list;
}

type regime_attr = {
  gregime : string;
  gmass : float;
  gattr : float;
  gattainment : float;
  gattained : bool;
  gregret : float;
}

type class_attr = {
  acls : int;
  aname : string;
  abeta : float;
  apromised : float;
  aobserved : float;
  aattained : bool;
  abinding_fid : int;
  agood_mass : float;
  abad_mass : float;
  amiss_mass : float;
  aburn : float;
  ascenarios : scen_attr list;
  aother_mass : float;
  aunenumerated : float;
  aregimes : regime_attr list;
  ablame : bottleneck list;
  aregret_expected : float;
  aregret_max : float;
  apromise_gap : float;
}

type report = { rtol : float; classes : class_attr list }

let attributed_total c =
  List.fold_left (fun a s -> a +. s.sattr) 0. c.ascenarios
  +. c.aother_mass +. c.aunenumerated

let edge_ends inst e =
  let edge = inst.Instance.graph.Graph.edges.(e) in
  (edge.Graph.u, edge.Graph.v)

let mk_bottleneck inst (e, d) =
  let u, v = edge_ends inst e in
  { bedge = e; bu = u; bv = v; bdual = d }

(* descending by value, ties on ascending edge id: deterministic *)
let sort_edges_desc l =
  List.sort
    (fun (e1, d1) (e2, d2) ->
      match Float.compare d2 d1 with 0 -> Int.compare e1 e2 | c -> c)
    l

let analyze ?(top = max_int) t ~losses =
  let inst = t.inst in
  let ns = Instance.nscenarios inst in
  let regime_names = Instance.regime_names inst in
  let scen_regime = Array.init ns (fun sid -> Instance.regime inst ~sid) in
  let scen_prob =
    Array.map (fun (s : Failure_model.scenario) -> s.Failure_model.prob)
      inst.Instance.scenarios
  in
  let classes =
    List.init (Array.length inst.Instance.classes) @@ fun k ->
    let c = inst.Instance.classes.(k) in
    let beta = c.Instance.beta in
    let promised = t.promised.(k) in
    let observed = Metrics.perc_loss inst losses ~cls:k () in
    (* the binding flow: first arg-max of FlowLoss(f, beta) — the flow
       whose tail distribution IS the class percentile *)
    let binding = ref (-1) and best = ref Float.neg_infinity in
    Array.iter
      (fun (f : Instance.flow) ->
        if f.Instance.cls = k && f.Instance.demand > 0. then begin
          let v = Metrics.flow_loss_var inst losses f ~beta in
          if v > !best then begin
            best := v;
            binding := f.Instance.fid
          end
        end)
      inst.Instance.flows;
    let loss_of sid = if !binding >= 0 then losses.(!binding).(sid) else 0. in
    let good_mass = ref 0. and bad = ref [] and bad_mass = ref 0. in
    for sid = ns - 1 downto 0 do
      let l = loss_of sid in
      if l <= promised +. t.tol then good_mass := !good_mass +. scen_prob.(sid)
      else begin
        bad := (sid, l, scen_prob.(sid)) :: !bad;
        bad_mass := !bad_mass +. scen_prob.(sid)
      end
    done;
    let miss_mass = Float.max 0. (beta -. !good_mass) in
    let burn =
      if beta < 1. then !bad_mass /. (1. -. beta)
      else if !bad_mass > 0. then Float.infinity
      else 0.
    in
    (* charge the miss mass to the cheapest violating scenarios in
       ascending loss order; what the enumerated set cannot cover is
       unenumerated mass at loss 1.0 *)
    let sorted_bad =
      List.sort
        (fun (s1, l1, _) (s2, l2, _) ->
          match Float.compare l1 l2 with 0 -> Int.compare s1 s2 | c -> c)
        !bad
    in
    let remaining = ref miss_mass in
    let attributed =
      List.filter_map
        (fun (sid, l, p) ->
          let a = Float.min p !remaining in
          remaining := !remaining -. a;
          if a > 0. then Some (sid, l, p, a) else None)
        sorted_bad
    in
    let unenumerated = Float.max 0. !remaining in
    (* rank by attributed mass for the report *)
    let ranked =
      List.sort
        (fun (s1, _, _, a1) (s2, _, _, a2) ->
          match Float.compare a2 a1 with 0 -> Int.compare s1 s2 | c -> c)
        attributed
    in
    let shown, hidden =
      List.mapi (fun i x -> (i, x)) ranked
      |> List.partition (fun (i, _) -> i < top)
    in
    let other_mass =
      List.fold_left (fun acc (_, (_, _, _, a)) -> acc +. a) 0. hidden
    in
    let scen_attrs =
      List.map
        (fun (_, (sid, l, p, a)) ->
          {
            ssid = sid;
            sregime = scen_regime.(sid);
            sprob = p;
            sloss = l;
            sattr = a;
            sregret = Float.max 0. t.regret.(k).(sid);
            sbottlenecks =
              (let tops =
                 match sort_edges_desc t.duals.(sid) with
                 | a :: b :: c :: d :: e :: _ -> [ a; b; c; d; e ]
                 | l -> l
               in
               List.map (mk_bottleneck inst) tops);
          })
        shown
    in
    (* per-regime: total mass, attributed mass, conditional attainment
       (probabilities renormalized within the regime), mean regret *)
    let regimes =
      List.filter_map
        (fun r ->
          let mass = ref 0. in
          for sid = 0 to ns - 1 do
            if String.equal scen_regime.(sid) r then
              mass := !mass +. scen_prob.(sid)
          done;
          if !mass <= 0. then None
          else begin
            let attr =
              List.fold_left
                (fun acc (sid, _, _, a) ->
                  if String.equal scen_regime.(sid) r then acc +. a else acc)
                0. attributed
            in
            let cond_var (f : Instance.flow) =
              let samples = ref [] in
              for sid = ns - 1 downto 0 do
                if String.equal scen_regime.(sid) r then
                  samples :=
                    (losses.(f.Instance.fid).(sid), scen_prob.(sid) /. !mass)
                    :: !samples
              done;
              Stats.weighted_var (Array.of_list !samples) ~beta
            in
            let attainment =
              Array.fold_left
                (fun acc (f : Instance.flow) ->
                  if f.Instance.cls = k && f.Instance.demand > 0. then
                    Float.max acc (cond_var f)
                  else acc)
                0. inst.Instance.flows
            in
            let wregret = ref 0. in
            for sid = 0 to ns - 1 do
              if String.equal scen_regime.(sid) r then
                wregret :=
                  !wregret
                  +. (scen_prob.(sid) *. Float.max 0. t.regret.(k).(sid))
            done;
            Some
              {
                gregime = r;
                gmass = !mass;
                gattr = attr;
                gattainment = attainment;
                gattained = attainment <= promised +. t.tol;
                gregret = !wregret /. !mass;
              }
          end)
        regime_names
    in
    (* per-edge blame: attributed mass times dual, summed over the
       attributed scenarios *)
    let blame_acc = Array.make (Graph.nedges inst.Instance.graph) 0. in
    List.iter
      (fun (sid, _, _, a) ->
        List.iter
          (fun (e, d) -> blame_acc.(e) <- blame_acc.(e) +. (a *. d))
          t.duals.(sid))
      attributed;
    let blame =
      let nz = ref [] in
      for e = Array.length blame_acc - 1 downto 0 do
        if blame_acc.(e) > 0. then nz := (e, blame_acc.(e)) :: !nz
      done;
      let tops =
        match sort_edges_desc !nz with
        | a :: b :: c :: d :: e :: f' :: g :: h :: i :: j :: _ ->
            [ a; b; c; d; e; f'; g; h; i; j ]
        | l -> l
      in
      List.map (mk_bottleneck inst) tops
    in
    let regret_expected = ref 0. and regret_max = ref 0. in
    for sid = 0 to ns - 1 do
      let r = Float.max 0. t.regret.(k).(sid) in
      regret_expected := !regret_expected +. (scen_prob.(sid) *. r);
      regret_max := Float.max !regret_max r
    done;
    {
      acls = k;
      aname = c.Instance.cname;
      abeta = beta;
      apromised = promised;
      aobserved = observed;
      aattained = observed <= promised +. t.tol;
      abinding_fid = !binding;
      agood_mass = !good_mass;
      abad_mass = !bad_mass;
      amiss_mass = miss_mass;
      aburn = burn;
      ascenarios = scen_attrs;
      aother_mass = other_mass;
      aunenumerated = unenumerated;
      aregimes = regimes;
      ablame = blame;
      aregret_expected = !regret_expected;
      aregret_max = !regret_max;
      apromise_gap = Float.max 0. (observed -. promised);
    }
  in
  { rtol = t.tol; classes }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let jnum v = if Float.is_finite v then Printf.sprintf "%.9g" v else "null"

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let bprint_bottleneck b bn =
  Printf.bprintf b "{\"edge\":%d,\"u\":%d,\"v\":%d,\"dual\":%s}" bn.bedge bn.bu
    bn.bv (jnum bn.bdual)

let bprint_class b (a : class_attr) =
  Printf.bprintf b
    "{\"cls\":%d,\"name\":\"%s\",\"beta\":%s,\"promised\":%s,\"observed\":%s,\
     \"attained\":%b,\"binding_flow\":%d,\"good_mass\":%s,\"bad_mass\":%s,\
     \"miss_mass\":%s,\"budget_burn\":%s,\"attributed\":%s,\"other_mass\":%s,\
     \"unenumerated\":%s,\"regret\":{\"expected\":%s,\"max\":%s,\
     \"promise_gap\":%s},\"scenarios\":["
    a.acls (json_escape a.aname) (jnum a.abeta) (jnum a.apromised)
    (jnum a.aobserved) a.aattained a.abinding_fid (jnum a.agood_mass)
    (jnum a.abad_mass) (jnum a.amiss_mass) (jnum a.aburn)
    (jnum (attributed_total a))
    (jnum a.aother_mass) (jnum a.aunenumerated) (jnum a.aregret_expected)
    (jnum a.aregret_max) (jnum a.apromise_gap);
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "{\"sid\":%d,\"regime\":\"%s\",\"prob\":%s,\"loss\":%s,\
         \"attributed\":%s,\"regret\":%s,\"bottlenecks\":["
        s.ssid (json_escape s.sregime) (jnum s.sprob) (jnum s.sloss)
        (jnum s.sattr) (jnum s.sregret);
      List.iteri
        (fun j bn ->
          if j > 0 then Buffer.add_char b ',';
          bprint_bottleneck b bn)
        s.sbottlenecks;
      Buffer.add_string b "]}")
    a.ascenarios;
  Buffer.add_string b "],\"regimes\":[";
  List.iteri
    (fun i g ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "{\"regime\":\"%s\",\"mass\":%s,\"attributed\":%s,\"attainment\":%s,\
         \"attained\":%b,\"regret\":%s}"
        (json_escape g.gregime) (jnum g.gmass) (jnum g.gattr)
        (jnum g.gattainment) g.gattained (jnum g.gregret))
    a.aregimes;
  Buffer.add_string b "],\"blame\":[";
  List.iteri
    (fun i bn ->
      if i > 0 then Buffer.add_char b ',';
      bprint_bottleneck b bn)
    a.ablame;
  Buffer.add_string b "]}"

let report_json r =
  let b = Buffer.create 2048 in
  Printf.bprintf b "{\"tol\":%s,\"classes\":[" (jnum r.rtol);
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char b ',';
      bprint_class b a)
    r.classes;
  Buffer.add_string b "]}";
  Buffer.contents b

(* compact per-snapshot form for JSONL lines: the reconciliation
   numbers and the regime split, without scenario/bottleneck detail *)
let snapshot_json r =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\"classes\":[";
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "{\"cls\":%d,\"attained\":%b,\"miss_mass\":%s,\"attributed\":%s,\
         \"unenumerated\":%s,\"budget_burn\":%s,\"regret\":%s,\"regimes\":["
        a.acls a.aattained (jnum a.amiss_mass)
        (jnum (attributed_total a))
        (jnum a.aunenumerated) (jnum a.aburn) (jnum a.aregret_expected);
      List.iteri
        (fun j g ->
          if j > 0 then Buffer.add_char b ',';
          Printf.bprintf b "{\"regime\":\"%s\",\"attributed\":%s,\"attained\":%b}"
            (json_escape g.gregime) (jnum g.gattr) g.gattained)
        a.aregimes;
      Buffer.add_string b "]}")
    r.classes;
  Buffer.add_string b "]}";
  Buffer.contents b

(* regime-conditioned attainment on its own: which kind of failure is
   eating each class's budget *)
let regimes_json r =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\"classes\":[";
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "{\"cls\":%d,\"name\":\"%s\",\"promised\":%s,\"observed\":%s,\"regimes\":["
        a.acls (json_escape a.aname) (jnum a.apromised) (jnum a.aobserved);
      List.iteri
        (fun j g ->
          if j > 0 then Buffer.add_char b ',';
          Printf.bprintf b
            "{\"regime\":\"%s\",\"mass\":%s,\"attributed\":%s,\"attainment\":%s,\
             \"attained\":%b,\"regret\":%s}"
            (json_escape g.gregime) (jnum g.gmass) (jnum g.gattr)
            (jnum g.gattainment) g.gattained (jnum g.gregret))
        a.aregimes;
      Buffer.add_string b "]}")
    r.classes;
  Buffer.add_string b "]}";
  Buffer.contents b

(* Labeled gauge families appended to the Prometheus page; class and
   regime names are catalog strings, hence the label escaping. *)
let prometheus_families r =
  let per_class f = List.map (fun a -> ([ ("class", a.aname) ], f a)) r.classes in
  let per_regime f =
    List.concat_map
      (fun a ->
        List.map
          (fun g -> ([ ("class", a.aname); ("regime", g.gregime) ], f a g))
          a.aregimes)
      r.classes
  in
  String.concat ""
    [
      Metrics_export.labeled_gauge ~name:"slo.miss_mass"
        (per_class (fun a -> a.amiss_mass));
      Metrics_export.labeled_gauge ~name:"slo.budget_burn"
        (per_class (fun a -> a.aburn));
      Metrics_export.labeled_gauge ~name:"slo.attainment"
        (List.map
           (fun a -> ([ ("class", a.aname); ("regime", "overall") ], a.aobserved))
           r.classes
        @ per_regime (fun _ g -> g.gattainment));
      Metrics_export.labeled_gauge ~name:"regret"
        (List.map
           (fun a ->
             ([ ("class", a.aname); ("regime", "overall") ], a.aregret_expected))
           r.classes
        @ per_regime (fun _ g -> g.gregret));
    ]
