(** Wire-format renderers over the full {!Flexile_util.Trace} registry:
    Prometheus text exposition and one-line JSON snapshots (a JSONL
    time series when written once per monitoring step).

    Pure string builders over quiescent-point reads — call only when
    no instrumented work is in flight.

    With [deterministic] (default [false]) the output is restricted to
    metrics that are pure functions of the seeded work: counters
    (minus the [gc.*] family) and value-distribution histograms (minus
    the wall-clock ones, by the [*_seconds] naming convention); gauges,
    timers, spans and probes are dropped, as is the whole [health.*]
    family — the production sampling stride makes those aggregates
    schedule-dependent (DESIGN.md section 15.1).  This subset is what
    makes [flexile monitor] artifacts byte-identical across
    invocations. *)

val deterministic_metric : string * Flexile_util.Trace.metric_kind -> bool
(** The filter described above, exposed for tests. *)

val prom_name : string -> string
(** Registry name to Prometheus metric name: [flexile_] prefix, every
    character outside [[a-zA-Z0-9_:]] mapped to [_]. *)

val label_escape : string -> string
(** Escape a Prometheus label {e value} per the text exposition
    format: backslash, double quote and line feed become
    backslash-escaped; all other bytes pass through verbatim.  Required once labels carry arbitrary catalog names
    (class/regime tags). *)

val labeled_gauge :
  name:string -> ((string * string) list * float) list -> string
(** Render one labeled gauge family: [# TYPE] line plus one sample per
    [(labels, value)] in the given order.  The family name goes
    through {!prom_name}, label names through the same character
    class, label values through {!label_escape}.  Append the result to
    a {!prometheus} page. *)

val prometheus : ?deterministic:bool -> unit -> string
(** The registry as Prometheus text exposition format: counters as
    [<name>_total], gauges as plain samples, timers and spans as
    summaries ([<name>_seconds_sum] / [<name>_seconds_count]),
    histograms with cumulative [<name>_bucket{le="..."}] lines, a
    [le="+Inf"] bucket and [_sum] / [_count].  Probes are skipped.
    Each family is preceded by its [# TYPE] line.

    The page always ends with the
    [flexile_trace_drops_total{ring="events"|"spans"}] family (from
    {!Flexile_util.Trace.events_dropped} / [spans_dropped]) — including
    under [deterministic], where a nonzero value flags that the
    deterministic artifacts themselves are built over truncated
    rings. *)

val snapshot_json : ?deterministic:bool -> unit -> string
(** One-line JSON object
    [{"counters":{..},"gauges":{..},"timers":{..},"histograms":{..}}]
    (spans are folded into [timers]; histogram entries carry
    count/sum/min/max and p50/p90/p95/p99).  Non-finite numbers
    serialize as [null].  Suitable as one JSONL record. *)

val histograms_json : unit -> string
(** Just the histograms, unfiltered, with their raw (non-cumulative)
    [(upper bound, count)] bucket lists included — the ["histograms"]
    section embedded by [bench --json]. *)
