(** Miss attribution: explain {e why} a class misses (or burns error
    budget toward missing) its percentile-loss objective.

    For each class the analysis decomposes the gap between the
    promised and delivered PercLoss (paper Definition 4.2) along three
    axes, all from artifacts the solver already produced:

    - {e scenario attribution}: the class percentile is the
      beta-quantile of its binding flow's weighted loss distribution.
      Scenarios within the promise contribute "good" mass; the
      shortfall [beta - good_mass] (the miss mass) is charged to the
      cheapest violating scenarios in ascending loss order — exactly
      the scenarios that would have to be fixed for the percentile to
      clear the promise.  Any remainder the enumerated set cannot
      cover is charged to unenumerated mass (loss 1.0, the paper's
      conservative treatment).  By construction
      [sum of attributed + other_mass + unenumerated = miss_mass]
      to within float re-summation error (well under 1e-9).

    - {e bottleneck attribution}: the binding capacity edges and LP
      dual values of each scenario's allocation, captured from the
      simplex solution the online allocator already computed
      ({!Flexile_te.Scen_lp.maxmin_losses}'s [?duals] surface — no
      re-solving), aggregated into per-edge blame scores
      [sum over attributed scenarios of attributed_mass * dual].

    - {e regret attribution}: per (class, scenario),
      [online loss - clairvoyant class optimum]
      ({!Flexile_te.Scen_lp.class_optimum}); nonnegative up to LP
      tolerance.  Observed into the [slo.regret] histogram and
      exported as the [flexile_regret] Prometheus family.

    Scenarios carry their failure-regime tag
    ({!Flexile_te.Instance.regime}), so mass, attainment and regret
    are also reported conditioned on regime ("which kind of failure
    is eating the budget?").

    Everything is deterministic: for a fixed instance and seed the
    report — and its JSON/Prometheus renderings — is byte-identical
    across runs and across [?jobs] values. *)

type inputs
(** Solver-side artifacts gathered once per instance: online losses
    with captured duals, and the per-(class, scenario) regret matrix.
    Reusable across any number of {!analyze} calls (e.g. one per
    monitor snapshot). *)

val prepare :
  ?jobs:int ->
  ?tol:float ->
  Flexile_te.Instance.t ->
  offline:Flexile_te.Flexile_offline.result ->
  promised:float array ->
  unit ->
  inputs
(** Run the online allocator with dual capture
    ({!Flexile_te.Flexile_online.run_with_duals}) and solve one
    clairvoyant LP per (scenario, class) for the regret baseline, both
    fanned out over [jobs] domains with bit-identical results.
    [promised.(k)] is class [k]'s offline PercLoss promise; [tol]
    (default 1e-6) is the slack added to promise comparisons.
    Clamped regrets are observed into the [slo.regret] histogram
    (in deterministic class-major order). *)

val online_losses : inputs -> Flexile_te.Instance.losses
(** The online loss matrix computed by {!prepare} — analyze this for
    the solver's own attainment, or a monitor's observed matrix for
    live attribution. *)

val regret : inputs -> float array array
(** [regret i] is the raw (unclamped) regret matrix, [cls] x [sid]:
    online class max loss minus the clairvoyant class optimum.  May
    dip below zero only by LP tolerance. *)

val duals : inputs -> (int * float) list array
(** Per-scenario binding capacity edges with dual magnitudes, ascending
    edge order, as captured from the first online LP solve. *)

(** One binding/blamed capacity edge. *)
type bottleneck = {
  bedge : int;  (** edge id *)
  bu : int;
  bv : int;  (** endpoints *)
  bdual : float;  (** dual magnitude, or blame score when aggregated *)
}

(** One scenario charged with part of the miss mass. *)
type scen_attr = {
  ssid : int;
  sregime : string;  (** {!Flexile_te.Instance.regime} tag *)
  sprob : float;
  sloss : float;  (** the binding flow's loss in this scenario *)
  sattr : float;  (** attributed mass, [0 < sattr <= sprob] *)
  sregret : float;  (** clamped class regret in this scenario *)
  sbottlenecks : bottleneck list;  (** top binding edges, dual desc *)
}

(** Regime-conditioned view of one class. *)
type regime_attr = {
  gregime : string;
  gmass : float;  (** total probability mass of the regime *)
  gattr : float;  (** attributed miss mass falling in the regime *)
  gattainment : float;
      (** PercLoss with probabilities renormalized within the regime *)
  gattained : bool;
  gregret : float;  (** mean clamped regret, regime-conditioned *)
}

type class_attr = {
  acls : int;
  aname : string;
  abeta : float;
  apromised : float;
  aobserved : float;  (** PercLoss of the analyzed matrix *)
  aattained : bool;  (** [aobserved <= apromised + tol] *)
  abinding_fid : int;  (** arg-max flow of FlowLoss, -1 if class empty *)
  agood_mass : float;  (** mass of scenarios within the promise *)
  abad_mass : float;  (** mass of violating scenarios *)
  amiss_mass : float;  (** [max 0 (beta - good_mass)] *)
  aburn : float;  (** [bad_mass / (1 - beta)]: error-budget burn *)
  ascenarios : scen_attr list;  (** top attributed, mass desc *)
  aother_mass : float;  (** attributed mass beyond [top] *)
  aunenumerated : float;  (** miss mass charged outside the set *)
  aregimes : regime_attr list;  (** regimes with positive mass *)
  ablame : bottleneck list;  (** per-edge blame, score desc, top 10 *)
  aregret_expected : float;  (** sum of prob * clamped regret *)
  aregret_max : float;
  apromise_gap : float;  (** [max 0 (observed - promised)] *)
}

type report = { rtol : float; classes : class_attr list }

val attributed_total : class_attr -> float
(** [sum of sattr + aother_mass + aunenumerated] — reconciles with
    [amiss_mass] to within re-summation error (< 1e-9). *)

val analyze : ?top:int -> inputs -> losses:Flexile_te.Instance.losses -> report
(** Attribute every class of the instance against [losses] — the
    online matrix ({!online_losses}) or a monitor's observed matrix
    ({!Slo.observed_losses}).  [top] (default: all) caps the
    per-class scenario list; the rest is folded into [aother_mass]. *)

val report_json : report -> string
(** Full report as one-line JSON.  Deterministic; non-finite numbers
    serialize as [null]. *)

val snapshot_json : report -> string
(** Compact form for JSONL monitor lines: per class the
    reconciliation numbers, budget burn, expected regret and the
    regime split — no scenario or bottleneck detail. *)

val regimes_json : report -> string
(** Just the regime-conditioned attainment: per class the promise,
    the observed percentile and the per-regime table — the "which kind
    of failure is eating the budget" artifact. *)

val prometheus_families : report -> string
(** Labeled gauge families to append to a
    {!Metrics_export.prometheus} page: [flexile_slo_miss_mass] and
    [flexile_slo_budget_burn] by [class]; [flexile_slo_attainment] and
    [flexile_regret] by [class] and [regime] (including
    [regime="overall"]).  Label values go through
    {!Metrics_export.label_escape}. *)
