(** SLO attainment over an observed scenario stream.

    The offline phase promises each class a PercLoss at its
    availability target beta (paper Definition 4.2); an {!t} tracker
    accumulates the per-flow losses actually delivered as scenarios
    arrive and reports, per class:

    - {e attainment}: the beta-percentile of observed flow loss,
      computed with the same machinery as the offline analysis
      ({!Flexile_te.Metrics.perc_loss} over an
      {!Flexile_te.Instance.losses} matrix).  Scenarios not yet
      observed keep the matrix's initial loss of 1.0, so the number is
      conservative until coverage completes — and reconciles exactly
      with the offline analysis once it does.

    - {e burn rate}: over a sliding window of the last [window] draws,
      the fraction of draws on which some positive-demand flow of the
      class exceeded its promise (beyond [tol]), divided by the error
      budget [1 - beta].  Sustained burn rate > 1 means the class is
      on track to miss its target.

    Draws that fall outside the enumerated scenario set
    ({!observe_unenumerated}) are charged as violations of every
    class, mirroring the conservative loss-1.0 treatment of
    unenumerated mass. *)

type t

val create :
  ?window:int -> ?tol:float -> promised:float array -> Flexile_te.Instance.t -> t
(** [create ~promised inst] with [promised.(k)] the offline PercLoss
    promise of class [k] (length must equal the class count).
    [window] (default 100, >= 1) is the burn-rate window in draws;
    [tol] (default 1e-6) is the slack added to every promise
    comparison. *)

val observe : t -> sid:int -> losses:float array -> unit
(** Record one draw of enumerated scenario [sid] with per-flow
    delivered losses ([losses.(fid)], length = flow count).  Values
    are clamped to [0, 1] exactly as the scenario engine does, fed
    into the [slo.flow_loss] histogram, written into the observed
    matrix, and compared against the promises for the burn-rate
    window. *)

val observe_unenumerated : t -> unit
(** Record one draw outside the enumerated set: a violation of every
    class (the observed matrix is untouched — unenumerated mass is
    already charged at loss 1.0 by the percentile machinery). *)

val observed_attainment : t -> cls:int -> float
(** [Metrics.perc_loss] of the observed matrix at the class target. *)

val observed_losses : t -> Flexile_te.Instance.losses
(** The live observed loss matrix (unseen scenarios still at 1.0).
    Read-only view shared with the tracker — do not mutate; analyzing
    it with {!Attribution.analyze} reconciles with this tracker's
    attainment by construction (same matrix, same machinery). *)

val tolerance : t -> float
(** The promise-comparison slack [tol] the tracker was created with. *)

val promised : t -> cls:int -> float
(** The per-class promise the tracker was created with. *)

val burn_rate : t -> cls:int -> float
(** [(window violations / window length) / (1 - beta)]; [0.] before
    the first draw; [infinity] when [beta >= 1] and the window holds a
    violation. *)

type class_report = {
  rcls : int;
  rname : string;
  rbeta : float;
  rpromised : float;
  robserved : float;  (** {!observed_attainment} *)
  rattained : bool;  (** [robserved <= rpromised + tol] *)
  rbad_draws : int;  (** violating draws since creation *)
  rwindow_bad : int;
  rwindow_len : int;
  rburn_rate : float;
}

val class_report : t -> cls:int -> class_report
val report : t -> class_report list

val draws : t -> int
val unenumerated_draws : t -> int
val scenarios_seen : t -> int

val report_json : t -> string
(** One-line JSON:
    [{"draws":..,"unenumerated":..,"scenarios_seen":..,"scenarios":..,
      "classes":[{"cls":..,"name":..,"beta":..,"promised":..,
      "observed":..,"attained":..,"bad_draws":..,"window_bad":..,
      "window_len":..,"burn_rate":..},..]}].
    Deterministic for a fixed observation sequence; non-finite numbers
    serialize as [null]. *)
