(* Render the full Trace registry in wire formats monitoring stacks
   consume: Prometheus text exposition (one scrape page) and one-line
   JSON snapshots (a JSONL time series when written per monitoring
   step).  Pure string builders over Trace's quiescent-point reads —
   callers decide where the bytes go. *)

module Trace = Flexile_util.Trace

(* Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; the registry
   uses dotted names ("simplex.iterations_per_solve"), so map every
   other character to '_'.  The "flexile_" prefix both namespaces the
   scrape page and guarantees a valid leading character. *)
let prom_name name =
  "flexile_"
  ^ String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
        | _ -> '_')
      name

(* Deterministic subset: metrics whose values are pure functions of
   the (seeded) work — integer counters and value-distribution
   histograms.  Wall-clock measurements (timers, spans, duration
   histograms by the "_seconds" naming convention), high-water gauges
   and GC counters vary run to run and would break the monitor's
   byte-identical-artifacts guarantee.  Solver-health metrics
   ("health." prefix) are excluded for the same reason: production
   sampling passes a per-domain stride (DESIGN.md section 15.1), so
   which solves get measured depends on how the scheduler spread work
   across domains — statistical observability, not a deterministic
   artifact.  Doctor reports carry the deterministic health story. *)
let deterministic_metric (name, kind) =
  if String.starts_with ~prefix:"health." name then false
  else
    match (kind : Trace.metric_kind) with
    | Trace.Counter -> not (String.starts_with ~prefix:"gc." name)
    | Trace.Hist -> not (String.ends_with ~suffix:"_seconds" name)
    | Trace.Gauge | Trace.Timer | Trace.Span | Trace.Probe -> false

let select ~deterministic =
  let all = Trace.registry () in
  if deterministic then List.filter deterministic_metric all else all

(* Prometheus floats: literal NaN / +Inf / -Inf, else shortest-ish
   round-trippable decimal. *)
let fnum v =
  if Float.is_finite v then Printf.sprintf "%.9g" v
  else if Float.is_nan v then "NaN"
  else if v > 0. then "+Inf"
  else "-Inf"

(* JSON has no non-finite literals; empty-histogram min/max (nan)
   serialize as null. *)
let jnum v = if Float.is_finite v then Printf.sprintf "%.9g" v else "null"

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Prometheus label VALUES have their own escaping rules (exposition
   format): backslash, double quote and line feed must be escaped;
   everything else is passed through verbatim.  Metric and label NAMES
   are sanitized structurally (prom_name) instead. *)
let label_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)
(* ------------------------------------------------------------------ *)

(* A labeled gauge family: one # TYPE line, then one sample per
   (label set, value) in the given order.  Label names go through
   prom_name's character class (minus the prefix); label values are
   escaped per the exposition format. *)
let labeled_gauge ~name samples =
  let b = Buffer.create 256 in
  let sane =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
        | _ -> '_')
  in
  Printf.bprintf b "# TYPE %s gauge\n" (prom_name name);
  List.iter
    (fun (labels, v) ->
      Buffer.add_string b (prom_name name);
      if labels <> [] then begin
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, value) ->
            if i > 0 then Buffer.add_char b ',';
            Printf.bprintf b "%s=\"%s\"" (sane k) (label_escape value))
          labels;
        Buffer.add_char b '}'
      end;
      Printf.bprintf b " %s\n" (fnum v))
    samples;
  Buffer.contents b

let bprint_prom_hist b p (s : Trace.hist_snapshot) =
  Printf.bprintf b "# TYPE %s histogram\n" p;
  (* exposition-format buckets are cumulative *)
  let cum = ref 0 in
  List.iter
    (fun (ub, c) ->
      cum := !cum + c;
      Printf.bprintf b "%s_bucket{le=\"%s\"} %d\n" p (fnum ub) !cum)
    s.Trace.hist_buckets;
  Printf.bprintf b "%s_bucket{le=\"+Inf\"} %d\n" p s.Trace.hist_count;
  Printf.bprintf b "%s_sum %s\n" p (fnum s.Trace.hist_sum);
  Printf.bprintf b "%s_count %d\n" p s.Trace.hist_count

let prometheus ?(deterministic = false) () =
  let b = Buffer.create 4096 in
  List.iter
    (fun (name, kind) ->
      let p = prom_name name in
      match (kind : Trace.metric_kind) with
      | Trace.Counter ->
          Printf.bprintf b "# TYPE %s_total counter\n%s_total %d\n" p p
            (Trace.value_by_name name)
      | Trace.Gauge ->
          Printf.bprintf b "# TYPE %s gauge\n%s %d\n" p p
            (Trace.value_by_name name)
      | Trace.Timer | Trace.Span ->
          (* totals-only accumulators map onto a summary with no
             quantile lines *)
          Printf.bprintf b
            "# TYPE %s_seconds summary\n%s_seconds_sum %s\n%s_seconds_count %d\n"
            p p
            (fnum (Trace.timer_seconds_by_name name))
            p
            (Trace.timer_count_by_name name)
      | Trace.Hist -> bprint_prom_hist b p (Trace.hist_snapshot_by_name name)
      | Trace.Probe ->
          (* event streams have no scalar exposition; the ring totals
             already surface through trace.events_* counters *)
          ())
    (select ~deterministic);
  (* Ring saturation is always exported — deterministic mode included:
     a nonzero drop total means the event stream / span records behind
     every other artifact are truncated, and omitting the family would
     make the scrape page lie by omission exactly when it matters. *)
  Buffer.add_string b "# TYPE flexile_trace_drops_total counter\n";
  Printf.bprintf b "flexile_trace_drops_total{ring=\"events\"} %d\n"
    (Trace.events_dropped ());
  Printf.bprintf b "flexile_trace_drops_total{ring=\"spans\"} %d\n"
    (Trace.spans_dropped ());
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* JSON snapshots                                                      *)
(* ------------------------------------------------------------------ *)

let bprint_hist_summary b ?(buckets = false) (s : Trace.hist_snapshot) =
  Printf.bprintf b "{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s"
    s.Trace.hist_count (jnum s.Trace.hist_sum) (jnum s.Trace.hist_min)
    (jnum s.Trace.hist_max);
  List.iter
    (fun (label, q) ->
      Printf.bprintf b ",\"%s\":%s" label (jnum (Trace.hist_quantile_of s q)))
    [ ("p50", 0.5); ("p90", 0.9); ("p95", 0.95); ("p99", 0.99) ];
  if buckets then begin
    Buffer.add_string b ",\"buckets\":[";
    List.iteri
      (fun i (ub, c) ->
        if i > 0 then Buffer.add_char b ',';
        Printf.bprintf b "[%s,%d]" (jnum ub) c)
      s.Trace.hist_buckets;
    Buffer.add_char b ']'
  end;
  Buffer.add_char b '}'

let snapshot_json ?(deterministic = false) () =
  let metrics = select ~deterministic in
  let b = Buffer.create 2048 in
  let section title keep render =
    Printf.bprintf b "\"%s\":{" title;
    let first = ref true in
    List.iter
      (fun (name, kind) ->
        if keep kind then begin
          if !first then first := false else Buffer.add_char b ',';
          Printf.bprintf b "\"%s\":" (json_escape name);
          render name
        end)
      metrics;
    Buffer.add_char b '}'
  in
  Buffer.add_char b '{';
  section "counters"
    (fun k -> k = Trace.Counter)
    (fun n -> Printf.bprintf b "%d" (Trace.value_by_name n));
  Buffer.add_char b ',';
  section "gauges"
    (fun k -> k = Trace.Gauge)
    (fun n -> Printf.bprintf b "%d" (Trace.value_by_name n));
  Buffer.add_char b ',';
  section "timers"
    (fun k -> k = Trace.Timer || k = Trace.Span)
    (fun n ->
      Printf.bprintf b "{\"seconds\":%s,\"count\":%d}"
        (jnum (Trace.timer_seconds_by_name n))
        (Trace.timer_count_by_name n));
  Buffer.add_char b ',';
  section "histograms"
    (fun k -> k = Trace.Hist)
    (fun n -> bprint_hist_summary b (Trace.hist_snapshot_by_name n));
  Buffer.add_char b '}';
  Buffer.contents b

let histograms_json () =
  let b = Buffer.create 1024 in
  Buffer.add_char b '{';
  let first = ref true in
  List.iter
    (fun (name, kind) ->
      match (kind : Trace.metric_kind) with
      | Trace.Hist ->
          if !first then first := false else Buffer.add_char b ',';
          Printf.bprintf b "\"%s\":" (json_escape name);
          bprint_hist_summary b ~buckets:true (Trace.hist_snapshot_by_name name)
      | _ -> ())
    (Trace.registry ());
  Buffer.add_char b '}';
  Buffer.contents b
