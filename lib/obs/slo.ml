(* SLO attainment over an observed scenario stream.

   The offline phase promises each class a PercLoss at its
   availability target beta (Definition 4.2); this module watches the
   losses actually delivered as scenarios arrive and answers two
   questions per class:

   - attainment: does the beta-percentile of *observed* flow loss stay
     within the promise?  Computed with the very same machinery as the
     offline analysis (Metrics.perc_loss over an Instance.losses
     matrix), so once every scenario has been observed the two numbers
     reconcile exactly.

   - burn rate: over a sliding window of recent draws, the fraction of
     draws that violated the promise, normalized by the error budget
     (1 - beta).  A burn rate of 1.0 means violations arrive exactly
     at the budgeted rate; sustained > 1.0 means the class will miss
     its target.

   Scenarios never observed keep their initial loss of 1.0 in the
   matrix (Instance.alloc_losses), and draws falling outside the
   enumerated set are charged as violations of every class — both
   mirror the paper's conservative treatment of unenumerated mass. *)

module Trace = Flexile_util.Trace
module Instance = Flexile_te.Instance
module Metrics = Flexile_te.Metrics

let h_flow_loss = Trace.hist "slo.flow_loss"

type t = {
  inst : Instance.t;
  promised : float array;
  tol : float;
  observed : Instance.losses;
  seen : bool array;
  window : int;
  (* per-class ring of the last [window] draws' violation flags *)
  win_bad : bool array array;
  win_bad_count : int array;
  mutable win_len : int;
  mutable win_pos : int;
  bad_draws : int array;
  mutable total_draws : int;
  mutable unenumerated : int;
}

let create ?(window = 100) ?(tol = 1e-6) ~promised inst =
  let nk = Array.length inst.Instance.classes in
  if Array.length promised <> nk then invalid_arg "Slo.create: promised";
  if window < 1 then invalid_arg "Slo.create: window";
  {
    inst;
    promised = Array.copy promised;
    tol;
    observed = Instance.alloc_losses inst;
    seen = Array.make (Instance.nscenarios inst) false;
    window;
    win_bad = Array.init nk (fun _ -> Array.make window false);
    win_bad_count = Array.make nk 0;
    win_len = 0;
    win_pos = 0;
    bad_draws = Array.make nk 0;
    total_draws = 0;
    unenumerated = 0;
  }

(* Slide one draw's per-class violation flags into the window. *)
let push t bad =
  let nk = Array.length t.promised in
  if t.win_len = t.window then
    for k = 0 to nk - 1 do
      if t.win_bad.(k).(t.win_pos) then
        t.win_bad_count.(k) <- t.win_bad_count.(k) - 1
    done
  else t.win_len <- t.win_len + 1;
  for k = 0 to nk - 1 do
    t.win_bad.(k).(t.win_pos) <- bad.(k);
    if bad.(k) then begin
      t.win_bad_count.(k) <- t.win_bad_count.(k) + 1;
      t.bad_draws.(k) <- t.bad_draws.(k) + 1
    end
  done;
  t.win_pos <- (t.win_pos + 1) mod t.window;
  t.total_draws <- t.total_draws + 1

let observe t ~sid ~losses =
  if sid < 0 || sid >= Instance.nscenarios t.inst then
    invalid_arg "Slo.observe: sid";
  if Array.length losses <> Instance.nflows t.inst then
    invalid_arg "Slo.observe: losses";
  let bad = Array.make (Array.length t.promised) false in
  Array.iter
    (fun (f : Instance.flow) ->
      (* clamp exactly as Scenario_engine.sweep_losses does, so the
         matrix — and Metrics.perc_loss over it — matches the offline
         analysis bit for bit *)
      let v = Float.max 0. (Float.min 1. losses.(f.Instance.fid)) in
      Trace.observe h_flow_loss v;
      t.observed.(f.Instance.fid).(sid) <- v;
      if f.Instance.demand > 0. && v > t.promised.(f.Instance.cls) +. t.tol
      then bad.(f.Instance.cls) <- true)
    t.inst.Instance.flows;
  t.seen.(sid) <- true;
  push t bad

let observe_unenumerated t =
  t.unenumerated <- t.unenumerated + 1;
  push t (Array.make (Array.length t.promised) true)

let observed_attainment t ~cls = Metrics.perc_loss t.inst t.observed ~cls ()
let observed_losses t = t.observed
let tolerance t = t.tol
let promised t ~cls = t.promised.(cls)

let burn_rate t ~cls =
  if t.win_len = 0 then 0.
  else
    let frac =
      float_of_int t.win_bad_count.(cls) /. float_of_int t.win_len
    in
    let budget = 1. -. t.inst.Instance.classes.(cls).Instance.beta in
    if budget > 0. then frac /. budget
    else if t.win_bad_count.(cls) > 0 then Float.infinity
    else 0.

type class_report = {
  rcls : int;
  rname : string;
  rbeta : float;
  rpromised : float;
  robserved : float;
  rattained : bool;
  rbad_draws : int;
  rwindow_bad : int;
  rwindow_len : int;
  rburn_rate : float;
}

let class_report t ~cls =
  let c = t.inst.Instance.classes.(cls) in
  let observed = observed_attainment t ~cls in
  {
    rcls = cls;
    rname = c.Instance.cname;
    rbeta = c.Instance.beta;
    rpromised = t.promised.(cls);
    robserved = observed;
    rattained = observed <= t.promised.(cls) +. t.tol;
    rbad_draws = t.bad_draws.(cls);
    rwindow_bad = t.win_bad_count.(cls);
    rwindow_len = t.win_len;
    rburn_rate = burn_rate t ~cls;
  }

let report t =
  List.init (Array.length t.promised) (fun k -> class_report t ~cls:k)

let draws t = t.total_draws
let unenumerated_draws t = t.unenumerated

let scenarios_seen t =
  Array.fold_left (fun a s -> if s then a + 1 else a) 0 t.seen

let jnum v = if Float.is_finite v then Printf.sprintf "%.9g" v else "null"

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let report_json t =
  let b = Buffer.create 512 in
  Printf.bprintf b
    "{\"draws\":%d,\"unenumerated\":%d,\"scenarios_seen\":%d,\"scenarios\":%d,\"classes\":["
    t.total_draws t.unenumerated (scenarios_seen t)
    (Instance.nscenarios t.inst);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "{\"cls\":%d,\"name\":\"%s\",\"beta\":%s,\"promised\":%s,\"observed\":%s,\"attained\":%b,\"bad_draws\":%d,\"window_bad\":%d,\"window_len\":%d,\"burn_rate\":%s}"
        r.rcls (json_escape r.rname) (jnum r.rbeta) (jnum r.rpromised)
        (jnum r.robserved) r.rattained r.rbad_draws r.rwindow_bad
        r.rwindow_len (jnum r.rburn_rate))
    (report t);
  Buffer.add_string b "]}";
  Buffer.contents b
