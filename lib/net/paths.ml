type path = int array

let nodes g ~src p =
  let out = Array.make (Array.length p + 1) src in
  let cur = ref src in
  Array.iteri
    (fun i eid ->
      let e = g.Graph.edges.(eid) in
      let nxt = Graph.other_endpoint e !cur in
      out.(i + 1) <- nxt;
      cur := nxt)
    p;
  out

let length ?(weight = fun _ -> 1.) p =
  Array.fold_left (fun acc eid -> acc +. weight eid) 0. p

(* Binary-heap priority queue over (distance, node). *)
module Heap = struct
  type t = {
    mutable data : (float * int) array;
    mutable size : int;
  }

  let create () = { data = Array.make 64 (0., 0); size = 0 }

  let push h x =
    if h.size = Array.length h.data then begin
      let d = Array.make (2 * h.size) (0., 0) in
      Array.blit h.data 0 d 0 h.size;
      h.data <- d
    end;
    h.data.(h.size) <- x;
    let i = ref h.size in
    h.size <- h.size + 1;
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / 2 in
      if fst h.data.(!i) < fst h.data.(parent) then begin
        let tmp = h.data.(!i) in
        h.data.(!i) <- h.data.(parent);
        h.data.(parent) <- tmp;
        i := parent
      end
      else continue := false
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && fst h.data.(l) < fst h.data.(!smallest) then
          smallest := l;
        if r < h.size && fst h.data.(r) < fst h.data.(!smallest) then
          smallest := r;
        if !smallest <> !i then begin
          let tmp = h.data.(!i) in
          h.data.(!i) <- h.data.(!smallest);
          h.data.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

let shortest g ?(weight = fun _ -> 1.) ?(edge_ok = fun _ -> true)
    ?(node_ok = fun _ -> true) ~src ~dst () =
  let n = g.Graph.n in
  let dist = Array.make n infinity in
  let via = Array.make n (-1) in
  (* edge used to reach each node *)
  let heap = Heap.create () in
  dist.(src) <- 0.;
  Heap.push heap (0., src);
  let finished = ref false in
  while not !finished do
    match Heap.pop heap with
    | None -> finished := true
    | Some (d, x) ->
        if x = dst then finished := true
        else if d <= dist.(x) then
          List.iter
            (fun (eid, y) ->
              if edge_ok eid && (y = dst || y = src || node_ok y) then begin
                let w = weight eid in
                if w < 0. then invalid_arg "Paths.shortest: negative weight";
                let nd = d +. w in
                if nd < dist.(y) -. 1e-12 then begin
                  dist.(y) <- nd;
                  via.(y) <- eid;
                  Heap.push heap (nd, y)
                end
              end)
            g.Graph.adj.(x)
  done;
  if Flexile_util.Float_cmp.exactly_equal dist.(dst) infinity then None
  else begin
    let rev = ref [] in
    let cur = ref dst in
    while !cur <> src do
      let eid = via.(!cur) in
      rev := eid :: !rev;
      cur := Graph.other_endpoint g.Graph.edges.(eid) !cur
    done;
    Some (Array.of_list !rev)
  end

let edge_set p =
  let h = Hashtbl.create (Array.length p) in
  Array.iter (fun e -> Hashtbl.replace h e ()) p;
  h

let shares_edge p q =
  let h = edge_set p in
  Array.exists (fun e -> Hashtbl.mem h e) q

let overlap p q =
  let h = edge_set p in
  Array.fold_left (fun acc e -> if Hashtbl.mem h e then acc + 1 else acc) 0 q

let path_equal (p : path) q = p = q

let k_shortest g ?(weight = fun _ -> 1.) ~k ~src ~dst () =
  match shortest g ~weight ~src ~dst () with
  | None -> []
  | Some first ->
      let found = ref [ first ] in
      let candidates = ref [] in
      (* candidates: (cost, path), kept sorted by cost *)
      let add_candidate p =
        let c = length ~weight p in
        if
          not
            (List.exists (fun (_, q) -> path_equal p q) !candidates
            || List.exists (path_equal p) !found)
        then candidates := List.merge compare [ (c, p) ] !candidates
      in
      let finished = ref false in
      while List.length !found < k && not !finished do
        let prev = List.hd !found in
        let prev_nodes = nodes g ~src prev in
        (* spur from each node of the last found path *)
        for i = 0 to Array.length prev - 1 do
          let spur_node = prev_nodes.(i) in
          let root = Array.sub prev 0 i in
          (* block edges that would recreate an already-found path with
             the same root *)
          let blocked_edges = Hashtbl.create 8 in
          List.iter
            (fun p ->
              if Array.length p > i && Array.sub p 0 i = root then
                Hashtbl.replace blocked_edges p.(i) ())
            !found;
          (* block nodes of the root (loopless) *)
          let blocked_nodes = Hashtbl.create 8 in
          for j = 0 to i - 1 do
            Hashtbl.replace blocked_nodes prev_nodes.(j) ()
          done;
          let edge_ok e = not (Hashtbl.mem blocked_edges e) in
          let node_ok v = not (Hashtbl.mem blocked_nodes v) in
          if not (Hashtbl.mem blocked_nodes spur_node) then
            match shortest g ~weight ~edge_ok ~node_ok ~src:spur_node ~dst () with
            | None -> ()
            | Some spur -> add_candidate (Array.append root spur)
        done;
        match !candidates with
        | [] -> finished := true
        | (_, best) :: rest ->
            candidates := rest;
            found := best :: !found
      done;
      List.rev !found
