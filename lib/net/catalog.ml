(* (name, nodes, edges) from Table 2 of the paper, ordered by edge
   count (the X axis of Fig. 15). *)
let table2 =
  [
    ("Sprint", 10, 17);
    ("B4", 12, 19);
    ("IBM", 17, 23);
    ("CWIX", 21, 26);
    ("Highwinds", 16, 29);
    ("Quest", 19, 30);
    ("Darkstrand", 28, 31);
    ("Integra", 23, 32);
    ("Xeex", 22, 32);
    ("InternetMCI", 18, 32);
    ("Digex", 31, 35);
    ("CRLNetwork", 32, 37);
    ("JanetBackbone", 29, 45);
    ("Xspedius", 33, 47);
    ("GEANT", 32, 50);
    ("IIJ", 27, 55);
    ("ATT", 25, 56);
    ("BTNorthAmerica", 36, 76);
    ("Tinet", 48, 84);
    ("Deltacom", 103, 151);
  ]

(* Per-topology generator salts, calibrated so the generated networks
   reproduce the qualitative regime the paper reports for their real
   counterparts (e.g. IBM exhibits congestion-driven percentile loss
   under scenario-optimal routing, Fig 5).  See DESIGN.md section 2. *)
let salts = [ ("IBM", 2) ]

let build (name, n, m) =
  let salt = try List.assoc name salts with Not_found -> 0 in
  let seed_name =
    if salt = 0 then "flexile-topology-" ^ name
    else Printf.sprintf "flexile-topology-%s#%d" name salt
  in
  let seed = Flexile_util.Prng.of_string seed_name in
  Gen.random_graph ~name ~n ~m ~seed

(* Continental-scale synthetic WAN, far beyond Table 2 (whose largest
   entry is Deltacom at 103 nodes).  Deliberately not part of [table2]
   / [all]: full-catalog sweeps stay at reproduction scale, and the
   continental instance is reached by name from the bench and the
   sparse-core tests.  It exists to exercise the LU-factorized simplex
   at a size the dense solver could not touch. *)
let continental_entry = ("Continental", 1100, 1800)

let by_name name =
  let lower = String.lowercase_ascii name in
  match
    List.find_opt
      (fun (n, _, _) -> String.lowercase_ascii n = lower)
      table2
  with
  | Some entry -> build entry
  | None ->
      if lower = "continental" then build continental_entry
      else raise Not_found

let all () = List.map (fun ((name, _, _) as e) -> (name, build e)) table2
let continental () = build continental_entry

(* Shared-risk link groups for a catalog topology, derived
   deterministically from the topology name: conduits leaving a site
   share fate (backhoe cuts the whole bundle), so at a sampled subset
   of nodes we bundle 2-3 incident links into one group.  Every edge
   lands in exactly one group; edges not captured by a bundle are
   singleton groups, which keeps the SRLG model a strict refinement of
   the independent-links one. *)
let srlgs (g : Graph.t) =
  let seed = Flexile_util.Prng.of_string ("flexile-srlg-" ^ g.Graph.name) in
  let ne = Graph.nedges g in
  let assigned = Array.make ne false in
  let groups = ref [] in
  (* visit sites in a seeded shuffle; roughly one in three sites hosts
     a conduit bundle *)
  let order = Array.init g.Graph.n (fun i -> i) in
  Flexile_util.Prng.shuffle seed order;
  Array.iter
    (fun node ->
      if Flexile_util.Prng.int seed 3 = 0 then begin
        let unassigned =
          List.filter_map
            (fun (eid, _) -> if assigned.(eid) then None else Some eid)
            g.Graph.adj.(node)
        in
        let unassigned = List.sort_uniq compare unassigned in
        let take = min (2 + Flexile_util.Prng.int seed 2) (List.length unassigned) in
        if take >= 2 then begin
          let members = Array.of_list (List.filteri (fun i _ -> i < take) unassigned) in
          Array.iter (fun eid -> assigned.(eid) <- true) members;
          groups := members :: !groups
        end
      end)
    order;
  for eid = ne - 1 downto 0 do
    if not assigned.(eid) then groups := [| eid |] :: !groups
  done;
  Array.of_list !groups

let triangle () =
  Graph.create ~name:"triangle" ~n:3 [| (0, 1, 1.); (0, 2, 1.); (1, 2, 1.) |]

let two_link () =
  Graph.create ~name:"two-link" ~n:3 [| (0, 1, 1.); (0, 2, 1.) |]
