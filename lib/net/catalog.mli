(** The topology catalog: the 20 evaluation networks of Table 2 (each
    generated deterministically at its exact published size, see
    {!Gen}) and the paper's illustrative toy topologies. *)

val table2 : (string * int * int) list
(** (name, nodes, edges) exactly as in Table 2 of the paper. *)

val by_name : string -> Graph.t
(** Case-insensitive lookup in {!table2} (plus ["continental"]).
    Raises [Not_found]. *)

val all : unit -> (string * Graph.t) list
(** All 20 evaluation topologies, smallest edge count first.  Does not
    include {!continental}, which is opt-in by name. *)

val continental : unit -> Graph.t
(** A deterministic 1100-node / 1800-edge synthetic continental WAN —
    an order of magnitude beyond Table 2, generated with the same
    seeded scheme.  Sized for the sparse LU simplex; the dense
    reference solver is not expected to handle it. *)

val srlgs : Graph.t -> int array array
(** Shared-risk link-group annotation for a catalog topology, derived
    deterministically from the topology name (seeded, no global
    state): a sampled subset of sites bundles 2-3 of its incident
    links into one fate-sharing conduit group; every remaining edge is
    its own singleton group.  Every edge appears in exactly one
    group. *)

val triangle : unit -> Graph.t
(** Fig. 1: nodes A=0, B=1, C=2, three unit-capacity links. *)

val two_link : unit -> Graph.t
(** Fig. 16: the triangle without the B-C link. *)
