open Flexile_te
module Stats = Flexile_util.Stats
module Prng = Flexile_util.Prng

type profile = {
  topos : string list;
  rich_topos : string list;
  ip_topos : string list;
  max_scenarios : int;
  max_pairs : int;
  emu_runs : int;
  cvar_scenarios : int;
  ip_time_limit : float;
  jobs : int;
}

let quick =
  {
    topos = [ "Sprint"; "B4"; "IBM"; "CWIX" ];
    rich_topos = [ "Sprint"; "B4" ];
    ip_topos = [ "Sprint" ];
    max_scenarios = 50;
    max_pairs = 120;
    emu_runs = 3;
    cvar_scenarios = 30;
    ip_time_limit = 60.;
    jobs = 0;
  }

let full =
  {
    quick with
    topos = List.map (fun (n, _, _) -> n) Flexile_net.Catalog.table2;
    rich_topos = [ "Sprint"; "B4"; "IBM"; "CWIX"; "Highwinds"; "Quest" ];
    ip_topos = [ "Sprint"; "B4"; "IBM" ];
    max_scenarios = 150;
    max_pairs = 240;
    ip_time_limit = 600.;
  }

let pct x = 100. *. x

let section title =
  Printf.printf "\n==================== %s ====================\n" title

let options_of p ~max_scenarios =
  {
    Builder.default_options with
    Builder.max_scenarios;
    max_pairs = p.max_pairs;
    jobs = p.jobs;
  }

(* Figures share instances and scheme runs (Figs 5/6/9 all exercise
   IBM, for example); memoize both so the harness only pays for each
   (instance, scheme) combination once. *)
(* c2-global-mut: single-domain memo tables keyed by deterministic
   strings; only the figure harness (never worker domains) touches
   them, and cache hits return the identical instance value. *)
let inst_cache : (string, Instance.t) Hashtbl.t =
  (Hashtbl.create 16 [@lint.allow "c2-global-mut"])

let loss_cache : (string, Instance.losses) Hashtbl.t =
  (Hashtbl.create 64 [@lint.allow "c2-global-mut"])

let inst_keys : (Instance.t, string) Hashtbl.t =
  (Hashtbl.create 16 [@lint.allow "c2-global-mut"])

let memo_inst key build =
  match Hashtbl.find_opt inst_cache key with
  | Some i -> i
  | None ->
      let i = build () in
      Hashtbl.replace inst_cache key i;
      Hashtbl.replace inst_keys i key;
      i

let build_single p ?(max_scenarios = p.max_scenarios) name =
  let key = Printf.sprintf "1|%s|%d|%d" name max_scenarios p.max_pairs in
  memo_inst key (fun () ->
      Builder.of_name ~options:(options_of p ~max_scenarios) name)

let build_two p ?(max_scenarios = p.max_scenarios) name =
  let key = Printf.sprintf "2|%s|%d|%d" name max_scenarios p.max_pairs in
  memo_inst key (fun () ->
      Builder.of_name ~options:(options_of p ~max_scenarios) ~two_classes:true
        name)

(* Memoizing scheme runner; falls back to an uncached run for
   instances built outside build_single/build_two.  The cache key
   ignores [jobs]: sweep results are deterministic across job counts
   (see Scenario_engine), so only wall time differs. *)
let run_scheme ?(jobs = 0) scheme inst =
  match Hashtbl.find_opt inst_keys inst with
  | None -> Schemes.run ~jobs scheme inst
  | Some ikey -> (
      let key = Schemes.name scheme ^ "@" ^ ikey in
      match Hashtbl.find_opt loss_cache key with
      | Some l -> l
      | None ->
          let l = Schemes.run ~jobs scheme inst in
          Hashtbl.replace loss_cache key l;
          l)

let perc inst losses k = Metrics.perc_loss inst losses ~cls:k ()

(* quantile of a weighted CDF given as sorted (value, cumulative)
   points: the smallest value whose cumulative mass reaches [mass]
   (worst case 1.0 when the distribution doesn't cover it) *)
let cdf_at cdf mass =
  let rec go = function
    | [] -> 1.0
    | (v, c) :: tl -> if c >= mass -. 1e-12 then v else go tl
  in
  go cdf

(* value at a given fraction of flows in a flow CDF *)
let flow_cdf_at cdf frac =
  let rec go = function
    | [] -> 1.0
    | (v, c) :: tl -> if c >= frac -. 1e-12 then v else go tl
  in
  go cdf

let med xs =
  match xs with [] -> nan | _ -> Stats.median (Array.of_list xs)

(* ------------------------------------------------------------------ *)

let motivation () =
  section "Motivation (Figs 1-4, Prop 2): triangle network";
  let inst = Builder.fig1 () in
  let report name losses =
    Printf.printf "  %-14s PercLoss(99%%) = %5.1f%%   per-flow VaR:" name
      (pct (perc inst losses 0));
    Array.iter
      (fun (f : Instance.flow) ->
        Printf.printf " %d->%d: %.1f%%" f.Instance.src f.Instance.dst
          (pct (Metrics.flow_loss_var inst losses f ~beta:0.99)))
      inst.Instance.flows;
    print_newline ()
  in
  report "ScenBest/SMORE" (Scenbest.run inst);
  report "Teavar" (Teavar.run inst).Teavar.losses;
  report "Cvar-Flow-St" (Cvar_flow.run_static inst).Cvar_flow.losses;
  report "Cvar-Flow-Ad" (Cvar_flow.run_adaptive inst).Cvar_flow.losses;
  let fx = Flexile_scheme.run inst in
  report "Flexile" fx.Flexile_scheme.losses;
  Printf.printf
    "  paper: ScenBest/Teavar stuck at 50%%, CVaR variants >= 48.5%%, Flexile 0%%\n"

let fig5 p =
  section "Fig 5: CDF of 99.9%ile flow loss (IBM, single class)";
  let inst = build_single p "IBM" in
  let beta = inst.Instance.classes.(0).Instance.beta in
  Printf.printf "  design target beta = %.6f\n" beta;
  let schemes =
    [
      ("Teavar", run_scheme ~jobs:p.jobs Schemes.Teavar inst);
      ("ScenBest", run_scheme ~jobs:p.jobs Schemes.Smore inst);
      ("Flexile", run_scheme ~jobs:p.jobs Schemes.Flexile inst);
    ]
  in
  Printf.printf "  %-10s" "fraction";
  List.iter (fun (n, _) -> Printf.printf " %10s" n) schemes;
  print_newline ();
  List.iter
    (fun frac ->
      Printf.printf "  %-10.2f" frac;
      List.iter
        (fun (_, losses) ->
          let cdf = Metrics.flow_var_cdf inst losses ~cls:0 ~beta in
          Printf.printf " %9.2f%%" (pct (flow_cdf_at cdf frac)))
        schemes;
      print_newline ())
    [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ];
  Printf.printf "  paper shape: Teavar >> ScenBest >> Flexile (= 0 everywhere)\n"

let fig6 p =
  section "Fig 6: per-scenario loss penalty vs ScenBest (IBM)";
  let inst = build_single p "IBM" in
  let baseline = run_scheme ~jobs:p.jobs Schemes.Smore inst in
  let rows =
    [
      ("Flexile", run_scheme ~jobs:p.jobs Schemes.Flexile inst);
      ("Teavar", run_scheme ~jobs:p.jobs Schemes.Teavar inst);
    ]
  in
  Printf.printf "  %-10s %12s %12s %12s %12s\n" "scheme" "@0.9" "@0.99" "@0.999"
    "@0.9999";
  List.iter
    (fun (name, losses) ->
      let cdf = Metrics.scenario_penalty_cdf inst losses ~baseline in
      Printf.printf "  %-10s" name;
      List.iter
        (fun mass -> Printf.printf " %11.2f%%" (pct (cdf_at cdf mass)))
        [ 0.9; 0.99; 0.999; 0.9999 ];
      print_newline ())
    rows;
  Printf.printf
    "  paper shape: Flexile ~0 through 99.9%%, small at 99.99%%; Teavar >= 10%% everywhere\n"

let fig9 p =
  section "Fig 9: emulation testbed (IBM)";
  (* (a) two classes: Flexile vs SWAN-Maxmin *)
  let inst2 = build_two p "IBM" in
  Printf.printf "  (a) two classes, %d flows, %d scenarios\n"
    (Instance.nflows inst2) (Instance.nscenarios inst2);
  let emu_percentiles inst model =
    List.init p.emu_runs (fun i ->
        let seed = Prng.of_string (Printf.sprintf "fig9-run-%d" i) in
        let r = Flexile_emu.Emulator.emulate ~seed inst ~model_losses:model in
        ( Array.init (Array.length inst.Instance.classes) (fun k ->
              perc inst r.Flexile_emu.Emulator.emulated k),
          r ))
  in
  let report2 name model =
    let runs = emu_percentiles inst2 model in
    Array.iteri
      (fun k (c : Instance.cls) ->
        let vals = List.map (fun (a, _) -> pct a.(k)) runs in
        Printf.printf
          "    %-14s %-4s priority: median %6.2f%%  min %6.2f%%  max %6.2f%%\n"
          name c.Instance.cname (med vals)
          (List.fold_left Float.min infinity vals)
          (List.fold_left Float.max 0. vals))
      inst2.Instance.classes;
    runs
  in
  let fx2 = run_scheme ~jobs:p.jobs Schemes.Flexile inst2 in
  let runs_fx = report2 "Flexile" fx2 in
  let _ = report2 "SWAN-Maxmin" (run_scheme ~jobs:p.jobs Schemes.Swan_maxmin inst2) in
  (* (b) single class: Flexile vs SMORE vs Teavar *)
  let inst1 = build_single p "IBM" in
  Printf.printf "  (b) single class at beta=%.5f\n"
    inst1.Instance.classes.(0).Instance.beta;
  let report1 name model =
    let runs = emu_percentiles inst1 model in
    let vals = List.map (fun (a, _) -> pct a.(0)) runs in
    Printf.printf "    %-14s median %6.2f%%  min %6.2f%%  max %6.2f%%\n" name
      (med vals)
      (List.fold_left Float.min infinity vals)
      (List.fold_left Float.max 0. vals)
  in
  report1 "Flexile" (run_scheme ~jobs:p.jobs Schemes.Flexile inst1);
  report1 "SMORE" (run_scheme ~jobs:p.jobs Schemes.Smore inst1);
  report1 "Teavar" (run_scheme ~jobs:p.jobs Schemes.Teavar inst1);
  (* (c) discretization gap *)
  Printf.printf "  (c) emulation vs model (Flexile, two classes):\n";
  List.iteri
    (fun i (_, r) ->
      Printf.printf "    run %d: PCC = %.6f, max |emulated - model| = %.2f%%\n"
        (i + 1) r.Flexile_emu.Emulator.pcc
        (pct r.Flexile_emu.Emulator.max_abs_diff))
    runs_fx;
  Printf.printf "  paper: PCC > 0.999 and all diffs < 1.67%%\n"

let fig10 p =
  section "Fig 10: low-priority PercLoss across topologies (two classes)";
  Printf.printf "  %-16s %10s %12s %16s\n" "topology" "Flexile" "SWAN-Maxmin"
    "SWAN-Throughput";
  let fx_all = ref [] and mm_all = ref [] and tp_all = ref [] in
  List.iter
    (fun name ->
      let inst = build_two p name in
      let fx = pct (perc inst (run_scheme ~jobs:p.jobs Schemes.Flexile inst) 1) in
      let mm = pct (perc inst (run_scheme ~jobs:p.jobs Schemes.Swan_maxmin inst) 1) in
      let tp = pct (perc inst (run_scheme ~jobs:p.jobs Schemes.Swan_throughput inst) 1) in
      fx_all := fx :: !fx_all;
      mm_all := mm :: !mm_all;
      tp_all := tp :: !tp_all;
      Printf.printf "  %-16s %9.2f%% %11.2f%% %15.2f%%\n" name fx mm tp)
    p.topos;
  Printf.printf "  medians: Flexile %.1f%%, SWAN-Maxmin %.1f%%, SWAN-Throughput %.1f%%\n"
    (med !fx_all) (med !mm_all) (med !tp_all);
  Printf.printf "  paper: medians 0%% / 58%% / 100%%\n"

let fig11 p =
  section "Fig 11: PercLoss across topologies (single class, CVaR family)";
  Printf.printf "  %-16s %8s %14s %14s %10s\n" "topology" "Teavar"
    "Cvar-Flow-St" "Cvar-Flow-Ad" "Flexile";
  let acc = Array.make 4 [] in
  List.iter
    (fun name ->
      let inst = build_single p ~max_scenarios:p.cvar_scenarios name in
      let run i scheme =
        try
          let v = pct (perc inst (run_scheme scheme inst) 0) in
          acc.(i) <- v :: acc.(i);
          Printf.sprintf "%.2f%%" v
        with Schemes.Timeout _ -> "TLE"
      in
      let tv = run 0 Schemes.Teavar in
      let st = run 1 Schemes.Cvar_flow_st in
      let ad = run 2 Schemes.Cvar_flow_ad in
      let fx = run 3 Schemes.Flexile in
      Printf.printf "  %-16s %8s %14s %14s %10s\n" name tv st ad fx)
    p.topos;
  Printf.printf
    "  medians: Teavar %.1f%%, Cvar-Flow-St %.1f%%, Cvar-Flow-Ad %.1f%%, Flexile %.1f%%\n"
    (med acc.(0)) (med acc.(1)) (med acc.(2)) (med acc.(3));
  Printf.printf "  paper shape: Teavar >> Cvar-Flow-St >= Cvar-Flow-Ad >> Flexile\n"

let fig12 p =
  section "Fig 12: richly connected topologies (two sub-links per link)";
  Printf.printf "  %-16s %8s %8s %10s\n" "topology" "Teavar" "SMORE" "Flexile";
  let red_smore = ref [] and red_tv = ref [] in
  List.iter
    (fun name ->
      let inst =
        memo_inst (Printf.sprintf "rich|%s|%d|%d" name p.max_scenarios p.max_pairs)
          (fun () ->
            let graph =
              Flexile_net.Graph.split_links (Flexile_net.Catalog.by_name name)
            in
            let options = options_of p ~max_scenarios:p.max_scenarios in
            Builder.single_class ~options ~graph ())
      in
      let smore = pct (perc inst (run_scheme ~jobs:p.jobs Schemes.Smore inst) 0) in
      let fx = pct (perc inst (run_scheme ~jobs:p.jobs Schemes.Flexile inst) 0) in
      let tv =
        try Some (pct (perc inst (run_scheme ~jobs:p.jobs Schemes.Teavar inst) 0))
        with Schemes.Timeout _ -> None
      in
      if smore > 0.01 then red_smore := (smore -. fx) /. smore *. 100. :: !red_smore;
      (match tv with
      | Some tv when tv > 0.01 -> red_tv := (tv -. fx) /. tv *. 100. :: !red_tv
      | _ -> ());
      Printf.printf "  %-16s %8s %7.2f%% %9.2f%%\n" name
        (match tv with Some tv -> Printf.sprintf "%.2f%%" tv | None -> "TLE")
        smore fx)
    p.rich_topos;
  Printf.printf
    "  median %%-reduction of Flexile: vs SMORE %.0f%%, vs Teavar %.0f%%\n"
    (med !red_smore) (med !red_tv);
  Printf.printf "  paper: 46%% vs SMORE, 63%% vs Teavar (medians)\n"

let fig13 p =
  section "Fig 13: worst-flow loss per scenario (two classes)";
  (* the paper uses Sprint; we pick the profile topology whose low
     class is actually stressed so the schemes are distinguishable *)
  let inst = build_two p "CWIX" in
  Printf.printf "  topology CWIX, sampled coverage %.5f\n"
    (Flexile_failure.Failure_model.coverage inst.Instance.scenarios);
  let rows =
    [
      ("SWAN-Maxmin", run_scheme ~jobs:p.jobs Schemes.Swan_maxmin inst);
      ("Flexile", run_scheme ~jobs:p.jobs Schemes.Flexile inst);
      ("ScenBest-Multi", run_scheme ~jobs:p.jobs Schemes.Scenbest_multi inst);
    ]
  in
  List.iter
    (fun k ->
      Printf.printf "  %s priority:\n" inst.Instance.classes.(k).Instance.cname;
      Printf.printf "    %-16s %10s %10s %10s %10s\n" "scheme" "@0.9" "@0.99"
        "@0.995" "@0.999";
      List.iter
        (fun (name, losses) ->
          let cdf = Metrics.worst_flow_cdf inst losses ~cls:k in
          Printf.printf "    %-16s" name;
          List.iter
            (fun mass -> Printf.printf " %9.2f%%" (pct (cdf_at cdf mass)))
            [ 0.9; 0.99; 0.995; 0.999 ];
          print_newline ())
        rows)
    [ 0; 1 ];
  Printf.printf
    "  paper shape: high priority lossless for all; low: Flexile ~ ScenBest-Multi << SWAN-Maxmin\n"

let fig14 p =
  section "Fig 14: optimality gap per decomposition iteration (two classes)";
  Printf.printf "  %-12s %10s | gap after iteration 1..5 (low-priority PercLoss %%)\n"
    "topology" "optimal";
  List.iter
    (fun name ->
      (* small instances: the reference optimum must be computable *)
      let inst =
        memo_inst (Printf.sprintf "fig14|%s" name) (fun () ->
            let options =
              {
                (options_of p ~max_scenarios:15) with
                Builder.max_pairs = 25;
              }
            in
            Builder.of_name ~options ~two_classes:true name)
      in
      let config =
        {
          Flexile_offline.default_config with
          Flexile_offline.max_iterations = 5;
          jobs = p.jobs;
        }
      in
      let off = Flexile_offline.solve ~config inst in
      let optimal =
        try
          let ip =
            Ip_direct.solve
              ~options:
                {
                  Flexile_lp.Mip.default_options with
                  Flexile_lp.Mip.node_limit = 2000;
                  time_limit = p.ip_time_limit;
                }
              inst
          in
          if ip.Ip_direct.optimal then Some (pct (perc inst ip.Ip_direct.losses 1))
          else None
        with _ -> None
      in
      let lb = pct (Lower_bound.perc_loss_lower_bound inst ~cls:1) in
      let reference = match optimal with Some o -> o | None -> lb in
      Printf.printf "  %-12s %9.2f%%%s |" name reference
        (match optimal with Some _ -> " (IP)" | None -> " (LB)");
      let best = ref infinity in
      List.iter
        (fun (it : Flexile_offline.iterate) ->
          let v = pct (perc inst it.Flexile_offline.losses 1) in
          best := Float.min !best v;
          Printf.printf " %6.2f" (Float.max 0. (!best -. reference)))
        off.Flexile_offline.iterates;
      print_newline ())
    p.ip_topos;
  Printf.printf "  paper: all topologies reach gap 0 within 5 iterations; 40%% at iteration 1\n"

let fig15 p =
  section "Fig 15: offline solving time vs topology size";
  Printf.printf "  %-16s %6s %12s %12s\n" "topology" "links" "Flexile(s)" "IP(s)";
  List.iter
    (fun name ->
      let inst = build_two p ~max_scenarios:30 name in
      let links = Flexile_net.Graph.nedges inst.Instance.graph in
      let off =
        Flexile_offline.solve
          ~config:
            { Flexile_offline.default_config with Flexile_offline.jobs = p.jobs }
          inst
      in
      let ip_time =
        if List.mem name p.ip_topos then begin
          let t0 = Flexile_util.Trace.now_s () in
          (try
             ignore
               (Ip_direct.solve
                  ~options:
                    {
                      Flexile_lp.Mip.default_options with
                      Flexile_lp.Mip.node_limit = 2000;
                      time_limit = p.ip_time_limit;
                    }
                  inst)
           with _ -> ());
          let t = Flexile_util.Trace.now_s () -. t0 in
          if t >= p.ip_time_limit then Printf.sprintf ">%.0f (TLE)" t
          else Printf.sprintf "%.1f" t
        end
        else "TLE"
      in
      Printf.printf "  %-16s %6d %12.1f %12s\n" name links
        off.Flexile_offline.wall_time ip_time)
    p.topos;
  Printf.printf "  paper shape: Flexile seconds-scale; IP explodes with size\n"

let fig18 p =
  section "Fig 18: max low-priority scale with zero 99%ile loss";
  Printf.printf "  %-10s %10s %12s\n" "topology" "Flexile" "SWAN-Maxmin";
  List.iter
    (fun name ->
      let graph = Flexile_net.Catalog.by_name name in
      let options = options_of p ~max_scenarios:25 in
      let fx =
        Max_scale.search ~options ~steps:3 ~scheme:Schemes.Flexile ~graph ()
      in
      let mm =
        Max_scale.search ~options ~steps:3 ~scheme:Schemes.Swan_maxmin ~graph
          ()
      in
      Printf.printf "  %-10s %10.2f %12.2f\n" name fx mm)
    [ "Sprint"; "CWIX" ];
  Printf.printf
    "  paper shape: Flexile sustains a higher scale on every topology\n\
    \  (quick profile runs 2 of the paper's 4 topologies; --full runs all)\n"

let table2 () =
  section "Table 2: topologies";
  Printf.printf "  %-16s %6s %6s\n" "name" "nodes" "edges";
  List.iter
    (fun (name, n, m) -> Printf.printf "  %-16s %6d %6d\n" name n m)
    Flexile_net.Catalog.table2

let scenloss p =
  section "Sec 6.3: does Flexile increase loss in scenarios?";
  Printf.printf "  99.9%%ile ScenLoss (worst connected flow), single class:\n";
  Printf.printf "  %-16s %8s %10s %10s\n" "topology" "Teavar" "ScenBest" "Flexile";
  List.iter
    (fun name ->
      let inst = build_single p name in
      let scen_var losses =
        let samples =
          Array.map
            (fun (s : Flexile_failure.Failure_model.scenario) ->
              ( Metrics.scen_loss inst losses
                  ~sid:s.Flexile_failure.Failure_model.sid (),
                s.Flexile_failure.Failure_model.prob ))
            inst.Instance.scenarios
        in
        Stats.weighted_var samples ~beta:0.999
      in
      let tv =
        try Printf.sprintf "%.1f%%" (pct (scen_var (run_scheme ~jobs:p.jobs Schemes.Teavar inst)))
        with Schemes.Timeout _ -> "TLE"
      in
      let sb = pct (scen_var (run_scheme ~jobs:p.jobs Schemes.Smore inst)) in
      let fx = pct (scen_var (run_scheme ~jobs:p.jobs Schemes.Flexile inst)) in
      Printf.printf "  %-16s %8s %9.1f%% %9.1f%%\n" name tv sb fx)
    (List.filteri (fun i _ -> i < 4) p.topos);
  (* the gamma knob on Quest (paper: +<=5% per scenario, PercLoss 16%
     vs 35% ScenBest-Multi vs 57% SWAN-Maxmin) *)
  Printf.printf "\n  gamma-bounded variant on Quest (two classes, gamma = 0.05):\n";
  let inst = build_two p ~max_scenarios:30 "Quest" in
  let config =
    {
      Flexile_offline.default_config with
      Flexile_offline.gamma = Some 0.05;
      jobs = p.jobs;
    }
  in
  let fxg = (Flexile_scheme.run ~config inst).Flexile_scheme.losses in
  let sbm = run_scheme ~jobs:p.jobs Schemes.Scenbest_multi inst in
  let mm = run_scheme ~jobs:p.jobs Schemes.Swan_maxmin inst in
  Printf.printf
    "    low-priority PercLoss: Flexile(gamma) %.1f%%, ScenBest-Multi %.1f%%, SWAN-Maxmin %.1f%%\n"
    (pct (perc inst fxg 1)) (pct (perc inst sbm 1)) (pct (perc inst mm 1));
  (* max increase of the worst low-priority flow loss in any scenario *)
  let worst_increase = ref 0. in
  for sid = 0 to Instance.nscenarios inst - 1 do
    let a =
      Array.fold_left
        (fun acc (f : Instance.flow) ->
          if f.Instance.cls = 1 && f.Instance.demand > 0.
             && Instance.flow_connected inst f sid
          then Float.max acc fxg.(f.Instance.fid).(sid)
          else acc)
        0. inst.Instance.flows
    in
    let b =
      Array.fold_left
        (fun acc (f : Instance.flow) ->
          if f.Instance.cls = 1 && f.Instance.demand > 0.
             && Instance.flow_connected inst f sid
          then Float.max acc sbm.(f.Instance.fid).(sid)
          else acc)
        0. inst.Instance.flows
    in
    worst_increase := Float.max !worst_increase (a -. b)
  done;
  Printf.printf
    "    max per-scenario increase of the worst low flow vs ScenBest-Multi: %.1f%%\n"
    (pct !worst_increase)

let ablation p =
  section "Ablation: Flexile's offline accelerations (sec 4.2)";
  Printf.printf "  %-34s %10s %12s %8s\n" "variant" "wall (s)" "subproblems"
    "penalty";
  let topo = "IBM" in
  let inst = build_two p ~max_scenarios:(min 40 p.max_scenarios) topo in
  let base =
    { Flexile_offline.default_config with Flexile_offline.jobs = p.jobs }
  in
  let variants =
    [
      ("default (cold subproblem solves)", base);
      ( "dual-simplex warm restarts",
        { base with Flexile_offline.warm_start = true } );
      ("no scenario pruning", { base with Flexile_offline.prune = false });
      ("no cut sharing (eq. 22)", { base with Flexile_offline.share_cuts = false });
      ( "hamming limit 50 (eq. 23)",
        { base with Flexile_offline.hamming_limit = Some 50 } );
    ]
  in
  List.iter
    (fun (name, config) ->
      let r = Flexile_offline.solve ~config inst in
      Printf.printf "  %-34s %10.2f %12d %7.4f\n" name
        r.Flexile_offline.wall_time r.Flexile_offline.subproblems_solved
        r.Flexile_offline.best.Flexile_offline.penalty)
    variants;
  Printf.printf "  (on %s, two classes; all variants converge to the same penalty)\n" topo

let all p =
  motivation ();
  table2 ();
  fig5 p;
  fig6 p;
  fig9 p;
  fig10 p;
  fig11 p;
  fig12 p;
  fig13 p;
  fig14 p;
  fig15 p;
  fig18 p;
  scenloss p;
  ablation p
