(** Reproduction harnesses: one function per table/figure of the
    paper's evaluation (§3, §6 and appendix D).  Each prints the
    figure's rows/series to stdout; [bench/main.exe] drives them all.

    The [profile] controls instance sizes so a default run finishes on
    a laptop; [full] matches the paper's scope (all 20 topologies). *)

type profile = {
  topos : string list;  (** topologies for the cross-topology figures *)
  rich_topos : string list;  (** for the split-sub-link study (Fig 12) *)
  ip_topos : string list;  (** where the exact IP is attempted (Figs 14/15) *)
  max_scenarios : int;
  max_pairs : int;
  emu_runs : int;
  cvar_scenarios : int;  (** scenario cap for the CVaR family *)
  ip_time_limit : float;
  jobs : int;
      (** worker domains for every scheme's scenario sweep (0 = auto,
          see {!Flexile_te.Scenario_engine}) *)
}

val quick : profile
(** Small/medium topologies, suitable for a default bench run. *)

val full : profile
(** All 20 topologies.  Hours of compute; CVaR/IP still guarded. *)

val motivation : unit -> unit
(** Figs 1-4 + Proposition 2: the triangle example. *)

val fig5 : profile -> unit
(** CDF of 99.9%ile flow loss on IBM: Teavar vs ScenBest vs Flexile. *)

val fig6 : profile -> unit
(** CDF of per-scenario loss penalty vs ScenBest on IBM. *)

val fig9 : profile -> unit
(** Emulation: (a) Flexile vs SWAN two-class, (b) vs SMORE/Teavar
    single-class, (c) emulation-vs-model discretization gap. *)

val fig10 : profile -> unit
(** Low-priority PercLoss across topologies: Flexile vs SWAN variants. *)

val fig11 : profile -> unit
(** PercLoss across topologies: Teavar, Cvar-Flow-St/Ad, Flexile. *)

val fig12 : profile -> unit
(** Richly connected topologies: Teavar vs SMORE vs Flexile. *)

val fig13 : profile -> unit
(** Per-scenario worst-flow loss CDFs, Sprint, two classes. *)

val fig14 : profile -> unit
(** Optimality gap after each decomposition iteration. *)

val fig15 : profile -> unit
(** Offline solving time: Flexile vs the exact IP, by topology size. *)

val fig18 : profile -> unit
(** Max sustainable low-priority scale: Flexile vs SWAN-Maxmin. *)

val table2 : unit -> unit
(** The topology inventory. *)

val scenloss : profile -> unit
(** §6.3: ScenLoss comparisons and the gamma-bounded variant. *)

val ablation : profile -> unit
(** Ablation of the §4.2 accelerations (warm starts, pruning, cut
    sharing, Hamming stabilization): wall time, subproblem count and
    achieved penalty. *)

val all : profile -> unit
(** Every harness in paper order. *)
