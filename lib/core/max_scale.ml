open Flexile_te

let zero_loss ?options ~scheme ~graph scale =
  let base = match options with Some o -> o | None -> Builder.default_options in
  let inst = Builder.two_class ~options:{ base with Builder.low_scale = scale } ~graph () in
  let losses = Schemes.run ~jobs:base.Builder.jobs scheme inst in
  Metrics.perc_loss inst losses ~cls:1 () <= 1e-4

let search ?options ?(lo = 0.25) ?(hi = 4.0) ?(steps = 6) ~scheme ~graph () =
  if not (zero_loss ?options ~scheme ~graph lo) then 0.
  else begin
    let lo = ref lo and hi = ref hi in
    if zero_loss ?options ~scheme ~graph !hi then !hi
    else begin
      for _ = 1 to steps do
        let mid = (!lo +. !hi) /. 2. in
        if zero_loss ?options ~scheme ~graph mid then lo := mid else hi := mid
      done;
      !lo
    end
  end
