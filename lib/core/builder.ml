module Prng = Flexile_util.Prng
module Graph = Flexile_net.Graph
module Tunnels = Flexile_net.Tunnels
module Failure_model = Flexile_failure.Failure_model
module Gravity = Flexile_traffic.Gravity
module Instance = Flexile_te.Instance
module Mlu = Flexile_te.Mlu

type options = {
  max_pairs : int;
  max_scenarios : int;
  scenario_cutoff : float;
  mlu_lo : float;
  mlu_hi : float;
  tunnels_per_pair : int;
  low_extra_tunnels : int;
  low_scale : float;
  low_beta : float;
  high_weight : float;
  median_failure_prob : float;
  jobs : int;
}

let default_options =
  {
    max_pairs = 240;
    max_scenarios = 150;
    scenario_cutoff = 1e-6;
    mlu_lo = 0.5;
    mlu_hi = 0.7;
    tunnels_per_pair = 3;
    low_extra_tunnels = 3;
    low_scale = 2.0;
    low_beta = 0.99;
    high_weight = 100.;
    median_failure_prob = 0.001;
    jobs = 0;
  }

let sample_pairs ~seed ~max_pairs graph =
  let all = Graph.pairs graph in
  if Array.length all <= max_pairs then all
  else begin
    let copy = Array.copy all in
    Prng.shuffle seed copy;
    let chosen = Array.sub copy 0 max_pairs in
    Array.sort compare chosen;
    chosen
  end

let scenarios_for ~options ~seed graph =
  let fm =
    Failure_model.independent_links ~median:options.median_failure_prob ~graph
      ~seed ()
  in
  Failure_model.enumerate ~cutoff:options.scenario_cutoff
    ~max_scenarios:options.max_scenarios fm

(* Scale a gravity matrix so the no-failure min-MLU lands at a
   deterministic point of the paper's [0.5, 0.7] window. *)
let scaled_gravity ~options ~seed graph pairs tunnels =
  let demands = Gravity.matrix ~seed ~graph ~pairs in
  let target = Prng.uniform seed options.mlu_lo options.mlu_hi in
  let mlu d = Mlu.min_mlu ~graph ~tunnels ~demands:d in
  Gravity.scale_to_mlu ~mlu ~target demands

(* §6: "our design target is set to as high a probability target as
   possible, while ensuring all flows remain connected for the sampled
   scenarios" — i.e. the minimum over flows of their connected
   probability mass (any higher target trivially forces PercLoss 1).
   The flow crossing the least reliable cut is the binding one; every
   other flow keeps a positive probability budget of scenarios it may
   sacrifice, which is exactly the heterogeneity Flexile exploits. *)
let finalize_betas inst =
  let classes = Array.copy inst.Instance.classes in
  Array.iteri
    (fun k (c : Instance.cls) ->
      if Float.is_nan c.Instance.beta then begin
        let mass =
          Array.fold_left
            (fun acc (f : Instance.flow) ->
              if f.Instance.cls = k && f.Instance.demand > 0. then
                Float.min acc (Instance.connected_mass inst f)
              else acc)
            1. inst.Instance.flows
        in
        classes.(k) <- { c with Instance.beta = Float.max 0. (mass -. 1e-9) }
      end)
    classes;
  Instance.with_classes inst classes

let single_class ?(options = default_options) ~graph () =
  let seed = Prng.of_string ("flexile-instance-" ^ graph.Graph.name) in
  let pairs = sample_pairs ~seed:(Prng.split seed "pairs") ~max_pairs:options.max_pairs graph in
  let tunnels_single =
    Array.map
      (fun (u, v) ->
        Array.of_list
          (Tunnels.select_single_class graph ~pair:(u, v)
             ~count:options.tunnels_per_pair))
      pairs
  in
  let demands =
    scaled_gravity ~options ~seed:(Prng.split seed "traffic") graph pairs
      tunnels_single
  in
  let scenarios = scenarios_for ~options ~seed:(Prng.split seed "failures") graph in
  let inst =
    Instance.make ~graph
      ~classes:[| { Instance.cname = "all"; beta = Float.nan; weight = 1. } |]
      ~pairs ~tunnels:[| tunnels_single |] ~demands:[| demands |] ~scenarios ()
  in
  finalize_betas inst

let two_class ?(options = default_options) ~graph () =
  let seed = Prng.of_string ("flexile-instance2-" ^ graph.Graph.name) in
  let pairs = sample_pairs ~seed:(Prng.split seed "pairs") ~max_pairs:options.max_pairs graph in
  let tunnels_high =
    Array.map
      (fun (u, v) ->
        Array.of_list
          (Tunnels.select_high_priority graph ~pair:(u, v)
             ~count:options.tunnels_per_pair))
      pairs
  in
  let tunnels_low =
    Array.mapi
      (fun i (u, v) ->
        Array.of_list
          (Tunnels.select_low_priority graph ~pair:(u, v)
             ~high:(Array.to_list tunnels_high.(i))
             ~extra:options.low_extra_tunnels))
      pairs
  in
  let base =
    scaled_gravity ~options ~seed:(Prng.split seed "traffic") graph pairs
      tunnels_high
  in
  let high, low =
    Gravity.split_two_class ~seed:(Prng.split seed "split")
      ~low_scale:options.low_scale base
  in
  let scenarios = scenarios_for ~options ~seed:(Prng.split seed "failures") graph in
  let inst =
    Instance.make ~graph
      ~classes:
        [|
          { Instance.cname = "high"; beta = Float.nan; weight = options.high_weight };
          { Instance.cname = "low"; beta = options.low_beta; weight = 1. };
        |]
      ~pairs
      ~tunnels:[| tunnels_high; tunnels_low |]
      ~demands:[| high; low |] ~scenarios ()
  in
  finalize_betas inst

let of_name ?options ?(two_classes = false) name =
  let graph = Flexile_net.Catalog.by_name name in
  if two_classes then two_class ?options ~graph ()
  else single_class ?options ~graph ()

(* ---------- toy instances from the paper ---------- *)

let path_tunnel graph ~pair edges = Tunnels.make graph ~pair (Array.of_list edges)

let fig1 () =
  let graph = Flexile_net.Catalog.triangle () in
  (* edge ids: 0 = A-B, 1 = A-C, 2 = B-C *)
  let pairs = [| (0, 1); (0, 2) |] in
  let tunnels =
    [|
      [|
        (* A-B: direct and via C *)
        [| path_tunnel graph ~pair:(0, 1) [ 0 ]; path_tunnel graph ~pair:(0, 1) [ 1; 2 ] |];
        (* A-C: direct and via B *)
        [| path_tunnel graph ~pair:(0, 2) [ 1 ]; path_tunnel graph ~pair:(0, 2) [ 0; 2 ] |];
      |];
    |]
  in
  let fm = Failure_model.of_probs ~nedges:3 [| 0.01; 0.01; 0.01 |] in
  let scenarios = Failure_model.enumerate ~cutoff:1e-7 ~max_scenarios:8 fm in
  Instance.make ~graph
    ~classes:[| { Instance.cname = "all"; beta = 0.99; weight = 1. } |]
    ~pairs ~tunnels ~demands:[| [| 1.; 1. |] |] ~scenarios ()

let fig17 () =
  let graph = Flexile_net.Catalog.triangle () in
  let pairs = [| (0, 1); (0, 2) |] in
  let tunnels =
    [|
      [|
        (* A-B restricted to the direct link (directed topology) *)
        [| path_tunnel graph ~pair:(0, 1) [ 0 ] |];
        (* A-C: direct and via B *)
        [| path_tunnel graph ~pair:(0, 2) [ 1 ]; path_tunnel graph ~pair:(0, 2) [ 0; 2 ] |];
      |];
    |]
  in
  let fm = Failure_model.of_probs ~nedges:3 [| 0.01; 0.01; 0.01 |] in
  let scenarios = Failure_model.enumerate ~cutoff:1e-7 ~max_scenarios:8 fm in
  Instance.make ~graph
    ~classes:[| { Instance.cname = "all"; beta = 0.99; weight = 1. } |]
    ~pairs ~tunnels ~demands:[| [| 1.; 1. |] |] ~scenarios ()
