module Prng = Flexile_util.Prng
module Graph = Flexile_net.Graph
module Tunnels = Flexile_net.Tunnels
module Failure_model = Flexile_failure.Failure_model
module Scenario_gen = Flexile_failure.Scenario_gen
module Gravity = Flexile_traffic.Gravity
module Instance = Flexile_te.Instance
module Mlu = Flexile_te.Mlu

type options = {
  max_pairs : int;
  max_scenarios : int;
  scenario_cutoff : float;
  scenario_mix : string;
  mlu_lo : float;
  mlu_hi : float;
  tunnels_per_pair : int;
  low_extra_tunnels : int;
  low_scale : float;
  low_beta : float;
  high_weight : float;
  median_failure_prob : float;
  jobs : int;
}

let default_options =
  {
    max_pairs = 240;
    max_scenarios = 150;
    scenario_cutoff = 1e-6;
    scenario_mix = "independent";
    mlu_lo = 0.5;
    mlu_hi = 0.7;
    tunnels_per_pair = 3;
    low_extra_tunnels = 3;
    low_scale = 2.0;
    low_beta = 0.99;
    high_weight = 100.;
    median_failure_prob = 0.001;
    jobs = 0;
  }

let known_regimes =
  [ "independent"; "srlg"; "partial"; "drift"; "diurnal"; "maintenance" ]

let parse_mix spec =
  let tokens =
    List.filter
      (fun s -> s <> "")
      (String.split_on_char ',' (String.lowercase_ascii (String.trim spec)))
  in
  if tokens = [] then invalid_arg "Builder: empty scenario mix";
  List.iter
    (fun t ->
      if not (List.mem t known_regimes) then
        invalid_arg
          (Printf.sprintf
             "Builder: unknown scenario regime %S (known: %s)" t
             (String.concat ", " known_regimes)))
    tokens;
  let seen = Hashtbl.create 8 in
  List.filter
    (fun t ->
      if Hashtbl.mem seen t then false
      else begin
        Hashtbl.add seen t ();
        true
      end)
    tokens

let sample_pairs ~seed ~max_pairs graph =
  let all = Graph.pairs graph in
  if Array.length all <= max_pairs then all
  else begin
    let copy = Array.copy all in
    Prng.shuffle seed copy;
    let chosen = Array.sub copy 0 max_pairs in
    Array.sort compare chosen;
    chosen
  end

let scenarios_for ~options ~seed graph =
  let fm =
    Failure_model.independent_links ~median:options.median_failure_prob ~graph
      ~seed ()
  in
  Failure_model.enumerate ~cutoff:options.scenario_cutoff
    ~max_scenarios:options.max_scenarios fm

(* A deterministic weekly maintenance schedule for mixed-regime sets:
   the two lowest-id links each get a 4-hour window out of a 168-hour
   horizon, disjoint in time.  Purely a function of the topology. *)
let default_maintenance graph =
  let ne = Graph.nedges graph in
  let windows =
    if ne >= 2 then
      [
        {
          Scenario_gen.wname = "mw-0";
          wedges = [| 0 |];
          wstart = 10.;
          wduration = 4.;
        };
        { Scenario_gen.wname = "mw-1"; wedges = [| 1 |]; wstart = 60.; wduration = 4. };
      ]
    else
      [ { Scenario_gen.wname = "mw-0"; wedges = [| 0 |]; wstart = 10.; wduration = 4. } ]
  in
  Scenario_gen.maintenance ~nedges:ne ~horizon:168. windows

(* Enumerated scenario set for the configured mix.  The default
   "independent" mix takes the legacy Failure_model path unchanged —
   same PRNG draws, same enumeration — so every existing figure,
   monitor artifact, and baseline stays byte-identical.  Mixed regimes
   compose Scenario_gen generators, each drawing from its own
   name-split seed. *)
let scenario_set ~options ~seed ~graph ~npairs =
  if String.equal options.scenario_mix "independent" then
    (* legacy tags are derived by Instance.regime; returning None here
       keeps the instance record — and everything downstream —
       byte-identical to the pre-mix builds *)
    (scenarios_for ~options ~seed graph, None, None)
  else begin
    let tokens = parse_mix options.scenario_mix in
    let ne = Graph.nedges graph in
    let gen_of = function
      | "independent" ->
          Scenario_gen.independent_links ~median:options.median_failure_prob
            ~graph
            ~seed:(Prng.split seed "independent")
            ()
      | "srlg" ->
          Scenario_gen.srlg ~median:options.median_failure_prob ~nedges:ne
            ~groups:(Flexile_net.Catalog.srlgs graph)
            ~seed:(Prng.split seed "srlg")
            ()
      | "partial" ->
          Scenario_gen.partial ~median:options.median_failure_prob ~graph
            ~seed:(Prng.split seed "partial")
            ()
      | "drift" ->
          let states =
            Gravity.drift_states
              ~seed:(Prng.split seed "drift")
              ~npairs ()
          in
          Scenario_gen.demand_states ~nedges:ne ~name:"drift"
            (Array.map
               (fun (p, fs) -> (p, Scenario_gen.Per_pair fs))
               states)
      | "diurnal" ->
          Scenario_gen.diurnal ~nedges:ne
            ~levels:(Gravity.diurnal_levels ()) ()
      | "maintenance" -> default_maintenance graph
      | t -> invalid_arg ("Builder: unknown scenario regime " ^ t)
    in
    let gen = Scenario_gen.compose (List.map gen_of tokens) in
    let set =
      Scenario_gen.enumerate ~cutoff:options.scenario_cutoff
        ~max_scenarios:options.max_scenarios ~npairs gen
    in
    ( set.Scenario_gen.scenarios,
      set.Scenario_gen.pair_factors,
      Some set.Scenario_gen.regimes )
  end

(* Instance.make wants demand factors per (sid, fid) with
   fid = class * npairs + pair; scenario generators perturb demand per
   pair, uniformly across classes. *)
let expand_pair_factors ~nclasses ~npairs pair_factors =
  match pair_factors with
  | None -> None
  | Some pf ->
      Some
        (Array.map
           (fun row ->
             Array.init (nclasses * npairs) (fun fid -> row.(fid mod npairs)))
           pf)

(* Scale a gravity matrix so the no-failure min-MLU lands at a
   deterministic point of the paper's [0.5, 0.7] window. *)
let scaled_gravity ~options ~seed graph pairs tunnels =
  let demands = Gravity.matrix ~seed ~graph ~pairs in
  let target = Prng.uniform seed options.mlu_lo options.mlu_hi in
  let mlu d = Mlu.min_mlu ~graph ~tunnels ~demands:d in
  Gravity.scale_to_mlu ~mlu ~target demands

(* §6: "our design target is set to as high a probability target as
   possible, while ensuring all flows remain connected for the sampled
   scenarios" — i.e. the minimum over flows of their connected
   probability mass (any higher target trivially forces PercLoss 1).
   The flow crossing the least reliable cut is the binding one; every
   other flow keeps a positive probability budget of scenarios it may
   sacrifice, which is exactly the heterogeneity Flexile exploits. *)
let finalize_betas inst =
  let classes = Array.copy inst.Instance.classes in
  Array.iteri
    (fun k (c : Instance.cls) ->
      if Float.is_nan c.Instance.beta then begin
        let mass =
          Array.fold_left
            (fun acc (f : Instance.flow) ->
              if f.Instance.cls = k && f.Instance.demand > 0. then
                Float.min acc (Instance.connected_mass inst f)
              else acc)
            1. inst.Instance.flows
        in
        classes.(k) <- { c with Instance.beta = Float.max 0. (mass -. 1e-9) }
      end)
    classes;
  Instance.with_classes inst classes

let single_class ?(options = default_options) ~graph () =
  let seed = Prng.of_string ("flexile-instance-" ^ graph.Graph.name) in
  let pairs = sample_pairs ~seed:(Prng.split seed "pairs") ~max_pairs:options.max_pairs graph in
  let tunnels_single =
    Array.map
      (fun (u, v) ->
        Array.of_list
          (Tunnels.select_single_class graph ~pair:(u, v)
             ~count:options.tunnels_per_pair))
      pairs
  in
  let demands =
    scaled_gravity ~options ~seed:(Prng.split seed "traffic") graph pairs
      tunnels_single
  in
  let scenarios, pair_factors, regimes =
    scenario_set ~options
      ~seed:(Prng.split seed "failures")
      ~graph ~npairs:(Array.length pairs)
  in
  let demand_factors =
    expand_pair_factors ~nclasses:1 ~npairs:(Array.length pairs) pair_factors
  in
  let inst =
    Instance.make ~graph
      ~classes:[| { Instance.cname = "all"; beta = Float.nan; weight = 1. } |]
      ~pairs ~tunnels:[| tunnels_single |] ~demands:[| demands |]
      ?demand_factors ?regimes ~scenarios ()
  in
  finalize_betas inst

let two_class ?(options = default_options) ~graph () =
  let seed = Prng.of_string ("flexile-instance2-" ^ graph.Graph.name) in
  let pairs = sample_pairs ~seed:(Prng.split seed "pairs") ~max_pairs:options.max_pairs graph in
  let tunnels_high =
    Array.map
      (fun (u, v) ->
        Array.of_list
          (Tunnels.select_high_priority graph ~pair:(u, v)
             ~count:options.tunnels_per_pair))
      pairs
  in
  let tunnels_low =
    Array.mapi
      (fun i (u, v) ->
        Array.of_list
          (Tunnels.select_low_priority graph ~pair:(u, v)
             ~high:(Array.to_list tunnels_high.(i))
             ~extra:options.low_extra_tunnels))
      pairs
  in
  let base =
    scaled_gravity ~options ~seed:(Prng.split seed "traffic") graph pairs
      tunnels_high
  in
  let high, low =
    Gravity.split_two_class ~seed:(Prng.split seed "split")
      ~low_scale:options.low_scale base
  in
  let scenarios, pair_factors, regimes =
    scenario_set ~options
      ~seed:(Prng.split seed "failures")
      ~graph ~npairs:(Array.length pairs)
  in
  let demand_factors =
    expand_pair_factors ~nclasses:2 ~npairs:(Array.length pairs) pair_factors
  in
  let inst =
    Instance.make ~graph
      ~classes:
        [|
          { Instance.cname = "high"; beta = Float.nan; weight = options.high_weight };
          { Instance.cname = "low"; beta = options.low_beta; weight = 1. };
        |]
      ~pairs
      ~tunnels:[| tunnels_high; tunnels_low |]
      ~demands:[| high; low |] ?demand_factors ?regimes ~scenarios ()
  in
  finalize_betas inst

let of_name ?options ?(two_classes = false) name =
  let graph = Flexile_net.Catalog.by_name name in
  if two_classes then two_class ?options ~graph ()
  else single_class ?options ~graph ()

(* ---------- toy instances from the paper ---------- *)

let path_tunnel graph ~pair edges = Tunnels.make graph ~pair (Array.of_list edges)

let fig1 () =
  let graph = Flexile_net.Catalog.triangle () in
  (* edge ids: 0 = A-B, 1 = A-C, 2 = B-C *)
  let pairs = [| (0, 1); (0, 2) |] in
  let tunnels =
    [|
      [|
        (* A-B: direct and via C *)
        [| path_tunnel graph ~pair:(0, 1) [ 0 ]; path_tunnel graph ~pair:(0, 1) [ 1; 2 ] |];
        (* A-C: direct and via B *)
        [| path_tunnel graph ~pair:(0, 2) [ 1 ]; path_tunnel graph ~pair:(0, 2) [ 0; 2 ] |];
      |];
    |]
  in
  let fm = Failure_model.of_probs ~nedges:3 [| 0.01; 0.01; 0.01 |] in
  let scenarios = Failure_model.enumerate ~cutoff:1e-7 ~max_scenarios:8 fm in
  Instance.make ~graph
    ~classes:[| { Instance.cname = "all"; beta = 0.99; weight = 1. } |]
    ~pairs ~tunnels ~demands:[| [| 1.; 1. |] |] ~scenarios ()

let fig17 () =
  let graph = Flexile_net.Catalog.triangle () in
  let pairs = [| (0, 1); (0, 2) |] in
  let tunnels =
    [|
      [|
        (* A-B restricted to the direct link (directed topology) *)
        [| path_tunnel graph ~pair:(0, 1) [ 0 ] |];
        (* A-C: direct and via B *)
        [| path_tunnel graph ~pair:(0, 2) [ 1 ]; path_tunnel graph ~pair:(0, 2) [ 0; 2 ] |];
      |];
    |]
  in
  let fm = Failure_model.of_probs ~nedges:3 [| 0.01; 0.01; 0.01 |] in
  let scenarios = Failure_model.enumerate ~cutoff:1e-7 ~max_scenarios:8 fm in
  Instance.make ~graph
    ~classes:[| { Instance.cname = "all"; beta = 0.99; weight = 1. } |]
    ~pairs ~tunnels ~demands:[| [| 1.; 1. |] |] ~scenarios ()
