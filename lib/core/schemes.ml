open Flexile_te

type t =
  | Flexile
  | Smore
  | Scenbest_multi
  | Teavar
  | Cvar_flow_st
  | Cvar_flow_ad
  | Swan_maxmin
  | Swan_throughput
  | Ffc
  | Ip

let name = function
  | Flexile -> "Flexile"
  | Smore -> "SMORE"
  | Scenbest_multi -> "ScenBest-Multi"
  | Teavar -> "Teavar"
  | Cvar_flow_st -> "Cvar-Flow-St"
  | Cvar_flow_ad -> "Cvar-Flow-Ad"
  | Swan_maxmin -> "SWAN-Maxmin"
  | Swan_throughput -> "SWAN-Throughput"
  | Ffc -> "FFC"
  | Ip -> "IP"

let all =
  [
    Flexile;
    Smore;
    Scenbest_multi;
    Teavar;
    Cvar_flow_st;
    Cvar_flow_ad;
    Swan_maxmin;
    Swan_throughput;
    Ffc;
    Ip;
  ]

let of_string s =
  let l = String.lowercase_ascii s in
  List.find_opt (fun t -> String.lowercase_ascii (name t) = l) all

exception Timeout of t

(* Rough size guards mirroring the paper's TLE rows: the dense-inverse
   simplex degrades sharply past a few thousand rows. *)
let cvar_ad_rows inst =
  Flexile_net.Graph.nedges inst.Instance.graph * Instance.nscenarios inst

let ip_binaries inst = Instance.nflows inst * Instance.nscenarios inst

module Trace = Flexile_util.Trace

(* GC accounting per scheme run (quick_stat deltas for the calling
   domain): allocation regressions surface in the registry dump next
   to wall times.  The per-run deltas also ride on each "scheme.<Name>"
   span record, so the Chrome trace shows words allocated per run. *)
let c_gc_minor = Trace.counter "gc.minor_words"
let c_gc_major = Trace.counter "gc.major_words"
let c_gc_promoted = Trace.counter "gc.promoted_words"
let c_gc_major_collections = Trace.counter "gc.major_collections"
let c_gc_minor_collections = Trace.counter "gc.minor_collections"
let c_gc_compactions = Trace.counter "gc.compactions"

let with_gc_accounting f =
  if not (Trace.enabled ()) then f ()
  else begin
    (* Gc.minor_words, not quick_stat's minor_words: the latter only
       advances at minor-collection boundaries and reads zero for runs
       that fit in the nursery. *)
    let m0 = Gc.minor_words () in
    let g0 = Gc.quick_stat () in
    let finish () =
      let m1 = Gc.minor_words () in
      let g1 = Gc.quick_stat () in
      Trace.add c_gc_minor (int_of_float (m1 -. m0));
      Trace.add c_gc_major
        (int_of_float (g1.Gc.major_words -. g0.Gc.major_words));
      Trace.add c_gc_promoted
        (int_of_float (g1.Gc.promoted_words -. g0.Gc.promoted_words));
      Trace.add c_gc_major_collections
        (g1.Gc.major_collections - g0.Gc.major_collections);
      Trace.add c_gc_minor_collections
        (g1.Gc.minor_collections - g0.Gc.minor_collections);
      Trace.add c_gc_compactions (g1.Gc.compactions - g0.Gc.compactions)
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

(* one wall-clock span per scheme, e.g. "scheme.Flexile" (spans double
   as timers, so per-scheme totals still appear in the registry dump);
   registration is idempotent so looking the handle up per run is fine
   (run is called a handful of times per figure, never in an inner
   loop) *)
let run ?flexile_config ?(size_guard = true) ?(jobs = 0) scheme inst =
  with_gc_accounting @@ fun () ->
  Trace.in_span
    (Trace.span ("scheme." ^ name scheme))
    (fun () ->
      match scheme with
      | Flexile ->
          (Flexile_scheme.run ?config:flexile_config ~jobs inst)
            .Flexile_scheme.losses
      | Smore -> Scenbest.run ~jobs inst
      | Scenbest_multi -> Scenbest.run_multi ~jobs inst
      | Teavar ->
          if size_guard && cvar_ad_rows inst > 400_000 then
            raise (Timeout scheme);
          (Teavar.run ~jobs inst).Teavar.losses
      | Cvar_flow_st ->
          if
            size_guard
            && Instance.nflows inst * Instance.nscenarios inst > 60_000
          then raise (Timeout scheme);
          (Cvar_flow.run_static ~jobs inst).Cvar_flow.losses
      | Cvar_flow_ad ->
          if size_guard && cvar_ad_rows inst > 2_500 then
            raise (Timeout scheme);
          (Cvar_flow.run_adaptive ~jobs inst).Cvar_flow.losses
      | Swan_maxmin -> Swan.run_maxmin ~jobs inst
      | Swan_throughput -> Swan.run_throughput ~jobs inst
      | Ffc -> (Ffc.run ~jobs inst).Ffc.losses
      | Ip ->
          if size_guard && ip_binaries inst > 4_000 then raise (Timeout scheme);
          (Ip_direct.solve ~jobs inst).Ip_direct.losses)
