(** Uniform interface over every TE scheme the paper evaluates.  Each
    scheme maps an instance to a post-analysis loss matrix; the same
    metrics are then computed over all of them (§6 "performance
    metric"). *)

type t =
  | Flexile
  | Smore  (** ScenBest(MLU): identical to SMORE's failure recovery *)
  | Scenbest_multi
  | Teavar
  | Cvar_flow_st
  | Cvar_flow_ad
  | Swan_maxmin
  | Swan_throughput
  | Ffc  (** Forward Fault Correction (§2 background), k = 1 *)
  | Ip

val name : t -> string
val of_string : string -> t option
val all : t list

exception Timeout of t
(** Raised when a scheme exceeds its size guard (the paper reports the
    same schemes as TLE on large instances). *)

val run :
  ?flexile_config:Flexile_te.Flexile_offline.config ->
  ?size_guard:bool ->
  ?jobs:int ->
  t ->
  Flexile_te.Instance.t ->
  Flexile_te.Instance.losses
(** [size_guard] (default true) raises {!Timeout} instead of launching
    a CVaR/IP solve whose LP would be intractably large for the
    pure-OCaml simplex.  [jobs] (default 0 = auto) sets the scenario
    fan-out of every scheme's sweep (see
    {!Flexile_te.Scenario_engine}). *)
