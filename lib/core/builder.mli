(** Experiment-instance builders reproducing the paper's §6
    methodology: catalog topology (or a supplied graph), gravity
    traffic scaled into the target MLU window, Weibull failure
    probabilities, best-first scenario sampling, tunnel selection per
    class, and the design-target betas.

    Everything is seeded from the topology name, so instances are
    reproducible bit-for-bit. *)

type options = {
  max_pairs : int;
      (** deterministic pair sampling cap for the largest topologies
          (keeps LPs laptop-scale; see DESIGN.md). Default 240. *)
  max_scenarios : int;  (** scenario enumeration cap. Default 150 *)
  scenario_cutoff : float;  (** probability cutoff. Default 1e-6 *)
  scenario_mix : string;
      (** comma-separated scenario regimes to compose:
          ["independent"], ["srlg"], ["partial"], ["drift"],
          ["diurnal"], ["maintenance"].  The default ["independent"]
          takes the legacy {!Flexile_failure.Failure_model} path
          bit-identically; anything else composes
          {!Flexile_failure.Scenario_gen} generators (each on its own
          name-split seed) and may attach per-scenario demand
          factors. *)
  mlu_lo : float;  (** target MLU window, default [0.5, 0.7] *)
  mlu_hi : float;
  tunnels_per_pair : int;  (** default 3 *)
  low_extra_tunnels : int;  (** extra tunnels for the low class, default 3 *)
  low_scale : float;  (** low-priority demand scaling, default 2.0 *)
  low_beta : float;  (** low-priority design target, default 0.99 *)
  high_weight : float;  (** class weight of high-priority traffic, default 100. *)
  median_failure_prob : float;  (** Weibull median, default 0.001 *)
  jobs : int;
      (** worker domains for scheme sweeps run on the built instance
          (0 = auto, see {!Flexile_te.Scenario_engine}). Default 0 *)
}

val default_options : options

val known_regimes : string list
(** Scenario regimes accepted by [scenario_mix], for CLI help and
    validation. *)

val parse_mix : string -> string list
(** Parse and validate a comma-separated mix spec (case-insensitive,
    duplicates dropped).  Raises [Invalid_argument] on unknown
    regimes or an empty spec. *)

val scenario_set :
  options:options ->
  seed:Flexile_util.Prng.t ->
  graph:Flexile_net.Graph.t ->
  npairs:int ->
  Flexile_failure.Failure_model.scenario array
  * float array array option
  * string array option
(** Enumerated scenario set for the configured mix, plus optional
    per-(scenario, pair) demand factors (present only when the mix
    includes a demand regime) and optional per-scenario regime tags.
    With [scenario_mix = "independent"] this is exactly the legacy
    enumeration — same PRNG draws, same scenarios, no factors, no tags
    (consumers read tags through {!Flexile_te.Instance.regime}, which
    derives the legacy defaults). *)

val single_class :
  ?options:options -> graph:Flexile_net.Graph.t -> unit -> Flexile_te.Instance.t
(** One traffic class; beta is the paper's "as high as possible while
    all flows remain connected" target ({!Flexile_te.Instance.max_beta_single}). *)

val two_class :
  ?options:options -> graph:Flexile_net.Graph.t -> unit -> Flexile_te.Instance.t
(** Class 0 = high priority (latency-sensitive, SPOF-avoiding tunnels,
    beta as high as possible), class 1 = low priority (extra tunnels,
    beta = [low_beta], demand scaled by [low_scale]). *)

val of_name : ?options:options -> ?two_classes:bool -> string -> Flexile_te.Instance.t
(** Build from a Table-2 topology name. *)

val fig1 : unit -> Flexile_te.Instance.t
(** The motivating example: triangle topology, two unit-demand flows
    A-B and A-C, every link failing with probability 0.01, target 0.99.
    Uses single-link tunnels plus the two-hop alternates, exactly the
    routing choices discussed in §3. *)

val fig17 : unit -> Flexile_te.Instance.t
(** The appendix's directed-triangle unfairness example: flow A-B may
    only use the direct link, flow A-C may use both paths. *)
