(* Benchmark regression gate: a schema-versioned baseline file of
   per-phase median wall times, and the comparison logic `bench
   --check` uses to fail the build when a tracked phase regresses.
   Lives in the library (not bench/main.ml) so the pass/fail logic is
   unit-testable on synthetic baselines. *)

let schema = "flexile-bench-baseline"

(* v2: `bench --json` documents gained a "histograms" extra section
   (per-name quantile summaries) alongside "trace".
   v3: a "doctor" phase (fixture diagnosis replay) joins the tracked
   phases and baselines carry a "solver_health" extra section (the
   Trace_export.solver_health_json projection).  In both revisions the
   phase schema the gate reads is unchanged, and [of_json] accepts any
   version <= [version], so committed v1/v2 baselines (BENCH_PR3.json,
   BENCH_PR8.json) stay readable; only files from a *newer* writer are
   rejected. *)
let version = 3

type phase = { pname : string; median_seconds : float }

type baseline = {
  profile : string;
  jobs : int;
  repetitions : int;
  phases : phase list;
}

let median samples =
  match List.sort compare samples with
  | [] -> 0.
  | sorted ->
      let n = List.length sorted in
      let nth k = List.nth sorted k in
      if n mod 2 = 1 then nth (n / 2)
      else (nth ((n / 2) - 1) +. nth (n / 2)) /. 2.

(* ---- serialization ---- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ?(extra = []) b =
  let buf = Buffer.create 512 in
  Printf.bprintf buf
    "{\n  \"schema\": \"%s\",\n  \"version\": %d,\n  \"profile\": \"%s\",\n  \"jobs\": %d,\n  \"repetitions\": %d,\n  \"phases\": [\n"
    schema version (json_escape b.profile) b.jobs b.repetitions;
  List.iteri
    (fun i p ->
      Printf.bprintf buf "    {\"name\": \"%s\", \"median_seconds\": %.6f}%s\n"
        (json_escape p.pname) p.median_seconds
        (if i < List.length b.phases - 1 then "," else ""))
    b.phases;
  Buffer.add_string buf "  ]";
  List.iter (fun (k, v) -> Printf.bprintf buf ",\n  \"%s\": %s" k v) extra;
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

let of_json j =
  let str k = Option.bind (Json.member k j) Json.to_string in
  let int k = Option.bind (Json.member k j) Json.to_int in
  match (str "schema", int "version") with
  | Some s, _ when s <> schema -> Error (Printf.sprintf "unknown schema %S" s)
  | _, Some v when v > version ->
      Error (Printf.sprintf "baseline version %d is newer than supported %d" v version)
  | None, _ | _, None -> Error "missing schema/version fields"
  | Some _, Some _ -> (
      match Option.bind (Json.member "phases" j) Json.to_list with
      | None -> Error "missing phases array"
      | Some items -> (
          let parse_phase it =
            match
              ( Option.bind (Json.member "name" it) Json.to_string,
                Option.bind (Json.member "median_seconds" it) Json.to_float )
            with
            | Some n, Some m -> Some { pname = n; median_seconds = m }
            | _ -> None
          in
          let phases = List.filter_map parse_phase items in
          if List.length phases <> List.length items then
            Error "malformed phase entry"
          else
            Ok
              {
                profile = Option.value ~default:"?" (str "profile");
                jobs = Option.value ~default:0 (int "jobs");
                repetitions = Option.value ~default:1 (int "repetitions");
                phases;
              }))

let load path =
  match Json.parse_file path with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok j -> of_json j

let save path b =
  let oc = open_out path in
  output_string oc (to_json b);
  close_out oc

(* ---- the gate ---- *)

type verdict = {
  vphase : string;
  base_seconds : float;
  current_seconds : float;  (* nan when missing *)
  ratio : float;
  regressed : bool;
}

(* A phase regresses when it exceeds the baseline by more than
   [tolerance_pct] percent AND by more than [min_seconds] absolute —
   the floor keeps sub-hundredth-of-a-second phases from tripping the
   gate on scheduler jitter.  A tracked phase missing from the current
   run is a regression (the measurement disappeared). *)
let check ~baseline ~current ~tolerance_pct ?(min_seconds = 0.02) () =
  List.map
    (fun p ->
      match List.assoc_opt p.pname current with
      | None ->
          {
            vphase = p.pname;
            base_seconds = p.median_seconds;
            current_seconds = Float.nan;
            ratio = Float.nan;
            regressed = true;
          }
      | Some cur ->
          let allowed =
            p.median_seconds *. (1. +. (tolerance_pct /. 100.))
          in
          let regressed =
            cur > allowed && cur -. p.median_seconds > min_seconds
          in
          {
            vphase = p.pname;
            base_seconds = p.median_seconds;
            current_seconds = cur;
            ratio =
              (if p.median_seconds > 0. then cur /. p.median_seconds
               else if cur <= min_seconds then 1.
               else Float.infinity);
            regressed;
          })
    baseline.phases

let passed verdicts = not (List.exists (fun v -> v.regressed) verdicts)

let print_verdicts ~tolerance_pct verdicts =
  Printf.printf "%-28s %12s %12s %8s  %s\n" "phase" "baseline(s)" "current(s)"
    "ratio" "verdict";
  List.iter
    (fun v ->
      if Float.is_nan v.current_seconds then
        Printf.printf "%-28s %12.4f %12s %8s  MISSING\n" v.vphase
          v.base_seconds "-" "-"
      else
        Printf.printf "%-28s %12.4f %12.4f %8.2f  %s\n" v.vphase
          v.base_seconds v.current_seconds v.ratio
          (if v.regressed then "REGRESSED" else "ok"))
    verdicts;
  Printf.printf "gate: %s (tolerance %.0f%%)\n"
    (if passed verdicts then "PASS" else "FAIL")
    tolerance_pct
