(** Serializers over {!Trace}'s quiescent-point reads. *)

val report_json : ?derived:(string * float) list -> unit -> string
(** The structured report written by [flexile --trace] and embedded by
    [bench --json]:
    [{"derived":{..}, "report":<full registry>, "solver_health":{..},
      "span_tree":[..], "drops":{..}}].
    [report] is {!Trace.to_json} — {e every} registered counter, gauge,
    timer, histogram and span total, across all instrumented modules;
    [derived] carries caller-computed summary ratios; [span_tree] is
    the nested span forest ([{"name","arg","dom","t0_ns","dur_ns",
    "minor_words","major_words","children":[..]}]); [drops] surfaces
    ring/record saturation ([events_logged], [events_dropped],
    [span_records_logged], [span_records_dropped], [spans_open]) so a
    truncated span tree or event stream is visible rather than
    silent. *)

val span_tree_json : unit -> string
(** Just the [span_tree] array. *)

val solver_health_schema : string
val solver_health_version : int

val solver_health_json : unit -> string
(** The numerical-health section: a schema'd
    ([{"schema":"flexile-solver-health","version":1,...}]) projection
    of every [health.*] counter and histogram (samples, threshold
    trips, stalls, residual/condition/growth distributions — see
    [Flexile_lp.Health]) plus the [simplex.*] counters that give them
    context.  Embedded in {!report_json} and written standalone by
    [bench --gate] and CI so dashboards read solver health without
    parsing the full registry. *)

val chrome_json : unit -> string
(** Chrome trace-event JSON (object format), loadable in Perfetto /
    chrome://tracing: one track per domain, complete [X] events for
    spans (args carry the span tag, depth and GC allocation deltas),
    instant [i] events for probes, and one final [C] sample per
    counter/gauge.  Timestamps are microseconds relative to the
    earliest recorded instant. *)

val write_file : string -> string -> unit
(** [write_file path contents] writes [contents] plus a trailing
    newline. *)
