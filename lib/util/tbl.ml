(* Sorting the key set first makes the traversal independent of bucket
   layout; the raw fold below only collects keys, so its order cannot
   escape. *)
let sorted_keys tbl =
  (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] [@lint.allow "d3-tbl-order"])
  |> List.sort_uniq compare

let sorted_bindings tbl =
  List.map (fun k -> (k, Hashtbl.find tbl k)) (sorted_keys tbl)

let sorted_iter f tbl = List.iter (fun (k, v) -> f k v) (sorted_bindings tbl)

let sorted_fold f tbl init =
  List.fold_left (fun acc (k, v) -> f k v acc) init (sorted_bindings tbl)
