let max_jobs = 64

(* per-map sweep accounting: each worker times its own shard (recorded
   into its domain's trace state), the caller derives the imbalance *)
let c_maps = Trace.counter "parallel.maps"
let t_busy = Trace.timer "parallel.worker_busy"
let g_imbalance = Trace.gauge "parallel.imbalance_permille"
let sp_shard = Trace.span "parallel.shard"

(* per-worker shard wall-time distribution: the spread (p50 vs p99)
   is the straggler signal the imbalance gauge only summarizes *)
let h_shard = Trace.hist "parallel.shard_seconds"

let env_jobs () =
  match Sys.getenv_opt "FLEXILE_JOBS" with
  | None -> None
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some j when j >= 1 -> Some (min j max_jobs)
      | _ -> None)

let default_jobs () =
  match env_jobs () with
  | Some j -> j
  | None -> max 1 (min max_jobs (Domain.recommended_domain_count ()))

let resolve_jobs = function
  | None | Some 0 -> default_jobs ()
  | Some j -> max 1 (min max_jobs j)

(* A pool broadcasts one task closure per [map] call; worker [w] runs
   [task w].  The mutex protocol around [pending] establishes the
   happens-before edges that make the per-slot result writes of the
   workers visible to the caller. *)
type pool = {
  njobs : int;
  mutable workers : unit Domain.t list;  (* njobs - 1 domains *)
  m : Mutex.t;
  work_ready : Condition.t;
  work_finished : Condition.t;
  mutable task : (int -> unit) option;
  mutable generation : int;
  mutable next_slot : int;  (* next worker slot to hand out (1-based) *)
  mutable completed : int;  (* workers done with the current task *)
  mutable stop : bool;
}

let jobs p = p.njobs

let worker_loop pool =
  let gen = ref 0 and live = ref true in
  while !live do
    Mutex.lock pool.m;
    while (not pool.stop) && pool.generation = !gen do
      Condition.wait pool.work_ready pool.m
    done;
    if pool.stop then begin
      Mutex.unlock pool.m;
      live := false
    end
    else begin
      gen := pool.generation;
      let task = Option.get pool.task in
      (* each worker picks up a generation exactly once, so the slots
         handed out are exactly 1 .. njobs-1 *)
      let slot = pool.next_slot in
      pool.next_slot <- slot + 1;
      Mutex.unlock pool.m;
      (* [map] wraps tasks so they never raise *)
      task slot;
      Mutex.lock pool.m;
      pool.completed <- pool.completed + 1;
      if pool.completed >= pool.njobs - 1 then
        Condition.broadcast pool.work_finished;
      Mutex.unlock pool.m
    end
  done

let create ~jobs:j =
  let njobs = max 1 (min max_jobs j) in
  let pool =
    {
      njobs;
      workers = [];
      m = Mutex.create ();
      work_ready = Condition.create ();
      work_finished = Condition.create ();
      task = None;
      generation = 0;
      next_slot = 1;
      completed = 0;
      stop = false;
    }
  in
  pool.workers <-
    List.init (njobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let shutdown pool =
  let workers =
    Mutex.lock pool.m;
    let w = pool.workers in
    pool.workers <- [];
    pool.stop <- true;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.m;
    w
  in
  List.iter Domain.join workers

(* [task] must not raise.  Worker [w >= 1] runs [task w]; the caller
   runs [task 0] and then blocks until every worker has finished. *)
let run_tasks pool task =
  if pool.njobs = 1 then task 0
  else begin
    Mutex.lock pool.m;
    if pool.stop then begin
      Mutex.unlock pool.m;
      invalid_arg "Parallel: pool already shut down"
    end;
    pool.task <- Some task;
    pool.generation <- pool.generation + 1;
    pool.next_slot <- 1;
    pool.completed <- 0;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.m;
    task 0;
    Mutex.lock pool.m;
    while pool.completed < pool.njobs - 1 do
      Condition.wait pool.work_finished pool.m
    done;
    pool.task <- None;
    Mutex.unlock pool.m
  end

(* Process-global pool for the [?pool]-less entry points, recreated
   when a different job count is requested. *)
let global_m = Mutex.create ()
let global : pool option ref = ref None
let cleanup_registered = ref false

let global_pool j =
  Mutex.lock global_m;
  let reuse =
    match !global with
    | Some p when p.njobs = j -> Some p
    | Some p ->
        shutdown p;
        global := None;
        None
    | None -> None
  in
  let p =
    match reuse with
    | Some p -> p
    | None ->
        let p = create ~jobs:j in
        global := Some p;
        if not !cleanup_registered then begin
          cleanup_registered := true;
          at_exit (fun () ->
              Mutex.lock global_m;
              let g = !global in
              global := None;
              Mutex.unlock global_m;
              Option.iter shutdown g)
        end;
        p
  in
  Mutex.unlock global_m;
  p

let sequential_map ~n ~init ~f =
  if n = 0 then [||]
  else begin
    let st = init 0 in
    let out = Array.make n None in
    for i = 0 to n - 1 do
      out.(i) <- Some (f st i)
    done;
    Array.map Option.get out
  end

let parallel_map pool ~n ~init ~f =
  let j = pool.njobs in
  let out = Array.make n None in
  let err = Atomic.make None in
  let record e = ignore (Atomic.compare_and_set err None (Some e)) in
  let task w =
    if w < n then begin
      match init w with
      | exception e -> record e
      | st ->
          let i = ref w in
          while !i < n && Option.is_none (Atomic.get err) do
            (match f st !i with
            | v -> out.(!i) <- Some v
            | exception e -> record e);
            i := !i + j
          done
    end
  in
  let tracing = Trace.enabled () in
  let busy = if tracing then Array.make j 0L else [||] in
  let task =
    if not tracing then task
    else fun w ->
      (* worker slot [w] runs in exactly one domain per map, so the
         slot write is unshared and the trace span lands in the
         worker's own domain state.  The shard span also roots the
         hierarchical spans the task opens on this domain. *)
      let t0 = Trace.now_ns () in
      Trace.in_span ~arg:w sp_shard (fun () -> task w);
      let dt = Int64.sub (Trace.now_ns ()) t0 in
      busy.(w) <- dt;
      Trace.add_ns t_busy dt;
      Trace.observe h_shard (Int64.to_float dt *. 1e-9)
  in
  run_tasks pool task;
  if tracing then begin
    Trace.incr c_maps;
    let total = Array.fold_left Int64.add 0L busy in
    let slowest = Array.fold_left max 0L busy in
    if Int64.compare total 0L > 0 then
      (* max worker busy time over the mean, in permille: 1000 = a
         perfectly balanced sweep *)
      Trace.gauge_max g_imbalance
        (Int64.to_int
           (Int64.div
              (Int64.mul slowest (Int64.of_int (j * 1000)))
              total))
  end;
  (match Atomic.get err with Some e -> raise e | None -> ());
  Array.map (function Some v -> v | None -> assert false) out

let map ?pool ?jobs ~n ~init ~f () =
  let j = match pool with Some p -> p.njobs | None -> resolve_jobs jobs in
  if j <= 1 || n <= 1 then sequential_map ~n ~init ~f
  else
    let pool = match pool with Some p -> p | None -> global_pool j in
    parallel_map pool ~n ~init ~f

let map_reduce ?pool ?jobs ~n ~init ~f ~fold acc0 =
  Array.fold_left fold acc0 (map ?pool ?jobs ~n ~init ~f ())
