let default_eps = 1e-9

let eq ?(eps = default_eps) a b = Float.abs (a -. b) <= eps
let neq ?eps a b = not (eq ?eps a b)
let zero ?(eps = default_eps) x = Float.abs x <= eps

(* The one sanctioned home for exact IEEE equality: callers name the
   intent instead of writing a bare [=] that rule d2-float-eq would
   (rightly) refuse to distinguish from an accident. *)
let exactly_zero x = (x = 0.) [@lint.allow "d2-float-eq"]
let nonzero x = not (exactly_zero x)
let exactly_equal (a : float) b = (a = b) [@lint.allow "d2-float-eq"]
