(** Fixed domain pool with a deterministic, ordered parallel [map] over
    the integer indices [0 .. n-1].

    Work is sharded {e statically and cyclically}: with [j] effective
    jobs, index [i] is always processed by worker [i mod j], and each
    worker visits its indices in ascending order.  Two consequences the
    rest of the repository relies on:

    - the result array is in index order and independent of scheduling,
      so a pure [f] gives bit-identical results for every job count;
    - a {e stateful} worker (e.g. a warm-started simplex instance) sees
      a deterministic subsequence of the indices, so runs are
      reproducible for a fixed job count.

    The sequential fallback (effective jobs = 1, or [n <= 1]) runs
    entirely in the calling domain and spawns nothing. *)

val default_jobs : unit -> int
(** Effective job count used when none is requested: the [FLEXILE_JOBS]
    environment variable if it parses to a positive integer, otherwise
    [Domain.recommended_domain_count ()].  Clamped to [1, 64]. *)

val resolve_jobs : int option -> int
(** [None] and [Some 0] mean "auto" ({!default_jobs}); [Some j] with
    [j >= 1] is clamped to at most 64. *)

type pool
(** A fixed set of worker domains, reusable across many [map] calls.
    Pools are not reentrant: issue one [map] at a time per pool, and do
    not call [map] from inside a worker function. *)

val create : jobs:int -> pool
(** Spawn a pool with [jobs] effective workers ([jobs - 1] domains plus
    the calling domain, which participates in every [map]). *)

val jobs : pool -> int

val shutdown : pool -> unit
(** Join the worker domains.  Idempotent.  The global pool used by the
    [?pool]-less calls is shut down automatically [at_exit]. *)

val map :
  ?pool:pool ->
  ?jobs:int ->
  n:int ->
  init:(int -> 'state) ->
  f:('state -> int -> 'a) ->
  unit ->
  'a array
(** [map ~n ~init ~f ()] is [[| f s0 0; f s1 1; ... |]] where worker
    [w] evaluates [f] on indices [i] with [i mod jobs = w] using its own
    state [init w] (created once per call, only for workers that have
    work).  Without [?pool], a process-global pool of the resolved job
    count is (re)used.  If any [init] or [f] application raises, the
    first exception (in scheduling order) is re-raised in the caller
    after all workers have drained. *)

val map_reduce :
  ?pool:pool ->
  ?jobs:int ->
  n:int ->
  init:(int -> 'state) ->
  f:('state -> int -> 'a) ->
  fold:('acc -> 'a -> 'acc) ->
  'acc ->
  'acc
(** [map] followed by a sequential left fold in index order — the
    reduction order is deterministic whatever the job count. *)
