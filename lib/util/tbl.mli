(** Deterministic, sorted-key traversal of [Hashtbl.t].

    Raw [Hashtbl.iter] / [Hashtbl.fold] visit bindings in bucket order,
    which depends on the insertion sequence and the table's growth
    history; letting that order escape into LP rows or solver output
    breaks the bit-identical-at-any-[--jobs] guarantee.  [flexile-lint]
    rule [d3-tbl-order] bans them in [lib/]; these helpers are the
    sanctioned replacement.  All traversals visit keys in ascending
    polymorphic-compare order and see each key's current binding
    (replace semantics — shadowed [Hashtbl.add] duplicates are not
    visited twice). *)

val sorted_keys : ('a, 'b) Hashtbl.t -> 'a list
(** Distinct keys in ascending order. *)

val sorted_bindings : ('a, 'b) Hashtbl.t -> ('a * 'b) list
(** [(key, current binding)] pairs in ascending key order. *)

val sorted_iter : ('a -> 'b -> unit) -> ('a, 'b) Hashtbl.t -> unit
(** [Hashtbl.iter], but in ascending key order. *)

val sorted_fold : ('a -> 'b -> 'acc -> 'acc) -> ('a, 'b) Hashtbl.t -> 'acc -> 'acc
(** [Hashtbl.fold], but in ascending key order. *)
