(* Minimal JSON: just enough to parse back the documents this
   repository itself emits (trace reports, Chrome traces, bench
   baselines) without adding a dependency.  Numbers are floats, objects
   keep their textual field order. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

exception Parse_error of string

type state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> advance st
    | _ -> continue_ := false
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string_raw st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
                if st.pos + 4 > String.length st.src then
                  fail st "truncated \\u escape";
                let hex = String.sub st.src st.pos 4 in
                let code =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some c -> c
                  | None -> fail st "bad \\u escape"
                in
                st.pos <- st.pos + 4;
                (* UTF-8 encode the BMP code point; surrogate pairs are
                   passed through as two encoded halves, which is enough
                   for the ASCII-heavy documents we emit *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char b
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
            | _ -> fail st "unknown escape");
            loop ())
    | Some c ->
        advance st;
        Buffer.add_char b c;
        loop ()
  in
  loop ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> Number f
  | None -> fail st (Printf.sprintf "bad number %S" s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Object []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws st;
          let key = parse_string_raw st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          fields := (key, v) :: !fields;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ()
          | Some '}' -> advance st
          | _ -> fail st "expected ',' or '}'"
        in
        members ();
        Object (List.rev !fields)
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Array []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value st in
          items := v :: !items;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elements ()
          | Some ']' -> advance st
          | _ -> fail st "expected ',' or ']'"
        in
        elements ();
        Array (List.rev !items)
      end
  | Some '"' -> String (parse_string_raw st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let parse s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse s

let member key = function
  | Object fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Number f -> Some f | _ -> None
let to_int = function Number f -> Some (int_of_float f) | _ -> None
let to_string = function String s -> Some s | _ -> None
let to_list = function Array l -> Some l | _ -> None
let to_obj = function Object f -> Some f | _ -> None
