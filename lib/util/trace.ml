(* Per-domain trace state reached through domain-local storage: the hot
   path (incr/add/event/with_span) touches only the calling domain's
   arrays, so there is no cross-domain contention and no locking.  The
   registry of metric names and the list of domain states are the only
   shared structures, both mutex-protected and touched only at handle
   creation / aggregation time.

   Visibility: workers run under Parallel's pool, whose mutex-guarded
   task handoff orders their state writes before the caller's reads, so
   quiescent-point aggregation needs no further synchronization. *)

(* ------------------------------------------------------------------ *)
(* Enable flag                                                         *)
(* ------------------------------------------------------------------ *)

let env_setting =
  match Sys.getenv_opt "FLEXILE_TRACE" with
  | None -> None
  | Some v -> (
      match String.lowercase_ascii (String.trim v) with
      | "" | "0" | "false" | "off" -> Some false
      | _ -> Some true)

let enabled_flag = ref (env_setting = Some true)
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b
let env_disabled () = env_setting = Some false

(* ------------------------------------------------------------------ *)
(* Name registry                                                       *)
(* ------------------------------------------------------------------ *)

type kind = K_counter | K_gauge | K_timer | K_probe | K_span | K_hist

let reg_m = Mutex.create ()
let reg_ids : (string, int) Hashtbl.t = Hashtbl.create 64
let reg_names : (string * kind) array ref = ref [||]

let register name kind =
  Mutex.lock reg_m;
  let id =
    match Hashtbl.find_opt reg_ids name with
    | Some id -> id
    | None ->
        let id = Array.length !reg_names in
        Hashtbl.add reg_ids name id;
        reg_names := Array.append !reg_names [| (name, kind) |];
        id
  in
  Mutex.unlock reg_m;
  id

let kind_of id = snd !reg_names.(id)
let name_of id = fst !reg_names.(id)

let lookup name =
  Mutex.lock reg_m;
  let r = Hashtbl.find_opt reg_ids name in
  Mutex.unlock reg_m;
  r

(* ------------------------------------------------------------------ *)
(* Per-domain state                                                    *)
(* ------------------------------------------------------------------ *)

let ring_capacity = 4096

(* Hierarchical-span bookkeeping.  Each domain keeps a stack of open
   frames; closing a frame appends one completed record.  Records are
   linked to their parent by the parent's per-domain begin sequence, so
   sorting a domain's records by [rseq] yields a pre-order traversal of
   its span forest. *)
let span_capacity = 65536

(* Histogram geometry: log-linear (HDR-style) buckets.  Positive
   values are split into binary octaves of [hist_sub] linear
   sub-buckets each, so the relative width of any bucket is at most
   1/hist_sub of its octave (~6.25% at 16): a quantile read off a
   bucket's upper bound over-estimates the true sample quantile by
   less than that.  Slot 0 collects zero, negative and NaN
   observations; the octave range covers [2^-31, 2^34) (~5e-10 to
   ~1.7e10), which spans sub-nanosecond latencies in seconds up to
   iteration counts in the billions; values outside clamp to the
   nearest finite bucket. *)
let hist_sub = 16
let hist_min_exp = -30
let hist_max_exp = 34
let hist_octaves = hist_max_exp - hist_min_exp + 1
let hist_nbuckets = 1 + (hist_octaves * hist_sub)
let hist_upper_limit = Float.ldexp 1. hist_max_exp

let hist_bucket_index v =
  if not (v > 0.) then 0 (* zero, negative, NaN *)
  else if not (v < hist_upper_limit) then hist_nbuckets - 1
  else begin
    let m, e = Float.frexp v in
    (* v = m * 2^e with m in [0.5, 1) *)
    let o = e - hist_min_exp in
    if o < 0 then 1
    else begin
      let sub = int_of_float ((m -. 0.5) *. float_of_int (2 * hist_sub)) in
      let sub = if sub >= hist_sub then hist_sub - 1 else max 0 sub in
      1 + (o * hist_sub) + sub
    end
  end

(* Inclusive-exclusive [lower, upper) buckets; the reported bound of a
   bucket is its upper limit (0 for the nonpositive slot). *)
let hist_bucket_upper i =
  if i = 0 then 0.
  else
    let o = (i - 1) / hist_sub and sub = (i - 1) mod hist_sub in
    Float.ldexp
      (0.5 +. (float_of_int (sub + 1) /. float_of_int (2 * hist_sub)))
      (hist_min_exp + o)

type hist_state = {
  hcounts : int array;  (* by bucket index *)
  mutable hcount : int;
  mutable hsum : float;  (* finite observations only *)
  mutable hmin : float;
  mutable hmax : float;
}

type frame = {
  fr_id : int;  (* registered span id *)
  fr_arg : int;
  fr_seq : int;  (* per-domain begin sequence *)
  fr_parent : int;  (* parent's begin seq, -1 for roots *)
  fr_depth : int;
  fr_t0 : int64;
  fr_minor : float;  (* Gc.quick_stat words at entry *)
  fr_major : float;
}

type raw_span = {
  rid : int;
  rarg : int;
  rseq : int;
  rparent : int;
  rdepth : int;
  rt0 : int64;
  rt1 : int64;
  rminor : float;  (* words allocated during the span, this domain *)
  rmajor : float;
}

type dom_state = {
  dom : int;
  mutable ints : int array;  (* counter sums / gauge maxima, by id *)
  mutable ns : int64 array;  (* timer accumulators, by id *)
  mutable spans : int array;  (* timer span counts, by id *)
  ev_id : int array;  (* event ring, slot = seq mod capacity *)
  ev_arg : int array;
  ev_ns : int64 array;
  mutable ev_seq : int;  (* total events ever emitted by this domain *)
  mutable sp_stack : frame list;  (* open spans, innermost first *)
  mutable sp_seq : int;  (* begin sequences handed out *)
  mutable sp_records : raw_span list;  (* completed, newest first *)
  mutable sp_count : int;
  mutable sp_dropped : int;
  mutable hists : hist_state option array;  (* by id, allocated lazily *)
}

let states_m = Mutex.create ()
let states : dom_state list ref = ref []

let new_state () =
  let st =
    {
      dom = (Domain.self () :> int);
      ints = Array.make 64 0;
      ns = Array.make 64 0L;
      spans = Array.make 64 0;
      ev_id = Array.make ring_capacity 0;
      ev_arg = Array.make ring_capacity 0;
      ev_ns = Array.make ring_capacity 0L;
      ev_seq = 0;
      sp_stack = [];
      sp_seq = 0;
      sp_records = [];
      sp_count = 0;
      sp_dropped = 0;
      hists = Array.make 16 None;
    }
  in
  Mutex.lock states_m;
  states := st :: !states;
  Mutex.unlock states_m;
  st

let dls_key = Domain.DLS.new_key new_state
let my_state () = Domain.DLS.get dls_key

(* Only the owning domain grows its arrays; readers bound their
   accesses by the array length they observe. *)
let ensure_ints st id =
  let len = Array.length st.ints in
  if id >= len then begin
    let a = Array.make (max (id + 1) (2 * len)) 0 in
    Array.blit st.ints 0 a 0 len;
    st.ints <- a
  end

let ensure_timers st id =
  let len = Array.length st.ns in
  if id >= len then begin
    let n = max (id + 1) (2 * len) in
    let a = Array.make n 0L and c = Array.make n 0 in
    Array.blit st.ns 0 a 0 len;
    Array.blit st.spans 0 c 0 len;
    st.ns <- a;
    st.spans <- c
  end

let snapshot_states () =
  Mutex.lock states_m;
  let l = !states in
  Mutex.unlock states_m;
  (* oldest first, so folds are deterministic in registration order *)
  List.sort (fun a b -> compare a.dom b.dom) l

(* ------------------------------------------------------------------ *)
(* Counters and gauges                                                 *)
(* ------------------------------------------------------------------ *)

type counter = int

let counter name = register name K_counter

let add c n =
  if !enabled_flag then begin
    let st = my_state () in
    ensure_ints st c;
    st.ints.(c) <- st.ints.(c) + n
  end

let incr c = add c 1

let value c =
  List.fold_left
    (fun acc st -> if c < Array.length st.ints then acc + st.ints.(c) else acc)
    0 (snapshot_states ())

type gauge = int

let gauge name = register name K_gauge

let gauge_max g v =
  if !enabled_flag then begin
    let st = my_state () in
    ensure_ints st g;
    if v > st.ints.(g) then st.ints.(g) <- v
  end

let gauge_value g =
  List.fold_left
    (fun acc st ->
      if g < Array.length st.ints then max acc st.ints.(g) else acc)
    0 (snapshot_states ())

(* ------------------------------------------------------------------ *)
(* Timers                                                              *)
(* ------------------------------------------------------------------ *)

type timer = int

let timer name = register name K_timer
let now_ns () = Monotonic_clock.now ()
let now_s () = Int64.to_float (now_ns ()) *. 1e-9

let add_ns t dns =
  if !enabled_flag then begin
    let st = my_state () in
    ensure_timers st t;
    st.ns.(t) <- Int64.add st.ns.(t) dns;
    st.spans.(t) <- st.spans.(t) + 1
  end

let with_span t f =
  if not !enabled_flag then f ()
  else begin
    let t0 = now_ns () in
    match f () with
    | v ->
        add_ns t (Int64.sub (now_ns ()) t0);
        v
    | exception e ->
        add_ns t (Int64.sub (now_ns ()) t0);
        raise e
  end

let timer_ns t =
  List.fold_left
    (fun acc st ->
      if t < Array.length st.ns then Int64.add acc st.ns.(t) else acc)
    0L (snapshot_states ())

let timer_seconds t = Int64.to_float (timer_ns t) /. 1e9

let timer_count t =
  List.fold_left
    (fun acc st -> if t < Array.length st.spans then acc + st.spans.(t) else acc)
    0 (snapshot_states ())

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

type probe = int

let probe name = register name K_probe

let event p arg =
  if !enabled_flag then begin
    let st = my_state () in
    let slot = st.ev_seq mod ring_capacity in
    st.ev_id.(slot) <- p;
    st.ev_arg.(slot) <- arg;
    st.ev_ns.(slot) <- now_ns ();
    st.ev_seq <- st.ev_seq + 1
  end

type event_record = {
  name : string;
  arg : int;
  t_ns : int64;
  dom : int;
  seq : int;
}

let events () =
  snapshot_states ()
  |> List.concat_map (fun st ->
         let first = max 0 (st.ev_seq - ring_capacity) in
         List.init (st.ev_seq - first) (fun k ->
             let seq = first + k in
             let slot = seq mod ring_capacity in
             {
               name = name_of st.ev_id.(slot);
               arg = st.ev_arg.(slot);
               t_ns = st.ev_ns.(slot);
               dom = st.dom;
               seq;
             }))

let events_logged () =
  List.fold_left (fun acc st -> acc + st.ev_seq) 0 (snapshot_states ())

let events_dropped () =
  List.fold_left
    (fun acc st -> acc + max 0 (st.ev_seq - ring_capacity))
    0 (snapshot_states ())

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

type hist = int

let hist name = register name K_hist

let ensure_hist st id =
  let len = Array.length st.hists in
  if id >= len then begin
    let a = Array.make (max (id + 1) (2 * len)) None in
    Array.blit st.hists 0 a 0 len;
    st.hists <- a
  end;
  match st.hists.(id) with
  | Some hs -> hs
  | None ->
      let hs =
        {
          hcounts = Array.make hist_nbuckets 0;
          hcount = 0;
          hsum = 0.;
          hmin = infinity;
          hmax = neg_infinity;
        }
      in
      st.hists.(id) <- Some hs;
      hs

let observe h v =
  if !enabled_flag then begin
    let st = my_state () in
    let hs = ensure_hist st h in
    let idx = hist_bucket_index v in
    hs.hcounts.(idx) <- hs.hcounts.(idx) + 1;
    hs.hcount <- hs.hcount + 1;
    if not (Float.is_nan v) then begin
      hs.hsum <- hs.hsum +. v;
      if v < hs.hmin then hs.hmin <- v;
      if v > hs.hmax then hs.hmax <- v
    end
  end

let observe_duration h f =
  if not !enabled_flag then f ()
  else begin
    let t0 = now_ns () in
    let fin () =
      observe h (Int64.to_float (Int64.sub (now_ns ()) t0) *. 1e-9)
    in
    match f () with
    | v ->
        fin ();
        v
    | exception e ->
        fin ();
        raise e
  end

type hist_snapshot = {
  hist_count : int;
  hist_sum : float;
  hist_min : float;
  hist_max : float;
  hist_buckets : (float * int) list;
}

(* Cross-domain merge: bucket counts are integer sums, so the merged
   distribution (and every quantile read from it) is identical to what
   a sequential run observing the same multiset would produce; domain
   states are visited in sorted-id order so the float [hist_sum] is
   also reproducible for a fixed job count. *)
let hist_snapshot h =
  let counts = Array.make hist_nbuckets 0 in
  let count = ref 0
  and sum = ref 0.
  and mn = ref infinity
  and mx = ref neg_infinity in
  List.iter
    (fun st ->
      if h < Array.length st.hists then
        match st.hists.(h) with
        | None -> ()
        | Some hs ->
            Array.iteri
              (fun i c -> if c > 0 then counts.(i) <- counts.(i) + c)
              hs.hcounts;
            count := !count + hs.hcount;
            sum := !sum +. hs.hsum;
            if hs.hmin < !mn then mn := hs.hmin;
            if hs.hmax > !mx then mx := hs.hmax)
    (snapshot_states ());
  let buckets = ref [] in
  for i = hist_nbuckets - 1 downto 0 do
    if counts.(i) > 0 then buckets := (hist_bucket_upper i, counts.(i)) :: !buckets
  done;
  let empty = !mn > !mx in
  {
    hist_count = !count;
    hist_sum = !sum;
    hist_min = (if empty then Float.nan else !mn);
    hist_max = (if empty then Float.nan else !mx);
    hist_buckets = !buckets;
  }

let hist_quantile_of s q =
  if s.hist_count = 0 then Float.nan
  else if q >= 1. then s.hist_max
  else begin
    let q = if q < 0. then 0. else q in
    (* smallest recorded bucket whose cumulative count reaches the
       rank — the same "smallest v with fraction(<= v) >= q"
       convention as Stats.percentile *)
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int s.hist_count))) in
    let rec walk cum = function
      | [] -> s.hist_max
      | (upper, c) :: rest ->
          let cum = cum + c in
          (* a bucket's upper bound over-estimates by < 1/hist_sub;
             clamping to the exact maximum makes single-valued and
             top-quantile reads exact *)
          if cum >= rank then Float.min upper s.hist_max else walk cum rest
    in
    walk 0 s.hist_buckets
  end

let hist_quantile h q = hist_quantile_of (hist_snapshot h) q
let hist_count h = (hist_snapshot h).hist_count

(* ------------------------------------------------------------------ *)
(* Hierarchical spans                                                  *)
(* ------------------------------------------------------------------ *)

type span = int

let span name = register name K_span

let span_begin ?(arg = 0) sp =
  if !enabled_flag then begin
    let st = my_state () in
    (* Gc.minor_words reads the live allocation pointer; quick_stat's
       minor_words only advances at minor-collection boundaries, so a
       short span would always see a zero delta through it. *)
    let minor = Gc.minor_words () in
    let g = Gc.quick_stat () in
    let parent, depth =
      match st.sp_stack with
      | [] -> (-1, 0)
      | f :: _ -> (f.fr_seq, f.fr_depth + 1)
    in
    let seq = st.sp_seq in
    st.sp_seq <- seq + 1;
    st.sp_stack <-
      {
        fr_id = sp;
        fr_arg = arg;
        fr_seq = seq;
        fr_parent = parent;
        fr_depth = depth;
        fr_t0 = now_ns ();
        fr_minor = minor;
        fr_major = g.Gc.major_words;
      }
      :: st.sp_stack
  end

(* Ends the innermost open span of the calling domain; the handle is
   only documentation (begin/end pairs must nest, which the profiler
   tests assert).  Always pops when a frame is open, even if tracing
   was toggled mid-span, so the stack can never wedge. *)
let span_end _sp =
  let st = my_state () in
  match st.sp_stack with
  | [] -> ()
  | f :: rest ->
      st.sp_stack <- rest;
      let t1 = now_ns () in
      let minor = Gc.minor_words () in
      let g = Gc.quick_stat () in
      (* spans double as timers: totals by name come for free *)
      ensure_timers st f.fr_id;
      st.ns.(f.fr_id) <- Int64.add st.ns.(f.fr_id) (Int64.sub t1 f.fr_t0);
      st.spans.(f.fr_id) <- st.spans.(f.fr_id) + 1;
      if st.sp_count >= span_capacity then st.sp_dropped <- st.sp_dropped + 1
      else begin
        st.sp_count <- st.sp_count + 1;
        st.sp_records <-
          {
            rid = f.fr_id;
            rarg = f.fr_arg;
            rseq = f.fr_seq;
            rparent = f.fr_parent;
            rdepth = f.fr_depth;
            rt0 = f.fr_t0;
            rt1 = t1;
            rminor = minor -. f.fr_minor;
            rmajor = g.Gc.major_words -. f.fr_major;
          }
          :: st.sp_records
      end

let in_span ?(arg = 0) sp f =
  if not !enabled_flag then f ()
  else begin
    span_begin ~arg sp;
    match f () with
    | v ->
        span_end sp;
        v
    | exception e ->
        span_end sp;
        raise e
  end

type span_record = {
  span_name : string;
  span_arg : int;
  span_dom : int;
  span_seq : int;
  span_parent : int;
  span_depth : int;
  span_t0_ns : int64;
  span_t1_ns : int64;
  span_minor_words : float;
  span_major_words : float;
}

let span_records () =
  snapshot_states ()
  |> List.concat_map (fun (st : dom_state) ->
         (* newest-first storage, so reversing sorts by begin seq *)
         List.rev_map
           (fun r ->
             {
               span_name = name_of r.rid;
               span_arg = r.rarg;
               span_dom = st.dom;
               span_seq = r.rseq;
               span_parent = r.rparent;
               span_depth = r.rdepth;
               span_t0_ns = r.rt0;
               span_t1_ns = r.rt1;
               span_minor_words = r.rminor;
               span_major_words = r.rmajor;
             })
           st.sp_records)

let spans_logged () =
  List.fold_left
    (fun acc st -> acc + st.sp_count + st.sp_dropped)
    0 (snapshot_states ())

let spans_dropped () =
  List.fold_left (fun acc st -> acc + st.sp_dropped) 0 (snapshot_states ())

let spans_open () =
  List.fold_left
    (fun acc st -> acc + List.length st.sp_stack)
    0 (snapshot_states ())

type span_tree = {
  node_name : string;
  node_arg : int;
  node_dom : int;
  node_t0_ns : int64;
  node_t1_ns : int64;
  node_minor_words : float;
  node_major_words : float;
  node_children : span_tree list;
}

let span_trees () =
  let records = span_records () in
  (* per (dom, parent-seq) child lists; records arrive sorted by
     (dom, seq), i.e. pre-order, so each list stays in begin order *)
  let children : (int * int, span_record list ref) Hashtbl.t =
    Hashtbl.create 256
  in
  let bucket dom parent =
    match Hashtbl.find_opt children (dom, parent) with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.add children (dom, parent) l;
        l
  in
  List.iter
    (fun r ->
      let l = bucket r.span_dom r.span_parent in
      l := r :: !l)
    records;
  let rec build (r : span_record) =
    let kids =
      match Hashtbl.find_opt children (r.span_dom, r.span_seq) with
      | None -> []
      | Some l -> List.rev_map build !l  (* prepended, so rev = begin order *)
    in
    {
      node_name = r.span_name;
      node_arg = r.span_arg;
      node_dom = r.span_dom;
      node_t0_ns = r.span_t0_ns;
      node_t1_ns = r.span_t1_ns;
      node_minor_words = r.span_minor_words;
      node_major_words = r.span_major_words;
      node_children = kids;
    }
  in
  (* roots: parent -1, already (dom, seq)-ordered.  A record whose
     parent was dropped by the capacity cap is orphaned and omitted
     rather than misattached. *)
  List.filter (fun r -> r.span_parent = -1) records |> List.map build

(* ------------------------------------------------------------------ *)
(* Aggregated reads, reset, JSON                                       *)
(* ------------------------------------------------------------------ *)

type metric_kind = Counter | Gauge | Timer | Probe | Span | Hist

let metric_kind_of_kind = function
  | K_counter -> Counter
  | K_gauge -> Gauge
  | K_timer -> Timer
  | K_probe -> Probe
  | K_span -> Span
  | K_hist -> Hist

let registry () =
  Mutex.lock reg_m;
  let l =
    Array.to_list
      (Array.map (fun (name, k) -> (name, metric_kind_of_kind k)) !reg_names)
  in
  Mutex.unlock reg_m;
  List.sort compare l

let value_by_name name =
  match lookup name with
  | Some id -> (
      match kind_of id with
      | K_counter -> value id
      | K_gauge -> gauge_value id
      | _ -> 0)
  | None -> 0

let hist_snapshot_by_name name =
  match lookup name with
  | Some id -> hist_snapshot id
  | None ->
      {
        hist_count = 0;
        hist_sum = 0.;
        hist_min = Float.nan;
        hist_max = Float.nan;
        hist_buckets = [];
      }

let timer_seconds_by_name name =
  match lookup name with Some id -> timer_seconds id | None -> 0.

let timer_count_by_name name =
  match lookup name with Some id -> timer_count id | None -> 0

let reset () =
  List.iter
    (fun st ->
      Array.fill st.ints 0 (Array.length st.ints) 0;
      Array.fill st.ns 0 (Array.length st.ns) 0L;
      Array.fill st.spans 0 (Array.length st.spans) 0;
      st.ev_seq <- 0;
      st.sp_stack <- [];
      st.sp_seq <- 0;
      st.sp_records <- [];
      st.sp_count <- 0;
      st.sp_dropped <- 0;
      Array.iter
        (function
          | None -> ()
          | Some hs ->
              Array.fill hs.hcounts 0 hist_nbuckets 0;
              hs.hcount <- 0;
              hs.hsum <- 0.;
              hs.hmin <- infinity;
              hs.hmax <- neg_infinity)
        st.hists)
    (snapshot_states ())

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json () =
  let ids =
    Mutex.lock reg_m;
    let a = Array.mapi (fun id (name, kind) -> (name, kind, id)) !reg_names in
    Mutex.unlock reg_m;
    Array.sort compare a;
    Array.to_list a
  in
  let b = Buffer.create 512 in
  let obj key kind fmt =
    Printf.bprintf b "\"%s\":{" key;
    let first = ref true in
    List.iter
      (fun (name, k, id) ->
        if k = kind then begin
          if not !first then Buffer.add_char b ',';
          first := false;
          Printf.bprintf b "\"%s\":" (json_escape name);
          fmt id
        end)
      ids;
    Buffer.add_char b '}'
  in
  Printf.bprintf b "{\"enabled\":%b," (enabled ());
  obj "counters" K_counter (fun id -> Printf.bprintf b "%d" (value id));
  Buffer.add_char b ',';
  obj "gauges" K_gauge (fun id -> Printf.bprintf b "%d" (gauge_value id));
  Buffer.add_char b ',';
  obj "timers" K_timer (fun id ->
      Printf.bprintf b "{\"seconds\":%.6f,\"count\":%d}" (timer_seconds id)
        (timer_count id));
  Buffer.add_char b ',';
  (* spans reuse the timer accumulators, so totals by name are free *)
  obj "spans" K_span (fun id ->
      Printf.bprintf b "{\"seconds\":%.6f,\"count\":%d}" (timer_seconds id)
        (timer_count id));
  Buffer.add_char b ',';
  (* non-finite summary fields (empty histogram) serialize as null *)
  let jnum v = if Float.is_finite v then Printf.sprintf "%.9g" v else "null" in
  obj "histograms" K_hist (fun id ->
      let s = hist_snapshot id in
      Printf.bprintf b
        "{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p90\":%s,\"p95\":%s,\"p99\":%s}"
        s.hist_count (jnum s.hist_sum) (jnum s.hist_min) (jnum s.hist_max)
        (jnum (hist_quantile_of s 0.50))
        (jnum (hist_quantile_of s 0.90))
        (jnum (hist_quantile_of s 0.95))
        (jnum (hist_quantile_of s 0.99)));
  Printf.bprintf b
    ",\"span_records\":{\"logged\":%d,\"dropped\":%d},\"events\":{\"logged\":%d,\"dropped\":%d}}"
    (spans_logged ()) (spans_dropped ()) (events_logged ()) (events_dropped ());
  Buffer.contents b
