let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0. || p > 1. then invalid_arg "Stats.percentile: p out of range";
  let s = Array.copy xs in
  (* Float.compare, not polymorphic compare: total over NaN and free
     of the generic-compare dispatch on a float array *)
  Array.sort Float.compare s;
  (* smallest v with fraction(<= v) >= p *)
  let k = int_of_float (Float.ceil (p *. float_of_int n)) - 1 in
  let k = max 0 (min (n - 1) k) in
  s.(k)

let median xs = percentile xs 0.5

let sort_by_value samples =
  let s = Array.copy samples in
  Array.sort (fun (a, _) (b, _) -> Float.compare a b) s;
  s

let weighted_var samples ~beta =
  if beta < 0. || beta > 1. then invalid_arg "Stats.weighted_var";
  let s = sort_by_value samples in
  let acc = ref 0. in
  let result = ref None in
  Array.iter
    (fun (v, p) ->
      match !result with
      | Some _ -> ()
      | None ->
          acc := !acc +. p;
          if !acc >= beta -. 1e-12 then result := Some v)
    s;
  match !result with
  | Some v -> v
  | None ->
      (* observed mass below beta: unobserved scenarios count as worst *)
      1.0

let weighted_cvar samples ~beta =
  if beta < 0. || beta >= 1. then invalid_arg "Stats.weighted_cvar";
  let s = sort_by_value samples in
  let total = Array.fold_left (fun a (_, p) -> a +. p) 0. s in
  let tail = 1. -. beta in
  (* walk from the top of the distribution, collecting [tail] mass;
     missing probability (1 - total) is the worst tail at loss 1.0 *)
  let missing = Float.max 0. (1. -. total) in
  let remaining = ref (tail -. Float.min tail missing) in
  let acc = ref (Float.min tail missing *. 1.0) in
  for i = Array.length s - 1 downto 0 do
    if !remaining > 1e-15 then begin
      let v, p = s.(i) in
      let take = Float.min p !remaining in
      acc := !acc +. (take *. v);
      remaining := !remaining -. take
    end
  done;
  !acc /. tail

let weighted_cdf samples =
  let s = sort_by_value samples in
  let acc = ref 0. in
  Array.to_list s
  |> List.map (fun (v, p) ->
         acc := !acc +. p;
         (v, !acc))

let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0. xs /. float_of_int n

let pearson xs ys =
  let n = Array.length xs in
  if n <> Array.length ys || n = 0 then invalid_arg "Stats.pearson";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0. and sxx = ref 0. and syy = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  !sxy /. Float.sqrt (!sxx *. !syy)

let fraction_leq xs v =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.fraction_leq: empty";
  let c = Array.fold_left (fun a x -> if x <= v then a + 1 else a) 0 xs in
  float_of_int c /. float_of_int n
