(** Low-overhead, domain-safe observability for the solver stack.

    The module keeps one private state per domain (counters, gauges,
    timer accumulators and a bounded event ring), reached through
    domain-local storage, so the hot-path operations never contend on a
    lock.  Aggregation happens only at read time, by folding over every
    domain's state, and is meant to be called at {e quiescent points} —
    after a {!Parallel.map} has returned, when the pool's handoff
    protocol has already published the workers' writes.

    Tracing is disabled by default; a disabled probe costs exactly one
    load-and-branch per operation.  It is enabled either
    programmatically ({!set_enabled}, e.g. by [flexile --trace] and the
    bench harness) or by setting the [FLEXILE_TRACE] environment
    variable to anything but [0]/[false]/[off].  [FLEXILE_TRACE=0]
    explicitly vetoes tracing ({!env_disabled}), which the bench harness
    honors when measuring overhead.

    Determinism: counter values are integer sums over domains, so they
    are identical for every job count whenever the traced work is
    (which holds for every default — cold-solve — pipeline in this
    repository).  The merged event stream is ordered by
    [(domain id, per-domain sequence)], deterministic for a fixed job
    count.  Timer and gauge values are wall-clock measurements and vary
    run to run by nature. *)

(** {1 Enabling} *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val env_disabled : unit -> bool
(** [true] iff the [FLEXILE_TRACE] environment variable explicitly
    disables tracing ([0], [false], [off] or empty).  Harnesses that
    enable tracing by default check this first. *)

(** {1 Metrics}

    Handles are registered by name in a process-global registry
    (idempotent: the same name always yields the same handle).
    Registration takes a mutex — create handles once at module
    initialization or per coarse-grained call, never in inner loops. *)

type counter

val counter : string -> counter
val incr : counter -> unit
val add : counter -> int -> unit

val value : counter -> int
(** Sum over all domains.  Quiescent-point read. *)

type gauge

val gauge : string -> gauge

val gauge_max : gauge -> int -> unit
(** Record an observation; the gauge keeps the maximum. *)

val gauge_value : gauge -> int
(** Max over all domains (0 if never set). *)

type timer

val timer : string -> timer

val with_span : timer -> (unit -> 'a) -> 'a
(** Run the thunk and accumulate its monotonic-clock duration (and one
    span count) into the calling domain's slot.  Exceptions propagate
    after the span is recorded.  When disabled this is one branch and a
    tail call. *)

val add_ns : timer -> int64 -> unit
(** Accumulate an externally-measured duration. *)

val now_ns : unit -> int64
(** Monotonic clock ([CLOCK_MONOTONIC]), nanoseconds.  For callers
    measuring sections that cannot be wrapped in a closure. *)

val now_s : unit -> float
(** [now_ns] scaled to seconds.  This is the only sanctioned wall-clock
    source in [lib/] ([flexile-lint] rule [d1-nondet] bans
    [Unix.gettimeofday] / [Sys.time] there): elapsed-time results stay
    comparable and immune to system clock steps. *)

val timer_ns : timer -> int64
val timer_seconds : timer -> float
val timer_count : timer -> int

(** {1 Events}

    Each domain owns a fixed-capacity ring; when full, the oldest
    events are overwritten and counted as dropped.  Events are cheap
    enough for per-iteration (not per-pivot) granularity. *)

type probe

val probe : string -> probe

val event : probe -> int -> unit
(** [event p arg] appends [(p, arg, now_ns)] to the calling domain's
    ring. *)

type event_record = {
  name : string;
  arg : int;
  t_ns : int64;
  dom : int;  (** id of the emitting domain *)
  seq : int;  (** per-domain emission index *)
}

val events : unit -> event_record list
(** Surviving events, ordered by [(dom, seq)].  Quiescent-point read. *)

val events_logged : unit -> int
val events_dropped : unit -> int

(** {1 Histograms}

    Per-domain log-bucketed (HDR-style) distribution recorders: the
    positive axis is split into binary octaves of 16 linear
    sub-buckets, so any bucket is at most ~6.25% wide relative to its
    value, and a quantile read off a bucket's upper bound
    over-estimates the true sample quantile by less than that.  Slot 0
    collects zero, negative and NaN observations; the finite range
    covers [2^-31, 2^34) and clamps outside it.  The hot-path
    {!observe} touches only the calling domain's count array (no
    locks, no allocation after the first observation), and costs one
    load-and-branch when tracing is disabled.

    Merging at quiescent points sums the per-domain integer bucket
    counts, so the merged distribution — and every quantile — is
    deterministic: identical to a sequential run observing the same
    multiset, for any job count. *)

type hist

val hist : string -> hist

val observe : hist -> float -> unit
(** Record one observation into the calling domain's recorder. *)

val observe_duration : hist -> (unit -> 'a) -> 'a
(** Run the thunk and observe its monotonic-clock duration in {e
    seconds}.  Exceptions propagate after the observation; one branch
    and a tail call when disabled. *)

type hist_snapshot = {
  hist_count : int;  (** observations, NaN included *)
  hist_sum : float;  (** sum of the finite observations *)
  hist_min : float;  (** exact; [nan] when no finite observation *)
  hist_max : float;  (** exact; [nan] when no finite observation *)
  hist_buckets : (float * int) list;
      (** non-empty buckets, ascending: [(upper bound, count)].
          Buckets are [lower, upper); the nonpositive slot reports
          bound 0. *)
}

val hist_snapshot : hist -> hist_snapshot
(** Merged over all domains.  Quiescent-point read. *)

val hist_quantile_of : hist_snapshot -> float -> float
(** [hist_quantile_of s q] with [q] in [0,1]: the upper bound of the
    smallest bucket holding at least a fraction [q] of the
    observations (clamped to the exact maximum, so [q >= 1] and
    single-valued histograms are exact).  [nan] when empty;
    nondecreasing in [q]. *)

val hist_quantile : hist -> float -> float
val hist_count : hist -> int

(** {1 Hierarchical spans}

    Where timers only accumulate totals, spans additionally record the
    {e shape} of the computation: each domain keeps a stack of open
    spans, and closing one appends a record carrying its begin/end
    timestamps, its parent (by per-domain begin sequence), its nesting
    depth, and the words allocated while it was open
    ([Gc.quick_stat] deltas, minor and major, for the recording
    domain).  Per-domain records are capped at 65536; further spans
    still accumulate into the by-name totals but are counted as
    dropped rather than stored.

    The merged record list is ordered by [(domain id, begin seq)] —
    a pre-order traversal of each domain's span forest — and is what
    the Chrome trace-event exporter ({!Trace_export}) serializes, one
    track per domain. *)

type span

val span : string -> span

val in_span : ?arg:int -> span -> (unit -> 'a) -> 'a
(** Run the thunk inside a new span (child of the calling domain's
    innermost open span).  Records on exit, exceptions included; a
    single branch when disabled.  [arg] tags the record (iteration
    number, scenario id, worker slot, ...). *)

val span_begin : ?arg:int -> span -> unit
val span_end : span -> unit
(** Explicit bracket for call sites that cannot wrap a closure.
    [span_end] closes the calling domain's {e innermost} open span —
    begin/end pairs must nest properly, which the profiler tests
    assert. *)

type span_record = {
  span_name : string;
  span_arg : int;
  span_dom : int;  (** id of the recording domain *)
  span_seq : int;  (** per-domain begin sequence *)
  span_parent : int;  (** parent's begin seq within the domain, -1 = root *)
  span_depth : int;  (** nesting depth at begin, 0 = root *)
  span_t0_ns : int64;
  span_t1_ns : int64;
  span_minor_words : float;  (** words allocated in the minor heap *)
  span_major_words : float;
}

val span_records : unit -> span_record list
(** Completed spans, ordered by [(dom, seq)].  Quiescent-point read. *)

type span_tree = {
  node_name : string;
  node_arg : int;
  node_dom : int;
  node_t0_ns : int64;
  node_t1_ns : int64;
  node_minor_words : float;
  node_major_words : float;
  node_children : span_tree list;  (** in begin order *)
}

val span_trees : unit -> span_tree list
(** The span forest: roots ordered by [(dom, seq)], children in begin
    order.  Spans whose parent record was dropped by the capacity cap
    are omitted rather than misattached. *)

val spans_logged : unit -> int
val spans_dropped : unit -> int

val spans_open : unit -> int
(** Spans begun but not yet ended, over all domains.  [0] at any
    quiescent point — the balance invariant the tests check. *)

(** {1 Aggregated reads and reporting} *)

type metric_kind = Counter | Gauge | Timer | Probe | Span | Hist

val registry : unit -> (string * metric_kind) list
(** Every registered metric name with its kind, sorted by name — the
    enumeration the exporters ({!Trace_export},
    [Flexile_obs.Metrics_export]) render. *)

val value_by_name : string -> int
(** Counter or gauge value by registered name; [0] for unknown names. *)

val hist_snapshot_by_name : string -> hist_snapshot
(** Empty snapshot for unknown names. *)

val timer_seconds_by_name : string -> float
(** [0.] for unknown names. *)

val timer_count_by_name : string -> int
(** Span count of a timer or span by registered name; [0] for unknown
    names. *)

val reset : unit -> unit
(** Zero every counter, gauge, timer and event ring in every registered
    domain state.  Quiescent-point operation. *)

val to_json : unit -> string
(** One-line JSON object:
    [{"enabled":bool,"counters":{..},"gauges":{..},
      "timers":{name:{"seconds":s,"count":n},..},
      "spans":{name:{"seconds":s,"count":n},..},
      "histograms":{name:{"count":n,"sum":s,"min":m,"max":M,
                          "p50":..,"p90":..,"p95":..,"p99":..},..},
      "span_records":{"logged":n,"dropped":n},
      "events":{"logged":n,"dropped":n}}]
    with keys sorted by name — the {e full} metric registry, every
    module's counters included.  Non-finite histogram summary fields
    (empty recorder) serialize as [null]. *)
