(** A minimal JSON reader, just enough to parse back the documents this
    repository emits (trace reports, Chrome traces, bench baselines)
    without pulling in a dependency.  Numbers are floats; object fields
    keep textual order. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

val parse : string -> (t, string) result
(** Whole-string parse; trailing non-whitespace is an error. *)

val parse_file : string -> (t, string) result

(** {1 Accessors} ([None] on shape mismatch) *)

val member : string -> t -> t option
val to_float : t -> float option
val to_int : t -> int option
val to_string : t -> string option
val to_list : t -> t list option
val to_obj : t -> (string * t) list option
