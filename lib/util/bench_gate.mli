(** Benchmark regression gate: schema-versioned baseline files of
    per-phase median wall times (committed as [BENCH_PR3.json]) and the
    comparison logic behind [bench --check].  Library code so the
    pass/fail logic is unit-testable on synthetic baselines. *)

val schema : string

val version : int
(** Current writer version (3).  v2 marks the addition of the
    ["histograms"] extra section to [bench --json] documents; v3 adds
    the ["doctor"] phase and the ["solver_health"] extra section.  The
    phase layout the gate compares is unchanged since v1, and
    {!of_json} reads any version up to [version] (v1/v2 baselines such
    as [BENCH_PR3.json] and [BENCH_PR8.json] stay loadable). *)

type phase = { pname : string; median_seconds : float }

type baseline = {
  profile : string;
  jobs : int;
  repetitions : int;
  phases : phase list;
}

val median : float list -> float
(** Median of the samples ([0.] for an empty list; mean of the middle
    pair for even counts). *)

val to_json : ?extra:(string * string) list -> baseline -> string
(** Pretty-printed baseline document.  [extra] appends raw
    [key: json-value] pairs (e.g. an embedded trace report); readers
    ignore unknown keys. *)

val of_json : Json.t -> (baseline, string) result
val load : string -> (baseline, string) result
val save : string -> baseline -> unit

type verdict = {
  vphase : string;
  base_seconds : float;
  current_seconds : float;  (** [nan] when missing from the run *)
  ratio : float;
  regressed : bool;
}

val check :
  baseline:baseline ->
  current:(string * float) list ->
  tolerance_pct:float ->
  ?min_seconds:float ->
  unit ->
  verdict list
(** One verdict per tracked (baseline) phase, in baseline order.  A
    phase regresses when it exceeds the baseline median by more than
    [tolerance_pct] percent {e and} by more than [min_seconds]
    (default 0.02s) absolute; a tracked phase missing from [current]
    is a regression.  Phases only in [current] are ignored (they will
    be tracked when the baseline is regenerated). *)

val passed : verdict list -> bool

val print_verdicts : tolerance_pct:float -> verdict list -> unit
