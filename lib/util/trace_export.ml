(* Serializers over Trace's quiescent-point reads: the structured
   report (full metric registry + span tree) that `flexile --trace`
   and `bench --json` write, and the Chrome trace-event document
   (`--trace-chrome` / `bench --chrome`) loadable in Perfetto or
   chrome://tracing. *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Structured report                                                   *)
(* ------------------------------------------------------------------ *)

let rec bprint_tree b (t : Trace.span_tree) =
  Printf.bprintf b
    "{\"name\":\"%s\",\"arg\":%d,\"dom\":%d,\"t0_ns\":%Ld,\"dur_ns\":%Ld,\"minor_words\":%.0f,\"major_words\":%.0f,\"children\":["
    (json_escape t.Trace.node_name)
    t.Trace.node_arg t.Trace.node_dom t.Trace.node_t0_ns
    (Int64.sub t.Trace.node_t1_ns t.Trace.node_t0_ns)
    t.Trace.node_minor_words t.Trace.node_major_words;
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char b ',';
      bprint_tree b c)
    t.Trace.node_children;
  Buffer.add_string b "]}"

let span_tree_json () =
  let b = Buffer.create 1024 in
  Buffer.add_char b '[';
  List.iteri
    (fun i t ->
      if i > 0 then Buffer.add_char b ',';
      bprint_tree b t)
    (Trace.span_trees ());
  Buffer.add_char b ']';
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Solver-health section                                               *)
(* ------------------------------------------------------------------ *)

(* Schema'd projection of the numerical-health observatory: every
   [health.*] metric (samples, trips, stalls, residual/condition/growth
   histograms — see Flexile_lp.Health) plus the [simplex.*] counters
   that give them context (warm-start attempts/fallbacks, refactor
   cadence).  Emitted as its own section in `--trace` reports and as a
   standalone artifact by `bench --gate` and CI, so dashboards can read
   solver health without parsing the full registry. *)
let solver_health_schema = "flexile-solver-health"
let solver_health_version = 1

let solver_health_json () =
  let keep name = function
    | Trace.Counter ->
        String.starts_with ~prefix:"health." name
        || String.starts_with ~prefix:"simplex." name
    | Trace.Hist -> String.starts_with ~prefix:"health." name
    | _ -> false
  in
  let metrics =
    List.filter (fun (n, k) -> keep n k) (Trace.registry ())
  in
  let jnum v = if Float.is_finite v then Printf.sprintf "%.9g" v else "null" in
  let b = Buffer.create 1024 in
  Printf.bprintf b "{\"schema\":\"%s\",\"version\":%d,\"counters\":{"
    solver_health_schema solver_health_version;
  let first = ref true in
  List.iter
    (fun (name, kind) ->
      if kind = Trace.Counter then begin
        if !first then first := false else Buffer.add_char b ',';
        Printf.bprintf b "\"%s\":%d" (json_escape name)
          (Trace.value_by_name name)
      end)
    metrics;
  Buffer.add_string b "},\"histograms\":{";
  let first = ref true in
  List.iter
    (fun (name, kind) ->
      if kind = Trace.Hist then begin
        if !first then first := false else Buffer.add_char b ',';
        let s = Trace.hist_snapshot_by_name name in
        Printf.bprintf b "\"%s\":{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s"
          (json_escape name) s.Trace.hist_count (jnum s.Trace.hist_sum)
          (jnum s.Trace.hist_min) (jnum s.Trace.hist_max);
        List.iter
          (fun (label, q) ->
            Printf.bprintf b ",\"%s\":%s" label
              (jnum (Trace.hist_quantile_of s q)))
          [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99) ];
        Buffer.add_char b '}'
      end)
    metrics;
  Buffer.add_string b "}}";
  Buffer.contents b

let report_json ?(derived = []) () =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\"derived\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\"%s\": %.6g" (json_escape k) v)
    derived;
  (* [report] is the full registry — every module's counters, gauges,
     timers and span totals, not just the offline solver's *)
  Printf.bprintf b "},\"report\":%s,\"solver_health\":%s,\"span_tree\":%s"
    (Trace.to_json ())
    (solver_health_json ())
    (span_tree_json ());
  (* ring/record saturation at top level: a nonzero drop count means
     the span_tree above (and the event stream) is truncated — silent
     truncation would read as "nothing else happened" *)
  Printf.bprintf b
    ",\"drops\":{\"events_logged\":%d,\"events_dropped\":%d,\"span_records_logged\":%d,\"span_records_dropped\":%d,\"spans_open\":%d}}"
    (Trace.events_logged ()) (Trace.events_dropped ()) (Trace.spans_logged ())
    (Trace.spans_dropped ()) (Trace.spans_open ());
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Chrome trace-event format                                           *)
(* ------------------------------------------------------------------ *)

(* One JSON-object-format document: complete (`X`) events for spans on
   a per-domain track, instant (`i`) events for probes, and one final
   counter (`C`) sample per counter/gauge.  Timestamps are microseconds
   relative to the earliest recorded instant, as the format requires. *)
let chrome_json () =
  let spans = Trace.span_records () in
  let events = Trace.events () in
  let t_min =
    List.fold_left
      (fun acc (r : Trace.span_record) -> min acc r.Trace.span_t0_ns)
      Int64.max_int spans
    |> fun acc ->
    List.fold_left
      (fun acc (e : Trace.event_record) -> min acc e.Trace.t_ns)
      acc events
  in
  let t_min = if t_min = Int64.max_int then 0L else t_min in
  let us t = Int64.to_float (Int64.sub t t_min) /. 1e3 in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let emit fmt =
    if !first then first := false else Buffer.add_char b ',';
    Printf.bprintf b fmt
  in
  emit
    "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"flexile\"}}";
  let doms =
    List.sort_uniq compare
      (List.map (fun (r : Trace.span_record) -> r.Trace.span_dom) spans
      @ List.map (fun (e : Trace.event_record) -> e.Trace.dom) events)
  in
  List.iter
    (fun d ->
      emit
        "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"domain %d\"}}"
        d d)
    doms;
  List.iter
    (fun (r : Trace.span_record) ->
      emit
        "{\"ph\":\"X\",\"name\":\"%s\",\"cat\":\"span\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"arg\":%d,\"depth\":%d,\"minor_words\":%.0f,\"major_words\":%.0f}}"
        (json_escape r.Trace.span_name)
        r.Trace.span_dom (us r.Trace.span_t0_ns)
        (Int64.to_float (Int64.sub r.Trace.span_t1_ns r.Trace.span_t0_ns)
        /. 1e3)
        r.Trace.span_arg r.Trace.span_depth r.Trace.span_minor_words
        r.Trace.span_major_words)
    spans;
  List.iter
    (fun (e : Trace.event_record) ->
      emit
        "{\"ph\":\"i\",\"name\":\"%s\",\"cat\":\"probe\",\"s\":\"t\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"args\":{\"arg\":%d}}"
        (json_escape e.Trace.name) e.Trace.dom (us e.Trace.t_ns) e.Trace.arg)
    events;
  (* final counter samples: Trace aggregates totals, not series, so a
     single C event at the trace's end still surfaces every counter and
     gauge in Perfetto's counter tracks *)
  let t_end =
    List.fold_left
      (fun acc (r : Trace.span_record) -> max acc (us r.Trace.span_t1_ns))
      0. spans
  in
  (match Json.parse (Trace.to_json ()) with
  | Error _ -> ()
  | Ok report ->
      let sample section =
        match Json.member section report with
        | Some (Json.Object fields) ->
            List.iter
              (fun (name, v) ->
                match Json.to_float v with
                | Some x ->
                    emit
                      "{\"ph\":\"C\",\"name\":\"%s\",\"pid\":0,\"tid\":0,\"ts\":%.3f,\"args\":{\"value\":%.0f}}"
                      (json_escape name) t_end x
                | None -> ())
              fields
        | _ -> ()
      in
      sample "counters";
      sample "gauges");
  Buffer.add_string b "]}";
  Buffer.contents b

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  output_char oc '\n';
  close_out oc
