(** Explicit float comparisons.

    Polymorphic [=] / [<>] on floats is banned in [lib/] by
    [flexile-lint] (rule [d2-float-eq]): a stray exact comparison in a
    tolerance path silently breaks the bit-identical-at-any-[--jobs]
    guarantee when a rounding mode or evaluation order changes.  Every
    float comparison must go through this module, which makes the
    intent — tolerance or deliberate exact IEEE equality — explicit at
    the call site. *)

val default_eps : float
(** [1e-9]; absolute tolerance used when [?eps] is omitted. *)

val eq : ?eps:float -> float -> float -> bool
(** [eq a b] is [|a - b| <= eps].  False if either argument is NaN. *)

val neq : ?eps:float -> float -> float -> bool
(** [not (eq ?eps a b)]. *)

val zero : ?eps:float -> float -> bool
(** [zero x] is [|x| <= eps].  False for NaN. *)

val exactly_zero : float -> bool
(** Exact IEEE [x = 0.] (true for [-0.]).  For sparsity tests where a
    value is zero only if it was never touched — not a tolerance. *)

val nonzero : float -> bool
(** [not (exactly_zero x)].  Note: true for NaN, like [x <> 0.]. *)

val exactly_equal : float -> float -> bool
(** Exact IEEE [a = b] ([nan] equals nothing, [0. = -0.]).  For
    comparing values that must be bit-for-bit reproductions of each
    other, e.g. differential parallel-vs-sequential checks. *)
