let all_classes inst =
  List.init (Array.length inst.Instance.classes) (fun k -> k)

let run ?jobs inst =
  Scenario_engine.sweep_losses ?jobs inst ~f:(fun sid ->
      (* single class: every class processed together in one level set *)
      Scen_lp.maxmin_losses inst ~sid ~class_order:(all_classes inst)
        ~merge_classes:true ())

let run_multi ?jobs inst =
  Scenario_engine.sweep_losses ?jobs inst ~f:(fun sid ->
      Scen_lp.maxmin_losses inst ~sid ~class_order:(all_classes inst) ())

let scen_loss_optimal ?jobs inst =
  Scenario_engine.sweep ?jobs inst
    ~init:(fun _ -> ())
    ~f:(fun () sid ->
      let ctx = Scen_lp.build inst ~sid in
      let connected f = Instance.flow_connected inst f sid in
      match Scen_lp.solve_min_weighted_max ctx ~flows:connected ~frozen:[] with
      | Some v -> Float.max 0. (Float.min 1. v)
      | None -> 1.)
