module Lp_model = Flexile_lp.Lp_model
module Simplex = Flexile_lp.Simplex
module Graph = Flexile_net.Graph

type result = {
  losses : Instance.losses;
  granted : float array;
  allocation : float array array;
}

(* Enumerate the <= k element subsets of [edges]. *)
let rec subsets k edges =
  if k = 0 then [ [] ]
  else
    match edges with
    | [] -> [ [] ]
    | e :: rest ->
        let without = subsets k rest in
        let with_e = List.map (fun s -> e :: s) (subsets (k - 1) rest) in
        without @ with_e

let run ?(k = 1) ?jobs inst =
  if Array.length inst.Instance.classes <> 1 then
    invalid_arg "Ffc.run: single traffic class only";
  if k < 0 || k > 2 then
    invalid_arg "Ffc.run: failure protection level must be 0, 1 or 2";
  let g = inst.Instance.graph in
  let np = Array.length inst.Instance.pairs in
  let model = Lp_model.create ~name:"ffc" () in
  let x =
    Array.init np (fun i ->
        Array.map (fun _ -> Lp_model.add_var model ()) inst.Instance.tunnels.(0).(i))
  in
  let flows = Instance.flows_of_class inst 0 in
  (* one concurrent scale factor: every flow is granted s * d_f, the
     "bandwidth guaranteed for all flows" form of FFC's admission *)
  let s = Lp_model.add_var model ~ub:1. ~obj:(-1.) () in
  (* capacity of the no-failure reservations *)
  let per_edge = Array.make (Graph.nedges g) [] in
  Array.iteri
    (fun i ts ->
      Array.iteri
        (fun ti (t : Flexile_net.Tunnels.t) ->
          Array.iter
            (fun e -> per_edge.(e) <- (x.(i).(ti), 1.) :: per_edge.(e))
            t.Flexile_net.Tunnels.path)
        ts)
    inst.Instance.tunnels.(0);
  Array.iteri
    (fun e coeffs ->
      if coeffs <> [] then
        ignore
          (Lp_model.add_row model Lp_model.Le g.Graph.edges.(e).Graph.capacity
             coeffs))
    per_edge;
  (* robustness: for every set S of <= k links, the tunnels surviving S
     must still cover b_f.  Only links appearing in the flow's own
     tunnels can hurt it, so the enumeration stays small. *)
  Array.iter
    (fun (f : Instance.flow) ->
      if f.Instance.demand > 0. then begin
        let i = f.Instance.pair in
        let ts = inst.Instance.tunnels.(0).(i) in
        let edges =
          Array.to_list ts
          |> List.concat_map (fun (t : Flexile_net.Tunnels.t) ->
                 Array.to_list t.Flexile_net.Tunnels.path)
          |> List.sort_uniq compare
        in
        List.iter
          (fun dead ->
            let coeffs =
              Array.to_list ts
              |> List.mapi (fun ti (t : Flexile_net.Tunnels.t) ->
                     let survives =
                       not
                         (Array.exists
                            (fun e -> List.mem e dead)
                            t.Flexile_net.Tunnels.path)
                     in
                     if survives then Some (x.(i).(ti), 1.) else None)
              |> List.filter_map (fun o -> o)
            in
            (* s * d_f - sum of surviving x <= 0 *)
            ignore
              (Lp_model.add_row model Lp_model.Le 0.
                 ((s, f.Instance.demand)
                 :: List.map (fun (v, c) -> (v, -.c)) coeffs)))
          (subsets k edges)
      end)
    flows;
  let sol = Simplex.solve model in
  if sol.Simplex.status <> Simplex.Optimal then failwith "Ffc.run: LP failed";
  let scale = sol.Simplex.x.(s) in
  let granted = Array.make (Instance.nflows inst) 0. in
  Array.iter
    (fun (f : Instance.flow) ->
      granted.(f.Instance.fid) <- scale *. f.Instance.demand)
    flows;
  let allocation = Array.map (Array.map (fun v -> sol.Simplex.x.(v))) x in
  let losses =
    Scenario_engine.sweep_losses ?jobs inst ~f:(fun q ->
        Array.to_list inst.Instance.flows
        |> List.filter_map (fun (f : Instance.flow) ->
               if f.Instance.demand <= 0. then None
               else
                 let surviving =
                   Array.fold_left
                     (fun acc ti -> acc +. allocation.(f.Instance.pair).(ti))
                     0.
                     inst.Instance.alive_tunnels.(q).(0).(f.Instance.pair)
                 in
                 let delivered = Float.min granted.(f.Instance.fid) surviving in
                 Some (f.Instance.fid, 1. -. (delivered /. f.Instance.demand))))
  in
  { losses; granted; allocation }
