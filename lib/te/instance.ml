module Graph = Flexile_net.Graph
module Tunnels = Flexile_net.Tunnels
module Failure_model = Flexile_failure.Failure_model

type cls = { cname : string; beta : float; weight : float }

type flow = {
  fid : int;
  cls : int;
  pair : int;
  src : int;
  dst : int;
  demand : float;
}

type t = {
  graph : Graph.t;
  classes : cls array;
  pairs : (int * int) array;
  tunnels : Tunnels.t array array array;
  flows : flow array;
  scenarios : Failure_model.scenario array;
  alive_tunnels : int array array array array;
  demand_factors : float array array option;
  regimes : string array option;
}

let make ~graph ~classes ~pairs ~tunnels ~demands ?demand_factors ?regimes
    ~scenarios () =
  let nk = Array.length classes and np = Array.length pairs in
  if Array.length tunnels <> nk || Array.length demands <> nk then
    invalid_arg "Instance.make: class dimension mismatch";
  Array.iteri
    (fun k per_pair ->
      if Array.length per_pair <> np then
        invalid_arg "Instance.make: pair dimension mismatch";
      Array.iteri
        (fun i ts ->
          let u, v = pairs.(i) in
          Array.iter
            (fun (t : Tunnels.t) ->
              let tu, tv = t.Tunnels.pair in
              if (tu, tv) <> (u, v) then
                invalid_arg
                  (Printf.sprintf
                     "Instance.make: tunnel pair mismatch class %d pair %d" k i))
            ts)
        per_pair)
    tunnels;
  let flows =
    let acc = ref [] and fid = ref 0 in
    for k = 0 to nk - 1 do
      for i = 0 to np - 1 do
        let u, v = pairs.(i) in
        acc :=
          {
            fid = !fid;
            cls = k;
            pair = i;
            src = u;
            dst = v;
            demand = demands.(k).(i);
          }
          :: !acc;
        incr fid
      done
    done;
    Array.of_list (List.rev !acc)
  in
  let alive_tunnels =
    Array.map
      (fun (s : Failure_model.scenario) ->
        let edge_alive e = s.Failure_model.edge_alive.(e) in
        Array.map
          (Array.map (fun ts ->
               let alive = ref [] in
               Array.iteri
                 (fun ti tun ->
                   if Tunnels.alive tun ~edge_alive then alive := ti :: !alive)
                 ts;
               Array.of_list (List.rev !alive)))
          tunnels)
      scenarios
  in
  (match demand_factors with
  | Some df ->
      if
        Array.length df <> Array.length scenarios
        || Array.exists (fun row -> Array.length row <> Array.length flows) df
      then invalid_arg "Instance.make: demand_factors dimension mismatch";
      Array.iter
        (Array.iter (fun v ->
             if v < 0. || Float.is_nan v then
               invalid_arg "Instance.make: negative demand factor"))
        df
  | None -> ());
  (match regimes with
  | Some r ->
      if Array.length r <> Array.length scenarios then
        invalid_arg "Instance.make: regimes dimension mismatch"
  | None -> ());
  {
    graph;
    classes;
    pairs;
    tunnels;
    flows;
    scenarios;
    alive_tunnels;
    demand_factors;
    regimes;
  }

let demand_in t (f : flow) sid =
  match t.demand_factors with
  | None -> f.demand
  | Some df -> f.demand *. df.(sid).(f.fid)

let edge_capacity t ~sid e =
  t.graph.Graph.edges.(e).Graph.capacity
  *. t.scenarios.(sid).Failure_model.cap_frac.(e)

let regime t ~sid =
  match t.regimes with
  | Some r -> r.(sid)
  | None ->
      (* legacy sets carry no tags: everything is either the all-up
         scenario or an independent link failure *)
      if Array.length t.scenarios.(sid).Failure_model.failed_units = 0 then
        "nominal"
      else "independent"

let regime_names t =
  let names = ref [] in
  for sid = Array.length t.scenarios - 1 downto 0 do
    let r = regime t ~sid in
    if not (List.mem r !names) then names := r :: !names
  done;
  List.sort_uniq String.compare !names

let with_classes t classes =
  if Array.length classes <> Array.length t.classes then
    invalid_arg "Instance.with_classes: class count mismatch";
  { t with classes }

let nflows t = Array.length t.flows
let nscenarios t = Array.length t.scenarios

let flows_of_class t k =
  Array.of_list
    (List.filter (fun f -> f.cls = k) (Array.to_list t.flows))

let flow_connected t f sid =
  Array.length t.alive_tunnels.(sid).(f.cls).(f.pair) > 0

let connected_mass t f =
  Array.fold_left
    (fun acc (s : Failure_model.scenario) ->
      if flow_connected t f s.Failure_model.sid then
        acc +. s.Failure_model.prob
      else acc)
    0. t.scenarios

let max_beta_single t =
  Array.fold_left
    (fun acc f -> if f.demand > 0. then Float.min acc (connected_mass t f) else acc)
    1. t.flows

type losses = float array array

let alloc_losses t = Array.make_matrix (nflows t) (nscenarios t) 1.0
