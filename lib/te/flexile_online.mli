(** Flexile's online phase (§4.3): on a failure, allocate bandwidth
    with a critical-flow-aware adaptation of SWAN's max-min algorithm.

    Critical flows (per the offline phase) are first guaranteed the
    loss level the offline routing achieved for them; the remaining
    capacity is then max-min allocated over flow loss, class by class
    in priority order, with joint re-routing (the paper's three changes
    to SWAN). *)

val allocate :
  ?duals:((int * float) list -> unit) ->
  Instance.t ->
  sid:int ->
  critical:(int -> bool) ->
  offline_loss:(int -> float) ->
  (int * float) list
(** [allocate inst ~sid ~critical ~offline_loss] returns [(fid, loss)]
    for every positive-demand flow in scenario [sid].  [critical fid]
    says whether the scenario is critical for the flow;
    [offline_loss fid] is the loss the offline phase guaranteed it
    (used as the critical flow's cap).  [duals] receives the binding
    capacity edges of the allocation's first LP solve (see
    {!Scen_lp.maxmin_losses}). *)

val run :
  ?jobs:int -> Instance.t -> offline:Flexile_offline.result -> Instance.losses
(** Run the online allocation for every scenario (fanned out through
    {!Scenario_engine}; [jobs = 0] means auto), using the best offline
    iterate's critical sets and guaranteed losses. *)

val run_with_duals :
  ?jobs:int ->
  Instance.t ->
  offline:Flexile_offline.result ->
  Instance.losses * (int * float) list array
(** {!run}, additionally returning each scenario's binding capacity
    edges [(edge, |dual|)] captured from the LP solution the
    allocation already computed.  Every per-scenario solve is cold, so
    both results are bit-identical for every job count. *)
