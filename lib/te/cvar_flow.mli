(** The paper's two CVaR generalizations of TeaVar (§5, Appendix C):
    both evaluate losses at {e flow} level (per-flow CVaR) and minimize
    the maximum CVaR across flows.

    - [Cvar-Flow-St]: static routing, identical tunnel allocation in
      every scenario (live tunnels keep their allocation);
    - [Cvar-Flow-Ad]: adaptive routing, allocations re-chosen per
      scenario (like SMORE/Flexile).

    Loss-definition rows are generated lazily; the Ad variant carries
    per-scenario capacity rows, so it is only tractable on moderate
    instances — callers should bound its size (the paper itself reports
    TLE for large CVaR runs). *)

type result = {
  losses : Instance.losses;
  max_flow_cvar : float;  (** optimal MaxFlowCVaR (eq. 20) *)
  rounds : int;
}

val run_static : ?beta:float -> ?jobs:int -> Instance.t -> result
val run_adaptive : ?beta:float -> ?jobs:int -> Instance.t -> result
(** [jobs] parallelizes the post-analysis loss sweep (0 = auto). *)
