module Lp_model = Flexile_lp.Lp_model
module Simplex = Flexile_lp.Simplex
module Tbl = Flexile_util.Tbl

(* Maximum volume a single flow can push over a subset of its tunnels
   (each a fixed path) subject to edge capacities: a tiny LP per
   (flow, scenario). *)
let max_alone inst (f : Instance.flow) sid =
  let alive = inst.Instance.alive_tunnels.(sid).(f.Instance.cls).(f.Instance.pair) in
  if Array.length alive = 0 then 0.
  else begin
    let model = Lp_model.create ~name:"isolated" () in
    let vars = Array.map (fun _ -> Lp_model.add_var model ~obj:(-1.) ()) alive in
    let per_edge = Hashtbl.create 16 in
    Array.iteri
      (fun idx ti ->
        let t = inst.Instance.tunnels.(f.Instance.cls).(f.Instance.pair).(ti) in
        Array.iter
          (fun e ->
            let prev = try Hashtbl.find per_edge e with Not_found -> [] in
            Hashtbl.replace per_edge e ((vars.(idx), 1.) :: prev))
          t.Flexile_net.Tunnels.path)
      alive;
    (* Sorted edge order: the capacity rows land in the LP in a fixed
       sequence, so degenerate pivots cannot depend on bucket layout. *)
    Tbl.sorted_iter
      (fun e coeffs ->
        ignore
          (Lp_model.add_row model Lp_model.Le
             (Instance.edge_capacity inst ~sid e)
             coeffs))
      per_edge;
    (* cap at the demand so the LP stays bounded *)
    ignore
      (Lp_model.add_row model Lp_model.Le
         (Instance.demand_in inst f sid)
         (Array.to_list (Array.map (fun v -> (v, 1.)) vars)));
    let sol = Simplex.solve model in
    match sol.Simplex.status with
    | Simplex.Optimal -> -.sol.Simplex.obj
    | _ -> 0.
  end

let isolated_losses inst =
  let losses = Instance.alloc_losses inst in
  Array.iter
    (fun (f : Instance.flow) ->
      for sid = 0 to Instance.nscenarios inst - 1 do
        let demand = Instance.demand_in inst f sid in
        if demand <= 0. then losses.(f.Instance.fid).(sid) <- 0.
        else begin
          let m = max_alone inst f sid in
          losses.(f.Instance.fid).(sid) <-
            Float.max 0. (Float.min 1. (1. -. (m /. demand)))
        end
      done)
    inst.Instance.flows;
  losses

let perc_loss_lower_bound inst ~cls =
  let iso = isolated_losses inst in
  Metrics.perc_loss inst iso ~cls ()
