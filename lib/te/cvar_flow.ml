module Lp_model = Flexile_lp.Lp_model
module Simplex = Flexile_lp.Simplex
module Row_gen = Flexile_lp.Row_gen
module Graph = Flexile_net.Graph

type result = {
  losses : Instance.losses;
  max_flow_cvar : float;
  rounds : int;
}

(* Both variants share the structure
     min theta
     s.t. theta >= alpha_f + 1/(1-beta) * sum_q p_q s_fq      (per flow)
          s_fq + alpha_f >= 1 - delivered_fq / d_f            (lazy)
          capacity rows
   and differ only in whether x is indexed by scenario. *)
let run_common ~adaptive ?beta ?jobs inst =
  if Array.length inst.Instance.classes <> 1 then
    invalid_arg "Cvar_flow: single traffic class only";
  if inst.Instance.demand_factors <> None then
    invalid_arg "Cvar_flow: per-scenario traffic matrices not supported";
  let beta =
    match beta with
    | Some b -> b
    | None -> inst.Instance.classes.(0).Instance.beta
  in
  let g = inst.Instance.graph in
  let np = Array.length inst.Instance.pairs in
  let nq = Instance.nscenarios inst in
  let flows =
    Array.to_list (Instance.flows_of_class inst 0)
    |> List.filter (fun (f : Instance.flow) -> f.Instance.demand > 0.)
  in
  let model =
    Lp_model.create ~name:(if adaptive then "cvar-flow-ad" else "cvar-flow-st") ()
  in
  let theta = Lp_model.add_var model ~name:"theta" ~obj:1. () in
  (* per-flow theta_f (appendix C) with a tiny objective weight: when
     one hopeless flow pins the max, the other flows' CVaRs must still
     be optimized, or the LP solution is arbitrary for them *)
  let eps = 1e-3 /. float_of_int (max 1 (List.length flows)) in
  let alpha = Array.make (Instance.nflows inst) (-1) in
  let s = Array.make_matrix (Instance.nflows inst) nq (-1) in
  List.iter
    (fun (f : Instance.flow) ->
      let fid = f.Instance.fid in
      alpha.(fid) <- Lp_model.add_var model ();
      for q = 0 to nq - 1 do
        s.(fid).(q) <- Lp_model.add_var model ()
      done;
      let p q = inst.Instance.scenarios.(q).Flexile_failure.Failure_model.prob in
      let theta_f = Lp_model.add_var model ~obj:eps () in
      let coeffs =
        (theta_f, 1.) :: (alpha.(fid), -1.)
        :: List.init nq (fun q -> (s.(fid).(q), -.p q /. (1. -. beta)))
      in
      ignore (Lp_model.add_row model Lp_model.Ge 0. coeffs);
      ignore (Lp_model.add_row model Lp_model.Ge 0. [ (theta, 1.); (theta_f, -1.) ]))
    flows;
  (* routing variables and capacity rows *)
  let nscen_x = if adaptive then nq else 1 in
  (* x.(qx).(pair).(tunnel); qx = 0 in the static variant *)
  let x =
    Array.init nscen_x (fun qx ->
        Array.init np (fun i ->
            let ts = inst.Instance.tunnels.(0).(i) in
            let vars = Array.make (Array.length ts) (-1) in
            if adaptive then
              Array.iter
                (fun ti -> vars.(ti) <- Lp_model.add_var model ())
                inst.Instance.alive_tunnels.(qx).(0).(i)
            else
              Array.iteri (fun ti _ -> vars.(ti) <- Lp_model.add_var model ()) ts;
            vars))
  in
  for qx = 0 to nscen_x - 1 do
    let per_edge = Array.make (Graph.nedges g) [] in
    Array.iteri
      (fun i ts ->
        Array.iteri
          (fun ti (t : Flexile_net.Tunnels.t) ->
            let v = x.(qx).(i).(ti) in
            if v >= 0 then
              Array.iter
                (fun e -> per_edge.(e) <- (v, 1.) :: per_edge.(e))
                t.Flexile_net.Tunnels.path)
          ts)
      inst.Instance.tunnels.(0);
    Array.iteri
      (fun e coeffs ->
        if coeffs <> [] then
          (* adaptive: per-scenario routing sees the degraded capacity;
             static: one routing against nominal capacities, losses
             evaluated per scenario downstream *)
          let cap =
            if adaptive then Instance.edge_capacity inst ~sid:qx e
            else g.Graph.edges.(e).Graph.capacity
          in
          ignore (Lp_model.add_row model Lp_model.Le cap coeffs))
      per_edge
  done;
  let delivered xval ~pair ~q =
    let qx = if adaptive then q else 0 in
    Array.fold_left
      (fun acc ti ->
        let v = x.(qx).(pair).(ti) in
        if v >= 0 then acc +. xval v else acc)
      0.
      inst.Instance.alive_tunnels.(q).(0).(pair)
  in
  let violated xval =
    let out = ref [] in
    List.iter
      (fun (f : Instance.flow) ->
        let fid = f.Instance.fid in
        for q = 0 to nq - 1 do
          let loss =
            1.
            -. delivered (fun v -> xval.(v)) ~pair:f.Instance.pair ~q
               /. f.Instance.demand
          in
          if xval.(s.(fid).(q)) +. xval.(alpha.(fid)) < loss -. 1e-7 then begin
            let qx = if adaptive then q else 0 in
            let coeffs =
              (s.(fid).(q), 1.) :: (alpha.(fid), 1.)
              :: (Array.to_list inst.Instance.alive_tunnels.(q).(0).(f.Instance.pair)
                 |> List.filter_map (fun ti ->
                        let v = x.(qx).(f.Instance.pair).(ti) in
                        if v >= 0 then Some (v, 1. /. f.Instance.demand)
                        else None))
            in
            out := { Row_gen.sense = Lp_model.Ge; rhs = 1.; coeffs } :: !out
          end
        done)
      flows;
    !out
  in
  let sol, rounds = Row_gen.solve ~per_round:800 ~violated model in
  if sol.Simplex.status <> Simplex.Optimal then
    failwith "Cvar_flow: LP did not solve";
  let losses =
    Scenario_engine.sweep_losses ?jobs inst ~f:(fun q ->
        Array.to_list inst.Instance.flows
        |> List.filter_map (fun (f : Instance.flow) ->
               if f.Instance.demand <= 0. then None
               else
                 let del =
                   delivered (fun v -> sol.Simplex.x.(v)) ~pair:f.Instance.pair
                     ~q
                 in
                 Some (f.Instance.fid, 1. -. (del /. f.Instance.demand))))
  in
  { losses; max_flow_cvar = sol.Simplex.obj; rounds }

let run_static ?beta ?jobs inst = run_common ~adaptive:false ?beta ?jobs inst
let run_adaptive ?beta ?jobs inst = run_common ~adaptive:true ?beta ?jobs inst
