type result = {
  losses : Instance.losses;
  offline : Flexile_offline.result;
}

let run ?config ?(jobs = 0) inst =
  let config =
    match config with Some c -> c | None -> Flexile_offline.default_config
  in
  (* an explicit [jobs] overrides the config's knob for both phases *)
  let config =
    if jobs = 0 then config else { config with Flexile_offline.jobs }
  in
  let offline = Flexile_offline.solve ~config inst in
  let losses =
    Flexile_online.run ~jobs:config.Flexile_offline.jobs inst ~offline
  in
  { losses; offline }
