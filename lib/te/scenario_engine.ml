module Parallel = Flexile_util.Parallel
module Trace = Flexile_util.Trace

let default_jobs = Parallel.default_jobs
let c_sweeps = Trace.counter "engine.sweeps"
let c_scenarios = Trace.counter "engine.scenarios"
let c_kept = Trace.counter "engine.scenarios_kept"
let sp_sweep = Trace.span "engine.sweep"
let sp_merge = Trace.span "engine.merge"

(* distribution of per-(flow, scenario) delivered loss across every
   sweep — the raw material of the FlowLoss percentile objective *)
let h_flow_loss = Trace.hist "engine.flow_loss"

let sweep ?jobs inst ~init ~f =
  Trace.incr c_sweeps;
  Trace.add c_scenarios (Instance.nscenarios inst);
  Trace.in_span ~arg:(Instance.nscenarios inst) sp_sweep (fun () ->
      Parallel.map ?jobs ~n:(Instance.nscenarios inst) ~init ~f ())

let sweep_some ?jobs inst ~keep ~init ~f =
  let nq = Instance.nscenarios inst in
  let kept = Array.init nq keep in
  Trace.incr c_sweeps;
  Trace.add c_scenarios nq;
  Array.iter (fun k -> if k then Trace.incr c_kept) kept;
  Trace.in_span ~arg:nq sp_sweep (fun () ->
      Parallel.map ?jobs ~n:nq ~init
        ~f:(fun st sid -> if kept.(sid) then Some (f st sid) else None)
        ())

let sweep_losses ?jobs inst ~f =
  let per_sid = sweep ?jobs inst ~init:(fun _ -> ()) ~f:(fun () sid -> f sid) in
  Trace.in_span sp_merge @@ fun () ->
  let losses = Instance.alloc_losses inst in
  Array.iteri
    (fun sid results ->
      List.iter
        (fun (fid, v) ->
          let v = Float.max 0. (Float.min 1. v) in
          Trace.observe h_flow_loss v;
          losses.(fid).(sid) <- v)
        results)
    per_sid;
  Array.iter
    (fun (fl : Instance.flow) ->
      if fl.Instance.demand <= 0. then
        Array.fill losses.(fl.Instance.fid) 0 (Instance.nscenarios inst) 0.)
    inst.Instance.flows;
  losses
