(** The scenario→LP→solution sweep engine.

    Every scheme in the evaluation ultimately runs "for each failure
    scenario: build or specialize an LP, solve it, collect per-flow
    losses".  This module owns that lifecycle so the schemes stop
    hand-rolling their own loops, and fans the per-scenario work out
    over a fixed pool of OCaml domains ({!Flexile_util.Parallel}).

    Determinism contract: results are merged in ascending scenario
    order, and work is sharded statically (scenario [sid] always lands
    on worker [sid mod jobs]).  A per-scenario function that does not
    depend on worker-local history — every cold solve in this
    repository — therefore produces bit-identical results for every
    job count.  Stateful workers (shard-local dual-simplex warm
    starts) see a deterministic scenario subsequence, so runs are
    reproducible for a fixed job count.

    [jobs] convention, everywhere in this repository: [0] (or an
    omitted argument) means "auto" — the [FLEXILE_JOBS] environment
    variable if set, otherwise one worker per available core. *)

val default_jobs : unit -> int
(** See {!Flexile_util.Parallel.default_jobs}. *)

val sweep :
  ?jobs:int ->
  Instance.t ->
  init:(int -> 'state) ->
  f:('state -> int -> 'a) ->
  'a array
(** [sweep inst ~init ~f] evaluates [f state sid] for every scenario of
    the instance and returns the results indexed by scenario id.
    [init w] creates worker [w]'s private state (typically a warm
    {!Flexile_lp.Simplex} template) once per sweep. *)

val sweep_some :
  ?jobs:int ->
  Instance.t ->
  keep:(int -> bool) ->
  init:(int -> 'state) ->
  f:('state -> int -> 'a) ->
  'a option array
(** Like {!sweep} with shared pruning: scenarios for which [keep sid]
    is false are skipped ([None] in the result, [f] never called).
    [keep] is evaluated in the calling domain before the fan-out, so it
    may read mutable bookkeeping (perfect/unchanged scenario sets). *)

val sweep_losses :
  ?jobs:int ->
  Instance.t ->
  f:(int -> (int * float) list) ->
  Instance.losses
(** Post-analysis helper: [f sid] returns the [(fid, loss)] pairs of
    one scenario; the engine merges them into a dense loss matrix,
    clamping to [0, 1] and pinning zero-demand flows to loss 0 (the
    convention shared by every scheme's loss matrix). *)
