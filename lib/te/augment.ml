module Lp_model = Flexile_lp.Lp_model
module Mip = Flexile_lp.Mip
module Graph = Flexile_net.Graph
module Failure_model = Flexile_failure.Failure_model

type result = { cost : float; added : float array; optimal : bool }

let min_cost ?(options = { Flexile_lp.Mip.default_options with node_limit = 3000; time_limit = 120. })
    ?edge_cost ?max_add ~mode ~perc_limit inst =
  let g = inst.Instance.graph in
  let ne = Graph.nedges g in
  let nk = Array.length inst.Instance.classes in
  let np = Array.length inst.Instance.pairs in
  let nq = Instance.nscenarios inst in
  if Array.length perc_limit <> nk then invalid_arg "Augment.min_cost";
  let edge_cost = match edge_cost with Some f -> f | None -> fun _ -> 1. in
  let max_add =
    match max_add with
    | Some m -> m
    | None ->
        4. *. Array.fold_left (fun a e -> Float.max a e.Graph.capacity) 0. g.Graph.edges
  in
  let model = Lp_model.create ~name:"augment" () in
  let delta =
    Array.init ne (fun e ->
        Lp_model.add_var model ~ub:max_add ~obj:(edge_cost e) ())
  in
  let alphas =
    Array.mapi
      (fun k (_ : Instance.cls) -> Lp_model.add_var model ~ub:perc_limit.(k) ())
      inst.Instance.classes
  in
  let binaries = ref [] in
  (* common-mode scenario indicators *)
  let zq =
    match mode with
    | `Common ->
        Array.init nq (fun _ ->
            let z = Lp_model.add_var model ~ub:1. () in
            binaries := z :: !binaries;
            z)
    | `Per_flow -> [||]
  in
  let zf = Array.make_matrix (Instance.nflows inst) nq (-1) in
  for q = 0 to nq - 1 do
    let scen = inst.Instance.scenarios.(q) in
    let x =
      Array.init nk (fun k ->
          Array.init np (fun i ->
              let vars =
                Array.make (Array.length inst.Instance.tunnels.(k).(i)) (-1)
              in
              Array.iter
                (fun ti -> vars.(ti) <- Lp_model.add_var model ())
                inst.Instance.alive_tunnels.(q).(k).(i);
              vars))
    in
    let per_edge = Array.make ne [] in
    for k = 0 to nk - 1 do
      for i = 0 to np - 1 do
        Array.iteri
          (fun ti (t : Flexile_net.Tunnels.t) ->
            let v = x.(k).(i).(ti) in
            if v >= 0 then
              Array.iter
                (fun e -> per_edge.(e) <- (v, 1.) :: per_edge.(e))
                t.Flexile_net.Tunnels.path)
          inst.Instance.tunnels.(k).(i)
      done
    done;
    Array.iteri
      (fun e coeffs ->
        if coeffs <> [] && scen.Failure_model.edge_alive.(e) then
          ignore
            (Lp_model.add_row model Lp_model.Le
               (Instance.edge_capacity inst ~sid:q e)
               ((delta.(e), -1.) :: coeffs)))
      per_edge;
    Array.iter
      (fun (f : Instance.flow) ->
        if f.Instance.demand > 0. then begin
          let fid = f.Instance.fid in
          let connected = Instance.flow_connected inst f q in
          let dq = Instance.demand_in inst f q in
          let l =
            if dq <= 0. then Lp_model.add_var model ~ub:0. ()
            else
              Lp_model.add_var model
                ~lb:(if connected then 0. else 1.)
                ~ub:1. ()
          in
          if connected && dq > 0. then begin
            let coeffs =
              (l, dq)
              :: (Array.to_list inst.Instance.alive_tunnels.(q).(f.Instance.cls).(f.Instance.pair)
                 |> List.map (fun ti ->
                        (x.(f.Instance.cls).(f.Instance.pair).(ti), 1.)))
            in
            ignore (Lp_model.add_row model Lp_model.Ge dq coeffs)
          end;
          let z =
            match mode with
            | `Common -> zq.(q)
            | `Per_flow ->
                if connected then begin
                  let z = Lp_model.add_var model ~ub:1. () in
                  binaries := z :: !binaries;
                  zf.(fid).(q) <- z;
                  z
                end
                else -1
          in
          if z >= 0 then
            ignore
              (Lp_model.add_row model Lp_model.Ge (-1.)
                 [ (alphas.(f.Instance.cls), 1.); (l, -1.); (z, -1.) ])
        end)
      inst.Instance.flows
  done;
  (* coverage *)
  (match mode with
  | `Common ->
      let beta =
        Array.fold_left
          (fun a (c : Instance.cls) -> Float.max a c.Instance.beta)
          0. inst.Instance.classes
      in
      let coeffs =
        List.init nq (fun q ->
            (zq.(q), inst.Instance.scenarios.(q).Failure_model.prob))
      in
      ignore (Lp_model.add_row model Lp_model.Ge beta coeffs)
  | `Per_flow ->
      Array.iter
        (fun (f : Instance.flow) ->
          if f.Instance.demand > 0. then begin
            let coeffs =
              List.filter_map
                (fun q ->
                  if zf.(f.Instance.fid).(q) >= 0 then
                    Some
                      ( zf.(f.Instance.fid).(q),
                        inst.Instance.scenarios.(q).Failure_model.prob )
                  else None)
                (List.init nq (fun q -> q))
            in
            if coeffs <> [] then
              ignore
                (Lp_model.add_row model Lp_model.Ge
                   inst.Instance.classes.(f.Instance.cls).Instance.beta coeffs)
          end)
        inst.Instance.flows);
  let r = Mip.solve ~options ~binaries:(Array.of_list !binaries) model in
  match r.Mip.status with
  | Mip.Optimal | Mip.Feasible ->
      {
        cost = r.Mip.obj;
        added = Array.map (fun d -> r.Mip.x.(d)) delta;
        optimal = r.Mip.status = Mip.Optimal;
      }
  | _ -> { cost = infinity; added = Array.make ne 0.; optimal = false }
