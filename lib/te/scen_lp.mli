(** Shared per-scenario LP skeleton: bandwidth variables on the alive
    tunnels of one failure scenario, per-flow loss variables, demand
    coverage rows and link capacity rows.  Every scenario-local scheme
    (ScenBest/SMORE, SWAN, Flexile's subproblem and online allocation)
    builds on this. *)

type ctx = {
  inst : Instance.t;
  sid : int;
  model : Flexile_lp.Lp_model.t;
  x : Flexile_lp.Lp_model.var array array array;
      (** class -> pair -> tunnel index -> variable, or -1 if the
          tunnel is dead in this scenario *)
  l : Flexile_lp.Lp_model.var array;
      (** flow id -> loss variable in [0,1], or -1 if the flow has zero
          demand *)
  demand_rows : Flexile_lp.Lp_model.row array;
      (** flow id -> coverage row, or -1 *)
  cap_rows : Flexile_lp.Lp_model.row array;
      (** edge id -> capacity row, or -1 when no alive tunnel crosses
          the edge; the handle through which LP duals are read back as
          per-edge bottleneck values *)
}

val build : Instance.t -> sid:int -> ctx
(** Creates variables and rows:
    - for each flow with positive demand:
      [sum_t x_t + d_f * l_f >= d_f] over the flow's alive tunnels;
    - for each edge: [sum of x crossing it <= capacity].
    Disconnected flows get [l_f] fixed to 1. *)

val set_losses : ctx -> Instance.losses -> float array -> unit
(** Copy the solved loss values of this scenario into the loss matrix
    (zero-demand flows are recorded as loss 0). *)

val solve_min_weighted_max :
  ctx ->
  flows:(Instance.flow -> bool) ->
  frozen:(int * float) list ->
  float option
(** Minimize the maximum loss over flows selected by [flows], holding
    each [(fid, cap)] in [frozen] to loss at most [cap].  Returns the
    optimal max loss, or [None] if infeasible (should not happen: loss
    1 is always feasible).  The model is left with the added rows; use
    a fresh [ctx] per call unless noted. *)

val class_optimum : Instance.t -> sid:int -> cls:int -> float
(** The clairvoyant optimum of one class in one scenario: the minimum
    achievable max loss over the class's flows when the whole network
    serves only that class (other classes' coverage rows are satisfied
    by their loss variables, consuming no capacity).  Any allocation
    restricted to the class is feasible for this relaxation, so
    [max online loss - class_optimum] is a nonnegative regret (up to
    LP tolerance).  Clamped to [0, 1]; [1.] if the LP fails. *)

val maxmin_losses :
  Instance.t ->
  sid:int ->
  class_order:int list ->
  ?merge_classes:bool ->
  ?freeze_routing:bool ->
  ?prefrozen:(int * float) list ->
  ?max_levels:int ->
  ?duals:((int * float) list -> unit) ->
  unit ->
  (int * float) list
(** SWAN-style iterative max-min on {e flow loss}, processing classes
    in the given priority order (earlier classes are served first;
    their resulting losses constrain later classes while routing is
    re-decided jointly, the paper's §4.3 refinement of SWAN).
    With [merge_classes] all listed classes are max-minned together as
    one group (the single-class ScenBest/SMORE behaviour).  With
    [freeze_routing] the tunnel split of each class is pinned before
    lower classes are served — SWAN's behaviour, as opposed to the
    joint re-routing used by ScenBest-Multi and Flexile.  [prefrozen]
    forces upper bounds on specific flows' losses (used by Flexile's
    online phase for critical flows).  [duals] is called at most once,
    with the [(edge, |dual|)] pairs of the binding capacity rows of
    the {e first} optimal solve (the bottlenecks while the top
    priority group is served) — threaded out of the simplex solution
    already computed, never a re-solve.  Returns [(fid, loss)] for
    every positive-demand flow of the listed classes. *)
