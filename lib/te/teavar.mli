(** TeaVar (SIGCOMM'19), the paper's main percentile-aware baseline.

    TeaVar allocates a {e static} bandwidth [x_t] to every tunnel
    (traffic on failed tunnels is redistributed proportionally over the
    pair's surviving tunnels, so the deliverable volume of a pair in a
    scenario is the sum of its live tunnels' allocations) and minimizes
    the {e Conditional} Value-at-Risk of the per-scenario worst-pair
    loss at level beta.  Single traffic class, as in the paper.

    The O(|pairs| * |scenarios|) loss-definition rows are generated
    lazily (see {!Flexile_lp.Row_gen}); the returned solution is exact
    for the full formulation when the row generation converges. *)

type result = {
  losses : Instance.losses;  (** post-analysis per-flow per-scenario *)
  cvar : float;  (** optimal objective (CVaR of ScenLoss) *)
  allocation : float array array;  (** pair -> tunnel -> x_t *)
  rounds : int;  (** row-generation rounds *)
}

val run : ?beta:float -> ?jobs:int -> Instance.t -> result
(** [beta] defaults to the instance's class-0 target.  [jobs]
    parallelizes the post-analysis loss sweep (0 = auto). *)
