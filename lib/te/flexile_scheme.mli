(** Flexile end-to-end: offline critical-scenario selection followed by
    the online critical-flow-aware allocation in every scenario.  The
    returned loss matrix is what a Flexile deployment would experience
    (§4), and is what all Flexile numbers in the evaluation report. *)

type result = {
  losses : Instance.losses;  (** online-phase losses, all scenarios *)
  offline : Flexile_offline.result;
}

val run : ?config:Flexile_offline.config -> ?jobs:int -> Instance.t -> result
(** [jobs] (0 = auto) overrides [config.jobs] for the offline sweep and
    sets the online phase's fan-out. *)
