module Lp_model = Flexile_lp.Lp_model
module Simplex = Flexile_lp.Simplex

let class_order inst =
  List.init (Array.length inst.Instance.classes) (fun k -> k)

let run_maxmin ?jobs inst =
  Scenario_engine.sweep_losses ?jobs inst ~f:(fun sid ->
      Scen_lp.maxmin_losses inst ~sid ~class_order:(class_order inst)
        ~freeze_routing:true ())

(* One scenario of SWAN-Throughput: classes in priority order, each
   maximizing its delivered volume, routing pinned before the next
   class is served. *)
let throughput_scenario inst sid =
  let ctx = Scen_lp.build inst ~sid in
  let model = ctx.Scen_lp.model in
  let results = ref [] in
  List.iter
    (fun k ->
      let class_flows =
        Array.to_list inst.Instance.flows
        |> List.filter (fun (f : Instance.flow) ->
               f.Instance.cls = k && f.Instance.demand > 0.)
      in
      (* maximize delivered volume = minimize sum of l_f * d_f *)
      List.iter
        (fun (f : Instance.flow) ->
          if ctx.Scen_lp.l.(f.Instance.fid) >= 0 then
            Lp_model.set_obj model ctx.Scen_lp.l.(f.Instance.fid)
              f.Instance.demand)
        class_flows;
      let sol = Simplex.solve model in
      List.iter
        (fun (f : Instance.flow) ->
          let fid = f.Instance.fid in
          if ctx.Scen_lp.l.(fid) >= 0 then begin
            Lp_model.set_obj model ctx.Scen_lp.l.(fid) 0.;
            match sol.Simplex.status with
            | Simplex.Optimal ->
                let v = sol.Simplex.x.(ctx.Scen_lp.l.(fid)) in
                results := (fid, v) :: !results;
                (* pin the achieved loss so lower classes cannot
                   cannibalize this class's allocation *)
                Lp_model.set_bounds model ctx.Scen_lp.l.(fid)
                  ~lb:(Lp_model.lb model ctx.Scen_lp.l.(fid))
                  ~ub:(Float.min 1. (v +. 1e-9))
            | _ -> results := (fid, 1.) :: !results
          end
          else
            results :=
              (fid, if f.Instance.demand <= 0. then 0. else 1.) :: !results)
        class_flows;
      (* SWAN pins the class's routing before the next class *)
      match sol.Simplex.status with
      | Simplex.Optimal ->
          Array.iter
            (fun per_pair ->
              Array.iter
                (fun v ->
                  if v >= 0 then
                    Lp_model.set_bounds model v ~lb:sol.Simplex.x.(v)
                      ~ub:sol.Simplex.x.(v))
                per_pair)
            ctx.Scen_lp.x.(k)
      | _ -> ())
    (class_order inst);
  !results

let run_throughput ?jobs inst =
  Scenario_engine.sweep_losses ?jobs inst ~f:(throughput_scenario inst)
