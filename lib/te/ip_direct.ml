module Lp_model = Flexile_lp.Lp_model
module Mip = Flexile_lp.Mip
module Graph = Flexile_net.Graph
module Failure_model = Flexile_failure.Failure_model
module Trace = Flexile_util.Trace

type result = {
  losses : Instance.losses;
  penalty : float;
  bound : float;
  optimal : bool;
  wall_time : float;
}

let solve ?(options = { Flexile_lp.Mip.default_options with node_limit = 2000; time_limit = 3600. })
    ?jobs inst =
  let t0 = Trace.now_s () in
  let g = inst.Instance.graph in
  let nk = Array.length inst.Instance.classes in
  let np = Array.length inst.Instance.pairs in
  let nq = Instance.nscenarios inst in
  let nf = Instance.nflows inst in
  let model = Lp_model.create ~name:"flexile-ip" () in
  let alphas =
    Array.map
      (fun (c : Instance.cls) ->
        Lp_model.add_var model ~ub:1. ~obj:c.Instance.weight ())
      inst.Instance.classes
  in
  let lv = Array.make_matrix nf nq (-1) in
  let zv = Array.make_matrix nf nq (-1) in
  let binaries = ref [] in
  for q = 0 to nq - 1 do
    (* per-scenario routing on alive tunnels *)
    let x =
      Array.init nk (fun k ->
          Array.init np (fun i ->
              let ts = inst.Instance.tunnels.(k).(i) in
              let vars = Array.make (Array.length ts) (-1) in
              Array.iter
                (fun ti -> vars.(ti) <- Lp_model.add_var model ())
                inst.Instance.alive_tunnels.(q).(k).(i);
              vars))
    in
    let per_edge = Array.make (Graph.nedges g) [] in
    for k = 0 to nk - 1 do
      for i = 0 to np - 1 do
        Array.iteri
          (fun ti (t : Flexile_net.Tunnels.t) ->
            let v = x.(k).(i).(ti) in
            if v >= 0 then
              Array.iter
                (fun e -> per_edge.(e) <- (v, 1.) :: per_edge.(e))
                t.Flexile_net.Tunnels.path)
          inst.Instance.tunnels.(k).(i)
      done
    done;
    Array.iteri
      (fun e coeffs ->
        if coeffs <> [] then
          ignore
            (Lp_model.add_row model Lp_model.Le
               (Instance.edge_capacity inst ~sid:q e)
               coeffs))
      per_edge;
    Array.iter
      (fun (f : Instance.flow) ->
        if f.Instance.demand > 0. then begin
          let fid = f.Instance.fid in
          let connected = Instance.flow_connected inst f q in
          let dq = Instance.demand_in inst f q in
          (* tiny loss objective: see Flexile_offline.build_template *)
          let l =
            if dq <= 0. then Lp_model.add_var model ~ub:0. ()
            else
              Lp_model.add_var model
                ~lb:(if connected then 0. else 1.)
                ~ub:1.
                ~obj:(1e-3 /. float_of_int (max 1 (nf * nq)))
                ()
          in
          lv.(fid).(q) <- l;
          if connected && dq > 0. then begin
            let coeffs =
              (l, dq)
              :: (Array.to_list inst.Instance.alive_tunnels.(q).(f.Instance.cls).(f.Instance.pair)
                 |> List.map (fun ti ->
                        (x.(f.Instance.cls).(f.Instance.pair).(ti), 1.)))
            in
            ignore (Lp_model.add_row model Lp_model.Ge dq coeffs);
            (* z only where it can be 1 *)
            let z = Lp_model.add_var model ~ub:1. () in
            zv.(fid).(q) <- z;
            binaries := z :: !binaries;
            (* alpha_k >= l - 1 + z *)
            ignore
              (Lp_model.add_row model Lp_model.Ge (-1.)
                 [ (alphas.(f.Instance.cls), 1.); (l, -1.); (z, -1.) ])
          end
        end)
      inst.Instance.flows
  done;
  (* coverage (3) *)
  Array.iter
    (fun (f : Instance.flow) ->
      if f.Instance.demand > 0. then begin
        let fid = f.Instance.fid in
        let coeffs =
          List.filter_map
            (fun q ->
              if zv.(fid).(q) >= 0 then
                Some (zv.(fid).(q), inst.Instance.scenarios.(q).Failure_model.prob)
              else None)
            (List.init nq (fun q -> q))
        in
        let target =
          Float.min
            inst.Instance.classes.(f.Instance.cls).Instance.beta
            (Instance.connected_mass inst f)
          -. 1e-9
        in
        if coeffs <> [] then
          ignore (Lp_model.add_row model Lp_model.Ge target coeffs)
      end)
    inst.Instance.flows;
  let r = Mip.solve ~options ~binaries:(Array.of_list !binaries) model in
  let losses =
    match r.Mip.status with
    | Mip.Optimal | Mip.Feasible ->
        Scenario_engine.sweep_losses ?jobs inst ~f:(fun q ->
            Array.to_list inst.Instance.flows
            |> List.filter_map (fun (f : Instance.flow) ->
                   let fid = f.Instance.fid in
                   if f.Instance.demand <= 0. || lv.(fid).(q) < 0 then None
                   else Some (fid, r.Mip.x.(lv.(fid).(q)))))
    | _ -> Instance.alloc_losses inst
  in
  {
    losses;
    penalty =
      (match r.Mip.status with
      | Mip.Optimal | Mip.Feasible -> r.Mip.obj
      | _ -> infinity);
    bound = r.Mip.bound;
    optimal = r.Mip.status = Mip.Optimal;
    wall_time = Trace.now_s () -. t0;
  }
