(** The exact MIP formulation (I) of §4.1, solved directly by
    branch-and-bound.  This is the paper's "IP" scheme: it yields the
    true optimal PercLoss but is only tractable on smaller instances
    (the paper reports >1h for its largest topologies; here it is used
    for the optimality-gap and solving-time experiments, Figs 14/15). *)

type result = {
  losses : Instance.losses;
  penalty : float;  (** optimal (or best incumbent) weighted PercLoss *)
  bound : float;  (** proven lower bound *)
  optimal : bool;
  wall_time : float;
}

val solve : ?options:Flexile_lp.Mip.options -> ?jobs:int -> Instance.t -> result
(** [jobs] parallelizes the post-analysis loss sweep (0 = auto). *)
