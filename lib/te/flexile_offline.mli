(** Flexile's offline phase (§4.2): choose the critical failure
    scenarios of every flow so that the weighted sum of per-class
    percentile losses (PercLoss) is minimized.

    Implements Algorithm 1 with the paper's accelerations:
    - the problem is decomposed into a master MIP proposing critical
      scenarios and one small LP subproblem per scenario;
    - subproblems use the RHS-only reformulation (17)-(18), so a single
      simplex instance is warm-restarted across scenarios with the dual
      simplex, and one scenario's dual solution yields valid cuts for
      every other scenario (cut sharing, eq. (22));
    - perfect scenarios (all flows served losslessly) and scenarios
      whose critical-flow set did not change are pruned;
    - a Hamming-distance constraint (23) stabilizes the master;
    - the starting point sets a flow's critical scenarios to all
      scenarios in which it is connected, which already guarantees a
      solution at least as good as TeaVar or ScenBest (Proposition 1). *)

type config = {
  max_iterations : int;  (** outer iterations; the paper uses 5 *)
  hamming_limit : int option;
      (** max flips of z per iteration; [None] disables (23) *)
  gamma : float option;
      (** §4.4: bound every flow's loss in scenario q by
          [gamma + optimal ScenLoss of q] *)
  share_cuts : bool;  (** generate cuts (22) for unsolved scenarios *)
  prune : bool;
      (** prune perfect and unchanged scenarios (§4.2); disable only
          for ablation studies *)
  warm_start : bool;
      (** dual-simplex warm restarts across scenarios (§4.2); disable
          only for ablation studies *)
  jobs : int;
      (** worker domains for the subproblem sweep (via
          {!Scenario_engine}); [0] = auto ([FLEXILE_JOBS] or one per
          core).  Warm restarts stay shard-local; with the default cold
          solves the result is bit-identical for every job count *)
  master : Flexile_lp.Mip.options;
}

val default_config : config

type iterate = {
  iteration : int;  (** 0 is the connectivity starting point *)
  z : bool array array;  (** criticality: flow id x scenario id *)
  losses : Instance.losses;
      (** losses of the subproblems' routing under this z — an
          achievable routing, so the penalty is a true upper bound *)
  penalty : float;  (** achieved weighted PercLoss of this iterate *)
}

type result = {
  iterates : iterate list;  (** chronological, starting point first *)
  best : iterate;  (** lowest achieved penalty *)
  lower_bound : float;  (** best master bound (valid if master exact) *)
  subproblems_solved : int;
  wall_time : float;
}

val solve : ?config:config -> Instance.t -> result

val selfcheck_subproblems : ?jobs:int -> Instance.t -> (int * float * float) list
(** Regression harness: solve every scenario's subproblem (all
    connected flows critical) both via the warm dual-simplex path used
    by {!solve} and via a cold solve; returns [(sid, warm, cold)] for
    scenarios whose objectives disagree beyond tolerance.  Empty on a
    healthy solver.  With [jobs > 1] the sweep runs domain-parallel,
    each shard warm-restarting its own simplex — asserting that the
    parallel path agrees with independent cold solves scenario by
    scenario. *)

val trace_summary : unit -> (string * float) list
(** Derived observability metrics of the most recent run(s), read from
    the {!Flexile_util.Trace} registry: warm-start attempts and hit
    rate, cuts generated/shared, scenarios pruned, subproblems solved,
    per-phase wall time.  All zero when tracing is disabled. *)

val trace_json : unit -> string
(** [{"derived": {..}, "report": <Trace.to_json ()>}] — the structured
    trace section embedded by [bench --json] and written by
    [flexile --trace OUT.json]. *)
