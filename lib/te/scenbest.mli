(** ScenBest (§2): re-route optimally in every failure scenario.

    With a single traffic class and the MLU metric this is exactly
    SMORE's failure recovery (optimal splitting over the live tunnels).
    After minimizing the worst connected flow's loss, remaining freedom
    is resolved by max-min on flow loss, so per-flow losses vary (the
    flow-level CDFs of Fig. 5 are over these).  Disconnected flows get
    loss 1 in the scenario.

    All entry points sweep scenarios through {!Scenario_engine};
    [jobs = 0] (the default) means auto ([FLEXILE_JOBS] or one worker
    per core), and results are identical for every job count. *)

val run : ?jobs:int -> Instance.t -> Instance.losses
(** Single-class ScenBest / SMORE: ignores class boundaries (treats
    all flows uniformly), which is how the paper uses SMORE. *)

val run_multi : ?jobs:int -> Instance.t -> Instance.losses
(** ScenBest-Multi (§6.3): classes in priority order, each receiving a
    scenario-optimal max-min allocation; the routing of higher classes
    is re-optimized jointly with lower classes. *)

val scen_loss_optimal : ?jobs:int -> Instance.t -> float array
(** Per-scenario optimal ScenLoss (worst connected flow loss, all
    classes together): the baseline of Fig. 6, also used by the
    gamma-bounded Flexile variant of §4.4. *)
