(** The two SWAN variants of §6.

    Both serve traffic classes in strict priority order and, unlike
    ScenBest-Multi and Flexile, pin the routing of a class before
    allocating residual capacity to lower classes.

    - SWAN-Throughput maximizes each class's delivered volume, which
      can starve long flows entirely (the A-B-C example of §6.2);
    - SWAN-Maxmin approximates max-min fairness within each class.

    Scenarios are swept through {!Scenario_engine}; [jobs = 0] (the
    default) means auto, and results are identical for any job count. *)

val run_throughput : ?jobs:int -> Instance.t -> Instance.losses
val run_maxmin : ?jobs:int -> Instance.t -> Instance.losses
