(** Forward Fault Correction (FFC, SIGCOMM'14), the congestion-free
    baseline of the paper's §2.

    FFC plans offline for *all* scenarios with up to [k] simultaneous
    link failures: it grants each flow a bandwidth [b_f <= d_f] and a
    static tunnel allocation such that after any [k] links fail, the
    flow's surviving tunnel allocations still cover [b_f] (traffic is
    proportionally rescaled onto live tunnels, never exceeding their
    reserved allocation, so the network stays congestion-free).  The
    robust constraint "b_f <= allocation minus the k largest tunnel
    terms" is dualized into the standard LP.

    The paper's critique — which this implementation lets you measure —
    is that designing for a failure *count* instead of failure
    *probabilities* is very conservative: on the Fig-1 triangle, FFC
    with k = 1 grants each flow only 0.5 units even though each could
    be served fully 99% of the time. *)

type result = {
  losses : Instance.losses;  (** post-analysis over the instance's scenarios *)
  granted : float array;  (** per flow: the guaranteed bandwidth b_f *)
  allocation : float array array;  (** pair -> tunnel -> reserved bandwidth *)
}

val run : ?k:int -> ?jobs:int -> Instance.t -> result
(** [k] defaults to 1 (single-link-failure protection; supported up to
    2, by explicit enumeration over the flow's own tunnel links).
    Single traffic class, like the paper's FFC discussion.  Maximizes
    the concurrent scale [s] with [b_f = s * d_f], then evaluates
    losses in every sampled scenario
    ([loss = 1 - min(b_f, surviving allocation) / d_f]). *)
