module Lp_model = Flexile_lp.Lp_model
module Simplex = Flexile_lp.Simplex
module Mip = Flexile_lp.Mip
module Graph = Flexile_net.Graph
module Failure_model = Flexile_failure.Failure_model

let src = Logs.Src.create "flexile.offline" ~doc:"Flexile offline phase"

module Log = (val Logs.src_log src : Logs.LOG)

module Parallel = Flexile_util.Parallel
module Trace = Flexile_util.Trace

(* Observability: counters mirror the paper-facing accounting of
   Algorithm 1 (shared-cut and pruning accelerations of §4.3), timers
   split each iteration into its subproblem-sweep and master phases. *)
let c_subs = Trace.counter "flexile.subproblems_solved"
let c_cuts_gen = Trace.counter "flexile.cuts_generated"
let c_cuts_shared = Trace.counter "flexile.cuts_shared"
let c_pruned = Trace.counter "flexile.scenarios_pruned"
let c_flips = Trace.counter "flexile.hamming_flips"
let c_iters = Trace.counter "flexile.iterations"
let c_masters = Trace.counter "flexile.master_solves"
let t_sweep = Trace.timer "flexile.subproblem_sweep"
let t_master = Trace.timer "flexile.master"
let p_iteration = Trace.probe "flexile.iteration"

(* Hierarchical spans (Trace.in_span): the offline phase's span tree is
   offline > iteration[k] > {pruning, subproblem-sweep > scenario[i] >
   simplex, cut-sharing, master}; worker-side scenario spans root under
   parallel.shard on their own domain's track. *)
let sp_offline = Trace.span "offline"
let sp_iteration = Trace.span "offline.iteration"
let sp_pruning = Trace.span "offline.pruning"
let sp_sweep = Trace.span "offline.subproblem-sweep"
let sp_scenario = Trace.span "offline.scenario"
let sp_cut_sharing = Trace.span "offline.cut-sharing"
let sp_master = Trace.span "offline.master"

type config = {
  max_iterations : int;
  hamming_limit : int option;
  gamma : float option;
  share_cuts : bool;
  prune : bool;
  warm_start : bool;
  jobs : int;
  master : Mip.options;
}

let default_config =
  {
    max_iterations = 5;
    hamming_limit = None;
    gamma = None;
    share_cuts = true;
    prune = true;
    (* The paper's warm-start acceleration targets Gurobi, where dual
       restarts amortize factorization.  With this repository's
       simplex (incremental pricing, dense inverse) a cold primal
       solve is ~30x faster than a dual restart between dissimilar
       scenarios — the `--fig ablation` bench measures exactly this —
       so cold solves are the default.  The RHS-only reformulation
       still matters: it is what makes cut sharing (22) valid. *)
    warm_start = false;
    (* 0 = auto: FLEXILE_JOBS or one worker domain per core.  The
       subproblem sweep shards scenarios over the Parallel pool; with
       the default cold solves the result is bit-identical to jobs=1. *)
    jobs = 0;
    master = { Mip.default_options with node_limit = 400; time_limit = 30. };
  }

type iterate = {
  iteration : int;
  z : bool array array;
  losses : Instance.losses;
  penalty : float;
}

type result = {
  iterates : iterate list;
  best : iterate;
  lower_bound : float;
  subproblems_solved : int;
  wall_time : float;
}

(* A Benders cut: Penalty >= const(q') + sum_f coef_f * z_{f,q'},
   where const depends on the target scenario only through the
   capacity (and gamma) right-hand sides. *)
type dual_info = {
  coef : (int * float) array;  (** (fid, dual of the criticality row) *)
  fixed : float;  (** bound term + demand-row contribution *)
  cap_duals : (int * float) array;  (** (edge, dual of its capacity row) *)
  gamma_duals : (int * float) array;  (** (fid, dual of its gamma row) *)
}

type cut = { target : int; coef : (int * float) array; const : float }

(* ------------------------------------------------------------------ *)
(* Subproblem template: one model whose RHS is specialized per scenario *)
(* ------------------------------------------------------------------ *)

type template = {
  model : Lp_model.t;
  st : Simplex.t;
  l_var : int array;  (** fid -> loss var or -1 *)
  crit_row : int array;  (** fid -> criticality row or -1 *)
  gamma_row : int array;  (** fid -> gamma row or -1 *)
  cap_row : int array;  (** edge -> capacity row or -1 *)
  demand_contrib : int array;  (** fid -> demand row or -1 *)
  base_rhs : float array;
}

(* [sid]: specialize the template to one scenario's traffic matrix
   (§4.4 demand scenarios); without it the template is shared across
   scenarios and only the RHS varies. *)
let build_template ?sid inst ~with_gamma =
  let g = inst.Instance.graph in
  let nk = Array.length inst.Instance.classes in
  let np = Array.length inst.Instance.pairs in
  let nf = Instance.nflows inst in
  let model = Lp_model.create ~name:"flexile-sub" () in
  let alphas =
    Array.map
      (fun (c : Instance.cls) ->
        Lp_model.add_var model ~ub:1. ~obj:c.Instance.weight ())
      inst.Instance.classes
  in
  (* x over ALL tunnels: failed tunnels are killed by zeroed capacity *)
  let x =
    Array.init nk (fun k ->
        Array.init np (fun i ->
            Array.map
              (fun _ -> Lp_model.add_var model ())
              inst.Instance.tunnels.(k).(i)))
  in
  let l_var = Array.make nf (-1) in
  let crit_row = Array.make nf (-1) in
  let gamma_row = Array.make nf (-1) in
  let demand_contrib = Array.make nf (-1) in
  (* tiny secondary objective on losses: ties in alpha are broken
     toward serving every flow, so the subproblem's loss matrix is a
     meaningful achievable outcome (and a sane cap for the online
     phase), at the price of distorting the master bound by <= ~1e-3 *)
  let eps = 1e-3 /. float_of_int (max 1 nf) in
  Array.iter
    (fun (f : Instance.flow) ->
      if f.Instance.demand > 0. then begin
        let fid = f.Instance.fid in
        let demand =
          match sid with
          | Some s -> Instance.demand_in inst f s
          | None -> f.Instance.demand
        in
        let lv = Lp_model.add_var model ~ub:1. ~obj:eps () in
        l_var.(fid) <- lv;
        if demand > 0. then begin
          let coeffs =
            (lv, demand)
            :: Array.to_list
                 (Array.mapi
                    (fun ti _ -> (x.(f.Instance.cls).(f.Instance.pair).(ti), 1.))
                    inst.Instance.tunnels.(f.Instance.cls).(f.Instance.pair))
          in
          demand_contrib.(fid) <-
            Lp_model.add_row model Lp_model.Ge demand coeffs
        end;
        crit_row.(fid) <-
          Lp_model.add_row model Lp_model.Ge (-1.)
            [ (alphas.(f.Instance.cls), 1.); (lv, -1.) ];
        if with_gamma then
          (* l_f <= gamma + scenloss_q; rhs set per scenario *)
          gamma_row.(fid) <- Lp_model.add_row model Lp_model.Le 2. [ (lv, 1.) ]
      end)
    inst.Instance.flows;
  let per_edge = Array.make (Graph.nedges g) [] in
  for k = 0 to nk - 1 do
    for i = 0 to np - 1 do
      Array.iteri
        (fun ti (t : Flexile_net.Tunnels.t) ->
          Array.iter
            (fun e -> per_edge.(e) <- (x.(k).(i).(ti), 1.) :: per_edge.(e))
            t.Flexile_net.Tunnels.path)
        inst.Instance.tunnels.(k).(i)
    done
  done;
  let cap_row = Array.make (Graph.nedges g) (-1) in
  Array.iteri
    (fun e coeffs ->
      if coeffs <> [] then
        cap_row.(e) <-
          Lp_model.add_row model Lp_model.Le g.Graph.edges.(e).Graph.capacity
            coeffs)
    per_edge;
  let base_rhs =
    Array.init (Lp_model.nrows model) (fun r -> Lp_model.rhs model r)
  in
  {
    model;
    st = Simplex.make model;
    l_var;
    crit_row;
    gamma_row;
    cap_row;
    demand_contrib;
    base_rhs;
  }

let scenario_rhs inst tpl ~sid ~z ~scen_loss_opt ~gamma =
  let rhs = Array.copy tpl.base_rhs in
  Array.iteri
    (fun e row ->
      if row >= 0 then rhs.(row) <- Instance.edge_capacity inst ~sid e)
    tpl.cap_row;
  Array.iter
    (fun (f : Instance.flow) ->
      let fid = f.Instance.fid in
      if tpl.crit_row.(fid) >= 0 then
        rhs.(tpl.crit_row.(fid)) <- (if z.(fid).(sid) then 0. else -1.);
      if tpl.gamma_row.(fid) >= 0 then
        rhs.(tpl.gamma_row.(fid)) <-
          (match gamma with
          | Some gm when Instance.flow_connected inst f sid ->
              Float.min 1. (gm +. scen_loss_opt.(sid))
          | _ -> 2.))
    inst.Instance.flows;
  rhs

(* Extract the dual information needed for cuts (21)/(22). *)
let extract_dual inst tpl (sol : Simplex.solution) rhs =
  let y = sol.Simplex.row_duals in
  let coef = ref [] and gamma_duals = ref [] in
  let fixed = ref sol.Simplex.bound_term in
  Array.iter
    (fun (f : Instance.flow) ->
      let fid = f.Instance.fid in
      if tpl.crit_row.(fid) >= 0 then begin
        let d = y.(tpl.crit_row.(fid)) in
        if Float.abs d > 1e-10 then coef := (fid, d) :: !coef
      end;
      if tpl.demand_contrib.(fid) >= 0 then
        fixed := !fixed +. (y.(tpl.demand_contrib.(fid)) *. rhs.(tpl.demand_contrib.(fid)));
      if tpl.gamma_row.(fid) >= 0 then begin
        let d = y.(tpl.gamma_row.(fid)) in
        if Float.abs d > 1e-10 then gamma_duals := (fid, d) :: !gamma_duals
      end)
    inst.Instance.flows;
  let cap_duals = ref [] in
  Array.iteri
    (fun e row ->
      if row >= 0 && Float.abs y.(row) > 1e-10 then
        cap_duals := (e, y.(row)) :: !cap_duals)
    tpl.cap_row;
  {
    coef = Array.of_list !coef;
    fixed = !fixed;
    cap_duals = Array.of_list !cap_duals;
    gamma_duals = Array.of_list !gamma_duals;
  }

(* Instantiate a dual certificate as a cut for a target scenario. *)
let cut_for inst di ~target ~scen_loss_opt ~gamma =
  let const = ref di.fixed in
  Array.iter
    (fun (e, d) ->
      let cap = Instance.edge_capacity inst ~sid:target e in
      const := !const +. (d *. cap))
    di.cap_duals;
  Array.iter
    (fun (fid, d) ->
      let f = inst.Instance.flows.(fid) in
      let bound =
        match gamma with
        | Some gm when Instance.flow_connected inst f target ->
            Float.min 1. (gm +. scen_loss_opt.(target))
        | _ -> 2.
      in
      const := !const +. (d *. bound))
    di.gamma_duals;
  (* criticality rows contribute d * (z - 1) *)
  Array.iter (fun (_, d) -> const := !const -. d) di.coef;
  { target; coef = di.coef; const = !const }

(* ------------------------------------------------------------------ *)
(* Master problem                                                      *)
(* ------------------------------------------------------------------ *)

(* z variables exist only for (flow, scenario) pairs where the flow is
   connected, has demand, the scenario is not perfect, AND the pair
   carries a nonzero coefficient in some cut.  Everywhere else being
   critical is free under every cut learned so far, so z is fixed to 1
   and folded into the coverage RHS.  Perfect-scenario elimination plus
   this cut-support restriction is what keeps the master tiny even for
   two-class instances with tens of thousands of (flow, scenario)
   combinations. *)
let solve_master inst ~config ~cuts ~z_prev ~coverage_target ~perfect =
  let nf = Instance.nflows inst and nq = Instance.nscenarios inst in
  let in_cuts = Hashtbl.create 256 in
  List.iter
    (fun c ->
      Array.iter
        (fun (fid, d) ->
          if Float.abs d > 1e-10 then Hashtbl.replace in_cuts (fid, c.target) ())
        c.coef)
    cuts;
  let model = Lp_model.create ~name:"flexile-master" () in
  let wsum =
    Array.fold_left
      (fun a (c : Instance.cls) -> a +. c.Instance.weight)
      0. inst.Instance.classes
  in
  (* headroom above wsum: subproblem objectives include the tiny
     loss-refinement term, so cuts can slightly exceed the pure
     penalty range *)
  let penalty = Lp_model.add_var model ~ub:(wsum +. 0.01) ~obj:1. () in
  let zv = Array.make_matrix nf nq (-1) in
  let binaries = ref [] in
  Array.iter
    (fun (f : Instance.flow) ->
      if f.Instance.demand > 0. then begin
        let fid = f.Instance.fid in
        let fixed_mass = ref 0. in
        for q = 0 to nq - 1 do
          if Instance.flow_connected inst f q then
            if perfect.(q) || not (Hashtbl.mem in_cuts (fid, q)) then
              fixed_mass :=
                !fixed_mass +. inst.Instance.scenarios.(q).Failure_model.prob
            else begin
              (* minuscule reward for keeping scenarios critical: the
                 master should never drop a scenario gratuitously
                 (robustness to probability estimation error, §4.4) *)
              zv.(fid).(q) <-
                Lp_model.add_var model ~ub:1.
                  ~obj:(-1e-7 *. inst.Instance.scenarios.(q).Failure_model.prob)
                  ();
              binaries := zv.(fid).(q) :: !binaries
            end
        done;
        let coeffs =
          List.filter_map
            (fun q ->
              if zv.(fid).(q) >= 0 then
                Some
                  ( zv.(fid).(q),
                    inst.Instance.scenarios.(q).Failure_model.prob )
              else None)
            (List.init nq (fun q -> q))
        in
        let rhs = coverage_target.(fid) -. !fixed_mass in
        if coeffs <> [] then ignore (Lp_model.add_row model Lp_model.Ge rhs coeffs)
      end)
    inst.Instance.flows;
  List.iter
    (fun c ->
      let coeffs =
        (penalty, 1.)
        :: (Array.to_list c.coef
           |> List.filter_map (fun (fid, d) ->
                  if zv.(fid).(c.target) >= 0 then
                    Some (zv.(fid).(c.target), -.d)
                  else None))
      in
      (* account for z fixed to 0 (disconnected): those terms vanish *)
      ignore (Lp_model.add_row model Lp_model.Ge c.const coeffs))
    cuts;
  (match config.hamming_limit with
  | None -> ()
  | Some limit ->
      let coeffs = ref [] and ones = ref 0 in
      Array.iter
        (fun (f : Instance.flow) ->
          let fid = f.Instance.fid in
          for q = 0 to nq - 1 do
            if zv.(fid).(q) >= 0 then
              if z_prev.(fid).(q) then begin
                incr ones;
                coeffs := (zv.(fid).(q), -1.) :: !coeffs
              end
              else coeffs := (zv.(fid).(q), 1.) :: !coeffs
          done)
        inst.Instance.flows;
      ignore
        (Lp_model.add_row model Lp_model.Le
           (float_of_int (limit - !ones))
           !coeffs));
  (* Rounding heuristic: round the LP relaxation, repair per-flow
     coverage greedily, then locally improve by turning off the
     costliest critical flags in the scenarios driving the max cut.
     Respects the Hamming budget when one is configured. *)
  let prob q = inst.Instance.scenarios.(q).Failure_model.prob in
  let eval_z z =
    List.fold_left
      (fun acc c ->
        let v =
          Array.fold_left
            (fun a (fid, d) -> if z.(fid).(c.target) then a +. d else a)
            c.const c.coef
        in
        Float.max acc v)
      0. cuts
  in
  let coverage_of z fid =
    let mass = ref 0. in
    for q = 0 to nq - 1 do
      (* perfect scenarios are implicitly critical *)
      if z.(fid).(q) || (perfect.(q) && z_prev.(fid).(q)) then
        mass := !mass +. prob q
    done;
    !mass
  in
  let hamming_ok z =
    match config.hamming_limit with
    | None -> true
    | Some limit ->
        let dist = ref 0 in
        Array.iteri
          (fun fid row ->
            Array.iteri
              (fun q v -> if v >= 0 && z.(fid).(q) <> z_prev.(fid).(q) then incr dist)
              row)
          zv;
        !dist <= limit
  in
  let finish z =
    if not (hamming_ok z) then None
    else begin
      let cand = Array.make (Lp_model.nvars model) 0. in
      cand.(penalty) <- eval_z z;
      Array.iteri
        (fun fid row ->
          Array.iteri (fun q v -> if v >= 0 && z.(fid).(q) then cand.(v) <- 1.) row)
        zv;
      Some cand
    end
  in
  let heuristic lp_x =
    let z = Array.map Array.copy z_prev in
    (* LP-guided rounding on the master's variables *)
    Array.iteri
      (fun fid row ->
        Array.iteri (fun q v -> if v >= 0 then z.(fid).(q) <- lp_x.(v) >= 0.5) row)
      zv;
    (* coverage repair: re-add the scenarios with the best mass, highest
       fractional value first *)
    Array.iter
      (fun (f : Instance.flow) ->
        if f.Instance.demand > 0. then begin
          let fid = f.Instance.fid in
          let mass = ref (coverage_of z fid) in
          if !mass < coverage_target.(fid) then begin
            let key q = (lp_x.(zv.(fid).(q)), prob q) in
            let candidates =
              List.init nq (fun q -> q)
              |> List.filter (fun q -> zv.(fid).(q) >= 0 && not z.(fid).(q))
              |> List.sort (fun a b -> compare (key b) (key a))
            in
            List.iter
              (fun q ->
                if !mass < coverage_target.(fid) then begin
                  z.(fid).(q) <- true;
                  mass := !mass +. prob q
                end)
              candidates
          end
        end)
      inst.Instance.flows;
    (* local improvement: drop the heaviest on-flag of a max-achieving
       cut while the flow's coverage allows it *)
    let continue_ = ref true in
    let steps = ref 0 in
    while !continue_ && !steps < 2 * nq do
      incr steps;
      continue_ := false;
      let cur = eval_z z in
      if cur > 1e-9 then begin
        let best = ref None in
        List.iter
          (fun c ->
            let v =
              Array.fold_left
                (fun a (fid, d) -> if z.(fid).(c.target) then a +. d else a)
                c.const c.coef
            in
            if Float.abs (v -. cur) < 1e-12 then
              Array.iter
                (fun (fid, d) ->
                  if
                    z.(fid).(c.target) && d > 1e-9
                    && coverage_of z fid -. prob c.target
                       >= coverage_target.(fid) -. 1e-12
                  then
                    match !best with
                    | Some (_, _, d') when d' >= d -> ()
                    | _ -> best := Some (fid, c.target, d))
                c.coef)
          cuts;
        match !best with
        | Some (fid, q, _) ->
            z.(fid).(q) <- false;
            if eval_z z < cur -. 1e-12 then continue_ := true
            else z.(fid).(q) <- true
        | None -> ()
      end
    done;
    finish z
  in
  let r =
    Mip.solve ~options:config.master ~heuristic
      ~binaries:(Array.of_list !binaries) model
  in
  match r.Mip.status with
  | Mip.Optimal | Mip.Feasible ->
      let z = Array.make_matrix nf nq false in
      Array.iter
        (fun (f : Instance.flow) ->
          let fid = f.Instance.fid in
          if f.Instance.demand > 0. then
            for q = 0 to nq - 1 do
              if zv.(fid).(q) >= 0 then z.(fid).(q) <- r.Mip.x.(zv.(fid).(q)) > 0.5
              else if Instance.flow_connected inst f q then
                (* fixed critical: perfect scenario or no cut mentions it *)
                z.(fid).(q) <- true
            done)
        inst.Instance.flows;
      Some (z, r.Mip.bound)
  | Mip.Infeasible | Mip.Limit -> None

let selfcheck_subproblems ?jobs inst =
  let nf = Instance.nflows inst and nq = Instance.nscenarios inst in
  let scen_loss_opt = Array.make nq 0. in
  let z =
    Array.init nf (fun fid ->
        let f = inst.Instance.flows.(fid) in
        Array.init nq (fun q ->
            f.Instance.demand > 0. && Instance.flow_connected inst f q))
  in
  (* each worker shard owns a template: the warm dual-simplex restarts
     stay shard-local, and every shard's warm objectives must still
     agree with an independent cold solve — this is exactly the
     parallel ≡ sequential contract of the scenario engine *)
  let results =
    Scenario_engine.sweep ?jobs inst
      ~init:(fun _ -> build_template inst ~with_gamma:false)
      ~f:(fun tpl sid ->
        let rhs = scenario_rhs inst tpl ~sid ~z ~scen_loss_opt ~gamma:None in
        let warm = Simplex.resolve_rhs tpl.st rhs in
        Array.iteri (fun r v -> Lp_model.set_rhs tpl.model r v) rhs;
        let cold = Simplex.solve tpl.model in
        let agree =
          match (warm.Simplex.status, cold.Simplex.status) with
          | Simplex.Optimal, Simplex.Optimal ->
              Float.abs (warm.Simplex.obj -. cold.Simplex.obj)
              <= 1e-5 *. (1. +. Float.abs cold.Simplex.obj)
          | a, b -> a = b
        in
        (agree, warm.Simplex.obj, cold.Simplex.obj))
  in
  let bad = ref [] in
  Array.iteri
    (fun sid (agree, warm_obj, cold_obj) ->
      if not agree then bad := (sid, warm_obj, cold_obj) :: !bad)
    results;
  List.rev !bad

(* ------------------------------------------------------------------ *)
(* Main loop (Algorithm 1)                                             *)
(* ------------------------------------------------------------------ *)

let achieved_penalty inst losses = Metrics.total_weighted_penalty inst losses

let solve ?(config = default_config) inst =
  Trace.in_span sp_offline @@ fun () ->
  let t0 = Trace.now_s () in
  let nf = Instance.nflows inst and nq = Instance.nscenarios inst in
  let scen_loss_opt =
    match config.gamma with
    | Some _ -> Scenbest.scen_loss_optimal inst
    | None -> Array.make nq 0.
  in
  let jobs = Parallel.resolve_jobs (Some config.jobs) in
  (* Per-worker-shard subproblem templates, created lazily and kept
     across iterations: each shard owns a Simplex.t, so the paper's
     dual-simplex warm restarts survive within a shard while no solver
     state is ever shared across domains.  Slot [w] is only ever
     touched by the worker holding slot [w] of the current sweep; the
     pool's handoff protocol orders those accesses. *)
  let templates = Array.make jobs None in
  let template_for w =
    match templates.(w) with
    | Some t -> t
    | None ->
        let t = build_template inst ~with_gamma:(config.gamma <> None) in
        templates.(w) <- Some t;
        t
  in
  let coverage_target =
    Array.map
      (fun (f : Instance.flow) ->
        if f.Instance.demand > 0. then
          Float.min
            inst.Instance.classes.(f.Instance.cls).Instance.beta
            (Instance.connected_mass inst f)
          -. 1e-9
        else 0.)
      inst.Instance.flows
  in
  (* starting point: critical wherever connected *)
  let z =
    Array.init nf (fun fid ->
        let f = inst.Instance.flows.(fid) in
        Array.init nq (fun q ->
            f.Instance.demand > 0. && Instance.flow_connected inst f q))
  in
  let losses = Instance.alloc_losses inst in
  Array.iter
    (fun (f : Instance.flow) ->
      if f.Instance.demand <= 0. then
        Array.fill losses.(f.Instance.fid) 0 nq 0.)
    inst.Instance.flows;
  let cuts = ref [] in
  let perfect = Array.make nq false in
  let last_z_col = Array.make nq None in
  let duals_pool = ref [] in
  let subproblems = ref 0 in
  (* with per-scenario traffic matrices the LP's left-hand side varies,
     so warm restarts and cross-scenario cuts do not apply *)
  let has_demand_factors = inst.Instance.demand_factors <> None in
  let share_cuts = config.share_cuts && not has_demand_factors in
  (* Worker-side subproblem solve: reads [z]/[scen_loss_opt] (frozen
     during a sweep) and returns the scenario's loss column plus the
     dual certificate; all bookkeeping mutation happens in the merge
     loop below, in ascending scenario order. *)
  let solve_scenario tpl sid =
    Trace.in_span ~arg:sid sp_scenario @@ fun () ->
    let tpl_q =
      if has_demand_factors then
        build_template ~sid inst ~with_gamma:(config.gamma <> None)
      else tpl
    in
    let rhs =
      scenario_rhs inst tpl_q ~sid ~z ~scen_loss_opt ~gamma:config.gamma
    in
    let sol =
      if config.warm_start && not has_demand_factors then
        Simplex.resolve_rhs tpl_q.st rhs
      else begin
        Array.iteri (fun r v -> Lp_model.set_rhs tpl_q.model r v) rhs;
        Simplex.solve tpl_q.model
      end
    in
    match sol.Simplex.status with
    | Simplex.Optimal ->
        let loss_col =
          Array.to_list inst.Instance.flows
          |> List.filter_map (fun (f : Instance.flow) ->
                 let fid = f.Instance.fid in
                 if tpl_q.l_var.(fid) >= 0 then
                   Some
                     ( fid,
                       Float.max 0.
                         (Float.min 1. sol.Simplex.x.(tpl_q.l_var.(fid))) )
                 else None)
        in
        let di = extract_dual inst tpl_q sol rhs in
        Some (sol.Simplex.obj, loss_col, di)
    | _ -> None
  in
  let iterates = ref [] in
  let stopwatch = ref (Trace.now_s ()) in
  let lap what =
    let now = Trace.now_s () in
    Log.info (fun m -> m "%s took %.2fs" what (now -. !stopwatch));
    stopwatch := now
  in
  let record iteration =
    let it =
      {
        iteration;
        z = Array.map Array.copy z;
        losses = Array.map Array.copy losses;
        penalty = achieved_penalty inst losses;
      }
    in
    iterates := it :: !iterates;
    it
  in
  let master_bound = ref 0. in
  let iteration = ref 0 in
  let stop = ref false in
  while (not !stop) && !iteration < config.max_iterations do
    Trace.in_span ~arg:!iteration sp_iteration @@ fun () ->
    (* --- subproblem sweep: domain-parallel over scenario shards --- *)
    duals_pool := [];
    let cols =
      Trace.in_span sp_pruning (fun () ->
          Array.init nq (fun sid -> Array.init nf (fun fid -> z.(fid).(sid))))
    in
    let keep sid =
      let unchanged =
        config.prune
        && (match last_z_col.(sid) with
           | Some c -> c = cols.(sid)
           | None -> false)
      in
      not ((config.prune && perfect.(sid)) || unchanged)
    in
    Trace.incr c_iters;
    Trace.event p_iteration !iteration;
    let results =
      Trace.in_span sp_sweep (fun () ->
          Trace.with_span t_sweep (fun () ->
              Scenario_engine.sweep_some ~jobs:config.jobs inst ~keep
                ~init:template_for ~f:solve_scenario))
    in
    (* deterministic merge, ascending scenario order: losses, pruning
       state, the cut list and the shared-dual pool come out identical
       to the sequential sweep *)
    Array.iteri
      (fun sid outcome ->
        match outcome with
        | None -> Trace.incr c_pruned
        | Some attempt -> (
            incr subproblems;
            Trace.incr c_subs;
            match attempt with
            | Some (obj, loss_col, di) ->
                last_z_col.(sid) <- Some cols.(sid);
                List.iter
                  (fun (fid, v) -> losses.(fid).(sid) <- v)
                  loss_col;
                if obj <= 1e-9 && !iteration = 0 then perfect.(sid) <- true
                else begin
                  Trace.incr c_cuts_gen;
                  cuts :=
                    cut_for inst di ~target:sid ~scen_loss_opt
                      ~gamma:config.gamma
                    :: !cuts;
                  if List.length !duals_pool < 4 then
                    duals_pool := di :: !duals_pool
                end
            | None ->
                Log.warn (fun m -> m "subproblem %d did not solve" sid)))
      results;
    (* cut sharing: certificates from solved scenarios bound the rest *)
    if share_cuts then
      Trace.in_span sp_cut_sharing (fun () ->
          List.iter
            (fun di ->
              for sid = 0 to nq - 1 do
                if perfect.(sid) then ()
                else begin
                  Trace.incr c_cuts_shared;
                  cuts :=
                    cut_for inst di ~target:sid ~scen_loss_opt
                      ~gamma:config.gamma
                    :: !cuts
                end
              done)
            !duals_pool);
    lap (Printf.sprintf "iteration %d subproblem sweep" !iteration);
    let it = record !iteration in
    Log.info (fun m ->
        m "iteration %d: penalty %.4f (%d cuts)" !iteration it.penalty
          (List.length !cuts));
    incr iteration;
    if !iteration >= config.max_iterations then stop := true
    else begin
      (* keep only the most recent few cuts per target scenario to keep
         the master lean *)
      let kept = Hashtbl.create nq in
      let pruned_cuts =
        List.filter
          (fun c ->
            let n = try Hashtbl.find kept c.target with Not_found -> 0 in
            if n >= 3 then false
            else begin
              Hashtbl.replace kept c.target (n + 1);
              true
            end)
          !cuts
      in
      cuts := pruned_cuts;
      Trace.incr c_masters;
      match
        Trace.in_span sp_master (fun () ->
            Trace.with_span t_master (fun () ->
                solve_master inst ~config ~cuts:pruned_cuts ~z_prev:z
                  ~coverage_target ~perfect))
      with
      | None ->
          Log.warn (fun m -> m "master did not produce a solution; stopping");
          stop := true
      | Some (z_new, bound) ->
          master_bound := Float.max !master_bound bound;
          let flips = ref 0 in
          for fid = 0 to nf - 1 do
            for q = 0 to nq - 1 do
              if z_new.(fid).(q) <> z.(fid).(q) then incr flips
            done;
            Array.blit z_new.(fid) 0 z.(fid) 0 nq
          done;
          Trace.add c_flips !flips;
          let same = ref (!flips = 0) in
          let best_so_far =
            List.fold_left (fun a it -> Float.min a it.penalty) infinity
              !iterates
          in
          if !same || best_so_far <= !master_bound +. 1e-7 then stop := true
    end
  done;
  let iterates = List.rev !iterates in
  let best =
    List.fold_left
      (fun acc it -> if it.penalty < acc.penalty then it else acc)
      (List.hd iterates) iterates
  in
  {
    iterates;
    best;
    lower_bound = !master_bound;
    subproblems_solved = !subproblems;
    wall_time = Trace.now_s () -. t0;
  }

(* ------------------------------------------------------------------ *)
(* Trace export                                                        *)
(* ------------------------------------------------------------------ *)

let trace_summary () =
  let v name = float_of_int (Trace.value_by_name name) in
  let warm_attempts = v "simplex.warm_attempts" in
  let hit_rate =
    if warm_attempts > 0. then v "simplex.warm_hits" /. warm_attempts else 0.
  in
  [
    ("iterations", v "flexile.iterations");
    ("subproblems_solved", v "flexile.subproblems_solved");
    ("scenarios_pruned", v "flexile.scenarios_pruned");
    ("cuts_generated", v "flexile.cuts_generated");
    ("cuts_shared", v "flexile.cuts_shared");
    ("hamming_flips", v "flexile.hamming_flips");
    ("master_solves", v "flexile.master_solves");
    ("warm_start_attempts", warm_attempts);
    ("warm_start_hit_rate", hit_rate);
    ( "subproblem_sweep_seconds",
      Trace.timer_seconds_by_name "flexile.subproblem_sweep" );
    ("master_seconds", Trace.timer_seconds_by_name "flexile.master");
  ]

(* Full-registry dump: [report] carries every module's metrics
   (Simplex, Parallel, Scenario_engine, per-scheme timers, GC
   counters), not just this module's, and [span_tree] the hierarchical
   profile. *)
let trace_json () =
  Flexile_util.Trace_export.report_json ~derived:(trace_summary ()) ()
