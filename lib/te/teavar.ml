module Lp_model = Flexile_lp.Lp_model
module Simplex = Flexile_lp.Simplex
module Row_gen = Flexile_lp.Row_gen
module Graph = Flexile_net.Graph

type result = {
  losses : Instance.losses;
  cvar : float;
  allocation : float array array;
  rounds : int;
}

(* Deliverable volume of pair [i] in scenario [sid] under static
   allocation [x]: the sum of live-tunnel allocations (proportional
   rescaling of dead tunnels' traffic onto live ones). *)
let delivered inst x ~cls ~pair ~sid xval =
  Array.fold_left
    (fun acc ti -> acc +. xval x.(cls).(pair).(ti))
    0.
    inst.Instance.alive_tunnels.(sid).(cls).(pair)

let run ?beta ?jobs inst =
  if Array.length inst.Instance.classes <> 1 then
    invalid_arg "Teavar.run: single traffic class only";
  if inst.Instance.demand_factors <> None then
    invalid_arg "Teavar.run: per-scenario traffic matrices not supported";
  let beta =
    match beta with
    | Some b -> b
    | None -> inst.Instance.classes.(0).Instance.beta
  in
  let g = inst.Instance.graph in
  let np = Array.length inst.Instance.pairs in
  let nq = Instance.nscenarios inst in
  let model = Lp_model.create ~name:"teavar" () in
  let alpha = Lp_model.add_var model ~name:"alpha" ~obj:1. () in
  let s =
    Array.init nq (fun q ->
        let p = inst.Instance.scenarios.(q).Flexile_failure.Failure_model.prob in
        Lp_model.add_var model
          ~name:(Printf.sprintf "s_%d" q)
          ~obj:(p /. (1. -. beta))
          ())
  in
  let x =
    [|
      Array.init np (fun i ->
          Array.map
            (fun _ -> Lp_model.add_var model ())
            inst.Instance.tunnels.(0).(i));
    |]
  in
  (* no-failure capacity: static allocations always fit *)
  let per_edge = Array.make (Graph.nedges g) [] in
  Array.iteri
    (fun i ts ->
      Array.iteri
        (fun ti (t : Flexile_net.Tunnels.t) ->
          Array.iter
            (fun e -> per_edge.(e) <- (x.(0).(i).(ti), 1.) :: per_edge.(e))
            t.Flexile_net.Tunnels.path)
        ts)
    inst.Instance.tunnels.(0);
  Array.iteri
    (fun e coeffs ->
      if coeffs <> [] then
        ignore
          (Lp_model.add_row model Lp_model.Le g.Graph.edges.(e).Graph.capacity
             coeffs))
    per_edge;
  (* lazy rows: s_q + alpha >= 1 - delivered(i, q) / d_i *)
  let flows = Instance.flows_of_class inst 0 in
  let violated xval =
    (* all violated loss rows, worst first (Row_gen caps the batch) *)
    let out = ref [] in
    for q = 0 to nq - 1 do
      Array.iter
        (fun (f : Instance.flow) ->
          if f.Instance.demand > 0. then begin
            let del =
              delivered inst x ~cls:0 ~pair:f.Instance.pair ~sid:q (fun v ->
                  xval.(v))
            in
            let loss = 1. -. (del /. f.Instance.demand) in
            let slack = xval.(s.(q)) +. xval.(alpha) -. loss in
            if slack < -1e-7 then begin
              let coeffs =
                (s.(q), 1.) :: (alpha, 1.)
                :: (Array.to_list
                      inst.Instance.alive_tunnels.(q).(0).(f.Instance.pair)
                   |> List.map (fun ti ->
                          ( x.(0).(f.Instance.pair).(ti),
                            1. /. f.Instance.demand )))
              in
              out :=
                (-.slack, { Row_gen.sense = Lp_model.Ge; rhs = 1.; coeffs })
                :: !out
            end
          end)
        flows
    done;
    List.stable_sort (fun (a, _) (b, _) -> Float.compare b a) !out
    |> List.map snd
  in
  let sol, rounds = Row_gen.solve ~violated model in
  if sol.Simplex.status <> Simplex.Optimal then
    failwith "Teavar.run: LP did not solve";
  (* post-analysis losses, per scenario through the engine *)
  let losses =
    Scenario_engine.sweep_losses ?jobs inst ~f:(fun q ->
        Array.to_list flows
        |> List.filter_map (fun (f : Instance.flow) ->
               if f.Instance.demand <= 0. then None
               else
                 let del =
                   delivered inst x ~cls:0 ~pair:f.Instance.pair ~sid:q
                     (fun v -> sol.Simplex.x.(v))
                 in
                 Some (f.Instance.fid, 1. -. (del /. f.Instance.demand))))
  in
  let allocation =
    Array.map (Array.map (fun v -> sol.Simplex.x.(v))) x.(0)
  in
  { losses; cvar = sol.Simplex.obj; allocation; rounds }
