module Trace = Flexile_util.Trace

(* online > scenario[i] > {critical-alloc, maxmin-loss}: freezing the
   critical flows at their offline loss, then the waterfilling LP for
   the rest (§4.5).  Scenario spans run worker-side. *)
let sp_online = Trace.span "online"
let sp_scenario = Trace.span "online.scenario"
let sp_critical = Trace.span "online.critical-alloc"
let sp_maxmin = Trace.span "online.maxmin-loss"

(* per-scenario allocation latency distribution: what an operator
   watching the online controller's reaction time would alert on *)
let h_scenario = Trace.hist "online.scenario_seconds"

let allocate ?duals inst ~sid ~critical ~offline_loss =
  Trace.observe_duration h_scenario @@ fun () ->
  Trace.in_span ~arg:sid sp_scenario @@ fun () ->
  let class_order =
    List.init (Array.length inst.Instance.classes) (fun k -> k)
  in
  let prefrozen =
    Trace.in_span sp_critical @@ fun () ->
    Array.to_list inst.Instance.flows
    |> List.filter_map (fun (f : Instance.flow) ->
           let fid = f.Instance.fid in
           if f.Instance.demand > 0. && critical fid then
             (* tiny slack absorbs LP tolerance without weakening the
                offline guarantee materially *)
             Some (fid, Float.min 1. (offline_loss fid +. 1e-7))
           else None)
  in
  Trace.in_span sp_maxmin (fun () ->
      Scen_lp.maxmin_losses inst ~sid ~class_order ~prefrozen ?duals ())

let run ?jobs inst ~offline =
  Trace.in_span sp_online @@ fun () ->
  let best = offline.Flexile_offline.best in
  Scenario_engine.sweep_losses ?jobs inst ~f:(fun sid ->
      allocate inst ~sid
        ~critical:(fun fid -> best.Flexile_offline.z.(fid).(sid))
        ~offline_loss:(fun fid -> best.Flexile_offline.losses.(fid).(sid)))

(* The same sweep, additionally capturing each scenario's binding
   capacity edges from the LP solution the allocation already
   computed.  Each scenario's solve is cold (no shard-local state), so
   both the loss matrix and the dual lists are bit-identical for every
   job count. *)
let run_with_duals ?jobs inst ~offline =
  Trace.in_span sp_online @@ fun () ->
  let best = offline.Flexile_offline.best in
  let per_sid =
    Scenario_engine.sweep ?jobs inst
      ~init:(fun _ -> ())
      ~f:(fun () sid ->
        let captured = ref [] in
        let fl =
          allocate ~duals:(fun d -> captured := d) inst ~sid
            ~critical:(fun fid -> best.Flexile_offline.z.(fid).(sid))
            ~offline_loss:(fun fid -> best.Flexile_offline.losses.(fid).(sid))
        in
        (fl, !captured))
  in
  let losses = Instance.alloc_losses inst in
  Array.iteri
    (fun sid (fl, _) ->
      Array.iter
        (fun (f : Instance.flow) ->
          if f.Instance.demand <= 0. then losses.(f.Instance.fid).(sid) <- 0.)
        inst.Instance.flows;
      List.iter
        (fun (fid, l) ->
          losses.(fid).(sid) <- Float.max 0. (Float.min 1. l))
        fl)
    per_sid;
  (losses, Array.map snd per_sid)
