let allocate inst ~sid ~critical ~offline_loss =
  let class_order =
    List.init (Array.length inst.Instance.classes) (fun k -> k)
  in
  let prefrozen =
    Array.to_list inst.Instance.flows
    |> List.filter_map (fun (f : Instance.flow) ->
           let fid = f.Instance.fid in
           if f.Instance.demand > 0. && critical fid then
             (* tiny slack absorbs LP tolerance without weakening the
                offline guarantee materially *)
             Some (fid, Float.min 1. (offline_loss fid +. 1e-7))
           else None)
  in
  Scen_lp.maxmin_losses inst ~sid ~class_order ~prefrozen ()

let run ?jobs inst ~offline =
  let best = offline.Flexile_offline.best in
  Scenario_engine.sweep_losses ?jobs inst ~f:(fun sid ->
      allocate inst ~sid
        ~critical:(fun fid -> best.Flexile_offline.z.(fid).(sid))
        ~offline_loss:(fun fid -> best.Flexile_offline.losses.(fid).(sid)))
