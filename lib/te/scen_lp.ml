module Lp_model = Flexile_lp.Lp_model
module Simplex = Flexile_lp.Simplex
module Graph = Flexile_net.Graph

let src = Logs.Src.create "flexile.te" ~doc:"TE schemes"

module Log = (val Logs.src_log src : Logs.LOG)

type ctx = {
  inst : Instance.t;
  sid : int;
  model : Lp_model.t;
  x : Lp_model.var array array array;
  l : Lp_model.var array;
  demand_rows : Lp_model.row array;
  cap_rows : Lp_model.row array;
}

let build inst ~sid =
  let g = inst.Instance.graph in
  let nk = Array.length inst.Instance.classes in
  let np = Array.length inst.Instance.pairs in
  let model = Lp_model.create ~name:(Printf.sprintf "scen-%d" sid) () in
  (* bandwidth variables on alive tunnels *)
  let x =
    Array.init nk (fun k ->
        Array.init np (fun i ->
            let ts = inst.Instance.tunnels.(k).(i) in
            let alive = inst.Instance.alive_tunnels.(sid).(k).(i) in
            let vars = Array.make (Array.length ts) (-1) in
            Array.iter
              (fun ti ->
                vars.(ti) <-
                  Lp_model.add_var model
                    ~name:(Printf.sprintf "x_%d_%d_%d" k i ti)
                    ())
              alive;
            vars))
  in
  (* per-flow loss variables and demand coverage rows *)
  let nf = Instance.nflows inst in
  let l = Array.make nf (-1) in
  let demand_rows = Array.make nf (-1) in
  Array.iter
    (fun (f : Instance.flow) ->
      if f.Instance.demand > 0. then begin
        let connected = Instance.flow_connected inst f sid in
        let demand = Instance.demand_in inst f sid in
        let lv =
          if demand <= 0. then
            (* nothing requested in this scenario: loss pinned to 0 *)
            Lp_model.add_var model
              ~name:(Printf.sprintf "l_%d" f.Instance.fid)
              ~ub:0. ()
          else
            Lp_model.add_var model
              ~name:(Printf.sprintf "l_%d" f.Instance.fid)
              ~lb:(if connected then 0. else 1.)
              ~ub:1. ()
        in
        l.(f.Instance.fid) <- lv;
        if connected && demand > 0. then begin
          let coeffs =
            (lv, demand)
            :: (Array.to_list inst.Instance.alive_tunnels.(sid).(f.Instance.cls).(f.Instance.pair)
               |> List.map (fun ti -> (x.(f.Instance.cls).(f.Instance.pair).(ti), 1.)))
          in
          demand_rows.(f.Instance.fid) <-
            Lp_model.add_row model Lp_model.Ge demand coeffs
        end
      end)
    inst.Instance.flows;
  (* capacity rows: tunnels crossing each edge *)
  let per_edge = Array.make (Graph.nedges g) [] in
  for k = 0 to nk - 1 do
    for i = 0 to np - 1 do
      let ts = inst.Instance.tunnels.(k).(i) in
      Array.iteri
        (fun ti (tun : Flexile_net.Tunnels.t) ->
          let v = x.(k).(i).(ti) in
          if v >= 0 then
            Array.iter
              (fun e -> per_edge.(e) <- (v, 1.) :: per_edge.(e))
              tun.Flexile_net.Tunnels.path)
        ts
    done
  done;
  let cap_rows = Array.make (Graph.nedges g) (-1) in
  Array.iteri
    (fun e coeffs ->
      if coeffs <> [] then
        cap_rows.(e) <-
          Lp_model.add_row model Lp_model.Le
            (Instance.edge_capacity inst ~sid e)
            coeffs)
    per_edge;
  { inst; sid; model; x; l; demand_rows; cap_rows }

let set_losses ctx losses values =
  Array.iter
    (fun (f : Instance.flow) ->
      let fid = f.Instance.fid in
      if f.Instance.demand <= 0. then losses.(fid).(ctx.sid) <- 0.
      else if ctx.l.(fid) >= 0 then
        losses.(fid).(ctx.sid) <- Float.max 0. (Float.min 1. values.(ctx.l.(fid))))
    ctx.inst.Instance.flows

let solve_min_weighted_max ctx ~flows ~frozen =
  let lambda = Lp_model.add_var ctx.model ~ub:1. ~obj:1. () in
  Array.iter
    (fun (f : Instance.flow) ->
      if f.Instance.demand > 0. && ctx.l.(f.Instance.fid) >= 0 && flows f then
        ignore
          (Lp_model.add_row ctx.model Lp_model.Ge 0.
             [ (lambda, 1.); (ctx.l.(f.Instance.fid), -1.) ]))
    ctx.inst.Instance.flows;
  List.iter
    (fun (fid, cap) ->
      if ctx.l.(fid) >= 0 then
        Lp_model.set_bounds ctx.model ctx.l.(fid) ~lb:(Lp_model.lb ctx.model ctx.l.(fid))
          ~ub:(Float.min 1. cap))
    frozen;
  let sol = Simplex.solve ctx.model in
  match sol.Simplex.status with
  | Simplex.Optimal -> Some sol.Simplex.x.(lambda)
  | _ -> None

(* Clairvoyant per-class optimum: the best max loss class [cls] could
   achieve in this scenario with the whole network to itself (other
   classes' loss variables float free, so their demand rows consume no
   capacity).  Any allocation restricted to the class is feasible
   here, hence online_max_loss - class_optimum >= 0 up to LP
   tolerance: the regret baseline. *)
let class_optimum inst ~sid ~cls =
  let ctx = build inst ~sid in
  match
    solve_min_weighted_max ctx
      ~flows:(fun (f : Instance.flow) -> f.Instance.cls = cls)
      ~frozen:[]
  with
  | Some v -> Float.max 0. (Float.min 1. v)
  | None -> 1.

(* Capacity-row duals of a solved model: the per-edge marginal value
   of one more unit of capacity.  Nonzero entries are the saturated
   (binding) edges — the scenario's bottlenecks. *)
let binding_edges ctx (row_duals : float array) =
  let acc = ref [] in
  for e = Array.length ctx.cap_rows - 1 downto 0 do
    let row = ctx.cap_rows.(e) in
    if row >= 0 then begin
      let d = Float.abs row_duals.(row) in
      if d > 1e-9 then acc := (e, d) :: !acc
    end
  done;
  !acc

(* SWAN-style max-min on flow loss.  One model per scenario, reused
   across levels: each participating flow gets a row
   [lambda - l_f >= -relax_f] whose RHS toggles between 0 (active) and
   -2 (deactivated: trivially satisfied since l <= 1 <= lambda + 2). *)
let maxmin_losses inst ~sid ~class_order ?(merge_classes = false)
    ?(freeze_routing = false) ?(prefrozen = []) ?(max_levels = 12) ?duals () =
  let ctx = build inst ~sid in
  (* bottleneck attribution hook: hand the caller the capacity-row
     duals of the first optimal solve — the binding edges while the
     top priority group is being served — without a re-solve *)
  let duals_pending = ref duals in
  let capture (sol : Simplex.solution) =
    match !duals_pending with
    | None -> ()
    | Some f ->
        duals_pending := None;
        f (binding_edges ctx sol.Simplex.row_duals)
  in
  let model = ctx.model in
  let lambda = Lp_model.add_var model ~ub:1. ~obj:1. () in
  let nf = Instance.nflows inst in
  let level_rows = Array.make nf (-1) in
  let participating =
    Array.to_list inst.Instance.flows
    |> List.filter (fun (f : Instance.flow) ->
           f.Instance.demand > 0. && List.mem f.Instance.cls class_order)
  in
  List.iter
    (fun (f : Instance.flow) ->
      let fid = f.Instance.fid in
      if ctx.l.(fid) >= 0 then
        level_rows.(fid) <-
          Lp_model.add_row model Lp_model.Ge (-2.)
            [ (lambda, 1.); (ctx.l.(fid), -1.) ])
    participating;
  List.iter
    (fun (fid, cap) ->
      if ctx.l.(fid) >= 0 && Lp_model.lb model ctx.l.(fid) <= cap then
        Lp_model.set_bounds model ctx.l.(fid) ~lb:(Lp_model.lb model ctx.l.(fid))
          ~ub:(Float.min 1. cap))
    prefrozen;
  let results = ref [] in
  let freeze fid v =
    if ctx.l.(fid) >= 0 then begin
      let lb = Lp_model.lb model ctx.l.(fid) in
      let ub = Float.min (Lp_model.ub model ctx.l.(fid)) (Float.max lb v) in
      Lp_model.set_bounds model ctx.l.(fid) ~lb ~ub;
      Lp_model.set_rhs model level_rows.(fid) (-2.);
      results := (fid, ub) :: !results
    end
    else results := (fid, v) :: !results
  in
  let groups =
    if merge_classes then [ class_order ]
    else List.map (fun k -> [ k ]) class_order
  in
  List.iter
    (fun group ->
      let active =
        ref
          (List.filter_map
             (fun (f : Instance.flow) ->
               if not (List.mem f.Instance.cls group) then None
               else if Instance.demand_in inst f sid <= 0. then begin
                 results := (f.Instance.fid, 0.) :: !results;
                 None
               end
               else if not (Instance.flow_connected inst f sid) then begin
                 results := (f.Instance.fid, 1.) :: !results;
                 None
               end
               else Some f.Instance.fid)
             participating)
      in
      (* activate level rows for this class *)
      List.iter (fun fid -> Lp_model.set_rhs model level_rows.(fid) 0.) !active;
      let level = ref 0 in
      let last_lambda = ref 1. in
      let last_sol = ref None in
      while !active <> [] && !level < max_levels do
        incr level;
        let sol = Simplex.solve model in
        match sol.Simplex.status with
        | Simplex.Optimal ->
            capture sol;
            last_sol := Some sol.Simplex.x;
            let lam = Float.max 0. sol.Simplex.x.(lambda) in
            last_lambda := lam;
            if lam <= 1e-7 then begin
              List.iter (fun fid -> freeze fid 0.) !active;
              active := []
            end
            else begin
              (* freeze the flows whose level rows are dual-binding:
                 they are the ones that cannot do better than lam *)
              let stuck, rest =
                List.partition
                  (fun fid ->
                    sol.Simplex.row_duals.(level_rows.(fid)) > 1e-9)
                  !active
              in
              if stuck <> [] then begin
                List.iter (fun fid -> freeze fid lam) stuck;
                active := rest
              end
              else begin
                (* degenerate duals: fall back to the identification LP
                   (minimize total active loss at level lam) *)
                Lp_model.set_obj model lambda 0.;
                Lp_model.set_bounds model lambda ~lb:0. ~ub:lam;
                List.iter
                  (fun fid -> Lp_model.set_obj model ctx.l.(fid) 1.)
                  !active;
                let sol2 = Simplex.solve model in
                (match sol2.Simplex.status with
                | Simplex.Optimal -> last_sol := Some sol2.Simplex.x
                | _ -> ());
                List.iter
                  (fun fid -> Lp_model.set_obj model ctx.l.(fid) 0.)
                  !active;
                Lp_model.set_obj model lambda 1.;
                Lp_model.set_bounds model lambda ~lb:0. ~ub:1.;
                let stuck, rest =
                  match sol2.Simplex.status with
                  | Simplex.Optimal ->
                      List.partition
                        (fun fid -> sol2.Simplex.x.(ctx.l.(fid)) >= lam -. 1e-6)
                        !active
                  | _ -> (!active, [])
                in
                let stuck = if stuck = [] then !active else stuck in
                List.iter (fun fid -> freeze fid lam) stuck;
                active :=
                  (match sol2.Simplex.status with
                  | Simplex.Optimal -> rest
                  | _ -> [])
              end
            end
        | _ ->
            Log.warn (fun m -> m "maxmin scenario %d: LP not optimal" sid);
            List.iter (fun fid -> freeze fid 1.) !active;
            active := []
      done;
      (* level budget exhausted: freeze the rest at the last level *)
      List.iter (fun fid -> freeze fid !last_lambda) !active;
      (* SWAN pins the routing of a class before serving lower classes *)
      if freeze_routing then
        match !last_sol with
        | None -> ()
        | Some xs ->
            List.iter
              (fun k ->
                Array.iter
                  (fun per_pair ->
                    Array.iter
                      (fun v ->
                        if v >= 0 then
                          Lp_model.set_bounds model v ~lb:xs.(v) ~ub:xs.(v))
                      per_pair)
                  ctx.x.(k))
              group)
    groups;
  !results
