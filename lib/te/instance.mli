(** A traffic-engineering problem instance: topology, traffic classes
    with their flows and tunnels, and the enumerated failure scenarios.

    A {e flow} is the traffic of one (class, site-pair); this matches
    the paper, which has K * N(N-1)/2 flows.  Classes are ordered by
    decreasing priority (class 0 is served first by the priority-aware
    schemes). *)

type cls = {
  cname : string;
  beta : float;  (** availability target, e.g. 0.999 *)
  weight : float;  (** penalty weight w_k in the Flexile objective *)
}

type flow = {
  fid : int;  (** dense index across all classes *)
  cls : int;
  pair : int;  (** index into [pairs] *)
  src : int;
  dst : int;
  demand : float;
}

type t = {
  graph : Flexile_net.Graph.t;
  classes : cls array;
  pairs : (int * int) array;
  tunnels : Flexile_net.Tunnels.t array array array;
      (** class -> pair -> tunnels *)
  flows : flow array;
  scenarios : Flexile_failure.Failure_model.scenario array;
  alive_tunnels : int array array array array;
      (** scenario -> class -> pair -> indices of alive tunnels *)
  demand_factors : float array array option;
      (** §4.4 "more general scenarios": optional per-scenario demand
          multipliers, [factors.(sid).(fid)]; [None] means every
          scenario carries the base traffic matrix *)
  regimes : string array option;
      (** per-scenario failure-regime tags from
          {!Flexile_failure.Scenario_gen.set.regimes}; [None] for
          legacy sets (read through {!regime}, which derives
          ["nominal"] / ["independent"] defaults) *)
}

val make :
  graph:Flexile_net.Graph.t ->
  classes:cls array ->
  pairs:(int * int) array ->
  tunnels:Flexile_net.Tunnels.t array array array ->
  demands:float array array ->
  ?demand_factors:float array array ->
  ?regimes:string array ->
  scenarios:Flexile_failure.Failure_model.scenario array ->
  unit ->
  t
(** [demands.(k).(i)] is the demand of class [k] on pair [i].
    Validates dimensions and tunnel endpoints.  [demand_factors]
    optionally scales each flow's demand per scenario (sid x fid);
    [regimes] optionally tags each scenario with its failure regime. *)

val demand_in : t -> flow -> int -> float
(** Effective demand of a flow in a scenario (base demand times the
    scenario's demand factor, if any). *)

val edge_capacity : t -> sid:int -> int -> float
(** Effective capacity of an edge in a scenario: nominal capacity
    times the scenario's remaining-capacity fraction (1 when nominal,
    0 when cut, in between for partial degradation). *)

val regime : t -> sid:int -> string
(** Failure-regime tag of a scenario.  [regimes] when present;
    otherwise ["nominal"] for the all-up scenario and ["independent"]
    for every other (the only regimes a legacy set can contain). *)

val regime_names : t -> string list
(** Sorted distinct regime tags across the instance's scenarios. *)

val with_classes : t -> cls array -> t
(** Same instance with replaced class metadata (same class count);
    used to fill in the design target beta once connectivity of the
    sampled scenarios is known. *)

val nflows : t -> int
val nscenarios : t -> int
val flows_of_class : t -> int -> flow array

val flow_connected : t -> flow -> int -> bool
(** Does the flow have at least one alive tunnel in scenario [sid]? *)

val connected_mass : t -> flow -> float
(** Total probability of enumerated scenarios in which the flow is
    connected. *)

val max_beta_single : t -> float
(** The paper's single-class design target: the largest beta such that
    every flow is connected in scenarios of total mass >= beta, i.e.
    min over flows of {!connected_mass}. *)

(** Post-analysis loss matrix: [losses.(fid).(sid)] is the loss
    fraction (in [0,1]) of a flow in a scenario. *)
type losses = float array array

val alloc_losses : t -> losses
(** Fresh loss matrix initialized to 1.0 (nothing delivered). *)
