(** Composable scenario generators: shared-risk link groups, partial
    capacity degradation, demand drift, and planned maintenance
    windows — all lowering to the same enumerated
    [(probability, capacity_vector, demand_vector)] scenario-set
    interface that {!Failure_model} produces, so every consumer
    ({!Flexile_te.Scenario_engine}, the offline MIP, schemes, figures,
    the monitor, the bench gate) takes mixed-regime sets without
    per-scheme changes.

    A generator is a set of independent {e units}; a unit is one cause
    of degradation with mutually exclusive non-nominal states (see
    {!Failure_model}).  Generators over the same edge count {!compose}
    by concatenating their unit lists, and {!enumerate} lowers the
    composition through {!Failure_model.enumerate} in best-first
    order.

    Seeding discipline: every stochastic constructor takes an explicit
    {!Flexile_util.Prng.t} and draws from it in unit order, so a
    generator is a pure function of [(topology, seed, parameters)].
    The maintenance generator takes no seed at all — it is a pure
    function of the schedule.  Nothing here reads a clock.

    This library cannot depend on [lib/traffic]; demand-drift state
    vectors (gravity perturbation, diurnal levels) are produced by
    {!Flexile_traffic.Gravity} and passed in through {!demand_states}
    / {!diurnal} by the builder layer. *)

(** Demand-side effect of a state on the traffic matrix. *)
type demand_effect =
  | No_change
  | Scale of float  (** uniform scaling of every pair's demand *)
  | Per_pair of float array  (** per-pair multiplicative factors *)

(** One non-nominal state of a unit. *)
type state = {
  prob : float;  (** probability, in (0, 1) *)
  frac : float;  (** capacity fraction retained, in [0, 1) *)
  demand : demand_effect;
  sedges : int array option;
      (** per-state edge override ([None] = the unit's edges); used by
          maintenance windows, whose states remove different links *)
}

type unit_gen = {
  uname : string;  (** unique within a generator; survives composition *)
  regime : string;
      (** failure-regime tag carried into enumerated scenarios
          ("independent", "srlg", "partial", "drift", "diurnal",
          "maintenance", ...); lets attainment be reported conditioned
          on regime *)
  edges : int array;
  states : state array;
}

type t = { nedges : int; units : unit_gen array }

val create : nedges:int -> unit_gen list -> t
(** Validates edge ranges, state probabilities (each in (0,1), total
    < 0.5 per unit — the best-first enumeration bound), capacity
    fractions, demand factors, and unit-name uniqueness.  Raises
    [Invalid_argument] with a descriptive message otherwise. *)

val compose : t list -> t
(** Concatenate the unit lists of generators over the same edge count.
    Unit names must remain unique across the composition.  Scenario
    probabilities multiply because units are independent. *)

val nunits : t -> int

(** {1 Generator families} *)

val of_failure_model : ?prefix:string -> ?regime:string -> Failure_model.t -> t
(** Wrap an existing failure model as a generator (unit names
    [prefix-i], default prefix ["unit"], default regime
    ["independent"]). *)

val independent_links :
  ?median:float ->
  ?shape:float ->
  graph:Flexile_net.Graph.t ->
  seed:Flexile_util.Prng.t ->
  unit ->
  t
(** The legacy regime: one binary unit per link, Weibull-sampled
    probabilities.  Delegates to {!Failure_model.independent_links},
    so for a given seed the enumerated scenario set is bit-identical
    to the legacy model's. *)

val srlg :
  ?median:float ->
  ?shape:float ->
  nedges:int ->
  groups:int array array ->
  seed:Flexile_util.Prng.t ->
  unit ->
  t
(** Shared-risk link groups: [groups.(i)] lists edges cut atomically
    (a fiber conduit), with one Weibull-sampled hazard per group drawn
    in group order (median default 0.001, shape default 0.8, clamped
    to [1e-5, 0.3] — the same discipline as the per-link model).
    With singleton groups this reproduces {!independent_links}
    bit-identically for the same seed. *)

val default_levels : (float * float) array
(** Default partial-degradation levels [(fraction, weight)]:
    hard cut (frac 0, weight 0.5), 30% (weight 0.3), 70% (weight
    0.2). *)

val partial :
  ?median:float ->
  ?shape:float ->
  ?levels:(float * float) array ->
  graph:Flexile_net.Graph.t ->
  seed:Flexile_util.Prng.t ->
  unit ->
  t
(** Partial-capacity degradation: per link, a Weibull-sampled total
    degradation probability split across [levels] by weight, so a
    degraded link may survive at a fraction of capacity instead of
    binary down.  Level fractions must be in [0, 1) and weights
    positive. *)

type window = {
  wname : string;
  wedges : int array;  (** links removed while the window is active *)
  wstart : float;  (** offset into the planning horizon *)
  wduration : float;
}

val maintenance : nedges:int -> horizon:float -> window list -> t
(** Planned maintenance: deterministic link removal over a schedule.
    A uniformly drawn instant lands inside window [w] with probability
    [w.wduration /. horizon] and in at most one window, so the
    schedule lowers to exactly one multi-state unit whose states are
    the windows (each removing its own [wedges]).  Wall-clock-free and
    seedless: the same schedule always yields the same generator.
    Raises [Invalid_argument] on overlapping windows, windows outside
    the horizon, nonpositive durations, or total maintenance mass
    >= 0.5. *)

val demand_states :
  ?regime:string -> nedges:int -> name:string -> (float * demand_effect) array -> t
(** An edge-free unit whose states perturb the traffic matrix:
    [(probability, effect)] per state.  The builder layer feeds
    gravity-perturbation vectors from {!Flexile_traffic.Gravity} in
    here.  [regime] defaults to [name]. *)

val diurnal : nedges:int -> ?levels:(float * float) array -> unit -> t
(** Diurnal demand scaling as an edge-free unit: [levels] is
    [(scale, probability)] per level (default peak 1.25 and trough
    0.75 at probability 0.2 each, nominal mass 0.6). *)

(** {1 Lowering and enumeration} *)

val to_failure_model : t -> Failure_model.t
(** Lower the composition to a {!Failure_model} (demand effects are
    erased — they live in {!set.pair_factors}). *)

type set = {
  scenarios : Failure_model.scenario array;
  pair_factors : float array array option;
      (** [pair_factors.(sid).(pair)] multiplies the nominal demand of
          [pair] in scenario [sid]; [None] when no unit carries a
          demand effect (capacity-only generators) *)
  regimes : string array;
      (** [regimes.(sid)]: ["nominal"] for the all-up scenario, the
          common {!unit_gen.regime} when every failed unit of the
          scenario agrees, ["mixed"] otherwise *)
}

val enumerate :
  ?cutoff:float -> ?max_scenarios:int -> ?npairs:int -> t -> set
(** Best-first enumeration via {!Failure_model.enumerate} (same
    defaults: cutoff 1e-6, max 400 scenarios), plus per-scenario
    demand factors folded multiplicatively over the failed units'
    states.  [npairs] is required when demand effects are all uniform
    {!Scale}s; with {!Per_pair} effects it is inferred (and checked
    for consistency). *)

(** {1 Monte-Carlo draws} *)

val sample : t -> Flexile_util.Prng.t -> int array
(** Draw one joint state: per unit, the index of its active state or
    [-1] for nominal.  One uniform draw per unit, in unit order —
    deterministic for a given PRNG state.  Used by the statistical
    tests and the monitor's draw stream. *)

val edge_down_prob : t -> int -> float
(** Analytic probability that an edge is hard-down (some unit in a
    frac-0 state containing it), under unit independence.  Reference
    value for the statistical tests. *)
