type state = { sprob : float; sfrac : float; sedges : int array }

type t = {
  nedges : int;
  unit_probs : float array;
  unit_edges : int array array;
  unit_states : state array array;
}

let clamp lo hi x = Float.max lo (Float.min hi x)

(* A binary unit: one non-nominal state, a hard cut of every member
   edge.  All the legacy constructors build these. *)
let binary_states p edges = [| { sprob = p; sfrac = 0.; sedges = edges } |]

let independent_links ?(median = 0.001) ?(shape = 0.8) ~graph ~seed () =
  let nedges = Flexile_net.Graph.nedges graph in
  (* Weibull median is scale * (ln 2)^(1/shape). *)
  let scale = median /. Float.pow (Float.log 2.) (1. /. shape) in
  let unit_probs =
    Array.init nedges (fun _ ->
        clamp 1e-5 0.3 (Flexile_util.Prng.weibull seed ~shape ~scale))
  in
  {
    nedges;
    unit_probs;
    unit_edges = Array.init nedges (fun i -> [| i |]);
    unit_states =
      Array.mapi (fun i p -> binary_states p [| i |]) unit_probs;
  }

let of_probs ~nedges probs =
  if Array.length probs <> nedges then invalid_arg "Failure_model.of_probs";
  Array.iter
    (fun p ->
      if p < 0. || p >= 1. then
        invalid_arg "Failure_model.of_probs: probability out of [0,1)")
    probs;
  {
    nedges;
    unit_probs = Array.copy probs;
    unit_edges = Array.init nedges (fun i -> [| i |]);
    unit_states = Array.mapi (fun i p -> binary_states p [| i |]) probs;
  }

let grouped ~groups ~probs ~nedges =
  if Array.length groups <> Array.length probs then
    invalid_arg "Failure_model.grouped";
  {
    nedges;
    unit_probs = Array.copy probs;
    unit_edges = Array.map Array.copy groups;
    unit_states =
      Array.mapi (fun i p -> binary_states p (Array.copy groups.(i))) probs;
  }

(* Multi-state units: each unit is a set of mutually exclusive
   non-nominal states.  The unit's total non-nominal mass is the SUM
   of its state probabilities (the states are disjoint events of one
   underlying cause), not the product complement that modelling each
   state as an independent binary unit would give — that was the
   binary up/down assumption baked into the old accounting, and it
   double-counts mass as soon as a partial-capacity state joins the
   enumeration alongside the hard-down state of the same link. *)
let multi_state_full ~nedges units =
  let n = Array.length units in
  let unit_edges = Array.make n [||] in
  let unit_states = Array.make n [||] in
  let unit_probs = Array.make n 0. in
  Array.iteri
    (fun u states ->
      if Array.length states = 0 then
        invalid_arg "Failure_model.multi_state: unit with no states";
      let total = ref 0. in
      Array.iter
        (fun (p, f, edges) ->
          Array.iter
            (fun e ->
              if e < 0 || e >= nedges then
                invalid_arg "Failure_model.multi_state: edge id out of range")
            edges;
          if p <= 0. || p >= 1. then
            invalid_arg
              "Failure_model.multi_state: state probability out of (0,1)";
          if f < 0. || f >= 1. then
            invalid_arg
              "Failure_model.multi_state: capacity fraction out of [0,1)";
          total := !total +. p)
        states;
      if !total >= 1. then
        invalid_arg "Failure_model.multi_state: unit mass >= 1";
      unit_edges.(u) <-
        Array.of_list
          (List.sort_uniq compare
             (Array.fold_left
                (fun acc (_, _, edges) -> Array.to_list edges @ acc)
                [] states));
      unit_states.(u) <-
        Array.map
          (fun (p, f, edges) ->
            { sprob = p; sfrac = f; sedges = Array.copy edges })
          states;
      unit_probs.(u) <- !total)
    units;
  { nedges; unit_probs; unit_edges; unit_states }

let multi_state ~nedges units =
  multi_state_full ~nedges
    (Array.map
       (fun (edges, states) ->
         Array.map (fun (p, f) -> (p, f, edges)) states)
       units)

type scenario = {
  sid : int;
  failed_units : int array;
  failed_states : int array;
  prob : float;
  edge_alive : bool array;
  cap_frac : float array;
}

(* Per-edge capacity fraction of a scenario: product over the failed
   units whose active state touches the edge (composition of
   independent causes is multiplicative on capacity; for binary units
   the product is 0).  The edge set is the STATE's, not the unit's:
   states of a maintenance-calendar unit remove different links. *)
let fracs_of_failed t failed states =
  let frac = Array.make t.nedges 1. in
  Array.iteri
    (fun i u ->
      let s = t.unit_states.(u).(states.(i)) in
      Array.iter (fun e -> frac.(e) <- frac.(e) *. s.sfrac) s.sedges)
    failed;
  frac

let alive_of_fracs frac = Array.map (fun f -> f > 0.) frac

(* Probability that every unit sits in its nominal state.  Correct for
   multi-state units because [unit_probs] is the unit's total
   non-nominal mass. *)
let base_prob t =
  Array.fold_left (fun acc p -> acc *. (1. -. p)) 1. t.unit_probs

let scenario_prob t failed states =
  let odds i =
    let u = failed.(i) in
    t.unit_states.(u).(states.(i)).sprob /. (1. -. t.unit_probs.(u))
  in
  let acc = ref (base_prob t) in
  Array.iteri (fun i _ -> acc := !acc *. odds i) failed;
  !acc

let no_failure t =
  {
    sid = 0;
    failed_units = [||];
    failed_states = [||];
    prob = base_prob t;
    edge_alive = Array.make t.nedges true;
    cap_frac = Array.make t.nedges 1.;
  }

let scenario_of_states t ~sid pairs =
  let pairs = Array.copy pairs in
  Array.sort compare pairs;
  let failed = Array.map fst pairs in
  let states = Array.map snd pairs in
  let cap_frac = fracs_of_failed t failed states in
  {
    sid;
    failed_units = failed;
    failed_states = states;
    prob = scenario_prob t failed states;
    edge_alive = alive_of_fracs cap_frac;
    cap_frac;
  }

let scenario_of_units t ~sid failed =
  scenario_of_states t ~sid (Array.map (fun u -> (u, 0)) failed)

(* Best-first subset enumeration.  Each heap entry is a scenario whose
   children extend the failed set with a state of a strictly larger
   unit index; since every odds ratio is < 1 (total unit mass < 0.5,
   so each state's mass is below the nominal mass), children have
   smaller probability than their parent, so the heap pops scenarios
   in non-increasing probability order. *)
module Heap = struct
  type entry = { p : float; last : int; failed : (int * int) list }
  type h = { mutable data : entry array; mutable size : int }

  let create () = { data = [||]; size = 0 }

  let push h e =
    if h.size = Array.length h.data then begin
      let cap = max 64 (2 * h.size) in
      let d = Array.make cap e in
      Array.blit h.data 0 d 0 h.size;
      h.data <- d
    end;
    h.data.(h.size) <- e;
    let i = ref h.size in
    h.size <- h.size + 1;
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / 2 in
      if h.data.(!i).p > h.data.(parent).p then begin
        let tmp = h.data.(!i) in
        h.data.(!i) <- h.data.(parent);
        h.data.(parent) <- tmp;
        i := parent
      end
      else continue := false
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 and continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let big = ref !i in
        if l < h.size && h.data.(l).p > h.data.(!big).p then big := l;
        if r < h.size && h.data.(r).p > h.data.(!big).p then big := r;
        if !big <> !i then begin
          let tmp = h.data.(!i) in
          h.data.(!i) <- h.data.(!big);
          h.data.(!big) <- tmp;
          i := !big
        end
        else continue := false
      done;
      Some top
    end
end

let enumerate ?(cutoff = 1e-6) ?(max_scenarios = 400) t =
  Array.iter
    (fun p ->
      if p >= 0.5 then
        invalid_arg
          "Failure_model.enumerate: unit failure probability >= 0.5 breaks \
           best-first ordering")
    t.unit_probs;
  let nunits = Array.length t.unit_probs in
  (* odds of unit u entering state s instead of staying nominal; the
     denominator is the unit's NOMINAL mass 1 - sum(states), which is
     what makes the enumerated probabilities of a multi-state unit sum
     with its unenumerated tail to exactly 1 *)
  let odds =
    Array.mapi
      (fun u states ->
        Array.map (fun s -> s.sprob /. (1. -. t.unit_probs.(u))) states)
      t.unit_states
  in
  let heap = Heap.create () in
  Heap.push heap { Heap.p = base_prob t; last = -1; failed = [] };
  let out = ref [] in
  let count = ref 0 in
  let continue = ref true in
  while !continue && !count < max_scenarios do
    match Heap.pop heap with
    | None -> continue := false
    | Some { Heap.p; last; failed } ->
        if p < cutoff then continue := false
        else begin
          let pairs = Array.of_list (List.rev failed) in
          let failed_arr = Array.map fst pairs in
          let states_arr = Array.map snd pairs in
          let cap_frac = fracs_of_failed t failed_arr states_arr in
          out :=
            {
              sid = !count;
              failed_units = failed_arr;
              failed_states = states_arr;
              prob = p;
              edge_alive = alive_of_fracs cap_frac;
              cap_frac;
            }
            :: !out;
          incr count;
          for j = last + 1 to nunits - 1 do
            Array.iteri
              (fun s o ->
                let child_p = p *. o in
                if child_p >= cutoff then
                  Heap.push heap
                    { Heap.p = child_p; last = j; failed = (j, s) :: failed })
              odds.(j)
          done
        end
  done;
  Array.of_list (List.rev !out)

let coverage scenarios =
  Array.fold_left (fun acc s -> acc +. s.prob) 0. scenarios
