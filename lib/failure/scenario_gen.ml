module FM = Failure_model
module Prng = Flexile_util.Prng

type demand_effect =
  | No_change
  | Scale of float
  | Per_pair of float array

type state = {
  prob : float;
  frac : float;
  demand : demand_effect;
  sedges : int array option;
}

type unit_gen = {
  uname : string;
  regime : string;
  edges : int array;
  states : state array;
}
type t = { nedges : int; units : unit_gen array }

let mk_state ?(demand = No_change) ?sedges ~prob ~frac () =
  { prob; frac; demand; sedges }

let validate_unit ~nedges u =
  let check_edges edges =
    Array.iter
      (fun e ->
        if e < 0 || e >= nedges then
          invalid_arg
            (Printf.sprintf
               "Scenario_gen: unit %s references edge %d out of range" u.uname
               e))
      edges
  in
  check_edges u.edges;
  if Array.length u.states = 0 then
    invalid_arg (Printf.sprintf "Scenario_gen: unit %s has no states" u.uname);
  let total = ref 0. in
  Array.iter
    (fun s ->
      if s.prob <= 0. || s.prob >= 1. then
        invalid_arg
          (Printf.sprintf "Scenario_gen: unit %s state probability out of (0,1)"
             u.uname);
      if s.frac < 0. || s.frac >= 1. then
        invalid_arg
          (Printf.sprintf "Scenario_gen: unit %s capacity fraction out of [0,1)"
             u.uname);
      (match s.sedges with None -> () | Some edges -> check_edges edges);
      (match s.demand with
      | No_change -> ()
      | Scale f ->
          if f < 0. || Float.is_nan f then
            invalid_arg
              (Printf.sprintf "Scenario_gen: unit %s negative demand scale"
                 u.uname)
      | Per_pair fs ->
          Array.iter
            (fun f ->
              if f < 0. || Float.is_nan f then
                invalid_arg
                  (Printf.sprintf
                     "Scenario_gen: unit %s negative per-pair demand factor"
                     u.uname))
            fs);
      total := !total +. s.prob)
    u.states;
  if !total >= 0.5 then
    invalid_arg
      (Printf.sprintf
         "Scenario_gen: unit %s total state mass %.3f >= 0.5 breaks best-first \
          enumeration"
         u.uname !total)

let create ~nedges units =
  let units = Array.of_list units in
  Array.iter (validate_unit ~nedges) units;
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun u ->
      if Hashtbl.mem seen u.uname then
        invalid_arg
          (Printf.sprintf "Scenario_gen: duplicate unit name %s" u.uname);
      Hashtbl.add seen u.uname ())
    units;
  { nedges; units }

let compose gens =
  match gens with
  | [] -> invalid_arg "Scenario_gen.compose: empty"
  | g0 :: rest ->
      List.iter
        (fun g ->
          if g.nedges <> g0.nedges then
            invalid_arg "Scenario_gen.compose: edge-count mismatch")
        rest;
      create ~nedges:g0.nedges
        (List.concat_map (fun g -> Array.to_list g.units) gens)

let nunits t = Array.length t.units

(* ------------------------------------------------------------------ *)
(* Generator families                                                  *)
(* ------------------------------------------------------------------ *)

(* Identical sampling discipline to Failure_model.independent_links:
   Weibull with the given median, clamped to [1e-5, 0.3].  Keeping the
   expression bit-for-bit the same is what makes the singleton-SRLG
   differential exact. *)
let weibull_prob ?(median = 0.001) ?(shape = 0.8) seed =
  let scale = median /. Float.pow (Float.log 2.) (1. /. shape) in
  Float.max 1e-5 (Float.min 0.3 (Prng.weibull seed ~shape ~scale))

let of_failure_model ?(prefix = "unit") ?(regime = "independent") (fm : FM.t) =
  let units =
    Array.to_list
      (Array.mapi
         (fun u edges ->
           {
             uname = Printf.sprintf "%s-%d" prefix u;
             regime;
             edges = Array.copy edges;
             states =
               Array.map
                 (fun (s : FM.state) ->
                   {
                     prob = s.FM.sprob;
                     frac = s.FM.sfrac;
                     demand = No_change;
                     sedges = Some (Array.copy s.FM.sedges);
                   })
                 fm.FM.unit_states.(u);
           })
         fm.FM.unit_edges)
  in
  create ~nedges:fm.FM.nedges units

let independent_links ?median ?shape ~graph ~seed () =
  of_failure_model ~prefix:"link"
    (FM.independent_links ?median ?shape ~graph ~seed ())

let srlg ?median ?shape ~nedges ~groups ~seed () =
  let units =
    Array.to_list
      (Array.mapi
         (fun gi group ->
           let p = weibull_prob ?median ?shape seed in
           {
             uname = Printf.sprintf "srlg-%d" gi;
             regime = "srlg";
             edges = Array.copy group;
             states = [| mk_state ~prob:p ~frac:0. () |];
           })
         groups)
  in
  create ~nedges units

let default_levels = [| (0., 0.5); (0.3, 0.3); (0.7, 0.2) |]

let partial ?median ?shape ?(levels = default_levels) ~graph ~seed () =
  let nedges = Flexile_net.Graph.nedges graph in
  if Array.length levels = 0 then
    invalid_arg "Scenario_gen.partial: no degradation levels";
  let wtotal =
    Array.fold_left
      (fun a (_, w) ->
        if w <= 0. then
          invalid_arg "Scenario_gen.partial: level weights must be positive";
        a +. w)
      0. levels
  in
  let units =
    List.init nedges (fun e ->
        let p = weibull_prob ?median ?shape seed in
        {
          uname = Printf.sprintf "partial-%d" e;
          regime = "partial";
          edges = [| e |];
          states =
            Array.map
              (fun (frac, w) -> mk_state ~prob:(p *. w /. wtotal) ~frac ())
              levels;
        })
  in
  create ~nedges units

type window = {
  wname : string;
  wedges : int array;
  wstart : float;
  wduration : float;
}

(* Planned maintenance: a schedule of non-overlapping windows over an
   abstract planning horizon.  A uniformly drawn instant lands inside
   window w with probability wduration / horizon, and in at most one
   window — so the schedule is exactly ONE multi-state unit whose
   states are the windows, each removing its own links.  Purely a
   function of the schedule: no clock, no seed. *)
let maintenance ~nedges ~horizon windows =
  if horizon <= 0. then invalid_arg "Scenario_gen.maintenance: horizon <= 0";
  if windows = [] then invalid_arg "Scenario_gen.maintenance: no windows";
  List.iter
    (fun w ->
      if w.wduration <= 0. then
        invalid_arg
          (Printf.sprintf "Scenario_gen.maintenance: window %s duration <= 0"
             w.wname);
      if w.wstart < 0. || w.wstart +. w.wduration > horizon then
        invalid_arg
          (Printf.sprintf
             "Scenario_gen.maintenance: window %s outside the horizon" w.wname))
    windows;
  let sorted = List.sort (fun a b -> Float.compare a.wstart b.wstart) windows in
  let rec check_overlap = function
    | a :: (b :: _ as rest) ->
        if a.wstart +. a.wduration > b.wstart then
          invalid_arg
            (Printf.sprintf
               "Scenario_gen.maintenance: windows %s and %s overlap" a.wname
               b.wname);
        check_overlap rest
    | _ -> ()
  in
  check_overlap sorted;
  let union =
    Array.of_list
      (List.sort_uniq compare
         (List.concat_map (fun w -> Array.to_list w.wedges) sorted))
  in
  create ~nedges
    [
      {
        uname = "maintenance";
        regime = "maintenance";
        edges = union;
        states =
          Array.of_list
            (List.map
               (fun w ->
                 mk_state
                   ~prob:(w.wduration /. horizon)
                   ~frac:0.
                   ~sedges:(Array.copy w.wedges)
                   ())
               sorted);
      };
    ]

let demand_states ?regime ~nedges ~name states =
  if Array.length states = 0 then
    invalid_arg "Scenario_gen.demand_states: no states";
  create ~nedges
    [
      {
        uname = name;
        regime = (match regime with Some r -> r | None -> name);
        edges = [||];
        states =
          Array.map (fun (p, d) -> mk_state ~prob:p ~frac:0. ~demand:d ())
            states;
      };
    ]

let diurnal ~nedges ?(levels = [| (1.25, 0.2); (0.75, 0.2) |]) () =
  demand_states ~nedges ~name:"diurnal"
    (Array.map (fun (scale, p) -> (p, Scale scale)) levels)

(* ------------------------------------------------------------------ *)
(* Enumeration                                                         *)
(* ------------------------------------------------------------------ *)

type set = {
  scenarios : FM.scenario array;
  pair_factors : float array array option;
  regimes : string array;
}

let to_failure_model t =
  FM.multi_state_full ~nedges:t.nedges
    (Array.map
       (fun u ->
         Array.map
           (fun s ->
             let edges =
               match s.sedges with Some e -> e | None -> u.edges
             in
             (s.prob, s.frac, edges))
           u.states)
       t.units)

let has_demand t =
  Array.exists
    (fun u ->
      Array.exists
        (fun s -> match s.demand with No_change -> false | _ -> true)
        u.states)
    t.units

let inferred_npairs t =
  Array.fold_left
    (fun acc u ->
      Array.fold_left
        (fun acc s ->
          match s.demand with
          | Per_pair fs -> (
              let n = Array.length fs in
              match acc with
              | None -> Some n
              | Some m ->
                  if m <> n then
                    invalid_arg
                      "Scenario_gen: inconsistent per-pair factor lengths";
                  acc)
          | _ -> acc)
        acc u.states)
    None t.units

let pair_factors_of_scenario t ~npairs (s : FM.scenario) =
  let factors = Array.make npairs 1. in
  Array.iteri
    (fun i u ->
      match t.units.(u).states.(s.FM.failed_states.(i)).demand with
      | No_change -> ()
      | Scale f ->
          for p = 0 to npairs - 1 do
            factors.(p) <- factors.(p) *. f
          done
      | Per_pair fs ->
          for p = 0 to npairs - 1 do
            factors.(p) <- factors.(p) *. fs.(p)
          done)
    s.FM.failed_units;
  factors

(* A scenario is tagged with the regime of the units it degrades:
   "nominal" for the all-up scenario, the common regime when every
   failed unit agrees, "mixed" when regimes co-occur.  The tag is what
   lets attainment be reported conditioned on failure regime. *)
let regime_of_scenario t (s : FM.scenario) =
  if Array.length s.FM.failed_units = 0 then "nominal"
  else begin
    let r0 = t.units.(s.FM.failed_units.(0)).regime in
    if Array.for_all (fun u -> String.equal t.units.(u).regime r0)
         s.FM.failed_units
    then r0
    else "mixed"
  end

let enumerate ?cutoff ?max_scenarios ?npairs t =
  let scenarios = FM.enumerate ?cutoff ?max_scenarios (to_failure_model t) in
  let pair_factors =
    if not (has_demand t) then None
    else begin
      let npairs =
        match (npairs, inferred_npairs t) with
        | Some n, Some m ->
            if n <> m then invalid_arg "Scenario_gen.enumerate: npairs mismatch";
            n
        | Some n, None -> n
        | None, Some m -> m
        | None, None ->
            invalid_arg
              "Scenario_gen.enumerate: npairs required for uniform demand \
               states"
      in
      Some (Array.map (pair_factors_of_scenario t ~npairs) scenarios)
    end
  in
  { scenarios; pair_factors; regimes = Array.map (regime_of_scenario t) scenarios }

(* ------------------------------------------------------------------ *)
(* Monte-Carlo draws (statistical tests, monitors)                     *)
(* ------------------------------------------------------------------ *)

let sample t rng =
  Array.map
    (fun u ->
      let x = Prng.float rng in
      let acc = ref 0. and hit = ref (-1) in
      Array.iteri
        (fun s st ->
          if !hit < 0 then begin
            acc := !acc +. st.prob;
            if x < !acc then hit := s
          end)
        u.states;
      !hit)
    t.units

let edge_down_prob t e =
  (* an edge is hard-down iff at least one unit sits in a frac-0 state
     whose edge set contains it; units are independent *)
  let up = ref 1. in
  Array.iter
    (fun u ->
      let down = ref 0. in
      Array.iter
        (fun s ->
          let edges = match s.sedges with Some es -> es | None -> u.edges in
          if s.frac <= 0. && Array.exists (fun e' -> e' = e) edges then
            down := !down +. s.prob)
        u.states;
      up := !up *. (1. -. !down))
    t.units;
  1. -. !up
