(** Stochastic failure model: shared-risk link groups (SRLGs) with
    independent failure probabilities, multi-state partial-capacity
    units, and best-first enumeration of the most probable disjoint
    failure scenarios.

    In the default model every link is its own SRLG with a
    Weibull-distributed failure probability whose median is ~0.001,
    matching the paper's §6 methodology and the WAN measurement
    studies it cites.

    A {e unit} is an independent cause of degradation (a link, a
    fiber conduit, a maintenance calendar).  Each unit has one or more
    mutually exclusive non-nominal {e states}; a state carries the
    capacity fraction its member edges retain (0 = hard cut, 0.3 = the
    link limps at 30%).  The unit's nominal ("all good") mass is
    [1 - sum of state probabilities]: the states are disjoint events
    of one cause, so their masses ADD.  (Modelling each state as an
    independent binary unit — the old binary up/down accounting —
    multiplies complements instead and double-counts mass the moment a
    partial-capacity state enters the enumeration next to the hard cut
    of the same link; {!multi_state} is the corrected accounting, and
    the binary constructors are the one-state special case for which
    both accountings coincide.) *)

(** One non-nominal state of a unit. *)
type state = {
  sprob : float;  (** probability of this state *)
  sfrac : float;
      (** capacity fraction retained by this state's edges, in [0, 1):
          0 is a hard cut *)
  sedges : int array;
      (** edges degraded by this state.  For binary units and
          {!multi_state} this is the unit's edge set; states of a
          maintenance-calendar unit remove different links. *)
}

type t = {
  nedges : int;
  unit_probs : float array;
      (** total non-nominal probability of each unit (sum over its
          states) *)
  unit_edges : int array array;
      (** unit -> union of the edge ids its states degrade *)
  unit_states : state array array;  (** unit -> mutually exclusive states *)
}

val independent_links :
  ?median:float ->
  ?shape:float ->
  graph:Flexile_net.Graph.t ->
  seed:Flexile_util.Prng.t ->
  unit ->
  t
(** One binary SRLG per link; probabilities sampled from a Weibull
    whose median is [median] (default 0.001), shape default 0.8,
    clamped to [1e-5, 0.3]. *)

val of_probs : nedges:int -> float array -> t
(** One binary SRLG per link with the given probabilities (testing and
    the paper's toy examples where every link fails with 0.01). *)

val grouped :
  groups:int array array -> probs:float array -> nedges:int -> t
(** Explicit binary SRLGs: [groups.(i)] lists the edges failing
    together with probability [probs.(i)]. *)

val multi_state : nedges:int -> (int array * (float * float) array) array -> t
(** [multi_state ~nedges units] builds a general model.  Each unit is
    [(edges, states)] where every state is [(probability, capacity
    fraction)].  States of one unit are mutually exclusive; the unit is
    nominal with probability [1 - sum of state probabilities].  Raises
    [Invalid_argument] on out-of-range edges, probabilities outside
    (0,1), fractions outside [0,1), or unit mass >= 1.  A unit may have
    an empty edge set (callers such as {!Scenario_gen} use edge-free
    units for demand perturbation states). *)

val multi_state_full :
  nedges:int -> (float * float * int array) array array -> t
(** Like {!multi_state} but each state carries its own edge set:
    [(probability, capacity fraction, edges)].  The unit's [unit_edges]
    entry becomes the sorted union.  This is the exact encoding of a
    maintenance calendar: non-overlapping windows are mutually
    exclusive states of one unit, each removing its own links. *)

(** A failure scenario: a subset of units in a non-nominal state, all
    others nominal.  Scenarios are disjoint events; probabilities of an
    enumeration sum to at most 1. *)
type scenario = {
  sid : int;  (** dense index within the enumeration *)
  failed_units : int array;  (** ascending unit ids *)
  failed_states : int array;
      (** state index per failed unit, aligned with [failed_units]
          (always 0 for binary units) *)
  prob : float;
  edge_alive : bool array;
      (** length [nedges]; an edge is alive iff its capacity fraction
          is positive (a degraded link still carries traffic) *)
  cap_frac : float array;
      (** length [nedges]; remaining capacity fraction per edge, the
          product over failed units touching it ([1.] nominal, [0.]
          cut) *)
}

val no_failure : t -> scenario

val enumerate :
  ?cutoff:float -> ?max_scenarios:int -> t -> scenario array
(** Scenarios in non-increasing probability order, stopping below
    probability [cutoff] (default 1e-6, the paper's threshold) or at
    [max_scenarios] (default 400).  The no-failure scenario is first.
    Raises [Invalid_argument] if any unit's total state mass is
    >= 0.5 (best-first ordering needs every state less likely than the
    nominal state). *)

val coverage : scenario array -> float
(** Total probability mass of the enumerated scenarios.  The
    unenumerated tail [1 - coverage] is well defined for multi-state
    units because each unit's nominal mass is [1 - sum of states]. *)

val scenario_of_units : t -> sid:int -> int array -> scenario
(** Build a specific scenario from failed unit ids, each in its first
    state (testing; probability computed from the model). *)

val scenario_of_states : t -> sid:int -> (int * int) array -> scenario
(** Build a specific scenario from (unit, state index) pairs. *)
