test/test_te_props.ml: Alcotest Array Flexile_core Flexile_net Flexile_scheme Flexile_te Flexile_util Float Gen Instance List Lower_bound Metrics Printf QCheck QCheck_alcotest Scenbest Teavar
