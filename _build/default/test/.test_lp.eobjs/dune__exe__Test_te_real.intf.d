test/test_te_real.mli:
