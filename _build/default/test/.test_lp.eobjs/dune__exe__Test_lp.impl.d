test/test_lp.ml: Alcotest Array Flexile_lp Flexile_util Float List Lp_model Mip Presolve Printf QCheck QCheck_alcotest Row_gen Simplex
