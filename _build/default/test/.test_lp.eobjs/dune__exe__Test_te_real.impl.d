test/test_te_real.ml: Alcotest Array Flexile_core Flexile_failure Flexile_net Flexile_offline Flexile_scheme Flexile_te Instance Ip_direct Lazy List Lower_bound Metrics Printf Scenbest
