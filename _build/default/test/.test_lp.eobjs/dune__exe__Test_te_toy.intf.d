test/test_te_toy.mli:
