test/test_traffic.ml: Alcotest Array Flexile_net Flexile_te Flexile_traffic Flexile_util Float List QCheck QCheck_alcotest
