test/test_metrics.ml: Alcotest Array Flexile_failure Flexile_net Flexile_te Float Instance List Metrics
