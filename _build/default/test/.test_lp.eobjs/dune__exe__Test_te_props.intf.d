test/test_te_props.mli:
