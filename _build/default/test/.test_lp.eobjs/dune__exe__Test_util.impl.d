test/test_util.ml: Alcotest Array Flexile_util Float
