test/test_failure.ml: Alcotest Array Flexile_failure Flexile_net Flexile_util Float List QCheck QCheck_alcotest
