test/test_emu.ml: Alcotest Array Flexile_core Flexile_emu Flexile_net Flexile_scheme Flexile_te Flexile_util Instance Scenbest
