test/test_net.ml: Alcotest Array Catalog Flexile_net Flexile_util Gen Gml Graph List Paths Printf QCheck QCheck_alcotest Tunnels
