(* Tests for the LP/MIP substrate: simplex correctness on known
   problems, duality certificates, warm restarts, branch-and-bound, and
   randomized property tests against a brute-force vertex enumerator. *)

open Flexile_lp

let feq ?(eps = 1e-6) a b = Float.abs (a -. b) <= eps

let check_float ~msg expected actual =
  if not (feq expected actual) then
    Alcotest.failf "%s: expected %.9g, got %.9g" msg expected actual

let solve_status = function
  | Simplex.Optimal -> "optimal"
  | Simplex.Infeasible -> "infeasible"
  | Simplex.Unbounded -> "unbounded"
  | Simplex.Iteration_limit -> "iter-limit"

let expect_optimal sol =
  if sol.Simplex.status <> Simplex.Optimal then
    Alcotest.failf "expected optimal, got %s" (solve_status sol.Simplex.status)

(* ---------------- hand-built LPs ---------------- *)

let test_basic_lp () =
  (* max x + 2y s.t. x + y <= 4; x <= 3; y <= 2; x,y >= 0
     -> min -(x+2y); optimum x=2,y=2, obj=-6 *)
  let m = Lp_model.create ~name:"basic" () in
  let x = Lp_model.add_var m ~obj:(-1.) () in
  let y = Lp_model.add_var m ~obj:(-2.) () in
  let _ = Lp_model.add_row m Lp_model.Le 4. [ (x, 1.); (y, 1.) ] in
  let _ = Lp_model.add_row m Lp_model.Le 3. [ (x, 1.) ] in
  let _ = Lp_model.add_row m Lp_model.Le 2. [ (y, 1.) ] in
  let sol = Simplex.solve m in
  expect_optimal sol;
  check_float ~msg:"objective" (-6.) sol.Simplex.obj;
  check_float ~msg:"x" 2. sol.Simplex.x.(x);
  check_float ~msg:"y" 2. sol.Simplex.x.(y)

let test_equality_and_ge () =
  (* min x + y s.t. x + y = 3; x - y >= 1; x,y >= 0 -> x=2,y=1 obj=3 *)
  let m = Lp_model.create () in
  let x = Lp_model.add_var m ~obj:1. () in
  let y = Lp_model.add_var m ~obj:1. () in
  let _ = Lp_model.add_row m Lp_model.Eq 3. [ (x, 1.); (y, 1.) ] in
  let _ = Lp_model.add_row m Lp_model.Ge 1. [ (x, 1.); (y, -1.) ] in
  let sol = Simplex.solve m in
  expect_optimal sol;
  check_float ~msg:"objective" 3. sol.Simplex.obj

let test_bounded_vars () =
  (* min -x - y, x in [1, 2], y in [0, 5], x + y <= 4 -> x=2,y=2 *)
  let m = Lp_model.create () in
  let x = Lp_model.add_var m ~lb:1. ~ub:2. ~obj:(-1.) () in
  let y = Lp_model.add_var m ~lb:0. ~ub:5. ~obj:(-1.) () in
  let _ = Lp_model.add_row m Lp_model.Le 4. [ (x, 1.); (y, 1.) ] in
  let sol = Simplex.solve m in
  expect_optimal sol;
  check_float ~msg:"objective" (-4.) sol.Simplex.obj;
  check_float ~msg:"x at ub" 2. sol.Simplex.x.(x)

let test_free_variable () =
  (* min y s.t. y >= x - 2; y >= -x; x free -> x=1, y=-1 *)
  let m = Lp_model.create () in
  let x = Lp_model.add_var m ~lb:neg_infinity ~ub:infinity () in
  let y = Lp_model.add_var m ~lb:neg_infinity ~ub:infinity ~obj:1. () in
  let _ = Lp_model.add_row m Lp_model.Ge (-2.) [ (y, 1.); (x, -1.) ] in
  let _ = Lp_model.add_row m Lp_model.Ge 0. [ (y, 1.); (x, 1.) ] in
  let sol = Simplex.solve m in
  expect_optimal sol;
  check_float ~msg:"objective" (-1.) sol.Simplex.obj

let test_infeasible () =
  let m = Lp_model.create () in
  let x = Lp_model.add_var m ~obj:1. () in
  let _ = Lp_model.add_row m Lp_model.Ge 3. [ (x, 1.) ] in
  let _ = Lp_model.add_row m Lp_model.Le 1. [ (x, 1.) ] in
  let sol = Simplex.solve m in
  Alcotest.(check string)
    "status" "infeasible"
    (solve_status sol.Simplex.status)

let test_unbounded () =
  let m = Lp_model.create () in
  let x = Lp_model.add_var m ~obj:(-1.) () in
  let y = Lp_model.add_var m () in
  let _ = Lp_model.add_row m Lp_model.Ge 0. [ (x, 1.); (y, -1.) ] in
  let sol = Simplex.solve m in
  Alcotest.(check string) "status" "unbounded" (solve_status sol.Simplex.status)

let test_degenerate () =
  (* Classic degenerate LP; checks anti-cycling. *)
  let m = Lp_model.create () in
  let x1 = Lp_model.add_var m ~obj:(-0.75) () in
  let x2 = Lp_model.add_var m ~obj:150. () in
  let x3 = Lp_model.add_var m ~obj:(-0.02) () in
  let x4 = Lp_model.add_var m ~obj:6. () in
  let _ =
    Lp_model.add_row m Lp_model.Le 0.
      [ (x1, 0.25); (x2, -60.); (x3, -0.04); (x4, 9.) ]
  in
  let _ =
    Lp_model.add_row m Lp_model.Le 0.
      [ (x1, 0.5); (x2, -90.); (x3, -0.02); (x4, 3.) ]
  in
  let _ = Lp_model.add_row m Lp_model.Le 1. [ (x3, 1.) ] in
  let sol = Simplex.solve m in
  expect_optimal sol;
  check_float ~msg:"objective (Beale)" (-0.05) sol.Simplex.obj

let test_duality_certificate () =
  let m = Lp_model.create () in
  let x = Lp_model.add_var m ~obj:(-3.) ~ub:10. () in
  let y = Lp_model.add_var m ~obj:(-5.) ~ub:10. () in
  let r1 = Lp_model.add_row m Lp_model.Le 4. [ (x, 1.) ] in
  let r2 = Lp_model.add_row m Lp_model.Le 12. [ (y, 2.) ] in
  let r3 = Lp_model.add_row m Lp_model.Le 18. [ (x, 3.); (y, 2.) ] in
  ignore (r1, r2, r3);
  let sol = Simplex.solve m in
  expect_optimal sol;
  check_float ~msg:"objective" (-36.) sol.Simplex.obj;
  (* strong duality at the original rhs *)
  let rhs = [| 4.; 12.; 18. |] in
  check_float ~msg:"dual bound equals obj" sol.Simplex.obj
    (Simplex.dual_bound sol ~rhs);
  (* weak duality for perturbed rhs: bound <= true optimum *)
  let rhs' = [| 4.; 10.; 15. |] in
  let m2 = Lp_model.create () in
  let x2 = Lp_model.add_var m2 ~obj:(-3.) ~ub:10. () in
  let y2 = Lp_model.add_var m2 ~obj:(-5.) ~ub:10. () in
  let _ = Lp_model.add_row m2 Lp_model.Le 4. [ (x2, 1.) ] in
  let _ = Lp_model.add_row m2 Lp_model.Le 10. [ (y2, 2.) ] in
  let _ = Lp_model.add_row m2 Lp_model.Le 15. [ (x2, 3.); (y2, 2.) ] in
  let sol2 = Simplex.solve m2 in
  expect_optimal sol2;
  if Simplex.dual_bound sol ~rhs:rhs' > sol2.Simplex.obj +. 1e-6 then
    Alcotest.failf "dual bound %.9g exceeds optimum %.9g"
      (Simplex.dual_bound sol ~rhs:rhs')
      sol2.Simplex.obj

let test_warm_restart () =
  (* Solve, then change rhs and re-solve warm; must match a cold solve. *)
  let build rhs1 rhs2 =
    let m = Lp_model.create () in
    let x = Lp_model.add_var m ~obj:(-2.) () in
    let y = Lp_model.add_var m ~obj:(-3.) () in
    let _ = Lp_model.add_row m Lp_model.Le rhs1 [ (x, 1.); (y, 2.) ] in
    let _ = Lp_model.add_row m Lp_model.Le rhs2 [ (x, 3.); (y, 1.) ] in
    m
  in
  let m = build 10. 15. in
  let st = Simplex.make m in
  let sol1 = Simplex.solve_warm st in
  expect_optimal sol1;
  let cold1 = Simplex.solve (build 10. 15.) in
  check_float ~msg:"warm=cold initial" cold1.Simplex.obj sol1.Simplex.obj;
  (* tighten rhs *)
  let sol2 = Simplex.resolve_rhs st [| 6.; 9. |] in
  expect_optimal sol2;
  let cold2 = Simplex.solve (build 6. 9.) in
  check_float ~msg:"warm=cold tightened" cold2.Simplex.obj sol2.Simplex.obj;
  (* loosen rhs *)
  let sol3 = Simplex.resolve_rhs st [| 20.; 30. |] in
  expect_optimal sol3;
  let cold3 = Simplex.solve (build 20. 30.) in
  check_float ~msg:"warm=cold loosened" cold3.Simplex.obj sol3.Simplex.obj

let test_warm_restart_infeasible () =
  let m = Lp_model.create () in
  let x = Lp_model.add_var m ~ub:5. ~obj:1. () in
  let _ = Lp_model.add_row m Lp_model.Ge 2. [ (x, 1.) ] in
  let st = Simplex.make m in
  let sol1 = Simplex.solve_warm st in
  expect_optimal sol1;
  check_float ~msg:"initial obj" 2. sol1.Simplex.obj;
  let sol2 = Simplex.resolve_rhs st [| 7. |] in
  Alcotest.(check string)
    "infeasible rhs" "infeasible"
    (solve_status sol2.Simplex.status)

let test_extend_rows () =
  (* cutting-plane warm start: solve, add rows, extend, re-solve; must
     match a cold solve of the extended model *)
  let m = Lp_model.create () in
  let x = Lp_model.add_var m ~obj:(-1.) ~ub:10. () in
  let y = Lp_model.add_var m ~obj:(-1.) ~ub:10. () in
  let _ = Lp_model.add_row m Lp_model.Le 12. [ (x, 1.); (y, 1.) ] in
  let st = Simplex.make m in
  let sol1 = Simplex.solve_warm st in
  expect_optimal sol1;
  check_float ~msg:"initial" (-12.) sol1.Simplex.obj;
  let _ = Lp_model.add_row m Lp_model.Le 4. [ (x, 1.) ] in
  let _ = Lp_model.add_row m Lp_model.Le 9. [ (x, 1.); (y, 2.) ] in
  let st2 = Simplex.extend st m in
  let sol2 = Simplex.solve_warm st2 in
  expect_optimal sol2;
  let cold = Simplex.solve m in
  check_float ~msg:"extended warm = cold" cold.Simplex.obj sol2.Simplex.obj;
  if Lp_model.max_violation m sol2.Simplex.x > 1e-6 then
    Alcotest.fail "warm-extended solution infeasible";
  (* a second extension round *)
  let _ = Lp_model.add_row m Lp_model.Ge 2. [ (y, 1.) ] in
  let st3 = Simplex.extend st2 m in
  let sol3 = Simplex.solve_warm st3 in
  expect_optimal sol3;
  let cold3 = Simplex.solve m in
  check_float ~msg:"second extension" cold3.Simplex.obj sol3.Simplex.obj

(* ---------------- lazy row generation ---------------- *)

let test_row_gen () =
  (* minimize -x - y over the polytope {x+y <= 4, x <= 3, y <= 3},
     with the first constraint supplied lazily: the generator reports
     it only when the current point violates it *)
  let m = Lp_model.create () in
  let x = Lp_model.add_var m ~obj:(-1.) ~ub:3. () in
  let y = Lp_model.add_var m ~obj:(-1.) ~ub:3. () in
  let violated sol =
    if sol.(x) +. sol.(y) > 4. +. 1e-7 then
      [
        {
          Row_gen.sense = Lp_model.Le;
          rhs = 4.;
          coeffs = [ (x, 1.); (y, 1.) ];
        };
      ]
    else []
  in
  let sol, rounds = Row_gen.solve ~violated m in
  expect_optimal sol;
  check_float ~msg:"objective" (-4.) sol.Simplex.obj;
  if rounds < 2 then Alcotest.fail "expected at least one generation round";
  (* the generated row is now a permanent part of the model *)
  Alcotest.(check int) "row added" 1 (Lp_model.nrows m)

(* ---------------- presolve ---------------- *)

let test_presolve_reductions () =
  let m = Lp_model.create () in
  let x = Lp_model.add_var m ~obj:(-1.) ~ub:10. () in
  let y = Lp_model.add_var m ~lb:2. ~ub:2. ~obj:5. () in
  (* fixed *)
  let z = Lp_model.add_var m ~obj:(-2.) ~ub:10. () in
  let _ = Lp_model.add_row m Lp_model.Le 9. [ (x, 1.); (y, 1.); (z, 1.) ] in
  let _ = Lp_model.add_row m Lp_model.Le 4. [ (z, 1.) ] in
  (* singleton *)
  let _ = Lp_model.add_row m Lp_model.Le 100. [ (y, 3.) ] in
  (* empty after fixing *)
  (match Presolve.reduce m with
  | Error `Infeasible -> Alcotest.fail "unexpected infeasibility"
  | Ok r ->
      Alcotest.(check int) "reduced vars" 2 (Lp_model.nvars (Presolve.model r));
      Alcotest.(check int) "reduced rows" 1 (Lp_model.nrows (Presolve.model r)));
  let sol = Presolve.solve m in
  expect_optimal sol;
  (* optimum: z = 4, x = 9 - 2 - 4 = 3; obj = -3 + 10 - 8 = -1 *)
  check_float ~msg:"presolved objective" (-1.) sol.Simplex.obj;
  check_float ~msg:"fixed var kept" 2. sol.Simplex.x.(y);
  let plain = Simplex.solve m in
  check_float ~msg:"matches plain solve" plain.Simplex.obj sol.Simplex.obj;
  check_float ~msg:"dual bound at original rhs" sol.Simplex.obj
    (Simplex.dual_bound sol
       ~rhs:(Array.init (Lp_model.nrows m) (Lp_model.rhs m)))

let test_presolve_detects_infeasible () =
  let m = Lp_model.create () in
  let x = Lp_model.add_var m ~lb:3. ~ub:3. () in
  let _ = Lp_model.add_row m Lp_model.Le 1. [ (x, 1.) ] in
  (match Presolve.reduce m with
  | Error `Infeasible -> ()
  | Ok _ -> Alcotest.fail "singleton infeasibility missed");
  let sol = Presolve.solve m in
  Alcotest.(check string) "status" "infeasible" (solve_status sol.Simplex.status)

let qcheck_presolve_matches_plain =
  let gen = QCheck.Gen.(pair (int_range 2 7) (int_range 1 7)) in
  QCheck.Test.make ~name:"presolve matches plain solve" ~count:120
    (QCheck.make gen) (fun (nv, nr) ->
      let prng =
        Flexile_util.Prng.of_string (Printf.sprintf "qc-pre-%d-%d" nv nr)
      in
      let m = Lp_model.create () in
      let vars =
        Array.init nv (fun j ->
            (* a mix of fixed, bounded and free-ish variables *)
            if j mod 3 = 0 then
              let v = Flexile_util.Prng.uniform prng 0. 2. in
              Lp_model.add_var m ~lb:v ~ub:v
                ~obj:(Flexile_util.Prng.uniform prng (-1.) 1.)
                ()
            else
              Lp_model.add_var m ~ub:4.
                ~obj:(Flexile_util.Prng.uniform prng (-1.) 1.)
                ())
      in
      for _ = 1 to nr do
        let coeffs =
          Array.to_list
            (Array.map
               (fun v -> (v, float_of_int (Flexile_util.Prng.int prng 5 - 2)))
               vars)
        in
        let sense =
          if Flexile_util.Prng.bool prng 0.6 then Lp_model.Le else Lp_model.Ge
        in
        ignore
          (Lp_model.add_row m sense (Flexile_util.Prng.uniform prng (-1.) 6.)
             coeffs)
      done;
      let a = Presolve.solve m and b = Simplex.solve m in
      match (a.Simplex.status, b.Simplex.status) with
      | Simplex.Optimal, Simplex.Optimal ->
          feq ~eps:1e-5 a.Simplex.obj b.Simplex.obj
          && Lp_model.max_violation m a.Simplex.x <= 1e-5
      | sa, sb -> sa = sb)

(* ---------------- MIP ---------------- *)

let test_mip_knapsack () =
  (* max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary.
     Optimum: a=0, b=1, c=1 -> 20. *)
  let m = Lp_model.create () in
  let a = Lp_model.add_var m ~ub:1. ~obj:(-10.) () in
  let b = Lp_model.add_var m ~ub:1. ~obj:(-13.) () in
  let c = Lp_model.add_var m ~ub:1. ~obj:(-7.) () in
  let _ = Lp_model.add_row m Lp_model.Le 6. [ (a, 3.); (b, 4.); (c, 2.) ] in
  let r = Mip.solve ~binaries:[| a; b; c |] m in
  if r.Mip.status <> Mip.Optimal then Alcotest.fail "knapsack not optimal";
  check_float ~msg:"objective" (-20.) r.Mip.obj;
  check_float ~msg:"b" 1. r.Mip.x.(b);
  check_float ~msg:"c" 1. r.Mip.x.(c)

let test_mip_infeasible () =
  let m = Lp_model.create () in
  let a = Lp_model.add_var m ~ub:1. () in
  let b = Lp_model.add_var m ~ub:1. () in
  let _ = Lp_model.add_row m Lp_model.Ge 3. [ (a, 1.); (b, 1.) ] in
  let r = Mip.solve ~binaries:[| a; b |] m in
  if r.Mip.status <> Mip.Infeasible then Alcotest.fail "expected infeasible"

let test_mip_mixed () =
  (* min y - x s.t. y >= 1.3 z, x <= 2 + z, x <= 3, z binary, y >= 0.
     z=1: obj >= 1.3 - 3 = -1.7 ; z=0: obj >= 0 - 2 = -2 -> optimum -2. *)
  let m = Lp_model.create () in
  let x = Lp_model.add_var m ~obj:(-1.) () in
  let y = Lp_model.add_var m ~obj:1. () in
  let z = Lp_model.add_var m ~ub:1. () in
  let _ = Lp_model.add_row m Lp_model.Ge 0. [ (y, 1.); (z, -1.3) ] in
  let _ = Lp_model.add_row m Lp_model.Le 2. [ (x, 1.); (z, -1.) ] in
  let _ = Lp_model.add_row m Lp_model.Le 3. [ (x, 1.) ] in
  let r = Mip.solve ~binaries:[| z |] m in
  if r.Mip.status <> Mip.Optimal then Alcotest.fail "not optimal";
  check_float ~msg:"objective" (-2.) r.Mip.obj

let test_mip_heuristic_used () =
  (* A model where the rounding heuristic immediately gives the optimum;
     check it is accepted (status optimal with tiny node count). *)
  let m = Lp_model.create () in
  let vars = Array.init 6 (fun _ -> Lp_model.add_var m ~ub:1. ~obj:(-1.) ()) in
  let coeffs = Array.to_list (Array.map (fun v -> (v, 1.)) vars) in
  let _ = Lp_model.add_row m Lp_model.Le 3.5 coeffs in
  let heuristic lp_x =
    let cand = Array.map (fun v -> if lp_x.(v) >= 0.99 then 1. else 0.) (Array.init (Lp_model.nvars m) (fun i -> i)) in
    (* keep only 3 ones *)
    let count = ref 0 in
    Array.iteri
      (fun i v ->
        if v = 1. then begin
          incr count;
          if !count > 3 then cand.(i) <- 0.
        end)
      cand;
    Some cand
  in
  let r = Mip.solve ~heuristic ~binaries:vars m in
  if r.Mip.status <> Mip.Optimal then Alcotest.fail "not optimal";
  check_float ~msg:"objective" (-3.) r.Mip.obj

(* ---------------- property tests ---------------- *)

(* Brute-force reference: for 2-variable LPs with Le rows and box
   bounds, enumerate candidate vertices (intersections of all pairs of
   tight constraints) and take the best feasible one. *)
let brute_force_2d ~lbx ~ubx ~lby ~uby ~rows ~cx ~cy =
  (* lines: a x + b y = c from rows and bounds *)
  let lines =
    (1., 0., lbx) :: (1., 0., ubx) :: (0., 1., lby) :: (0., 1., uby)
    :: List.map (fun (a, b, c) -> (a, b, c)) rows
  in
  let feasible (x, y) =
    x >= lbx -. 1e-9 && x <= ubx +. 1e-9 && y >= lby -. 1e-9
    && y <= uby +. 1e-9
    && List.for_all (fun (a, b, c) -> (a *. x) +. (b *. y) <= c +. 1e-9) rows
  in
  let best = ref None in
  let consider p =
    if feasible p then begin
      let x, y = p in
      let v = (cx *. x) +. (cy *. y) in
      match !best with
      | Some b when b <= v -> ()
      | _ -> best := Some v
    end
  in
  List.iteri
    (fun i (a1, b1, c1) ->
      List.iteri
        (fun j (a2, b2, c2) ->
          if i < j then begin
            let det = (a1 *. b2) -. (a2 *. b1) in
            if Float.abs det > 1e-9 then begin
              let x = ((c1 *. b2) -. (c2 *. b1)) /. det in
              let y = ((a1 *. c2) -. (a2 *. c1)) /. det in
              consider (x, y)
            end
          end)
        lines)
    lines;
  !best

let qcheck_2d_lp =
  let gen =
    QCheck.Gen.(
      let coef = map (fun i -> float_of_int i /. 4.) (int_range (-20) 20) in
      let pos = map (fun i -> float_of_int i /. 2.) (int_range 1 16) in
      let row = triple coef coef pos in
      quad coef coef (list_size (int_range 1 6) row) pos)
  in
  let arb = QCheck.make gen in
  QCheck.Test.make ~name:"simplex matches 2d brute force" ~count:300 arb
    (fun (cx, cy, rows, ub) ->
      let m = Lp_model.create () in
      let x = Lp_model.add_var m ~ub ~obj:cx () in
      let y = Lp_model.add_var m ~ub ~obj:cy () in
      List.iter
        (fun (a, b, c) ->
          ignore (Lp_model.add_row m Lp_model.Le c [ (x, a); (y, b) ]))
        rows;
      let sol = Simplex.solve m in
      let reference =
        brute_force_2d ~lbx:0. ~ubx:ub ~lby:0. ~uby:ub
          ~rows:(List.map (fun (a, b, c) -> (a, b, c)) rows)
          ~cx ~cy
      in
      match (sol.Simplex.status, reference) with
      | Simplex.Optimal, Some v -> feq ~eps:1e-5 v sol.Simplex.obj
      | Simplex.Optimal, None -> false
      | Simplex.Infeasible, None -> true
      | Simplex.Infeasible, Some _ -> false
      | _ -> false)

let qcheck_feasibility =
  (* Random larger LPs: if the solver reports optimal, the returned
     point must satisfy the model. *)
  let gen =
    QCheck.Gen.(
      let nv = int_range 2 8 and nr = int_range 1 8 in
      let coef = map (fun i -> float_of_int i /. 3.) (int_range (-9) 9) in
      pair (pair nv nr) (pair (list_size (return 80) coef) (list_size (return 10) coef)))
  in
  let arb = QCheck.make gen in
  QCheck.Test.make ~name:"optimal solutions are feasible" ~count:200 arb
    (fun ((nv, nr), (coefs, objs)) ->
      let coefs = Array.of_list coefs and objs = Array.of_list objs in
      let m = Lp_model.create () in
      let vars =
        Array.init nv (fun j ->
            Lp_model.add_var m ~ub:5. ~obj:objs.(j mod Array.length objs) ())
      in
      let k = ref 0 in
      for _ = 1 to nr do
        let entries =
          Array.to_list
            (Array.map
               (fun v ->
                 let c = coefs.(!k mod Array.length coefs) in
                 incr k;
                 (v, c))
               vars)
        in
        ignore (Lp_model.add_row m Lp_model.Le 4. entries)
      done;
      let sol = Simplex.solve m in
      match sol.Simplex.status with
      | Simplex.Optimal ->
          Lp_model.max_violation m sol.Simplex.x <= 1e-5
          && feq ~eps:1e-5
               (Lp_model.objective_value m sol.Simplex.x)
               sol.Simplex.obj
          && feq ~eps:1e-5 sol.Simplex.obj
               (Simplex.dual_bound sol
                  ~rhs:(Array.init (Lp_model.nrows m) (Lp_model.rhs m)))
      | _ -> true)

let qcheck_warm_rhs_sequences =
  (* sequences of RHS changes resolved warm must match cold solves —
     the regression that once broke Flexile's subproblem sweep *)
  let gen = QCheck.Gen.(pair (int_range 2 7) (int_range 1 6)) in
  QCheck.Test.make ~name:"dual simplex warm rhs sequences" ~count:60
    (QCheck.make gen) (fun (nv, nr) ->
      let prng =
        Flexile_util.Prng.of_string (Printf.sprintf "qc-warm-%d-%d" nv nr)
      in
      let m = Lp_model.create () in
      let vars =
        Array.init nv (fun _ ->
            Lp_model.add_var m
              ~ub:(if Flexile_util.Prng.bool prng 0.5 then 3. else infinity)
              ~obj:(Flexile_util.Prng.uniform prng (-2.) 2.)
              ())
      in
      for _ = 1 to nr do
        let coeffs =
          Array.to_list
            (Array.map
               (fun v -> (v, float_of_int (Flexile_util.Prng.int prng 7 - 3)))
               vars)
        in
        let sense =
          if Flexile_util.Prng.bool prng 0.7 then Lp_model.Le
          else if Flexile_util.Prng.bool prng 0.5 then Lp_model.Ge
          else Lp_model.Eq
        in
        ignore
          (Lp_model.add_row m sense (Flexile_util.Prng.uniform prng (-2.) 6.)
             coeffs)
      done;
      let st = Simplex.make m in
      let _ = Simplex.solve_warm st in
      let ok = ref true in
      for _ = 1 to 5 do
        if !ok then begin
          let rhs =
            Array.init (Lp_model.nrows m) (fun _ ->
                Flexile_util.Prng.uniform prng (-2.) 6.)
          in
          let warm = Simplex.resolve_rhs st rhs in
          Array.iteri (fun i r -> Lp_model.set_rhs m i r) rhs;
          let cold = Simplex.solve m in
          ok :=
            (match (warm.Simplex.status, cold.Simplex.status) with
            | Simplex.Optimal, Simplex.Optimal ->
                Float.abs (warm.Simplex.obj -. cold.Simplex.obj)
                <= 1e-5 *. (1. +. Float.abs cold.Simplex.obj)
            | a, b -> a = b)
        end
      done;
      !ok)

let qcheck_extend_rows =
  (* appending random rows and re-solving warm must match cold solves *)
  let gen = QCheck.Gen.(pair (int_range 2 6) (int_range 1 4)) in
  QCheck.Test.make ~name:"row extension matches cold solves" ~count:60
    (QCheck.make gen) (fun (nv, rounds) ->
      let prng =
        Flexile_util.Prng.of_string (Printf.sprintf "qc-extend-%d-%d" nv rounds)
      in
      let m = Lp_model.create () in
      let vars =
        Array.init nv (fun _ ->
            Lp_model.add_var m ~ub:5.
              ~obj:(Flexile_util.Prng.uniform prng (-2.) 1.)
              ())
      in
      ignore
        (Lp_model.add_row m Lp_model.Le 8.
           (Array.to_list (Array.map (fun v -> (v, 1.)) vars)));
      let st = ref (Simplex.make m) in
      let _ = Simplex.solve_warm !st in
      let ok = ref true in
      for _ = 1 to rounds do
        if !ok then begin
          let coeffs =
            Array.to_list
              (Array.map
                 (fun v -> (v, float_of_int (Flexile_util.Prng.int prng 5 - 2)))
                 vars)
          in
          let sense =
            if Flexile_util.Prng.bool prng 0.7 then Lp_model.Le else Lp_model.Ge
          in
          ignore
            (Lp_model.add_row m sense (Flexile_util.Prng.uniform prng (-1.) 5.)
               coeffs);
          st := Simplex.extend !st m;
          let warm = Simplex.solve_warm !st in
          let cold = Simplex.solve m in
          ok :=
            (match (warm.Simplex.status, cold.Simplex.status) with
            | Simplex.Optimal, Simplex.Optimal ->
                Float.abs (warm.Simplex.obj -. cold.Simplex.obj)
                <= 1e-5 *. (1. +. Float.abs cold.Simplex.obj)
            | a, b -> a = b)
        end
      done;
      !ok)

let qcheck_mip_vs_enum =
  (* Small random binary MIPs: branch-and-bound must match exhaustive
     enumeration. *)
  let gen =
    QCheck.Gen.(
      let coef = map (fun i -> float_of_int i /. 2.) (int_range (-8) 8) in
      pair (int_range 2 6) (pair (list_size (return 36) coef) (list_size (return 6) coef)))
  in
  let arb = QCheck.make gen in
  QCheck.Test.make ~name:"mip matches exhaustive enumeration" ~count:120 arb
    (fun (nv, (coefs, objs)) ->
      let coefs = Array.of_list coefs and objs = Array.of_list objs in
      let m = Lp_model.create () in
      let vars =
        Array.init nv (fun j ->
            Lp_model.add_var m ~ub:1. ~obj:objs.(j mod Array.length objs) ())
      in
      let k = ref 0 in
      for _ = 1 to 3 do
        let entries =
          Array.to_list
            (Array.map
               (fun v ->
                 let c = coefs.(!k mod Array.length coefs) in
                 incr k;
                 (v, c))
               vars)
        in
        ignore (Lp_model.add_row m Lp_model.Le 2. entries)
      done;
      let r = Mip.solve ~binaries:vars m in
      (* enumerate *)
      let best = ref infinity in
      let x = Array.make nv 0. in
      let rec enum j =
        if j = nv then begin
          if Lp_model.max_violation m x <= 1e-9 then
            best := Float.min !best (Lp_model.objective_value m x)
        end
        else begin
          x.(j) <- 0.;
          enum (j + 1);
          x.(j) <- 1.;
          enum (j + 1);
          x.(j) <- 0.
        end
      in
      enum 0;
      match r.Mip.status with
      | Mip.Optimal -> feq ~eps:1e-6 !best r.Mip.obj
      | Mip.Infeasible -> !best = infinity
      | _ -> false)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "flexile_lp"
    [
      ( "simplex",
        [
          quick "basic maximization" test_basic_lp;
          quick "equality and >= rows" test_equality_and_ge;
          quick "bounded variables" test_bounded_vars;
          quick "free variables" test_free_variable;
          quick "infeasible detection" test_infeasible;
          quick "unbounded detection" test_unbounded;
          quick "degenerate (Beale)" test_degenerate;
          quick "duality certificates" test_duality_certificate;
        ] );
      ( "warm-restart",
        [
          quick "rhs re-solve matches cold" test_warm_restart;
          quick "rhs re-solve infeasible" test_warm_restart_infeasible;
          quick "row extension (cutting planes)" test_extend_rows;
        ] );
      ( "row-generation", [ quick "lazy rows" test_row_gen ] );
      ( "presolve",
        [
          quick "reductions" test_presolve_reductions;
          quick "detects infeasibility" test_presolve_detects_infeasible;
        ] );
      ( "mip",
        [
          quick "knapsack" test_mip_knapsack;
          quick "infeasible" test_mip_infeasible;
          quick "mixed binary/continuous" test_mip_mixed;
          quick "heuristic incumbent" test_mip_heuristic_used;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_2d_lp;
            qcheck_feasibility;
            qcheck_warm_rhs_sequences;
            qcheck_extend_rows;
            qcheck_presolve_matches_plain;
            qcheck_mip_vs_enum;
          ] );
    ]
