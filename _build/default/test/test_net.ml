(* Tests for the network substrate: graph invariants, shortest paths,
   Yen's k-shortest, tunnel selection, the topology catalog, and the
   rich-connectivity transform. *)

open Flexile_net

let quick name f = Alcotest.test_case name `Quick f

(* a 6-node test graph with a known structure:
     0-1, 1-2, 2-3, 3-0 (square), 0-2 (diagonal), 3-4, 4-5, 5-3 (ear) *)
let square_ear () =
  Graph.create ~name:"square-ear" ~n:6
    [|
      (0, 1, 1.); (1, 2, 1.); (2, 3, 1.); (3, 0, 1.); (0, 2, 1.);
      (3, 4, 1.); (4, 5, 1.); (5, 3, 1.);
    |]

let test_graph_basics () =
  let g = square_ear () in
  Alcotest.(check int) "edges" 8 (Graph.nedges g);
  Alcotest.(check int) "degree 0" 3 (Graph.degree g 0);
  Alcotest.(check int) "degree 4" 2 (Graph.degree g 4);
  Alcotest.(check bool) "connected" true (Graph.is_connected_graph g ());
  Alcotest.(check int) "pairs" 15 (Array.length (Graph.pairs g))

let test_graph_validation () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.create: self-loop")
    (fun () -> ignore (Graph.create ~name:"x" ~n:2 [| (0, 0, 1.) |]));
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Graph.create: capacity <= 0") (fun () ->
      ignore (Graph.create ~name:"x" ~n:2 [| (0, 1, 0.) |]))

let test_connectivity_mask () =
  let g = square_ear () in
  (* killing edges 2-3 and 3-0 and 0-2... 0 and 3 connected only via
     square; remove 2-3 (id 2) and 3-0 (id 3): 3 unreachable from 0
     through the square, but 3 connects via the ear only to 4,5 *)
  let alive id = id <> 2 && id <> 3 in
  Alcotest.(check bool) "0-3 disconnected" false (Graph.connected g ~alive 0 3);
  Alcotest.(check bool) "0-2 still connected" true (Graph.connected g ~alive 0 2);
  Alcotest.(check bool) "3-5 still connected" true (Graph.connected g ~alive 3 5)

let test_dijkstra () =
  let g = square_ear () in
  (match Paths.shortest g ~src:0 ~dst:4 () with
  | None -> Alcotest.fail "no path 0-4"
  | Some p ->
      Alcotest.(check int) "hops 0-4" 2 (Array.length p);
      let ns = Paths.nodes g ~src:0 p in
      Alcotest.(check int) "ends at 4" 4 ns.(Array.length ns - 1));
  (* with edge 3-0 dead, 0->4 must go the long way (3 hops) *)
  match Paths.shortest g ~edge_ok:(fun id -> id <> 3) ~src:0 ~dst:4 () with
  | None -> Alcotest.fail "no masked path 0-4"
  | Some p -> Alcotest.(check int) "masked hops" 3 (Array.length p)

let test_yen () =
  let g = square_ear () in
  let ps = Paths.k_shortest g ~k:4 ~src:0 ~dst:2 () in
  (* 0-2 direct; 0-1-2; 0-3-2; 0-3-5-4... no (4 is a dead end for 2) *)
  Alcotest.(check int) "found 3 loopless paths" 3 (List.length ps);
  let lengths = List.map Array.length ps in
  Alcotest.(check (list int)) "nondecreasing lengths" [ 1; 2; 2 ] lengths;
  (* all distinct *)
  let distinct =
    List.sort_uniq compare (List.map (fun p -> Array.to_list p) ps)
  in
  Alcotest.(check int) "distinct" 3 (List.length distinct)

let test_yen_disjointness_preference () =
  let g = square_ear () in
  let ts = Tunnels.select_single_class g ~pair:(0, 2) ~count:3 in
  Alcotest.(check int) "3 tunnels" 3 (List.length ts);
  (* first two tunnels should be edge-disjoint here *)
  match ts with
  | a :: b :: _ ->
      Alcotest.(check bool) "disjoint" false
        (Paths.shares_edge a.Tunnels.path b.Tunnels.path)
  | _ -> Alcotest.fail "missing tunnels"

let test_high_priority_spof () =
  let g = square_ear () in
  let ts = Tunnels.select_high_priority g ~pair:(0, 2) ~count:3 in
  (* no single edge may appear in all three tunnels *)
  match ts with
  | [] -> Alcotest.fail "no tunnels"
  | first :: rest ->
      let spof =
        Array.to_list first.Tunnels.path
        |> List.filter (fun e ->
               List.for_all
                 (fun t -> Array.exists (fun e' -> e' = e) t.Tunnels.path)
                 rest)
      in
      Alcotest.(check (list int)) "no SPOF" [] spof

let test_low_priority_superset () =
  let g = square_ear () in
  let high = Tunnels.select_high_priority g ~pair:(0, 2) ~count:2 in
  let low = Tunnels.select_low_priority g ~pair:(0, 2) ~high ~extra:2 in
  (* only 3 loopless 0-2 paths exist in this graph, so the extras are
     capped by availability *)
  Alcotest.(check int) "low count" 3 (List.length low);
  (* the high-priority tunnels come first, unchanged *)
  List.iteri
    (fun i t ->
      if i < List.length high then
        let h = List.nth high i in
        if t.Tunnels.path <> h.Tunnels.path then
          Alcotest.fail "high tunnels not preserved")
    low;
  (* extras are distinct from the high set *)
  let paths = List.map (fun t -> Array.to_list t.Tunnels.path) low in
  Alcotest.(check int) "all distinct" (List.length low)
    (List.length (List.sort_uniq compare paths))

let test_catalog_sizes () =
  List.iter
    (fun (name, n, m) ->
      let g = Catalog.by_name name in
      Alcotest.(check int) (name ^ " nodes") n g.Graph.n;
      Alcotest.(check int) (name ^ " edges") m (Graph.nedges g);
      Alcotest.(check bool) (name ^ " connected") true
        (Graph.is_connected_graph g ());
      (* the paper prunes 1-degree nodes: min degree must be >= 2 *)
      for v = 0 to g.Graph.n - 1 do
        if Graph.degree g v < 2 then
          Alcotest.failf "%s: node %d has degree < 2" name v
      done)
    Catalog.table2

let test_catalog_deterministic () =
  let a = Catalog.by_name "IBM" and b = Catalog.by_name "IBM" in
  let edges g =
    Array.map (fun (e : Graph.edge) -> (e.Graph.u, e.Graph.v, e.Graph.capacity)) g.Graph.edges
  in
  Alcotest.(check bool) "same edges" true (edges a = edges b)

let test_split_links () =
  let g = Catalog.triangle () in
  let r = Graph.split_links g in
  Alcotest.(check int) "doubled edges" 6 (Graph.nedges r);
  Array.iteri
    (fun i (e : Graph.edge) ->
      Alcotest.(check int) "group" (i / 2) e.Graph.group;
      Alcotest.(check (float 1e-9)) "half capacity" 0.5 e.Graph.capacity)
    r.Graph.edges

(* ---------------- GML I/O ---------------- *)

let sample_gml =
  {|
# a topology-zoo style file
graph [
  directed 0
  node [ id 10 label "A" ]
  node [ id 11 label "B" ]
  node [ id 12 label "C" ]
  node [ id 13 label "stub" ]
  edge [ source 10 target 11 LinkSpeed 2.5 ]
  edge [ source 11 target 12 ]
  edge [ source 12 target 10 ]
  edge [ source 10 target 11 ]
  edge [ source 12 target 13 ]
]
|}

let test_gml_parse () =
  let g = Gml.parse ~name:"sample" sample_gml in
  (* the stub node (degree 1) is pruned; the duplicate edge dropped *)
  Alcotest.(check int) "nodes after pruning" 3 g.Graph.n;
  Alcotest.(check int) "edges" 3 (Graph.nedges g);
  Alcotest.(check bool) "connected" true (Graph.is_connected_graph g ());
  (* capacity attribute honored *)
  let caps =
    Array.to_list (Array.map (fun (e : Graph.edge) -> e.Graph.capacity) g.Graph.edges)
    |> List.sort compare
  in
  Alcotest.(check (list (float 1e-9))) "capacities" [ 1.; 1.; 2.5 ] caps

let test_gml_no_prune () =
  let g = Gml.parse ~prune:false sample_gml in
  Alcotest.(check int) "nodes kept" 4 g.Graph.n;
  Alcotest.(check int) "edges kept" 4 (Graph.nedges g)

let test_gml_roundtrip () =
  let g = Catalog.by_name "Sprint" in
  let g2 = Gml.parse ~name:"Sprint" (Gml.to_gml g) in
  Alcotest.(check int) "nodes" g.Graph.n g2.Graph.n;
  Alcotest.(check int) "edges" (Graph.nedges g) (Graph.nedges g2);
  let sig_of g =
    Array.to_list g.Graph.edges
    |> List.map (fun (e : Graph.edge) ->
           (min e.Graph.u e.Graph.v, max e.Graph.u e.Graph.v, e.Graph.capacity))
    |> List.sort compare
  in
  Alcotest.(check bool) "same links" true (sig_of g = sig_of g2)

let test_gml_errors () =
  (match Gml.parse "graph [ node [ label \"x\" ] ]" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "node without id accepted");
  match Gml.parse "graph [ edge [ source 1 target 2 ] ]" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "edge with undeclared endpoints accepted"

let qcheck_generator_invariants =
  let gen = QCheck.Gen.(pair (int_range 6 40) (int_range 0 30)) in
  QCheck.Test.make ~name:"generated topologies are valid" ~count:60
    (QCheck.make gen) (fun (n, extra) ->
      let m = min (n + extra) (n * (n - 1) / 2) in
      let seed = Flexile_util.Prng.of_string (Printf.sprintf "gen-%d-%d" n m) in
      let g = Gen.random_graph ~name:"t" ~n ~m ~seed in
      Graph.nedges g = m
      && Graph.is_connected_graph g ()
      && Array.for_all
           (fun v -> v >= 2)
           (Array.init n (fun v -> Graph.degree g v)))

let () =
  Alcotest.run "flexile_net"
    [
      ( "graph",
        [
          quick "basics" test_graph_basics;
          quick "validation" test_graph_validation;
          quick "masked connectivity" test_connectivity_mask;
          quick "split links" test_split_links;
        ] );
      ( "paths",
        [
          quick "dijkstra" test_dijkstra;
          quick "yen k-shortest" test_yen;
          quick "tunnel disjointness" test_yen_disjointness_preference;
          quick "high-priority SPOF avoidance" test_high_priority_spof;
          quick "low-priority superset" test_low_priority_superset;
        ] );
      ( "catalog",
        [
          quick "table 2 sizes" test_catalog_sizes;
          quick "deterministic" test_catalog_deterministic;
        ] );
      ( "gml",
        [
          quick "parse + prune" test_gml_parse;
          quick "parse without pruning" test_gml_no_prune;
          quick "roundtrip" test_gml_roundtrip;
          quick "malformed input" test_gml_errors;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest qcheck_generator_invariants ] );
    ]
