(* Property tests of the TE layer on small randomized instances:
   scheme-independent invariants that must hold on any input. *)

open Flexile_te
module Prng = Flexile_util.Prng

(* A small random instance: 4-6 nodes ring + chords, unit-ish demands,
   handful of scenarios. *)
let random_instance seed_name =
  let prng = Prng.of_string seed_name in
  let n = 4 + Prng.int prng 3 in
  let extra = Prng.int prng 3 in
  let m = min (n + extra) (n * (n - 1) / 2) in
  let graph =
    Flexile_net.Gen.random_graph ~name:seed_name ~n ~m
      ~seed:(Prng.split prng "topo")
  in
  let options =
    {
      Flexile_core.Builder.default_options with
      Flexile_core.Builder.max_scenarios = 12;
      max_pairs = 8;
    }
  in
  Flexile_core.Builder.single_class ~options ~graph ()

let losses_valid inst losses =
  Array.for_all
    (fun (f : Instance.flow) ->
      Array.for_all
        (fun l -> l >= -1e-9 && l <= 1. +. 1e-9)
        losses.(f.Instance.fid))
    inst.Instance.flows

let qcheck_scheme_invariants =
  QCheck.Test.make ~name:"scheme invariants on random instances" ~count:10
    QCheck.(make Gen.(int_range 0 1000))
    (fun salt ->
      let inst = random_instance (Printf.sprintf "prop-%d" salt) in
      let smore = Scenbest.run inst in
      let fx = (Flexile_scheme.run inst).Flexile_scheme.losses in
      let lb = Lower_bound.perc_loss_lower_bound inst ~cls:0 in
      let p_smore = Metrics.perc_loss inst smore ~cls:0 () in
      let p_fx = Metrics.perc_loss inst fx ~cls:0 () in
      losses_valid inst smore && losses_valid inst fx
      (* Flexile never loses to the scenario-by-scenario optimum at the
         percentile (Proposition 1 + iteration monotonicity) *)
      && p_fx <= p_smore +. 1e-5
      (* and never beats the isolated-flow lower bound *)
      && p_fx >= lb -. 1e-5)

let qcheck_maxmin_matches_minmax =
  (* the first max-min level equals the min-max optimum in every
     scenario: ScenLoss(maxmin) = optimal ScenLoss *)
  QCheck.Test.make ~name:"maxmin first level is the min-max optimum" ~count:8
    QCheck.(make Gen.(int_range 0 1000))
    (fun salt ->
      let inst = random_instance (Printf.sprintf "mm-%d" salt) in
      let maxmin = Scenbest.run inst in
      let optimal = Scenbest.scen_loss_optimal inst in
      let ok = ref true in
      for sid = 0 to Instance.nscenarios inst - 1 do
        let worst = Metrics.scen_loss inst maxmin ~sid () in
        if Float.abs (worst -. optimal.(sid)) > 1e-5 then ok := false
      done;
      !ok)

let qcheck_teavar_weaker_than_adaptive =
  (* TeaVar's static split with proportional rescaling can never beat
     the per-scenario optimal ScenLoss *)
  QCheck.Test.make ~name:"teavar never beats per-scenario optimum" ~count:6
    QCheck.(make Gen.(int_range 0 1000))
    (fun salt ->
      let inst = random_instance (Printf.sprintf "tv-%d" salt) in
      let tv = (Teavar.run inst).Teavar.losses in
      let optimal = Scenbest.scen_loss_optimal inst in
      let ok = ref true in
      for sid = 0 to Instance.nscenarios inst - 1 do
        let worst = Metrics.scen_loss inst tv ~sid () in
        if worst < optimal.(sid) -. 1e-5 then ok := false
      done;
      !ok)

let () =
  Alcotest.run "flexile_te_props"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_scheme_invariants;
            qcheck_maxmin_matches_minmax;
            qcheck_teavar_weaker_than_adaptive;
          ] );
    ]
