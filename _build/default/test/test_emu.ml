(* Tests for the discretization emulator: allocation reconstruction,
   integer-weight splitting, drop fixed point, and the model-emulation
   agreement the paper reports (PCC > 0.999, Fig 9c). *)

open Flexile_te
module Emu = Flexile_emu.Emulator
module Prng = Flexile_util.Prng

let quick name f = Alcotest.test_case name `Quick f

let fig1 = Flexile_core.Builder.fig1 ()

let test_reconstruct_feasible () =
  let model_losses = Scenbest.run fig1 in
  for sid = 0 to Instance.nscenarios fig1 - 1 do
    let alloc = Emu.reconstruct_allocation fig1 ~sid ~model_losses in
    (* allocation must deliver at least the model volume per flow *)
    Array.iter
      (fun (f : Instance.flow) ->
        if Instance.flow_connected fig1 f sid then begin
          let total =
            Array.fold_left ( +. ) 0. alloc.(f.Instance.cls).(f.Instance.pair)
          in
          let target =
            f.Instance.demand *. (1. -. model_losses.(f.Instance.fid).(sid))
          in
          if total < target -. 1e-4 then
            Alcotest.failf "scenario %d flow %d: %.4f < %.4f" sid
              f.Instance.fid total target
        end)
      fig1.Instance.flows;
    (* and respect link capacities *)
    let g = fig1.Instance.graph in
    let load = Array.make (Flexile_net.Graph.nedges g) 0. in
    Array.iteri
      (fun k per_pair ->
        Array.iteri
          (fun i per_tunnel ->
            Array.iteri
              (fun ti v ->
                if v > 0. then
                  Array.iter
                    (fun e -> load.(e) <- load.(e) +. v)
                    fig1.Instance.tunnels.(k).(i).(ti).Flexile_net.Tunnels.path)
              per_tunnel)
          per_pair)
      alloc;
    Array.iteri
      (fun e l ->
        if l > g.Flexile_net.Graph.edges.(e).Flexile_net.Graph.capacity +. 1e-4
        then Alcotest.failf "scenario %d edge %d overloaded" sid e)
      load
  done

let test_emulation_close_to_model () =
  let model_losses = (Flexile_scheme.run fig1).Flexile_scheme.losses in
  let seed = Prng.of_string "emu-test" in
  let r = Emu.emulate ~packets_per_unit:500 ~seed fig1 ~model_losses in
  (* Fig 9c: high correlation and small discretization error *)
  if r.Emu.pcc < 0.99 then Alcotest.failf "PCC too low: %f" r.Emu.pcc;
  if r.Emu.max_abs_diff > 0.05 then
    Alcotest.failf "max diff too large: %f" r.Emu.max_abs_diff

let test_emulation_deterministic_per_seed () =
  let model_losses = Scenbest.run fig1 in
  let run () =
    let seed = Prng.of_string "emu-fixed" in
    (Emu.emulate ~seed fig1 ~model_losses).Emu.emulated
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same emulated losses" true (a = b)

let test_quantization_noise_shrinks () =
  let model_losses = Scenbest.run fig1 in
  let max_diff ppu =
    let seed = Prng.of_string "emu-granularity" in
    (Emu.emulate ~packets_per_unit:ppu ~seed fig1 ~model_losses).Emu.max_abs_diff
  in
  let coarse = max_diff 20 and fine = max_diff 2000 in
  if fine > coarse +. 0.01 then
    Alcotest.failf "finer packets should not increase error: %f vs %f" fine
      coarse

let test_disconnected_flow_loses_everything () =
  let model_losses = Scenbest.run fig1 in
  let seed = Prng.of_string "emu-disc" in
  let r = Emu.emulate ~seed fig1 ~model_losses in
  Array.iter
    (fun (f : Instance.flow) ->
      for sid = 0 to Instance.nscenarios fig1 - 1 do
        if not (Instance.flow_connected fig1 f sid) then
          Alcotest.(check (float 1e-9))
            "disconnected loss" 1.
            r.Emu.emulated.(f.Instance.fid).(sid)
      done)
    fig1.Instance.flows

let () =
  Alcotest.run "flexile_emu"
    [
      ( "emulator",
        [
          quick "reconstructed allocations feasible" test_reconstruct_feasible;
          quick "emulation close to model" test_emulation_close_to_model;
          quick "deterministic per seed" test_emulation_deterministic_per_seed;
          quick "granularity shrinks noise" test_quantization_noise_shrinks;
          quick "disconnected flows lose all" test_disconnected_flow_loses_everything;
        ] );
    ]
