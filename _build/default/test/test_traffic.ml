(* Tests for traffic generation (gravity model, MLU scaling, class
   split) and the statistics toolkit (VaR/CVaR/percentiles). *)

module Gravity = Flexile_traffic.Gravity
module Stats = Flexile_util.Stats
module Prng = Flexile_util.Prng

let quick name f = Alcotest.test_case name `Quick f

let test_gravity_shape () =
  let graph = Flexile_net.Catalog.by_name "IBM" in
  let pairs = Flexile_net.Graph.pairs graph in
  let seed = Prng.of_string "gravity-test" in
  let d = Gravity.matrix ~seed ~graph ~pairs in
  Alcotest.(check int) "one demand per pair" (Array.length pairs) (Array.length d);
  Array.iter (fun x -> if x <= 0. then Alcotest.fail "non-positive demand") d;
  let mean = Array.fold_left ( +. ) 0. d /. float_of_int (Array.length d) in
  Alcotest.(check (float 1e-9)) "normalized mean" 1.0 mean;
  (* gravity: demand of (u,v) proportional to mass_u * mass_v, so the
     matrix must not be flat *)
  let mx = Array.fold_left Float.max 0. d and mn = Array.fold_left Float.min infinity d in
  if mx /. mn < 2. then Alcotest.fail "gravity matrix suspiciously flat"

let test_mlu_scaling () =
  let mlu d = 2. *. Array.fold_left Float.max 0. d in
  let d = Gravity.scale_to_mlu ~mlu ~target:0.6 [| 1.; 2.; 3. |] in
  Alcotest.(check (float 1e-9)) "scaled mlu" 0.6 (mlu d);
  Alcotest.(check (float 1e-9)) "proportions kept" (d.(0) *. 3.) d.(2)

let test_two_class_split () =
  let seed = Prng.of_string "split-test" in
  let d = Array.make 50 1. in
  let high, low = Gravity.split_two_class ~seed ~low_scale:2. d in
  Array.iteri
    (fun i h ->
      let l = low.(i) /. 2. in
      Alcotest.(check (float 1e-9)) "partition" 1.0 (h +. l);
      if h < 0.2 -. 1e-9 || h > 0.8 +. 1e-9 then
        Alcotest.fail "high fraction outside [0.2, 0.8]")
    high

let test_min_mlu_lp () =
  (* Triangle, demand 1 on A-B with two tunnels: direct (cap 1) and
     2-hop; optimum splits to equalize utilization at 0.5. *)
  let graph = Flexile_net.Catalog.triangle () in
  let t1 = Flexile_net.Tunnels.make graph ~pair:(0, 1) [| 0 |] in
  let t2 = Flexile_net.Tunnels.make graph ~pair:(0, 1) [| 1; 2 |] in
  let mlu =
    Flexile_te.Mlu.min_mlu ~graph ~tunnels:[| [| t1; t2 |] |] ~demands:[| 1. |]
  in
  Alcotest.(check (float 1e-6)) "balanced mlu" 0.5 mlu

(* ---------------- statistics ---------------- *)

let test_percentile () =
  let xs = [| 5.; 1.; 4.; 2.; 3. |] in
  Alcotest.(check (float 1e-9)) "median" 3. (Stats.percentile xs 0.5);
  Alcotest.(check (float 1e-9)) "p0 -> min" 1. (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p1 -> max" 5. (Stats.percentile xs 1.0);
  Alcotest.(check (float 1e-9)) "p80" 4. (Stats.percentile xs 0.8)

let test_weighted_var () =
  (* the paper's §5 example: losses 0, 5, 10 with probs .9 .09 .01:
     VaR90 = 0, CVaR90 = 5*0.09 + 10*0.01 over 0.1 = 1.45 / 0.1 *)
  let samples = [| (0., 0.9); (0.05, 0.09); (0.10, 0.01) |] in
  Alcotest.(check (float 1e-9)) "VaR90" 0. (Stats.weighted_var samples ~beta:0.9);
  (* the paper's §5 text reports the unnormalized tail expectation
     (1.45%); the standard CVaR normalizes by the tail mass 1-beta,
     giving 0.055 *)
  Alcotest.(check (float 1e-9)) "CVaR90" 0.055
    (Stats.weighted_cvar samples ~beta:0.9);
  Alcotest.(check (float 1e-9)) "VaR99" 0.05
    (Stats.weighted_var samples ~beta:0.99);
  Alcotest.(check (float 1e-9)) "VaR100ish" 0.10
    (Stats.weighted_var samples ~beta:0.9999)

let test_weighted_var_missing_mass () =
  (* observed mass 0.95 < beta 0.99: unobserved scenarios are charged
     the worst loss -> VaR = 1 *)
  let samples = [| (0., 0.95) |] in
  Alcotest.(check (float 1e-9)) "missing mass worst-cased" 1.
    (Stats.weighted_var samples ~beta:0.99);
  Alcotest.(check (float 1e-9)) "covered beta fine" 0.
    (Stats.weighted_var samples ~beta:0.9)

let test_cvar_missing_mass () =
  (* tail 0.1; observed mass 0.95 at loss 0 -> tail = 0.05 missing at
     loss 1 + 0.05 observed at 0 -> CVaR = 0.5 *)
  let samples = [| (0., 0.95) |] in
  Alcotest.(check (float 1e-9)) "cvar with missing mass" 0.5
    (Stats.weighted_cvar samples ~beta:0.9)

let test_pearson () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  let ys = [| 2.; 4.; 6.; 8. |] in
  Alcotest.(check (float 1e-9)) "perfect correlation" 1. (Stats.pearson xs ys);
  let zs = [| 8.; 6.; 4.; 2. |] in
  Alcotest.(check (float 1e-9)) "anti" (-1.) (Stats.pearson xs zs)

let qcheck_var_monotone =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 12)
        (pair (map (fun i -> float_of_int i /. 10.) (int_range 0 10))
           (map (fun i -> float_of_int i /. 40.) (int_range 1 10))))
  in
  QCheck.Test.make ~name:"weighted VaR is monotone in beta" ~count:200
    (QCheck.make gen) (fun samples ->
      let total = List.fold_left (fun a (_, p) -> a +. p) 0. samples in
      if total > 1. then true
      else begin
        let s = Array.of_list samples in
        let v1 = Stats.weighted_var s ~beta:0.5 in
        let v2 = Stats.weighted_var s ~beta:0.8 in
        let v3 = Stats.weighted_var s ~beta:0.95 in
        v1 <= v2 +. 1e-12 && v2 <= v3 +. 1e-12
      end)

let qcheck_cvar_dominates_var =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 12)
        (pair (map (fun i -> float_of_int i /. 10.) (int_range 0 10))
           (map (fun i -> float_of_int i /. 40.) (int_range 1 10))))
  in
  QCheck.Test.make ~name:"CVaR >= VaR (Teavar's overestimate)" ~count:200
    (QCheck.make gen) (fun samples ->
      let total = List.fold_left (fun a (_, p) -> a +. p) 0. samples in
      if total > 1. then true
      else begin
        let s = Array.of_list samples in
        Stats.weighted_cvar s ~beta:0.9 >= Stats.weighted_var s ~beta:0.9 -. 1e-9
      end)

let () =
  Alcotest.run "flexile_traffic"
    [
      ( "traffic",
        [
          quick "gravity shape" test_gravity_shape;
          quick "mlu scaling" test_mlu_scaling;
          quick "two-class split" test_two_class_split;
          quick "min-mlu lp" test_min_mlu_lp;
        ] );
      ( "stats",
        [
          quick "percentile" test_percentile;
          quick "weighted VaR (paper example)" test_weighted_var;
          quick "missing mass VaR" test_weighted_var_missing_mass;
          quick "missing mass CVaR" test_cvar_missing_mass;
          quick "pearson" test_pearson;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_var_monotone; qcheck_cvar_dominates_var ] );
    ]
