(* Integration tests on generated catalog topologies: instance
   construction invariants, scheme sanity (losses in range, Flexile no
   worse than baselines), the warm-restart self-check, and the online
   phase's critical-flow guarantees. *)

open Flexile_te

let quick name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

let small_options =
  {
    Flexile_core.Builder.default_options with
    Flexile_core.Builder.max_scenarios = 40;
    max_pairs = 60;
  }

let sprint = lazy (Flexile_core.Builder.of_name ~options:small_options "Sprint")
let sprint2 =
  lazy (Flexile_core.Builder.of_name ~options:small_options ~two_classes:true "Sprint")

let test_instance_invariants () =
  let inst = Lazy.force sprint in
  (* scenario masses within (0,1], sorted nonincreasing, disjoint *)
  let prev = ref infinity in
  Array.iter
    (fun (s : Flexile_failure.Failure_model.scenario) ->
      let p = s.Flexile_failure.Failure_model.prob in
      if p <= 0. || p > 1. then Alcotest.fail "bad scenario probability";
      if p > !prev +. 1e-12 then Alcotest.fail "scenarios not sorted";
      prev := p)
    inst.Instance.scenarios;
  if Flexile_failure.Failure_model.coverage inst.Instance.scenarios > 1. +. 1e-9
  then Alcotest.fail "coverage above 1";
  (* each tunnel connects its pair's endpoints *)
  Array.iteri
    (fun _k per_pair ->
      Array.iteri
        (fun i ts ->
          let u, v = inst.Instance.pairs.(i) in
          Array.iter
            (fun (t : Flexile_net.Tunnels.t) ->
              let ns = t.Flexile_net.Tunnels.nodes in
              if ns.(0) <> u || ns.(Array.length ns - 1) <> v then
                Alcotest.fail "tunnel endpoints mismatch")
            ts)
        per_pair)
    inst.Instance.tunnels;
  (* beta is feasible: every flow connected in >= beta mass *)
  let beta = inst.Instance.classes.(0).Instance.beta in
  Array.iter
    (fun (f : Instance.flow) ->
      if f.Instance.demand > 0. && Instance.connected_mass inst f < beta then
        Alcotest.fail "beta above a flow's connected mass")
    inst.Instance.flows

let losses_in_range inst losses =
  Array.iter
    (fun (f : Instance.flow) ->
      Array.iter
        (fun l ->
          if l < -1e-9 || l > 1. +. 1e-9 then
            Alcotest.failf "loss %f out of range" l)
        losses.(f.Instance.fid))
    inst.Instance.flows

let test_schemes_sane () =
  let inst = Lazy.force sprint in
  List.iter
    (fun scheme ->
      let losses = Flexile_core.Schemes.run scheme inst in
      losses_in_range inst losses;
      (* disconnected flows must lose everything *)
      Array.iter
        (fun (f : Instance.flow) ->
          for sid = 0 to Instance.nscenarios inst - 1 do
            if
              f.Instance.demand > 0.
              && not (Instance.flow_connected inst f sid)
              && losses.(f.Instance.fid).(sid) < 1. -. 1e-6
            then Alcotest.failf "disconnected flow served (%s)"
                   (Flexile_core.Schemes.name scheme)
          done)
        inst.Instance.flows)
    [
      Flexile_core.Schemes.Smore;
      Flexile_core.Schemes.Flexile;
      Flexile_core.Schemes.Teavar;
      Flexile_core.Schemes.Swan_maxmin;
      Flexile_core.Schemes.Swan_throughput;
    ]

(* Proposition 1 on a real topology: Flexile's starting point is no
   worse than ScenBest's PercLoss, and the final result no worse than
   the starting point. *)
let test_prop1_real () =
  let inst = Lazy.force sprint in
  let off = Flexile_offline.solve inst in
  let first = List.hd off.Flexile_offline.iterates in
  let scenbest = Scenbest.run inst in
  let p0 = Metrics.perc_loss inst first.Flexile_offline.losses ~cls:0 () in
  let pb = Metrics.perc_loss inst scenbest ~cls:0 () in
  if p0 > pb +. 1e-5 then
    Alcotest.failf "starting point %.4f worse than ScenBest %.4f" p0 pb;
  let best = off.Flexile_offline.best.Flexile_offline.penalty in
  if best > first.Flexile_offline.penalty +. 1e-9 then
    Alcotest.fail "best iterate worse than the starting point"

(* Flexile >= lower bound, and its online losses respect the offline
   critical guarantees. *)
let test_flexile_bounds () =
  let inst = Lazy.force sprint in
  let r = Flexile_scheme.run inst in
  let lb = Lower_bound.perc_loss_lower_bound inst ~cls:0 in
  let fx = Metrics.perc_loss inst r.Flexile_scheme.losses ~cls:0 () in
  if fx < lb -. 1e-5 then Alcotest.failf "Flexile %.4f below lower bound %.4f" fx lb;
  let best = r.Flexile_scheme.offline.Flexile_offline.best in
  Array.iter
    (fun (f : Instance.flow) ->
      if f.Instance.demand > 0. then
        for sid = 0 to Instance.nscenarios inst - 1 do
          if best.Flexile_offline.z.(f.Instance.fid).(sid) then begin
            let online = r.Flexile_scheme.losses.(f.Instance.fid).(sid) in
            let promised = best.Flexile_offline.losses.(f.Instance.fid).(sid) in
            if online > promised +. 1e-4 then
              Alcotest.failf
                "critical flow %d scenario %d: online %.4f > promised %.4f"
                f.Instance.fid sid online promised
          end
        done)
    inst.Instance.flows

let test_warm_restart_selfcheck () =
  let bad = Flexile_offline.selfcheck_subproblems (Lazy.force sprint) in
  if bad <> [] then begin
    List.iter
      (fun (sid, w, c) ->
        Printf.printf "  sid=%d warm=%.6f cold=%.6f\n" sid w c)
      bad;
    Alcotest.failf "%d subproblems disagree between warm and cold"
      (List.length bad)
  end

let test_two_class_priority () =
  let inst = Lazy.force sprint2 in
  (* high priority must not be worse than low for any priority-aware
     scheme *)
  List.iter
    (fun scheme ->
      let losses = Flexile_core.Schemes.run scheme inst in
      let hi = Metrics.perc_loss inst losses ~cls:0 () in
      let lo = Metrics.perc_loss inst losses ~cls:1 ~beta:0.99 () in
      if hi > lo +. 0.05 then
        Alcotest.failf "%s: high-priority PercLoss %.3f above low %.3f"
          (Flexile_core.Schemes.name scheme) hi lo)
    [
      Flexile_core.Schemes.Flexile;
      Flexile_core.Schemes.Swan_maxmin;
      Flexile_core.Schemes.Scenbest_multi;
    ]

(* The IP is a lower bound for every scheme's achieved penalty on a
   tiny instance, and Flexile converges toward it. *)
let test_ip_reference () =
  let options =
    {
      Flexile_core.Builder.default_options with
      Flexile_core.Builder.max_scenarios = 12;
      max_pairs = 12;
    }
  in
  let inst = Flexile_core.Builder.of_name ~options "Sprint" in
  let ip = Ip_direct.solve inst in
  if not ip.Ip_direct.optimal then Alcotest.fail "IP did not prove optimality";
  let ip_perc = Metrics.perc_loss inst ip.Ip_direct.losses ~cls:0 () in
  let fx = Flexile_scheme.run inst in
  let fx_perc = Metrics.perc_loss inst fx.Flexile_scheme.losses ~cls:0 () in
  if fx_perc < ip_perc -. 1e-4 then
    Alcotest.failf "Flexile %.4f beats the proven optimum %.4f?!" fx_perc ip_perc;
  if fx_perc > ip_perc +. 0.05 then
    Alcotest.failf "Flexile %.4f far from optimal %.4f on a tiny instance"
      fx_perc ip_perc

let test_max_scale_monotone () =
  (* sanity for the Fig 18 search: Flexile sustains at least as much
     low-priority scale as SWAN-Maxmin *)
  let graph = Flexile_net.Catalog.by_name "Sprint" in
  let options = { small_options with Flexile_core.Builder.max_scenarios = 25 } in
  let fx =
    Flexile_core.Max_scale.search ~options ~steps:3
      ~scheme:Flexile_core.Schemes.Flexile ~graph ()
  in
  let mm =
    Flexile_core.Max_scale.search ~options ~steps:3
      ~scheme:Flexile_core.Schemes.Swan_maxmin ~graph ()
  in
  if fx < mm -. 1e-9 then
    Alcotest.failf "Flexile max scale %.2f below SWAN-Maxmin %.2f" fx mm

let () =
  Alcotest.run "flexile_te_real"
    [
      ( "instances",
        [
          quick "instance invariants" test_instance_invariants;
          quick "warm restart self-check" test_warm_restart_selfcheck;
        ] );
      ( "schemes",
        [
          slow "all schemes sane" test_schemes_sane;
          slow "proposition 1 (real topology)" test_prop1_real;
          slow "flexile vs bounds and guarantees" test_flexile_bounds;
          slow "two-class priority ordering" test_two_class_priority;
          slow "ip reference on tiny instance" test_ip_reference;
          slow "max-scale ordering" test_max_scale_monotone;
        ] );
    ]
