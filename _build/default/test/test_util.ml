(* Tests for the utility layer: PRNG determinism and stream
   independence, plus statistics not covered elsewhere. *)

module Prng = Flexile_util.Prng
module Stats = Flexile_util.Stats

let quick name f = Alcotest.test_case name `Quick f

let test_prng_deterministic () =
  let a = Prng.of_string "seed-x" and b = Prng.of_string "seed-x" in
  for _ = 1 to 100 do
    if Prng.next a <> Prng.next b then Alcotest.fail "streams diverged"
  done

let test_prng_distinct_names () =
  let a = Prng.of_string "seed-x" and b = Prng.of_string "seed-y" in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next a = Prng.next b then incr same
  done;
  if !same > 0 then Alcotest.fail "different names produced equal outputs"

let test_prng_split_independent () =
  (* drawing from a child stream must not perturb the parent *)
  let p1 = Prng.of_string "parent" in
  let p2 = Prng.of_string "parent" in
  let c1 = Prng.split p1 "child" and c2 = Prng.split p2 "child" in
  let x1 = Prng.float c1 in
  for _ = 1 to 10 do
    ignore (Prng.float c1)
  done;
  let x2 = Prng.float c2 in
  Alcotest.(check (float 0.)) "children equal at the start" x1 x2;
  Alcotest.(check bool) "parents stay in sync" true
    (Prng.next p1 = Prng.next p2)

let test_prng_ranges () =
  let p = Prng.of_string "ranges" in
  for _ = 1 to 1000 do
    let f = Prng.float p in
    if f < 0. || f >= 1. then Alcotest.fail "float out of [0,1)";
    let i = Prng.int p 7 in
    if i < 0 || i >= 7 then Alcotest.fail "int out of range"
  done

let test_prng_uniformity () =
  (* crude: mean of uniforms near 0.5 *)
  let p = Prng.of_string "uniformity" in
  let n = 20_000 in
  let s = ref 0. in
  for _ = 1 to n do
    s := !s +. Prng.float p
  done;
  let mean = !s /. float_of_int n in
  if Float.abs (mean -. 0.5) > 0.02 then
    Alcotest.failf "mean %.4f too far from 0.5" mean

let test_weibull_positive () =
  let p = Prng.of_string "weibull" in
  for _ = 1 to 1000 do
    let x = Prng.weibull p ~shape:0.8 ~scale:0.001 in
    if x <= 0. || Float.is_nan x then Alcotest.fail "weibull sample invalid"
  done

let test_shuffle_permutation () =
  let p = Prng.of_string "shuffle" in
  let a = Array.init 50 (fun i -> i) in
  let b = Array.copy a in
  Prng.shuffle p b;
  Array.sort compare b;
  Alcotest.(check bool) "is a permutation" true (a = b)

let test_weighted_cdf () =
  let cdf = Stats.weighted_cdf [| (0.3, 0.2); (0.1, 0.5); (0.2, 0.3) |] in
  match cdf with
  | [ (v1, c1); (v2, c2); (v3, c3) ] ->
      Alcotest.(check (float 1e-9)) "v1" 0.1 v1;
      Alcotest.(check (float 1e-9)) "c1" 0.5 c1;
      Alcotest.(check (float 1e-9)) "v2" 0.2 v2;
      Alcotest.(check (float 1e-9)) "c2" 0.8 c2;
      Alcotest.(check (float 1e-9)) "v3" 0.3 v3;
      Alcotest.(check (float 1e-9)) "c3" 1.0 c3
  | _ -> Alcotest.fail "unexpected cdf length"

let test_fraction_leq () =
  let xs = [| 0.1; 0.5; 0.9; 0.5 |] in
  Alcotest.(check (float 1e-9)) "half" 0.75 (Stats.fraction_leq xs 0.5);
  Alcotest.(check (float 1e-9)) "none" 0. (Stats.fraction_leq xs 0.05)

let () =
  Alcotest.run "flexile_util"
    [
      ( "prng",
        [
          quick "deterministic" test_prng_deterministic;
          quick "distinct names" test_prng_distinct_names;
          quick "split independence" test_prng_split_independent;
          quick "ranges" test_prng_ranges;
          quick "uniformity" test_prng_uniformity;
          quick "weibull" test_weibull_positive;
          quick "shuffle is a permutation" test_shuffle_permutation;
        ] );
      ( "stats",
        [
          quick "weighted cdf" test_weighted_cdf;
          quick "fraction_leq" test_fraction_leq;
        ] );
    ]
