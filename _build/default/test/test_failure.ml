(* Tests for the failure model: Weibull sampling, scenario enumeration
   order/disjointness/probabilities, SRLGs, and coverage. *)

module FM = Flexile_failure.Failure_model
module Prng = Flexile_util.Prng

let quick name f = Alcotest.test_case name `Quick f

let test_weibull_median () =
  let graph = Flexile_net.Catalog.by_name "Tinet" in
  let seed = Prng.of_string "weibull-test" in
  let m = FM.independent_links ~graph ~seed () in
  let probs = Array.copy m.FM.unit_probs in
  Array.sort compare probs;
  let median = probs.(Array.length probs / 2) in
  (* sampling noise allows a loose band around the target 0.001 *)
  if median < 1e-4 || median > 1e-2 then
    Alcotest.failf "median failure probability %.5f not near 0.001" median;
  Array.iter
    (fun p ->
      if p < 1e-5 -. 1e-12 || p > 0.3 +. 1e-12 then
        Alcotest.failf "probability %f outside clamp" p)
    m.FM.unit_probs

let test_enumeration_order_and_probs () =
  let m = FM.of_probs ~nedges:3 [| 0.1; 0.2; 0.3 |] in
  let scenarios = FM.enumerate ~cutoff:0. ~max_scenarios:100 m in
  Alcotest.(check int) "all 8 subsets" 8 (Array.length scenarios);
  (* non-increasing probability *)
  for i = 1 to Array.length scenarios - 1 do
    if scenarios.(i).FM.prob > scenarios.(i - 1).FM.prob +. 1e-12 then
      Alcotest.fail "probabilities not sorted"
  done;
  (* probabilities sum to exactly 1 over all subsets *)
  let total = FM.coverage scenarios in
  Alcotest.(check (float 1e-9)) "total mass" 1.0 total;
  (* the no-failure scenario must be first with prob 0.9*0.8*0.7 *)
  Alcotest.(check (float 1e-12)) "no-failure prob" (0.9 *. 0.8 *. 0.7)
    scenarios.(0).FM.prob;
  Alcotest.(check int) "no failures" 0
    (Array.length scenarios.(0).FM.failed_units)

let test_enumeration_cutoff () =
  let m = FM.of_probs ~nedges:4 [| 0.01; 0.01; 0.01; 0.01 |] in
  let scenarios = FM.enumerate ~cutoff:1e-4 ~max_scenarios:1000 m in
  (* no-failure (0.96), 4 singles (~0.0097), doubles ~9.8e-5 < cutoff *)
  Alcotest.(check int) "singles only" 5 (Array.length scenarios);
  Array.iter
    (fun s ->
      if s.FM.prob < 1e-4 then Alcotest.fail "scenario below cutoff included")
    scenarios

let test_scenario_alive_mask () =
  let m = FM.of_probs ~nedges:3 [| 0.1; 0.1; 0.1 |] in
  let s = FM.scenario_of_units m ~sid:0 [| 1 |] in
  Alcotest.(check bool) "edge 0 alive" true s.FM.edge_alive.(0);
  Alcotest.(check bool) "edge 1 dead" false s.FM.edge_alive.(1);
  Alcotest.(check (float 1e-12)) "probability" (0.9 *. 0.1 *. 0.9) s.FM.prob

let test_srlg_groups () =
  (* two SRLGs over 4 edges: {0,1} and {2,3} *)
  let m =
    FM.grouped ~groups:[| [| 0; 1 |]; [| 2; 3 |] |] ~probs:[| 0.2; 0.1 |]
      ~nedges:4
  in
  let s = FM.scenario_of_units m ~sid:0 [| 0 |] in
  Alcotest.(check bool) "edge 0 dead" false s.FM.edge_alive.(0);
  Alcotest.(check bool) "edge 1 dead" false s.FM.edge_alive.(1);
  Alcotest.(check bool) "edge 2 alive" true s.FM.edge_alive.(2);
  Alcotest.(check (float 1e-12)) "prob" (0.2 *. 0.9) s.FM.prob

let test_high_prob_guard () =
  let m = FM.of_probs ~nedges:1 [| 0.6 |] in
  Alcotest.check_raises "p >= 0.5 rejected"
    (Invalid_argument
       "Failure_model.enumerate: unit failure probability >= 0.5 breaks \
        best-first ordering") (fun () -> ignore (FM.enumerate m))

let qcheck_enumeration_is_top_k =
  (* enumeration with a count cap must return the k most probable
     scenarios (verified against exhaustive enumeration) *)
  let gen =
    QCheck.Gen.(
      pair (int_range 1 5)
        (list_size (return 6) (map (fun i -> float_of_int i /. 25.) (int_range 1 10))))
  in
  QCheck.Test.make ~name:"enumerate returns the top-k scenarios" ~count:80
    (QCheck.make gen) (fun (k, probs) ->
      let probs = Array.of_list probs in
      let n = Array.length probs in
      let m = FM.of_probs ~nedges:n probs in
      let top = FM.enumerate ~cutoff:0. ~max_scenarios:k m in
      (* exhaustive *)
      let all = ref [] in
      for mask = 0 to (1 lsl n) - 1 do
        let p = ref 1. in
        for e = 0 to n - 1 do
          if mask land (1 lsl e) <> 0 then p := !p *. probs.(e)
          else p := !p *. (1. -. probs.(e))
        done;
        all := !p :: !all
      done;
      let sorted = List.sort (fun a b -> compare b a) !all in
      let expected = List.filteri (fun i _ -> i < k) sorted in
      let got = Array.to_list (Array.map (fun s -> s.FM.prob) top) in
      List.for_all2 (fun a b -> Float.abs (a -. b) < 1e-12) expected got)

let () =
  Alcotest.run "flexile_failure"
    [
      ( "model",
        [
          quick "weibull median" test_weibull_median;
          quick "srlg groups" test_srlg_groups;
          quick "p >= 0.5 guard" test_high_prob_guard;
        ] );
      ( "enumeration",
        [
          quick "order and probabilities" test_enumeration_order_and_probs;
          quick "cutoff" test_enumeration_cutoff;
          quick "alive mask" test_scenario_alive_mask;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest qcheck_enumeration_is_top_k ]);
    ]
