(* End-to-end validation of every TE scheme on the paper's toy
   examples (Figs 1-4, 16, 17 and Propositions 1-2), where the optimal
   answers are known analytically. *)

open Flexile_te

let feq ?(eps = 1e-5) a b = Float.abs (a -. b) <= eps

let check_float ~msg expected actual =
  if not (feq expected actual) then
    Alcotest.failf "%s: expected %.6f, got %.6f" msg expected actual

let fig1 = Flexile_core.Builder.fig1 ()

let perc inst losses = Metrics.perc_loss inst losses ~cls:0 ()

(* In Fig 1's triangle, ScenBest can only guarantee 0.5 units at the
   99th percentile: when A-B fails, the scenario-optimal allocation
   gives both flows 0.5. *)
let test_fig1_scenbest () =
  let losses = Scenbest.run fig1 in
  check_float ~msg:"ScenBest PercLoss at 0.99" 0.5 (perc fig1 losses)

let test_fig1_teavar () =
  let r = Teavar.run fig1 in
  let p = perc fig1 r.Teavar.losses in
  if p < 0.485 -. 1e-6 then
    Alcotest.failf "Teavar PercLoss %.4f below the 48.5%% bound of Prop 2" p

(* Proposition 2: both CVaR generalizations still suffer >= 48.51%
   loss at the percentile, despite flow-level evaluation. *)
let test_fig1_cvar_prop2 () =
  let st = Cvar_flow.run_static fig1 in
  let ad = Cvar_flow.run_adaptive fig1 in
  let p_st = perc fig1 st.Cvar_flow.losses in
  let p_ad = perc fig1 ad.Cvar_flow.losses in
  if p_st < 0.4851 -. 1e-4 then
    Alcotest.failf "Cvar-Flow-St PercLoss %.4f < 0.4851" p_st;
  if p_ad < 0.4851 -. 1e-4 then
    Alcotest.failf "Cvar-Flow-Ad PercLoss %.4f < 0.4851" p_ad

(* Flexile meets both flows' requirements: each flow is prioritized in
   the scenarios where its direct link is alive, so PercLoss = 0. *)
let test_fig1_flexile () =
  let r = Flexile_scheme.run fig1 in
  check_float ~msg:"Flexile PercLoss at 0.99" 0. (perc fig1 r.Flexile_scheme.losses)

(* The exact IP also achieves 0; and Flexile matches it. *)
let test_fig1_ip () =
  let r = Ip_direct.solve fig1 in
  if not r.Ip_direct.optimal then Alcotest.fail "IP did not prove optimality";
  check_float ~msg:"IP PercLoss" 0. (perc fig1 r.Ip_direct.losses)

(* Proposition 1: the starting point of the decomposition is already at
   least as good as ScenBest. *)
let test_fig1_prop1 () =
  let r = Flexile_offline.solve fig1 in
  let initial = List.hd r.Flexile_offline.iterates in
  let scenbest = Scenbest.run fig1 in
  let p0 = perc fig1 initial.Flexile_offline.losses in
  let pb = perc fig1 scenbest in
  if p0 > pb +. 1e-6 then
    Alcotest.failf "starting point %.4f worse than ScenBest %.4f" p0 pb

(* The lower bound is 0 here: each flow alone can use its direct link. *)
let test_fig1_lower_bound () =
  check_float ~msg:"lower bound" 0. (Lower_bound.perc_loss_lower_bound fig1 ~cls:0)

(* Fig 16: removing link B-C, ScenBest meets the objectives (each flow
   has only its direct link, so scenario-optimal routing serves it
   fully whenever it is alive). *)
let test_fig16_scenbest_ok () =
  let graph = Flexile_net.Catalog.two_link () in
  let mk pair edges =
    Flexile_net.Tunnels.make graph ~pair (Array.of_list edges)
  in
  let fm = Flexile_failure.Failure_model.of_probs ~nedges:2 [| 0.01; 0.01 |] in
  let scenarios =
    Flexile_failure.Failure_model.enumerate ~cutoff:1e-7 ~max_scenarios:4 fm
  in
  let inst =
    Instance.make ~graph
      ~classes:[| { Instance.cname = "all"; beta = 0.99; weight = 1. } |]
      ~pairs:[| (0, 1); (0, 2) |]
      ~tunnels:[| [| [| mk (0, 1) [ 0 ] |]; [| mk (0, 2) [ 1 ] |] |] |]
      ~demands:[| [| 1.; 1. |] |]
      ~scenarios ()
  in
  let losses = Scenbest.run inst in
  check_float ~msg:"two-link ScenBest PercLoss" 0. (perc inst losses);
  (* ... demonstrating the monotonicity anomaly: ScenBest does worse
     on the triangle (Fig 1) which has an extra link. *)
  let triangle = Scenbest.run fig1 in
  if perc fig1 triangle <= 1e-6 then
    Alcotest.fail "expected ScenBest anomaly on the richer topology"

(* Fig 17: max-min in each scenario starves f1 across scenarios, while
   Flexile meets both flows' targets. *)
let test_fig17 () =
  let inst = Flexile_core.Builder.fig17 () in
  (* per-scenario max-min (= ScenBest with refinement) *)
  let maxmin = Scenbest.run inst in
  let f1 = inst.Instance.flows.(0) and f2 = inst.Instance.flows.(1) in
  let v1 = Metrics.flow_loss_var inst maxmin f1 ~beta:0.99 in
  let v2 = Metrics.flow_loss_var inst maxmin f2 ~beta:0.99 in
  check_float ~msg:"maxmin f2 meets target" 0. v2;
  if v1 <= 1e-6 then Alcotest.fail "expected maxmin to starve f1";
  let r = Flexile_scheme.run inst in
  let w1 = Metrics.flow_loss_var inst r.Flexile_scheme.losses f1 ~beta:0.99 in
  let w2 = Metrics.flow_loss_var inst r.Flexile_scheme.losses f2 ~beta:0.99 in
  check_float ~msg:"Flexile f1" 0. w1;
  check_float ~msg:"Flexile f2" 0. w2

(* Flexile respects scenario-level behaviour: in Fig 1, its loss
   penalty relative to ScenBest is bounded (both flows can still get
   0.5 in single-failure scenarios when gamma = 0). *)
let test_fig1_gamma_variant () =
  let config =
    { Flexile_offline.default_config with gamma = Some 0.0 }
  in
  let r = Flexile_scheme.run ~config fig1 in
  (* with gamma = 0 no flow may do worse than the scenario optimum, so
     Flexile collapses to ScenBest behaviour: PercLoss 0.5 *)
  check_float ~msg:"gamma=0 PercLoss" 0.5 (perc fig1 r.Flexile_scheme.losses)

let test_fig1_scenloss_penalty () =
  (* Flexile's ScenLoss penalty vs optimal: in single-failure scenarios
     Flexile gives the critical flow 1.0 and the other 0, so ScenLoss
     is 1 vs optimal 0.5 — but those scenarios are non-critical for
     the starved flow, and at the 99th percentile the penalty is 0. *)
  let r = Flexile_scheme.run fig1 in
  let baseline = Scenbest.run fig1 in
  let cdf =
    Metrics.scenario_penalty_cdf fig1 r.Flexile_scheme.losses ~baseline
  in
  (* penalty at cumulative mass >= 0.98 must be 0: the no-failure
     scenario alone has mass 0.9703 and zero penalty, plus B-C failure *)
  let zero_mass =
    List.fold_left
      (fun acc (v, _) -> if v <= 1e-6 then acc else acc)
      0. cdf
  in
  ignore zero_mass;
  let mass_at_zero =
    List.fold_left
      (fun acc (v, c) -> if v <= 1e-6 then Float.max acc c else acc)
      0. cdf
  in
  if mass_at_zero < 0.97 then
    Alcotest.failf "zero-penalty mass %.4f too small" mass_at_zero

(* Appendix B: minimum-cost capacity augmentation.  On the triangle,
   Flexile-style planning needs no extra capacity for zero loss at 99%
   while the scenario-centric plan must double both access links (the
   "2X upgrade" of §3). *)
let test_capacity_augmentation () =
  let per_flow = Augment.min_cost ~mode:`Per_flow ~perc_limit:[| 0. |] fig1 in
  if not per_flow.Augment.optimal then Alcotest.fail "per-flow MIP not optimal";
  check_float ~msg:"Flexile planning cost" 0. per_flow.Augment.cost;
  let common = Augment.min_cost ~mode:`Common ~perc_limit:[| 0. |] fig1 in
  if not common.Augment.optimal then Alcotest.fail "common MIP not optimal";
  check_float ~msg:"scenario-centric cost" 2. common.Augment.cost;
  (* relaxing the loss target halves the needed upgrade *)
  let relaxed = Augment.min_cost ~mode:`Common ~perc_limit:[| 0.25 |] fig1 in
  check_float ~msg:"relaxed cost" 1. relaxed.Augment.cost

(* §4.4 "more general scenarios": per-scenario traffic matrices.  On
   the triangle, let f2's demand vanish in the scenario where A-B
   fails: then f1 can use the A-C-B detour there, so even at a target
   covering that scenario both flows are lossless. *)
let test_demand_scenarios () =
  let graph = Flexile_net.Catalog.triangle () in
  let mk pair edges = Flexile_net.Tunnels.make graph ~pair (Array.of_list edges) in
  let tunnels =
    [|
      [|
        [| mk (0, 1) [ 0 ]; mk (0, 1) [ 1; 2 ] |];
        [| mk (0, 2) [ 1 ]; mk (0, 2) [ 0; 2 ] |];
      |];
    |]
  in
  let fm = Flexile_failure.Failure_model.of_probs ~nedges:3 [| 0.01; 0.01; 0.01 |] in
  let scenarios =
    Flexile_failure.Failure_model.enumerate ~cutoff:1e-7 ~max_scenarios:8 fm
  in
  (* factors: f2 (fid 1) demands nothing whenever link A-B (edge 0) is
     down; f1 (fid 0) demands nothing whenever A-C (edge 1) is down *)
  let factors =
    Array.map
      (fun (s : Flexile_failure.Failure_model.scenario) ->
        [|
          (if s.Flexile_failure.Failure_model.edge_alive.(1) then 1. else 0.);
          (if s.Flexile_failure.Failure_model.edge_alive.(0) then 1. else 0.);
        |])
      scenarios
  in
  let inst =
    Instance.make ~graph
      ~classes:[| { Instance.cname = "all"; beta = 0.9997; weight = 1. } |]
      ~pairs:[| (0, 1); (0, 2) |]
      ~tunnels
      ~demands:[| [| 1.; 1. |] |]
      ~demand_factors:factors ~scenarios ()
  in
  (* with the complementary demand pattern the whole capacity is free
     for the surviving flow: PercLoss 0 even at 99.97% *)
  let r = Flexile_scheme.run inst in
  check_float ~msg:"demand-scenario PercLoss" 0.
    (Metrics.perc_loss inst r.Flexile_scheme.losses ~cls:0 ());
  (* sanity: without the factors the same beta is unattainable *)
  let inst_plain =
    Instance.make ~graph
      ~classes:[| { Instance.cname = "all"; beta = 0.9997; weight = 1. } |]
      ~pairs:[| (0, 1); (0, 2) |]
      ~tunnels
      ~demands:[| [| 1.; 1. |] |]
      ~scenarios ()
  in
  let p = Flexile_scheme.run inst_plain in
  if Metrics.perc_loss inst_plain p.Flexile_scheme.losses ~cls:0 () <= 1e-6 then
    Alcotest.fail "expected nonzero PercLoss without demand scenarios"

(* §6.2's throughput-unfairness example: on a path A-B-C with unit
   links, maximizing throughput serves AB and BC fully and starves AC
   entirely, while max-min gives everyone 0.5. *)
let test_abc_throughput_starves () =
  let graph =
    Flexile_net.Graph.create ~name:"path" ~n:3 [| (0, 1, 1.); (1, 2, 1.) |]
  in
  let mk pair edges = Flexile_net.Tunnels.make graph ~pair (Array.of_list edges) in
  let fm = Flexile_failure.Failure_model.of_probs ~nedges:2 [| 0.01; 0.01 |] in
  let scenarios =
    Flexile_failure.Failure_model.enumerate ~cutoff:0.5 ~max_scenarios:1 fm
  in
  (* only the no-failure scenario: isolates the allocation policy *)
  Alcotest.(check int) "single scenario" 1 (Array.length scenarios);
  let inst =
    Instance.make ~graph
      ~classes:[| { Instance.cname = "all"; beta = 0.9; weight = 1. } |]
      ~pairs:[| (0, 1); (0, 2); (1, 2) |]
      ~tunnels:
        [|
          [|
            [| mk (0, 1) [ 0 ] |]; [| mk (0, 2) [ 0; 1 ] |]; [| mk (1, 2) [ 1 ] |];
          |];
        |]
      ~demands:[| [| 1.; 1.; 1. |] |]
      ~scenarios ()
  in
  let tp = Swan.run_throughput inst in
  let ab = inst.Instance.flows.(0)
  and ac = inst.Instance.flows.(1)
  and bc = inst.Instance.flows.(2) in
  check_float ~msg:"throughput AB full" 0. tp.(ab.Instance.fid).(0);
  check_float ~msg:"throughput BC full" 0. tp.(bc.Instance.fid).(0);
  check_float ~msg:"throughput starves AC" 1. tp.(ac.Instance.fid).(0);
  let mm = Swan.run_maxmin inst in
  check_float ~msg:"maxmin AB" 0.5 mm.(ab.Instance.fid).(0);
  check_float ~msg:"maxmin AC" 0.5 mm.(ac.Instance.fid).(0);
  check_float ~msg:"maxmin BC" 0.5 mm.(bc.Instance.fid).(0)

(* FFC (§2): planning for one arbitrary link failure grants each
   triangle flow only 0.5 units — it pays the 50% toll in EVERY
   scenario, including the 97%-probable no-failure state, which is
   exactly the conservatism the paper's probabilistic approach avoids. *)
let test_ffc_conservatism () =
  let r = Ffc.run ~k:1 fig1 in
  Array.iter
    (fun (f : Instance.flow) ->
      check_float ~msg:"granted 0.5" 0.5 r.Ffc.granted.(f.Instance.fid);
      check_float ~msg:"loss 0.5 even with no failure" 0.5
        r.Ffc.losses.(f.Instance.fid).(0))
    fig1.Instance.flows;
  check_float ~msg:"FFC PercLoss" 0.5 (perc fig1 r.Ffc.losses);
  (* k = 0 degenerates to unprotected max-throughput: full grants *)
  let r0 = Ffc.run ~k:0 fig1 in
  Array.iter
    (fun (f : Instance.flow) ->
      check_float ~msg:"k=0 grants full demand" 1. r0.Ffc.granted.(f.Instance.fid))
    fig1.Instance.flows;
  (* k = 2 on the triangle: two failures can kill both tunnels, so
     nothing can be guaranteed *)
  let r2 = Ffc.run ~k:2 fig1 in
  Array.iter
    (fun (f : Instance.flow) ->
      check_float ~msg:"k=2 grants nothing" 0. r2.Ffc.granted.(f.Instance.fid))
    fig1.Instance.flows

(* Shared-risk link groups (§4.1): edges A-B and A-C belong to one
   SRLG (say, a shared conduit out of A), so they fail together; the
   B-C link is its own SRLG.  Both flows then lose everything whenever
   the shared group fails, and no scheme can do better than loss 1 in
   that scenario — but at 98.9% both flows are still servable. *)
let test_srlg_scenarios () =
  let graph = Flexile_net.Catalog.triangle () in
  let mk pair edges = Flexile_net.Tunnels.make graph ~pair (Array.of_list edges) in
  let fm =
    Flexile_failure.Failure_model.grouped
      ~groups:[| [| 0; 1 |]; [| 2 |] |]
      ~probs:[| 0.01; 0.01 |] ~nedges:3
  in
  let scenarios =
    Flexile_failure.Failure_model.enumerate ~cutoff:0. ~max_scenarios:4 fm
  in
  Alcotest.(check int) "4 SRLG scenarios" 4 (Array.length scenarios);
  let inst =
    Instance.make ~graph
      ~classes:[| { Instance.cname = "all"; beta = 0.989; weight = 1. } |]
      ~pairs:[| (0, 1); (0, 2) |]
      ~tunnels:
        [|
          [|
            [| mk (0, 1) [ 0 ]; mk (0, 1) [ 1; 2 ] |];
            [| mk (0, 2) [ 1 ]; mk (0, 2) [ 0; 2 ] |];
          |];
        |]
      ~demands:[| [| 1.; 1. |] |]
      ~scenarios ()
  in
  (* when SRLG 0 fails, both flows are disconnected *)
  let bad =
    Array.to_list inst.Instance.scenarios
    |> List.find (fun (s : Flexile_failure.Failure_model.scenario) ->
           Array.mem 0 s.Flexile_failure.Failure_model.failed_units)
  in
  Array.iter
    (fun f ->
      if Instance.flow_connected inst f bad.Flexile_failure.Failure_model.sid
      then Alcotest.fail "flow should be disconnected under the SRLG")
    inst.Instance.flows;
  let r = Flexile_scheme.run inst in
  check_float ~msg:"SRLG PercLoss at 0.989" 0.
    (Metrics.perc_loss inst r.Flexile_scheme.losses ~cls:0 ())

(* §4.4 imperfect probability prediction: designing against perturbed
   probabilities at a slightly higher target still meets the true SLO,
   because only the cumulative mass of the selected critical scenarios
   matters. *)
let test_imperfect_probabilities () =
  let graph = Flexile_net.Catalog.triangle () in
  let mk pair edges = Flexile_net.Tunnels.make graph ~pair (Array.of_list edges) in
  let tunnels =
    [|
      [|
        [| mk (0, 1) [ 0 ]; mk (0, 1) [ 1; 2 ] |];
        [| mk (0, 2) [ 1 ]; mk (0, 2) [ 0; 2 ] |];
      |];
    |]
  in
  let build probs beta =
    let fm = Flexile_failure.Failure_model.of_probs ~nedges:3 probs in
    let scenarios =
      Flexile_failure.Failure_model.enumerate ~cutoff:0. ~max_scenarios:8 fm
    in
    Instance.make ~graph
      ~classes:[| { Instance.cname = "all"; beta; weight = 1. } |]
      ~pairs:[| (0, 1); (0, 2) |]
      ~tunnels
      ~demands:[| [| 1.; 1. |] |]
      ~scenarios ()
  in
  (* predicted probabilities underestimate the truth by 25%; the SLO is
     98.5%, and we design at the compensated target 99.2% so the
     critical scenarios' true mass still covers the SLO *)
  let predicted = build [| 0.006; 0.006; 0.006 |] 0.992 in
  let truth = build [| 0.008; 0.008; 0.008 |] 0.985 in
  (* same link order and uniform probabilities: scenario enumeration
     order matches, so the critical sets carry over *)
  let off = Flexile_offline.solve predicted in
  let losses = Flexile_online.run truth ~offline:off in
  check_float ~msg:"true SLO met despite prediction error" 0.
    (Metrics.perc_loss truth losses ~cls:0 ())

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "flexile_te_toy"
    [
      ( "fig1",
        [
          quick "scenbest caps at 0.5" test_fig1_scenbest;
          quick "teavar conservative" test_fig1_teavar;
          quick "cvar schemes (prop 2)" test_fig1_cvar_prop2;
          quick "flexile achieves 0" test_fig1_flexile;
          quick "ip achieves 0" test_fig1_ip;
          quick "starting point (prop 1)" test_fig1_prop1;
          quick "lower bound" test_fig1_lower_bound;
          quick "gamma=0 collapses to scenbest" test_fig1_gamma_variant;
          quick "scenario penalty bounded" test_fig1_scenloss_penalty;
        ] );
      ( "anomalies",
        [
          quick "fig16 monotonicity" test_fig16_scenbest_ok;
          quick "fig17 cross-scenario fairness" test_fig17;
          quick "a-b-c throughput starvation" test_abc_throughput_starves;
          quick "ffc conservatism" test_ffc_conservatism;
        ] );
      ( "generalizations",
        [
          quick "per-scenario traffic matrices" test_demand_scenarios;
          quick "capacity augmentation (appendix B)" test_capacity_augmentation;
          quick "shared-risk link groups" test_srlg_scenarios;
          quick "imperfect probability prediction" test_imperfect_probabilities;
        ] );
    ]
