(** Stochastic failure model: shared-risk link groups (SRLGs) with
    independent failure probabilities, and best-first enumeration of
    the most probable disjoint failure scenarios.

    In the default model every link is its own SRLG with a
    Weibull-distributed failure probability whose median is ~0.001,
    matching the paper's §6 methodology and the WAN measurement
    studies it cites. *)

type t = {
  nedges : int;
  unit_probs : float array;  (** failure probability of each SRLG *)
  unit_edges : int array array;  (** SRLG -> edge ids failing together *)
}

val independent_links :
  ?median:float ->
  ?shape:float ->
  graph:Flexile_net.Graph.t ->
  seed:Flexile_util.Prng.t ->
  unit ->
  t
(** One SRLG per link; probabilities sampled from a Weibull whose
    median is [median] (default 0.001), shape default 0.8, clamped to
    [1e-5, 0.3]. *)

val of_probs : nedges:int -> float array -> t
(** One SRLG per link with the given probabilities (testing and the
    paper's toy examples where every link fails with 0.01). *)

val grouped :
  groups:int array array -> probs:float array -> nedges:int -> t
(** Explicit SRLGs: [groups.(i)] lists the edges failing together with
    probability [probs.(i)]. *)

(** A failure scenario: a subset of SRLGs failed, all others alive.
    Scenarios are disjoint events; probabilities of an enumeration sum
    to at most 1. *)
type scenario = {
  sid : int;  (** dense index within the enumeration *)
  failed_units : int array;
  prob : float;
  edge_alive : bool array;  (** length [nedges] *)
}

val no_failure : t -> scenario

val enumerate :
  ?cutoff:float -> ?max_scenarios:int -> t -> scenario array
(** Scenarios in non-increasing probability order, stopping below
    probability [cutoff] (default 1e-6, the paper's threshold) or at
    [max_scenarios] (default 400).  The no-failure scenario is first. *)

val coverage : scenario array -> float
(** Total probability mass of the enumerated scenarios. *)

val scenario_of_units : t -> sid:int -> int array -> scenario
(** Build a specific scenario (testing; probability computed from the
    model). *)
