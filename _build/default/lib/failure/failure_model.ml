type t = {
  nedges : int;
  unit_probs : float array;
  unit_edges : int array array;
}

let clamp lo hi x = Float.max lo (Float.min hi x)

let independent_links ?(median = 0.001) ?(shape = 0.8) ~graph ~seed () =
  let nedges = Flexile_net.Graph.nedges graph in
  (* Weibull median is scale * (ln 2)^(1/shape). *)
  let scale = median /. Float.pow (Float.log 2.) (1. /. shape) in
  let unit_probs =
    Array.init nedges (fun _ ->
        clamp 1e-5 0.3 (Flexile_util.Prng.weibull seed ~shape ~scale))
  in
  { nedges; unit_probs; unit_edges = Array.init nedges (fun i -> [| i |]) }

let of_probs ~nedges probs =
  if Array.length probs <> nedges then invalid_arg "Failure_model.of_probs";
  Array.iter
    (fun p ->
      if p < 0. || p >= 1. then
        invalid_arg "Failure_model.of_probs: probability out of [0,1)")
    probs;
  {
    nedges;
    unit_probs = Array.copy probs;
    unit_edges = Array.init nedges (fun i -> [| i |]);
  }

let grouped ~groups ~probs ~nedges =
  if Array.length groups <> Array.length probs then
    invalid_arg "Failure_model.grouped";
  { nedges; unit_probs = Array.copy probs; unit_edges = Array.map Array.copy groups }

type scenario = {
  sid : int;
  failed_units : int array;
  prob : float;
  edge_alive : bool array;
}

let alive_of_failed t failed =
  let alive = Array.make t.nedges true in
  Array.iter
    (fun u -> Array.iter (fun e -> alive.(e) <- false) t.unit_edges.(u))
    failed;
  alive

let base_prob t =
  Array.fold_left (fun acc p -> acc *. (1. -. p)) 1. t.unit_probs

let scenario_prob t failed =
  let odds u = t.unit_probs.(u) /. (1. -. t.unit_probs.(u)) in
  Array.fold_left (fun acc u -> acc *. odds u) (base_prob t) failed

let no_failure t =
  {
    sid = 0;
    failed_units = [||];
    prob = base_prob t;
    edge_alive = Array.make t.nedges true;
  }

let scenario_of_units t ~sid failed =
  let failed = Array.copy failed in
  Array.sort compare failed;
  {
    sid;
    failed_units = failed;
    prob = scenario_prob t failed;
    edge_alive = alive_of_failed t failed;
  }

(* Best-first subset enumeration.  Each heap entry is a scenario whose
   children extend the failed set with a strictly larger unit index;
   since every odds ratio is < 1 (p < 0.5), children have smaller
   probability than their parent, so the heap pops scenarios in
   non-increasing probability order. *)
module Heap = struct
  type entry = { p : float; last : int; failed : int list }
  type h = { mutable data : entry array; mutable size : int }

  let create () = { data = [||]; size = 0 }

  let push h e =
    if h.size = Array.length h.data then begin
      let cap = max 64 (2 * h.size) in
      let d = Array.make cap e in
      Array.blit h.data 0 d 0 h.size;
      h.data <- d
    end;
    h.data.(h.size) <- e;
    let i = ref h.size in
    h.size <- h.size + 1;
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / 2 in
      if h.data.(!i).p > h.data.(parent).p then begin
        let tmp = h.data.(!i) in
        h.data.(!i) <- h.data.(parent);
        h.data.(parent) <- tmp;
        i := parent
      end
      else continue := false
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 and continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let big = ref !i in
        if l < h.size && h.data.(l).p > h.data.(!big).p then big := l;
        if r < h.size && h.data.(r).p > h.data.(!big).p then big := r;
        if !big <> !i then begin
          let tmp = h.data.(!i) in
          h.data.(!i) <- h.data.(!big);
          h.data.(!big) <- tmp;
          i := !big
        end
        else continue := false
      done;
      Some top
    end
end

let enumerate ?(cutoff = 1e-6) ?(max_scenarios = 400) t =
  Array.iter
    (fun p ->
      if p >= 0.5 then
        invalid_arg
          "Failure_model.enumerate: unit failure probability >= 0.5 breaks \
           best-first ordering")
    t.unit_probs;
  let nunits = Array.length t.unit_probs in
  let odds = Array.map (fun p -> p /. (1. -. p)) t.unit_probs in
  let heap = Heap.create () in
  Heap.push heap { Heap.p = base_prob t; last = -1; failed = [] };
  let out = ref [] in
  let count = ref 0 in
  let continue = ref true in
  while !continue && !count < max_scenarios do
    match Heap.pop heap with
    | None -> continue := false
    | Some { Heap.p; last; failed } ->
        if p < cutoff then continue := false
        else begin
          let failed_arr = Array.of_list (List.rev failed) in
          out :=
            {
              sid = !count;
              failed_units = failed_arr;
              prob = p;
              edge_alive = alive_of_failed t failed_arr;
            }
            :: !out;
          incr count;
          for j = last + 1 to nunits - 1 do
            let child_p = p *. odds.(j) in
            if child_p >= cutoff then
              Heap.push heap { Heap.p = child_p; last = j; failed = j :: failed }
          done
        end
  done;
  Array.of_list (List.rev !out)

let coverage scenarios =
  Array.fold_left (fun acc s -> acc +. s.prob) 0. scenarios
