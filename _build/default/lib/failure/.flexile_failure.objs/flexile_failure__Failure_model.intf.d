lib/failure/failure_model.mli: Flexile_net Flexile_util
