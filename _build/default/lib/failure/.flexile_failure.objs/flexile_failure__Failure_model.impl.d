lib/failure/failure_model.ml: Array Flexile_net Flexile_util Float List
