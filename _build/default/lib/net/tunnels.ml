type t = { pair : int * int; path : Paths.path; nodes : int array }

let alive t ~edge_alive = Array.for_all edge_alive t.path

let make g ~pair path =
  { pair; path; nodes = Paths.nodes g ~src:(fst pair) path }

let pool g ~pair ~k =
  let src, dst = pair in
  Paths.k_shortest g ~k ~src ~dst ()

(* Greedy selection scored by overlap with already-selected tunnels,
   breaking ties by length: at each step pick the candidate minimizing
   (total shared edges with selection, length). *)
let greedy_disjoint candidates count =
  let rec go selected remaining n =
    if n = 0 || remaining = [] then List.rev selected
    else begin
      let score p =
        let shared =
          List.fold_left (fun acc q -> acc + Paths.overlap p q) 0 selected
        in
        (shared, Array.length p)
      in
      let best =
        List.fold_left
          (fun acc p ->
            match acc with
            | None -> Some (p, score p)
            | Some (_, s) when score p < s -> Some (p, score p)
            | Some _ -> acc)
          None remaining
      in
      match best with
      | None -> List.rev selected
      | Some (p, _) ->
          let remaining = List.filter (fun q -> q != p) remaining in
          go (p :: selected) remaining (n - 1)
    end
  in
  go [] candidates count

let select_single_class g ~pair ~count =
  let cands = pool g ~pair ~k:(max (3 * count) 12) in
  List.map (make g ~pair) (greedy_disjoint cands count)

(* An edge common to all chosen paths is a single point of failure;
   choose shortest paths first but replace the last pick if a
   SPOF-free combination exists among the candidates. *)
let select_high_priority g ~pair ~count =
  let cands = pool g ~pair ~k:(max (3 * count) 12) in
  match cands with
  | [] -> []
  | first :: _ ->
      let has_spof chosen =
        match chosen with
        | [] -> false
        | p :: rest ->
            let common =
              Array.to_list p
              |> List.filter (fun e ->
                     List.for_all
                       (fun q -> Array.exists (fun e' -> e' = e) q)
                       rest)
            in
            common <> []
      in
      (* shortest-first prefix *)
      let rec take n = function
        | [] -> []
        | x :: tl -> if n = 0 then [] else x :: take (n - 1) tl
      in
      let base = take count cands in
      let chosen =
        if not (has_spof base) then base
        else begin
          (* try swapping later candidates for the last slots *)
          let rec search acc rest n =
            if n = 0 then Some (List.rev acc)
            else
              let rec try_each = function
                | [] -> None
                | c :: tl -> (
                    match search (c :: acc) tl (n - 1) with
                    | Some sol when not (has_spof sol) -> Some sol
                    | _ -> try_each tl)
              in
              try_each rest
          in
          match search [ first ] (List.tl cands) (count - 1) with
          | Some sol -> sol
          | None -> base
        end
      in
      List.map (make g ~pair) chosen

let select_low_priority g ~pair ~high ~extra =
  let cands = pool g ~pair ~k:(max (4 * (List.length high + extra)) 20) in
  let high_paths = List.map (fun t -> t.path) high in
  let fresh =
    List.filter (fun p -> not (List.exists (fun q -> q = p) high_paths)) cands
  in
  (* score extra tunnels by disjointness against everything chosen *)
  let rec go selected remaining n =
    if n = 0 || remaining = [] then List.rev selected
    else begin
      let score p =
        let shared =
          List.fold_left (fun acc q -> acc + Paths.overlap p q) 0 selected
          + List.fold_left (fun acc q -> acc + Paths.overlap p q) 0 high_paths
        in
        (shared, Array.length p)
      in
      let best =
        List.fold_left
          (fun acc p ->
            match acc with
            | None -> Some (p, score p)
            | Some (_, s) when score p < s -> Some (p, score p)
            | Some _ -> acc)
          None remaining
      in
      match best with
      | None -> List.rev selected
      | Some (p, _) ->
          go (p :: selected) (List.filter (fun q -> q != p) remaining) (n - 1)
    end
  in
  let extras = go [] fresh extra in
  high @ List.map (make g ~pair) extras
