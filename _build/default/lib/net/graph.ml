type edge = { id : int; u : int; v : int; capacity : float; group : int }

type t = {
  name : string;
  n : int;
  edges : edge array;
  adj : (int * int) list array;
}

let create ~name ~n links =
  let edges =
    Array.mapi
      (fun id (u, v, capacity) ->
        if u = v then invalid_arg "Graph.create: self-loop";
        if u < 0 || u >= n || v < 0 || v >= n then
          invalid_arg "Graph.create: endpoint out of range";
        if capacity <= 0. then invalid_arg "Graph.create: capacity <= 0";
        { id; u; v; capacity; group = id })
      links
  in
  let adj = Array.make n [] in
  Array.iter
    (fun e ->
      adj.(e.u) <- (e.id, e.v) :: adj.(e.u);
      adj.(e.v) <- (e.id, e.u) :: adj.(e.v))
    edges;
  Array.iteri (fun i l -> adj.(i) <- List.rev l) adj;
  { name; n; edges; adj }

let nedges g = Array.length g.edges

let other_endpoint e x =
  if x = e.u then e.v
  else if x = e.v then e.u
  else invalid_arg "Graph.other_endpoint"

let bfs g alive start =
  let seen = Array.make g.n false in
  seen.(start) <- true;
  let q = Queue.create () in
  Queue.add start q;
  while not (Queue.is_empty q) do
    let x = Queue.pop q in
    List.iter
      (fun (eid, y) ->
        if alive eid && not seen.(y) then begin
          seen.(y) <- true;
          Queue.add y q
        end)
      g.adj.(x)
  done;
  seen

let connected g ?(alive = fun _ -> true) u v =
  if u = v then true else (bfs g alive u).(v)

let is_connected_graph g ?(alive = fun _ -> true) () =
  if g.n = 0 then true
  else begin
    let seen = bfs g alive 0 in
    Array.for_all (fun b -> b) seen
  end

let degree g x = List.length g.adj.(x)

let split_links g =
  let links = Array.length g.edges in
  let edges =
    Array.init (2 * links) (fun id ->
        let parent = g.edges.(id / 2) in
        {
          id;
          u = parent.u;
          v = parent.v;
          capacity = parent.capacity /. 2.;
          group = parent.id;
        })
  in
  let adj = Array.make g.n [] in
  Array.iter
    (fun e ->
      adj.(e.u) <- (e.id, e.v) :: adj.(e.u);
      adj.(e.v) <- (e.id, e.u) :: adj.(e.v))
    edges;
  Array.iteri (fun i l -> adj.(i) <- List.rev l) adj;
  { name = g.name ^ "-rich"; n = g.n; edges; adj }

let pairs g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    for v = g.n - 1 downto u + 1 do
      acc := (u, v) :: !acc
    done
  done;
  Array.of_list !acc

let pp fmt g =
  Format.fprintf fmt "%s: %d nodes, %d edges" g.name g.n (Array.length g.edges)
