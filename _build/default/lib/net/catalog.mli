(** The topology catalog: the 20 evaluation networks of Table 2 (each
    generated deterministically at its exact published size, see
    {!Gen}) and the paper's illustrative toy topologies. *)

val table2 : (string * int * int) list
(** (name, nodes, edges) exactly as in Table 2 of the paper. *)

val by_name : string -> Graph.t
(** Case-insensitive lookup in {!table2}.  Raises [Not_found]. *)

val all : unit -> (string * Graph.t) list
(** All 20 evaluation topologies, smallest edge count first. *)

val triangle : unit -> Graph.t
(** Fig. 1: nodes A=0, B=1, C=2, three unit-capacity links. *)

val two_link : unit -> Graph.t
(** Fig. 16: the triangle without the B-C link. *)
