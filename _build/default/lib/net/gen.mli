(** Deterministic topology generator.

    The Topology Zoo GML files used by the paper are not available
    offline, so each evaluation topology is generated at its exact
    (nodes, edges) size with the structure of a 1-degree-pruned ISP
    network: a few rings chained by bridge links plus random chords,
    giving minimum degree 2 (the paper's pruning invariant) while
    keeping realistic bridges whose failure partitions the network.
    Link capacities come from a small set of standard magnitudes.
    See DESIGN.md. *)

val random_graph :
  name:string -> n:int -> m:int -> seed:Flexile_util.Prng.t -> Graph.t
(** Raises [Invalid_argument] if [m < n] (the cycle needs [n] edges) or
    if [m] exceeds the simple-graph maximum. *)
