let capacities = [| 1.0; 2.5; 5.0; 10.0 |]

(* Real (1-degree-pruned) ISP topologies are sparse rings and meshes
   joined by a few bridge links: every node has degree >= 2 (the
   paper's pruning invariant) but the graph is generally NOT
   2-edge-connected, and bridge failures disconnect site pairs.  The
   generator reproduces that structure at the requested exact size:
   nodes are split into k rings chained by k-1 bridge links, and the
   remaining edge budget becomes random chords placed {e inside} rings
   (so the bridges stay genuine bridges).

   Edge count: sum of ring sizes (= n) + (k-1) bridges + chords = m.
   A ring of size s admits s*(s-3)/2 chords; k and the ring sizes are
   chosen so the chord budget always fits. *)
let random_graph ~name ~n ~m ~seed =
  if n < 3 then invalid_arg "Gen.random_graph: need at least 3 nodes";
  if m < n then invalid_arg "Gen.random_graph: need m >= n for min degree 2";
  if m > n * (n - 1) / 2 then invalid_arg "Gen.random_graph: m too large";
  let prng = seed in
  (* pick the largest k <= 4 whose ring sizes can host the chords *)
  let ring_sizes k =
    let small = max 3 (n / (2 * k)) in
    let big = n - (small * (k - 1)) in
    if big < 3 then None
    else begin
      let sizes = Array.make k small in
      sizes.(0) <- big;
      let chord_capacity =
        Array.fold_left (fun a s -> a + (s * (s - 3) / 2)) 0 sizes
      in
      let chords = m - n - (k - 1) in
      if chords >= 0 && chord_capacity >= chords then Some sizes else None
    end
  in
  let rec pick k = if k <= 1 then [| n |] else
    match ring_sizes k with Some s -> s | None -> pick (k - 1)
  in
  let kmax = min 4 (min (m - n + 1) (n / 3)) in
  let sizes = pick (max 1 kmax) in
  let k = Array.length sizes in
  let order = Array.init n (fun i -> i) in
  Flexile_util.Prng.shuffle prng order;
  let used = Hashtbl.create (2 * m) in
  let key u v = if u < v then (u, v) else (v, u) in
  let links = ref [] in
  let cap () = Flexile_util.Prng.choose prng capacities in
  let add u v =
    if u <> v && not (Hashtbl.mem used (key u v)) then begin
      Hashtbl.replace used (key u v) ();
      links := (u, v, cap ()) :: !links;
      true
    end
    else false
  in
  let rings = Array.make k [||] in
  let offset = ref 0 in
  for r = 0 to k - 1 do
    rings.(r) <- Array.sub order !offset sizes.(r);
    offset := !offset + sizes.(r);
    let ring = rings.(r) in
    for i = 0 to Array.length ring - 1 do
      ignore (add ring.(i) ring.((i + 1) mod Array.length ring))
    done
  done;
  (* chain the rings with bridges *)
  for r = 0 to k - 2 do
    let placed = ref false in
    while not !placed do
      let u = Flexile_util.Prng.choose prng rings.(r) in
      let v = Flexile_util.Prng.choose prng rings.(r + 1) in
      if add u v then placed := true
    done
  done;
  (* chords strictly inside rings *)
  let added = ref (n + k - 1) in
  while !added < m do
    let r = Flexile_util.Prng.int prng k in
    let ring = rings.(r) in
    let s = Array.length ring in
    if s >= 4 then begin
      let i = Flexile_util.Prng.int prng s in
      let j = Flexile_util.Prng.int prng s in
      if add ring.(i) ring.(j) then incr added
    end
  done;
  Graph.create ~name ~n (Array.of_list (List.rev !links))
