lib/net/catalog.mli: Graph
