lib/net/tunnels.ml: Array List Paths
