lib/net/paths.mli: Graph Hashtbl
