lib/net/tunnels.mli: Graph Paths
