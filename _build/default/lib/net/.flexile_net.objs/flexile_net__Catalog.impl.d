lib/net/catalog.ml: Flexile_util Gen Graph List Printf String
