lib/net/gen.mli: Flexile_util Graph
