lib/net/paths.ml: Array Graph Hashtbl List
