lib/net/graph.ml: Array Format List Queue
