lib/net/gml.ml: Array Buffer Filename Graph Hashtbl List Printf String
