lib/net/gen.ml: Array Flexile_util Graph Hashtbl List
