lib/net/gml.mli: Graph
