(* A tiny recursive-descent parser for the GML subset used by the
   Internet Topology Zoo: a stream of [key value] pairs where a value
   is a number, a quoted string, or a bracketed list of pairs. *)

type value =
  | Num of float
  | Str of string
  | Record of (string * value) list

let tokenize text =
  let tokens = ref [] in
  let n = String.length text in
  let i = ref 0 in
  while !i < n do
    let c = text.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '[' || c = ']' then begin
      tokens := String.make 1 c :: !tokens;
      incr i
    end
    else if c = '"' then begin
      let j = ref (!i + 1) in
      while !j < n && text.[!j] <> '"' do
        incr j
      done;
      if !j >= n then failwith "Gml.parse: unterminated string";
      tokens := ("\"" ^ String.sub text (!i + 1) (!j - !i - 1)) :: !tokens;
      i := !j + 1
    end
    else if c = '#' then begin
      (* comment to end of line *)
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    end
    else begin
      let j = ref !i in
      while
        !j < n
        &&
        let c = text.[!j] in
        not (c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '[' || c = ']')
      do
        incr j
      done;
      tokens := String.sub text !i (!j - !i) :: !tokens;
      i := !j
    end
  done;
  List.rev !tokens

let rec parse_pairs tokens =
  match tokens with
  | [] -> ([], [])
  | "]" :: rest -> ([], rest)
  | key :: "[" :: rest ->
      let fields, rest = parse_pairs rest in
      let siblings, rest = parse_pairs rest in
      ((String.lowercase_ascii key, Record fields) :: siblings, rest)
  | key :: v :: rest ->
      let value =
        if String.length v > 0 && v.[0] = '"' then
          Str (String.sub v 1 (String.length v - 1))
        else
          match float_of_string_opt v with
          | Some f -> Num f
          | None -> Str v
      in
      let siblings, rest = parse_pairs rest in
      ((String.lowercase_ascii key, value) :: siblings, rest)
  | [ key ] -> failwith ("Gml.parse: dangling key " ^ key)

let find_num fields names =
  List.fold_left
    (fun acc name ->
      match acc with
      | Some _ -> acc
      | None -> (
          match List.assoc_opt name fields with
          | Some (Num f) -> Some f
          | Some (Str s) -> float_of_string_opt s
          | _ -> None))
    None names

(* Recursively strip 1-degree nodes (the paper's preprocessing), then
   drop isolated nodes and re-index densely. *)
let prune_and_reindex ~name n links =
  let links = ref links in
  let changed = ref true in
  while !changed do
    changed := false;
    let degree = Array.make n 0 in
    List.iter
      (fun (u, v, _) ->
        degree.(u) <- degree.(u) + 1;
        degree.(v) <- degree.(v) + 1)
      !links;
    let keep (u, v, _) = degree.(u) >= 2 && degree.(v) >= 2 in
    let kept = List.filter keep !links in
    if List.length kept <> List.length !links then begin
      links := kept;
      changed := true
    end
  done;
  let used = Array.make n false in
  List.iter
    (fun (u, v, _) ->
      used.(u) <- true;
      used.(v) <- true)
    !links;
  let remap = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if used.(v) then begin
      remap.(v) <- !next;
      incr next
    end
  done;
  let links =
    List.map (fun (u, v, c) -> (remap.(u), remap.(v), c)) !links
  in
  Graph.create ~name ~n:!next (Array.of_list links)

let parse ?(name = "gml") ?(prune = true) text =
  let fields, rest = parse_pairs (tokenize text) in
  if rest <> [] then failwith "Gml.parse: trailing tokens";
  let graph_fields =
    match List.assoc_opt "graph" fields with
    | Some (Record f) -> f
    | _ -> failwith "Gml.parse: no graph record"
  in
  (* collect nodes in order of appearance, mapping GML ids densely *)
  let ids = Hashtbl.create 64 in
  let count = ref 0 in
  List.iter
    (fun (key, v) ->
      match (key, v) with
      | "node", Record nf -> (
          match find_num nf [ "id" ] with
          | Some id ->
              if not (Hashtbl.mem ids id) then begin
                Hashtbl.replace ids id !count;
                incr count
              end
          | None -> failwith "Gml.parse: node without id")
      | _ -> ())
    graph_fields;
  let seen_links = Hashtbl.create 64 in
  let links = ref [] in
  List.iter
    (fun (key, v) ->
      match (key, v) with
      | "edge", Record ef -> (
          match (find_num ef [ "source" ], find_num ef [ "target" ]) with
          | Some s, Some t -> (
              match (Hashtbl.find_opt ids s, Hashtbl.find_opt ids t) with
              | Some u, Some v when u <> v ->
                  (* topology-zoo files often list parallel edges; keep
                     one per pair *)
                  let k = if u < v then (u, v) else (v, u) in
                  if not (Hashtbl.mem seen_links k) then begin
                    Hashtbl.replace seen_links k ();
                    let cap =
                      match
                        find_num ef [ "linkspeed"; "bandwidth"; "capacity" ]
                      with
                      | Some c when c > 0. -> c
                      | _ -> 1.0
                    in
                    links := (u, v, cap) :: !links
                  end
              | Some _, Some _ -> () (* self loop: drop *)
              | _ -> failwith "Gml.parse: edge endpoint not declared")
          | _ -> failwith "Gml.parse: edge without source/target")
      | _ -> ())
    graph_fields;
  let links = List.rev !links in
  if prune then prune_and_reindex ~name !count links
  else Graph.create ~name ~n:!count (Array.of_list links)

let load ?prune path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  let name = Filename.remove_extension (Filename.basename path) in
  parse ~name ?prune text

let to_gml g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph [\n";
  for v = 0 to g.Graph.n - 1 do
    Buffer.add_string buf (Printf.sprintf "  node [\n    id %d\n  ]\n" v)
  done;
  Array.iter
    (fun (e : Graph.edge) ->
      Buffer.add_string buf
        (Printf.sprintf
           "  edge [\n    source %d\n    target %d\n    capacity %g\n  ]\n"
           e.Graph.u e.Graph.v e.Graph.capacity))
    g.Graph.edges;
  Buffer.add_string buf "]\n";
  Buffer.contents buf
