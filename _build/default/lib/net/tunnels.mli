(** Tunnel selection, following the paper's §6 methodology:

    - single traffic class: three physical tunnels per pair, as disjoint
      as possible, preferring shorter ones;
    - high-priority (latency-sensitive) class: three shortest paths such
      that no single link failure disconnects all of them (when the
      graph allows it);
    - low-priority class: the high-priority tunnels plus three more
      drawn from a larger pool of shortest paths, prioritizing
      disjointness. *)

type t = {
  pair : int * int;
  path : Paths.path;
  nodes : int array;  (** node sequence, [fst pair] first *)
}

val alive : t -> edge_alive:(int -> bool) -> bool

val make : Graph.t -> pair:int * int -> Paths.path -> t

val select_single_class : Graph.t -> pair:int * int -> count:int -> t list
(** Disjointness-balanced selection from a k-shortest pool. *)

val select_high_priority : Graph.t -> pair:int * int -> count:int -> t list
(** Shortest-first, avoiding a common single point of failure. *)

val select_low_priority :
  Graph.t -> pair:int * int -> high:t list -> extra:int -> t list
(** High-priority tunnels plus [extra] disjointness-prioritized ones. *)
