(** Shortest paths and Yen's k-shortest loopless paths.

    A path is the edge-id sequence from source to destination; node
    sequences are derivable via {!nodes}.  Edge weights default to 1.0
    (hop count), the latency proxy used for tunnel selection. *)

type path = int array
(** Edge ids in order from source to destination. *)

val nodes : Graph.t -> src:int -> path -> int array
(** Node sequence visited by a path starting at [src]
    (length = path length + 1). *)

val length : ?weight:(int -> float) -> path -> float

val shortest :
  Graph.t ->
  ?weight:(int -> float) ->
  ?edge_ok:(int -> bool) ->
  ?node_ok:(int -> bool) ->
  src:int ->
  dst:int ->
  unit ->
  path option
(** Dijkstra.  [edge_ok]/[node_ok] mask out failed or forbidden
    elements ([node_ok] is not consulted for [src] and [dst]). *)

val k_shortest : Graph.t -> ?weight:(int -> float) -> k:int -> src:int -> dst:int -> unit -> path list
(** Yen's algorithm: up to [k] loopless paths by nondecreasing weight. *)

val edge_set : path -> (int, unit) Hashtbl.t
val shares_edge : path -> path -> bool
val overlap : path -> path -> int
(** Number of shared edge ids. *)
