(** Minimal GML reader/writer for network topologies.

    The Internet Topology Zoo (the paper's topology source) publishes
    graphs as GML.  This module parses the subset of GML those files
    use — nested [key [ ... ]] records with scalar attributes — so
    that, given the real files, the catalog's generated stand-ins can
    be swapped for the authors' exact inputs without touching any other
    code.

    Nodes are re-indexed densely in order of appearance; a
    [LinkSpeed]/[bandwidth]/[capacity] attribute is used as the link
    capacity when present (default 1.0).  One-degree nodes are pruned
    recursively when [prune] is set, matching the paper's §6
    preprocessing. *)

val parse : ?name:string -> ?prune:bool -> string -> Graph.t
(** Parse GML text.  Raises [Failure] with a message pointing at the
    offending token on malformed input. *)

val load : ?prune:bool -> string -> Graph.t
(** Read and parse a [.gml] file; the graph is named after the file. *)

val to_gml : Graph.t -> string
(** Serialize a graph back to GML (id/source/target/capacity only). *)
