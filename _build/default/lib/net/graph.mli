(** Undirected capacitated multigraph.

    WAN sites are integer nodes [0 .. n-1]; links are undirected edges
    with a capacity shared by both directions (the paper's flows are
    over unordered site pairs, N(N-1)/2 of them).  Multi-edges are
    allowed: the "richly connected" topologies of §6.2 split every link
    into two independently-failing sub-links. *)

type edge = private {
  id : int;
  u : int;
  v : int;
  capacity : float;
  group : int;
      (** physical-link group; sub-links produced by {!val:split_links}
          share the group of their parent link, otherwise [group = id] *)
}

type t = private {
  name : string;
  n : int;
  edges : edge array;
  adj : (int * int) list array;  (** node -> [(edge id, neighbor)] *)
}

val create : name:string -> n:int -> (int * int * float) array -> t
(** [create ~name ~n links] builds a graph from [(u, v, capacity)]
    triples.  Raises [Invalid_argument] on self-loops or out-of-range
    endpoints. *)

val nedges : t -> int
val other_endpoint : edge -> int -> int

val connected : t -> ?alive:(int -> bool) -> int -> int -> bool
(** [connected g ~alive u v]: is there a path from [u] to [v] using only
    edges for which [alive id] holds (default: all alive)? *)

val is_connected_graph : t -> ?alive:(int -> bool) -> unit -> bool

val degree : t -> int -> int

val split_links : t -> t
(** The richly-connected transform of §6.2: each link becomes two
    parallel sub-links of half capacity that fail independently but
    belong to the same [group]. *)

val pairs : t -> (int * int) array
(** All unordered node pairs (u < v), lexicographic. *)

val pp : Format.formatter -> t -> unit
