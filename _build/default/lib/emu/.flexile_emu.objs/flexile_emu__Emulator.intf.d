lib/emu/emulator.mli: Flexile_te Flexile_util
