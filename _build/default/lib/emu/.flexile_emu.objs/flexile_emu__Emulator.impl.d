lib/emu/emulator.ml: Array Flexile_failure Flexile_lp Flexile_net Flexile_te Flexile_util Float List Printf
