(** Linear-program model builder.

    A model is a minimization problem over variables with (possibly
    infinite) lower/upper bounds, linear rows with a sense ([Le], [Ge],
    [Eq]) and a right-hand side, and a linear objective.  Models are
    mutable while being built; the solver compiles them to a
    computational form on demand.

    Infinities are represented by [infinity] / [neg_infinity]. *)

type t

type var = int
(** Variable index, dense from 0. *)

type row = int
(** Row index, dense from 0. *)

type sense = Le | Ge | Eq

val create : ?name:string -> unit -> t

val name : t -> string

val add_var : t -> ?name:string -> ?lb:float -> ?ub:float -> ?obj:float -> unit -> var
(** Add a variable.  Defaults: [lb = 0.], [ub = infinity], [obj = 0.].
    Raises [Invalid_argument] if [lb > ub] or a bound is NaN. *)

val add_vars : t -> int -> ?lb:float -> ?ub:float -> ?obj:float -> unit -> var array
(** [add_vars t n] adds [n] identically-bounded variables and returns
    their indices in order. *)

val add_row : t -> ?name:string -> sense -> float -> (var * float) list -> row
(** [add_row t sense rhs coeffs] adds a constraint
    [sum_j c_j x_j  <sense>  rhs].  Duplicate variable entries are
    summed.  Raises [Invalid_argument] on an out-of-range variable. *)

val set_rhs : t -> row -> float -> unit
val rhs : t -> row -> float
val row_sense : t -> row -> sense

val set_obj : t -> var -> float -> unit
val obj_coef : t -> var -> float

val set_bounds : t -> var -> lb:float -> ub:float -> unit
val lb : t -> var -> float
val ub : t -> var -> float
val var_name : t -> var -> string
val row_name : t -> row -> string

val nvars : t -> int
val nrows : t -> int

val row_coeffs : t -> row -> (var * float) list
(** Coefficients of a row, in insertion order (duplicates pre-summed). *)

(** Column-compressed view of the coefficient matrix, rebuilt lazily
    whenever rows were added since the last call. *)
type csc = private {
  col_start : int array;  (** length nvars+1 *)
  row_idx : int array;
  values : float array;
}

val csc : t -> csc

val objective_value : t -> float array -> float
(** Objective of a full primal assignment (length [nvars]). *)

val row_activity : t -> row -> float array -> float

val max_violation : t -> float array -> float
(** Largest bound or row violation of an assignment; 0. if feasible. *)

val pp_stats : Format.formatter -> t -> unit
