(** Branch-and-bound for mixed-integer programs whose integer variables
    are binary (the only kind appearing in the paper's formulations:
    the critical-scenario indicators [z] of formulation (I) and of the
    master problem (M)).

    The search is depth-first with best-bound pruning, an optional
    rounding heuristic for incumbents, and node/time limits.  When a
    limit is hit the best incumbent is returned together with the best
    proven lower bound, so callers can report an optimality gap. *)

type status =
  | Optimal  (** incumbent proven optimal (within [gap_tol]) *)
  | Feasible  (** limit hit with an incumbent available *)
  | Infeasible
  | Limit  (** limit hit with no incumbent *)

type result = {
  status : status;
  obj : float;  (** incumbent objective (minimization) *)
  x : float array;  (** incumbent primal values *)
  bound : float;  (** best proven lower bound *)
  nodes : int;
  gap : float;  (** [obj - bound], 0. when optimal *)
}

type options = {
  node_limit : int;  (** default 5000 *)
  time_limit : float;  (** seconds, default 60. *)
  gap_tol : float;  (** absolute gap considered optimal, default 1e-6 *)
  int_tol : float;  (** integrality tolerance, default 1e-6 *)
}

val default_options : options

val solve :
  ?options:options ->
  ?heuristic:(float array -> float array option) ->
  binaries:Lp_model.var array ->
  Lp_model.t ->
  result
(** [solve ~binaries model] minimizes [model] with the given variables
    constrained to {0,1}.  [heuristic lp_x] may propose a full primal
    assignment from a fractional relaxation solution; it is checked for
    feasibility before being accepted as an incumbent.  The model's
    bounds are mutated during the search and restored on exit. *)
