(** Cutting-plane / lazy-row solving.

    The TeaVar and CVaR formulations have O(|flows| * |scenarios|)
    "loss definition" rows of which only a handful are active at the
    optimum (those attaining the per-scenario maxima).  This wrapper
    solves with a growing row set: solve, ask the caller for violated
    rows of the current point, add them, repeat. *)

type spec = {
  sense : Lp_model.sense;
  rhs : float;
  coeffs : (Lp_model.var * float) list;
}

val solve :
  ?max_rounds:int ->
  ?per_round:int ->
  violated:(float array -> spec list) ->
  Lp_model.t ->
  Simplex.solution * int
(** [solve ~violated model] returns the final solution and the number
    of rounds used.  [violated x] must return rows of the *full* model
    violated at [x] (an empty list certifies optimality for the full
    model).  At most [per_round] (default 500) rows are added per
    round; [max_rounds] defaults to 60.  The added rows remain in
    [model]. *)
