lib/lp/presolve.ml: Array Float List Lp_model Printf Simplex
