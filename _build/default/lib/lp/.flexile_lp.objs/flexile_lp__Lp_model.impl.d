lib/lp/lp_model.ml: Array Float Format Hashtbl List Printf
