lib/lp/simplex.ml: Array Float List Logs Lp_model
