lib/lp/row_gen.ml: List Lp_model Simplex
