lib/lp/row_gen.mli: Lp_model Simplex
