lib/lp/mip.mli: Lp_model
