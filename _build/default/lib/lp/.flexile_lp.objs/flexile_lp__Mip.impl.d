lib/lp/mip.ml: Array Float List Lp_model Simplex Unix
