lib/lp/simplex.mli: Lp_model
