lib/lp/presolve.mli: Lp_model Simplex
