(** Light LP presolve.

    Applies safe, order-independent reductions before a solve and maps
    the reduced solution back to the original variable space:

    - empty rows are checked for consistency and dropped;
    - singleton rows (one variable) become variable bounds;
    - fixed variables (lb = ub) are substituted into rows and the
      objective;
    - variables that appear in no row are moved to their best bound.

    The reductions matter most for the per-scenario models, where
    failed links fix whole groups of tunnel variables to zero. *)

type reduced

val reduce : Lp_model.t -> (reduced, [ `Infeasible ]) result
(** Build the reduced model, or report infeasibility detected purely by
    presolve (e.g. an empty row with a negative <= RHS, or bound
    crossing from a singleton row). *)

val model : reduced -> Lp_model.t
(** The reduced model (fresh; the input model is not mutated). *)

val stats : reduced -> string
(** Human-readable reduction summary. *)

val solve : ?iter_limit:int -> Lp_model.t -> Simplex.solution
(** [solve m] = presolve, solve the reduced model, postsolve: returns a
    solution in the original variable space.  Status and objective
    match an unreduced {!Simplex.solve} (duals are those of the reduced
    model mapped back to surviving rows; rows eliminated by presolve
    report dual 0, so [dual_bound] remains a valid lower bound only
    for RHS changes on surviving rows). *)
