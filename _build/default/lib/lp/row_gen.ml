type spec = {
  sense : Lp_model.sense;
  rhs : float;
  coeffs : (Lp_model.var * float) list;
}

let solve ?(max_rounds = 60) ?(per_round = 500) ~violated model =
  let rounds = ref 0 in
  let result = ref None in
  let st = ref (Simplex.make model) in
  while !result = None do
    incr rounds;
    let sol = Simplex.solve_warm !st in
    if sol.Simplex.status <> Simplex.Optimal then result := Some sol
    else begin
      let rows = violated sol.Simplex.x in
      if rows = [] || !rounds >= max_rounds then result := Some sol
      else begin
        let added = ref 0 in
        List.iter
          (fun r ->
            if !added < per_round then begin
              ignore (Lp_model.add_row model r.sense r.rhs r.coeffs);
              incr added
            end)
          rows;
        (* reuse the basis: new slacks basic, dual simplex continues *)
        st := Simplex.extend !st model
      end
    end
  done;
  match !result with Some s -> (s, !rounds) | None -> assert false
