type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let fnv1a s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let of_string name = create (fnv1a name)

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t label =
  let h = fnv1a label in
  create (Int64.logxor (next t) h)

let float t =
  (* 53 random bits into [0, 1) *)
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits /. 9007199254740992.0

let uniform t lo hi = lo +. ((hi -. lo) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Prng.int";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int n))

let bool t p = float t < p

let weibull t ~shape ~scale =
  (* inverse-CDF sampling; guard against log 0 *)
  let u = Float.max 1e-15 (1. -. float t) in
  scale *. Float.pow (-.Float.log u) (1. /. shape)

let exponential t ~rate =
  let u = Float.max 1e-15 (1. -. float t) in
  -.Float.log u /. rate

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose";
  a.(int t (Array.length a))
